package sslperf_test

import (
	"fmt"
	"io"
	"time"

	"sslperf"
)

// ExamplePipe shows the minimal end-to-end use of the library: an SSL
// client and server over the in-memory transport the paper's
// standalone measurements use.
func ExamplePipe() {
	id, err := sslperf.NewIdentity(sslperf.NewPRNG(1), 512, "example", time.Now())
	if err != nil {
		panic(err)
	}
	clientEnd, serverEnd := sslperf.Pipe()
	client := sslperf.ClientConn(clientEnd, &sslperf.Config{
		Rand:       sslperf.NewPRNG(2),
		ServerName: "example",
	})
	server := sslperf.ServerConn(serverEnd, &sslperf.Config{
		Rand:    sslperf.NewPRNG(3),
		Key:     id.Key,
		CertDER: id.CertDER,
	})
	go func() {
		buf := make([]byte, 4)
		io.ReadFull(server, buf)
		server.Write(buf)
	}()
	client.Write([]byte("ping"))
	buf := make([]byte, 4)
	io.ReadFull(client, buf)
	fmt.Printf("%s\n", buf)
	// Output: ping
}

// ExampleConn_SetAnatomy captures the Table 2 handshake anatomy of
// one server-side handshake.
func ExampleConn_SetAnatomy() {
	id, err := sslperf.NewIdentity(sslperf.NewPRNG(4), 512, "anatomy", time.Now())
	if err != nil {
		panic(err)
	}
	clientEnd, serverEnd := sslperf.Pipe()
	client := sslperf.ClientConn(clientEnd, &sslperf.Config{
		Rand: sslperf.NewPRNG(5), InsecureSkipVerify: true,
	})
	server := sslperf.ServerConn(serverEnd, &sslperf.Config{
		Rand: sslperf.NewPRNG(6), Key: id.Key, CertDER: id.CertDER,
	})
	anatomy := sslperf.NewAnatomy()
	server.SetAnatomy(anatomy)
	go client.Handshake()
	if err := server.Handshake(); err != nil {
		panic(err)
	}
	// Step 5 (get_client_kx) holds the RSA private decryption, the
	// paper's dominant handshake cost.
	for _, step := range anatomy.Steps {
		if step.Name == "get_client_kx" {
			fmt.Println(step.Index, step.Name, len(step.Crypto) > 0)
		}
	}
	// Output: 5 get_client_kx true
}

// ExampleSuiteByName looks up the paper's cipher suite.
func ExampleSuiteByName() {
	s, err := sslperf.SuiteByName("DES-CBC3-SHA")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%#04x key=%dB mac=%dB\n", uint16(s.ID), s.KeyLen, s.MACLen())
	// Output: 0x000a key=24B mac=20B
}

// ExampleExperimentByID runs one paper experiment (Table 4, the
// static cipher-characteristics table).
func ExampleExperimentByID() {
	e, err := sslperf.ExperimentByID("table4")
	if err != nil {
		panic(err)
	}
	rep, err := e.Run(&sslperf.ExperimentConfig{Quick: true, KeyBits: 512})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.ID, len(rep.Tables) > 0)
	// Output: table4 true
}
