package main

import (
	"encoding/json"
	"testing"
)

// The ten server-side steps of Table 2, in protocol order.
var table2Steps = []string{
	"init",
	"get_client_hello",
	"send_server_hello",
	"send_server_cert",
	"send_server_done",
	"get_client_kx",
	"get_cipher_spec/get_finished",
	"send_cipher_spec",
	"send_finished",
	"server_flush",
}

func TestCaptureHandshakeTrace(t *testing.T) {
	b, err := captureHandshakeTrace(1, 512, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var steps []string
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Cat == "step" {
			steps = append(steps, e.Name)
		}
	}
	if len(steps) != len(table2Steps) {
		t.Fatalf("got %d step spans %v, want the %d Table 2 steps", len(steps), steps, len(table2Steps))
	}
	for i, want := range table2Steps {
		if steps[i] != want {
			t.Errorf("step span %d = %q, want %q", i, steps[i], want)
		}
	}
	var cats = map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			cats[e.Cat] = true
		}
	}
	for _, want := range []string{"conn", "step", "crypto", "io"} {
		if !cats[want] {
			t.Errorf("no %q spans in trace (have %v)", want, cats)
		}
	}
}
