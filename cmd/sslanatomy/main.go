// Command sslanatomy regenerates the tables and figures of "Anatomy
// and Performance of SSL Processing" (ISPASS 2005) on this
// repository's from-scratch SSL stack.
//
// Usage:
//
//	sslanatomy -experiment table2        # one experiment
//	sslanatomy -experiment all           # the whole evaluation
//	sslanatomy -experiment table2 -json  # machine-readable output
//	sslanatomy -list                     # what's available
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sslperf/internal/core"
	"sslperf/internal/perf"
	"sslperf/internal/record"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (e.g. table2, fig3) or 'all'")
		list       = flag.Bool("list", false, "list experiments and exit")
		seed       = flag.Uint64("seed", 0, "PRNG seed (0 = default)")
		keyBits    = flag.Int("keybits", 1024, "server RSA key size")
		iters      = flag.Int("iterations", 10, "measurement repetitions")
		quick      = flag.Bool("quick", false, "reduced workloads (CI mode)")
		ghz        = flag.Float64("ghz", 2.26, "model clock frequency for cycle conversion")
		suiteName  = flag.String("suite", "", "cipher suite for protocol experiments (default DES-CBC3-SHA)")
		useTLS     = flag.Bool("tls", false, "run protocol experiments over TLS 1.0 instead of SSL 3.0")
		jsonOut    = flag.Bool("json", false, "emit reports as a JSON array instead of text tables")
		traceOut   = flag.String("trace", "", "write a single-handshake Chrome trace to this file and exit")
		pathLen    = flag.Bool("pathlen", false, "print the abstract-instruction path-length model (Table 11) and exit")
		foldProf   = flag.String("foldprofile", "", "fold a pprof CPU profile by sslstep/sslfn/sslengine labels and exit")
	)
	flag.Parse()
	perf.SetModelGHz(*ghz)

	if *pathLen {
		if err := runPathlenModel(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *foldProf != "" {
		if err := runFoldProfile(*foldProf, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *traceOut != "" {
		version := uint16(0)
		if *useTLS {
			version = record.VersionTLS10
		}
		b, err := captureHandshakeTrace(*seed, *keyBits, *suiteName, version)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*traceOut, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d-byte Chrome trace to %s (load in chrome://tracing or ui.perfetto.dev)\n",
			len(b), *traceOut)
		return
	}

	if *list {
		for _, e := range core.All() {
			fmt.Printf("%-8s %s\n         paper: %s\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	cfg := &core.Config{
		Seed:       *seed,
		KeyBits:    *keyBits,
		Iterations: *iters,
		Quick:      *quick,
		SuiteName:  *suiteName,
	}
	if *useTLS {
		cfg.Version = record.VersionTLS10
	}

	var exps []*core.Experiment
	if *experiment == "all" {
		exps = core.All()
	} else {
		e, err := core.ByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []*core.Experiment{e}
	}

	var reports []*core.Report
	for _, e := range exps {
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *jsonOut {
			reports = append(reports, rep)
		} else {
			fmt.Println(rep)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
