package main

import (
	"time"

	"sslperf/internal/ssl"
	"sslperf/internal/suite"
	"sslperf/internal/trace"
)

// captureHandshakeTrace runs one full handshake over the in-memory
// pipe with the server traced at SampleEvery=1 and returns the Chrome
// trace-event JSON — the single-handshake counterpart of sslserver's
// live /debug/trace, for loading in chrome://tracing or Perfetto.
func captureHandshakeTrace(seed uint64, keyBits int, suiteName string, version uint16) ([]byte, error) {
	id, err := ssl.NewIdentity(ssl.NewPRNG(seed), keyBits, "sslanatomy", time.Now())
	if err != nil {
		return nil, err
	}
	var suites []suite.ID
	if suiteName != "" {
		s, err := suite.ByName(suiteName)
		if err != nil {
			return nil, err
		}
		suites = []suite.ID{s.ID}
	}
	tracer := trace.NewTracer(trace.Config{SampleEvery: 1})
	clientT, serverT := ssl.Pipe()
	server := ssl.ServerConn(serverT, &ssl.Config{
		Rand:    ssl.NewPRNG(seed + 1),
		Key:     id.Key,
		CertDER: id.CertDER,
		Suites:  suites,
		Tracer:  tracer,
	})
	client := ssl.ClientConn(clientT, &ssl.Config{
		Rand:               ssl.NewPRNG(seed + 2),
		Suites:             suites,
		Version:            version,
		InsecureSkipVerify: true,
	})
	errc := make(chan error, 1)
	go func() { errc <- server.Handshake() }()
	if err := client.Handshake(); err != nil {
		return nil, err
	}
	if err := <-errc; err != nil {
		return nil, err
	}
	// One request/response round trip so the trace shows the bulk
	// phase (read/write I/O spans and record-layer crypto) too.
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		if _, err := server.Read(buf); err == nil {
			server.Write([]byte("sslanatomy trace payload"))
		}
	}()
	if _, err := client.Write([]byte("ping")); err != nil {
		return nil, err
	}
	buf := make([]byte, 64)
	if _, err := client.Read(buf); err != nil {
		return nil, err
	}
	<-done
	client.Close()
	server.Close() // finishes the sampled trace, publishing it
	return tracer.Chrome()
}
