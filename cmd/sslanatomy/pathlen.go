package main

import (
	"encoding/json"
	"fmt"
	"os"

	"sslperf/internal/pathlen"
	"sslperf/internal/perf"
	"sslperf/internal/probe"
)

// runPathlenModel prints the abstract-instruction path-length model —
// the offline half of the Tables 11/12 reproduction. The live half is
// the running server's /debug/pathlength fold; this table is what its
// model columns are seeded from.
func runPathlenModel(jsonOut bool) error {
	models := pathlen.Models()
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			GHz    float64         `json:"model_ghz"`
			Models []pathlen.Model `json:"models"`
		}{perf.ModelGHz(), models})
	}
	t := perf.NewTable(
		fmt.Sprintf("abstract-instruction path length model (Table 11, %.2f GHz clock)", perf.ModelGHz()),
		"primitive", "CPI", "instr/B", "cyc/B", "MB/s")
	for _, m := range models {
		t.AddRow(m.Name,
			fmt.Sprintf("%.3f", m.CPI),
			fmt.Sprintf("%.2f", m.InstrPerByte),
			fmt.Sprintf("%.2f", m.CyclesPerByte),
			fmt.Sprintf("%.1f", m.MBps))
	}
	fmt.Println(t)
	return nil
}

// foldKeys are the label keys a -foldprofile run groups by, in
// presentation order: Table 2 step, crypto function, engine.
var foldKeys = []string{probe.LabelKeyStep, probe.LabelKeyFn, probe.LabelKeyEngine}

// runFoldProfile reads a pprof CPU profile (written by a server run
// with -pprof-labels) and folds its samples by the spine's label
// keys, turning a flat profile into per-step CPU attribution.
func runFoldProfile(path string, jsonOut bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if jsonOut {
		out := map[string][]pathlen.FoldRow{}
		for _, key := range foldKeys {
			rows, err := pathlen.FoldProfile(data, key)
			if err != nil {
				return err
			}
			out[key] = rows
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	for _, key := range foldKeys {
		rows, err := pathlen.FoldProfile(data, key)
		if err != nil {
			return err
		}
		if key != probe.LabelKeyStep && len(rows) == 1 && rows[0].Label == pathlen.FoldUnlabeled {
			continue // nothing labeled under this key; skip the table
		}
		t := perf.NewTable("cpu profile by "+key, key, "cpu", "samples", "share")
		for _, r := range rows {
			t.AddRow(r.Label,
				fmt.Sprintf("%v", nsString(r.Nanos)),
				fmt.Sprintf("%d", r.Samples),
				fmt.Sprintf("%.1f%%", r.SharePct))
		}
		fmt.Println(t)
	}
	return nil
}

func nsString(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.0fµs", float64(ns)/1e3)
	}
}
