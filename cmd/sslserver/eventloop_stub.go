//go:build !linux

package main

import "errors"

// runEventLoop needs epoll; non-Linux builds keep the goroutine-per-
// connection server only.
func runEventLoop(addr string, srv *server, payload []byte) error {
	return errors.New("-eventloop is only supported on linux")
}
