//go:build linux

// The -eventloop serving mode: one goroutine, one epoll instance,
// N connections. Each accepted socket gets an ssl.NonBlockingConn —
// the sans-IO core — and the loop shuttles ciphertext between the
// socket and the core on readiness: EPOLLIN feeds bytes in and steps
// the handshake FSM (which suspends with ssl.ErrWouldBlock instead of
// parking a goroutine), EPOLLOUT drains the core's outgoing buffer
// when the socket's send queue filled. An idle keep-alive connection
// costs its buffers and a table entry, not a goroutine stack — the
// memory-per-idle-conn benchmark in internal/ssl quantifies the gap.
package main

import (
	"fmt"
	"log"
	"net"
	"syscall"
	"time"

	"sslperf/internal/ssl"
	"sslperf/internal/trace"
)

// elConn is one event-loop connection: the non-blocking SSL core plus
// the socket-facing write backlog.
type elConn struct {
	fd     int
	nc     *ssl.NonBlockingConn
	remote string
	// wantWrite mirrors whether EPOLLOUT is armed: set while the
	// socket's send queue is full and sealed bytes wait in the core.
	wantWrite bool
	// closing is set once the connection should die as soon as its
	// outgoing bytes (terminal alert or close_notify) are flushed.
	closing bool
	// loggedEstablished keeps the per-conn success line to one.
	loggedEstablished bool
}

// eventLoop owns the epoll instance and the fd -> connection table.
type eventLoop struct {
	epfd    int
	lfd     int
	srv     *server
	payload []byte
	conns   map[int]*elConn
	rbuf    []byte // shared socket-read scratch
	abuf    []byte // shared plaintext-read scratch
}

// runEventLoop serves addr forever with a single-threaded epoll loop;
// it only returns on a fatal setup error.
func runEventLoop(addr string, srv *server, payload []byte) error {
	lfd, err := listenFD(addr)
	if err != nil {
		return err
	}
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return fmt.Errorf("epoll_create1: %w", err)
	}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, lfd,
		&syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(lfd)}); err != nil {
		return fmt.Errorf("epoll_ctl listener: %w", err)
	}
	el := &eventLoop{
		epfd:    epfd,
		lfd:     lfd,
		srv:     srv,
		payload: payload,
		conns:   make(map[int]*elConn),
		rbuf:    make([]byte, 64<<10),
		abuf:    make([]byte, 16<<10),
	}
	events := make([]syscall.EpollEvent, 256)
	for {
		n, err := syscall.EpollWait(epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return fmt.Errorf("epoll_wait: %w", err)
		}
		for i := 0; i < n; i++ {
			fd := int(events[i].Fd)
			if fd == lfd {
				el.acceptReady()
				continue
			}
			c := el.conns[fd]
			if c == nil {
				continue
			}
			el.handle(c, events[i].Events)
		}
	}
}

// listenFD opens a non-blocking IPv4 listening socket on addr.
func listenFD(addr string) (int, error) {
	ta, err := net.ResolveTCPAddr("tcp", addr)
	if err != nil {
		return -1, err
	}
	var ip4 [4]byte
	if ta.IP != nil {
		v4 := ta.IP.To4()
		if v4 == nil {
			return -1, fmt.Errorf("eventloop: %s is not an IPv4 address", addr)
		}
		copy(ip4[:], v4)
	}
	fd, err := syscall.Socket(syscall.AF_INET,
		syscall.SOCK_STREAM|syscall.SOCK_NONBLOCK|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		return -1, fmt.Errorf("socket: %w", err)
	}
	if err := syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_REUSEADDR, 1); err != nil {
		syscall.Close(fd)
		return -1, err
	}
	if err := syscall.Bind(fd, &syscall.SockaddrInet4{Port: ta.Port, Addr: ip4}); err != nil {
		syscall.Close(fd)
		return -1, fmt.Errorf("bind %s: %w", addr, err)
	}
	if err := syscall.Listen(fd, 1024); err != nil {
		syscall.Close(fd)
		return -1, fmt.Errorf("listen: %w", err)
	}
	return fd, nil
}

// acceptReady drains the accept queue, wrapping each new socket in a
// NonBlockingConn with the same per-connection config (PRNG, batch
// key, telemetry, lifecycle, trace sampling) the goroutine server
// builds.
func (el *eventLoop) acceptReady() {
	for {
		fd, sa, err := syscall.Accept4(el.lfd,
			syscall.SOCK_NONBLOCK|syscall.SOCK_CLOEXEC)
		if err == syscall.EAGAIN {
			return
		}
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			log.Printf("accept: %v", err)
			return
		}
		cfg, ct := el.srv.configFor()
		nc := ssl.NonBlockingServer(cfg)
		c := &elConn{fd: fd, nc: nc, remote: sockaddrString(sa)}
		nc.SetRemoteAddr(c.remote)
		if ct != nil {
			ct.Event("accept", trace.CatConn, 0, time.Now(), 0)
			nc.SetTrace(ct)
		}
		if err := syscall.EpollCtl(el.epfd, syscall.EPOLL_CTL_ADD, fd,
			&syscall.EpollEvent{Events: syscall.EPOLLIN | syscall.EPOLLRDHUP, Fd: int32(fd)}); err != nil {
			log.Printf("epoll_ctl add: %v", err)
			syscall.Close(fd)
			continue
		}
		el.conns[fd] = c
		// Kick the FSM once: the ClientHello has not arrived, so this
		// suspends immediately — but it starts the telemetry/lifecycle
		// clocks and parks the entry in the new suspended state.
		el.pump(c)
	}
}

// handle services one readiness notification.
func (el *eventLoop) handle(c *elConn, ev uint32) {
	if ev&(syscall.EPOLLERR|syscall.EPOLLHUP) != 0 {
		el.teardown(c)
		return
	}
	if ev&(syscall.EPOLLIN|syscall.EPOLLRDHUP) != 0 {
		for {
			n, err := syscall.Read(c.fd, el.rbuf)
			if err == syscall.EAGAIN {
				break
			}
			if err == syscall.EINTR {
				continue
			}
			if err != nil || n == 0 {
				// Peer went away; push what the core still holds and die.
				c.closing = true
				break
			}
			c.nc.Feed(el.rbuf[:n])
			if n < len(el.rbuf) {
				break
			}
		}
	}
	el.pump(c)
	if ev&syscall.EPOLLOUT != 0 || len(c.nc.Outgoing()) > 0 {
		el.flush(c)
	}
	if c.closing && len(c.nc.Outgoing()) == 0 {
		el.teardown(c)
	}
}

// pump advances the protocol with whatever bytes are buffered: the
// handshake FSM first, then the request/response loop — mirroring the
// goroutine server's serve(), one payload response per client record.
func (el *eventLoop) pump(c *elConn) {
	if c.closing {
		return
	}
	if !c.nc.HandshakeDone() {
		err := c.nc.HandshakeStep()
		if err == ssl.ErrWouldBlock {
			el.flush(c)
			return
		}
		if err != nil {
			// Terminal: the core queued a fatal alert; flush it, close.
			el.srv.connLog.Printf("%s: handshake failed (%s): %v",
				c.remote, ssl.FailureReason(err), err)
			c.closing = true
			el.flush(c)
			return
		}
	}
	if !c.loggedEstablished {
		c.loggedEstablished = true
		if state, err := c.nc.ConnectionState(); err == nil {
			el.srv.connLog.Printf("%s: %s resumed=%v",
				c.remote, state.Suite.Name, state.Resumed)
		}
	}
	for {
		n, err := c.nc.ReadData(el.abuf)
		if err == ssl.ErrWouldBlock {
			break
		}
		if err != nil {
			// close_notify (io.EOF) or a record-layer error either way:
			// queue our close_notify and drain.
			c.nc.Close()
			c.closing = true
			break
		}
		if n > 0 {
			hdr := fmt.Sprintf("LEN %d\n", len(el.payload))
			c.nc.WriteData(append([]byte(hdr), el.payload...))
		}
	}
	el.flush(c)
}

// flush pushes the core's outgoing ciphertext into the socket,
// arming EPOLLOUT while the send queue is full.
func (el *eventLoop) flush(c *elConn) {
	for {
		out := c.nc.Outgoing()
		if len(out) == 0 {
			el.armWrite(c, false)
			return
		}
		n, err := syscall.Write(c.fd, out)
		if err == syscall.EAGAIN {
			el.armWrite(c, true)
			return
		}
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			el.teardown(c)
			return
		}
		c.nc.ConsumeOutgoing(n)
	}
}

// armWrite toggles the EPOLLOUT subscription.
func (el *eventLoop) armWrite(c *elConn, want bool) {
	if c.wantWrite == want {
		return
	}
	c.wantWrite = want
	events := uint32(syscall.EPOLLIN | syscall.EPOLLRDHUP)
	if want {
		events |= syscall.EPOLLOUT
	}
	if err := syscall.EpollCtl(el.epfd, syscall.EPOLL_CTL_MOD, c.fd,
		&syscall.EpollEvent{Events: events, Fd: int32(c.fd)}); err != nil {
		log.Printf("epoll_ctl mod: %v", err)
	}
}

// teardown finalizes the SSL state and releases the socket.
func (el *eventLoop) teardown(c *elConn) {
	delete(el.conns, c.fd)
	c.nc.Close()
	syscall.EpollCtl(el.epfd, syscall.EPOLL_CTL_DEL, c.fd, nil)
	syscall.Close(c.fd)
}

// sockaddrString renders an accepted peer address.
func sockaddrString(sa syscall.Sockaddr) string {
	switch a := sa.(type) {
	case *syscall.SockaddrInet4:
		return fmt.Sprintf("%d.%d.%d.%d:%d", a.Addr[0], a.Addr[1], a.Addr[2], a.Addr[3], a.Port)
	case *syscall.SockaddrInet6:
		return fmt.Sprintf("[%v]:%d", net.IP(a.Addr[:]), a.Port)
	}
	return ""
}
