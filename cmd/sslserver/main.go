// Command sslserver serves a static payload over SSLv3 on TCP — the
// measured half of the paper's web-server setup. Pair it with
// sslclient to drive HTTPS-like transactions across real sockets.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/record"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
	"sslperf/internal/telemetry"
	"sslperf/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:4433", "listen address")
		keyBits   = flag.Int("keybits", 1024, "RSA key size")
		fileSize  = flag.Int("filesize", 1024, "response payload bytes")
		suiteName = flag.String("suite", "", "restrict to one cipher suite (e.g. DES-CBC3-SHA)")
		seed      = flag.Uint64("seed", 0, "PRNG seed (0 = time-based)")
		ssl3Only  = flag.Bool("ssl3only", false, "refuse TLS 1.0 (SSL 3.0 only)")
		telAddr   = flag.String("telemetry", "",
			"serve /metrics, /debug/flightrecorder, and pprof on this address (e.g. :9090)")
		flightRec = flag.Int("flightrecorder", telemetry.DefaultFlightRecorderSize,
			"flight-recorder ring size (events)")
	)
	flag.Parse()

	seedVal := *seed
	if seedVal == 0 {
		seedVal = uint64(time.Now().UnixNano())
	}
	log.Printf("generating %d-bit identity...", *keyBits)
	id, err := ssl.NewIdentity(ssl.NewPRNG(seedVal), *keyBits, "sslserver", time.Now())
	if err != nil {
		log.Fatal(err)
	}
	cfg := &ssl.Config{
		Rand:         ssl.NewPRNG(seedVal + 1),
		Key:          id.Key,
		CertDER:      id.CertDER,
		SessionCache: handshake.NewSessionCache(4096),
	}
	if *suiteName != "" {
		s, err := suite.ByName(*suiteName)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Suites = []suite.ID{s.ID}
	}
	if *ssl3Only {
		cfg.Version = record.VersionSSL30
	}
	if *telAddr != "" {
		reg := telemetry.NewRegistrySize(*flightRec)
		cfg.Telemetry = reg
		mux := http.NewServeMux()
		telemetry.Register(mux, reg)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("telemetry on http://%s/metrics", *telAddr)
			if err := http.ListenAndServe(*telAddr, mux); err != nil {
				log.Printf("telemetry server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (%d-byte responses)", *addr, *fileSize)
	payload := workload.Payload(*fileSize)
	for {
		tc, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go serve(tc, cfg, payload)
	}
}

func serve(tc net.Conn, cfg *ssl.Config, payload []byte) {
	conn := ssl.ServerConn(tc, cfg)
	defer conn.Close()
	if err := conn.Handshake(); err != nil {
		// The telemetry registry (when enabled) has already counted
		// this failure under the same reason tag via ssl.Conn.
		log.Printf("%s: handshake failed (%s): %v",
			tc.RemoteAddr(), ssl.FailureReason(err), err)
		return
	}
	state, _ := conn.ConnectionState()
	log.Printf("%s: %s resumed=%v", tc.RemoteAddr(), state.Suite.Name, state.Resumed)
	buf := make([]byte, 4096)
	for {
		// One request (any read) -> one payload response.
		if _, err := conn.Read(buf); err != nil {
			return
		}
		hdr := fmt.Sprintf("LEN %d\n", len(payload))
		if _, err := conn.Write(append([]byte(hdr), payload...)); err != nil {
			return
		}
	}
}
