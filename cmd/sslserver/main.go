// Command sslserver serves a static payload over SSLv3 on TCP — the
// measured half of the paper's web-server setup. Pair it with
// sslclient to drive HTTPS-like transactions across real sockets.
//
// With -rsabatch N the server deploys a Fiat batch-RSA key set:
// N certificates over one shared modulus with distinct small public
// exponents, assigned to connections round-robin, so concurrent
// ClientKeyExchange decryptions amortize into one full-size
// exponentiation per batch (see internal/rsabatch).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sslperf/internal/baseline"
	"sslperf/internal/debughttp"
	"sslperf/internal/handshake"
	"sslperf/internal/history"
	"sslperf/internal/lifecycle"
	"sslperf/internal/pathlen"
	"sslperf/internal/probe"
	"sslperf/internal/record"
	"sslperf/internal/rsa"
	"sslperf/internal/rsabatch"
	"sslperf/internal/slo"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
	"sslperf/internal/telemetry"
	"sslperf/internal/trace"
	"sslperf/internal/workload"
	"sslperf/internal/x509lite"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:4433", "listen address")
		keyBits   = flag.Int("keybits", 1024, "RSA key size")
		fileSize  = flag.Int("filesize", 1024, "response payload bytes")
		suiteName = flag.String("suite", "", "restrict to one cipher suite (e.g. DES-CBC3-SHA)")
		seed      = flag.Uint64("seed", 0, "PRNG seed (0 = time-based)")
		ssl3Only  = flag.Bool("ssl3only", false, "refuse TLS 1.0 (SSL 3.0 only)")
		telAddr   = flag.String("telemetry", "",
			"serve /metrics, /debug/flightrecorder, and pprof on this address (e.g. :9090)")
		flightRec = flag.Int("flightrecorder", telemetry.DefaultFlightRecorderSize,
			"flight-recorder ring size (events)")
		rsaBatch = flag.Int("rsabatch", 0,
			fmt.Sprintf("batch RSA decryptions across up to N concurrent handshakes (0 = off, max %d)", rsabatch.MaxBatch))
		rsaWorkers = flag.Int("rsaworkers", 2, "batch RSA worker goroutines")
		rsaLinger  = flag.Duration("rsalinger", 500*time.Microsecond,
			"how long a partial RSA batch waits for more handshakes")
		traceEvery = flag.Int("trace", 0,
			"span-trace 1 in N connections on /debug/trace and /debug/anatomy (0 = off, 1 = every)")
		traceRate = flag.Int("tracerate", 0,
			"cap sampled traces per second (0 = unlimited)")
		bulkWidth = flag.Int("bulkwidth", 0,
			"flight-sealing MAC pipeline width for large writes: 0 = one lane per core, 1 = sequential MACs (still vectored), <0 = disable the flight path")
		pprofOn = flag.Bool("pprof", false,
			"expose net/http/pprof under /debug/pprof/ on the telemetry address")
		pprofLabels = flag.Bool("pprof-labels", false,
			"attach pprof labels (sslstep/sslfn/sslcat/sslengine) to handshake, crypto, and bulk work so CPU profiles fold by Table 2 step")
		sloTarget = flag.Duration("slotarget", 50*time.Millisecond,
			"handshake-latency SLO target: successes slower than this burn the error budget on /debug/slo")
		sloBudget = flag.Float64("slobudget", 0.01,
			"SLO error budget: allowed fraction of failed-or-slow handshakes (0.01 = 99% objective)")
		closeLog = flag.String("closelog", "",
			"write one structured JSON line per connection close to this file (\"stderr\" for stderr)")
		closeLogSample = flag.Int("closelog-sample", 100,
			"close-log 1 in N successful closes (failed closes always log)")
		logRate = flag.Int("lograte", 10,
			"max per-connection log lines per second, with a suppressed-count summary (0 = unlimited)")
		historyInterval = flag.Duration("history", time.Second,
			"time-series sampling interval for /debug/history and /debug/watch (0 = off)")
		eventLoop = flag.Bool("eventloop", false,
			"serve with a single-threaded epoll event loop over non-blocking conns instead of one goroutine per connection (linux only)")
	)
	flag.Parse()

	if *pprofLabels {
		probe.SetProfileLabels(true)
	}

	seedVal := *seed
	if seedVal == 0 {
		seedVal = uint64(time.Now().UnixNano())
	}

	var closeLogW io.Writer
	switch *closeLog {
	case "":
	case "stderr":
		closeLogW = os.Stderr
	default:
		f, err := os.OpenFile(*closeLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		closeLogW = f
	}

	obs := buildProbes(probeFlags{
		TelemetryAddr:  *telAddr,
		FlightRecorder: *flightRec,
		TraceEvery:     *traceEvery,
		TraceRate:      *traceRate,
		Pprof:          *pprofOn,
		SLOTarget:      *sloTarget,
		SLOBudget:      *sloBudget,
		CloseLogW:      closeLogW,
		CloseLogSample: *closeLogSample,
		History:        *historyInterval,
	})

	srv := &server{
		cache:     handshake.NewSessionCache(4096),
		telemetry: obs.reg,
		tracer:    obs.tracer,
		pathlen:   obs.pathlen,
		lifecycle: obs.lifecycle,
		connLog:   newLogLimiter(*logRate),
		seed:      seedVal,
		bulkWidth: *bulkWidth,
	}
	if *suiteName != "" {
		s, err := suite.ByName(*suiteName)
		if err != nil {
			log.Fatal(err)
		}
		srv.suites = []suite.ID{s.ID}
	}
	if *ssl3Only {
		srv.version = record.VersionSSL30
	}

	if *rsaBatch > 0 {
		log.Printf("generating %d-bit batch key set (width %d)...", *keyBits, *rsaBatch)
		ks, err := rsabatch.GenerateKeySet(ssl.NewPRNG(seedVal), *keyBits, *rsaBatch)
		if err != nil {
			log.Fatal(err)
		}
		now := time.Now()
		rnd := ssl.NewPRNG(seedVal + 1)
		for i, key := range ks.Keys {
			cn := fmt.Sprintf("sslserver-batch-%d", i)
			cert, err := x509lite.Create(rnd, cn, &key.PublicKey, cn, key,
				now.Add(-24*time.Hour), now.Add(365*24*time.Hour))
			if err != nil {
				log.Fatal(err)
			}
			srv.certs = append(srv.certs, cert.Raw)
		}
		srv.engine = rsabatch.NewEngine(ks, rsabatch.Config{
			BatchSize: *rsaBatch,
			Linger:    *rsaLinger,
			Workers:   *rsaWorkers,
			Rand:      ssl.NewPRNG(seedVal + 2),
			Probes:    obs.engineSinks(),
		})
		srv.keys = ks.Keys
		log.Printf("batch RSA engine: width %d, linger %v, %d workers",
			*rsaBatch, *rsaLinger, *rsaWorkers)
	} else {
		log.Printf("generating %d-bit identity...", *keyBits)
		id, err := ssl.NewIdentity(ssl.NewPRNG(seedVal), *keyBits, "sslserver", time.Now())
		if err != nil {
			log.Fatal(err)
		}
		srv.keys = append(srv.keys, id.Key)
		srv.certs = append(srv.certs, id.CertDER)
	}

	payload := workload.Payload(*fileSize)
	if *eventLoop {
		log.Printf("event loop listening on %s (%d-byte responses)", *addr, *fileSize)
		log.Fatal(runEventLoop(*addr, srv, payload))
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (%d-byte responses)", *addr, *fileSize)
	for {
		tc, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go srv.serve(tc, payload)
	}
}

// probeFlags carries the observability flag values into buildProbes.
type probeFlags struct {
	TelemetryAddr  string
	FlightRecorder int
	TraceEvery     int
	TraceRate      int
	Pprof          bool
	SLOTarget      time.Duration
	SLOBudget      float64
	CloseLogW      io.Writer
	CloseLogSample int
	History        time.Duration
}

// observers is everything buildProbes wires up: the metrics registry
// and span tracer the per-connection configs subscribe, the live
// connection table with its SLO windows, plus the engine sinks
// background engines (batch RSA) emit into.
type observers struct {
	reg       *telemetry.Registry
	tracer    *trace.Tracer
	pathlen   *pathlen.Collector
	lifecycle *lifecycle.Table
	slo       *slo.Tracker
	history   *history.History
}

// engineSinks returns the probe sinks an engine should fan out to —
// the spine-facing equivalent of passing Telemetry/Tracer directly.
func (o *observers) engineSinks() []probe.Sink {
	return []probe.Sink{telemetry.EngineSink(o.reg), trace.EngineSink(o.tracer)}
}

// buildProbes is the single place the -telemetry/-trace/-pprof flag
// cluster turns into live observers: it builds the tracer and
// registry, mounts /metrics, /debug/flightrecorder, /debug/trace,
// /debug/anatomy, /debug/health, and pprof on one mux, and serves it.
func buildProbes(f probeFlags) *observers {
	o := &observers{pathlen: pathlen.NewCollector()}
	if f.TraceEvery > 0 {
		o.tracer = trace.NewTracer(trace.Config{
			SampleEvery: f.TraceEvery,
			MaxPerSec:   f.TraceRate,
		})
	}
	if f.TelemetryAddr != "" || f.CloseLogW != nil {
		// The conn table exists whenever something reads it: the
		// /debug/conns + /debug/slo endpoints, or the close-log alone.
		var cl *lifecycle.CloseLog
		if f.CloseLogW != nil {
			cl = lifecycle.NewCloseLog(f.CloseLogW, f.CloseLogSample)
		}
		o.slo = slo.New(slo.Config{TargetP99: f.SLOTarget, ErrorBudget: f.SLOBudget})
		o.lifecycle = lifecycle.NewTable(lifecycle.Options{SLO: o.slo, CloseLog: cl})
	}
	if f.TelemetryAddr == "" {
		if o.tracer != nil || f.Pprof {
			log.Printf("warning: -trace/-pprof need -telemetry to be served; enabling tracing without an endpoint")
		}
		return o
	}
	o.reg = telemetry.NewRegistrySize(f.FlightRecorder)
	mux := http.NewServeMux()
	telemetry.Register(mux, o.reg)
	pathlen.Register(mux, o.pathlen)
	lifecycle.Register(mux, o.lifecycle)
	slo.Register(mux, o.slo)
	var anatomySnap func() trace.AnatomySnapshot
	if o.tracer != nil {
		// POST /debug/anatomy/reset clears the profiler and the
		// metrics registry together, so "warm up, reset, measure"
		// runs read clean numbers on both surfaces.
		trace.RegisterWithReset(mux, o.tracer, o.reg.Reset)
		anatomySnap = o.tracer.Profiler().Snapshot
	}
	// /debug/health always mounts with telemetry: the anatomy checks
	// need -trace, the SLO burn verdict does not.
	baseline.RegisterHealth(mux, anatomySnap, baseline.PaperExpectation(),
		baseline.SLOBurnCheck(o.slo, "1m", 10))
	// The history sampler ticks over every surface built above, so it
	// wires up last. It keeps sampling whatever subset exists (no
	// -trace means no anatomy series, etc.).
	if f.History > 0 {
		o.history = history.New(history.Config{Interval: f.History})
		var profiler *trace.Profiler
		if o.tracer != nil {
			profiler = o.tracer.Profiler()
		}
		history.AddStandardSources(o.history, history.Sources{
			Telemetry: o.reg,
			Runtime:   true,
			SLO:       o.slo,
			Lifecycle: o.lifecycle,
			Pathlen:   o.pathlen,
			Anatomy:   profiler,
		})
		history.Register(mux, o.history)
		o.history.Start()
	}
	// POST /debug/reset scopes every observatory at once — telemetry,
	// anatomy profiler, path-length accumulators, conn table, SLO
	// windows, and history rings — so "warm up, reset, measure" needs
	// one call.
	mux.HandleFunc("/debug/reset", func(w http.ResponseWriter, req *http.Request) {
		if !debughttp.PostOnly(w, req) {
			return
		}
		o.reg.Reset()
		if o.tracer != nil {
			o.tracer.Profiler().Reset()
		}
		o.pathlen.Reset()
		o.lifecycle.Reset()
		o.slo.Reset()
		o.history.Reset()
		debughttp.WriteText(w, "reset\n")
	})
	if f.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	go func() {
		log.Printf("telemetry on http://%s/metrics", f.TelemetryAddr)
		if err := http.ListenAndServe(f.TelemetryAddr, mux); err != nil {
			log.Printf("telemetry server: %v", err)
		}
	}()
	return o
}

// server holds the shared state every connection config draws from.
// Keys/certs are parallel slices: one entry without batching, one per
// batch exponent with it.
type server struct {
	keys      []*rsa.PrivateKey
	certs     [][]byte
	engine    *rsabatch.Engine
	cache     *handshake.SessionCache
	telemetry *telemetry.Registry
	tracer    *trace.Tracer
	pathlen   *pathlen.Collector
	lifecycle *lifecycle.Table
	connLog   *logLimiter
	suites    []suite.ID
	version   uint16
	seed      uint64
	bulkWidth int
	connSeq   atomic.Uint64
}

// logLimiter is a token bucket over per-connection log lines: under a
// failure storm (or a high-rate success run) the log stays readable at
// the configured rate, and each emitted line is preceded by a one-line
// summary of how many lines the bucket swallowed since the last one. A
// nil limiter passes everything through.
type logLimiter struct {
	mu         sync.Mutex
	rate       float64 // tokens per second
	burst      float64
	tokens     float64
	last       time.Time
	suppressed uint64
}

func newLogLimiter(linesPerSec int) *logLimiter {
	if linesPerSec <= 0 {
		return nil
	}
	r := float64(linesPerSec)
	return &logLimiter{rate: r, burst: r, tokens: r, last: time.Now()}
}

// Printf logs one line if the bucket allows it, prefixed by a summary
// of any suppressed backlog; otherwise it counts the line silently.
func (l *logLimiter) Printf(format string, args ...any) {
	if l == nil {
		log.Printf(format, args...)
		return
	}
	l.mu.Lock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	if l.tokens < 1 {
		l.suppressed++
		l.mu.Unlock()
		return
	}
	l.tokens--
	sup := l.suppressed
	l.suppressed = 0
	l.mu.Unlock()
	if sup > 0 {
		log.Printf("(%d connection log lines suppressed by -lograte)", sup)
	}
	log.Printf(format, args...)
}

// Suppressed reports lines currently swallowed and not yet summarized.
func (l *logLimiter) Suppressed() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.suppressed
}

// configFor builds the per-connection Config. Every connection gets
// its own PRNG (ssl.PRNG is not safe for concurrent use) and, under
// batching, the next key of the set round-robin. The returned
// ConnTrace is non-nil when the tracer sampled this connection; it is
// started here, at accept time, so pre-handshake setup is on the
// trace, and the batch decrypter carries its span refs.
func (s *server) configFor() (*ssl.Config, *trace.ConnTrace) {
	id := s.connSeq.Add(1)
	i := int(id) % len(s.keys)
	cfg := &ssl.Config{
		Rand:         ssl.NewPRNG(s.seed + 17*id),
		Key:          s.keys[i],
		CertDER:      s.certs[i],
		SessionCache: s.cache,
		Suites:       s.suites,
		Version:      s.version,
		Telemetry:    s.telemetry,
		Lifecycle:    s.lifecycle,

		BulkPipelineWidth: s.bulkWidth,
	}
	if s.pathlen != nil {
		cfg.Probes = []probe.Sink{s.pathlen}
	}
	ct := s.tracer.ConnBegin(id, "server")
	if s.engine != nil {
		if ct != nil {
			cfg.Decrypter = s.engine.DecrypterTraced(i, ct.Ref)
		} else {
			cfg.Decrypter = s.engine.Decrypter(i)
		}
	}
	return cfg, ct
}

func (s *server) serve(tc net.Conn, payload []byte) {
	accepted := time.Now()
	cfg, ct := s.configFor()
	conn := ssl.ServerConn(tc, cfg)
	if ct != nil {
		ct.Event("accept", trace.CatConn, 0, accepted, time.Since(accepted))
		conn.SetTrace(ct)
	}
	defer conn.Close()
	if err := conn.Handshake(); err != nil {
		// The telemetry registry and lifecycle close-log (when
		// enabled) have already recorded this failure under the same
		// canonical fail class via ssl.Conn; the console line rides
		// the token bucket so a failure storm cannot flood the log.
		s.connLog.Printf("%s: handshake failed (%s): %v",
			tc.RemoteAddr(), ssl.FailureReason(err), err)
		return
	}
	state, _ := conn.ConnectionState()
	s.connLog.Printf("%s: %s resumed=%v", tc.RemoteAddr(), state.Suite.Name, state.Resumed)
	buf := make([]byte, 4096)
	// The bulk loop runs under the bulk_transfer pprof label (a no-op
	// unless -pprof-labels armed them), so CPU profiles separate data
	// transfer from Table 2 handshake steps.
	probe.LabelBulkPhase(func() {
		for {
			// One request (any read) -> one payload response.
			if _, err := conn.Read(buf); err != nil {
				return
			}
			hdr := fmt.Sprintf("LEN %d\n", len(payload))
			if _, err := conn.Write(append([]byte(hdr), payload...)); err != nil {
				return
			}
		}
	})
}
