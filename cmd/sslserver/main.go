// Command sslserver serves a static payload over SSLv3 on TCP — the
// measured half of the paper's web-server setup. Pair it with
// sslclient to drive HTTPS-like transactions across real sockets.
//
// With -rsabatch N the server deploys a Fiat batch-RSA key set:
// N certificates over one shared modulus with distinct small public
// exponents, assigned to connections round-robin, so concurrent
// ClientKeyExchange decryptions amortize into one full-size
// exponentiation per batch (see internal/rsabatch).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"sslperf/internal/baseline"
	"sslperf/internal/handshake"
	"sslperf/internal/pathlen"
	"sslperf/internal/probe"
	"sslperf/internal/record"
	"sslperf/internal/rsa"
	"sslperf/internal/rsabatch"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
	"sslperf/internal/telemetry"
	"sslperf/internal/trace"
	"sslperf/internal/workload"
	"sslperf/internal/x509lite"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:4433", "listen address")
		keyBits   = flag.Int("keybits", 1024, "RSA key size")
		fileSize  = flag.Int("filesize", 1024, "response payload bytes")
		suiteName = flag.String("suite", "", "restrict to one cipher suite (e.g. DES-CBC3-SHA)")
		seed      = flag.Uint64("seed", 0, "PRNG seed (0 = time-based)")
		ssl3Only  = flag.Bool("ssl3only", false, "refuse TLS 1.0 (SSL 3.0 only)")
		telAddr   = flag.String("telemetry", "",
			"serve /metrics, /debug/flightrecorder, and pprof on this address (e.g. :9090)")
		flightRec = flag.Int("flightrecorder", telemetry.DefaultFlightRecorderSize,
			"flight-recorder ring size (events)")
		rsaBatch = flag.Int("rsabatch", 0,
			fmt.Sprintf("batch RSA decryptions across up to N concurrent handshakes (0 = off, max %d)", rsabatch.MaxBatch))
		rsaWorkers = flag.Int("rsaworkers", 2, "batch RSA worker goroutines")
		rsaLinger  = flag.Duration("rsalinger", 500*time.Microsecond,
			"how long a partial RSA batch waits for more handshakes")
		traceEvery = flag.Int("trace", 0,
			"span-trace 1 in N connections on /debug/trace and /debug/anatomy (0 = off, 1 = every)")
		traceRate = flag.Int("tracerate", 0,
			"cap sampled traces per second (0 = unlimited)")
		bulkWidth = flag.Int("bulkwidth", 0,
			"flight-sealing MAC pipeline width for large writes: 0 = one lane per core, 1 = sequential MACs (still vectored), <0 = disable the flight path")
		pprofOn = flag.Bool("pprof", false,
			"expose net/http/pprof under /debug/pprof/ on the telemetry address")
		pprofLabels = flag.Bool("pprof-labels", false,
			"attach pprof labels (sslstep/sslfn/sslcat/sslengine) to handshake, crypto, and bulk work so CPU profiles fold by Table 2 step")
	)
	flag.Parse()

	if *pprofLabels {
		probe.SetProfileLabels(true)
	}

	seedVal := *seed
	if seedVal == 0 {
		seedVal = uint64(time.Now().UnixNano())
	}

	obs := buildProbes(probeFlags{
		TelemetryAddr:  *telAddr,
		FlightRecorder: *flightRec,
		TraceEvery:     *traceEvery,
		TraceRate:      *traceRate,
		Pprof:          *pprofOn,
	})

	srv := &server{
		cache:     handshake.NewSessionCache(4096),
		telemetry: obs.reg,
		tracer:    obs.tracer,
		pathlen:   obs.pathlen,
		seed:      seedVal,
		bulkWidth: *bulkWidth,
	}
	if *suiteName != "" {
		s, err := suite.ByName(*suiteName)
		if err != nil {
			log.Fatal(err)
		}
		srv.suites = []suite.ID{s.ID}
	}
	if *ssl3Only {
		srv.version = record.VersionSSL30
	}

	if *rsaBatch > 0 {
		log.Printf("generating %d-bit batch key set (width %d)...", *keyBits, *rsaBatch)
		ks, err := rsabatch.GenerateKeySet(ssl.NewPRNG(seedVal), *keyBits, *rsaBatch)
		if err != nil {
			log.Fatal(err)
		}
		now := time.Now()
		rnd := ssl.NewPRNG(seedVal + 1)
		for i, key := range ks.Keys {
			cn := fmt.Sprintf("sslserver-batch-%d", i)
			cert, err := x509lite.Create(rnd, cn, &key.PublicKey, cn, key,
				now.Add(-24*time.Hour), now.Add(365*24*time.Hour))
			if err != nil {
				log.Fatal(err)
			}
			srv.certs = append(srv.certs, cert.Raw)
		}
		srv.engine = rsabatch.NewEngine(ks, rsabatch.Config{
			BatchSize: *rsaBatch,
			Linger:    *rsaLinger,
			Workers:   *rsaWorkers,
			Rand:      ssl.NewPRNG(seedVal + 2),
			Probes:    obs.engineSinks(),
		})
		srv.keys = ks.Keys
		log.Printf("batch RSA engine: width %d, linger %v, %d workers",
			*rsaBatch, *rsaLinger, *rsaWorkers)
	} else {
		log.Printf("generating %d-bit identity...", *keyBits)
		id, err := ssl.NewIdentity(ssl.NewPRNG(seedVal), *keyBits, "sslserver", time.Now())
		if err != nil {
			log.Fatal(err)
		}
		srv.keys = append(srv.keys, id.Key)
		srv.certs = append(srv.certs, id.CertDER)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (%d-byte responses)", *addr, *fileSize)
	payload := workload.Payload(*fileSize)
	for {
		tc, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go srv.serve(tc, payload)
	}
}

// probeFlags carries the observability flag values into buildProbes.
type probeFlags struct {
	TelemetryAddr  string
	FlightRecorder int
	TraceEvery     int
	TraceRate      int
	Pprof          bool
}

// observers is everything buildProbes wires up: the metrics registry
// and span tracer the per-connection configs subscribe, plus the
// engine sinks background engines (batch RSA) emit into.
type observers struct {
	reg     *telemetry.Registry
	tracer  *trace.Tracer
	pathlen *pathlen.Collector
}

// engineSinks returns the probe sinks an engine should fan out to —
// the spine-facing equivalent of passing Telemetry/Tracer directly.
func (o *observers) engineSinks() []probe.Sink {
	return []probe.Sink{telemetry.EngineSink(o.reg), trace.EngineSink(o.tracer)}
}

// buildProbes is the single place the -telemetry/-trace/-pprof flag
// cluster turns into live observers: it builds the tracer and
// registry, mounts /metrics, /debug/flightrecorder, /debug/trace,
// /debug/anatomy, /debug/health, and pprof on one mux, and serves it.
func buildProbes(f probeFlags) *observers {
	o := &observers{pathlen: pathlen.NewCollector()}
	if f.TraceEvery > 0 {
		o.tracer = trace.NewTracer(trace.Config{
			SampleEvery: f.TraceEvery,
			MaxPerSec:   f.TraceRate,
		})
	}
	if f.TelemetryAddr == "" {
		if o.tracer != nil || f.Pprof {
			log.Printf("warning: -trace/-pprof need -telemetry to be served; enabling tracing without an endpoint")
		}
		return o
	}
	o.reg = telemetry.NewRegistrySize(f.FlightRecorder)
	mux := http.NewServeMux()
	telemetry.Register(mux, o.reg)
	pathlen.Register(mux, o.pathlen)
	if o.tracer != nil {
		// POST /debug/anatomy/reset clears the profiler and the
		// metrics registry together, so "warm up, reset, measure"
		// runs read clean numbers on both surfaces.
		trace.RegisterWithReset(mux, o.tracer, o.reg.Reset)
		baseline.RegisterHealth(mux, o.tracer.Profiler().Snapshot, baseline.PaperExpectation())
	}
	if f.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	go func() {
		log.Printf("telemetry on http://%s/metrics", f.TelemetryAddr)
		if err := http.ListenAndServe(f.TelemetryAddr, mux); err != nil {
			log.Printf("telemetry server: %v", err)
		}
	}()
	return o
}

// server holds the shared state every connection config draws from.
// Keys/certs are parallel slices: one entry without batching, one per
// batch exponent with it.
type server struct {
	keys      []*rsa.PrivateKey
	certs     [][]byte
	engine    *rsabatch.Engine
	cache     *handshake.SessionCache
	telemetry *telemetry.Registry
	tracer    *trace.Tracer
	pathlen   *pathlen.Collector
	suites    []suite.ID
	version   uint16
	seed      uint64
	bulkWidth int
	connSeq   atomic.Uint64
}

// configFor builds the per-connection Config. Every connection gets
// its own PRNG (ssl.PRNG is not safe for concurrent use) and, under
// batching, the next key of the set round-robin. The returned
// ConnTrace is non-nil when the tracer sampled this connection; it is
// started here, at accept time, so pre-handshake setup is on the
// trace, and the batch decrypter carries its span refs.
func (s *server) configFor() (*ssl.Config, *trace.ConnTrace) {
	id := s.connSeq.Add(1)
	i := int(id) % len(s.keys)
	cfg := &ssl.Config{
		Rand:         ssl.NewPRNG(s.seed + 17*id),
		Key:          s.keys[i],
		CertDER:      s.certs[i],
		SessionCache: s.cache,
		Suites:       s.suites,
		Version:      s.version,
		Telemetry:    s.telemetry,

		BulkPipelineWidth: s.bulkWidth,
	}
	if s.pathlen != nil {
		cfg.Probes = []probe.Sink{s.pathlen}
	}
	ct := s.tracer.ConnBegin(id, "server")
	if s.engine != nil {
		if ct != nil {
			cfg.Decrypter = s.engine.DecrypterTraced(i, ct.Ref)
		} else {
			cfg.Decrypter = s.engine.Decrypter(i)
		}
	}
	return cfg, ct
}

func (s *server) serve(tc net.Conn, payload []byte) {
	accepted := time.Now()
	cfg, ct := s.configFor()
	conn := ssl.ServerConn(tc, cfg)
	if ct != nil {
		ct.Event("accept", trace.CatConn, 0, accepted, time.Since(accepted))
		conn.SetTrace(ct)
	}
	defer conn.Close()
	if err := conn.Handshake(); err != nil {
		// The telemetry registry (when enabled) has already counted
		// this failure under the same reason tag via ssl.Conn.
		log.Printf("%s: handshake failed (%s): %v",
			tc.RemoteAddr(), ssl.FailureReason(err), err)
		return
	}
	state, _ := conn.ConnectionState()
	log.Printf("%s: %s resumed=%v", tc.RemoteAddr(), state.Suite.Name, state.Resumed)
	buf := make([]byte, 4096)
	// The bulk loop runs under the bulk_transfer pprof label (a no-op
	// unless -pprof-labels armed them), so CPU profiles separate data
	// transfer from Table 2 handshake steps.
	probe.LabelBulkPhase(func() {
		for {
			// One request (any read) -> one payload response.
			if _, err := conn.Read(buf); err != nil {
				return
			}
			hdr := fmt.Sprintf("LEN %d\n", len(payload))
			if _, err := conn.Write(append([]byte(hdr), payload...)); err != nil {
				return
			}
		}
	})
}
