// Command ssltop is the terminal observatory: it polls one or many
// sslserver instances' /debug/history endpoints and renders a live
// dashboard — handshake and bulk throughput sparklines, the SLO burn
// gauge, connection-state counts, the fail-class top-K, and the
// paper's Table 2 anatomy shares as horizontal bars — refreshing in
// place like top(1).
//
//	ssltop :9090                      # one server, live
//	ssltop :9090 :9091 :9092          # a fleet, stacked panels
//	ssltop -once :9090                # one frame to stdout (scripts, tests)
//	ssltop -record run.ndjson :9090   # record frames while watching
//	ssltop -replay run.ndjson         # re-render a recorded run
//
// Everything ssltop shows is a history series, so the only endpoint it
// needs is /debug/history — a server started with -telemetry has it by
// default.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"sslperf/internal/history"
)

func main() {
	var (
		interval = flag.Duration("interval", time.Second, "refresh interval")
		once     = flag.Bool("once", false, "render one frame to stdout and exit")
		last     = flag.Int("last", 60, "points of history per sparkline")
		record   = flag.String("record", "", "append each frame as a JSON line to this file")
		replay   = flag.String("replay", "", "render frames from a recorded file instead of polling")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: ssltop [flags] [host:port ...]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *replay != "" {
		if err := replayRun(os.Stdout, *replay, *interval, *once); err != nil {
			fmt.Fprintln(os.Stderr, "ssltop:", err)
			os.Exit(1)
		}
		return
	}

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"127.0.0.1:9090"}
	}

	var rec io.WriteCloser
	if *record != "" {
		f, err := os.OpenFile(*record, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssltop:", err)
			os.Exit(1)
		}
		rec = f
		defer f.Close()
	}

	client := &http.Client{Timeout: 5 * time.Second}
	if *once {
		frames := fetchAll(client, targets, *last, rec)
		os.Stdout.WriteString(renderFrames(frames))
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		frames := fetchAll(client, targets, *last, rec)
		// Clear and home, then draw — the classic top(1) refresh.
		os.Stdout.WriteString("\x1b[2J\x1b[H" + renderFrames(frames))
		select {
		case <-sig:
			fmt.Println()
			return
		case <-t.C:
		}
	}
}

// A frame is one target's snapshot (or the error fetching it).
type frame struct {
	Target string           `json:"target"`
	Snap   history.Snapshot `json:"snap"`
	Err    string           `json:"err,omitempty"`
}

// fetchAll polls every target once, recording frames when rec is set.
func fetchAll(client *http.Client, targets []string, last int, rec io.Writer) []frame {
	frames := make([]frame, len(targets))
	for i, target := range targets {
		frames[i] = fetchFrame(client, target, last)
		if rec != nil {
			b, err := json.Marshal(frames[i])
			if err == nil {
				rec.Write(append(b, '\n'))
			}
		}
	}
	return frames
}

// fetchFrame pulls one /debug/history snapshot. The target may be a
// bare host:port, a :port, or a full http:// URL.
func fetchFrame(client *http.Client, target string, last int) frame {
	f := frame{Target: target}
	url := target
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		if strings.HasPrefix(url, ":") {
			url = "127.0.0.1" + url
		}
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + fmt.Sprintf("/debug/history?last=%d", last)
	resp, err := client.Get(url)
	if err != nil {
		f.Err = err.Error()
		return f
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		f.Err = fmt.Sprintf("%s: %s", url, resp.Status)
		return f
	}
	if err := json.NewDecoder(resp.Body).Decode(&f.Snap); err != nil {
		f.Err = err.Error()
	}
	return f
}

// replayRun re-renders a recorded ndjson file: each recorded polling
// round (one frame per target) becomes one screen. -once renders only
// the final round.
func replayRun(w io.Writer, path string, interval time.Duration, once bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var rounds [][]frame
	var cur []frame
	seen := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var fr frame
		if err := json.Unmarshal([]byte(line), &fr); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		// A repeated target starts the next polling round.
		if seen[fr.Target] {
			rounds = append(rounds, cur)
			cur, seen = nil, map[string]bool{}
		}
		seen[fr.Target] = true
		cur = append(cur, fr)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(cur) > 0 {
		rounds = append(rounds, cur)
	}
	if len(rounds) == 0 {
		return fmt.Errorf("%s: no frames", path)
	}
	if once {
		io.WriteString(w, renderFrames(rounds[len(rounds)-1]))
		return nil
	}
	for i, round := range rounds {
		io.WriteString(w, "\x1b[2J\x1b[H"+renderFrames(round))
		if i < len(rounds)-1 {
			time.Sleep(interval)
		}
	}
	return nil
}

// renderFrames stacks one panel per target.
func renderFrames(frames []frame) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ssltop — %s\n", time.Now().Format("15:04:05"))
	for i := range frames {
		b.WriteString(renderPanel(&frames[i]))
	}
	return b.String()
}

// lastVal returns the named series' most recent point (0 when absent).
func lastVal(s history.Snapshot, name string) float64 {
	sd, _ := s.Get(name)
	return sd.Last
}

// renderPanel draws one server's dashboard.
func renderPanel(f *frame) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n── %s ", f.Target)
	b.WriteString(strings.Repeat("─", max(0, 64-len(f.Target))))
	b.WriteByte('\n')
	if f.Err != "" {
		fmt.Fprintf(&b, "  unreachable: %s\n", f.Err)
		return b.String()
	}
	s := f.Snap
	if len(s.Series) == 0 {
		b.WriteString("  (no history yet)\n")
		return b.String()
	}

	// Throughput sparklines: handshakes (full+resumed+failed summed
	// point-wise), bulk bytes out.
	hs := sumSeries(s, "handshakes.full", "handshakes.resumed")
	fmt.Fprintf(&b, "  handshakes %8.1f/s  %s\n", tail(hs), history.Sparkline(hs, 40))
	if sd, ok := s.Get("bytes.out"); ok {
		fmt.Fprintf(&b, "  bulk out   %8s/s  %s\n", humanBytes(sd.Last), history.Sparkline(sd.Points, 40))
	}
	if sd, ok := s.Get("slo.burn"); ok {
		status := "ok"
		if sd.Last > 1 {
			status = "BURNING"
		}
		fmt.Fprintf(&b, "  slo burn   %8.2fx   %s  p99 %.0fus inflight %.0f  [%s]\n",
			sd.Last, history.Sparkline(sd.Points, 40),
			lastVal(s, "slo.p99_us"), lastVal(s, "slo.inflight"), status)
	}

	// Connection states.
	if _, ok := s.Get("conns.live"); ok {
		fmt.Fprintf(&b, "  conns      live %.0f  accepted %.0f  handshaking %.0f  suspended %.0f  established %.0f  draining %.0f\n",
			lastVal(s, "conns.live"), lastVal(s, "conns.accepted"),
			lastVal(s, "conns.handshaking"), lastVal(s, "conns.suspended"),
			lastVal(s, "conns.established"), lastVal(s, "conns.draining"))
	}

	// Fail-class top-K by window total.
	type failRow struct {
		tag string
		sum float64
	}
	var fails []failRow
	for i := range s.Series {
		sd := &s.Series[i]
		if strings.HasPrefix(sd.Name, "fail.") && sd.Sum > 0 {
			fails = append(fails, failRow{strings.TrimPrefix(sd.Name, "fail."), sd.Sum})
		}
	}
	if len(fails) > 0 {
		sort.Slice(fails, func(i, j int) bool { return fails[i].sum > fails[j].sum })
		if len(fails) > 5 {
			fails = fails[:5]
		}
		b.WriteString("  failures  ")
		for _, fr := range fails {
			fmt.Fprintf(&b, " %s=%.0f", fr.tag, fr.sum)
		}
		b.WriteByte('\n')
	}

	// Anatomy: Table 2 shares as horizontal bars, largest first.
	type stepRow struct {
		name  string
		share float64
	}
	var steps []stepRow
	for i := range s.Series {
		sd := &s.Series[i]
		if name, ok := strings.CutPrefix(sd.Name, "anatomy.share."); ok && sd.Last > 0 {
			steps = append(steps, stepRow{name, sd.Last})
		}
	}
	if len(steps) > 0 {
		sort.Slice(steps, func(i, j int) bool { return steps[i].share > steps[j].share })
		fmt.Fprintf(&b, "  anatomy (crypto %.1f%%):\n", lastVal(s, "anatomy.crypto_share"))
		for _, st := range steps {
			bar := strings.Repeat("█", min(40, int(st.share*0.4+0.5)))
			fmt.Fprintf(&b, "    %-32s %5.1f%% %s\n", st.name, st.share, bar)
		}
	}

	// Pathlength gauges, when the window moved bytes.
	if c, m := lastVal(s, "pathlen.cipher_cyc_b"), lastVal(s, "pathlen.mac_cyc_b"); c > 0 || m > 0 {
		fmt.Fprintf(&b, "  pathlen    cipher %.1f cyc/B  mac %.1f cyc/B\n", c, m)
	}
	return b.String()
}

// sumSeries adds the named series point-wise (shorter tails align at
// the end, matching how the rings fill).
func sumSeries(s history.Snapshot, names ...string) []float64 {
	var out []float64
	for _, name := range names {
		sd, ok := s.Get(name)
		if !ok {
			continue
		}
		if len(sd.Points) > len(out) {
			grown := make([]float64, len(sd.Points))
			copy(grown[len(sd.Points)-len(out):], out)
			out = grown
		}
		off := len(out) - len(sd.Points)
		for i, v := range sd.Points {
			out[off+i] += v
		}
	}
	return out
}

// tail returns the last point (0 for an empty series).
func tail(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return vals[len(vals)-1]
}

// humanBytes renders a byte rate compactly.
func humanBytes(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fGB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fMB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fkB", v/1e3)
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}
