package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sslperf/internal/history"
	"sslperf/internal/lifecycle"
	"sslperf/internal/loadgen"
	"sslperf/internal/slo"
	"sslperf/internal/telemetry"
)

// TestObservatorySmoke is the acceptance loop for the time-series
// observatory: an in-process server with history sampling attached,
// sslload driving real handshakes, then three checks — the
// /debug/history handshakes/s series reconciles exactly with the
// telemetry counters, /debug/watch streams live deltas, and ssltop's
// one-shot dashboard renders non-empty from the same endpoint.
func TestObservatorySmoke(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracker := slo.New(slo.Config{TargetP99: 5 * time.Second})
	tab := lifecycle.NewTable(lifecycle.Options{SLO: tracker})
	srv, err := loadgen.StartServer(loadgen.ServerOptions{
		KeyBits:   512,
		FileSize:  512,
		Seed:      42,
		Telemetry: reg,
		Lifecycle: tab,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	h := history.New(history.Config{Interval: 25 * time.Millisecond})
	history.AddStandardSources(h, history.Sources{
		Telemetry: reg,
		Runtime:   true,
		SLO:       tracker,
		Lifecycle: tab,
	})
	// Baseline before any traffic: the first sample's delta is always
	// zero, so taking it now makes every later handshake land inside
	// the observed window and the reconciliation exact.
	h.SampleNow()
	h.Start()
	defer h.Stop()

	mux := http.NewServeMux()
	history.Register(mux, h)
	web := httptest.NewServer(mux)
	defer web.Close()

	// Watch the stream while the load runs: it must deliver at least
	// three ticks.
	watchDone := make(chan error, 1)
	watchLines := make(chan int, 1)
	go func() {
		resp, err := http.Get(web.URL + "/debug/watch?series=handshakes.full,conns.live&interval=25ms")
		if err != nil {
			watchDone <- err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		n := 0
		for n < 5 && sc.Scan() {
			var d history.Delta
			if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
				watchDone <- err
				return
			}
			if _, ok := d.Values["handshakes.full"]; !ok {
				watchDone <- fmt.Errorf("delta missing handshakes.full: %s", sc.Text())
				return
			}
			n++
		}
		watchLines <- n
		watchDone <- nil
	}()

	res, err := loadgen.Run(loadgen.Config{
		Addr:        srv.Addr(),
		Concurrency: 4,
		Duration:    400 * time.Millisecond,
		Requests:    2,
		Seed:        99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done == 0 {
		t.Fatal("load run completed no connections")
	}

	if err := <-watchDone; err != nil {
		t.Fatalf("watch stream: %v", err)
	}
	if n := <-watchLines; n < 3 {
		t.Fatalf("watch delivered %d deltas, want >= 3", n)
	}

	// Capture the tail tick so every handshake is inside the window,
	// then reconcile the series sum against the cumulative counters.
	h.Stop()
	h.SampleNow()

	var snap history.Snapshot
	getJSON(t, web.URL+"/debug/history?series=handshakes.full,handshakes.resumed,handshakes.failed", &snap)
	if len(snap.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(snap.Series))
	}
	var seriesTotal float64
	for _, sd := range snap.Series {
		if sd.Kind != "counter" {
			t.Fatalf("%s kind %q, want counter", sd.Name, sd.Kind)
		}
		if len(sd.Points) == 0 {
			t.Fatalf("%s has no points after a load run", sd.Name)
		}
		seriesTotal += sd.Sum
	}
	counts := reg.Counts()
	counterTotal := float64(counts.HandshakesFull + counts.HandshakesResumed + counts.HandshakesFailed)
	if seriesTotal != counterTotal {
		t.Fatalf("history handshake sum %v != telemetry counters %v", seriesTotal, counterTotal)
	}
	if seriesTotal == 0 {
		t.Fatal("no handshakes observed in the history window")
	}

	// The handshakes/s rendering: at least one point must show a
	// nonzero rate.
	full, _ := snap.Get("handshakes.full")
	var sawRate bool
	for _, v := range full.Points {
		if v > 0 {
			sawRate = true
			break
		}
	}
	if !sawRate {
		t.Fatalf("handshakes.full rate series all-zero: %v", full.Points)
	}

	// ssltop -once against the same endpoint: fetch + render must
	// produce a dashboard with the live panels.
	client := &http.Client{Timeout: 5 * time.Second}
	frames := fetchAll(client, []string{web.URL}, 60, nil)
	out := renderFrames(frames)
	if frames[0].Err != "" {
		t.Fatalf("fetch: %s", frames[0].Err)
	}
	for _, want := range []string{"handshakes", "conns", "slo burn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "(no history yet)") || strings.Contains(out, "unreachable") {
		t.Fatalf("dashboard empty:\n%s", out)
	}
}

// TestRecordReplayRoundTrip records frames from a live endpoint and
// re-renders them offline.
func TestRecordReplayRoundTrip(t *testing.T) {
	h := history.New(history.Config{Interval: 10 * time.Millisecond})
	reg := telemetry.NewRegistry()
	history.AddStandardSources(h, history.Sources{Telemetry: reg})
	reg.ConnOpen()
	reg.HandshakeDone("TLS_RSA_WITH_RC4_128_MD5", 0x0300, false, time.Millisecond)
	h.SampleNow()
	reg.HandshakeDone("TLS_RSA_WITH_RC4_128_MD5", 0x0300, false, time.Millisecond)
	h.SampleNow()

	mux := http.NewServeMux()
	history.Register(mux, h)
	web := httptest.NewServer(mux)
	defer web.Close()

	path := filepath.Join(t.TempDir(), "run.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	// Two polling rounds into the record file.
	fetchAll(client, []string{web.URL}, 60, f)
	h.SampleNow()
	fetchAll(client, []string{web.URL}, 60, f)
	f.Close()

	var out strings.Builder
	if err := replayRun(&out, path, 0, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "handshakes") {
		t.Fatalf("replay missing dashboard:\n%s", out.String())
	}

	// Full replay renders every round.
	out.Reset()
	if err := replayRun(&out, path, 0, false); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "ssltop —"); got != 2 {
		t.Fatalf("replayed %d rounds, want 2", got)
	}

	if err := replayRun(&out, filepath.Join(t.TempDir(), "missing"), 0, true); err == nil {
		t.Fatal("replay of missing file succeeded")
	}
}

func TestFetchFrameTargetForms(t *testing.T) {
	h := history.New(history.Config{Interval: time.Second})
	mux := http.NewServeMux()
	history.Register(mux, h)
	web := httptest.NewServer(mux)
	defer web.Close()
	client := &http.Client{Timeout: time.Second}

	hostPort := strings.TrimPrefix(web.URL, "http://")
	for _, target := range []string{web.URL, hostPort, web.URL + "/"} {
		f := fetchFrame(client, target, 10)
		if f.Err != "" {
			t.Fatalf("target %q: %s", target, f.Err)
		}
	}
	f := fetchFrame(client, "127.0.0.1:1", 10)
	if f.Err == "" {
		t.Fatal("dead target fetched without error")
	}
	out := renderFrames([]frame{f})
	if !strings.Contains(out, "unreachable") {
		t.Fatalf("error frame not rendered:\n%s", out)
	}
}

func TestSumSeriesAlignsTails(t *testing.T) {
	snap := history.Snapshot{Series: []history.SeriesData{
		{Name: "a", Points: []float64{1, 2, 3}},
		{Name: "b", Points: []float64{10}},
	}}
	got := sumSeries(snap, "a", "b", "missing")
	want := []float64{1, 2, 13}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}
