// Command cryptospeed measures raw primitive throughput, in the
// spirit of `openssl speed`: each primitive over a sweep of buffer
// sizes, plus RSA sign/verify-style op rates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sslperf/internal/aes"
	"sslperf/internal/des"
	"sslperf/internal/dh"
	"sslperf/internal/hmacx"
	"sslperf/internal/md5x"
	"sslperf/internal/pathlen"
	"sslperf/internal/perf"
	"sslperf/internal/rc4"
	"sslperf/internal/record"
	"sslperf/internal/rsa"
	"sslperf/internal/rsabatch"
	"sslperf/internal/sha1x"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
	"sslperf/internal/workload"
)

var sizes = []int{16, 64, 256, 1024, 8192}

// speed measures MB/s for fn processing size-byte units for at least
// dur of wall time.
func speed(size int, dur time.Duration, fn func(data []byte)) float64 {
	data := workload.Payload(size)
	// Warm up.
	fn(data)
	var n int
	start := time.Now()
	for time.Since(start) < dur {
		fn(data)
		n++
	}
	elapsed := time.Since(start).Seconds()
	return float64(n) * float64(size) / elapsed / 1e6
}

func main() {
	var (
		dur     = flag.Duration("duration", 200*time.Millisecond, "time per measurement point")
		rsaBits = flag.Int("rsabits", 1024, "RSA key size")
		batch   = flag.Int("batch", 0,
			fmt.Sprintf("measure batch RSA decryption at widths 1..N instead of the full sweep (max %d)", rsabatch.MaxBatch))
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON")
	)
	flag.Parse()

	if *batch > 0 {
		if err := batchMode(*rsaBits, *batch, *dur, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	type prim struct {
		name string
		fn   func(data []byte)
	}
	aesC, _ := aes.New(make([]byte, 16))
	aes256, _ := aes.New(make([]byte, 32))
	desC, _ := des.New(make([]byte, 8))
	tdes, _ := des.NewTriple(make([]byte, 24))
	rc4C, _ := rc4.New(make([]byte, 16))
	buf := make([]byte, 16)
	dbuf := make([]byte, 8)

	prims := []prim{
		{"aes-128", func(d []byte) {
			for i := 0; i+16 <= len(d); i += 16 {
				aesC.Encrypt(buf, d[i:i+16])
			}
		}},
		{"aes-256", func(d []byte) {
			for i := 0; i+16 <= len(d); i += 16 {
				aes256.Encrypt(buf, d[i:i+16])
			}
		}},
		{"des", func(d []byte) {
			for i := 0; i+8 <= len(d); i += 8 {
				desC.Encrypt(dbuf, d[i:i+8])
			}
		}},
		{"3des", func(d []byte) {
			for i := 0; i+8 <= len(d); i += 8 {
				tdes.Encrypt(dbuf, d[i:i+8])
			}
		}},
		{"rc4", func(d []byte) { rc4C.XORKeyStream(d, d) }},
		{"md5", func(d []byte) { md5x.Sum16(d) }},
		{"sha1", func(d []byte) { sha1x.Sum20(d) }},
	}
	hmacSHA1 := hmacx.NewSHA1(workload.Payload(20))
	hmacMD5 := hmacx.NewMD5(workload.Payload(16))
	prims = append(prims,
		prim{"hmac-md5", func(d []byte) {
			hmacMD5.Reset()
			hmacMD5.Write(d)
			hmacMD5.Sum(nil)
		}},
		prim{"hmac-sha1", func(d []byte) {
			hmacSHA1.Reset()
			hmacSHA1.Write(d)
			hmacSHA1.Sum(nil)
		}},
	)

	if *jsonOut {
		// The bulk sweep in the units /debug/pathlength serves live:
		// MB/s, ops/s, and cycles/byte at the model clock, with the
		// abstract-instruction model columns where one exists.
		var report bulkReport
		report.ModelGHz = perf.ModelGHz()
		for _, p := range prims {
			pr := bulkPrim{Name: p.name}
			if m, ok := pathlen.ModelFor(modelName(p.name)); ok {
				pr.ModelCPI = m.CPI
				pr.ModelInstrPerByte = m.InstrPerByte
			}
			for _, size := range sizes {
				mbps := speed(size, *dur, p.fn)
				pt := bulkPoint{
					Size:          size,
					MBps:          mbps,
					OpsSec:        mbps * 1e6 / float64(size),
					CyclesPerByte: perf.ModelGHz() * 1e3 / mbps,
				}
				if pr.ModelCPI > 0 {
					pt.InstrPerByte = pt.CyclesPerByte / pr.ModelCPI
				}
				pr.Points = append(pr.Points, pt)
			}
			report.Prims = append(report.Prims, pr)
		}
		points, err := recordSweep(*dur)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.RecordPath = points
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	t := perf.NewTable("symmetric & hash throughput (MB/s)",
		append([]string{"primitive"}, sizeHeaders()...)...)
	for _, p := range prims {
		row := []string{p.name}
		for _, size := range sizes {
			row = append(row, fmt.Sprintf("%.1f", speed(size, *dur, p.fn)))
		}
		t.AddRow(row...)
	}
	fmt.Println(t)

	// Sealed record path: the flight-width amortization curve.
	points, err := recordSweep(*dur)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rpt := perf.NewTable("sealed record path, 1 MiB writes (width -1 = sequential, 0 = auto)",
		"suite", "width", "MB/s", "records/s", "syscalls/record")
	for _, p := range points {
		rpt.AddRow(p.Suite, fmt.Sprintf("%d", p.Width),
			fmt.Sprintf("%.1f", p.MBps),
			fmt.Sprintf("%.0f", p.RecordsSec),
			fmt.Sprintf("%.4f", p.SyscallsPerRecord))
	}
	fmt.Println(rpt)

	// RSA op rates.
	fmt.Printf("generating %d-bit RSA key...\n", *rsaBits)
	key, err := rsa.GenerateKey(ssl.NewPRNG(1), *rsaBits)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rnd := ssl.NewPRNG(2)
	msg := make([]byte, 48)
	ct, err := key.EncryptPKCS1(rnd, msg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	key.DecryptPKCS1(rnd, ct) // warm blinding
	opRate := func(fn func()) float64 {
		var n int
		start := time.Now()
		for time.Since(start) < *dur {
			fn()
			n++
		}
		return float64(n) / time.Since(start).Seconds()
	}
	priv := opRate(func() { key.DecryptPKCS1(rnd, ct) })
	pub := opRate(func() { key.EncryptPKCS1(rnd, msg) })
	rt := perf.NewTable("asymmetric op rates", "operation", "ops/s", "equivalent MB/s")
	rt.AddRow("rsa private (decrypt)", fmt.Sprintf("%.1f", priv),
		fmt.Sprintf("%.3f", priv*float64(key.Size())/1e6))
	rt.AddRow("rsa public (encrypt)", fmt.Sprintf("%.1f", pub),
		fmt.Sprintf("%.3f", pub*float64(key.Size())/1e6))

	// Ephemeral DH (the DHE suites' per-handshake cost).
	params := dh.Group1024()
	ephemeral, err := dh.GenerateKey(ssl.NewPRNG(3), params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	peer, err := dh.GenerateKey(ssl.NewPRNG(4), params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rndDH := ssl.NewPRNG(5)
	genRate := opRate(func() { dh.GenerateKey(rndDH, params) })
	ssRate := opRate(func() { ephemeral.SharedSecret(peer.Y) })
	rt.AddRow("dh-1024 generate", fmt.Sprintf("%.1f", genRate), "")
	rt.AddRow("dh-1024 agree", fmt.Sprintf("%.1f", ssRate), "")
	fmt.Println(rt)
}

// bulkPoint is one (primitive, buffer size) measurement in the same
// units the live /debug/pathlength fold reports.
type bulkPoint struct {
	Size          int     `json:"size"`
	MBps          float64 `json:"mbps"`
	OpsSec        float64 `json:"ops_per_sec"`
	CyclesPerByte float64 `json:"cycles_per_byte"`
	InstrPerByte  float64 `json:"instr_per_byte,omitempty"`
}

type bulkPrim struct {
	Name              string      `json:"name"`
	ModelCPI          float64     `json:"model_cpi,omitempty"`
	ModelInstrPerByte float64     `json:"model_instr_per_byte,omitempty"`
	Points            []bulkPoint `json:"points"`
}

type bulkReport struct {
	ModelGHz   float64       `json:"model_ghz"`
	Prims      []bulkPrim    `json:"prims"`
	RecordPath []recordPoint `json:"record_path"`
}

// recordPoint is one (suite, flight width) measurement of the sealed
// record path — the flight-width amortization curve in machine-
// readable form. Width -1 is the sequential record-at-a-time path
// (flights disabled), 0 one MAC lane per core, n a fixed lane count;
// syscalls/record is transport writes per sealed record (1 on the
// sequential path, ~1/64 once a flight window flushes vectored).
type recordPoint struct {
	Suite             string  `json:"suite"`
	Width             int     `json:"width"`
	MBps              float64 `json:"mbps"`
	RecordsSec        float64 `json:"records_per_sec"`
	SyscallsPerRecord float64 `json:"syscalls_per_record"`
}

// vecDiscard is /dev/null with a vectored entry point, so the sweep
// measures sealing and flush batching rather than a transport.
type vecDiscard struct{}

func (vecDiscard) Read(p []byte) (int, error)  { return 0, io.EOF }
func (vecDiscard) Write(p []byte) (int, error) { return len(p), nil }
func (vecDiscard) WriteBuffers(bufs [][]byte) (int64, error) {
	var n int64
	for _, b := range bufs {
		n += int64(len(b))
	}
	return n, nil
}

// recordSweep drives 1 MiB application writes through an armed record
// layer at each pipeline width, for the gate pair of suites (the
// cheap stream cipher and the block cipher the bulk baseline tracks).
func recordSweep(dur time.Duration) ([]recordPoint, error) {
	const chunk = 1 << 20
	payload := workload.Payload(chunk)
	var out []recordPoint
	for _, name := range []string{"RC4-MD5", "AES128-SHA"} {
		s, err := suite.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, width := range []int{-1, 1, 2, 4, 0} {
			l := record.NewLayer(vecDiscard{})
			key := workload.Payload(s.KeyLen)
			iv := workload.Payload(s.IVLen)
			wc, err := s.NewCipher(key, iv, true)
			if err != nil {
				return nil, err
			}
			wm, err := s.NewMAC(workload.Payload(s.MACLen()))
			if err != nil {
				return nil, err
			}
			l.SetWriteState(wc, wm)
			write := func() error {
				if width < 0 {
					return l.WriteRecord(record.TypeApplicationData, payload)
				}
				return l.WriteFlight(record.TypeApplicationData, payload)
			}
			if width >= 0 {
				l.SetSealPipeline(width)
			}
			// Warm: build flight state, fill the seal pool.
			if err := write(); err != nil {
				return nil, err
			}
			before := l.Stats
			var n int
			start := time.Now()
			for time.Since(start) < dur {
				if err := write(); err != nil {
					return nil, err
				}
				n++
			}
			elapsed := time.Since(start).Seconds()
			records := l.Stats.RecordsWritten - before.RecordsWritten
			writes := l.Stats.WriteCalls - before.WriteCalls
			pt := recordPoint{Suite: name, Width: width}
			if elapsed > 0 {
				pt.MBps = float64(n) * chunk / elapsed / 1e6
				pt.RecordsSec = float64(records) / elapsed
			}
			if records > 0 {
				pt.SyscallsPerRecord = float64(writes) / float64(records)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// modelName maps cryptospeed's primitive names onto the pathlen
// model's rows (aes-256 and the HMACs have no model row).
func modelName(name string) string {
	switch name {
	case "aes-128":
		return "AES"
	case "des":
		return "DES"
	case "3des":
		return "3DES"
	case "rc4":
		return "RC4"
	case "md5":
		return "MD5"
	case "sha1":
		return "SHA-1"
	}
	return ""
}

// batchPoint is one width of the amortization curve.
type batchPoint struct {
	Batch       int     `json:"batch"`
	DecryptsSec float64 `json:"decrypts_per_sec"`
	Speedup     float64 `json:"speedup"` // ops/s relative to width 1
}

type batchReport struct {
	Bits     int          `json:"bits"`
	Duration string       `json:"duration"`
	Points   []batchPoint `json:"points"`
}

// batchMode measures the Fiat batch-RSA amortization curve: decrypted
// ciphertexts per second at widths 1..max, where width 1 is the
// engine's per-request CRT path and wider points resolve the whole
// window with one full-size exponentiation (KeySet.DecryptBatch).
func batchMode(bits, max int, dur time.Duration, jsonOut bool) error {
	if max > rsabatch.MaxBatch {
		return fmt.Errorf("cryptospeed: -batch %d exceeds the maximum width %d", max, rsabatch.MaxBatch)
	}
	if !jsonOut {
		fmt.Printf("generating %d-bit batch key set (width %d)...\n", bits, max)
	}
	ks, err := rsabatch.GenerateKeySet(ssl.NewPRNG(1), bits, max)
	if err != nil {
		return err
	}
	rnd := ssl.NewPRNG(2)
	cts := make([][]byte, max)
	for i, key := range ks.Keys {
		msg := workload.Payload(48)
		if cts[i], err = key.EncryptPKCS1(rnd, msg); err != nil {
			return err
		}
	}

	report := batchReport{Bits: bits, Duration: dur.String()}
	for w := 1; w <= max; w++ {
		idxs := make([]int, w)
		for i := range idxs {
			idxs[i] = i
		}
		var n int
		start := time.Now()
		for time.Since(start) < dur {
			if w == 1 {
				// The singleton path a batch engine takes when no
				// concurrent request arrives in the linger window.
				if _, err := ks.Keys[0].DecryptPKCS1(rnd, cts[0]); err != nil {
					return err
				}
			} else {
				_, errs, err := ks.DecryptBatch(rnd, idxs, cts[:w])
				if err != nil {
					return err
				}
				for _, e := range errs {
					if e != nil {
						return e
					}
				}
			}
			n += w
		}
		report.Points = append(report.Points, batchPoint{
			Batch:       w,
			DecryptsSec: float64(n) / time.Since(start).Seconds(),
		})
	}
	base := report.Points[0].DecryptsSec
	for i := range report.Points {
		report.Points[i].Speedup = report.Points[i].DecryptsSec / base
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	t := perf.NewTable(fmt.Sprintf("batch RSA decrypt, %d-bit shared modulus", bits),
		"batch", "decrypts/s", "speedup")
	for _, p := range report.Points {
		t.AddRow(fmt.Sprintf("%d", p.Batch),
			fmt.Sprintf("%.1f", p.DecryptsSec),
			fmt.Sprintf("%.2fx", p.Speedup))
	}
	fmt.Println(t)
	return nil
}

func sizeHeaders() []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("%dB", s)
	}
	return out
}
