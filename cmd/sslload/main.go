// Command sslload drives HTTPS-like load against sslserver and
// reports coordinated-omission-safe per-phase latency.
//
// Open loop (fixed arrival rate):
//
//	sslload -addr localhost:4433 -rate 200 -duration 10s -json out.json
//
// Closed loop (fixed concurrency):
//
//	sslload -addr localhost:4433 -concurrency 8 -duration 10s
//
// Self-contained smoke (spins up an in-process server, then checks
// the report against the baseline shape gate):
//
//	sslload -selftest -duration 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sslperf/internal/baseline"
	"sslperf/internal/loadgen"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:4433", "target server address")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate (conns/s); 0 = closed loop")
		concurrency = flag.Int("concurrency", 0, "closed-loop workers / open-loop in-flight cap (0 = default)")
		duration    = flag.Duration("duration", 10*time.Second, "measured window")
		warmup      = flag.Duration("warmup", 2*time.Second, "warmup window discarded from distributions")
		requests    = flag.Int("requests", 1, "requests per connection")
		resume      = flag.Float64("resume", 0, "fraction of connections attempting session resumption [0,1]")
		suites      = flag.String("suites", "", "weighted cipher-suite mix, e.g. RC4-MD5:3,DES-CBC3-SHA:1 (empty = offer all)")
		useTLS      = flag.Bool("tls", false, "offer TLS 1.0 instead of SSL 3.0")
		seed        = flag.Uint64("seed", 0, "deterministic PRNG seed (0 = time-based)")
		jsonOut     = flag.String("json", "", "write machine-readable report to this file")
		note        = flag.String("note", "", "free-form note embedded in the JSON report")
		selftest    = flag.Bool("selftest", false, "start an in-process server, load it, and gate the report shape")
		keyBits     = flag.Int("keybits", 1024, "selftest server RSA key size")
		fileSize    = flag.Int("filesize", 1024, "selftest server response payload bytes")
	)
	flag.Parse()

	mix, err := loadgen.ParseSuiteMix(*suites)
	if err != nil {
		fatal(err)
	}
	cfg := loadgen.Config{
		Addr:           *addr,
		Rate:           *rate,
		Concurrency:    *concurrency,
		Duration:       *duration,
		Warmup:         *warmup,
		Requests:       *requests,
		ResumeFraction: *resume,
		Mix:            mix,
		TLS:            *useTLS,
		Seed:           *seed,
	}

	if *selftest {
		srv, err := loadgen.StartServer(loadgen.ServerOptions{
			KeyBits:  *keyBits,
			FileSize: *fileSize,
			Seed:     *seed,
		})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		cfg.Addr = srv.Addr()
		if cfg.Rate == 0 && cfg.Concurrency == 0 {
			cfg.Rate = 200 // exercise the coordinated-omission path by default
		}
		fmt.Printf("selftest server on %s (%d-bit key, %d-byte payload)\n\n", cfg.Addr, *keyBits, *fileSize)
	}

	res, err := loadgen.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Text())

	rep := res.Report("sslload "+strings.Join(os.Args[1:], " "), *note)
	if *jsonOut != "" {
		if err := rep.Write(*jsonOut); err != nil {
			fatal(err)
		}
		fmt.Printf("\nreport written to %s\n", *jsonOut)
	}

	if *selftest {
		// The smoke gate: the run must have done real work, recorded
		// clean distributions, and produced a shape-valid report.
		if res.Done == 0 || res.Failed > res.Done/10 {
			fatal(fmt.Errorf("selftest: %d done, %d failed: %v", res.Done, res.Failed, res.Errors))
		}
		violations, known := baseline.CheckShape(rep)
		if !known {
			fatal(fmt.Errorf("selftest: bench %q has no registered shape", rep.Bench))
		}
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "shape violation [%s]: %s\n", v.Check, v.Detail)
			}
			os.Exit(1)
		}
		fmt.Printf("\nselftest OK: %d connections, report passes the %s shape gate\n", res.Done, rep.Bench)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sslload:", err)
	os.Exit(1)
}
