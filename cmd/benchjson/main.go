// Command benchjson runs `go test -bench` on one package and writes
// the parsed results as machine-readable JSON in the shape of the
// committed docs/BENCH_*.json files, so `make bench` can refresh them
// without hand-editing numbers out of test output.
//
// Every metric the benchmark reports is kept — ns/op, B/op,
// allocs/op, and custom ReportMetric units such as decrypts/s — and
// benchmarks that sweep a `/batch=N` parameter get a derived speedup
// column relative to their batch=1 point.
//
// Beyond producing reports, benchjson is also the drift gate:
//
//	benchjson -pkg ./internal/rsabatch/ -baseline docs/BENCH_rsa_batch.json
//
// compares the fresh run against a committed baseline and exits
// non-zero when any metric regresses beyond tolerance, and
//
//	benchjson -checkdrift docs
//
// re-validates every committed report against the paper's expectation
// shapes (and, when docs/bench_history/ has archived runs, against
// the most recent archive) without running any benchmarks, and
//
//	benchjson -trend docs
//
// renders every committed report's metrics as sparkline trend tables
// over the docs/bench_history/ archives, so a slow drift across many
// `make bench` refreshes is visible at a glance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"

	"sslperf/internal/baseline"
	"sslperf/internal/history"
)

func main() {
	var (
		pkg        = flag.String("pkg", "", "package to benchmark (e.g. ./internal/rsabatch/)")
		bench      = flag.String("bench", ".", "benchmark regex passed to -bench")
		name       = flag.String("name", "", "value for the \"bench\" field (default: the regex)")
		out        = flag.String("out", "", "output file (default: stdout)")
		note       = flag.String("note", "", "free-text note recorded in the JSON")
		count      = flag.Int("count", 1, "runs per benchmark; metrics are averaged")
		btime      = flag.String("benchtime", "", "passed through as -benchtime")
		quiet      = flag.Bool("quiet", false, "suppress the raw go test output")
		basePath   = flag.String("baseline", "", "compare the fresh run against this committed report; exit non-zero on regression")
		tolPct     = flag.Float64("tolerance", 0, "relative noise tolerance in percent for -baseline/-checkdrift (0 = default)")
		driftDir   = flag.String("checkdrift", "", "validate every BENCH_*.json under this directory against the paper shapes and history; runs no benchmarks")
		historyDir = flag.String("history", "", "bench_history archive dir for -checkdrift/-trend (default <dir>/bench_history)")
		trendDir   = flag.String("trend", "", "render every BENCH_*.json under this directory as per-metric sparkline trend tables over its bench_history archives; runs no benchmarks")
	)
	flag.Parse()

	tol := baseline.DefaultTolerance()
	if *tolPct > 0 {
		tol.RelPct = *tolPct
	}

	if *driftDir != "" {
		hist := *historyDir
		if hist == "" {
			hist = *driftDir + "/" + baseline.HistoryDir
		}
		os.Exit(checkDrift(os.Stdout, *driftDir, hist, tol))
	}

	if *trendDir != "" {
		hist := *historyDir
		if hist == "" {
			hist = *trendDir + "/" + baseline.HistoryDir
		}
		os.Exit(renderTrend(os.Stdout, *trendDir, hist))
	}

	if *pkg == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -pkg is required (or -checkdrift <dir>)")
		os.Exit(2)
	}

	args := []string{"test", "-run", "NONE", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *btime != "" {
		args = append(args, "-benchtime", *btime)
	}
	args = append(args, *pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if !*quiet {
		os.Stdout.Write(raw)
	}

	results, _, err := parseBenchOutput(string(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v (regex %q matched nothing runnable in %s?)\n", err, *bench, *pkg)
		os.Exit(1)
	}

	rep := &baseline.Report{
		Bench:   *name,
		Date:    time.Now().Format("2006-01-02"),
		Machine: baseline.Machine(),
		Command: "go " + strings.Join(args, " "),
		Note:    *note,
		Results: results,
	}
	if rep.Bench == "" {
		rep.Bench = *bench
	}
	deriveSpeedups(rep)

	if *out == "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
	} else if err := rep.Write(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	} else if !*quiet {
		fmt.Println("wrote", *out)
	}

	if *basePath != "" {
		base, err := baseline.Load(*basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		drift := baseline.Compare(base, rep, tol)
		fmt.Print(drift.Summary())
		if drift.Failed() {
			os.Exit(1)
		}
	}
}

// parseBenchOutput turns `go test -bench` output into averaged
// results. It returns an error when no benchmark line parsed — the
// usual cause is a -bench regex that matched nothing.
func parseBenchOutput(raw string) (map[string]*baseline.BenchResult, []string, error) {
	type acc struct {
		iters int64
		sums  map[string]float64
		runs  int64
	}
	accs := map[string]*acc{}
	var order []string
	for _, line := range strings.Split(raw, "\n") {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name  N  value unit  [value unit ...]
		if len(fields) < 4 || (len(fields)%2) != 0 {
			continue
		}
		bname := strings.TrimPrefix(trimProcs(fields[0]), "Benchmark")
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		a := accs[bname]
		if a == nil {
			a = &acc{sums: map[string]float64{}}
			accs[bname] = a
			order = append(order, bname)
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			a.sums[fields[i+1]] += v
		}
		if !ok {
			continue
		}
		a.iters += iters
		a.runs++
	}

	results := map[string]*baseline.BenchResult{}
	for _, bname := range order {
		a := accs[bname]
		if a.runs == 0 {
			// Every run of this benchmark had an unparseable metric.
			continue
		}
		r := &baseline.BenchResult{
			Iterations: a.iters / a.runs,
			Metrics:    map[string]float64{},
		}
		for unit, sum := range a.sums {
			r.Metrics[unit] = round3(sum / float64(a.runs))
		}
		results[bname] = r
	}
	if len(results) == 0 {
		return nil, nil, fmt.Errorf("no benchmark results parsed")
	}
	return results, order, nil
}

// deriveSpeedups fills in the derived speedup column: within each
// `<prefix>/batch=N` family, rate metrics (anything ending in /s)
// relative to the batch=1 point; ns/op as fallback for benchmarks
// that report no rate.
func deriveSpeedups(rep *baseline.Report) {
	families := map[string][]string{}
	for bname := range rep.Results {
		if i := strings.Index(bname, "/batch="); i >= 0 {
			families[bname[:i]] = append(families[bname[:i]], bname)
		}
	}
	for prefix, members := range families {
		base := rep.Results[prefix+"/batch=1"]
		if base == nil {
			continue
		}
		sort.Strings(members)
		for _, bname := range members {
			r := rep.Results[bname]
			if s := rateSpeedup(r, base); s > 0 {
				r.Speedup = round3(s)
			}
		}
	}
}

// checkDrift validates every committed report under dir against the
// registered expectation shapes, and against the newest archived run
// in historyDir when one exists. Returns the process exit code.
func checkDrift(w *os.File, dir, historyDir string, tol baseline.Tolerance) int {
	paths, reports, err := baseline.Committed(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	if len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no BENCH_*.json reports under %s\n", dir)
		return 1
	}
	failures := 0
	for i, rep := range reports {
		violations, known := baseline.CheckShape(rep)
		switch {
		case !known:
			fmt.Fprintf(w, "%-36s skipped (no registered shape for bench %q)\n", paths[i], rep.Bench)
			continue
		case len(violations) > 0:
			failures += len(violations)
			fmt.Fprintf(w, "%-36s SHAPE DRIFT\n", paths[i])
			for _, v := range violations {
				fmt.Fprintf(w, "    [%s] %s\n", v.Check, v.Detail)
			}
		default:
			fmt.Fprintf(w, "%-36s shape OK\n", paths[i])
		}

		// Trend: committed report vs the newest archived run of the
		// same bench, so a silent regression in a refreshed report is
		// caught even though both individually satisfy the shape.
		_, hist, err := baseline.History(historyDir, rep.Bench)
		if err != nil || len(hist) == 0 {
			continue
		}
		drift := baseline.Compare(hist[len(hist)-1], rep, tol)
		if drift.Failed() {
			failures += len(drift.Failures)
			fmt.Fprintf(w, "%-36s DRIFT vs last archive\n", paths[i])
			for _, d := range drift.Failures {
				fmt.Fprintf(w, "    %s\n", d.String())
			}
			for _, m := range drift.Missing {
				fmt.Fprintf(w, "    missing result %q\n", m)
			}
		} else {
			fmt.Fprintf(w, "%-36s trend OK (vs %d archived)\n", paths[i], len(hist))
		}
	}
	if failures > 0 {
		fmt.Fprintf(w, "\ncheckdrift: %d failure(s)\n", failures)
		return 1
	}
	fmt.Fprintf(w, "\ncheckdrift: all %d report(s) within tolerance\n", len(reports))
	return 0
}

// renderTrend prints one table per committed report: every (result,
// metric) as a sparkline over the archived runs ending at the
// committed value, with the first→last relative change. Reports with
// no archives still render (a one-point trend), so the tables always
// reflect the whole docs/ directory. Returns the process exit code.
func renderTrend(w *os.File, dir, historyDir string) int {
	paths, reports, err := baseline.Committed(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	if len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no BENCH_*.json reports under %s\n", dir)
		return 1
	}
	for i, rep := range reports {
		_, hist, err := baseline.History(historyDir, rep.Bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 1
		}
		fmt.Fprintf(w, "%s — %s (%d archived run(s))\n", rep.Bench, paths[i], len(hist))
		series := baseline.Trends(hist, rep)
		resW, metW := len("result"), len("metric")
		for _, s := range series {
			if len(s.Result) > resW {
				resW = len(s.Result)
			}
			if len(s.Metric) > metW {
				metW = len(s.Metric)
			}
		}
		fmt.Fprintf(w, "  %-*s  %-*s  %12s  %12s  %8s  %s\n",
			resW, "result", metW, "metric", "first", "last", "Δ%", "trend")
		for _, s := range series {
			fmt.Fprintf(w, "  %-*s  %-*s  %12.3f  %12.3f  %+7.1f%%  %s\n",
				resW, s.Result, metW, s.Metric, s.First(), s.Last(), s.DeltaPct(),
				history.Sparkline(s.Values, 24))
		}
		fmt.Fprintln(w)
	}
	return 0
}

// rateSpeedup compares r to base on the first shared rate metric
// (unit ending in "/s", higher is better), falling back to inverse
// ns/op (lower is better).
func rateSpeedup(r, base *baseline.BenchResult) float64 {
	for unit, bv := range base.Metrics {
		if strings.HasSuffix(unit, "/s") && bv > 0 {
			if v, ok := r.Metrics[unit]; ok {
				return v / bv
			}
		}
	}
	if bv, ok := base.Metrics["ns/op"]; ok && r.Metrics["ns/op"] > 0 {
		return bv / r.Metrics["ns/op"]
	}
	return 0
}

// trimProcs strips the single trailing -GOMAXPROCS suffix go test
// appends ("RC4-MD5-8" → "RC4-MD5", not "RC4-MD").
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func round3(v float64) float64 {
	s, _ := strconv.ParseFloat(strconv.FormatFloat(v, 'f', 3, 64), 64)
	return s
}
