// Command benchjson runs `go test -bench` on one package and writes
// the parsed results as machine-readable JSON in the shape of the
// committed docs/BENCH_*.json files, so `make bench` can refresh them
// without hand-editing numbers out of test output.
//
// Every metric the benchmark reports is kept — ns/op, B/op,
// allocs/op, and custom ReportMetric units such as decrypts/s — and
// benchmarks that sweep a `/batch=N` parameter get a derived speedup
// column relative to their batch=1 point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

type benchResult struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	Speedup    float64            `json:"speedup,omitempty"`
}

type report struct {
	Bench   string                  `json:"bench"`
	Date    string                  `json:"date"`
	Machine string                  `json:"machine"`
	Command string                  `json:"command"`
	Note    string                  `json:"note,omitempty"`
	Results map[string]*benchResult `json:"results"`
}

func main() {
	var (
		pkg   = flag.String("pkg", "", "package to benchmark (e.g. ./internal/rsabatch/)")
		bench = flag.String("bench", ".", "benchmark regex passed to -bench")
		name  = flag.String("name", "", "value for the \"bench\" field (default: the regex)")
		out   = flag.String("out", "", "output file (default: stdout)")
		note  = flag.String("note", "", "free-text note recorded in the JSON")
		count = flag.Int("count", 1, "runs per benchmark; metrics are averaged")
		btime = flag.String("benchtime", "", "passed through as -benchtime")
		quiet = flag.Bool("quiet", false, "suppress the raw go test output")
	)
	flag.Parse()
	if *pkg == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -pkg is required")
		os.Exit(2)
	}

	args := []string{"test", "-run", "NONE", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *btime != "" {
		args = append(args, "-benchtime", *btime)
	}
	args = append(args, *pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if !*quiet {
		os.Stdout.Write(raw)
	}

	// Accumulate every run of every benchmark, then average.
	type acc struct {
		iters int64
		sums  map[string]float64
		runs  int64
	}
	accs := map[string]*acc{}
	var order []string
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name  N  value unit  [value unit ...]
		if len(fields) < 4 || (len(fields)%2) != 0 {
			continue
		}
		bname := strings.TrimPrefix(trimProcs(fields[0]), "Benchmark")
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		a := accs[bname]
		if a == nil {
			a = &acc{sums: map[string]float64{}}
			accs[bname] = a
			order = append(order, bname)
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			a.sums[fields[i+1]] += v
		}
		if !ok {
			continue
		}
		a.iters += iters
		a.runs++
	}
	if len(accs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in output")
		os.Exit(1)
	}

	rep := report{
		Bench:   *name,
		Date:    time.Now().Format("2006-01-02"),
		Machine: machine(),
		Command: "go " + strings.Join(args, " "),
		Note:    *note,
		Results: map[string]*benchResult{},
	}
	if rep.Bench == "" {
		rep.Bench = *bench
	}
	for _, bname := range order {
		a := accs[bname]
		r := &benchResult{
			Iterations: a.iters / a.runs,
			Metrics:    map[string]float64{},
		}
		for unit, sum := range a.sums {
			r.Metrics[unit] = round3(sum / float64(a.runs))
		}
		rep.Results[bname] = r
	}

	// Derived speedups: within each `<prefix>/batch=N` family, rate
	// metrics (anything ending in /s) relative to the batch=1 point;
	// ns/op as fallback for benchmarks that report no rate.
	families := map[string][]string{}
	for bname := range rep.Results {
		if i := strings.Index(bname, "/batch="); i >= 0 {
			families[bname[:i]] = append(families[bname[:i]], bname)
		}
	}
	for prefix, members := range families {
		base := rep.Results[prefix+"/batch=1"]
		if base == nil {
			continue
		}
		sort.Strings(members)
		for _, bname := range members {
			r := rep.Results[bname]
			if s := rateSpeedup(r, base); s > 0 {
				r.Speedup = round3(s)
			}
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	} else if !*quiet {
		fmt.Println("wrote", *out)
	}
}

// rateSpeedup compares r to base on the first shared rate metric
// (unit ending in "/s", higher is better), falling back to inverse
// ns/op (lower is better).
func rateSpeedup(r, base *benchResult) float64 {
	for unit, bv := range base.Metrics {
		if strings.HasSuffix(unit, "/s") && bv > 0 {
			if v, ok := r.Metrics[unit]; ok {
				return v / bv
			}
		}
	}
	if bv, ok := base.Metrics["ns/op"]; ok && r.Metrics["ns/op"] > 0 {
		return bv / r.Metrics["ns/op"]
	}
	return 0
}

// trimProcs strips the single trailing -GOMAXPROCS suffix go test
// appends ("RC4-MD5-8" → "RC4-MD5", not "RC4-MD").
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func round3(v float64) float64 {
	s, _ := strconv.ParseFloat(strconv.FormatFloat(v, 'f', 3, 64), 64)
	return s
}

// machine describes the host the numbers were taken on.
func machine() string {
	desc := fmt.Sprintf("%s/%s, %s", runtime.GOOS, runtime.GOARCH, runtime.Version())
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "model name") {
				if _, model, ok := strings.Cut(line, ":"); ok {
					return strings.TrimSpace(model) + ", " + desc
				}
			}
		}
	}
	return desc
}
