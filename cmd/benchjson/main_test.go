package main

import (
	"os"
	"path/filepath"
	"testing"

	"sslperf/internal/baseline"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: sslperf/internal/rsabatch
BenchmarkBatchDecrypt/batch=1-8         100    1000000 ns/op    1000.0 decrypts/s    64 B/op    2 allocs/op
BenchmarkBatchDecrypt/batch=4-8         400     300000 ns/op    3300.0 decrypts/s    80 B/op    3 allocs/op
BenchmarkBatchDecrypt/batch=1-8         100    1020000 ns/op    980.0 decrypts/s     64 B/op    2 allocs/op
BenchmarkBatchDecrypt/batch=4-8         400     310000 ns/op    3200.0 decrypts/s    80 B/op    3 allocs/op
PASS
`

func TestParseBenchOutputAverages(t *testing.T) {
	results, order, err := parseBenchOutput(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "BatchDecrypt/batch=1" {
		t.Fatalf("order = %v", order)
	}
	b1 := results["BatchDecrypt/batch=1"]
	if b1 == nil || b1.Iterations != 100 {
		t.Fatalf("batch=1 = %+v", b1)
	}
	if got := b1.Metrics["decrypts/s"]; got != 990 {
		t.Fatalf("averaged decrypts/s = %v, want 990", got)
	}
	if got := b1.Metrics["ns/op"]; got != 1010000 {
		t.Fatalf("averaged ns/op = %v", got)
	}
}

func TestParseBenchOutputNoMatches(t *testing.T) {
	for _, raw := range []string{
		"PASS\nok  \tsslperf/internal/rsabatch\t0.01s\n",
		"", // empty output
		// A benchmark line whose every run has a garbage metric must
		// not slip through as a zero-run result (old divide-by-zero).
		"BenchmarkBroken-8    100    oops ns/op\nPASS\n",
	} {
		if _, _, err := parseBenchOutput(raw); err == nil {
			t.Fatalf("no error for output %q", raw)
		}
	}
}

func TestDeriveSpeedups(t *testing.T) {
	results, _, err := parseBenchOutput(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	rep := &baseline.Report{Bench: "x", Results: results}
	deriveSpeedups(rep)
	s := results["BatchDecrypt/batch=4"].Speedup
	if s < 3.2 || s > 3.4 {
		t.Fatalf("batch=4 speedup = %v", s)
	}
	if results["BatchDecrypt/batch=1"].Speedup != 1 {
		t.Fatalf("batch=1 speedup = %v", results["BatchDecrypt/batch=1"].Speedup)
	}
}

// writeBatchReport writes a minimal shape-valid rsa-batch report.
func writeBatchReport(t *testing.T, path string, rate4 float64) {
	t.Helper()
	rep := &baseline.Report{
		Bench: "rsa-batch-amortization",
		Date:  "2026-08-06",
		Results: map[string]*baseline.BenchResult{
			"BatchDecrypt/batch=1": {Iterations: 100, Metrics: map[string]float64{"decrypts/s": 1000}},
			"BatchDecrypt/batch=2": {Iterations: 200, Metrics: map[string]float64{"decrypts/s": 1900}, Speedup: 1.9},
			"BatchDecrypt/batch=4": {Iterations: 400, Metrics: map[string]float64{"decrypts/s": rate4}, Speedup: rate4 / 1000},
			"BatchDecrypt/batch=8": {Iterations: 800, Metrics: map[string]float64{"decrypts/s": 4000}, Speedup: 4},
		},
	}
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDriftPassAndFail(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, baseline.HistoryDir)
	if err := os.MkdirAll(hist, 0o755); err != nil {
		t.Fatal(err)
	}
	writeBatchReport(t, filepath.Join(dir, "BENCH_rsa_batch.json"), 3300)
	writeBatchReport(t, filepath.Join(hist, "BENCH_rsa_batch-20260806000000.json"), 3300)

	if code := checkDrift(os.Stdout, dir, hist, baseline.DefaultTolerance()); code != 0 {
		t.Fatalf("healthy dir exit = %d", code)
	}

	// Perturb the committed report: batch=4 collapses below batch=2 —
	// both the shape gate (monotonicity) and the trend gate (vs the
	// archived 3300) must flag it.
	writeBatchReport(t, filepath.Join(dir, "BENCH_rsa_batch.json"), 1100)
	if code := checkDrift(os.Stdout, dir, hist, baseline.DefaultTolerance()); code != 1 {
		t.Fatalf("perturbed dir exit = %d, want 1", code)
	}
}

func TestCheckDriftEmptyDirFails(t *testing.T) {
	if code := checkDrift(os.Stdout, t.TempDir(), "nope", baseline.DefaultTolerance()); code != 1 {
		t.Fatal("empty dir must fail the gate")
	}
}
