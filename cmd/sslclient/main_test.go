package main

import (
	"testing"

	"sslperf/internal/loadgen"
	"sslperf/internal/ssl"
)

func TestRunPoolParallel(t *testing.T) {
	srv, err := loadgen.StartServer(loadgen.ServerOptions{KeyBits: 512, FileSize: 256, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	base := &ssl.Config{InsecureSkipVerify: true}
	stats := runPool(srv.Addr(), base, 99, 12, 4, 2, false, t.Logf)
	if stats.Workers != 4 {
		t.Fatalf("workers = %d", stats.Workers)
	}
	if stats.Failed != 0 || stats.Done != 12 {
		t.Fatalf("done %d, failed %d", stats.Done, stats.Failed)
	}
	if stats.Resumed != 0 {
		t.Fatalf("resumed %d without -resume", stats.Resumed)
	}
	if stats.Requests != 24 || stats.Bytes != 12*2*256 {
		t.Fatalf("requests %d bytes %d", stats.Requests, stats.Bytes)
	}
}

func TestRunPoolResumePerWorkerChain(t *testing.T) {
	srv, err := loadgen.StartServer(loadgen.ServerOptions{KeyBits: 512, FileSize: 256, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	base := &ssl.Config{InsecureSkipVerify: true}
	// 3 workers × 4 connections with resumption: each worker's first
	// connection is full, the remaining three chain its session.
	stats := runPool(srv.Addr(), base, 21, 12, 3, 1, true, t.Logf)
	if stats.Failed != 0 || stats.Done != 12 {
		t.Fatalf("done %d, failed %d", stats.Done, stats.Failed)
	}
	if want := 12 - 3; stats.Resumed != want {
		t.Fatalf("resumed %d, want %d (one full handshake per worker)", stats.Resumed, want)
	}
}

func TestRunPoolClampsWorkers(t *testing.T) {
	srv, err := loadgen.StartServer(loadgen.ServerOptions{KeyBits: 512, FileSize: 64, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	base := &ssl.Config{InsecureSkipVerify: true}
	stats := runPool(srv.Addr(), base, 5, 2, 8, 1, false, t.Logf)
	if stats.Workers != 2 {
		t.Fatalf("workers = %d, want clamp to n=2", stats.Workers)
	}
	if stats.Done != 2 || stats.Failed != 0 {
		t.Fatalf("done %d failed %d", stats.Done, stats.Failed)
	}
}
