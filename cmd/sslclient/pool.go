package main

import (
	"sync"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/ssl"
)

// poolStats aggregates one runPool invocation.
type poolStats struct {
	Done     int
	Resumed  int
	Failed   int
	Workers  int
	Requests int

	Handshake time.Duration // summed across connections
	Transfer  time.Duration // summed across requests
	Bytes     int
}

// runPool spreads n connections over `workers` goroutines. Each
// worker owns a private PRNG (ssl.PRNG is not safe for concurrent
// use) and its own session chain, so with resume enabled every
// connection after a worker's first resumes that worker's latest
// session — the browser-like pattern the paper's client machines
// model. logf receives per-connection failures; pass nil to discard.
func runPool(addr string, base *ssl.Config, seed uint64,
	n, workers, reqPerCon int, resume bool,
	logf func(format string, args ...any)) poolStats {

	if logf == nil {
		logf = func(string, ...any) {}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	stats := poolStats{Workers: workers}

	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		count := n / workers
		if w < n%workers {
			count++
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			rnd := ssl.NewPRNG(seed + uint64(w)*7919)
			var session *handshake.Session
			for i := 0; i < count; i++ {
				hs, xfer, bytes, resumed, err := transact(
					addr, base, rnd, session, resume, reqPerCon, &session)
				mu.Lock()
				if err != nil {
					stats.Failed++
					logf("worker %d conn %d: %v", w, i, err)
				} else {
					stats.Done++
					stats.Requests += reqPerCon
					stats.Handshake += hs
					stats.Transfer += xfer
					stats.Bytes += bytes
					if resumed {
						stats.Resumed++
					}
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}(w, count)
	}
	wg.Wait()
	return stats
}
