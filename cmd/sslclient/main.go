// Command sslclient drives HTTPS-like transactions against sslserver
// (the curl analogue of the paper's client machine) and reports
// handshake and transfer latencies, with optional session resumption.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/record"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:4433", "server address")
		n         = flag.Int("n", 10, "number of connections")
		reqPerCon = flag.Int("requests", 1, "requests per connection")
		resume    = flag.Bool("resume", false, "resume sessions after the first connection")
		suiteName = flag.String("suite", "", "restrict to one cipher suite")
		seed      = flag.Uint64("seed", 0, "PRNG seed (0 = time-based)")
		useTLS    = flag.Bool("tls", false, "offer TLS 1.0 instead of SSL 3.0")
	)
	flag.Parse()

	seedVal := *seed
	if seedVal == 0 {
		seedVal = uint64(time.Now().UnixNano())
	}
	cfg := &ssl.Config{Rand: ssl.NewPRNG(seedVal), InsecureSkipVerify: true}
	if *useTLS {
		cfg.Version = record.VersionTLS10
	}
	if *suiteName != "" {
		s, err := suite.ByName(*suiteName)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Suites = []suite.ID{s.ID}
	}

	var session *handshake.Session
	var hsTotal, xferTotal time.Duration
	var bytesTotal int
	resumedCount := 0
	for i := 0; i < *n; i++ {
		tc, err := net.Dial("tcp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		connCfg := *cfg
		if *resume {
			connCfg.Session = session
		}
		conn := ssl.ClientConn(tc, &connCfg)

		start := time.Now()
		if err := conn.Handshake(); err != nil {
			log.Fatalf("handshake %d: %v", i, err)
		}
		hsTotal += time.Since(start)
		state, _ := conn.ConnectionState()
		if state.Resumed {
			resumedCount++
		}

		r := bufio.NewReader(conn)
		for j := 0; j < *reqPerCon; j++ {
			start = time.Now()
			if _, err := conn.Write([]byte("GET /\n")); err != nil {
				log.Fatal(err)
			}
			line, err := r.ReadString('\n')
			if err != nil {
				log.Fatal(err)
			}
			size, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "LEN ")))
			if err != nil {
				log.Fatalf("bad response header %q", line)
			}
			if _, err := io.CopyN(io.Discard, r, int64(size)); err != nil {
				log.Fatal(err)
			}
			xferTotal += time.Since(start)
			bytesTotal += size
		}
		session, _ = conn.Session()
		conn.Close()
	}

	fmt.Printf("connections: %d (%d resumed)\n", *n, resumedCount)
	fmt.Printf("avg handshake: %v\n", hsTotal/time.Duration(*n))
	fmt.Printf("avg transaction: %v\n", xferTotal/time.Duration(*n**reqPerCon))
	fmt.Printf("payload bytes: %d\n", bytesTotal)
}
