// Command sslclient drives HTTPS-like transactions against sslserver
// (the curl analogue of the paper's client machine) and reports
// handshake and transfer latencies, with optional session resumption
// and concurrent connections (-parallel) for load-shaping a batched
// server.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/record"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:4433", "server address")
		n         = flag.Int("n", 10, "number of connections")
		parallel  = flag.Int("parallel", 1, "concurrent connections (each worker gets its own PRNG and session chain)")
		reqPerCon = flag.Int("requests", 1, "requests per connection")
		resume    = flag.Bool("resume", false, "resume sessions after each worker's first connection")
		suiteName = flag.String("suite", "", "restrict to one cipher suite")
		seed      = flag.Uint64("seed", 0, "PRNG seed (0 = time-based)")
		useTLS    = flag.Bool("tls", false, "offer TLS 1.0 instead of SSL 3.0")
	)
	flag.Parse()

	seedVal := *seed
	if seedVal == 0 {
		seedVal = uint64(time.Now().UnixNano())
	}
	base := &ssl.Config{InsecureSkipVerify: true}
	if *useTLS {
		base.Version = record.VersionTLS10
	}
	if *suiteName != "" {
		s, err := suite.ByName(*suiteName)
		if err != nil {
			log.Fatal(err)
		}
		base.Suites = []suite.ID{s.ID}
	}
	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	if workers > *n {
		workers = *n
	}

	var (
		mu           sync.Mutex
		hsTotal      time.Duration
		xferTotal    time.Duration
		bytesTotal   int
		resumedCount int
		failures     int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		count := *n / workers
		if w < *n%workers {
			count++
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			// Per-worker PRNG: ssl.PRNG is not safe for concurrent use.
			rnd := ssl.NewPRNG(seedVal + uint64(w)*7919)
			var session *handshake.Session
			for i := 0; i < count; i++ {
				hs, xfer, bytes, resumed, err := transact(
					*addr, base, rnd, session, *resume, *reqPerCon, &session)
				mu.Lock()
				if err != nil {
					failures++
					log.Printf("worker %d conn %d: %v", w, i, err)
				} else {
					hsTotal += hs
					xferTotal += xfer
					bytesTotal += bytes
					if resumed {
						resumedCount++
					}
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}(w, count)
	}
	wg.Wait()

	done := *n - failures
	fmt.Printf("connections: %d (%d resumed, %d failed, %d workers)\n",
		done, resumedCount, failures, workers)
	if done > 0 {
		fmt.Printf("avg handshake: %v\n", hsTotal/time.Duration(done))
		fmt.Printf("avg transaction: %v\n", xferTotal/time.Duration(done**reqPerCon))
	}
	fmt.Printf("payload bytes: %d\n", bytesTotal)
	if failures > 0 {
		log.Fatalf("%d connections failed", failures)
	}
}

// transact runs one connection: handshake, reqPerCon request/response
// exchanges, then records the session for resumption.
func transact(addr string, base *ssl.Config, rnd *ssl.PRNG,
	session *handshake.Session, resume bool, reqPerCon int,
	sessionOut **handshake.Session) (hs, xfer time.Duration, bytes int, resumed bool, err error) {

	tc, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, 0, 0, false, err
	}
	defer tc.Close()
	connCfg := *base
	connCfg.Rand = rnd
	if resume {
		connCfg.Session = session
	}
	conn := ssl.ClientConn(tc, &connCfg)

	start := time.Now()
	if err := conn.Handshake(); err != nil {
		return 0, 0, 0, false, fmt.Errorf("handshake: %w", err)
	}
	hs = time.Since(start)
	state, _ := conn.ConnectionState()
	resumed = state.Resumed

	r := bufio.NewReader(conn)
	for j := 0; j < reqPerCon; j++ {
		start = time.Now()
		if _, err := conn.Write([]byte("GET /\n")); err != nil {
			return 0, 0, 0, false, err
		}
		line, err := r.ReadString('\n')
		if err != nil {
			return 0, 0, 0, false, err
		}
		size, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "LEN ")))
		if err != nil {
			return 0, 0, 0, false, fmt.Errorf("bad response header %q", line)
		}
		if _, err := io.CopyN(io.Discard, r, int64(size)); err != nil {
			return 0, 0, 0, false, err
		}
		xfer += time.Since(start)
		bytes += size
	}
	*sessionOut, _ = conn.Session()
	conn.Close()
	return hs, xfer, bytes, resumed, nil
}
