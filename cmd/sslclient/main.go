// Command sslclient drives HTTPS-like transactions against sslserver
// (the curl analogue of the paper's client machine) and reports
// handshake and transfer latencies, with optional session resumption
// and concurrent connections (-parallel) for load-shaping a batched
// server.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/record"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:4433", "server address")
		n         = flag.Int("n", 10, "number of connections")
		parallel  = flag.Int("parallel", 1, "concurrent connections (each worker gets its own PRNG and session chain)")
		reqPerCon = flag.Int("requests", 1, "requests per connection")
		resume    = flag.Bool("resume", false, "resume sessions after each worker's first connection")
		suiteName = flag.String("suite", "", "restrict to one cipher suite")
		seed      = flag.Uint64("seed", 0, "PRNG seed (0 = time-based)")
		useTLS    = flag.Bool("tls", false, "offer TLS 1.0 instead of SSL 3.0")
	)
	flag.Parse()

	seedVal := *seed
	if seedVal == 0 {
		seedVal = uint64(time.Now().UnixNano())
	}
	base := &ssl.Config{InsecureSkipVerify: true}
	if *useTLS {
		base.Version = record.VersionTLS10
	}
	if *suiteName != "" {
		s, err := suite.ByName(*suiteName)
		if err != nil {
			log.Fatal(err)
		}
		base.Suites = []suite.ID{s.ID}
	}
	stats := runPool(*addr, base, seedVal, *n, *parallel, *reqPerCon, *resume, log.Printf)

	fmt.Printf("connections: %d (%d resumed, %d failed, %d workers)\n",
		stats.Done, stats.Resumed, stats.Failed, stats.Workers)
	if stats.Done > 0 {
		fmt.Printf("avg handshake: %v\n", stats.Handshake/time.Duration(stats.Done))
		fmt.Printf("avg transaction: %v\n", stats.Transfer/time.Duration(stats.Requests))
	}
	fmt.Printf("payload bytes: %d\n", stats.Bytes)
	if stats.Failed > 0 {
		log.Fatalf("%d connections failed", stats.Failed)
	}
}

// transact runs one connection: handshake, reqPerCon request/response
// exchanges, then records the session for resumption.
func transact(addr string, base *ssl.Config, rnd *ssl.PRNG,
	session *handshake.Session, resume bool, reqPerCon int,
	sessionOut **handshake.Session) (hs, xfer time.Duration, bytes int, resumed bool, err error) {

	tc, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, 0, 0, false, err
	}
	defer tc.Close()
	connCfg := *base
	connCfg.Rand = rnd
	if resume {
		connCfg.Session = session
	}
	conn := ssl.ClientConn(tc, &connCfg)

	start := time.Now()
	if err := conn.Handshake(); err != nil {
		return 0, 0, 0, false, fmt.Errorf("handshake: %w", err)
	}
	hs = time.Since(start)
	state, _ := conn.ConnectionState()
	resumed = state.Resumed

	r := bufio.NewReader(conn)
	for j := 0; j < reqPerCon; j++ {
		start = time.Now()
		if _, err := conn.Write([]byte("GET /\n")); err != nil {
			return 0, 0, 0, false, err
		}
		line, err := r.ReadString('\n')
		if err != nil {
			return 0, 0, 0, false, err
		}
		size, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "LEN ")))
		if err != nil {
			return 0, 0, 0, false, fmt.Errorf("bad response header %q", line)
		}
		if _, err := io.CopyN(io.Discard, r, int64(size)); err != nil {
			return 0, 0, 0, false, err
		}
		xfer += time.Since(start)
		bytes += size
	}
	*sessionOut, _ = conn.Session()
	conn.Close()
	return hs, xfer, bytes, resumed, nil
}
