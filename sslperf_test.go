package sslperf_test

import (
	"io"
	"testing"
	"time"

	"sslperf"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does: identity, pipe, handshake, echo, resumption.
func TestFacadeEndToEnd(t *testing.T) {
	id, err := sslperf.NewIdentity(sslperf.NewPRNG(1), 512, "facade", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	cache := sslperf.NewSessionCache(8)

	run := func(session *sslperf.Session) (*sslperf.Conn, *sslperf.Conn) {
		ct, st := sslperf.Pipe()
		client := sslperf.ClientConn(ct, &sslperf.Config{
			Rand:               sslperf.NewPRNG(2),
			InsecureSkipVerify: true,
			Session:            session,
		})
		server := sslperf.ServerConn(st, &sslperf.Config{
			Rand:         sslperf.NewPRNG(3),
			Key:          id.Key,
			CertDER:      id.CertDER,
			SessionCache: cache,
		})
		errc := make(chan error, 1)
		go func() { errc <- client.Handshake() }()
		if err := server.Handshake(); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		return client, server
	}

	client, server := run(nil)
	go client.Write([]byte("facade"))
	buf := make([]byte, 6)
	if _, err := io.ReadFull(server, buf); err != nil || string(buf) != "facade" {
		t.Fatalf("echo: %q %v", buf, err)
	}
	sess, err := client.Session()
	if err != nil {
		t.Fatal(err)
	}

	client2, _ := run(sess)
	state, _ := client2.ConnectionState()
	if !state.Resumed {
		t.Fatal("facade resumption failed")
	}
}

func TestFacadeAnatomy(t *testing.T) {
	id, err := sslperf.NewIdentity(sslperf.NewPRNG(4), 512, "anat", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	ct, st := sslperf.Pipe()
	client := sslperf.ClientConn(ct, &sslperf.Config{
		Rand: sslperf.NewPRNG(5), InsecureSkipVerify: true,
	})
	server := sslperf.ServerConn(st, &sslperf.Config{
		Rand: sslperf.NewPRNG(6), Key: id.Key, CertDER: id.CertDER,
	})
	a := sslperf.NewAnatomy()
	server.SetAnatomy(a)
	go client.Handshake()
	if err := server.Handshake(); err != nil {
		t.Fatal(err)
	}
	if len(a.Steps) < 9 || a.Total() == 0 {
		t.Fatalf("anatomy: %d steps, total %v", len(a.Steps), a.Total())
	}
}

func TestFacadeSuites(t *testing.T) {
	if len(sslperf.Suites()) != 11 {
		t.Fatalf("suites = %d", len(sslperf.Suites()))
	}
	s, err := sslperf.SuiteByName("DES-CBC3-SHA")
	if err != nil || s.Name != "DES-CBC3-SHA" {
		t.Fatal(err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(sslperf.Experiments()) != 23 {
		t.Fatalf("experiments = %d", len(sslperf.Experiments()))
	}
	e, err := sslperf.ExperimentByID("table4")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(&sslperf.ExperimentConfig{Quick: true, KeyBits: 512})
	if err != nil || len(rep.Tables) == 0 {
		t.Fatalf("run: %v", err)
	}
}
