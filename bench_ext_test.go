package sslperf_test

import (
	"testing"

	"sslperf"
	"sslperf/internal/accel"
	"sslperf/internal/dh"
	"sslperf/internal/hmacx"
	"sslperf/internal/record"
	"sslperf/internal/sslcrypto"
	"sslperf/internal/webmodel"
	"sslperf/internal/workload"
)

// Benchmarks for the extensions beyond the paper's tables: DHE key
// exchange, TLS 1.0, HMAC/PRF, and the simulated crypto engine.

func benchExtServer(b *testing.B, suiteName string, version uint16) *webmodel.Server {
	id, _ := benchSetup(b)
	s, err := sslperf.SuiteByName(suiteName)
	if err != nil {
		b.Fatal(err)
	}
	srv := webmodel.NewServer(id, s)
	srv.Version = version
	return srv
}

func BenchmarkAblationKxDHEHandshake(b *testing.B) {
	srv := benchExtServer(b, "EDH-RSA-DES-CBC3-SHA", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := srv.RunTransaction(64, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationVersionTLSHandshake(b *testing.B) {
	srv := benchExtServer(b, "DES-CBC3-SHA", record.VersionTLS10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := srv.RunTransaction(1024, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHMAC(b *testing.B) {
	data := workload.Payload(1024)
	b.Run("SHA1", func(b *testing.B) {
		h := hmacx.NewSHA1(workload.Payload(20))
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			h.Reset()
			h.Write(data)
			h.Sum(nil)
		}
	})
	b.Run("MD5", func(b *testing.B) {
		h := hmacx.NewMD5(workload.Payload(16))
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			h.Reset()
			h.Write(data)
			h.Sum(nil)
		}
	})
}

func BenchmarkTLSPRF(b *testing.B) {
	secret := workload.Payload(48)
	seed := workload.Payload(64)
	for i := 0; i < b.N; i++ {
		sslcrypto.PRF10(secret, "key expansion", seed, 104)
	}
}

func BenchmarkDH(b *testing.B) {
	params := dh.Group1024()
	rnd := sslperf.NewPRNG(99)
	peer, err := dh.GenerateKey(rnd, params)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("GenerateKey", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dh.GenerateKey(rnd, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SharedSecret", func(b *testing.B) {
		key, err := dh.GenerateKey(rnd, params)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := key.SharedSecret(peer.Y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEngineSim(b *testing.B) {
	work := make([]int, 1000)
	for i := range work {
		work[i] = 16384
	}
	sim := accel.DefaultEngineSim()
	sim.AESUnits, sim.HashUnits = 4, 2
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(work); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecordLayerBulk(b *testing.B) {
	// Raw record-layer throughput per suite at 16KB fragments — the
	// bulk data transfer phase isolated from handshakes.
	for _, name := range []string{"DES-CBC3-SHA", "AES128-SHA", "RC4-MD5", "NULL-SHA"} {
		name := name
		b.Run(name, func(b *testing.B) {
			srv := benchExtServer(b, name, 0)
			sess := (*sslperf.Session)(nil)
			_, s2, err := srv.RunTransaction(64, nil)
			if err != nil {
				b.Fatal(err)
			}
			sess = s2
			b.SetBytes(16384)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, s3, err := srv.RunTransaction(16384, sess)
				if err != nil {
					b.Fatal(err)
				}
				sess = s3
			}
		})
	}
}
