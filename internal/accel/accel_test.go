package accel

import (
	"bytes"
	"testing"
	"time"

	"sslperf/internal/aes"
	"sslperf/internal/md5x"
	"sslperf/internal/perf"
	"sslperf/internal/sha1x"
	"sslperf/internal/sslcrypto"
)

func TestThreeOperandISAReducesWork(t *testing.T) {
	for _, tc := range []struct {
		name  string
		trace func(tr *perf.Trace)
	}{
		{"md5", func(tr *perf.Trace) { md5x.TraceHash(tr, 1024) }},
		{"sha1", func(tr *perf.Trace) { sha1x.TraceHash(tr, 1024) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var before perf.Trace
			tc.trace(&before)
			after := ThreeOperandISA(&before)
			if after.Total() >= before.Total() {
				t.Fatalf("no ops removed: %d -> %d", before.Total(), after.Total())
			}
			if after.Bytes != before.Bytes {
				t.Fatal("bytes changed")
			}
			s := Speedup(&before, after)
			// Figure 4's point: a measurable but bounded win.
			if s <= 1.0 || s > 2.0 {
				t.Fatalf("speedup = %.2f, want (1, 2]", s)
			}
		})
	}
}

func TestSubtractClamps(t *testing.T) {
	var tr perf.Trace
	tr.Emit(perf.OpXor, 5)
	subtract(&tr, perf.OpXor, 100)
	if tr.Count(perf.OpXor) != 0 {
		t.Fatal("subtract did not clamp")
	}
	subtract(&tr, perf.OpXor, 0) // no-op
}

func TestAESRoundUnitSpeedup(t *testing.T) {
	c, _ := aes.New(make([]byte, 16))
	var tr perf.Trace
	c.TraceEncryptBlock(&tr)
	sw, hw := AESRoundUnit(&tr, c.Rounds())
	if hw >= sw {
		t.Fatalf("hardware unit (%.0f cyc) not faster than software (%.0f cyc)", hw, sw)
	}
	// The paper's premise: a dedicated unit wins big (one round per
	// few cycles vs dozens of instructions).
	if sw/hw < 3 {
		t.Fatalf("speedup only %.1fx; expected >3x", sw/hw)
	}
}

func newEngine(t testing.TB) *Engine {
	t.Helper()
	key := make([]byte, 16)
	iv := make([]byte, 16)
	secret := make([]byte, 20)
	for i := range secret {
		secret[i] = byte(i)
	}
	e, err := NewEngine(key, iv, secret, sslcrypto.MACSHA1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEnginePipelinedEqualsSerial(t *testing.T) {
	for _, n := range []int{0, 1, 15, 16, 17, 1024, 4096, 10000} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 31)
		}
		es := newEngine(t)
		serial, err := es.EncryptFragmentSerial(data)
		if err != nil {
			t.Fatal(err)
		}
		ep := newEngine(t)
		piped, err := ep.EncryptFragmentPipelined(data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial, piped) {
			t.Fatalf("n=%d: pipelined fragment differs from serial", n)
		}
		if len(serial)%16 != 0 {
			t.Fatalf("n=%d: fragment %d not a block multiple", n, len(serial))
		}
	}
}

func TestEngineSequenceAdvances(t *testing.T) {
	e := newEngine(t)
	a, _ := e.EncryptFragmentSerial([]byte("same data"))
	b, _ := e.EncryptFragmentSerial([]byte("same data"))
	if bytes.Equal(a, b) {
		t.Fatal("identical fragments for successive records (seq not bound)")
	}
	e.Reset()
	c, _ := e.EncryptFragmentSerial([]byte("same data"))
	if !bytes.Equal(a, c) {
		t.Fatal("Reset did not rewind sequence")
	}
}

func TestComponentTimesAndModel(t *testing.T) {
	e := newEngine(t)
	mac, aes := e.ComponentTimes(make([]byte, 4096), 50)
	if mac <= 0 || aes <= 0 {
		t.Fatalf("component times: mac=%v aes=%v", mac, aes)
	}
	s := ModelOverlapSpeedup(mac, aes)
	// Overlap of two positive components is > 1x and <= 2x.
	if s <= 1.0 || s > 2.0 {
		t.Fatalf("model speedup = %.2f, want (1, 2]", s)
	}
	if ModelOverlapSpeedup(0, 0) != 0 {
		t.Fatal("degenerate case should be 0")
	}
	// Perfectly balanced units give exactly 2x.
	if got := ModelOverlapSpeedup(time.Millisecond, time.Millisecond); got != 2.0 {
		t.Fatalf("balanced speedup = %v, want 2", got)
	}
}

func TestEnginePipelinedThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	// The pipelined engine should not be slower on large fragments
	// (it overlaps ~half the work; allow generous scheduling slack).
	data := make([]byte, 16384)
	const iters = 300
	es := newEngine(t)
	start := time.Now()
	for i := 0; i < iters; i++ {
		es.EncryptFragmentSerial(data)
	}
	serial := time.Since(start)
	ep := newEngine(t)
	start = time.Now()
	for i := 0; i < iters; i++ {
		ep.EncryptFragmentPipelined(data)
	}
	piped := time.Since(start)
	if piped > serial*3/2 {
		t.Fatalf("pipelined (%v) much slower than serial (%v)", piped, serial)
	}
	t.Logf("serial %v, pipelined %v, speedup %.2fx", serial, piped,
		float64(serial)/float64(piped))
}

// TestEnginePipelinedSharedBreakdown checks the cross-goroutine
// attribution: the hashing-unit goroutine and the cipher unit add
// into one SharedBreakdown concurrently, and the pipelined output
// still matches the serial one.
func TestEnginePipelinedSharedBreakdown(t *testing.T) {
	mk := func() *Engine {
		e, err := NewEngine(make([]byte, 16), make([]byte, 16),
			make([]byte, 20), sslcrypto.MACSHA1)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}

	es := mk()
	want, err := es.EncryptFragmentSerial(data)
	if err != nil {
		t.Fatal(err)
	}

	ep := mk()
	ep.Perf = perf.NewSharedBreakdown()
	const iters = 50
	for i := 0; i < iters; i++ {
		ep.Reset()
		got, err := ep.EncryptFragmentPipelined(data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("instrumented pipelined output differs from serial")
		}
	}
	b := ep.Perf.Snapshot()
	if b.Count("mac") != iters {
		t.Fatalf("mac attributions = %d, want %d", b.Count("mac"), iters)
	}
	if b.Count("aes") != 2*iters { // data blocks + tail per fragment
		t.Fatalf("aes attributions = %d, want %d", b.Count("aes"), 2*iters)
	}
	if b.Elapsed("mac") == 0 || b.Elapsed("aes") == 0 {
		t.Fatal("attributed time should be non-zero")
	}
}
