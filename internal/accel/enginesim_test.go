package accel

import (
	"testing"
	"testing/quick"
)

func frags(n, size int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = size
	}
	return out
}

func TestEngineSimOverlapBeatsSerial(t *testing.T) {
	sim := DefaultEngineSim()
	work := frags(100, 16384)
	par, err := sim.Run(work)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := sim.SerialBaseline(work)
	if err != nil {
		t.Fatal(err)
	}
	if par.TotalCycles >= ser.TotalCycles {
		t.Fatalf("overlapped engine (%v cyc) not faster than serial (%v cyc)",
			par.TotalCycles, ser.TotalCycles)
	}
	speedup := ser.TotalCycles / par.TotalCycles
	// With ~balanced unit rates the overlap should approach the
	// Figure 6 ideal of ~2x but cannot exceed it for 1+1 units.
	if speedup < 1.2 || speedup > 2.0 {
		t.Fatalf("1+1 unit speedup = %.2f, want (1.2, 2.0]", speedup)
	}
}

func TestEngineSimScalesWithUnits(t *testing.T) {
	work := frags(200, 4096)
	var prev float64
	for i, units := range []int{1, 2, 4} {
		sim := DefaultEngineSim()
		sim.AESUnits = units
		sim.HashUnits = units
		res, err := sim.Run(work)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.TotalCycles >= prev {
			t.Fatalf("%d units (%.0f cyc) not faster than fewer (%.0f cyc)",
				units, res.TotalCycles, prev)
		}
		prev = res.TotalCycles
	}
}

func TestEngineSimUtilizationBounds(t *testing.T) {
	sim := DefaultEngineSim()
	sim.AESUnits = 2
	sim.HashUnits = 2
	res, err := sim.Run(frags(50, 8192))
	if err != nil {
		t.Fatal(err)
	}
	for name, u := range map[string]float64{
		"aes": res.AESUtilization, "hash": res.HashUtilization,
	} {
		if u <= 0 || u > 1 {
			t.Fatalf("%s utilization = %v, want (0,1]", name, u)
		}
	}
	if res.ThroughputMBps(1.0) <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestEngineSimValidation(t *testing.T) {
	sim := DefaultEngineSim()
	sim.AESUnits = 0
	if _, err := sim.Run(frags(1, 100)); err == nil {
		t.Fatal("accepted zero AES units")
	}
	sim = DefaultEngineSim()
	if _, err := sim.Run([]int{-5}); err == nil {
		t.Fatal("accepted negative fragment")
	}
	if _, err := sim.SerialBaseline([]int{-5}); err == nil {
		t.Fatal("serial accepted negative fragment")
	}
}

func TestEngineSimEmptyWorkload(t *testing.T) {
	sim := DefaultEngineSim()
	res, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != 0 || res.Bytes != 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.ThroughputMBps(1.0) != 0 {
		t.Fatal("empty throughput should be 0")
	}
}

// Property: the overlapped engine is never slower than serial and
// conservation holds (busy cycles <= makespan * units).
func TestEngineSimProperties(t *testing.T) {
	f := func(sizes []uint16, aesUnits, hashUnits uint8) bool {
		sim := DefaultEngineSim()
		sim.AESUnits = int(aesUnits%4) + 1
		sim.HashUnits = int(hashUnits%4) + 1
		work := make([]int, len(sizes))
		for i, s := range sizes {
			work[i] = int(s)
		}
		par, err := sim.Run(work)
		if err != nil {
			return false
		}
		ser, err := sim.SerialBaseline(work)
		if err != nil {
			return false
		}
		if len(work) > 0 && par.TotalCycles > ser.TotalCycles {
			return false
		}
		return par.AESUtilization <= 1.0001 && par.HashUtilization <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
