package accel

import (
	"errors"
	"fmt"
	"sort"
)

// EngineSim is a discrete-event model of the paper's Figure 6 crypto
// engine generalized to multiple units: a control unit feeds record
// fragments to a pool of hashing units and AES units. Per fragment,
// the MAC of the data and the AES encryption of the data run in
// parallel (on different units); the AES pass over the MAC+padding
// tail depends on both (CBC chains it after the data blocks, and the
// bytes come from the hashing unit).
//
// The simulation answers the paper's closing claim — "several crypto
// units within one engine can run in parallel in the bulk transfer
// phase" — with numbers: throughput and unit utilization as the unit
// counts scale.
type EngineSim struct {
	AESUnits  int // number of AES encryption units
	HashUnits int // number of hashing units

	// Unit service rates, in engine cycles per byte, plus a fixed
	// per-fragment dispatch overhead. The defaults (see
	// DefaultEngineSim) use the paper's hardware framing: an AES
	// round unit at RoundUnitLatency cycles per 16-byte block and a
	// SHA-1 unit at ~1 cycle/byte.
	AESCyclesPerByte  float64
	HashCyclesPerByte float64
	DispatchCycles    float64

	// TailBytes is the MAC+padding tail encrypted after the join
	// (20-byte SHA-1 MAC padded to a block boundary).
	TailBytes int
}

// DefaultEngineSim returns a simulation of the paper's sketch: one
// AES unit, one hashing unit, hardware-unit service rates.
func DefaultEngineSim() *EngineSim {
	return &EngineSim{
		AESUnits:  1,
		HashUnits: 1,
		// Figure 5's round unit: RoundUnitLatency per round, 10
		// rounds per 16-byte block.
		AESCyclesPerByte:  RoundUnitLatency * 10 / 16,
		HashCyclesPerByte: 1.0,
		DispatchCycles:    50,
		TailBytes:         32,
	}
}

// SimResult summarizes one simulated run.
type SimResult struct {
	TotalCycles     float64
	Bytes           int
	AESUtilization  float64 // busy fraction of the AES pool
	HashUtilization float64
}

// ThroughputMBps converts the result to MB/s at the given engine
// clock in GHz.
func (r SimResult) ThroughputMBps(ghz float64) float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64(r.Bytes) / (r.TotalCycles / (ghz * 1e9)) / 1e6
}

// unitPool tracks the next-free time of each unit in a pool.
type unitPool struct {
	free []float64 // per-unit next-available cycle
	busy float64   // accumulated busy cycles
}

func newUnitPool(n int) *unitPool { return &unitPool{free: make([]float64, n)} }

// acquire schedules work of the given duration no earlier than ready,
// returning the completion time. Unit choice is best-fit: prefer the
// unit whose free time is latest while still <= ready (so bookings
// far in the future don't squat on units that could serve earlier
// work — the control unit backfills); otherwise take the earliest
// free unit.
func (p *unitPool) acquire(ready, duration float64) float64 {
	best := -1
	for i, f := range p.free {
		if f <= ready && (best == -1 || f > p.free[best]) {
			best = i
		}
	}
	if best == -1 {
		best = 0
		for i, f := range p.free {
			if f < p.free[best] {
				best = i
			}
		}
	}
	start := ready
	if p.free[best] > start {
		start = p.free[best]
	}
	end := start + duration
	p.free[best] = end
	p.busy += duration
	return end
}

// Run simulates encrypting the given fragment sizes (bytes each) and
// returns aggregate metrics. Fragments are dispatched in order, as a
// record layer would emit them.
func (s *EngineSim) Run(fragments []int) (SimResult, error) {
	if s.AESUnits < 1 || s.HashUnits < 1 {
		return SimResult{}, errors.New("accel: engine needs at least one unit of each kind")
	}
	aes := newUnitPool(s.AESUnits)
	hash := newUnitPool(s.HashUnits)
	var clock, done float64
	var totalBytes int
	for _, n := range fragments {
		if n < 0 {
			return SimResult{}, fmt.Errorf("accel: negative fragment size %d", n)
		}
		totalBytes += n
		dispatch := clock + s.DispatchCycles
		macDone := hash.acquire(dispatch, float64(n)*s.HashCyclesPerByte)
		dataDone := aes.acquire(dispatch, float64(n)*s.AESCyclesPerByte)
		// The tail encryption joins on both and reuses the AES pool.
		join := macDone
		if dataDone > join {
			join = dataDone
		}
		tailDone := aes.acquire(join, float64(s.TailBytes)*s.AESCyclesPerByte)
		if tailDone > done {
			done = tailDone
		}
		// The control unit can dispatch the next fragment as soon as
		// some unit of each kind will be free — model it as pipelined
		// dispatch at the earlier of the two pools' next frees.
		clock = minFree(aes, hash, dispatch)
	}
	res := SimResult{TotalCycles: done, Bytes: totalBytes}
	if done > 0 {
		res.AESUtilization = aes.busy / (done * float64(s.AESUnits))
		res.HashUtilization = hash.busy / (done * float64(s.HashUnits))
	}
	return res, nil
}

// minFree returns the earliest time after lower at which both pools
// have a free unit.
func minFree(a, b *unitPool, lower float64) float64 {
	fa := append([]float64(nil), a.free...)
	fb := append([]float64(nil), b.free...)
	sort.Float64s(fa)
	sort.Float64s(fb)
	t := fa[0]
	if fb[0] > t {
		t = fb[0]
	}
	if t < lower {
		t = lower
	}
	return t
}

// SerialBaseline simulates the same workload on a single-unit engine
// with no overlap (MAC fully precedes the whole encryption), the
// software ordering the paper contrasts against.
func (s *EngineSim) SerialBaseline(fragments []int) (SimResult, error) {
	var clock float64
	var totalBytes int
	for _, n := range fragments {
		if n < 0 {
			return SimResult{}, fmt.Errorf("accel: negative fragment size %d", n)
		}
		totalBytes += n
		clock += s.DispatchCycles
		clock += float64(n) * s.HashCyclesPerByte
		clock += float64(n+s.TailBytes) * s.AESCyclesPerByte
	}
	return SimResult{TotalCycles: clock, Bytes: totalBytes,
		AESUtilization: 1, HashUtilization: 1}, nil
}
