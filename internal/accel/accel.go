// Package accel models the three optimization classes the paper
// proposes in §6.2 and sketches in Figures 4–6:
//
//  1. ISA support — three-operand logical instructions (and wider
//     registers) that collapse the two-instruction sequences MD5 and
//     SHA-1 spend on their three-input boolean functions (Figure 4).
//  2. Hardware units — a table-lookup unit that executes all four
//     basic operations of an AES round in parallel (Figure 5).
//  3. Crypto engines — an asynchronous engine that overlaps the AES
//     encryption of a record fragment with its MAC computation
//     (Figure 6); implemented here functionally with goroutines.
//
// The first two are latency models over the perf.Trace abstract
// instruction streams; the third is real, runnable code whose
// speedup is measured, not estimated.
package accel

import (
	"sslperf/internal/perf"
)

// ThreeOperandISA models Figure 4: every pair of dependent logical
// operations that implements a three-input function collapses into
// one instruction, and the register-pressure moves they forced
// disappear with them.
//
// For MD5: F/G/I rounds use (and,not,or) triples and H uses xor,xor —
// roughly half the logical ops merge away. The model removes 40% of
// xor/and/or/not ops and an equal number of moves (bounded by the
// available moves), returning the transformed trace.
func ThreeOperandISA(tr *perf.Trace) *perf.Trace {
	out := &perf.Trace{}
	out.Add(tr)
	logical := [...]perf.Op{perf.OpXor, perf.OpAnd, perf.OpOr, perf.OpNot}
	var removedLogical uint64
	for _, op := range logical {
		n := out.Count(op)
		remove := n * 2 / 5 // 40%: second instruction of each fused pair
		removedLogical += remove
		subtract(out, op, remove)
	}
	// The fused sequences no longer spill intermediates.
	removeMoves := removedLogical / 2
	if m := out.Count(perf.OpMove); removeMoves > m {
		removeMoves = m
	}
	subtract(out, perf.OpMove, removeMoves)
	return out
}

// subtract removes n occurrences of op from tr by rebuilding counts.
func subtract(tr *perf.Trace, op perf.Op, n uint64) {
	if n == 0 {
		return
	}
	have := tr.Count(op)
	if n > have {
		n = have
	}
	// perf.Trace has no decrement; rebuild.
	var nt perf.Trace
	for o := 0; o < perf.NumOps; o++ {
		c := tr.Count(perf.Op(o))
		if perf.Op(o) == op {
			c -= n
		}
		nt.Emit(perf.Op(o), c)
	}
	nt.Bytes = tr.Bytes
	*tr = nt
}

// Speedup compares two traces' modeled cycle counts.
func Speedup(before, after *perf.Trace) float64 {
	a := after.EstimatedCycles()
	if a == 0 {
		return 0
	}
	return before.EstimatedCycles() / a
}

// RoundUnitLatency is the modeled latency, in cycles, of the Figure 5
// AES round hardware unit: the four basic operations (four table
// reads + XOR tree each) execute in parallel, pipelined over a
// four-read SRAM; comparable published table-lookup units achieve a
// round in a few cycles.
const RoundUnitLatency = 4.0

// AESRoundUnit models Figure 5 applied to a whole block encryption:
// the software trace of one block is replaced by one RoundUnitLatency
// charge per round plus the load/store of the block and key, and the
// modeled cycle counts are returned as (software, hardware).
func AESRoundUnit(software *perf.Trace, rounds int) (swCycles, hwCycles float64) {
	swCycles = software.EstimatedCycles()
	// Hardware: per round one unit invocation; block and key traffic
	// still pays memory-op costs (8 loads + 4 stores, modeled at the
	// trace's per-op latencies via a small trace).
	var mem perf.Trace
	mem.Emit(perf.OpLoad, 8)
	mem.Emit(perf.OpStore, 4)
	hwCycles = float64(rounds)*RoundUnitLatency + mem.EstimatedCycles()
	return swCycles, hwCycles
}
