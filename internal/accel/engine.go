package accel

import (
	"time"

	"sslperf/internal/aes"
	"sslperf/internal/cbc"
	"sslperf/internal/macpipe"
	"sslperf/internal/perf"
	"sslperf/internal/probe"
	"sslperf/internal/sslcrypto"
)

// Engine is the Figure 6 crypto engine: an AES encryption unit and a
// hashing unit fed by a control unit. EncryptFragment produces an SSL
// record fragment body (data ‖ MAC ‖ padding, CBC-encrypted); the
// pipelined path overlaps the MAC computation of the data with the
// AES encryption of the data, exactly as the paper's control-unit
// description has it — the MAC and trailing padding are encrypted
// last, after the hashing unit delivers them.
type Engine struct {
	aes *aes.Cipher
	iv  []byte
	mac *sslcrypto.MAC
	seq uint64

	// Probe, when non-nil, receives "mac" and "aes" engine-timer
	// events from the pipelined path. The hashing unit emits from its
	// own goroutine, concurrent with the cipher unit, so attached
	// sinks must tolerate concurrent Emit calls (SharedBreakdown
	// does).
	Probe *probe.Bus

	// Perf, when non-nil, receives "mac" and "aes" time attributions
	// from the pipelined path. It must be a SharedBreakdown (not a
	// plain Breakdown) because the hashing unit runs on its own
	// goroutine, concurrent with the cipher unit.
	//
	// Deprecated: a shim — the breakdown is wrapped as a sink on the
	// engine's probe bus; prefer setting Probe directly.
	Perf *perf.SharedBreakdown

	// perfBus caches the bus wrapping Perf so the pipelined path
	// resolves its emission target once per fragment.
	perfBus *probe.Bus
	perfFor *perf.SharedBreakdown
}

// NewEngine builds an engine with an AES key, CBC IV, and a MAC
// secret for the hashing unit.
func NewEngine(key, iv, macSecret []byte, macAlg sslcrypto.MACAlgorithm) (*Engine, error) {
	c, err := aes.New(key)
	if err != nil {
		return nil, err
	}
	m, err := sslcrypto.NewMAC(macAlg, macSecret)
	if err != nil {
		return nil, err
	}
	return &Engine{aes: c, iv: append([]byte(nil), iv...), mac: m}, nil
}

// buildTail appends MAC and SSLv3-style padding to reach a block
// multiple, returning the full fragment length.
func (e *Engine) pad(total int) int {
	bs := e.aes.BlockSize()
	padLen := bs - (total+1)%bs
	if padLen == bs {
		padLen = 0
	}
	return total + padLen + 1
}

// EncryptFragmentSerial is the baseline: MAC first, then encrypt the
// whole fragment — the order a software SSL stack uses.
func (e *Engine) EncryptFragmentSerial(data []byte) ([]byte, error) {
	mac := e.mac.Compute(e.seq, 23, data)
	e.seq++
	n := e.pad(len(data) + len(mac))
	frag := make([]byte, n)
	copy(frag, data)
	copy(frag[len(data):], mac)
	frag[n-1] = byte(n - len(data) - len(mac) - 1)
	enc, err := cbc.NewEncrypter(e.aes, e.iv)
	if err != nil {
		return nil, err
	}
	enc.CryptBlocks(frag, frag)
	return frag, nil
}

// hashTask is one hashing-unit assignment handed to the shared
// macpipe pool; done closes when the MAC is ready.
type hashTask struct {
	run  func()
	done chan struct{}
}

// Run implements macpipe.Task.
func (t *hashTask) Run() {
	t.run()
	close(t.done)
}

// EncryptFragmentPipelined overlaps the hashing unit with the AES
// unit: the data blocks are CBC-encrypted while the MAC is computed
// concurrently; the MAC+padding tail is encrypted afterwards,
// chained off the last data block as CBC requires. The hashing unit
// is a macpipe worker — the same shared pool the record layer's
// flight sealing draws lanes from — so a fleet of engines pins
// GOMAXPROCS goroutines rather than one per fragment; when the pool
// is saturated the MAC runs inline after the data blocks (correct,
// just not overlapped).
func (e *Engine) EncryptFragmentPipelined(data []byte) ([]byte, error) {
	bs := e.aes.BlockSize()
	seq := e.seq
	e.seq++
	// Resolve the bus once, on the caller's goroutine, before the
	// hashing unit forks; the bus itself is stateless on this path so
	// both units can emit through it concurrently.
	bus := e.unitBus()
	var mac []byte
	t := &hashTask{done: make(chan struct{})}
	t.run = func() {
		bus.Timed("mac", func() { mac = e.mac.Compute(seq, 23, data) })
	}
	inline := !macpipe.Submit(t)

	macLen := e.mac.Size()
	n := e.pad(len(data) + macLen)
	frag := make([]byte, n)
	copy(frag, data)

	enc, err := cbc.NewEncrypter(e.aes, e.iv)
	if err != nil {
		return nil, err
	}
	// Encrypt the whole data blocks now, in parallel with the MAC.
	whole := len(data) / bs * bs
	bus.Timed("aes", func() { enc.CryptBlocks(frag[:whole], frag[:whole]) })

	// Join: place MAC and padding, then encrypt the tail.
	if inline {
		t.Run()
	}
	<-t.done
	copy(frag[len(data):], mac)
	frag[n-1] = byte(n - len(data) - macLen - 1)
	bus.Timed("aes", func() { enc.CryptBlocks(frag[whole:], frag[whole:]) })
	return frag, nil
}

// unitBus returns the engine's emission target: the explicit Probe
// bus when set, else a cached bus wrapping the deprecated Perf
// breakdown, else nil (the no-op bus).
func (e *Engine) unitBus() *probe.Bus {
	if e.Probe != nil {
		return e.Probe
	}
	if e.Perf == nil {
		return nil
	}
	if e.perfBus == nil || e.perfFor != e.Perf {
		e.perfBus, e.perfFor = probe.NewBus(e.Perf), e.Perf
	}
	return e.perfBus
}

// Reset rewinds the sequence number (so serial and pipelined runs of
// the same inputs produce identical fragments for equivalence tests).
func (e *Engine) Reset() { e.seq = 0 }

// ComponentTimes measures the engine's two units separately over
// iters runs: the hashing unit (MAC of data) and the AES unit
// (CBC encryption of a fragment-sized buffer). A hardware engine with
// both units overlaps them, so its fragment latency approaches
// max(macTime, aesTime) — the Figure 6 model — independent of how
// many host CPUs this process happens to have.
func (e *Engine) ComponentTimes(data []byte, iters int) (macTime, aesTime time.Duration) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		e.mac.Compute(uint64(i), 23, data)
	}
	macTime = time.Since(start) / time.Duration(iters)

	frag := make([]byte, e.pad(len(data)+e.mac.Size()))
	enc, err := cbc.NewEncrypter(e.aes, e.iv)
	if err != nil {
		return 0, 0
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		enc.CryptBlocks(frag, frag)
	}
	aesTime = time.Since(start) / time.Duration(iters)
	return macTime, aesTime
}

// ModelOverlapSpeedup returns the Figure 6 engine speedup implied by
// the component times: serial = mac+aes, overlapped = max(mac, aes).
func ModelOverlapSpeedup(macTime, aesTime time.Duration) float64 {
	overlapped := macTime
	if aesTime > overlapped {
		overlapped = aesTime
	}
	if overlapped == 0 {
		return 0
	}
	return float64(macTime+aesTime) / float64(overlapped)
}
