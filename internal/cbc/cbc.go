// Package cbc implements cipher-block-chaining mode over any block
// cipher. The paper highlights CBC's defining property: each
// plaintext block is XORed with the previous ciphertext block before
// encryption, creating a serial dependency that removes intra-message
// parallelism — the reason the paper's crypto-engine sketch (Figure 6)
// pipelines across the MAC rather than across blocks.
package cbc

import "errors"

// Block is the block-cipher contract CBC chains over (the shape of
// crypto/cipher.Block, implemented by the aes and des packages here).
type Block interface {
	BlockSize() int
	Encrypt(dst, src []byte)
	Decrypt(dst, src []byte)
}

// Encrypter encrypts successive multiples of the block size in CBC
// mode, carrying the IV across calls.
type Encrypter struct {
	b  Block
	iv []byte
}

// Decrypter is the CBC decryption counterpart.
type Decrypter struct {
	b  Block
	iv []byte
}

// NewEncrypter returns a CBC encrypter with the given IV, whose
// length must equal the cipher's block size.
func NewEncrypter(b Block, iv []byte) (*Encrypter, error) {
	if len(iv) != b.BlockSize() {
		return nil, errors.New("cbc: IV length must equal block size")
	}
	return &Encrypter{b: b, iv: append([]byte(nil), iv...)}, nil
}

// NewDecrypter returns a CBC decrypter with the given IV.
func NewDecrypter(b Block, iv []byte) (*Decrypter, error) {
	if len(iv) != b.BlockSize() {
		return nil, errors.New("cbc: IV length must equal block size")
	}
	return &Decrypter{b: b, iv: append([]byte(nil), iv...)}, nil
}

// BlockSize returns the underlying cipher's block size.
func (e *Encrypter) BlockSize() int { return e.b.BlockSize() }

// BlockSize returns the underlying cipher's block size.
func (d *Decrypter) BlockSize() int { return d.b.BlockSize() }

// CryptBlocks encrypts src into dst (same length, a multiple of the
// block size). dst may be src.
func (e *Encrypter) CryptBlocks(dst, src []byte) {
	bs := e.b.BlockSize()
	if len(src)%bs != 0 || len(dst) < len(src) {
		panic("cbc: input not full blocks or output too short")
	}
	prev := e.iv
	for i := 0; i < len(src); i += bs {
		for j := 0; j < bs; j++ {
			dst[i+j] = src[i+j] ^ prev[j]
		}
		e.b.Encrypt(dst[i:i+bs], dst[i:i+bs])
		prev = dst[i : i+bs]
	}
	copy(e.iv, prev)
}

// CryptBlocks decrypts src into dst (same length, a multiple of the
// block size). dst may be src.
func (d *Decrypter) CryptBlocks(dst, src []byte) {
	bs := d.b.BlockSize()
	if len(src)%bs != 0 || len(dst) < len(src) {
		panic("cbc: input not full blocks or output too short")
	}
	if len(src) == 0 {
		return
	}
	// Save each ciphertext block before it may be overwritten (dst
	// may alias src), so in-place decryption chains correctly.
	chain := d.iv
	saved := make([]byte, bs)
	next := make([]byte, bs)
	for i := 0; i < len(src); i += bs {
		copy(saved, src[i:i+bs])
		d.b.Decrypt(dst[i:i+bs], src[i:i+bs])
		for j := 0; j < bs; j++ {
			dst[i+j] ^= chain[j]
		}
		saved, next = next, saved
		chain = next
	}
	copy(d.iv, chain)
}
