package cbc

import (
	"bytes"
	stdaes "crypto/aes"
	"crypto/cipher"
	"math/rand"
	"testing"
	"testing/quick"

	"sslperf/internal/aes"
	"sslperf/internal/des"
)

func TestAgainstStdlibAESCBC(t *testing.T) {
	f := func(key [16]byte, iv [16]byte, nBlocks uint8) bool {
		data := make([]byte, (int(nBlocks%16)+1)*16)
		rand.New(rand.NewSource(int64(nBlocks))).Read(data)

		ours, _ := aes.New(key[:])
		enc, err := NewEncrypter(ours, iv[:])
		if err != nil {
			return false
		}
		got := make([]byte, len(data))
		enc.CryptBlocks(got, data)

		std, _ := stdaes.NewCipher(key[:])
		want := make([]byte, len(data))
		cipher.NewCBCEncrypter(std, iv[:]).CryptBlocks(want, data)
		if !bytes.Equal(got, want) {
			return false
		}

		dec, _ := NewDecrypter(ours, iv[:])
		back := make([]byte, len(got))
		dec.CryptBlocks(back, got)
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIVChainsAcrossCalls(t *testing.T) {
	key := make([]byte, 24)
	iv := make([]byte, 8)
	block, _ := des.NewTriple(key)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	// One call vs two calls must produce identical ciphertext.
	e1, _ := NewEncrypter(block, iv)
	whole := make([]byte, 64)
	e1.CryptBlocks(whole, data)
	e2, _ := NewEncrypter(block, iv)
	parts := make([]byte, 64)
	e2.CryptBlocks(parts[:24], data[:24])
	e2.CryptBlocks(parts[24:], data[24:])
	if !bytes.Equal(whole, parts) {
		t.Fatal("split encryption differs")
	}
	// Same for decryption.
	d1, _ := NewDecrypter(block, iv)
	back := make([]byte, 64)
	d1.CryptBlocks(back[:40], whole[:40])
	d1.CryptBlocks(back[40:], whole[40:])
	if !bytes.Equal(back, data) {
		t.Fatal("split decryption differs")
	}
}

func TestInPlace(t *testing.T) {
	key := make([]byte, 16)
	iv := make([]byte, 16)
	block, _ := aes.New(key)
	data := make([]byte, 48)
	for i := range data {
		data[i] = byte(i * 3)
	}
	e, _ := NewEncrypter(block, iv)
	want := make([]byte, 48)
	e.CryptBlocks(want, data)

	e2, _ := NewEncrypter(block, iv)
	buf := append([]byte{}, data...)
	e2.CryptBlocks(buf, buf)
	if !bytes.Equal(buf, want) {
		t.Fatal("in-place encrypt differs")
	}
	d, _ := NewDecrypter(block, iv)
	d.CryptBlocks(buf, buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("in-place decrypt differs")
	}
}

func TestRejectsBadIV(t *testing.T) {
	block, _ := aes.New(make([]byte, 16))
	if _, err := NewEncrypter(block, make([]byte, 8)); err == nil {
		t.Error("accepted short IV")
	}
	if _, err := NewDecrypter(block, make([]byte, 17)); err == nil {
		t.Error("accepted long IV")
	}
}

func TestPanicsOnPartialBlock(t *testing.T) {
	block, _ := aes.New(make([]byte, 16))
	e, _ := NewEncrypter(block, make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on partial block")
		}
	}()
	e.CryptBlocks(make([]byte, 15), make([]byte, 15))
}

func TestEmptyInput(t *testing.T) {
	block, _ := aes.New(make([]byte, 16))
	e, _ := NewEncrypter(block, make([]byte, 16))
	d, _ := NewDecrypter(block, make([]byte, 16))
	e.CryptBlocks(nil, nil) // must not panic
	d.CryptBlocks(nil, nil)
}

func TestBlockSize(t *testing.T) {
	a, _ := aes.New(make([]byte, 16))
	e, _ := NewEncrypter(a, make([]byte, 16))
	d, _ := NewDecrypter(a, make([]byte, 16))
	if e.BlockSize() != 16 || d.BlockSize() != 16 {
		t.Fatal("BlockSize wrong")
	}
}
