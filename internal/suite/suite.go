// Package suite defines the SSLv3 cipher suites this library speaks —
// RSA key exchange with the symmetric ciphers and MACs the paper
// evaluates. A suite binds a record cipher constructor, a MAC
// algorithm, and the key-material geometry the key block is sliced
// into.
package suite

import (
	"errors"
	"fmt"

	"sslperf/internal/aes"
	"sslperf/internal/cbc"
	"sslperf/internal/des"
	"sslperf/internal/rc4"
	"sslperf/internal/sslcrypto"
)

// ID is the wire identifier of a cipher suite.
type ID uint16

// The cipher suites implemented. DES-CBC3-SHA (0x000A) is the suite
// the paper's measurements use throughout; the DHE suites exercise
// the ServerKeyExchange path the RSA suites skip.
const (
	RSAWithNullMD5          ID = 0x0001
	RSAWithNullSHA          ID = 0x0002
	RSAWithRC4128MD5        ID = 0x0004
	RSAWithRC4128SHA        ID = 0x0005
	RSAWithDESCBCSHA        ID = 0x0009
	RSAWith3DESEDECBCSHA    ID = 0x000a
	DHERSAWith3DESEDECBCSHA ID = 0x0016
	RSAWithAES128CBCSHA     ID = 0x002f
	DHERSAWithAES128CBCSHA  ID = 0x0033
	RSAWithAES256CBCSHA     ID = 0x0035
	DHERSAWithAES256CBCSHA  ID = 0x0039
)

// KeyExchange identifies how the pre-master secret is established.
type KeyExchange int

// Key exchange algorithms.
const (
	// KxRSA encrypts the pre-master under the certificate's RSA key.
	KxRSA KeyExchange = iota
	// KxDHERSA derives the pre-master by ephemeral Diffie-Hellman,
	// with the server's parameters signed by its RSA key.
	KxDHERSA
)

// A RecordCipher encrypts/decrypts record payloads in place.
// BlockSize is 1 for stream (and null) ciphers; block ciphers require
// input lengths that are block multiples.
//
// Ordering contract: record ciphers are stateful across calls — RC4
// consumes keystream, CBC chains each call's last ciphertext block
// into the next call's IV. Callers MUST invoke Encrypt/EncryptTo in
// record sequence-number order, exactly once per record body, in
// ascending byte order within a record. The record layer's sealing
// pipeline relies on this: fragment MACs may be computed on any
// goroutine in any order, but every cipher pass happens on the
// caller's goroutine in sequence order.
type RecordCipher interface {
	BlockSize() int
	Encrypt(buf []byte)
	Decrypt(buf []byte)
}

// An EncryptToCipher can encrypt from src into dst in one pass,
// fusing the plaintext copy into the cipher pass — the record layer's
// zero-copy seal path uses it to move application bytes into the wire
// buffer exactly once. dst and src must have equal length (a block
// multiple for block ciphers) and must not overlap unless identical.
// The same ordering contract as RecordCipher.Encrypt applies:
// EncryptTo advances the keystream/IV chain exactly as Encrypt does,
// and the two may be interleaved freely within a record as long as
// bytes are processed in order.
type EncryptToCipher interface {
	EncryptTo(dst, src []byte)
}

// A Suite describes one cipher suite.
type Suite struct {
	ID     ID
	Name   string // OpenSSL-style name, e.g. "DES-CBC3-SHA"
	Kx     KeyExchange
	KeyLen int // cipher key bytes
	IVLen  int // IV bytes (0 for stream ciphers)
	MAC    sslcrypto.MACAlgorithm

	// CipherAlgo names the symmetric primitive ("RC4", "DES", "3DES",
	// "AES", "NULL") — the row key the path-length observatory and the
	// paper's Tables 11/12 account per-primitive work under,
	// independent of key size.
	CipherAlgo string

	newCipher func(key, iv []byte, encrypt bool) (RecordCipher, error)
}

// MACLen returns the MAC output size in bytes.
func (s *Suite) MACLen() int { return s.MAC.Size() }

// KeyMaterialLen returns the number of key-block bytes the suite
// consumes: two MAC secrets, two keys, two IVs.
func (s *Suite) KeyMaterialLen() int {
	return 2*s.MACLen() + 2*s.KeyLen + 2*s.IVLen
}

// NewCipher builds the record cipher for one direction.
func (s *Suite) NewCipher(key, iv []byte, encrypt bool) (RecordCipher, error) {
	if len(key) != s.KeyLen || len(iv) != s.IVLen {
		return nil, errors.New("suite: wrong key or IV length")
	}
	return s.newCipher(key, iv, encrypt)
}

// NewMAC builds a record MAC keyed with secret.
func (s *Suite) NewMAC(secret []byte) (*sslcrypto.MAC, error) {
	return sslcrypto.NewMAC(s.MAC, secret)
}

// nullCipher passes data through (the NULL encryption suites used as
// the paper's no-crypto baseline).
type nullCipher struct{}

func (nullCipher) BlockSize() int           { return 1 }
func (nullCipher) Encrypt(buf []byte)       {}
func (nullCipher) Decrypt(buf []byte)       {}
func (nullCipher) EncryptTo(dst, src []byte) { copy(dst, src) }

// streamCipher adapts RC4.
type streamCipher struct{ c *rc4.Cipher }

func (s streamCipher) BlockSize() int            { return 1 }
func (s streamCipher) Encrypt(buf []byte)        { s.c.XORKeyStream(buf, buf) }
func (s streamCipher) Decrypt(buf []byte)        { s.c.XORKeyStream(buf, buf) }
func (s streamCipher) EncryptTo(dst, src []byte) { s.c.XORKeyStream(dst, src) }

// blockCipher adapts a CBC-wrapped block cipher. One direction per
// instance, like a real record connection state.
type blockCipher struct {
	enc *cbc.Encrypter
	dec *cbc.Decrypter
	bs  int
}

func (b *blockCipher) BlockSize() int { return b.bs }

func (b *blockCipher) Encrypt(buf []byte) {
	if b.enc == nil {
		panic("suite: encrypt on decrypt-side cipher")
	}
	b.enc.CryptBlocks(buf, buf)
}

func (b *blockCipher) Decrypt(buf []byte) {
	if b.dec == nil {
		panic("suite: decrypt on encrypt-side cipher")
	}
	b.dec.CryptBlocks(buf, buf)
}

// EncryptTo CBC-encrypts src into dst; the chained IV advances
// exactly as an in-place Encrypt of the same bytes would.
func (b *blockCipher) EncryptTo(dst, src []byte) {
	if b.enc == nil {
		panic("suite: encrypt on decrypt-side cipher")
	}
	b.enc.CryptBlocks(dst, src)
}

func newBlockCipher(blk cbc.Block, iv []byte, encrypt bool) (RecordCipher, error) {
	bc := &blockCipher{bs: blk.BlockSize()}
	var err error
	if encrypt {
		bc.enc, err = cbc.NewEncrypter(blk, iv)
	} else {
		bc.dec, err = cbc.NewDecrypter(blk, iv)
	}
	if err != nil {
		return nil, err
	}
	return bc, nil
}

var registry = map[ID]*Suite{}
var ordered []ID

func register(s *Suite) {
	registry[s.ID] = s
	ordered = append(ordered, s.ID)
}

func init() {
	register(&Suite{
		ID: RSAWithRC4128MD5, Name: "RC4-MD5", CipherAlgo: "RC4",
		KeyLen: 16, IVLen: 0, MAC: sslcrypto.MACMD5,
		newCipher: func(key, _ []byte, _ bool) (RecordCipher, error) {
			c, err := rc4.New(key)
			if err != nil {
				return nil, err
			}
			return streamCipher{c}, nil
		},
	})
	register(&Suite{
		ID: RSAWithRC4128SHA, Name: "RC4-SHA", CipherAlgo: "RC4",
		KeyLen: 16, IVLen: 0, MAC: sslcrypto.MACSHA1,
		newCipher: func(key, _ []byte, _ bool) (RecordCipher, error) {
			c, err := rc4.New(key)
			if err != nil {
				return nil, err
			}
			return streamCipher{c}, nil
		},
	})
	register(&Suite{
		ID: RSAWithDESCBCSHA, Name: "DES-CBC-SHA", CipherAlgo: "DES",
		KeyLen: 8, IVLen: 8, MAC: sslcrypto.MACSHA1,
		newCipher: func(key, iv []byte, encrypt bool) (RecordCipher, error) {
			blk, err := des.New(key)
			if err != nil {
				return nil, err
			}
			return newBlockCipher(blk, iv, encrypt)
		},
	})
	register(&Suite{
		ID: RSAWith3DESEDECBCSHA, Name: "DES-CBC3-SHA", CipherAlgo: "3DES",
		KeyLen: 24, IVLen: 8, MAC: sslcrypto.MACSHA1,
		newCipher: func(key, iv []byte, encrypt bool) (RecordCipher, error) {
			blk, err := des.NewTriple(key)
			if err != nil {
				return nil, err
			}
			return newBlockCipher(blk, iv, encrypt)
		},
	})
	register(&Suite{
		ID: RSAWithAES128CBCSHA, Name: "AES128-SHA", CipherAlgo: "AES",
		KeyLen: 16, IVLen: 16, MAC: sslcrypto.MACSHA1,
		newCipher: func(key, iv []byte, encrypt bool) (RecordCipher, error) {
			blk, err := aes.New(key)
			if err != nil {
				return nil, err
			}
			return newBlockCipher(blk, iv, encrypt)
		},
	})
	register(&Suite{
		ID: RSAWithAES256CBCSHA, Name: "AES256-SHA", CipherAlgo: "AES",
		KeyLen: 32, IVLen: 16, MAC: sslcrypto.MACSHA1,
		newCipher: func(key, iv []byte, encrypt bool) (RecordCipher, error) {
			blk, err := aes.New(key)
			if err != nil {
				return nil, err
			}
			return newBlockCipher(blk, iv, encrypt)
		},
	})
	register(&Suite{
		ID: DHERSAWith3DESEDECBCSHA, Name: "EDH-RSA-DES-CBC3-SHA", Kx: KxDHERSA, CipherAlgo: "3DES",
		KeyLen: 24, IVLen: 8, MAC: sslcrypto.MACSHA1,
		newCipher: func(key, iv []byte, encrypt bool) (RecordCipher, error) {
			blk, err := des.NewTriple(key)
			if err != nil {
				return nil, err
			}
			return newBlockCipher(blk, iv, encrypt)
		},
	})
	register(&Suite{
		ID: DHERSAWithAES128CBCSHA, Name: "DHE-RSA-AES128-SHA", Kx: KxDHERSA, CipherAlgo: "AES",
		KeyLen: 16, IVLen: 16, MAC: sslcrypto.MACSHA1,
		newCipher: func(key, iv []byte, encrypt bool) (RecordCipher, error) {
			blk, err := aes.New(key)
			if err != nil {
				return nil, err
			}
			return newBlockCipher(blk, iv, encrypt)
		},
	})
	register(&Suite{
		ID: DHERSAWithAES256CBCSHA, Name: "DHE-RSA-AES256-SHA", Kx: KxDHERSA, CipherAlgo: "AES",
		KeyLen: 32, IVLen: 16, MAC: sslcrypto.MACSHA1,
		newCipher: func(key, iv []byte, encrypt bool) (RecordCipher, error) {
			blk, err := aes.New(key)
			if err != nil {
				return nil, err
			}
			return newBlockCipher(blk, iv, encrypt)
		},
	})
	// NULL suites register last so default preference lists put real
	// ciphers first; they exist as the paper's no-crypto baseline.
	register(&Suite{
		ID: RSAWithNullMD5, Name: "NULL-MD5", CipherAlgo: "NULL",
		KeyLen: 0, IVLen: 0, MAC: sslcrypto.MACMD5,
		newCipher: func(_, _ []byte, _ bool) (RecordCipher, error) { return nullCipher{}, nil },
	})
	register(&Suite{
		ID: RSAWithNullSHA, Name: "NULL-SHA", CipherAlgo: "NULL",
		KeyLen: 0, IVLen: 0, MAC: sslcrypto.MACSHA1,
		newCipher: func(_, _ []byte, _ bool) (RecordCipher, error) { return nullCipher{}, nil },
	})
}

// ByID looks a suite up by wire identifier.
func ByID(id ID) (*Suite, error) {
	s, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("suite: unknown cipher suite %#04x", uint16(id))
	}
	return s, nil
}

// ByName looks a suite up by its OpenSSL-style name.
func ByName(name string) (*Suite, error) {
	for _, id := range ordered {
		if registry[id].Name == name {
			return registry[id], nil
		}
	}
	return nil, fmt.Errorf("suite: unknown cipher suite %q", name)
}

// All returns every registered suite in registration order.
func All() []*Suite {
	out := make([]*Suite, 0, len(ordered))
	for _, id := range ordered {
		out = append(out, registry[id])
	}
	return out
}

// Choose picks the first of the client's offered suites the server
// supports, mirroring the cipher negotiation in handshake step 1.
func Choose(offered []ID) (*Suite, error) {
	for _, id := range offered {
		if s, ok := registry[id]; ok {
			return s, nil
		}
	}
	return nil, errors.New("suite: no shared cipher suite")
}
