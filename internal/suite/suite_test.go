package suite

import (
	"testing"

	"sslperf/internal/sslcrypto"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("registered %d suites, want 11", len(all))
	}
	// The paper's suite must be present under its OpenSSL name.
	s, err := ByName("DES-CBC3-SHA")
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != RSAWith3DESEDECBCSHA || s.KeyLen != 24 || s.IVLen != 8 {
		t.Fatalf("DES-CBC3-SHA = %+v", s)
	}
	if s.MAC != sslcrypto.MACSHA1 {
		t.Fatal("paper suite must use SHA-1 MAC")
	}
	if s.Kx != KxRSA {
		t.Fatal("paper suite must use RSA key exchange")
	}
}

func TestDHESuites(t *testing.T) {
	for _, name := range []string{
		"EDH-RSA-DES-CBC3-SHA", "DHE-RSA-AES128-SHA", "DHE-RSA-AES256-SHA",
	} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Kx != KxDHERSA {
			t.Errorf("%s: Kx = %v, want DHE", name, s.Kx)
		}
	}
	// The DHE 3DES suite mirrors the RSA one's record geometry.
	a, _ := ByName("DES-CBC3-SHA")
	b, _ := ByName("EDH-RSA-DES-CBC3-SHA")
	if a.KeyLen != b.KeyLen || a.IVLen != b.IVLen || a.MAC != b.MAC {
		t.Fatal("EDH 3DES record parameters differ from RSA 3DES")
	}
}

func TestByIDAndErrors(t *testing.T) {
	s, err := ByID(RSAWithAES128CBCSHA)
	if err != nil || s.Name != "AES128-SHA" {
		t.Fatalf("ByID: %v %v", s, err)
	}
	if _, err := ByID(0x1234); err == nil {
		t.Fatal("unknown ID accepted")
	}
	if _, err := ByName("CHACHA20"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestKeyMaterialLen(t *testing.T) {
	cases := map[string]int{
		"NULL-MD5":     2 * 16,            // two MAC secrets only
		"RC4-MD5":      2*16 + 2*16,       // + two keys
		"DES-CBC3-SHA": 2*20 + 2*24 + 2*8, // + IVs
		"AES256-SHA":   2*20 + 2*32 + 2*16,
	}
	for name, want := range cases {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.KeyMaterialLen(); got != want {
			t.Errorf("%s key material = %d, want %d", name, got, want)
		}
	}
}

func TestNewCipherValidation(t *testing.T) {
	s, _ := ByName("AES128-SHA")
	if _, err := s.NewCipher(make([]byte, 15), make([]byte, 16), true); err == nil {
		t.Fatal("accepted short key")
	}
	if _, err := s.NewCipher(make([]byte, 16), make([]byte, 15), true); err == nil {
		t.Fatal("accepted short IV")
	}
	c, err := s.NewCipher(make([]byte, 16), make([]byte, 16), true)
	if err != nil {
		t.Fatal(err)
	}
	if c.BlockSize() != 16 {
		t.Fatalf("block size = %d", c.BlockSize())
	}
}

func TestStreamAndNullBlockSizes(t *testing.T) {
	for name, want := range map[string]int{
		"NULL-SHA": 1, "RC4-SHA": 16, // RC4 keylen 16, blocksize 1
	} {
		s, _ := ByName(name)
		key := make([]byte, s.KeyLen)
		c, err := s.NewCipher(key, nil, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.BlockSize() != 1 {
			t.Errorf("%s block size = %d, want 1 (stream)", name, c.BlockSize())
		}
		_ = want
	}
}

func TestBlockCipherDirectionality(t *testing.T) {
	s, _ := ByName("AES128-SHA")
	enc, _ := s.NewCipher(make([]byte, 16), make([]byte, 16), true)
	defer func() {
		if recover() == nil {
			t.Fatal("decrypt on encrypt-side cipher did not panic")
		}
	}()
	enc.Decrypt(make([]byte, 16))
}

func TestChoose(t *testing.T) {
	s, err := Choose([]ID{0x9999, RSAWithRC4128SHA, RSAWithAES128CBCSHA})
	if err != nil || s.ID != RSAWithRC4128SHA {
		t.Fatalf("Choose = %v, %v", s, err)
	}
	if _, err := Choose([]ID{0x9999}); err == nil {
		t.Fatal("Choose succeeded with no shared suite")
	}
	if _, err := Choose(nil); err == nil {
		t.Fatal("Choose succeeded with empty offer")
	}
}

func TestNullCipherPassthrough(t *testing.T) {
	s, _ := ByName("NULL-MD5")
	c, _ := s.NewCipher(nil, nil, true)
	buf := []byte("unchanged")
	c.Encrypt(buf)
	if string(buf) != "unchanged" {
		t.Fatal("null cipher modified data")
	}
}
