// Package dh implements ephemeral Diffie-Hellman key agreement, the
// other asymmetric algorithm the paper's background names alongside
// RSA. DHE cipher suites exercise the ServerKeyExchange message that
// the paper's RSA suites skip: the server generates an ephemeral
// keypair, signs the parameters with its RSA key (so RSA "is used for
// signing as well", as the paper puts it), and both sides derive the
// pre-master secret from the shared value.
package dh

import (
	"errors"
	"io"

	"sslperf/internal/bn"
)

// Params is a Diffie-Hellman group: an odd prime modulus P and a
// generator G.
type Params struct {
	P *bn.Int
	G *bn.Int
}

// Oakley Group 2 (RFC 2409 §6.2): the 1024-bit MODP group that
// matches the paper's 1024-bit RSA operating point.
var oakley2Hex = "ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74" +
	"020bbea63b139b22514a08798e3404ddef9519b3cd3a431b302b0a6df25f1437" +
	"4fe1356d6d51c245e485b576625e7ec6f44c42e9a637ed6b0bff5cb6f406b7ed" +
	"ee386bfb5a899fa5ae9f24117c4b1fe649286651ece65381ffffffffffffffff"

// Group1024 returns the 1024-bit Oakley Group 2 parameters with
// generator 2.
func Group1024() *Params {
	return &Params{P: bn.MustHex(oakley2Hex), G: bn.NewInt(2)}
}

// Validate checks the group's basic sanity.
func (p *Params) Validate() error {
	if p.P == nil || p.G == nil {
		return errors.New("dh: nil parameters")
	}
	if !p.P.IsOdd() || p.P.BitLen() < 512 {
		return errors.New("dh: modulus must be an odd prime of >= 512 bits")
	}
	one := bn.NewInt(1)
	if p.G.Cmp(one) <= 0 || p.G.Cmp(p.P) >= 0 {
		return errors.New("dh: generator out of range")
	}
	return nil
}

// KeyPair is an ephemeral DH key: private exponent X and public value
// Y = G^X mod P.
type KeyPair struct {
	Params *Params
	X      *bn.Int
	Y      *bn.Int
}

// GenerateKey draws a fresh ephemeral keypair from rnd. The private
// exponent is a full-width random value reduced into [2, P-2].
func GenerateKey(rnd io.Reader, params *Params) (*KeyPair, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	pm2 := bn.New().SubWord(params.P, 2)
	for {
		x, err := bn.New().RandRange(rnd, pm2)
		if err != nil {
			return nil, err
		}
		if x.IsOne() {
			continue
		}
		y := bn.New().ModExp(params.G, x, params.P)
		if y.IsOne() || y.IsZero() {
			continue // degenerate public value
		}
		return &KeyPair{Params: params, X: x, Y: y}, nil
	}
}

// SharedSecret computes peerY^X mod P and returns it as the SSLv3
// pre-master byte string (leading zero octets stripped, per the
// TLS/SSL DH convention).
func (k *KeyPair) SharedSecret(peerY *bn.Int) ([]byte, error) {
	if err := validatePeer(k.Params, peerY); err != nil {
		return nil, err
	}
	z := bn.New().ModExp(peerY, k.X, k.Params.P)
	if z.IsZero() || z.IsOne() {
		return nil, errors.New("dh: degenerate shared secret")
	}
	return z.Bytes(), nil
}

// validatePeer rejects out-of-range and small-subgroup public values.
func validatePeer(params *Params, y *bn.Int) error {
	one := bn.NewInt(1)
	if y == nil || y.Cmp(one) <= 0 {
		return errors.New("dh: peer public value too small")
	}
	pm1 := bn.New().Sub(params.P, one)
	if y.Cmp(pm1) >= 0 {
		return errors.New("dh: peer public value too large")
	}
	return nil
}

// Cleanse scrubs the private exponent.
func (k *KeyPair) Cleanse() {
	if k.X != nil {
		k.X.Cleanse()
	}
}
