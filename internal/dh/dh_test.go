package dh

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"

	"sslperf/internal/bn"
)

type randReader struct{ r *rand.Rand }

func newRandReader(seed int64) *randReader {
	return &randReader{r: rand.New(rand.NewSource(seed))}
}

func (rr *randReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(rr.r.Intn(256))
	}
	return len(p), nil
}

func TestGroup1024Sanity(t *testing.T) {
	g := Group1024()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.P.BitLen() != 1024 {
		t.Fatalf("modulus bits = %d", g.P.BitLen())
	}
	// The Oakley prime is prime (verified against math/big).
	p := new(big.Int).SetBytes(g.P.Bytes())
	if !p.ProbablyPrime(32) {
		t.Fatal("Oakley group 2 modulus not prime?!")
	}
	// And a safe prime: (p-1)/2 is prime too.
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	if !q.ProbablyPrime(16) {
		t.Fatal("(p-1)/2 not prime")
	}
}

func TestKeyAgreement(t *testing.T) {
	params := Group1024()
	rnd := newRandReader(1)
	a, err := GenerateKey(rnd, params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKey(rnd, params)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := a.SharedSecret(b.Y)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.SharedSecret(a.Y)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("shared secrets differ")
	}
	if len(s1) == 0 {
		t.Fatal("empty shared secret")
	}
}

func TestAgainstMathBig(t *testing.T) {
	params := Group1024()
	rnd := newRandReader(2)
	a, _ := GenerateKey(rnd, params)
	b, _ := GenerateKey(rnd, params)
	s, _ := a.SharedSecret(b.Y)
	// Oracle: big.Int exponentiation.
	p := new(big.Int).SetBytes(params.P.Bytes())
	yb := new(big.Int).SetBytes(b.Y.Bytes())
	xa := new(big.Int).SetBytes(a.X.Bytes())
	want := new(big.Int).Exp(yb, xa, p)
	if !bytes.Equal(s, want.Bytes()) {
		t.Fatal("shared secret disagrees with math/big")
	}
}

func TestRejectsDegeneratePeers(t *testing.T) {
	params := Group1024()
	a, _ := GenerateKey(newRandReader(3), params)
	pm1 := bn.New().SubWord(params.P, 1)
	for name, y := range map[string]*bn.Int{
		"zero": bn.NewInt(0),
		"one":  bn.NewInt(1),
		"p-1":  pm1,
		"p":    params.P,
	} {
		if _, err := a.SharedSecret(y); err == nil {
			t.Errorf("accepted degenerate peer value %s", name)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []*Params{
		{P: nil, G: nil},
		{P: bn.NewInt(100), G: bn.NewInt(2)}, // even, tiny
		{P: Group1024().P, G: bn.NewInt(1)},  // generator 1
		{P: Group1024().P, G: Group1024().P}, // generator >= p
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestDistinctKeysPerGeneration(t *testing.T) {
	params := Group1024()
	rnd := newRandReader(4)
	a, _ := GenerateKey(rnd, params)
	b, _ := GenerateKey(rnd, params)
	if a.X.Equal(b.X) || a.Y.Equal(b.Y) {
		t.Fatal("consecutive keypairs identical")
	}
}

func TestCleanse(t *testing.T) {
	a, _ := GenerateKey(newRandReader(5), Group1024())
	a.Cleanse()
	if !a.X.IsZero() {
		t.Fatal("private exponent not scrubbed")
	}
}
