package macpipe

import (
	"sync"
	"sync/atomic"
	"testing"
)

type countTask struct {
	n    *atomic.Int64
	wg   *sync.WaitGroup
	self int64
}

func (t *countTask) Run() {
	t.n.Add(t.self)
	t.wg.Done()
}

// TestSubmitRunsEveryTask floods the pool from many goroutines; every
// accepted task must run exactly once, and rejected tasks must be the
// caller's to run inline — the contract flight sealing depends on.
func TestSubmitRunsEveryTask(t *testing.T) {
	var sum atomic.Int64
	var wg sync.WaitGroup
	var want int64
	const submitters, per = 8, 200
	var outer sync.WaitGroup
	var wantMu sync.Mutex
	for g := 0; g < submitters; g++ {
		outer.Add(1)
		go func(g int) {
			defer outer.Done()
			for i := 0; i < per; i++ {
				v := int64(g*per + i + 1)
				task := &countTask{n: &sum, wg: &wg, self: v}
				wg.Add(1)
				if !Submit(task) {
					// Saturated: the caller runs it inline, exactly as
					// the record layer's seal path does.
					task.Run()
				}
				wantMu.Lock()
				want += v
				wantMu.Unlock()
			}
		}(g)
	}
	outer.Wait()
	wg.Wait()
	if got := sum.Load(); got != want {
		t.Fatalf("task sum = %d, want %d (lost or doubled tasks)", got, want)
	}
}

func TestWidth(t *testing.T) {
	if Width() < 1 {
		t.Fatalf("Width() = %d, want >= 1", Width())
	}
}
