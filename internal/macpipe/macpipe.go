// Package macpipe is the shared hashing-unit pool behind pipelined
// sealing: a process-wide set of worker goroutines that run MAC
// computations concurrently with the caller's cipher work — the
// paper's Figure 6 control unit (hashing unit ∥ cipher unit)
// generalized from one hardware engine to however many cores the host
// has, in the shape of the multi-core SSL processor literature
// (parallel crypto units feeding a serialized output stage).
//
// Two properties shape the API:
//
//   - Submission never blocks and never allocates. Submit hands a
//     pre-allocated Task pointer to a buffered channel; when the pool
//     is saturated it returns false and the caller runs the work
//     inline. Callers therefore need no fallback goroutines, and a
//     fleet of a million mostly-idle connections pins exactly
//     GOMAXPROCS goroutines, not one per connection.
//
//   - The pool is started lazily on first use, so binaries that never
//     seal a flight (clients, tests of other layers) pay nothing.
package macpipe

import (
	"runtime"
	"sync"
)

// A Task is one hashing-unit assignment. Run executes on a pool
// worker; implementations own their synchronization with the
// submitter (typically a done flag plus cond broadcast, or a
// channel send).
type Task interface {
	Run()
}

var (
	once sync.Once
	jobs chan Task
	size int
)

func start() {
	size = runtime.GOMAXPROCS(0)
	if size < 1 {
		size = 1
	}
	// The queue holds a few flights' worth of helper jobs; beyond
	// that, Submit sheds to the caller rather than queueing unbounded.
	jobs = make(chan Task, 4*size)
	for i := 0; i < size; i++ {
		go worker()
	}
}

func worker() {
	for t := range jobs {
		t.Run()
	}
}

// Submit offers t to the pool, returning false when every worker is
// busy and the queue is full — the caller should then run the work
// inline (correctness must never depend on a helper being available).
func Submit(t Task) bool {
	once.Do(start)
	select {
	case jobs <- t:
		return true
	default:
		return false
	}
}

// Width reports the pool size (the number of worker goroutines),
// starting the pool if needed. Callers size their per-worker state
// (e.g. MAC clones) from it.
func Width() int {
	once.Do(start)
	return size
}
