package loadgen

import (
	"fmt"
	"strings"
	"time"

	"sslperf/internal/baseline"
)

// BenchName is the report's bench field; internal/baseline registers
// the matching expectation shape under it.
const BenchName = "load-latency"

// Report renders the run as a machine-readable report in the
// committed docs/BENCH_*.json shape: one result per phase with
// mean/p50/p95/p99/max in microseconds, plus throughput and outcome
// rows, so the baseline drift engine can gate load runs exactly like
// microbenchmarks.
func (res *Result) Report(command, note string) *baseline.Report {
	rep := &baseline.Report{
		Bench:   BenchName,
		Date:    time.Now().Format("2006-01-02"),
		Machine: baseline.Machine(),
		Command: command,
		Note:    note,
		Results: map[string]*baseline.BenchResult{},
	}
	for _, p := range res.Phases {
		if p.Hist.Count == 0 {
			continue
		}
		rep.Results[p.Name] = &baseline.BenchResult{
			Iterations: int64(p.Hist.Count),
			Metrics: map[string]float64{
				"mean_us": round1(p.Hist.Mean),
				"p50_us":  float64(p.Hist.P50),
				"p95_us":  float64(p.Hist.P95),
				"p99_us":  float64(p.Hist.P99),
				"max_us":  float64(p.Hist.Max),
			},
		}
	}
	secs := res.Elapsed.Seconds()
	if secs > 0 {
		rep.Results["throughput"] = &baseline.BenchResult{
			Iterations: int64(res.Done),
			Metrics: map[string]float64{
				"conns/s":    round1(float64(res.Done) / secs),
				"requests/s": round1(float64(res.Requests) / secs),
				"MB/s":       round1(float64(res.Bytes) / 1e6 / secs),
			},
		}
	}
	rep.Results["outcomes"] = &baseline.BenchResult{
		Iterations: int64(res.Started),
		Metrics: map[string]float64{
			"done":             float64(res.Done),
			"failed":           float64(res.Failed),
			"resumed":          float64(res.Resumed),
			"warmup_discarded": float64(res.WarmupDiscarded),
		},
	}
	return rep
}

// Text renders the run as an aligned human-readable summary.
func (res *Result) Text() string {
	var sb strings.Builder
	switch res.Mode {
	case "open":
		fmt.Fprintf(&sb, "open loop: %.0f conns/s intended, %d in-flight cap, %v measured (+%v warmup)\n",
			res.Rate, res.Concurrency, res.Duration, res.Warmup)
	default:
		fmt.Fprintf(&sb, "closed loop: %d workers, %v measured (+%v warmup)\n",
			res.Concurrency, res.Duration, res.Warmup)
	}
	secs := res.Elapsed.Seconds()
	fmt.Fprintf(&sb, "connections: %d done, %d failed, %d resumed (%d discarded in warmup)\n",
		res.Done, res.Failed, res.Resumed, res.WarmupDiscarded)
	if secs > 0 {
		fmt.Fprintf(&sb, "throughput: %.1f conns/s, %.1f requests/s, %.2f MB/s\n",
			float64(res.Done)/secs, float64(res.Requests)/secs, float64(res.Bytes)/1e6/secs)
	}
	fmt.Fprintf(&sb, "\n%-16s %10s %10s %10s %10s %10s %8s\n",
		"phase", "mean", "p50", "p95", "p99", "max", "n")
	for _, p := range res.Phases {
		if p.Hist.Count == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-16s %10s %10s %10s %10s %10s %8d\n", p.Name,
			usStr(p.Hist.Mean), usStr(float64(p.Hist.P50)), usStr(float64(p.Hist.P95)),
			usStr(float64(p.Hist.P99)), usStr(float64(p.Hist.Max)), p.Hist.Count)
	}
	if len(res.BySuite) > 0 {
		sb.WriteString("\nsuite mix:\n")
		for name, n := range res.BySuite {
			fmt.Fprintf(&sb, "  %-28s %d\n", name, n)
		}
	}
	if len(res.Errors) > 0 {
		sb.WriteString("\nerrors:\n")
		for reason, n := range res.Errors {
			fmt.Fprintf(&sb, "  %-40s %d\n", reason, n)
		}
	}
	return sb.String()
}

// usStr renders a microsecond quantity with a unit humans can scan.
func usStr(us float64) string {
	d := time.Duration(us * float64(time.Microsecond))
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", us)
	}
}

func round1(v float64) float64 {
	return float64(int64(v*10+0.5)) / 10
}
