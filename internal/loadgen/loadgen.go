// Package loadgen is the closed-loop measurement driver the paper's
// methodology assumes but our reproduction never had: a load
// generator over our own internal/ssl client that drives HTTPS-like
// transactions against sslserver and records per-phase latency
// without coordinated omission.
//
// Two modes:
//
//   - Open loop (Rate > 0): arrivals follow a fixed schedule —
//     connection i is *intended* to start at start + i/Rate whether
//     or not earlier connections finished. Latency is recorded from
//     the intended start, so a stalled server inflates the recorded
//     tail instead of silently slowing the arrival rate (the
//     coordinated-omission trap single-threaded clients fall into).
//   - Closed loop (Rate == 0): Concurrency workers run back-to-back
//     transactions, the classic fixed-concurrency benchmark; intended
//     and actual start coincide by construction.
//
// Warmup-phase transactions run but are discarded from the recorded
// distributions. Phases (connect / handshake / first-byte / total)
// land in log-bucketed telemetry.ValueHistograms in microseconds, and
// the run renders as a machine-readable report in the committed
// docs/BENCH_*.json shape so internal/baseline can gate on it.
package loadgen

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/record"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
	"sslperf/internal/telemetry"
)

// A SuiteWeight is one entry of the cipher-suite mix: connections
// offer exactly this suite with probability Weight / sum(Weights).
type SuiteWeight struct {
	Name   string
	ID     suite.ID
	Weight float64
}

// ParseSuiteMix parses "RC4-MD5:3,DES-CBC3-SHA:1" (weights optional,
// default 1) into a suite mix.
func ParseSuiteMix(s string) ([]SuiteWeight, error) {
	if s == "" {
		return nil, nil
	}
	var mix []SuiteWeight
	for _, part := range strings.Split(s, ",") {
		name, weightStr, hasWeight := strings.Cut(strings.TrimSpace(part), ":")
		w := 1.0
		if hasWeight {
			var err error
			if w, err = strconv.ParseFloat(weightStr, 64); err != nil || w <= 0 {
				return nil, fmt.Errorf("loadgen: bad suite weight %q", part)
			}
		}
		sp, err := suite.ByName(name)
		if err != nil {
			return nil, err
		}
		mix = append(mix, SuiteWeight{Name: sp.Name, ID: sp.ID, Weight: w})
	}
	return mix, nil
}

// Config parameterizes one load run.
type Config struct {
	// Addr is the target server; ignored when Dial is set.
	Addr string

	// Dial overrides the transport (tests drive an in-process server
	// through it). Default: net.Dial("tcp", Addr).
	Dial func() (io.ReadWriteCloser, error)

	// Rate selects open-loop mode when > 0: intended arrivals per
	// second. Zero means closed loop.
	Rate float64

	// Concurrency is the closed-loop worker count, and in open loop
	// the in-flight connection cap (arrivals blocked on the cap stay
	// charged to their intended start). Default 1 closed / 256 open.
	Concurrency int

	// Duration is the measured window; Warmup runs before it and is
	// discarded. Total wall time is Warmup + Duration.
	Duration time.Duration
	Warmup   time.Duration

	// Requests per connection (default 1).
	Requests int

	// ResumeFraction of connections attempt session resumption from
	// the shared pool of sessions earlier connections established.
	ResumeFraction float64

	// Mix is the weighted cipher-suite mix; empty offers every suite.
	Mix []SuiteWeight

	// TLS offers TLS 1.0 instead of SSL 3.0.
	TLS bool

	// Seed makes the run deterministic modulo scheduling (0 =
	// time-based).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Dial == nil {
		addr := c.Addr
		c.Dial = func() (io.ReadWriteCloser, error) {
			d := net.Dialer{Timeout: 10 * time.Second}
			return d.Dial("tcp", addr)
		}
	}
	if c.Concurrency <= 0 {
		if c.Rate > 0 {
			c.Concurrency = 256
		} else {
			c.Concurrency = 1
		}
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Requests <= 0 {
		c.Requests = 1
	}
	if c.Seed == 0 {
		c.Seed = uint64(time.Now().UnixNano())
	}
	return c
}

// Phase names, in report order.
const (
	PhaseConnect   = "connect"
	PhaseHandshake = "handshake"
	PhaseFirstByte = "first_byte"
	PhaseTotal     = "total"
	// PhaseTotalCorrected measures from the *intended* start — the
	// coordinated-omission-safe number (open loop only).
	PhaseTotalCorrected = "total_corrected"
	// PhaseSchedLag is actual minus intended start: how far the
	// generator itself fell behind its schedule (open loop only).
	PhaseSchedLag = "sched_lag"
)

// PhaseStats is one phase's recorded distribution (microseconds).
type PhaseStats struct {
	Name string                           `json:"name"`
	Hist telemetry.ValueHistogramSnapshot `json:"hist"`
}

// A Result is one completed load run.
type Result struct {
	Mode        string        `json:"mode"` // "open" or "closed"
	Rate        float64       `json:"rate,omitempty"`
	Concurrency int           `json:"concurrency"`
	Duration    time.Duration `json:"duration_ns"`
	Warmup      time.Duration `json:"warmup_ns"`
	Elapsed     time.Duration `json:"elapsed_ns"` // measured window wall time

	Started         uint64 `json:"started"`
	Done            uint64 `json:"done"`
	Failed          uint64 `json:"failed"`
	Resumed         uint64 `json:"resumed"`
	Requests        uint64 `json:"requests"`
	Bytes           uint64 `json:"bytes"`
	WarmupDiscarded uint64 `json:"warmup_discarded"`

	Phases []PhaseStats      `json:"phases"`
	Errors map[string]uint64 `json:"errors,omitempty"`

	BySuite map[string]uint64 `json:"by_suite,omitempty"`
}

// runner is the shared state of one run.
type runner struct {
	cfg       Config
	warmupEnd time.Time
	deadline  time.Time

	connect, handshake, firstByte  telemetry.ValueHistogram
	total, corrected, schedLag     telemetry.ValueHistogram
	started, done, failed, resumed atomic.Uint64
	requests, bytes, warmupDiscard atomic.Uint64
	totalWeight                    float64

	sessions chan *handshake.Session

	mu      sync.Mutex
	errs    map[string]uint64
	bySuite map[string]uint64
}

// Run executes one load run to completion and returns its result.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.ResumeFraction < 0 || cfg.ResumeFraction > 1 {
		return nil, errors.New("loadgen: resume fraction must be in [0,1]")
	}
	r := &runner{
		cfg:      cfg,
		sessions: make(chan *handshake.Session, 4096),
		errs:     make(map[string]uint64),
		bySuite:  make(map[string]uint64),
	}
	for _, m := range cfg.Mix {
		r.totalWeight += m.Weight
	}

	start := time.Now()
	r.warmupEnd = start.Add(cfg.Warmup)
	r.deadline = r.warmupEnd.Add(cfg.Duration)

	if cfg.Rate > 0 {
		r.openLoop(start)
	} else {
		r.closedLoop()
	}
	// Tail transactions may finish past the deadline; throughput uses
	// the real span of measured work, not the nominal duration.
	return r.result(time.Since(r.warmupEnd)), nil
}

// openLoop dispatches arrivals on the fixed schedule. The slot
// channel caps in-flight connections; an arrival that waits for a
// slot keeps its original intended time, so the wait shows up in
// total_corrected — exactly the latency a real user would see.
func (r *runner) openLoop(start time.Time) {
	interval := time.Duration(float64(time.Second) / r.cfg.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	slots := make(chan struct{}, r.cfg.Concurrency)
	var wg sync.WaitGroup
	for i := 0; ; i++ {
		intended := start.Add(time.Duration(i) * interval)
		if intended.After(r.deadline) {
			break
		}
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		slots <- struct{}{}
		wg.Add(1)
		go func(i int, intended time.Time) {
			defer wg.Done()
			defer func() { <-slots }()
			r.transaction(uint64(i), intended)
		}(i, intended)
	}
	wg.Wait()
}

// closedLoop runs Concurrency workers back-to-back until the
// deadline. Each worker's connections chain sessions like a browser
// would, so ResumeFraction behaves the same in both modes.
func (r *runner) closedLoop() {
	var wg sync.WaitGroup
	var seq atomic.Uint64
	for w := 0; w < r.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(r.deadline) {
				i := seq.Add(1)
				r.transaction(i, time.Now())
			}
		}()
	}
	wg.Wait()
}

// roll returns a deterministic uniform [0,1) for decision i/salt.
func (r *runner) roll(i, salt uint64) float64 {
	x := r.cfg.Seed + i*0x9e3779b97f4a7c15 + salt*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 27
	return float64(x>>11) / float64(1<<53)
}

// pickSuite draws from the weighted mix (nil = offer everything).
func (r *runner) pickSuite(i uint64) []suite.ID {
	if len(r.cfg.Mix) == 0 {
		return nil
	}
	target := r.roll(i, 1) * r.totalWeight
	for _, m := range r.cfg.Mix {
		if target < m.Weight {
			return []suite.ID{m.ID}
		}
		target -= m.Weight
	}
	return []suite.ID{r.cfg.Mix[len(r.cfg.Mix)-1].ID}
}

// transaction runs one connection: dial, handshake (maybe resumed),
// Requests request/response exchanges, close — recording each phase
// unless it started inside the warmup window.
func (r *runner) transaction(i uint64, intended time.Time) {
	r.started.Add(1)
	measured := !intended.Before(r.warmupEnd)
	if !measured {
		r.warmupDiscard.Add(1)
	}

	var session *handshake.Session
	if r.cfg.ResumeFraction > 0 && r.roll(i, 2) < r.cfg.ResumeFraction {
		select {
		case session = <-r.sessions:
		default:
		}
	}

	cfg := &ssl.Config{
		Rand:               ssl.NewPRNG(r.cfg.Seed + 7919*i),
		InsecureSkipVerify: true,
		Suites:             r.pickSuite(i),
		Session:            session,
	}
	if r.cfg.TLS {
		cfg.Version = record.VersionTLS10
	}

	actualStart := time.Now()
	tc, err := r.cfg.Dial()
	if err != nil {
		r.fail(measured, "dial: "+err.Error())
		return
	}
	connected := time.Now()

	conn := ssl.ClientConn(tc, cfg)
	defer conn.Close()
	if err := conn.Handshake(); err != nil {
		r.fail(measured, "handshake: "+ssl.FailureReason(err))
		return
	}
	handshaken := time.Now()
	state, _ := conn.ConnectionState()

	br := bufio.NewReader(conn)
	var firstByteAt time.Time
	var bytes uint64
	for j := 0; j < r.cfg.Requests; j++ {
		if _, err := conn.Write([]byte("GET /\n")); err != nil {
			r.fail(measured, "write: "+err.Error())
			return
		}
		line, err := br.ReadString('\n')
		if err != nil {
			r.fail(measured, "read: "+err.Error())
			return
		}
		if j == 0 {
			firstByteAt = time.Now()
		}
		size, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "LEN ")))
		if err != nil {
			r.fail(measured, "bad response header")
			return
		}
		if _, err := io.CopyN(io.Discard, br, int64(size)); err != nil {
			r.fail(measured, "read body: "+err.Error())
			return
		}
		bytes += uint64(size) + uint64(len(line))
		r.requests.Add(1)
	}
	if s, err := conn.Session(); err == nil && s != nil {
		select {
		case r.sessions <- s:
		default:
		}
	}
	end := time.Now()

	r.done.Add(1)
	if state.Resumed {
		r.resumed.Add(1)
	}
	r.bytes.Add(bytes)
	if !measured {
		return
	}
	us := func(d time.Duration) int64 {
		if d < 0 {
			d = 0
		}
		return d.Microseconds()
	}
	r.connect.Observe(us(connected.Sub(actualStart)))
	r.handshake.Observe(us(handshaken.Sub(connected)))
	r.firstByte.Observe(us(firstByteAt.Sub(handshaken)))
	r.total.Observe(us(end.Sub(actualStart)))
	if r.cfg.Rate > 0 {
		r.corrected.Observe(us(end.Sub(intended)))
		r.schedLag.Observe(us(actualStart.Sub(intended)))
	}
	r.mu.Lock()
	name := state.Suite.Name
	if state.Resumed {
		name += " (resumed)"
	}
	r.bySuite[name]++
	r.mu.Unlock()
}

func (r *runner) fail(measured bool, reason string) {
	r.failed.Add(1)
	if !measured {
		return
	}
	r.mu.Lock()
	r.errs[reason]++
	r.mu.Unlock()
}

func (r *runner) result(elapsed time.Duration) *Result {
	res := &Result{
		Mode:            "closed",
		Rate:            r.cfg.Rate,
		Concurrency:     r.cfg.Concurrency,
		Duration:        r.cfg.Duration,
		Warmup:          r.cfg.Warmup,
		Elapsed:         elapsed,
		Started:         r.started.Load(),
		Done:            r.done.Load(),
		Failed:          r.failed.Load(),
		Resumed:         r.resumed.Load(),
		Requests:        r.requests.Load(),
		Bytes:           r.bytes.Load(),
		WarmupDiscarded: r.warmupDiscard.Load(),
	}
	if r.cfg.Rate > 0 {
		res.Mode = "open"
	}
	add := func(name string, h *telemetry.ValueHistogram) {
		res.Phases = append(res.Phases, PhaseStats{Name: name, Hist: h.Snapshot()})
	}
	add(PhaseConnect, &r.connect)
	add(PhaseHandshake, &r.handshake)
	add(PhaseFirstByte, &r.firstByte)
	add(PhaseTotal, &r.total)
	if r.cfg.Rate > 0 {
		add(PhaseTotalCorrected, &r.corrected)
		add(PhaseSchedLag, &r.schedLag)
	}
	r.mu.Lock()
	if len(r.errs) > 0 {
		res.Errors = make(map[string]uint64, len(r.errs))
		for k, v := range r.errs {
			res.Errors[k] = v
		}
	}
	if len(r.bySuite) > 0 {
		res.BySuite = make(map[string]uint64, len(r.bySuite))
		for k, v := range r.bySuite {
			res.BySuite[k] = v
		}
	}
	r.mu.Unlock()
	return res
}
