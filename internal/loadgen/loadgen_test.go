package loadgen

import (
	"strings"
	"testing"
	"time"
)

func startTestServer(t *testing.T) *Server {
	t.Helper()
	srv, err := StartServer(ServerOptions{KeyBits: 512, FileSize: 512, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func phase(t *testing.T, res *Result, name string) PhaseStats {
	t.Helper()
	for _, p := range res.Phases {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("phase %q missing from %+v", name, res.Phases)
	return PhaseStats{}
}

func TestOpenLoopRun(t *testing.T) {
	srv := startTestServer(t)
	res, err := Run(Config{
		Addr:     srv.Addr(),
		Rate:     300,
		Duration: 400 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" {
		t.Fatalf("mode = %q", res.Mode)
	}
	if res.Failed != 0 {
		t.Fatalf("%d failures: %v", res.Failed, res.Errors)
	}
	if res.Done < 50 {
		t.Fatalf("only %d connections done", res.Done)
	}
	if res.WarmupDiscarded == 0 {
		t.Fatal("warmup transactions were not discarded")
	}
	total := phase(t, res, PhaseTotal)
	corrected := phase(t, res, PhaseTotalCorrected)
	if total.Hist.Count == 0 || corrected.Hist.Count != total.Hist.Count {
		t.Fatalf("phase counts: total %d corrected %d", total.Hist.Count, corrected.Hist.Count)
	}
	// Coordinated-omission correction can only add scheduling lag.
	if corrected.Hist.Sum < total.Hist.Sum {
		t.Fatalf("corrected sum %d < actual sum %d", corrected.Hist.Sum, total.Hist.Sum)
	}
	for _, name := range []string{PhaseConnect, PhaseHandshake, PhaseFirstByte} {
		if p := phase(t, res, name); p.Hist.Count == 0 {
			t.Fatalf("phase %s empty", name)
		}
	}
	hs := phase(t, res, PhaseHandshake).Hist
	if !(hs.P50 <= hs.P95 && hs.P95 <= hs.P99 && int64(hs.P99) <= hs.Max) {
		t.Fatalf("quantiles not monotone: %+v", hs)
	}
}

func TestClosedLoopResumptionAndMix(t *testing.T) {
	srv := startTestServer(t)
	mix, err := ParseSuiteMix("RC4-MD5:3,DES-CBC3-SHA:1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Addr:           srv.Addr(),
		Concurrency:    4,
		Duration:       500 * time.Millisecond,
		Requests:       2,
		ResumeFraction: 0.5,
		Mix:            mix,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" {
		t.Fatalf("mode = %q", res.Mode)
	}
	if res.Failed != 0 {
		t.Fatalf("%d failures: %v", res.Failed, res.Errors)
	}
	if res.Done < 8 {
		t.Fatalf("only %d connections done", res.Done)
	}
	if res.Resumed == 0 {
		t.Fatal("resume fraction 0.5 produced no resumed handshakes")
	}
	if res.Requests != 2*res.Done {
		t.Fatalf("requests %d != 2 * done %d", res.Requests, res.Done)
	}
	sawRC4 := false
	for name := range res.BySuite {
		if strings.HasPrefix(name, "RC4-MD5") {
			sawRC4 = true
		}
	}
	if !sawRC4 {
		t.Fatalf("suite mix never picked RC4-MD5: %v", res.BySuite)
	}
	// Closed loop records no schedule-derived phases.
	for _, p := range res.Phases {
		if p.Name == PhaseTotalCorrected || p.Name == PhaseSchedLag {
			t.Fatalf("closed loop recorded %s", p.Name)
		}
	}
}

func TestReportShapePassesBaselineGate(t *testing.T) {
	srv := startTestServer(t)
	res, err := Run(Config{
		Addr:     srv.Addr(),
		Rate:     200,
		Duration: 300 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report("test", "unit-test run")
	if rep.Bench != BenchName {
		t.Fatalf("bench = %q", rep.Bench)
	}
	for _, name := range []string{PhaseConnect, PhaseHandshake, PhaseFirstByte, PhaseTotal, PhaseTotalCorrected, "throughput", "outcomes"} {
		if rep.Results[name] == nil {
			t.Fatalf("report missing %q: have %v", name, rep.SortedResults())
		}
	}
	hs := rep.Results[PhaseHandshake].Metrics
	for _, m := range []string{"mean_us", "p50_us", "p95_us", "p99_us", "max_us"} {
		if _, ok := hs[m]; !ok {
			t.Fatalf("handshake metrics missing %s: %v", m, hs)
		}
	}
	if txt := res.Text(); !strings.Contains(txt, "handshake") || !strings.Contains(txt, "p95") {
		t.Fatalf("text rendering:\n%s", txt)
	}
}

func TestParseSuiteMixErrors(t *testing.T) {
	if _, err := ParseSuiteMix("NO-SUCH-SUITE"); err == nil {
		t.Fatal("unknown suite accepted")
	}
	if _, err := ParseSuiteMix("RC4-MD5:-1"); err == nil {
		t.Fatal("negative weight accepted")
	}
	mix, err := ParseSuiteMix("RC4-MD5")
	if err != nil || len(mix) != 1 || mix[0].Weight != 1 {
		t.Fatalf("default weight: %v %v", mix, err)
	}
}
