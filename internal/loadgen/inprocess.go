package loadgen

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/lifecycle"
	"sslperf/internal/ssl"
	"sslperf/internal/telemetry"
	"sslperf/internal/trace"
	"sslperf/internal/workload"
)

// ServerOptions configures an in-process target server.
type ServerOptions struct {
	KeyBits  int // RSA key size (default 1024)
	FileSize int // response payload bytes (default 1024)
	Seed     uint64

	// Telemetry and Tracer, when set, instrument the server exactly
	// like cmd/sslserver would — the self-test path uses them to
	// close the loop through /debug/health without a second process.
	Telemetry *telemetry.Registry
	Tracer    *trace.Tracer

	// Lifecycle, when set, registers every server connection in the
	// live table, so an in-process run can smoke /debug/conns and
	// /debug/slo end to end.
	Lifecycle *lifecycle.Table
}

// A Server is a minimal in-process sslserver: the same LEN-framed
// request/response protocol over a real TCP listener, so the load
// generator (and `make loadsmoke`) can run self-contained.
type Server struct {
	ln      net.Listener
	cfgBase ssl.Config
	payload []byte
	connSeq uint64
	mu      sync.Mutex
	wg      sync.WaitGroup
	closed  bool
}

// StartServer generates an identity, listens on 127.0.0.1:0, and
// serves until Close.
func StartServer(opt ServerOptions) (*Server, error) {
	if opt.KeyBits <= 0 {
		opt.KeyBits = 1024
	}
	if opt.FileSize <= 0 {
		opt.FileSize = 1024
	}
	if opt.Seed == 0 {
		opt.Seed = uint64(time.Now().UnixNano())
	}
	id, err := ssl.NewIdentity(ssl.NewPRNG(opt.Seed), opt.KeyBits, "loadgen-selftest", time.Now())
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln: ln,
		cfgBase: ssl.Config{
			Key:          id.Key,
			CertDER:      id.CertDER,
			SessionCache: handshake.NewSessionCache(4096),
			Telemetry:    opt.Telemetry,
			Tracer:       opt.Tracer,
			Lifecycle:    opt.Lifecycle,
		},
		payload: workload.Payload(opt.FileSize),
	}
	seed := opt.Seed
	go func() {
		for {
			tc, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				tc.Close()
				return
			}
			s.connSeq++
			id := s.connSeq
			s.wg.Add(1)
			s.mu.Unlock()
			go func() {
				defer s.wg.Done()
				s.serve(tc, seed+17*id)
			}()
		}
	}()
	return s, nil
}

// Addr returns the listener's host:port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) serve(tc net.Conn, prngSeed uint64) {
	cfg := s.cfgBase // per-connection copy
	cfg.Rand = ssl.NewPRNG(prngSeed)
	conn := ssl.ServerConn(tc, &cfg)
	if ct := cfg.Tracer.ConnBegin(prngSeed, "server"); ct != nil {
		conn.SetTrace(ct)
	}
	defer conn.Close()
	if err := conn.Handshake(); err != nil {
		return
	}
	buf := make([]byte, 4096)
	hdr := fmt.Sprintf("LEN %d\n", len(s.payload))
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
		if _, err := conn.Write(append([]byte(hdr), s.payload...)); err != nil {
			return
		}
	}
}
