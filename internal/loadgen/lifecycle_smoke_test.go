package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sslperf/internal/lifecycle"
	"sslperf/internal/slo"
	"sslperf/internal/ssl"
	"sslperf/internal/telemetry"
)

// TestLifecycleObservatorySmoke closes the loop the way an operator
// would during an sslload run: an in-process server with the full
// lifecycle stack attached, /debug/conns and /debug/slo served over
// real HTTP showing live data mid-run, and afterwards an exact
// reconciliation of the close-log ledger against the telemetry
// handshake counters.
func TestLifecycleObservatorySmoke(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracker := slo.New(slo.Config{TargetP99: 5 * time.Second})
	var closeBuf bytes.Buffer
	tab := lifecycle.NewTable(lifecycle.Options{
		SLO:      tracker,
		CloseLog: lifecycle.NewCloseLog(&closeBuf, 1),
	})
	srv, err := StartServer(ServerOptions{
		KeyBits:   512,
		FileSize:  512,
		Seed:      42,
		Telemetry: reg,
		Lifecycle: tab,
	})
	if err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	lifecycle.Register(mux, tab)
	slo.Register(mux, tracker)
	web := httptest.NewServer(mux)
	defer web.Close()

	// Hold one connection established so the live table has a row to
	// show while the load runs.
	tc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	held := ssl.ClientConn(tc, &ssl.Config{Rand: ssl.NewPRNG(7), InsecureSkipVerify: true})
	if err := held.Handshake(); err != nil {
		t.Fatal(err)
	}

	var connsSnap lifecycle.Snapshot
	getJSON(t, web.URL+"/debug/conns?state=established", &connsSnap)
	if connsSnap.Live < 1 || len(connsSnap.Conns) < 1 {
		t.Fatalf("live table empty with a connection held open: %+v", connsSnap)
	}
	row := connsSnap.Conns[0]
	if row.State != "established" || row.Suite == "" || row.Remote == "" {
		t.Fatalf("held connection row %+v", row)
	}

	res, err := Run(Config{
		Addr:        srv.Addr(),
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Requests:    2,
		Seed:        99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done == 0 {
		t.Fatal("load run completed no connections")
	}

	var sloSnap slo.Snapshot
	getJSON(t, web.URL+"/debug/slo", &sloSnap)
	w10 := sloSnap.Window("10s")
	if w10.Handshakes == 0 {
		t.Fatalf("SLO 10s window empty after a load run: %+v", sloSnap)
	}
	if w10.QueueDelays == 0 {
		t.Fatal("SLO saw no accept-to-first-step queue delays")
	}

	// The text renderings serve too.
	for _, path := range []string{"/debug/conns?format=text", "/debug/slo?format=text"} {
		resp, err := http.Get(web.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Drain everything, then reconcile exactly.
	held.Close()
	srv.Close()

	final := tab.Snapshot(lifecycle.SnapshotOptions{})
	if final.Live != 0 {
		t.Fatalf("%d connections still live after server close", final.Live)
	}
	if final.Opened != final.Closed {
		t.Fatalf("opened %d != closed %d", final.Opened, final.Closed)
	}

	tsnap := reg.Snapshot()
	hsDone := tsnap.Handshakes.Full + tsnap.Handshakes.Resumed
	ledger := final.CloseLog
	if ledger.Successes != hsDone {
		t.Fatalf("close-log successes %d != telemetry handshakes done %d",
			ledger.Successes, hsDone)
	}
	if ledger.Failures != tsnap.Handshakes.Failed {
		t.Fatalf("close-log failures %d != telemetry failures %d",
			ledger.Failures, tsnap.Handshakes.Failed)
	}
	if ledger.Successes+ledger.Failures != final.Closed {
		t.Fatalf("ledger %d+%d does not cover %d closes",
			ledger.Successes, ledger.Failures, final.Closed)
	}

	// Every close emitted exactly one JSON line (sampling 1-in-1), and
	// each line parses.
	var lines uint64
	sc := bufio.NewScanner(&closeBuf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("close-log line %d is not JSON: %v", lines+1, err)
		}
		if rec["msg"] != "conn_close" {
			t.Fatalf("close-log line %d msg %v", lines+1, rec["msg"])
		}
		lines++
	}
	if lines != ledger.Logged {
		t.Fatalf("%d close-log lines on the wire, ledger says %d", lines, ledger.Logged)
	}
	if lines != final.Closed {
		t.Fatalf("%d close-log lines for %d closes at sample=1", lines, final.Closed)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}
