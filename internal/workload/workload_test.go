package workload

import (
	"bytes"
	"testing"
)

func TestFileSweep(t *testing.T) {
	sweep := FileSweep()
	want := []int{1024, 2048, 4096, 8192, 16384, 32768}
	if len(sweep) != len(want) {
		t.Fatalf("sweep = %v", sweep)
	}
	for i := range want {
		if sweep[i] != want[i] {
			t.Fatalf("sweep[%d] = %d, want %d", i, sweep[i], want[i])
		}
	}
}

func TestWebPattern(t *testing.T) {
	p := Web(5, 1024)
	if len(p.Sessions) != 5 {
		t.Fatalf("sessions = %d", len(p.Sessions))
	}
	if p.TotalBytes() != 5*1024 {
		t.Fatalf("total bytes = %d", p.TotalBytes())
	}
	if p.NumHandshakes() != 5 {
		t.Fatalf("handshakes = %d", p.NumHandshakes())
	}
}

func TestBankingResumeRatio(t *testing.T) {
	p := Banking(100, 0.9)
	resumed := 0
	for _, s := range p.Sessions {
		if s.Resume {
			resumed++
		}
	}
	if resumed < 85 || resumed > 90 {
		t.Fatalf("resumed = %d of 100, want ~90", resumed)
	}
	if p.Sessions[0].Resume {
		t.Fatal("first session cannot resume")
	}
	// Zero ratio -> no resumption.
	p0 := Banking(10, 0)
	if p0.NumHandshakes() != 10 {
		t.Fatal("zero ratio should mean all full handshakes")
	}
}

func TestB2BPattern(t *testing.T) {
	p := B2B(2, 4, 1<<20)
	if len(p.Sessions) != 2 {
		t.Fatalf("sessions = %d", len(p.Sessions))
	}
	if len(p.Sessions[0].Transactions) != 4 {
		t.Fatalf("transactions = %d", len(p.Sessions[0].Transactions))
	}
	if p.TotalBytes() != 2*(1<<20) {
		t.Fatalf("total = %d", p.TotalBytes())
	}
}

func TestPayloadDeterministic(t *testing.T) {
	a := Payload(1000)
	b := Payload(1000)
	if !bytes.Equal(a, b) {
		t.Fatal("payload not deterministic")
	}
	if bytes.Equal(a[:500], make([]byte, 500)) {
		t.Fatal("payload is all zeros")
	}
	// Longer payload extends the shorter one.
	c := Payload(2000)
	if !bytes.Equal(c[:1000], a) {
		t.Fatal("payload not prefix-consistent")
	}
}
