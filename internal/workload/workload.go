// Package workload defines the deterministic request patterns the
// experiments replay: the paper's web-server file-size sweep, and the
// two session archetypes its conclusions contrast — banking-style
// workloads (many short sessions, handshake-dominated) and B2B-style
// workloads (long bulk sessions, cipher-dominated).
package workload

import "fmt"

// A Transaction is one HTTPS request/response exchange.
type Transaction struct {
	RequestLen  int // client request bytes (HTTP GET analogue)
	ResponseLen int // server response bytes (the "file size")
}

// A Session is a sequence of transactions over one SSL connection,
// optionally resumed from an earlier session.
type Session struct {
	Transactions []Transaction
	Resume       bool // resume rather than full handshake
}

// A Pattern is a named stream of sessions.
type Pattern struct {
	Name     string
	Sessions []Session
}

// TotalBytes sums the response payloads across the pattern.
func (p *Pattern) TotalBytes() int {
	total := 0
	for _, s := range p.Sessions {
		for _, tx := range s.Transactions {
			total += tx.ResponseLen
		}
	}
	return total
}

// NumHandshakes counts full (non-resumed) handshakes.
func (p *Pattern) NumHandshakes() int {
	n := 0
	for _, s := range p.Sessions {
		if !s.Resume {
			n++
		}
	}
	return n
}

// DefaultRequestLen models a typical HTTP GET with headers.
const DefaultRequestLen = 350

// FileSweep returns the paper's request-file-size sweep in bytes:
// 1 KB through 32 KB in powers of two (Figures 2 and 3).
func FileSweep() []int {
	return []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}
}

// Web returns n single-transaction sessions of the given file size —
// the paper's web-server measurement workload.
func Web(n, fileSize int) Pattern {
	p := Pattern{Name: fmt.Sprintf("web-%dB", fileSize)}
	for i := 0; i < n; i++ {
		p.Sessions = append(p.Sessions, Session{
			Transactions: []Transaction{{RequestLen: DefaultRequestLen, ResponseLen: fileSize}},
		})
	}
	return p
}

// Banking returns n short sessions of small transfers, resuming a
// fraction of them — the "banking transactions" of the paper's
// conclusion where session negotiation dominates. resumeRatio in
// [0,1] selects the share of resumed sessions (deterministically
// interleaved).
func Banking(n int, resumeRatio float64) Pattern {
	p := Pattern{Name: "banking"}
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += resumeRatio
		resume := false
		if acc >= 1 {
			acc -= 1
			resume = i > 0 // the first session cannot resume
		}
		p.Sessions = append(p.Sessions, Session{
			Resume: resume,
			Transactions: []Transaction{
				{RequestLen: 200, ResponseLen: 512},
				{RequestLen: 300, ResponseLen: 1024},
			},
		})
	}
	return p
}

// B2B returns a few long sessions, each transferring transferSize
// bytes in txPerSession transactions — the paper's "long sessions of
// data exchange" where bulk encryption dominates.
func B2B(sessions, txPerSession, transferSize int) Pattern {
	p := Pattern{Name: "b2b"}
	per := transferSize / txPerSession
	for i := 0; i < sessions; i++ {
		s := Session{}
		for j := 0; j < txPerSession; j++ {
			s.Transactions = append(s.Transactions, Transaction{
				RequestLen:  DefaultRequestLen,
				ResponseLen: per,
			})
		}
		p.Sessions = append(p.Sessions, s)
	}
	return p
}

// Payload fills a deterministic pseudo-payload of n bytes so
// experiment inputs are reproducible without an RNG dependency.
func Payload(n int) []byte {
	buf := make([]byte, n)
	state := uint32(0x9e3779b9)
	for i := range buf {
		state = state*1664525 + 1013904223
		buf[i] = byte(state >> 24)
	}
	return buf
}
