// Package sslcrypto implements the SSL 3.0 key-derivation and
// integrity constructions: the MD5/SHA-1 ladder that turns the
// pre-master secret into the master secret and key block (the "series
// of hash functions" of the paper's handshake steps 5 and 6), the
// pre-HMAC pad1/pad2 record MAC, and the finished-message hashes with
// their 'CLNT'/'SRVR' sender labels (steps 6 and 8).
package sslcrypto

import (
	"sslperf/internal/md5x"
	"sslperf/internal/sha1x"
)

// MasterSecretLen is the SSLv3 master secret length (48 bytes).
const MasterSecretLen = 48

// PreMasterLen is the SSLv3 pre-master secret length: 2 version bytes
// plus 46 random bytes.
const PreMasterLen = 48

// deriveBytes runs the SSLv3 derivation ladder:
//
//	block[i] = MD5(secret ‖ SHA1(label_i ‖ secret ‖ seed))
//
// where label_i is 'A', 'BB', 'CCC', ... and each block contributes
// 16 bytes until n bytes are produced.
func deriveBytes(secret, seed []byte, n int) []byte {
	out := make([]byte, 0, (n+15)/16*16)
	sha := sha1x.New()
	md := md5x.New()
	for i := 0; len(out) < n; i++ {
		label := make([]byte, i+1)
		for j := range label {
			label[j] = byte('A' + i)
		}
		sha.Reset()
		sha.Write(label)
		sha.Write(secret)
		sha.Write(seed)
		inner := sha.Sum(nil)
		md.Reset()
		md.Write(secret)
		md.Write(inner)
		out = md.Sum(out)
	}
	return out[:n]
}

// MasterSecret derives the 48-byte master secret from the pre-master
// secret and the hello randoms (client random first, per SSLv3 §6.1).
func MasterSecret(preMaster, clientRandom, serverRandom []byte) []byte {
	seed := make([]byte, 0, len(clientRandom)+len(serverRandom))
	seed = append(seed, clientRandom...)
	seed = append(seed, serverRandom...)
	return deriveBytes(preMaster, seed, MasterSecretLen)
}

// KeyBlock derives n bytes of key material from the master secret
// (server random first, per SSLv3 §6.2.2). The block is sliced into
// client/server MAC secrets, keys, and IVs by the record layer.
func KeyBlock(master, clientRandom, serverRandom []byte, n int) []byte {
	seed := make([]byte, 0, len(clientRandom)+len(serverRandom))
	seed = append(seed, serverRandom...)
	seed = append(seed, clientRandom...)
	return deriveBytes(master, seed, n)
}
