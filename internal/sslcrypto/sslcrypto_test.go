package sslcrypto

import (
	"bytes"
	stdmd5 "crypto/md5"
	stdsha1 "crypto/sha1"
	"math/rand"
	"testing"
)

// stdDerive reimplements the SSLv3 ladder with the standard library's
// hashes as an independent oracle for the derivation plumbing.
func stdDerive(secret, seed []byte, n int) []byte {
	var out []byte
	for i := 0; len(out) < n; i++ {
		label := bytes.Repeat([]byte{byte('A' + i)}, i+1)
		sha := stdsha1.New()
		sha.Write(label)
		sha.Write(secret)
		sha.Write(seed)
		md := stdmd5.New()
		md.Write(secret)
		md.Write(sha.Sum(nil))
		out = md.Sum(out)
	}
	return out[:n]
}

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestMasterSecretAgainstOracle(t *testing.T) {
	pre := randBytes(1, 48)
	cr := randBytes(2, 32)
	sr := randBytes(3, 32)
	got := MasterSecret(pre, cr, sr)
	want := stdDerive(pre, append(append([]byte{}, cr...), sr...), 48)
	if !bytes.Equal(got, want) {
		t.Fatalf("master secret mismatch:\n got %x\nwant %x", got, want)
	}
	if len(got) != MasterSecretLen {
		t.Fatalf("len = %d", len(got))
	}
}

func TestKeyBlockAgainstOracle(t *testing.T) {
	master := randBytes(4, 48)
	cr := randBytes(5, 32)
	sr := randBytes(6, 32)
	for _, n := range []int{1, 16, 48, 72, 104, 137} {
		got := KeyBlock(master, cr, sr, n)
		// Key block seeds server random FIRST.
		want := stdDerive(master, append(append([]byte{}, sr...), cr...), n)
		if !bytes.Equal(got, want) {
			t.Fatalf("key block n=%d mismatch", n)
		}
		if len(got) != n {
			t.Fatalf("key block length %d != %d", len(got), n)
		}
	}
}

func TestKeyBlockDeterministicAndSeedOrderMatters(t *testing.T) {
	master := randBytes(7, 48)
	cr := randBytes(8, 32)
	sr := randBytes(9, 32)
	a := KeyBlock(master, cr, sr, 64)
	b := KeyBlock(master, cr, sr, 64)
	if !bytes.Equal(a, b) {
		t.Fatal("key block not deterministic")
	}
	c := KeyBlock(master, sr, cr, 64)
	if bytes.Equal(a, c) {
		t.Fatal("swapping randoms should change the key block")
	}
	// Prefix property: a longer request extends a shorter one.
	long := KeyBlock(master, cr, sr, 80)
	if !bytes.Equal(long[:64], a) {
		t.Fatal("key block is not prefix-consistent")
	}
}

func TestMACSizesAndNames(t *testing.T) {
	if MACMD5.Size() != 16 || MACSHA1.Size() != 20 || MACNull.Size() != 0 {
		t.Fatal("MAC sizes wrong")
	}
	if MACMD5.String() != "MD5" || MACSHA1.String() != "SHA-1" || MACNull.String() != "NULL" {
		t.Fatal("names wrong")
	}
}

// stdMAC reimplements the SSLv3 SHA-1 MAC with stdlib hashes.
func stdMACSHA1(secret []byte, seq uint64, ct byte, payload []byte) []byte {
	hdr := make([]byte, 11)
	for i := 0; i < 8; i++ {
		hdr[i] = byte(seq >> (56 - 8*i))
	}
	hdr[8] = ct
	hdr[9] = byte(len(payload) >> 8)
	hdr[10] = byte(len(payload))
	inner := stdsha1.New()
	inner.Write(secret)
	inner.Write(bytes.Repeat([]byte{0x36}, 40))
	inner.Write(hdr)
	inner.Write(payload)
	outer := stdsha1.New()
	outer.Write(secret)
	outer.Write(bytes.Repeat([]byte{0x5c}, 40))
	outer.Write(inner.Sum(nil))
	return outer.Sum(nil)
}

func TestMACAgainstOracle(t *testing.T) {
	secret := randBytes(10, 20)
	m, err := NewMAC(MACSHA1, secret)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello record layer")
	got := m.Compute(7, 23, payload)
	want := stdMACSHA1(secret, 7, 23, payload)
	if !bytes.Equal(got, want) {
		t.Fatalf("MAC mismatch:\n got %x\nwant %x", got, want)
	}
}

func TestMACVerify(t *testing.T) {
	secret := randBytes(11, 16)
	m, _ := NewMAC(MACMD5, secret)
	payload := []byte("data")
	mac := m.Compute(1, 23, payload)
	if !m.Verify(1, 23, payload, mac) {
		t.Fatal("verify rejected valid MAC")
	}
	if m.Verify(2, 23, payload, mac) {
		t.Fatal("verify accepted wrong sequence number")
	}
	if m.Verify(1, 22, payload, mac) {
		t.Fatal("verify accepted wrong content type")
	}
	bad := append([]byte{}, mac...)
	bad[0] ^= 1
	if m.Verify(1, 23, payload, bad) {
		t.Fatal("verify accepted corrupted MAC")
	}
	if m.Verify(1, 23, payload, mac[:10]) {
		t.Fatal("verify accepted truncated MAC")
	}
}

func TestMACSequenceBinding(t *testing.T) {
	secret := randBytes(12, 20)
	m, _ := NewMAC(MACSHA1, secret)
	a := m.Compute(0, 23, []byte("x"))
	b := m.Compute(1, 23, []byte("x"))
	if bytes.Equal(a, b) {
		t.Fatal("MAC ignores sequence number (replay would be possible)")
	}
}

func TestMACRejectsBadSecret(t *testing.T) {
	if _, err := NewMAC(MACSHA1, make([]byte, 16)); err == nil {
		t.Fatal("accepted wrong-size secret")
	}
}

func TestNullMAC(t *testing.T) {
	m, err := NewMAC(MACNull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 0 || m.Compute(0, 23, []byte("x")) != nil {
		t.Fatal("null MAC should produce nothing")
	}
	if !m.Verify(0, 23, []byte("x"), nil) {
		t.Fatal("null MAC should verify empty")
	}
}

func TestFinishedHashSenderSeparation(t *testing.T) {
	master := randBytes(13, 48)
	f := NewFinishedHash()
	f.Write([]byte("client hello bytes"))
	f.Write([]byte("server hello bytes"))
	c := f.Sum(SenderClient, master)
	s := f.Sum(SenderServer, master)
	if len(c) != 36 || len(s) != 36 {
		t.Fatalf("finished hash lengths %d/%d, want 36", len(c), len(s))
	}
	if bytes.Equal(c, s) {
		t.Fatal("CLNT and SRVR hashes must differ")
	}
	// Sum must not disturb the running state.
	c2 := f.Sum(SenderClient, master)
	if !bytes.Equal(c, c2) {
		t.Fatal("Sum changed the transcript state")
	}
}

func TestFinishedHashTranscriptBinding(t *testing.T) {
	master := randBytes(14, 48)
	f1 := NewFinishedHash()
	f1.Write([]byte("message A"))
	f2 := NewFinishedHash()
	f2.Write([]byte("message B"))
	if bytes.Equal(f1.Sum(SenderClient, master), f2.Sum(SenderClient, master)) {
		t.Fatal("different transcripts produced equal finished hashes")
	}
	// More transcript -> different hash.
	before := f1.Sum(SenderClient, master)
	f1.Write([]byte("more"))
	if bytes.Equal(before, f1.Sum(SenderClient, master)) {
		t.Fatal("appending to transcript did not change the hash")
	}
}

func TestSenderLabels(t *testing.T) {
	if string(SenderClient) != "CLNT" || string(SenderServer) != "SRVR" {
		t.Fatalf("labels = %q %q", SenderClient, SenderServer)
	}
}
