package sslcrypto

import (
	"encoding/binary"
	"errors"

	"sslperf/internal/hmacx"
	"sslperf/internal/md5x"
	"sslperf/internal/sha1x"
)

// MACAlgorithm selects the hash under the SSLv3 MAC construction.
type MACAlgorithm int

// Supported MAC hashes.
const (
	MACMD5 MACAlgorithm = iota
	MACSHA1
	MACNull // no MAC (NULL integrity, for baseline experiments)
)

// Size returns the MAC output length in bytes.
func (a MACAlgorithm) Size() int {
	switch a {
	case MACMD5:
		return md5x.Size
	case MACSHA1:
		return sha1x.Size
	default:
		return 0
	}
}

// padLen returns the SSLv3 pad length: 48 for MD5, 40 for SHA-1
// (chosen so secret+pad fills block boundaries).
func (a MACAlgorithm) padLen() int {
	switch a {
	case MACMD5:
		return 48
	case MACSHA1:
		return 40
	default:
		return 0
	}
}

// String names the algorithm.
func (a MACAlgorithm) String() string {
	switch a {
	case MACMD5:
		return "MD5"
	case MACSHA1:
		return "SHA-1"
	default:
		return "NULL"
	}
}

// sslDigest is the common subset of md5x.Digest and sha1x.Digest.
type sslDigest interface {
	Write(p []byte) (int, error)
	Sum(in []byte) []byte
	Reset()
	Size() int
}

func (a MACAlgorithm) newDigest() sslDigest {
	switch a {
	case MACMD5:
		return md5x.New()
	case MACSHA1:
		return sha1x.New()
	default:
		return nil
	}
}

// errTLSMACSecret reports a keying mistake for TLS MACs.
var errTLSMACSecret = errors.New("sslcrypto: MAC secret must equal hash size")

// A MAC computes a record MAC. In SSL 3.0 form (NewMAC) it is the
// pre-HMAC construction
//
//	hash(secret ‖ pad2 ‖ hash(secret ‖ pad1 ‖ seq ‖ type ‖ length ‖ data))
//
// with pad1 = 0x36…, pad2 = 0x5c… — what the paper's DES-CBC3-SHA
// suite uses for every record. In TLS 1.0 form (NewTLSMAC) it is
// HMAC over a header that additionally includes the protocol version.
type MAC struct {
	alg    MACAlgorithm
	secret []byte
	pad1   []byte
	pad2   []byte
	h      sslDigest

	tls     bool
	version uint16
	hm      *hmacx.HMAC

	// Scratch reused across records: header and inner-hash buffers
	// passed to the digest through an interface would otherwise escape
	// to the heap on every Compute. A MAC serves one direction of one
	// connection, so reuse is race-free.
	hdrBuf   [13]byte
	innerBuf [maxMACSize]byte
	macBuf   [maxMACSize]byte
}

// NewMAC returns a MAC keyed with secret.
func NewMAC(alg MACAlgorithm, secret []byte) (*MAC, error) {
	if alg == MACNull {
		return &MAC{alg: alg}, nil
	}
	if len(secret) != alg.Size() {
		return nil, errors.New("sslcrypto: MAC secret must equal hash size")
	}
	m := &MAC{alg: alg, secret: append([]byte(nil), secret...), h: alg.newDigest()}
	m.pad1 = repeatByte(0x36, alg.padLen())
	m.pad2 = repeatByte(0x5c, alg.padLen())
	return m, nil
}

func repeatByte(b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b
	}
	return p
}

// Size returns the MAC length.
func (m *MAC) Size() int { return m.alg.Size() }

// Clone returns an independent MAC with the same key and construction
// (SSLv3 pre-HMAC or TLS HMAC form). MACs keep per-record scratch, so
// one instance serves one goroutine; the record layer's sealing
// pipeline clones its write MAC once per worker to compute fragment
// MACs in parallel — the outputs are identical because the
// construction is stateless across records given the sequence number.
func (m *MAC) Clone() *MAC {
	c := &MAC{alg: m.alg, tls: m.tls, version: m.version}
	if m.alg == MACNull {
		return c
	}
	c.secret = append([]byte(nil), m.secret...)
	if m.tls {
		if m.alg == MACMD5 {
			c.hm = hmacx.NewMD5(c.secret)
		} else {
			c.hm = hmacx.NewSHA1(c.secret)
		}
		return c
	}
	c.h = m.alg.newDigest()
	c.pad1 = repeatByte(0x36, m.alg.padLen())
	c.pad2 = repeatByte(0x5c, m.alg.padLen())
	return c
}

// Compute returns the MAC for a record with the given 64-bit sequence
// number, content type and payload.
func (m *MAC) Compute(seq uint64, contentType byte, payload []byte) []byte {
	return m.AppendCompute(nil, seq, contentType, payload)
}

// AppendCompute appends the record MAC to dst and returns the extended
// slice. The inner hash result stays in a stack buffer, so when dst
// has capacity the whole computation is allocation-free — the record
// layer's seal path depends on this.
func (m *MAC) AppendCompute(dst []byte, seq uint64, contentType byte, payload []byte) []byte {
	if m.alg == MACNull {
		return dst
	}
	if m.tls {
		hdr := m.hdrBuf[:13]
		binary.BigEndian.PutUint64(hdr[0:], seq)
		hdr[8] = contentType
		binary.BigEndian.PutUint16(hdr[9:], m.version)
		binary.BigEndian.PutUint16(hdr[11:], uint16(len(payload)))
		m.hm.Reset()
		m.hm.Write(hdr)
		m.hm.Write(payload)
		return m.hm.Sum(dst)
	}
	hdr := m.hdrBuf[:11]
	binary.BigEndian.PutUint64(hdr[0:], seq)
	hdr[8] = contentType
	binary.BigEndian.PutUint16(hdr[9:], uint16(len(payload)))

	h := m.h
	h.Reset()
	h.Write(m.secret)
	h.Write(m.pad1)
	h.Write(hdr)
	h.Write(payload)
	inner := h.Sum(m.innerBuf[:0])

	h.Reset()
	h.Write(m.secret)
	h.Write(m.pad2)
	h.Write(inner)
	return h.Sum(dst)
}

// maxMACSize bounds the digest output across supported hashes.
const maxMACSize = sha1x.Size

// Verify recomputes the MAC and compares in constant time.
func (m *MAC) Verify(seq uint64, contentType byte, payload, mac []byte) bool {
	want := m.AppendCompute(m.macBuf[:0], seq, contentType, payload)
	if len(want) != len(mac) {
		return false
	}
	var diff byte
	for i := range want {
		diff |= want[i] ^ mac[i]
	}
	return diff == 0
}
