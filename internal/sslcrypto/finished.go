package sslcrypto

import (
	"sslperf/internal/md5x"
	"sslperf/internal/sha1x"
)

// Sender labels for the SSLv3 finished hash ('CLNT' and 'SRVR' — the
// paddings the paper's handshake steps 6 and 8 compute hashes with).
var (
	SenderClient = []byte{0x43, 0x4c, 0x4e, 0x54} // "CLNT"
	SenderServer = []byte{0x53, 0x52, 0x56, 0x52} // "SRVR"
)

// A FinishedHash accumulates every handshake message in running MD5
// and SHA-1 digests. OpenSSL updates these as each message is sent or
// received — the paper's "finish_mac" calls sprinkled through Table 2
// — and finalizes them when the finished messages are built.
type FinishedHash struct {
	md5 *md5x.Digest
	sha *sha1x.Digest
}

// NewFinishedHash returns an empty handshake transcript hash (the
// init_finished_mac of Table 2 step 0).
func NewFinishedHash() *FinishedHash {
	return &FinishedHash{md5: md5x.New(), sha: sha1x.New()}
}

// Write absorbs one handshake message (header + body). Never fails.
func (f *FinishedHash) Write(p []byte) (int, error) {
	f.md5.Write(p)
	f.sha.Write(p)
	return len(p), nil
}

// Sum computes the two finished hash values for the given sender
// label over everything written so far, without disturbing the
// running state (so the peer's finished value can still be computed):
//
//	MD5(master ‖ pad2 ‖ MD5(transcript ‖ sender ‖ master ‖ pad1)) ‖
//	SHA1(master ‖ pad2 ‖ SHA1(transcript ‖ sender ‖ master ‖ pad1))
//
// The result is 36 bytes (16 MD5 + 20 SHA-1).
func (f *FinishedHash) Sum(sender, master []byte) []byte {
	out := make([]byte, 0, md5x.Size+sha1x.Size)

	mdInner := *f.md5 // copy running state
	mdInner.Write(sender)
	mdInner.Write(master)
	mdInner.Write(repeatByte(0x36, 48))
	inner := mdInner.Sum(nil)
	mdOuter := md5x.New()
	mdOuter.Write(master)
	mdOuter.Write(repeatByte(0x5c, 48))
	mdOuter.Write(inner)
	out = mdOuter.Sum(out)

	shaInner := *f.sha
	shaInner.Write(sender)
	shaInner.Write(master)
	shaInner.Write(repeatByte(0x36, 40))
	innerS := shaInner.Sum(nil)
	shaOuter := sha1x.New()
	shaOuter.Write(master)
	shaOuter.Write(repeatByte(0x5c, 40))
	shaOuter.Write(innerS)
	return shaOuter.Sum(out)
}
