package sslcrypto

import (
	"sslperf/internal/hmacx"
	"sslperf/internal/md5x"
	"sslperf/internal/sha1x"
)

// TLS 1.0 key derivation (RFC 2246 §5): the PRF splits the secret
// between HMAC-MD5 and HMAC-SHA1 expansion streams and XORs them.
// This library's SSLv3 focus follows the paper; TLS 1.0 support is
// the natural extension the paper's background mentions.

// pHash implements P_hash(secret, seed) producing n bytes with the
// given HMAC constructor.
func pHash(newMAC func(key []byte) *hmacx.HMAC, secret, seed []byte, n int) []byte {
	h := newMAC(secret)
	// A(1) = HMAC(secret, seed)
	h.Write(seed)
	a := h.Sum(nil)
	out := make([]byte, 0, n+h.Size())
	for len(out) < n {
		h.Reset()
		h.Write(a)
		h.Write(seed)
		out = h.Sum(out)
		h.Reset()
		h.Write(a)
		a = h.Sum(nil)
	}
	return out[:n]
}

// PRF10 is the TLS 1.0 pseudorandom function:
// P_MD5(S1, label‖seed) XOR P_SHA1(S2, label‖seed).
func PRF10(secret []byte, label string, seed []byte, n int) []byte {
	ls := make([]byte, 0, len(label)+len(seed))
	ls = append(ls, label...)
	ls = append(ls, seed...)
	half := (len(secret) + 1) / 2
	s1 := secret[:half]
	s2 := secret[len(secret)-half:]
	out := pHash(hmacx.NewMD5, s1, ls, n)
	sha := pHash(hmacx.NewSHA1, s2, ls, n)
	for i := range out {
		out[i] ^= sha[i]
	}
	return out
}

// TLSMasterSecret derives the 48-byte TLS 1.0 master secret.
func TLSMasterSecret(preMaster, clientRandom, serverRandom []byte) []byte {
	seed := make([]byte, 0, len(clientRandom)+len(serverRandom))
	seed = append(seed, clientRandom...)
	seed = append(seed, serverRandom...)
	return PRF10(preMaster, "master secret", seed, MasterSecretLen)
}

// TLSKeyBlock derives n bytes of TLS 1.0 key material
// (server random first, like SSLv3's key block).
func TLSKeyBlock(master, clientRandom, serverRandom []byte, n int) []byte {
	seed := make([]byte, 0, len(clientRandom)+len(serverRandom))
	seed = append(seed, serverRandom...)
	seed = append(seed, clientRandom...)
	return PRF10(master, "key expansion", seed, n)
}

// TLSFinishedLen is the TLS 1.0 finished verify-data length.
const TLSFinishedLen = 12

// TLSVerifyData computes the TLS 1.0 finished value over the
// transcript digests: PRF(master, label, MD5(hs) ‖ SHA1(hs))[0:12].
func (f *FinishedHash) TLSVerifyData(isClient bool, master []byte) []byte {
	label := "server finished"
	if isClient {
		label = "client finished"
	}
	md := *f.md5
	sha := *f.sha
	seed := make([]byte, 0, md5x.Size+sha1x.Size)
	seed = md.Sum(seed)
	seed = sha.Sum(seed)
	return PRF10(master, label, seed, TLSFinishedLen)
}

// NewTLSMAC returns the TLS 1.0 record MAC: HMAC over
// seq ‖ type ‖ version ‖ length ‖ data. version is the negotiated
// protocol version included in the MACed header.
func NewTLSMAC(alg MACAlgorithm, secret []byte, version uint16) (*MAC, error) {
	if alg == MACNull {
		return &MAC{alg: alg}, nil
	}
	if len(secret) != alg.Size() {
		return nil, errTLSMACSecret
	}
	m := &MAC{
		alg:     alg,
		secret:  append([]byte(nil), secret...),
		tls:     true,
		version: version,
	}
	if alg == MACMD5 {
		m.hm = hmacx.NewMD5(m.secret)
	} else {
		m.hm = hmacx.NewSHA1(m.secret)
	}
	return m, nil
}
