package sslcrypto

import (
	"bytes"
	"crypto/hmac"
	stdmd5 "crypto/md5"
	stdsha1 "crypto/sha1"
	"hash"
	"testing"
)

// stdPHash reimplements P_hash with the standard library as an
// independent oracle.
func stdPHash(newHash func() hash.Hash, secret, seed []byte, n int) []byte {
	h := hmac.New(newHash, secret)
	h.Write(seed)
	a := h.Sum(nil)
	var out []byte
	for len(out) < n {
		h.Reset()
		h.Write(a)
		h.Write(seed)
		out = h.Sum(out)
		h.Reset()
		h.Write(a)
		a = h.Sum(nil)
	}
	return out[:n]
}

func stdPRF10(secret []byte, label string, seed []byte, n int) []byte {
	ls := append([]byte(label), seed...)
	half := (len(secret) + 1) / 2
	out := stdPHash(stdmd5.New, secret[:half], ls, n)
	sha := stdPHash(stdsha1.New, secret[len(secret)-half:], ls, n)
	for i := range out {
		out[i] ^= sha[i]
	}
	return out
}

func TestPRF10AgainstOracle(t *testing.T) {
	for _, tc := range []struct {
		secretLen, seedLen, outLen int
		label                      string
	}{
		{48, 64, 48, "master secret"},
		{48, 64, 104, "key expansion"},
		{47, 10, 12, "client finished"}, // odd secret exercises the overlap
		{1, 1, 100, "x"},
	} {
		secret := randBytes(int64(tc.secretLen), tc.secretLen)
		seed := randBytes(int64(tc.seedLen+1), tc.seedLen)
		got := PRF10(secret, tc.label, seed, tc.outLen)
		want := stdPRF10(secret, tc.label, seed, tc.outLen)
		if !bytes.Equal(got, want) {
			t.Fatalf("PRF10(%d,%q,%d,%d) mismatch", tc.secretLen, tc.label, tc.seedLen, tc.outLen)
		}
	}
}

func TestTLSMasterAndKeyBlock(t *testing.T) {
	pre := randBytes(31, 48)
	cr := randBytes(32, 32)
	sr := randBytes(33, 32)
	master := TLSMasterSecret(pre, cr, sr)
	if len(master) != 48 {
		t.Fatalf("master len %d", len(master))
	}
	want := stdPRF10(pre, "master secret", append(append([]byte{}, cr...), sr...), 48)
	if !bytes.Equal(master, want) {
		t.Fatal("TLS master secret mismatch")
	}
	kb := TLSKeyBlock(master, cr, sr, 104)
	wantKB := stdPRF10(master, "key expansion", append(append([]byte{}, sr...), cr...), 104)
	if !bytes.Equal(kb, wantKB) {
		t.Fatal("TLS key block mismatch")
	}
}

func TestTLSVerifyData(t *testing.T) {
	master := randBytes(34, 48)
	f := NewFinishedHash()
	f.Write([]byte("transcript bytes"))
	c := f.TLSVerifyData(true, master)
	s := f.TLSVerifyData(false, master)
	if len(c) != 12 || len(s) != 12 {
		t.Fatalf("lengths %d/%d", len(c), len(s))
	}
	if bytes.Equal(c, s) {
		t.Fatal("client and server verify data equal")
	}
	// Stable across calls (Sum must not disturb state).
	if !bytes.Equal(c, f.TLSVerifyData(true, master)) {
		t.Fatal("verify data unstable")
	}
	// Oracle: PRF over stdlib digests of the same transcript.
	md := stdmd5.New()
	md.Write([]byte("transcript bytes"))
	sh := stdsha1.New()
	sh.Write([]byte("transcript bytes"))
	want := stdPRF10(master, "client finished", append(md.Sum(nil), sh.Sum(nil)...), 12)
	if !bytes.Equal(c, want) {
		t.Fatal("TLS verify data disagrees with oracle")
	}
}

func TestTLSMACAgainstStdlib(t *testing.T) {
	secret := randBytes(35, 20)
	m, err := NewTLSMAC(MACSHA1, secret, 0x0301)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("tls record payload")
	got := m.Compute(9, 23, payload)
	// Oracle.
	h := hmac.New(stdsha1.New, secret)
	hdr := []byte{0, 0, 0, 0, 0, 0, 0, 9, 23, 0x03, 0x01, 0, byte(len(payload))}
	h.Write(hdr)
	h.Write(payload)
	if !bytes.Equal(got, h.Sum(nil)) {
		t.Fatal("TLS MAC mismatch")
	}
	// Version is bound into the MAC.
	m2, _ := NewTLSMAC(MACSHA1, secret, 0x0300)
	if bytes.Equal(got, m2.Compute(9, 23, payload)) {
		t.Fatal("MAC ignores version")
	}
	// Differs from the SSLv3 construction with the same key.
	m3, _ := NewMAC(MACSHA1, secret)
	if bytes.Equal(got, m3.Compute(9, 23, payload)) {
		t.Fatal("TLS MAC equals SSLv3 MAC")
	}
}

func TestTLSMACRejectsBadSecret(t *testing.T) {
	if _, err := NewTLSMAC(MACSHA1, make([]byte, 19), 0x0301); err == nil {
		t.Fatal("accepted wrong-size secret")
	}
	m, err := NewTLSMAC(MACNull, nil, 0x0301)
	if err != nil || m.Compute(0, 23, nil) != nil {
		t.Fatal("null TLS MAC broken")
	}
}
