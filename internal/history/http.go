package history

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"sslperf/internal/debughttp"
)

// Register mounts the observatory's HTTP surface on mux:
//
//	/debug/history       — ring snapshot (?series=a,b&res=fine|coarse&last=N)
//	/debug/history/reset — POST-only ring reset
//	/debug/watch         — streaming newline-delimited JSON deltas
//	                       (?series=a,b&interval=dur), one line per fine
//	                       tick until the client disconnects
func Register(mux *http.ServeMux, h *History) {
	mux.HandleFunc("/debug/history", func(w http.ResponseWriter, req *http.Request) {
		opts, err := parseSnapshotOptions(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		snap := h.Snapshot(opts)
		debughttp.Serve(w, req,
			func() string { return snap.Text() },
			func() ([]byte, error) { return json.MarshalIndent(snap, "", "  ") },
		)
	})
	mux.HandleFunc("/debug/history/reset", func(w http.ResponseWriter, req *http.Request) {
		if !debughttp.PostOnly(w, req) {
			return
		}
		h.Reset()
		debughttp.WriteText(w, "history reset\n")
	})
	mux.HandleFunc("/debug/watch", func(w http.ResponseWriter, req *http.Request) {
		serveWatch(w, req, h)
	})
}

// parseSnapshotOptions maps the query onto SnapshotOptions: ?series=
// comma-separated names (absent = all), ?res= fine|coarse (or the
// literal step labels "1s"/"10s"), ?last=N.
func parseSnapshotOptions(req *http.Request) (SnapshotOptions, error) {
	var opts SnapshotOptions
	q := req.URL.Query()
	if s := q.Get("series"); s != "" {
		opts.Series = strings.Split(s, ",")
	}
	switch res := q.Get("res"); res {
	case "", "fine", "1s":
		// fine (default)
	case "coarse", "10s":
		opts.Coarse = true
	default:
		return opts, fmt.Errorf("unknown res %q (want fine or coarse)", res)
	}
	if ls := q.Get("last"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			return opts, fmt.Errorf("bad last %q", ls)
		}
		opts.Last = n
	}
	return opts, nil
}

// serveWatch streams one JSON line per fine tick: it polls DeltasSince
// at the requested interval (default: the fine resolution) and flushes
// each delta as it lands, ending when the client goes away. The stream
// is plain ndjson so `curl -N` and ssltop read it alike.
func serveWatch(w http.ResponseWriter, req *http.Request, h *History) {
	if h == nil {
		http.Error(w, "history disabled", http.StatusNotFound)
		return
	}
	var names []string
	if s := req.URL.Query().Get("series"); s != "" {
		names = strings.Split(s, ",")
	}
	interval := h.Interval()
	if is := req.URL.Query().Get("interval"); is != "" {
		d, err := time.ParseDuration(is)
		if err != nil || d <= 0 {
			http.Error(w, fmt.Sprintf("bad interval %q", is), http.StatusBadRequest)
			return
		}
		interval = d
	}
	// Poll a bit faster than the sampler so line latency stays under
	// one tick even when the phases drift.
	poll := interval / 2
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}

	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}

	enc := json.NewEncoder(w)
	cursor := h.Seq()
	// Deliver the current tick immediately (if any) so a client
	// attaching mid-run sees data before the next tick lands.
	if cursor > 0 {
		cursor--
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		deltas, next := h.DeltasSince(cursor, names)
		cursor = next
		for i := range deltas {
			if err := enc.Encode(&deltas[i]); err != nil {
				return
			}
		}
		if len(deltas) > 0 && flusher != nil {
			flusher.Flush()
		}
		select {
		case <-req.Context().Done():
			return
		case <-t.C:
		}
	}
}

// sparkRunes are the eight-level bars the text rendering and ssltop
// share.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a fixed-width unicode sparkline scaled to
// the slice's own min/max (a flat series renders as all-low bars).
func Sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	// Downsample to width points by bucket means, oldest first.
	pts := vals
	if len(vals) > width {
		pts = make([]float64, width)
		for i := 0; i < width; i++ {
			lo := i * len(vals) / width
			hi := (i + 1) * len(vals) / width
			if hi <= lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range vals[lo:hi] {
				sum += v
			}
			pts[i] = sum / float64(hi-lo)
		}
	}
	mn, mx := pts[0], pts[0]
	for _, v := range pts {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	out := make([]rune, len(pts))
	for i, v := range pts {
		level := 0
		if mx > mn {
			level = int((v - mn) / (mx - mn) * float64(len(sparkRunes)-1))
			if level < 0 {
				level = 0
			}
			if level >= len(sparkRunes) {
				level = len(sparkRunes) - 1
			}
		}
		out[i] = sparkRunes[level]
	}
	return string(out)
}

// Text renders the snapshot as an aligned table with a sparkline per
// series — the curl-friendly view.
func (s Snapshot) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "history @ %s  res=%s  seq=%d\n\n",
		s.At.Format(time.RFC3339), s.Res, s.Seq)
	if len(s.Series) == 0 {
		b.WriteString("(no series)\n")
		return b.String()
	}
	nameW := len("series")
	for i := range s.Series {
		if n := len(s.Series[i].Name); n > nameW {
			nameW = n
		}
	}
	fmt.Fprintf(&b, "%-*s  %10s  %10s  %10s  %10s  %-9s  %s\n",
		nameW, "series", "last", "min", "max", "mean", "unit", "trend")
	byName := make(map[string]SeriesData, len(s.Series))
	names := make([]string, 0, len(s.Series))
	for i := range s.Series {
		byName[s.Series[i].Name] = s.Series[i]
		names = append(names, s.Series[i].Name)
	}
	sort.Strings(names)
	for _, name := range names {
		sd := byName[name]
		fmt.Fprintf(&b, "%-*s  %10s  %10s  %10s  %10s  %-9s  %s\n",
			nameW, sd.Name,
			fmtVal(sd.Last), fmtVal(sd.Min), fmtVal(sd.Max), fmtVal(sd.Mean),
			sd.Unit, Sparkline(sd.Points, 40))
	}
	return b.String()
}

// fmtVal renders a point compactly: integers as integers, large values
// with SI-ish suffixes, small fractions with precision.
func fmtVal(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case av == 0:
		return "0"
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
