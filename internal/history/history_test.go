package history

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSource is a scriptable source: a counter fed by Add and a gauge
// set by SetGauge.
type fakeSource struct {
	counter atomic.Uint64
	gauge   atomic.Uint64 // math.Float64bits
}

func (f *fakeSource) Series() []SeriesDef {
	return []SeriesDef{
		{Name: "test.counter", Unit: "ev/s", Kind: KindCounter},
		{Name: "test.gauge", Unit: "v", Kind: KindGauge},
	}
}

func (f *fakeSource) Sample(vals []float64) {
	vals[0] = float64(f.counter.Load())
	vals[1] = math.Float64frombits(f.gauge.Load())
}

func (f *fakeSource) SetGauge(v float64) { f.gauge.Store(math.Float64bits(v)) }

func newTestHistory(cfg Config) (*History, *fakeSource) {
	if cfg.Now == nil {
		// The clock must be concurrency-safe, like time.Now.
		base := time.Unix(1700000000, 0)
		var ticks atomic.Int64
		cfg.Now = func() time.Time {
			return base.Add(time.Duration(ticks.Add(1)) * time.Second)
		}
	}
	h := New(cfg)
	src := &fakeSource{}
	h.AddSource(src)
	return h, src
}

func TestCounterDeltasAndReconciliation(t *testing.T) {
	h, src := newTestHistory(Config{Interval: time.Second, FineSlots: 8, CoarseEvery: 4})

	// First sample baselines: delta must be 0 even though the counter
	// already holds a value.
	src.counter.Store(100)
	h.SampleNow()
	// Then +5, +7, +0.
	src.counter.Add(5)
	h.SampleNow()
	src.counter.Add(7)
	h.SampleNow()
	h.SampleNow()

	snap := h.Snapshot(SnapshotOptions{Series: []string{"test.counter"}})
	if len(snap.Series) != 1 {
		t.Fatalf("series = %d, want 1", len(snap.Series))
	}
	sd := snap.Series[0]
	want := []float64{0, 5, 7, 0} // rates at 1s step == deltas
	if len(sd.Points) != len(want) {
		t.Fatalf("points = %v, want %v", sd.Points, want)
	}
	for i, v := range want {
		if sd.Points[i] != v {
			t.Fatalf("points = %v, want %v", sd.Points, want)
		}
	}
	// Sum of deltas reconciles exactly with the cumulative counter's
	// movement since the baseline sample.
	if sd.Sum != 12 {
		t.Fatalf("Sum = %v, want 12", sd.Sum)
	}
	if sd.LatestRaw != 112 {
		t.Fatalf("LatestRaw = %v, want 112", sd.LatestRaw)
	}
}

func TestCounterRestartRebaselines(t *testing.T) {
	h, src := newTestHistory(Config{Interval: time.Second, FineSlots: 8})
	src.counter.Store(50)
	h.SampleNow()
	src.counter.Add(10)
	h.SampleNow()
	// Upstream /debug/reset: counter rewinds to 3.
	src.counter.Store(3)
	h.SampleNow()

	sd, ok := h.Snapshot(SnapshotOptions{Series: []string{"test.counter"}}).Get("test.counter")
	if !ok {
		t.Fatal("series missing")
	}
	want := []float64{0, 10, 3}
	for i, v := range want {
		if sd.Points[i] != v {
			t.Fatalf("points = %v, want %v", sd.Points, want)
		}
	}
}

func TestGaugeCoarseIsWindowMean(t *testing.T) {
	h, src := newTestHistory(Config{Interval: time.Second, FineSlots: 16, CoarseSlots: 4, CoarseEvery: 4})
	for i, v := range []float64{2, 4, 6, 8, 10, 10, 10, 10} {
		src.SetGauge(v)
		src.counter.Store(uint64(10 * (i + 1)))
		h.SampleNow()
	}
	snap := h.Snapshot(SnapshotOptions{Coarse: true})
	g, _ := snap.Get("test.gauge")
	if len(g.Points) != 2 || g.Points[0] != 5 || g.Points[1] != 10 {
		t.Fatalf("gauge coarse points = %v, want [5 10]", g.Points)
	}
	c, _ := snap.Get("test.counter")
	// Counter coarse slots hold window delta sums: baseline window
	// (0+10+10+10)=30, then 4×10=40; rendered as rates over 4s.
	if len(c.Points) != 2 || c.Points[0] != 30.0/4 || c.Points[1] != 10 {
		t.Fatalf("counter coarse points = %v, want [7.5 10]", c.Points)
	}
	if c.Sum != 70 {
		t.Fatalf("coarse Sum = %v, want 70", c.Sum)
	}
	if snap.StepSecs != 4 {
		t.Fatalf("StepSecs = %v, want 4", snap.StepSecs)
	}
}

func TestFineRingWraparound(t *testing.T) {
	h, src := newTestHistory(Config{Interval: time.Second, FineSlots: 4})
	for i := 1; i <= 10; i++ {
		src.counter.Store(uint64(i * i)) // deltas 2i-1 after baseline
		h.SampleNow()
	}
	sd, _ := h.Snapshot(SnapshotOptions{}).Get("test.counter")
	// Only the last 4 samples survive: deltas at i=7..10 are 13,15,17,19.
	want := []float64{13, 15, 17, 19}
	if len(sd.Points) != len(want) {
		t.Fatalf("points = %v, want %v", sd.Points, want)
	}
	for i, v := range want {
		if sd.Points[i] != v {
			t.Fatalf("points = %v, want %v", sd.Points, want)
		}
	}
	if sd.Last != 19 || sd.Min != 13 || sd.Max != 19 {
		t.Fatalf("last/min/max = %v/%v/%v", sd.Last, sd.Min, sd.Max)
	}
}

func TestSnapshotLastAndUnknownSeries(t *testing.T) {
	h, src := newTestHistory(Config{Interval: time.Second, FineSlots: 16})
	for i := 0; i < 6; i++ {
		src.SetGauge(float64(i))
		h.SampleNow()
	}
	snap := h.Snapshot(SnapshotOptions{Series: []string{"test.gauge", "nope"}, Last: 3})
	if len(snap.Series) != 1 {
		t.Fatalf("series = %d, want 1 (unknown skipped)", len(snap.Series))
	}
	g := snap.Series[0]
	if len(g.Points) != 3 || g.Points[0] != 3 || g.Points[2] != 5 {
		t.Fatalf("points = %v, want [3 4 5]", g.Points)
	}
}

func TestResetCutsWindowKeepsSeq(t *testing.T) {
	h, src := newTestHistory(Config{Interval: time.Second, FineSlots: 8})
	src.counter.Store(5)
	h.SampleNow()
	h.SampleNow()
	before := h.Seq()
	h.Reset()
	if h.Seq() != before {
		t.Fatalf("Seq after Reset = %d, want %d (monotonic)", h.Seq(), before)
	}
	snap := h.Snapshot(SnapshotOptions{})
	for _, sd := range snap.Series {
		if len(sd.Points) != 0 {
			t.Fatalf("series %s has %d points after Reset", sd.Name, len(sd.Points))
		}
	}
	// Next sample re-baselines the counter: no phantom delta.
	src.counter.Store(500)
	h.SampleNow()
	sd, _ := h.Snapshot(SnapshotOptions{}).Get("test.counter")
	if len(sd.Points) != 1 || sd.Points[0] != 0 {
		t.Fatalf("post-reset points = %v, want [0]", sd.Points)
	}
}

func TestDeltasSince(t *testing.T) {
	h, src := newTestHistory(Config{Interval: time.Second, FineSlots: 8})
	src.counter.Store(1)
	h.SampleNow()
	cursor := h.Seq()
	src.counter.Store(4)
	h.SampleNow()
	src.counter.Store(9)
	h.SampleNow()

	deltas, next := h.DeltasSince(cursor, []string{"test.counter"})
	if next != 3 {
		t.Fatalf("next = %d, want 3", next)
	}
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(deltas))
	}
	if deltas[0].Seq != 2 || deltas[0].Values["test.counter"] != 3 {
		t.Fatalf("delta[0] = %+v", deltas[0])
	}
	if deltas[1].Seq != 3 || deltas[1].Values["test.counter"] != 5 {
		t.Fatalf("delta[1] = %+v", deltas[1])
	}
	// Caught up: nothing new.
	deltas, next = h.DeltasSince(next, nil)
	if len(deltas) != 0 || next != 3 {
		t.Fatalf("caught-up deltas = %v next = %d", deltas, next)
	}
}

// TestConcurrentSampleAndSnapshot exercises ring wraparound while
// snapshots, deltas, and resets race the sampler — the satellite's
// wraparound-under-concurrency coverage. Run under -race.
func TestConcurrentSampleAndSnapshot(t *testing.T) {
	h, src := newTestHistory(Config{Interval: time.Second, FineSlots: 4, CoarseSlots: 4, CoarseEvery: 2})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src.counter.Add(3)
			src.SetGauge(float64(i % 17))
			h.SampleNow()
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				snap := h.Snapshot(SnapshotOptions{Coarse: r == 0})
				for _, sd := range snap.Series {
					if len(sd.Points) > 4 {
						t.Errorf("series %s: %d points from a 4-slot ring", sd.Name, len(sd.Points))
						return
					}
				}
				h.DeltasSince(0, nil)
				if i%50 == 25 {
					h.Reset()
				}
			}
		}(r)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestStartStopSampler(t *testing.T) {
	h, src := newTestHistory(Config{Interval: 5 * time.Millisecond, FineSlots: 64, Now: time.Now})
	src.counter.Store(1)
	h.Start()
	h.Start() // idempotent
	deadline := time.After(2 * time.Second)
	for h.Seq() < 3 {
		select {
		case <-deadline:
			t.Fatal("sampler took no samples")
		case <-time.After(time.Millisecond):
		}
	}
	h.Stop()
	seq := h.Seq()
	time.Sleep(20 * time.Millisecond)
	if h.Seq() != seq {
		t.Fatal("sampler still running after Stop")
	}
	h.Stop() // idempotent
}

func TestNilHistorySafe(t *testing.T) {
	var h *History
	h.SampleNow()
	h.Start()
	h.Stop()
	h.Reset()
	h.AddSource(&fakeSource{})
	if h.Seq() != 0 || h.Interval() != 0 {
		t.Fatal("nil history not zero")
	}
	if s := h.Snapshot(SnapshotOptions{}); len(s.Series) != 0 {
		t.Fatal("nil snapshot has series")
	}
	if d, _ := h.DeltasSince(0, nil); d != nil {
		t.Fatal("nil deltas")
	}
}

func TestDuplicateSeriesKeepsFirst(t *testing.T) {
	h, src := newTestHistory(Config{Interval: time.Second, FineSlots: 8})
	h.AddSource(&fakeSource{}) // same names again
	src.counter.Store(2)
	h.SampleNow()
	h.SampleNow()
	names := h.SeriesNames()
	if len(names) != 2 {
		t.Fatalf("names = %v, want the first registration only", names)
	}
}

func TestHistoryHTTP(t *testing.T) {
	h, src := newTestHistory(Config{Interval: time.Second, FineSlots: 16})
	mux := http.NewServeMux()
	Register(mux, h)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	src.counter.Store(10)
	h.SampleNow()
	src.counter.Store(30)
	src.SetGauge(7)
	h.SampleNow()

	// JSON by default, no-store, series selection.
	resp, err := http.Get(srv.URL + "/debug/history?series=test.counter&last=1")
	if err != nil {
		t.Fatal(err)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q", cc)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.Series) != 1 || snap.Series[0].Name != "test.counter" {
		t.Fatalf("snapshot series = %+v", snap.Series)
	}
	if got := snap.Series[0].Points; len(got) != 1 || got[0] != 20 {
		t.Fatalf("points = %v, want [20]", got)
	}

	// Text rendering includes a sparkline row per series.
	resp, err = http.Get(srv.URL + "/debug/history?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("text Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(body), "test.gauge") {
		t.Fatalf("text body missing series:\n%s", body)
	}

	// Bad query params are 400s.
	for _, q := range []string{"?res=hourly", "?last=-1", "?last=x"} {
		resp, err := http.Get(srv.URL + "/debug/history" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	// Reset is POST-only.
	resp, err = http.Get(srv.URL + "/debug/history/reset")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "POST" {
		t.Fatalf("GET reset: status %d Allow %q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	resp, err = http.Post(srv.URL+"/debug/history/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST reset: status %d", resp.StatusCode)
	}
	if snap := h.Snapshot(SnapshotOptions{}); len(snap.Series[0].Points) != 0 {
		t.Fatal("rings not reset via HTTP")
	}
}

func TestWatchStreams(t *testing.T) {
	h, src := newTestHistory(Config{Interval: 10 * time.Millisecond, FineSlots: 64, Now: time.Now})
	mux := http.NewServeMux()
	Register(mux, h)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	src.counter.Store(1)
	h.Start()
	defer h.Stop()

	resp, err := http.Get(srv.URL + "/debug/watch?series=test.counter&interval=10ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lastSeq uint64
	for i := 0; i < 3; i++ {
		src.counter.Add(5)
		if !sc.Scan() {
			t.Fatalf("stream ended after %d lines: %v", i, sc.Err())
		}
		var d Delta
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d: %v (%q)", i, err, sc.Text())
		}
		if d.Seq <= lastSeq {
			t.Fatalf("seq not monotonic: %d after %d", d.Seq, lastSeq)
		}
		lastSeq = d.Seq
		if _, ok := d.Values["test.counter"]; !ok {
			t.Fatalf("line %d missing series: %+v", i, d)
		}
	}
}

func TestWatchBadInterval(t *testing.T) {
	h, _ := newTestHistory(Config{Interval: time.Second})
	mux := http.NewServeMux()
	Register(mux, h)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/watch?interval=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestSparkline(t *testing.T) {
	if s := Sparkline(nil, 10); s != "" {
		t.Fatalf("empty = %q", s)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if s != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp = %q", s)
	}
	// Downsampling keeps width.
	s = Sparkline(make([]float64, 100), 10)
	if len([]rune(s)) != 10 {
		t.Fatalf("width = %d, want 10", len([]rune(s)))
	}
}
