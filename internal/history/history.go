// Package history is the time-series half of the observatory: where
// every surface built so far (telemetry counters, SLO windows, the
// anatomy profiler, path-length folds, the lifecycle table) answers
// "what is true right now", this layer answers "what happened over the
// last five minutes as load ramped past saturation" — the trajectory
// view the paper's whole method implies (Table 2 shares and the
// ~70%-in-libcrypto split only mean something as load and suite mix
// vary).
//
// A sampler goroutine ticks at a fine interval (1s by default) and
// reads every registered Source into fixed-size ring buffers at two
// resolutions: fine (1s × 300 — five minutes at full detail) and
// coarse (10s × 3600 — ten hours of context). Counter series store
// per-tick deltas, so rates (handshakes/s, bytes/s) are first-class
// and the sum of a window's deltas reconciles exactly against the
// underlying cumulative counter; gauge series store the sampled value,
// with the coarse ring holding per-window means.
//
// The sampling path is zero-allocation in steady state: sources fill
// preallocated scratch slices from wait-free accessors
// (telemetry.Registry.Counts, slo.Tracker.Stats, lifecycle.Table.Counts,
// pathlen totals, trace.Profiler.SharesInto), and ring writes are
// plain stores under one mutex. docs/BENCH_history.json pins the cost
// (0 allocs/op, well under 1% of a CPU at 1s resolution) through the
// history-sampler shape in `make checkdrift`.
package history

import (
	"sort"
	"sync"
	"time"
)

// Kind classifies how a series' samples accumulate.
type Kind uint8

const (
	// KindGauge samples are instantaneous values (inflight, p99, a
	// share percentage); the ring stores them as-is and the coarse
	// ring stores window means.
	KindGauge Kind = iota
	// KindCounter samples are cumulative, monotonically nondecreasing
	// counts; the ring stores per-tick deltas, rendered as rates.
	KindCounter
)

// String names the kind for JSON.
func (k Kind) String() string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// A SeriesDef declares one series a Source samples: a dotted name
// (unique across the history), the unit its rendered points carry
// (for counters, the unit of the derived rate, e.g. "hs/s"), and the
// kind.
type SeriesDef struct {
	Name string
	Unit string
	Kind Kind
}

// A Source is one group of series sampled together each tick. Series
// must return the same defs on every call (the set is fixed at
// AddSource); Sample must fill vals[i] with the current value of
// Series()[i] without allocating — it runs on the sampler's hot path.
type Source interface {
	Series() []SeriesDef
	Sample(vals []float64)
}

// Config parameterizes a History.
type Config struct {
	// Interval is the fine resolution (default 1s).
	Interval time.Duration
	// FineSlots is the fine ring length (default 300 — five minutes
	// at the default interval).
	FineSlots int
	// CoarseSlots is the coarse ring length (default 3600 — ten hours
	// at the defaults).
	CoarseSlots int
	// CoarseEvery is how many fine ticks aggregate into one coarse
	// slot (default 10).
	CoarseEvery int
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

// seriesState is one series' rings and sampling state.
type seriesState struct {
	def    SeriesDef
	fine   []float64
	coarse []float64

	lastRaw float64 // counters: previous cumulative sample
	haveRaw bool

	acc  float64 // coarse accumulator: sum of deltas (counter) or values (gauge)
	accN int
}

// sourceState pairs a source with its preallocated scratch and slots.
type sourceState struct {
	src     Source
	scratch []float64
	series  []*seriesState
}

// A History holds the rings and drives the sampler. All methods are
// safe for concurrent use and no-ops on a nil receiver.
type History struct {
	interval    time.Duration
	fineSlots   int
	coarseSlots int
	coarseEvery int
	now         func() time.Time

	mu      sync.Mutex
	sources []sourceState
	series  []*seriesState
	byName  map[string]*seriesState

	seq           uint64 // fine samples taken
	fineFirst     uint64 // first fine sample still valid (advanced by Reset)
	coarseSeq     uint64 // coarse samples taken
	coarseFirst   uint64
	ticksInCoarse int
	lastAt        time.Time

	running bool
	stop    chan struct{}
	done    chan struct{}
}

// New returns an empty history with cfg's geometry.
func New(cfg Config) *History {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.FineSlots <= 0 {
		cfg.FineSlots = 300
	}
	if cfg.CoarseSlots <= 0 {
		cfg.CoarseSlots = 3600
	}
	if cfg.CoarseEvery <= 0 {
		cfg.CoarseEvery = 10
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &History{
		interval:    cfg.Interval,
		fineSlots:   cfg.FineSlots,
		coarseSlots: cfg.CoarseSlots,
		coarseEvery: cfg.CoarseEvery,
		now:         cfg.Now,
		byName:      make(map[string]*seriesState),
	}
}

// Interval returns the fine resolution.
func (h *History) Interval() time.Duration {
	if h == nil {
		return 0
	}
	return h.interval
}

// CoarseInterval returns the coarse resolution.
func (h *History) CoarseInterval() time.Duration {
	if h == nil {
		return 0
	}
	return h.interval * time.Duration(h.coarseEvery)
}

// AddSource registers a source. Call before Start (concurrent
// registration is safe but samples taken before registration will not
// cover the new series). Series whose names collide with already
// registered ones are skipped, keeping the first registration.
func (h *History) AddSource(src Source) {
	if h == nil || src == nil {
		return
	}
	defs := src.Series()
	h.mu.Lock()
	defer h.mu.Unlock()
	ss := sourceState{src: src, scratch: make([]float64, len(defs))}
	for _, def := range defs {
		if _, dup := h.byName[def.Name]; dup {
			ss.series = append(ss.series, nil)
			continue
		}
		st := &seriesState{
			def:    def,
			fine:   make([]float64, h.fineSlots),
			coarse: make([]float64, h.coarseSlots),
		}
		h.byName[def.Name] = st
		h.series = append(h.series, st)
		ss.series = append(ss.series, st)
	}
	h.sources = append(h.sources, ss)
}

// SeriesNames returns every registered series name in registration
// order.
func (h *History) SeriesNames() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, len(h.series))
	for i, s := range h.series {
		names[i] = s.def.Name
	}
	return names
}

// Seq returns the number of fine samples taken so far — the watch
// cursor.
func (h *History) Seq() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// SampleNow takes one fine sample synchronously: every source fills
// its scratch, deltas/values land in the fine rings, and every
// CoarseEvery-th tick flushes the coarse accumulators. This is the
// ticker's body and the test/benchmark entry point; it allocates
// nothing in steady state.
func (h *History) SampleNow() {
	if h == nil {
		return
	}
	now := h.now()
	h.mu.Lock()
	defer h.mu.Unlock()
	slot := int(h.seq % uint64(h.fineSlots))
	for si := range h.sources {
		ss := &h.sources[si]
		ss.src.Sample(ss.scratch)
		for i, st := range ss.series {
			if st == nil {
				continue
			}
			v := ss.scratch[i]
			var point float64
			if st.def.Kind == KindCounter {
				delta := v - st.lastRaw
				if !st.haveRaw {
					delta = 0
				} else if delta < 0 {
					// The counter restarted (a /debug/reset upstream):
					// re-baseline, crediting the new count since zero.
					delta = v
				}
				st.lastRaw = v
				st.haveRaw = true
				point = delta
			} else {
				st.lastRaw = v
				st.haveRaw = true
				point = v
			}
			st.fine[slot] = point
			st.acc += point
			st.accN++
		}
	}
	h.seq++
	h.lastAt = now
	h.ticksInCoarse++
	if h.ticksInCoarse >= h.coarseEvery {
		cslot := int(h.coarseSeq % uint64(h.coarseSlots))
		for _, st := range h.series {
			switch {
			case st.def.Kind == KindCounter:
				st.coarse[cslot] = st.acc
			case st.accN > 0:
				st.coarse[cslot] = st.acc / float64(st.accN)
			default:
				st.coarse[cslot] = 0
			}
			st.acc = 0
			st.accN = 0
		}
		h.coarseSeq++
		h.ticksInCoarse = 0
	}
}

// Start launches the sampler goroutine. Safe to call once; subsequent
// calls while running are no-ops.
func (h *History) Start() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.running {
		h.mu.Unlock()
		return
	}
	h.running = true
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	stop, done := h.stop, h.done
	h.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				h.SampleNow()
			}
		}
	}()
}

// Stop halts the sampler goroutine and waits for it to exit. The
// rings keep their contents; Start may be called again.
func (h *History) Stop() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if !h.running {
		h.mu.Unlock()
		return
	}
	h.running = false
	stop, done := h.stop, h.done
	h.mu.Unlock()
	close(stop)
	<-done
}

// Reset zeroes every ring and re-baselines every counter, so a drift
// window (one load run) can be observed from a clean slate. The
// sample sequence keeps counting — watch cursors stay monotonic across
// the cut.
func (h *History) Reset() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, st := range h.series {
		for i := range st.fine {
			st.fine[i] = 0
		}
		for i := range st.coarse {
			st.coarse[i] = 0
		}
		st.haveRaw = false
		st.lastRaw = 0
		st.acc = 0
		st.accN = 0
	}
	h.fineFirst = h.seq
	h.coarseFirst = h.coarseSeq
	h.ticksInCoarse = 0
}

// SnapshotOptions select what a Snapshot returns.
type SnapshotOptions struct {
	// Series restricts output to these names (nil = every series).
	// Unknown names are skipped.
	Series []string
	// Coarse selects the coarse ring instead of the fine one.
	Coarse bool
	// Last caps the points returned per series (0 = the whole ring's
	// valid extent).
	Last int
}

// SeriesData is one series' window in a snapshot. Points are oldest
// first; for counters they are rates (delta over the step), so their
// sum times the step reconciles with the cumulative counter — that
// exact total is also in Sum.
type SeriesData struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Unit string `json:"unit,omitempty"`

	// Last is the most recent point (rate for counters).
	Last float64 `json:"last"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	// Sum is the total counter delta across the returned points
	// (zero for gauges) — the reconciliation hook.
	Sum float64 `json:"sum,omitempty"`
	// LatestRaw is the counter's current cumulative value.
	LatestRaw float64 `json:"latest_raw,omitempty"`

	Points []float64 `json:"points"`
}

// A Snapshot is the /debug/history body.
type Snapshot struct {
	At       time.Time    `json:"at"`
	Res      string       `json:"res"`
	StepSecs float64      `json:"step_secs"`
	Seq      uint64       `json:"seq"`
	Series   []SeriesData `json:"series"`
}

// Snapshot copies the selected window out of the rings.
func (h *History) Snapshot(opts SnapshotOptions) Snapshot {
	if h == nil {
		return Snapshot{At: time.Now()}
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	step := h.interval
	seq, first, slots := h.seq, h.fineFirst, h.fineSlots
	if opts.Coarse {
		step = h.CoarseInterval()
		seq, first, slots = h.coarseSeq, h.coarseFirst, h.coarseSlots
	}
	snap := Snapshot{
		At:       h.lastAt,
		Res:      step.String(),
		StepSecs: step.Seconds(),
		Seq:      h.seq,
	}
	if snap.At.IsZero() {
		snap.At = h.now()
	}

	// The valid extent: samples (start, seq], bounded by the ring size
	// and any Reset cut.
	start := first
	if seq > uint64(slots) && seq-uint64(slots) > start {
		start = seq - uint64(slots)
	}
	n := int(seq - start)
	if opts.Last > 0 && n > opts.Last {
		start = seq - uint64(opts.Last)
		n = opts.Last
	}

	stepSecs := step.Seconds()
	pick := h.series
	if opts.Series != nil {
		pick = pick[:0:0]
		for _, name := range opts.Series {
			if st := h.byName[name]; st != nil {
				pick = append(pick, st)
			}
		}
	}
	for _, st := range pick {
		ring := st.fine
		if opts.Coarse {
			ring = st.coarse
		}
		sd := SeriesData{
			Name:   st.def.Name,
			Kind:   st.def.Kind.String(),
			Unit:   st.def.Unit,
			Points: make([]float64, 0, n),
		}
		var sum float64
		for s := start; s < seq; s++ {
			v := ring[s%uint64(slots)]
			if st.def.Kind == KindCounter {
				sum += v
				v /= stepSecs // delta -> rate
			}
			sd.Points = append(sd.Points, v)
		}
		if len(sd.Points) > 0 {
			sd.Last = sd.Points[len(sd.Points)-1]
			sd.Min, sd.Max = sd.Points[0], sd.Points[0]
			var total float64
			for _, v := range sd.Points {
				if v < sd.Min {
					sd.Min = v
				}
				if v > sd.Max {
					sd.Max = v
				}
				total += v
			}
			sd.Mean = total / float64(len(sd.Points))
		}
		if st.def.Kind == KindCounter {
			sd.Sum = sum
			sd.LatestRaw = st.lastRaw
		}
		snap.Series = append(snap.Series, sd)
	}
	return snap
}

// A Delta is one fine tick's values for the selected series — one
// line of the /debug/watch stream.
type Delta struct {
	Seq    uint64             `json:"seq"`
	At     time.Time          `json:"at"`
	Values map[string]float64 `json:"values"`
}

// DeltasSince returns every fine tick after cursor (capped to the
// ring's valid extent), oldest first, with counter values rendered as
// rates. names nil selects every series. The returned cursor is the
// new watch position (equal to Seq at the time of the call).
func (h *History) DeltasSince(cursor uint64, names []string) ([]Delta, uint64) {
	if h == nil {
		return nil, cursor
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	start := cursor
	if start < h.fineFirst {
		start = h.fineFirst
	}
	if h.seq > uint64(h.fineSlots) && h.seq-uint64(h.fineSlots) > start {
		start = h.seq - uint64(h.fineSlots)
	}
	if start >= h.seq {
		return nil, h.seq
	}
	pick := h.series
	if names != nil {
		pick = pick[:0:0]
		for _, name := range names {
			if st := h.byName[name]; st != nil {
				pick = append(pick, st)
			}
		}
	}
	stepSecs := h.interval.Seconds()
	out := make([]Delta, 0, h.seq-start)
	for s := start; s < h.seq; s++ {
		d := Delta{
			Seq:    s + 1,
			At:     h.lastAt.Add(-time.Duration(h.seq-s-1) * h.interval),
			Values: make(map[string]float64, len(pick)),
		}
		for _, st := range pick {
			v := st.fine[s%uint64(h.fineSlots)]
			if st.def.Kind == KindCounter {
				v /= stepSecs
			}
			d.Values[st.def.Name] = v
		}
		out = append(out, d)
	}
	return out, h.seq
}

// SortedNames returns the snapshot's series names sorted — a stable
// iteration order for renderers.
func (s Snapshot) SortedNames() []string {
	names := make([]string, len(s.Series))
	for i := range s.Series {
		names[i] = s.Series[i].Name
	}
	sort.Strings(names)
	return names
}

// Series returns the named series' data, with ok reporting presence.
func (s Snapshot) Get(name string) (SeriesData, bool) {
	for i := range s.Series {
		if s.Series[i].Name == name {
			return s.Series[i], true
		}
	}
	return SeriesData{}, false
}
