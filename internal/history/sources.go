package history

import (
	"time"

	"sslperf/internal/lifecycle"
	"sslperf/internal/pathlen"
	"sslperf/internal/perf"
	"sslperf/internal/probe"
	"sslperf/internal/slo"
	"sslperf/internal/telemetry"
	"sslperf/internal/trace"
)

// This file binds every observatory surface to the ring layer. Each
// source's Sample reads the surface's allocation-free accessor
// (telemetry.Counts, slo.Stats, lifecycle.Counts, pathlen totals,
// trace.SharesInto) so the whole tick stays off the heap.

// TelemetrySource samples the record/handshake counters as counter
// series, which the snapshot renders as rates (handshakes/s, bytes/s —
// the paper's throughput axes).
type TelemetrySource struct {
	reg *telemetry.Registry
}

// NewTelemetrySource wraps reg.
func NewTelemetrySource(reg *telemetry.Registry) *TelemetrySource {
	return &TelemetrySource{reg: reg}
}

var telemetryDefs = []SeriesDef{
	{Name: "connections", Unit: "conn/s", Kind: KindCounter},
	{Name: "handshakes.full", Unit: "hs/s", Kind: KindCounter},
	{Name: "handshakes.resumed", Unit: "hs/s", Kind: KindCounter},
	{Name: "handshakes.failed", Unit: "hs/s", Kind: KindCounter},
	{Name: "records.in", Unit: "rec/s", Kind: KindCounter},
	{Name: "records.out", Unit: "rec/s", Kind: KindCounter},
	{Name: "bytes.in", Unit: "B/s", Kind: KindCounter},
	{Name: "bytes.out", Unit: "B/s", Kind: KindCounter},
	{Name: "alerts.in", Unit: "alerts/s", Kind: KindCounter},
	{Name: "alerts.out", Unit: "alerts/s", Kind: KindCounter},
}

// Series implements Source.
func (s *TelemetrySource) Series() []SeriesDef { return telemetryDefs }

// Sample implements Source.
func (s *TelemetrySource) Sample(vals []float64) {
	c := s.reg.Counts()
	vals[0] = float64(c.Connections)
	vals[1] = float64(c.HandshakesFull)
	vals[2] = float64(c.HandshakesResumed)
	vals[3] = float64(c.HandshakesFailed)
	vals[4] = float64(c.RecordsIn)
	vals[5] = float64(c.RecordsOut)
	vals[6] = float64(c.BytesIn)
	vals[7] = float64(c.BytesOut)
	vals[8] = float64(c.AlertsIn)
	vals[9] = float64(c.AlertsOut)
}

// RuntimeSource samples the Go runtime gauges through a reusable
// runtime/metrics buffer (allocation-free after the first read).
type RuntimeSource struct {
	sampler *telemetry.RuntimeSampler
}

// NewRuntimeSource returns a runtime source with its own sampler (the
// sampler is not safe for concurrent use; the history serializes
// Sample calls under its lock).
func NewRuntimeSource() *RuntimeSource {
	return &RuntimeSource{sampler: telemetry.NewRuntimeSampler()}
}

var runtimeDefs = []SeriesDef{
	{Name: "runtime.goroutines", Unit: "goroutines", Kind: KindGauge},
	{Name: "runtime.heap_inuse_bytes", Unit: "B", Kind: KindGauge},
	{Name: "runtime.gc_pause_p99_us", Unit: "us", Kind: KindGauge},
	{Name: "runtime.sched_lat_p99_us", Unit: "us", Kind: KindGauge},
}

// Series implements Source.
func (s *RuntimeSource) Series() []SeriesDef { return runtimeDefs }

// Sample implements Source.
func (s *RuntimeSource) Sample(vals []float64) {
	rs := s.sampler.Read()
	vals[0] = float64(rs.Goroutines)
	vals[1] = float64(rs.HeapInuseBytes)
	vals[2] = float64(rs.GCPauseP99) / 1e3
	vals[3] = float64(rs.SchedLatP99) / 1e3
}

// SLOSource samples the short (10s) SLO window each tick: p99, error
// rate, burn rate, in-flight handshakes, and queue-delay mean — the
// overload early-warning gauges.
type SLOSource struct {
	tracker *slo.Tracker
}

// NewSLOSource wraps tracker.
func NewSLOSource(tracker *slo.Tracker) *SLOSource {
	return &SLOSource{tracker: tracker}
}

var sloDefs = []SeriesDef{
	{Name: "slo.p99_us", Unit: "us", Kind: KindGauge},
	{Name: "slo.error_rate", Unit: "frac", Kind: KindGauge},
	{Name: "slo.burn", Unit: "x", Kind: KindGauge},
	{Name: "slo.inflight", Unit: "hs", Kind: KindGauge},
	{Name: "slo.queue_mean_us", Unit: "us", Kind: KindGauge},
}

// Series implements Source.
func (s *SLOSource) Series() []SeriesDef { return sloDefs }

// Sample implements Source.
func (s *SLOSource) Sample(vals []float64) {
	ws := s.tracker.Stats(10)
	vals[0] = ws.P99Us
	vals[1] = ws.ErrorRate
	vals[2] = ws.BurnRate
	vals[3] = float64(s.tracker.InFlight())
	vals[4] = ws.QueueMeanUs
}

// LifecycleSource samples the connection table: live per-state gauges,
// opened/closed/failed counters, and one counter per canonical failure
// class (fail.<tag>), so ssltop's fail-class top-K reads straight from
// the history endpoint.
type LifecycleSource struct {
	table *lifecycle.Table
	defs  []SeriesDef
}

// NewLifecycleSource wraps table.
func NewLifecycleSource(table *lifecycle.Table) *LifecycleSource {
	defs := []SeriesDef{
		{Name: "conns.live", Unit: "conns", Kind: KindGauge},
		{Name: "conns.accepted", Unit: "conns", Kind: KindGauge},
		{Name: "conns.handshaking", Unit: "conns", Kind: KindGauge},
		{Name: "conns.suspended", Unit: "conns", Kind: KindGauge},
		{Name: "conns.established", Unit: "conns", Kind: KindGauge},
		{Name: "conns.draining", Unit: "conns", Kind: KindGauge},
		{Name: "conns.opened", Unit: "conn/s", Kind: KindCounter},
		{Name: "conns.closed", Unit: "conn/s", Kind: KindCounter},
		{Name: "conns.failed", Unit: "conn/s", Kind: KindCounter},
	}
	// One series per canonical class, skipping FailNone (successful
	// closes are already conns.closed).
	for class := probe.FailClass(1); class <= probe.FailInternal; class++ {
		defs = append(defs, SeriesDef{
			Name: "fail." + class.Name(),
			Unit: "fail/s",
			Kind: KindCounter,
		})
	}
	return &LifecycleSource{table: table, defs: defs}
}

// Series implements Source.
func (s *LifecycleSource) Series() []SeriesDef { return s.defs }

// Sample implements Source.
func (s *LifecycleSource) Sample(vals []float64) {
	c := s.table.Counts()
	vals[0] = float64(c.Live)
	vals[1] = float64(c.Accepted)
	vals[2] = float64(c.Handshaking)
	vals[3] = float64(c.Suspended)
	vals[4] = float64(c.Established)
	vals[5] = float64(c.Draining)
	vals[6] = float64(c.Opened)
	vals[7] = float64(c.Closed)
	vals[8] = float64(c.Failed)
	for class := 1; class <= int(probe.FailInternal); class++ {
		vals[8+class] = float64(c.FailByClass[class])
	}
}

// PathlenSource samples windowed cipher and MAC cycles/byte: it keeps
// the previous cumulative (bytes, nanos) totals and renders the delta
// window's intensity, so the gauge tracks the *current* mix (an RC4 to
// AES suite shift moves it within one tick, where the cumulative
// Table-11 view only drifts).
type PathlenSource struct {
	collector *pathlen.Collector

	prevCipherBytes, prevCipherNs uint64
	prevMACBytes, prevMACNs       uint64
}

// NewPathlenSource wraps collector.
func NewPathlenSource(collector *pathlen.Collector) *PathlenSource {
	return &PathlenSource{collector: collector}
}

var pathlenDefs = []SeriesDef{
	{Name: "pathlen.cipher_cyc_b", Unit: "cyc/B", Kind: KindGauge},
	{Name: "pathlen.mac_cyc_b", Unit: "cyc/B", Kind: KindGauge},
}

// Series implements Source.
func (s *PathlenSource) Series() []SeriesDef { return pathlenDefs }

// Sample implements Source.
func (s *PathlenSource) Sample(vals []float64) {
	cb, cn := s.collector.CipherTotals()
	mb, mn := s.collector.MACTotals()
	vals[0] = windowedCycPerByte(cb, cn, &s.prevCipherBytes, &s.prevCipherNs)
	vals[1] = windowedCycPerByte(mb, mn, &s.prevMACBytes, &s.prevMACNs)
}

// windowedCycPerByte differences cumulative totals against the
// previous tick and returns the window's cycles/byte (0 when the
// window saw no bytes, or after a reset rewound the counters).
func windowedCycPerByte(bytes, ns uint64, prevBytes, prevNs *uint64) float64 {
	db, dn := bytes-*prevBytes, ns-*prevNs
	if bytes < *prevBytes || ns < *prevNs {
		// Counters rewound (/debug/reset): treat the new totals as the
		// window.
		db, dn = bytes, ns
	}
	*prevBytes, *prevNs = bytes, ns
	if db == 0 {
		return 0
	}
	return perf.Cycles(time.Duration(dn)) / float64(db)
}

// AnatomySource samples the profiler's live Table-2 step shares
// (anatomy.share.<step>, percent of total step time) and the crypto
// share of handshake cost — the paper's headline split — as gauges.
type AnatomySource struct {
	profiler *trace.Profiler
	defs     []SeriesDef
	names    []string  // step names, parallel to defs[:len(names)]
	shares   []float64 // scratch for SharesInto
}

// NewAnatomySource wraps profiler.
func NewAnatomySource(profiler *trace.Profiler) *AnatomySource {
	steps := probe.Steps()
	s := &AnatomySource{
		profiler: profiler,
		names:    make([]string, len(steps)),
		shares:   make([]float64, len(steps)),
	}
	for i, step := range steps {
		s.names[i] = step.Name()
		s.defs = append(s.defs, SeriesDef{
			Name: "anatomy.share." + s.names[i],
			Unit: "%",
			Kind: KindGauge,
		})
	}
	s.defs = append(s.defs, SeriesDef{Name: "anatomy.crypto_share", Unit: "%", Kind: KindGauge})
	return s
}

// Series implements Source.
func (s *AnatomySource) Series() []SeriesDef { return s.defs }

// Sample implements Source.
func (s *AnatomySource) Sample(vals []float64) {
	crypto := s.profiler.SharesInto(s.names, s.shares)
	copy(vals, s.shares)
	vals[len(s.names)] = crypto
}

// Sources bundles the standard observatory surfaces for
// AddStandardSources. Nil fields (and false Runtime) are skipped.
type Sources struct {
	Telemetry *telemetry.Registry
	Runtime   bool
	SLO       *slo.Tracker
	Lifecycle *lifecycle.Table
	Pathlen   *pathlen.Collector
	Anatomy   *trace.Profiler
}

// AddStandardSources registers a source per populated surface, in a
// fixed order (telemetry, runtime, slo, conns, pathlen, anatomy).
func AddStandardSources(h *History, s Sources) {
	if s.Telemetry != nil {
		h.AddSource(NewTelemetrySource(s.Telemetry))
	}
	if s.Runtime {
		h.AddSource(NewRuntimeSource())
	}
	if s.SLO != nil {
		h.AddSource(NewSLOSource(s.SLO))
	}
	if s.Lifecycle != nil {
		h.AddSource(NewLifecycleSource(s.Lifecycle))
	}
	if s.Pathlen != nil {
		h.AddSource(NewPathlenSource(s.Pathlen))
	}
	if s.Anatomy != nil {
		h.AddSource(NewAnatomySource(s.Anatomy))
	}
}
