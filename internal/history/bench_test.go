package history

import (
	"testing"
	"time"

	"sslperf/internal/lifecycle"
	"sslperf/internal/pathlen"
	"sslperf/internal/slo"
	"sslperf/internal/telemetry"
	"sslperf/internal/trace"
)

// BenchmarkHistorySample is the sampler's cost gate: one full tick
// over every standard source (telemetry, runtime, slo, lifecycle,
// pathlen, anatomy). The committed baseline pins 0 allocs/op and an
// ns/op far under 1% of a CPU at the 1s default resolution — the
// history-sampler shape in `make checkdrift`.
func BenchmarkHistorySample(b *testing.B) {
	reg := telemetry.NewRegistry()
	tracker := slo.New(slo.Config{})
	table := lifecycle.NewTable(lifecycle.Options{})
	collector := pathlen.NewCollector()
	profiler := trace.NewProfiler()

	// Give the surfaces some state so the fold paths run, not the
	// empty-case shortcuts.
	reg.ConnOpen()
	reg.HandshakeDone("TLS_RSA_WITH_RC4_128_MD5", 0x0301, false, 2*time.Millisecond)
	reg.RecordIO(false, false, 1024)
	reg.RecordIO(true, false, 4096)
	tracker.HandshakeBegin()
	tracker.HandshakeEnd(3*time.Millisecond, false)

	h := New(Config{Interval: time.Second})
	AddStandardSources(h, Sources{
		Telemetry: reg,
		Runtime:   true,
		SLO:       tracker,
		Lifecycle: table,
		Pathlen:   collector,
		Anatomy:   profiler,
	})

	// Warm up: the first runtime/metrics read allocates its histogram
	// buffers; steady state must not.
	h.SampleNow()
	h.SampleNow()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SampleNow()
	}
}
