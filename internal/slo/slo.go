// Package slo tracks the server's handshake service-level objective
// live: rolling multi-window (10s/1m/5m) handshake-latency and
// error-rate windows, burn rate against a configurable latency target
// and error budget, and the overload gauges the admission-control
// front end reads — in-flight handshake count and accept-to-first-step
// queue delay.
//
// The burn-rate model is the standard multi-window one: an event is
// "bad" when its handshake failed or finished slower than the target;
// the burn rate is the bad fraction divided by the error budget, so
// 1.0 means "consuming exactly the allowed budget", 10 means "ten
// times too fast — the 10s window will page before the 5m window
// confirms". A fleet under overload shows the short window spiking
// first, which is precisely the early signal load shedding needs
// before queues reach the RSA step.
package slo

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Window lengths reported by Snapshot, shortest first.
var windows = []struct {
	name string
	secs int64
}{
	{"10s", 10},
	{"1m", 60},
	{"5m", 300},
}

// bucketCount is the ring length: one bucket per second, sized to the
// longest window.
const bucketCount = 300

// latBuckets is the log2 latency histogram width: bucket i holds
// durations with bit-length i nanoseconds, so 48 covers ~78 hours.
const latBuckets = 48

// bucket accumulates one wall-clock second of observations.
type bucket struct {
	sec    int64 // unix second this bucket currently holds
	total  uint64
	failed uint64
	slow   uint64 // successes over the latency target
	sumNs  uint64
	lat    [latBuckets]uint32

	queueDelays uint64
	queueSumNs  uint64
	queueMaxNs  uint64
}

func (b *bucket) reset(sec int64) {
	*b = bucket{sec: sec}
}

// Config parameterizes a Tracker.
type Config struct {
	// TargetP99 is the handshake-latency objective: a success slower
	// than this is a "bad" event against the budget. Default 50ms.
	TargetP99 time.Duration
	// ErrorBudget is the allowed bad-event fraction (0.01 = 99% of
	// handshakes fast and successful). Default 0.01.
	ErrorBudget float64
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

// A Tracker maintains the rolling windows. All methods are safe for
// concurrent use and no-ops on a nil receiver, matching the telemetry
// layer's discipline.
type Tracker struct {
	target   time.Duration
	budget   float64
	now      func() time.Time
	inflight atomic.Int64

	mu      sync.Mutex
	buckets [bucketCount]bucket
}

// New returns a tracker with cfg's objective.
func New(cfg Config) *Tracker {
	if cfg.TargetP99 <= 0 {
		cfg.TargetP99 = 50 * time.Millisecond
	}
	if cfg.ErrorBudget <= 0 {
		cfg.ErrorBudget = 0.01
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Tracker{target: cfg.TargetP99, budget: cfg.ErrorBudget, now: cfg.Now}
}

// Target returns the latency objective.
func (t *Tracker) Target() time.Duration {
	if t == nil {
		return 0
	}
	return t.target
}

// bucketFor returns the ring bucket for sec, resetting it when it
// still holds an older second. Callers hold t.mu.
func (t *Tracker) bucketFor(sec int64) *bucket {
	b := &t.buckets[sec%bucketCount]
	if b.sec != sec {
		b.reset(sec)
	}
	return b
}

func latBucket(d time.Duration) int {
	i := bits.Len64(uint64(d))
	if i >= latBuckets {
		i = latBuckets - 1
	}
	return i
}

// HandshakeBegin counts a handshake entering flight.
func (t *Tracker) HandshakeBegin() {
	if t == nil {
		return
	}
	t.inflight.Add(1)
}

// HandshakeEnd records one handshake outcome and releases its
// in-flight slot.
func (t *Tracker) HandshakeEnd(d time.Duration, failed bool) {
	if t == nil {
		return
	}
	t.inflight.Add(-1)
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	b := t.bucketFor(t.now().Unix())
	b.total++
	b.sumNs += uint64(d)
	b.lat[latBucket(d)]++
	if failed {
		b.failed++
	} else if d > t.target {
		b.slow++
	}
	t.mu.Unlock()
}

// ObserveQueueDelay records one accept-to-first-step delay: how long
// an accepted connection waited before the handshake FSM touched it —
// the queue-pressure gauge.
func (t *Tracker) ObserveQueueDelay(d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	b := t.bucketFor(t.now().Unix())
	b.queueDelays++
	b.queueSumNs += uint64(d)
	if uint64(d) > b.queueMaxNs {
		b.queueMaxNs = uint64(d)
	}
	t.mu.Unlock()
}

// InFlight returns the current in-flight handshake count.
func (t *Tracker) InFlight() int64 {
	if t == nil {
		return 0
	}
	return t.inflight.Load()
}

// Reset zeroes every window (the in-flight gauge is live state and is
// preserved).
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.buckets {
		t.buckets[i] = bucket{}
	}
	t.mu.Unlock()
}

// WindowStats is one window's aggregated view.
type WindowStats struct {
	Window  string `json:"window"`
	Seconds int64  `json:"seconds"`

	Handshakes uint64 `json:"handshakes"`
	Failed     uint64 `json:"failed"`
	Slow       uint64 `json:"slow"` // successes over target

	ErrorRate float64 `json:"error_rate"`
	BadRate   float64 `json:"bad_rate"` // (failed+slow)/handshakes
	// BurnRate is BadRate over the error budget: 1.0 consumes the
	// budget exactly, >1 burns it down.
	BurnRate float64 `json:"burn_rate"`

	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`

	QueueDelays     uint64  `json:"queue_delays"`
	QueueMeanUs     float64 `json:"queue_mean_us"`
	QueueMaxUs      float64 `json:"queue_max_us"`
	HandshakeRate   float64 `json:"handshakes_per_sec"`
	windowLatTotals [latBuckets]uint64
}

// A Snapshot is the /debug/slo body.
type Snapshot struct {
	At          time.Time     `json:"at"`
	TargetP99Ms float64       `json:"target_p99_ms"`
	ErrorBudget float64       `json:"error_budget"`
	InFlight    int64         `json:"inflight_handshakes"`
	Windows     []WindowStats `json:"windows"`
}

// Snapshot aggregates the ring into the three windows.
func (t *Tracker) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	now := t.now()
	nowSec := now.Unix()
	snap := Snapshot{
		At:          now,
		TargetP99Ms: float64(t.target) / float64(time.Millisecond),
		ErrorBudget: t.budget,
		InFlight:    t.inflight.Load(),
	}
	t.mu.Lock()
	for _, w := range windows {
		snap.Windows = append(snap.Windows, t.statsLocked(nowSec, w.name, w.secs))
	}
	t.mu.Unlock()
	return snap
}

// statsLocked aggregates one window from the ring. Callers hold t.mu.
func (t *Tracker) statsLocked(nowSec int64, name string, secs int64) WindowStats {
	ws := WindowStats{Window: name, Seconds: secs}
	var sumNs, qSumNs, qMaxNs uint64
	for i := range t.buckets {
		b := &t.buckets[i]
		// The current second is included; stale slots (sec outside
		// the window) are skipped rather than reset, so Snapshot
		// never disturbs writer state.
		if b.sec > nowSec-secs && b.sec <= nowSec {
			ws.Handshakes += b.total
			ws.Failed += b.failed
			ws.Slow += b.slow
			sumNs += b.sumNs
			for j, n := range b.lat {
				ws.windowLatTotals[j] += uint64(n)
			}
			ws.QueueDelays += b.queueDelays
			qSumNs += b.queueSumNs
			if b.queueMaxNs > qMaxNs {
				qMaxNs = b.queueMaxNs
			}
		}
	}
	if ws.Handshakes > 0 {
		ws.ErrorRate = float64(ws.Failed) / float64(ws.Handshakes)
		ws.BadRate = float64(ws.Failed+ws.Slow) / float64(ws.Handshakes)
		ws.BurnRate = ws.BadRate / t.budget
		ws.MeanUs = float64(sumNs) / float64(ws.Handshakes) / 1e3
		ws.P50Us = quantileUs(ws.windowLatTotals[:], ws.Handshakes, 0.50)
		ws.P99Us = quantileUs(ws.windowLatTotals[:], ws.Handshakes, 0.99)
		ws.HandshakeRate = float64(ws.Handshakes) / float64(secs)
	}
	if ws.QueueDelays > 0 {
		ws.QueueMeanUs = float64(qSumNs) / float64(ws.QueueDelays) / 1e3
		ws.QueueMaxUs = float64(qMaxNs) / 1e3
	}
	return ws
}

// Stats aggregates the trailing seconds-long window without
// allocating — the accessor the history sampler reads each tick where
// Snapshot would build the full three-window slice. The Window name
// field is left empty (naming it would allocate). A nil tracker reads
// zero stats.
func (t *Tracker) Stats(seconds int64) WindowStats {
	if t == nil {
		return WindowStats{}
	}
	if seconds <= 0 {
		seconds = windows[0].secs
	}
	if seconds > bucketCount {
		seconds = bucketCount
	}
	nowSec := t.now().Unix()
	t.mu.Lock()
	ws := t.statsLocked(nowSec, "", seconds)
	t.mu.Unlock()
	return ws
}

// quantileUs estimates the q-quantile in microseconds from a log2
// nanosecond histogram, using each bucket's geometric midpoint (the
// same convention as telemetry's ValueHistogram).
func quantileUs(lat []uint64, total uint64, q float64) float64 {
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range lat {
		seen += n
		if seen >= rank {
			lo := float64(uint64(1) << max(i-1, 0))
			hi := float64(uint64(1) << i)
			return math.Sqrt(lo*hi) / 1e3
		}
	}
	return 0
}

// Window returns the named window's stats from s (zero stats when the
// name is unknown) — the convenience /debug/health's burn check uses.
func (s Snapshot) Window(name string) WindowStats {
	for _, w := range s.Windows {
		if w.Window == name {
			return w
		}
	}
	return WindowStats{}
}
