package slo

import (
	"math"
	"testing"
	"time"
)

// testClock is an injectable clock stepped by the test.
type testClock struct{ at time.Time }

func (c *testClock) now() time.Time { return c.at }

func newTestTracker(target time.Duration) (*Tracker, *testClock) {
	clk := &testClock{at: time.Unix(1_000_000, 0)}
	t := New(Config{TargetP99: target, ErrorBudget: 0.01, Now: clk.now})
	return t, clk
}

func TestWindowsAggregate(t *testing.T) {
	tr, clk := newTestTracker(50 * time.Millisecond)
	// 8 fast successes, 1 slow success, 1 failure in the current second.
	for i := 0; i < 8; i++ {
		tr.HandshakeBegin()
		tr.HandshakeEnd(10*time.Millisecond, false)
	}
	tr.HandshakeBegin()
	tr.HandshakeEnd(80*time.Millisecond, false) // slow: over the 50ms target
	tr.HandshakeBegin()
	tr.HandshakeEnd(5*time.Millisecond, true)

	snap := tr.Snapshot()
	for _, name := range []string{"10s", "1m", "5m"} {
		w := snap.Window(name)
		if w.Handshakes != 10 || w.Failed != 1 || w.Slow != 1 {
			t.Fatalf("%s window: handshakes=%d failed=%d slow=%d, want 10/1/1",
				name, w.Handshakes, w.Failed, w.Slow)
		}
		if math.Abs(w.ErrorRate-0.1) > 1e-9 {
			t.Fatalf("%s error rate %v, want 0.1", name, w.ErrorRate)
		}
		if math.Abs(w.BadRate-0.2) > 1e-9 {
			t.Fatalf("%s bad rate %v, want 0.2", name, w.BadRate)
		}
		// burn = bad rate / budget = 0.2 / 0.01
		if math.Abs(w.BurnRate-20) > 1e-9 {
			t.Fatalf("%s burn rate %v, want 20", name, w.BurnRate)
		}
	}

	// Advance 15s: the 10s window empties, 1m and 5m retain.
	clk.at = clk.at.Add(15 * time.Second)
	snap = tr.Snapshot()
	if w := snap.Window("10s"); w.Handshakes != 0 {
		t.Fatalf("10s window retained %d handshakes after 15s", w.Handshakes)
	}
	if w := snap.Window("1m"); w.Handshakes != 10 {
		t.Fatalf("1m window lost events: %d, want 10", w.Handshakes)
	}

	// Advance past 5m: everything ages out.
	clk.at = clk.at.Add(6 * time.Minute)
	if w := tr.Snapshot().Window("5m"); w.Handshakes != 0 {
		t.Fatalf("5m window retained %d handshakes after 6m", w.Handshakes)
	}
}

func TestQuantilesApproximate(t *testing.T) {
	tr, _ := newTestTracker(time.Second)
	for i := 0; i < 100; i++ {
		tr.HandshakeBegin()
		tr.HandshakeEnd(10*time.Millisecond, false)
	}
	w := tr.Snapshot().Window("10s")
	// Log2 buckets: the estimate must land within a factor of 2.
	if w.P50Us < 5000 || w.P50Us > 20000 {
		t.Fatalf("p50 %vus implausible for 10ms population", w.P50Us)
	}
	if w.P99Us < w.P50Us {
		t.Fatalf("p99 %v below p50 %v", w.P99Us, w.P50Us)
	}
	if math.Abs(w.MeanUs-10000) > 100 {
		t.Fatalf("mean %vus, want ~10000", w.MeanUs)
	}
}

func TestInFlightGauge(t *testing.T) {
	tr, _ := newTestTracker(0)
	tr.HandshakeBegin()
	tr.HandshakeBegin()
	if got := tr.InFlight(); got != 2 {
		t.Fatalf("inflight %d, want 2", got)
	}
	tr.HandshakeEnd(time.Millisecond, false)
	if got := tr.InFlight(); got != 1 {
		t.Fatalf("inflight %d, want 1", got)
	}
	// Reset preserves the live gauge.
	tr.Reset()
	if got := tr.InFlight(); got != 1 {
		t.Fatalf("inflight %d after reset, want 1", got)
	}
	if w := tr.Snapshot().Window("5m"); w.Handshakes != 0 {
		t.Fatalf("reset left %d handshakes", w.Handshakes)
	}
}

func TestQueueDelay(t *testing.T) {
	tr, _ := newTestTracker(0)
	tr.ObserveQueueDelay(2 * time.Millisecond)
	tr.ObserveQueueDelay(6 * time.Millisecond)
	w := tr.Snapshot().Window("10s")
	if w.QueueDelays != 2 {
		t.Fatalf("queue delays %d, want 2", w.QueueDelays)
	}
	if math.Abs(w.QueueMeanUs-4000) > 1 {
		t.Fatalf("queue mean %vus, want 4000", w.QueueMeanUs)
	}
	if math.Abs(w.QueueMaxUs-6000) > 1 {
		t.Fatalf("queue max %vus, want 6000", w.QueueMaxUs)
	}
}

// TestRingReuse drives the clock across more than one full ring
// revolution: stale slots must be recycled, not double-counted.
func TestRingReuse(t *testing.T) {
	tr, clk := newTestTracker(0)
	for i := 0; i < 2*bucketCount; i++ {
		tr.HandshakeBegin()
		tr.HandshakeEnd(time.Millisecond, false)
		clk.at = clk.at.Add(time.Second)
	}
	// One event per second, the last one second before "now" (the
	// clock steps after each event), so a w-second window holds w-1.
	snap := tr.Snapshot()
	if w := snap.Window("10s"); w.Handshakes != 9 {
		t.Fatalf("10s window %d handshakes after ring wrap, want 9", w.Handshakes)
	}
	if w := snap.Window("5m"); w.Handshakes != 299 {
		t.Fatalf("5m window %d handshakes after ring wrap, want 299", w.Handshakes)
	}
}

func TestNilTracker(t *testing.T) {
	var tr *Tracker
	tr.HandshakeBegin()
	tr.HandshakeEnd(time.Second, true)
	tr.ObserveQueueDelay(time.Second)
	tr.Reset()
	if tr.InFlight() != 0 || tr.Target() != 0 {
		t.Fatal("nil tracker leaked state")
	}
	if snap := tr.Snapshot(); len(snap.Windows) != 0 {
		t.Fatal("nil tracker produced windows")
	}
}
