package slo

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"sslperf/internal/debughttp"
)

// Text renders the snapshot as an aligned table.
func (s Snapshot) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SLO: handshake p99 target %.1fms, error budget %.2f%%, %d handshakes in flight\n",
		s.TargetP99Ms, s.ErrorBudget*100, s.InFlight)
	fmt.Fprintf(&sb, "%-6s %10s %8s %6s %9s %8s %9s %9s %9s %10s %10s\n",
		"window", "handshakes", "hs/s", "failed", "err-rate", "burn", "mean-us", "p50-us", "p99-us", "q-mean-us", "q-max-us")
	for _, w := range s.Windows {
		fmt.Fprintf(&sb, "%-6s %10d %8.1f %6d %8.2f%% %8.2f %9.0f %9.0f %9.0f %10.0f %10.0f\n",
			w.Window, w.Handshakes, w.HandshakeRate, w.Failed, w.ErrorRate*100,
			w.BurnRate, w.MeanUs, w.P50Us, w.P99Us, w.QueueMeanUs, w.QueueMaxUs)
	}
	return sb.String()
}

// JSON marshals the snapshot indented.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Register mounts the SLO observatory on mux:
//
//	/debug/slo  burn-rate windows, latency quantiles, and overload
//	            gauges (?format=text for the aligned table)
func Register(mux *http.ServeMux, t *Tracker) {
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, req *http.Request) {
		snap := t.Snapshot()
		debughttp.Serve(w, req, snap.Text, snap.JSON)
	})
}
