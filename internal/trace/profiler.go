package trace

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"
	"sync"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/perf"
)

// latBuckets covers step latencies from <1µs to ~8.4s in power-of-two
// microsecond buckets plus one overflow bucket — the same geometry as
// telemetry's histograms, but plain counters: the profiler folds under
// one short mutex, so atomics would buy nothing.
const latBuckets = 25

func latBucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	i := bits.Len64(uint64(us))
	if us&(us-1) == 0 {
		i--
	}
	if i >= latBuckets {
		i = latBuckets - 1
	}
	return i
}

func latBucketBound(i int) time.Duration {
	if i >= latBuckets-1 {
		return 0 // unbounded
	}
	return time.Microsecond << uint(i)
}

// latHist is a single-owner latency histogram with quantile readout.
type latHist struct {
	counts [latBuckets]uint64
	count  uint64
	sum    time.Duration
	max    time.Duration
}

func (h *latHist) observe(d time.Duration) {
	h.counts[latBucketFor(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// quantile reports q as the upper bound of the containing bucket; the
// overflow bucket reports the observed max.
func (h *latHist) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if b := latBucketBound(i); b != 0 {
				return b
			}
			return h.max
		}
	}
	return h.max
}

// stepStat accumulates one handshake step across sampled traces.
type stepStat struct {
	hist latHist
}

// cryptoStat accumulates one crypto function across sampled traces.
type cryptoStat struct {
	count uint64
	total time.Duration
}

// A Profiler folds sampled traces online into live paper-equivalents:
// per-step cycle shares and latency quantiles (Table 2) and crypto
// attribution by function and category (Table 3). Folding happens at
// trace completion, so a snapshot is O(steps), never O(traces).
type Profiler struct {
	mu         sync.Mutex
	traces     uint64
	handshakes uint64 // traces that carried step spans
	stepOrder  []string
	steps      map[string]*stepStat
	fnOrder    []string
	fns        map[string]*cryptoStat
	stepTotal  time.Duration // summed step time across folded traces
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{
		steps: make(map[string]*stepStat),
		fns:   make(map[string]*cryptoStat),
	}
}

// Reset drops everything the profiler has folded so far, so a drift
// window (e.g. one load-generator run) can be measured from a clean
// slate instead of the process lifetime. Traces finishing concurrently
// fold entirely before or entirely after the cut.
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.traces = 0
	p.handshakes = 0
	p.stepOrder = nil
	p.steps = make(map[string]*stepStat)
	p.fnOrder = nil
	p.fns = make(map[string]*cryptoStat)
	p.stepTotal = 0
	p.mu.Unlock()
}

// fold merges one completed trace. Step spans feed the per-step
// histograms; crypto and record spans feed the function attribution.
func (p *Profiler) fold(td *TraceData) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.traces++
	sawStep := false
	for i := range td.Spans {
		sp := &td.Spans[i]
		switch sp.Category {
		case CatStep:
			sawStep = true
			st := p.steps[sp.Name]
			if st == nil {
				st = &stepStat{}
				p.steps[sp.Name] = st
				p.stepOrder = append(p.stepOrder, sp.Name)
			}
			st.hist.observe(sp.Duration)
			p.stepTotal += sp.Duration
		case CatCrypto:
			cs := p.fns[sp.Name]
			if cs == nil {
				cs = &cryptoStat{}
				p.fns[sp.Name] = cs
				p.fnOrder = append(p.fnOrder, sp.Name)
			}
			cs.count++
			cs.total += sp.Duration
		}
	}
	if sawStep {
		p.handshakes++
	}
}

// SharesInto fills shares[i] with the percentage of total step time
// currently attributed to step names[i] (0 for unseen steps), and
// returns total crypto time as a percentage of step time — the same
// numbers an AnatomySnapshot renders, read under one lock with no
// allocation, for the history sampler's 1s tick. shares must be at
// least as long as names. A nil profiler reads all zeros.
func (p *Profiler) SharesInto(names []string, shares []float64) (cryptoSharePct float64) {
	for i := range names {
		shares[i] = 0
	}
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stepTotal <= 0 {
		return 0
	}
	for i, name := range names {
		if st := p.steps[name]; st != nil {
			shares[i] = 100 * float64(st.hist.sum) / float64(p.stepTotal)
		}
	}
	var cryptoTotal time.Duration
	for _, cs := range p.fns {
		cryptoTotal += cs.total
	}
	return 100 * float64(cryptoTotal) / float64(p.stepTotal)
}

// AnatomyStep is one live Table 2 row.
type AnatomyStep struct {
	Name     string  `json:"name"`
	Count    uint64  `json:"count"`
	MeanKcyc float64 `json:"mean_kcycles"`
	P50Kcyc  float64 `json:"p50_kcycles"`
	P95Kcyc  float64 `json:"p95_kcycles"`
	P99Kcyc  float64 `json:"p99_kcycles"`
	MaxKcyc  float64 `json:"max_kcycles"`
	SharePct float64 `json:"share_pct"`

	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
}

// AnatomyCrypto is one live Table 3 attribution row.
type AnatomyCrypto struct {
	Name     string  `json:"name"`
	Category string  `json:"category"`
	Count    uint64  `json:"count"`
	MeanKcyc float64 `json:"mean_kcycles"`
	SharePct float64 `json:"share_pct"` // share of total step time
}

// AnatomyCategory is one Table 3 category summary row.
type AnatomyCategory struct {
	Name     string  `json:"name"`
	Kcyc     float64 `json:"kcycles_per_handshake"`
	SharePct float64 `json:"share_pct"`
}

// An AnatomySnapshot is the profiler's current state: the continuous
// Tables 2 and 3, derived from sampled production traffic.
type AnatomySnapshot struct {
	At         time.Time         `json:"at"`
	Traces     uint64            `json:"traces"`
	Handshakes uint64            `json:"handshakes"`
	Steps      []AnatomyStep     `json:"steps,omitempty"`
	Crypto     []AnatomyCrypto   `json:"crypto,omitempty"`
	Categories []AnatomyCategory `json:"categories,omitempty"`
	// CryptoSharePct is total crypto time as a share of total step
	// time — the paper's "total crypto operations 95.0%" row.
	CryptoSharePct float64 `json:"crypto_share_pct"`
}

func kcyc(d time.Duration) float64 { return perf.Cycles(d) / 1000 }

// Snapshot renders the profiler's accumulated state.
func (p *Profiler) Snapshot() AnatomySnapshot {
	if p == nil {
		return AnatomySnapshot{At: time.Now()}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := AnatomySnapshot{
		At:         time.Now(),
		Traces:     p.traces,
		Handshakes: p.handshakes,
	}
	for _, name := range p.stepOrder {
		st := p.steps[name]
		h := &st.hist
		mean := time.Duration(0)
		if h.count > 0 {
			mean = h.sum / time.Duration(h.count)
		}
		share := 0.0
		if p.stepTotal > 0 {
			share = 100 * float64(h.sum) / float64(p.stepTotal)
		}
		p50, p95, p99 := h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)
		s.Steps = append(s.Steps, AnatomyStep{
			Name: name, Count: h.count,
			MeanKcyc: kcyc(mean),
			P50Kcyc:  kcyc(p50), P95Kcyc: kcyc(p95), P99Kcyc: kcyc(p99),
			MaxKcyc: kcyc(h.max), SharePct: share,
			P50: p50, P95: p95, P99: p99,
		})
	}
	cats := map[string]time.Duration{}
	var catOrder []string
	var cryptoTotal time.Duration
	for _, name := range p.fnOrder {
		cs := p.fns[name]
		mean := time.Duration(0)
		if p.handshakes > 0 {
			mean = cs.total / time.Duration(p.handshakes)
		}
		share := 0.0
		if p.stepTotal > 0 {
			share = 100 * float64(cs.total) / float64(p.stepTotal)
		}
		cat := handshake.CategoryOf(name)
		if _, ok := cats[cat]; !ok {
			catOrder = append(catOrder, cat)
		}
		cats[cat] += cs.total
		cryptoTotal += cs.total
		s.Crypto = append(s.Crypto, AnatomyCrypto{
			Name: name, Category: cat, Count: cs.count,
			MeanKcyc: kcyc(mean), SharePct: share,
		})
	}
	for _, cat := range catOrder {
		perHS := time.Duration(0)
		if p.handshakes > 0 {
			perHS = cats[cat] / time.Duration(p.handshakes)
		}
		share := 0.0
		if p.stepTotal > 0 {
			share = 100 * float64(cats[cat]) / float64(p.stepTotal)
		}
		s.Categories = append(s.Categories, AnatomyCategory{
			Name: cat, Kcyc: kcyc(perHS), SharePct: share,
		})
	}
	if p.stepTotal > 0 {
		s.CryptoSharePct = 100 * float64(cryptoTotal) / float64(p.stepTotal)
	}
	return s
}

// JSON renders the snapshot as indented JSON.
func (s AnatomySnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the snapshot as the live Tables 2 and 3.
func (s AnatomySnapshot) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "live anatomy (%d sampled traces, %d handshakes, model %.2f GHz)\n\n",
		s.Traces, s.Handshakes, perf.ModelGHz())

	steps := perf.NewTable("handshake steps (continuous Table 2, kcycles)",
		"step", "n", "mean", "p50", "p95", "p99", "max", "share")
	for _, st := range s.Steps {
		steps.AddRow(st.Name, fmt.Sprint(st.Count),
			fmt.Sprintf("%.1f", st.MeanKcyc),
			fmt.Sprintf("%.1f", st.P50Kcyc),
			fmt.Sprintf("%.1f", st.P95Kcyc),
			fmt.Sprintf("%.1f", st.P99Kcyc),
			fmt.Sprintf("%.1f", st.MaxKcyc),
			fmt.Sprintf("%.2f%%", st.SharePct))
	}
	sb.WriteString(steps.String())

	if len(s.Crypto) > 0 {
		sb.WriteByte('\n')
		fns := perf.NewTable("crypto attribution (continuous Table 3)",
			"function", "category", "n", "kcycles/hs", "share")
		for _, c := range s.Crypto {
			fns.AddRow(c.Name, c.Category, fmt.Sprint(c.Count),
				fmt.Sprintf("%.1f", c.MeanKcyc),
				fmt.Sprintf("%.2f%%", c.SharePct))
		}
		sb.WriteString(fns.String())
	}

	if len(s.Categories) > 0 {
		sb.WriteByte('\n')
		cats := perf.NewTable("crypto categories",
			"category", "kcycles/hs", "share")
		for _, c := range s.Categories {
			cats.AddRow(c.Name, fmt.Sprintf("%.1f", c.Kcyc),
				fmt.Sprintf("%.2f%%", c.SharePct))
		}
		cats.AddRow("total crypto operations", "", fmt.Sprintf("%.2f%%", s.CryptoSharePct))
		sb.WriteString(cats.String())
	}
	return sb.String()
}
