package trace

import (
	"encoding/json"
	"testing"
	"time"
)

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(Config{})
	base := time.Now()

	// Two handshake traces whose get_client_kx steps feed one batch.
	var refs []Ref
	for i := 0; i < 2; i++ {
		ct := tr.ConnBegin(uint64(10+i), "server")
		hs := ct.Begin("handshake", CatConn, 0)
		step := ct.Begin("get_client_kx", CatStep, hs)
		refs = append(refs, ct.Ref())
		ct.End(step, 2*time.Millisecond)
		ct.End(hs, -1)
		ct.Finish("ok")
	}
	tr.EngineSpan("rsa_batch", "size=2", base, 4*time.Millisecond, refs)

	b, err := tr.Chrome()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			PID  uint64         `json:"pid"`
			TID  uint64         `json:"tid"`
			BP   string         `json:"bp"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var complete, meta, flowS, flowF, engine int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			if e.Cat == CatEngine {
				engine++
				if e.PID != chromePIDEngine {
					t.Errorf("engine span on pid %d", e.PID)
				}
				links, ok := e.Args["links"].([]any)
				if !ok || len(links) != 2 {
					t.Errorf("engine span links = %v", e.Args["links"])
				}
			} else if e.PID != chromePIDConns {
				t.Errorf("%s span on pid %d", e.Cat, e.PID)
			}
		case "M":
			meta++
		case "s":
			flowS++
		case "f":
			flowF++
			if e.BP != "e" {
				t.Errorf("flow finish without bp=e")
			}
		}
	}
	if complete != 5 { // 2×(handshake+step) + 1 batch
		t.Fatalf("complete events = %d, want 5", complete)
	}
	if engine != 1 {
		t.Fatalf("engine spans = %d, want 1", engine)
	}
	// One flow arrow per linked handshake span.
	if flowS != 2 || flowF != 2 {
		t.Fatalf("flow events = %d starts / %d finishes, want 2/2", flowS, flowF)
	}
	if meta < 4 { // 2 process names + rsabatch thread + ≥2 conn threads... at least 4
		t.Fatalf("metadata events = %d", meta)
	}
}

func TestChromeEmptyTracerLoads(t *testing.T) {
	b, err := NewTracer(Config{}).Chrome()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("no traceEvents key")
	}
}
