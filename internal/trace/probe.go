package trace

import (
	"fmt"

	"sslperf/internal/probe"
)

// probeSink turns spine events into spans on one connection's trace:
// step enter/exit become step spans under the handshake span, crypto
// calls become crypto events inside the open step, and record-layer
// work becomes either a Table 2 crypto event (inside a step) or a
// record span (bulk phase). It runs on the connection's goroutine
// only.
type probeSink struct {
	ct     *ConnTrace
	parent uint64 // the top-level handshake span
	cur    uint64 // the open step span
}

// ProbeSink returns the probe sink that builds ct's handshake spans
// under the given parent span, or nil when ct is nil (so the bus's
// nil-sink filtering keeps the fast path on).
func ProbeSink(ct *ConnTrace, parent uint64) probe.Sink {
	if ct == nil {
		return nil
	}
	return &probeSink{ct: ct, parent: parent}
}

// Emit implements probe.Sink.
func (s *probeSink) Emit(e probe.Event) {
	switch e.Kind {
	case probe.KindStepEnter:
		s.cur = s.ct.Begin(e.Step.Name(), CatStep, s.parent)
	case probe.KindStepExit:
		// The spine reports cumulative in-step time, which excludes
		// I/O waits the wall clock would charge; pass it through.
		s.ct.End(s.cur, e.Dur)
		s.cur = 0
	case probe.KindCrypto:
		s.ct.Event(e.Fn, CatCrypto, s.cur, e.At, e.Dur)
	case probe.KindRecordCrypto:
		if e.Step != probe.StepNone {
			// Finished-message work inside a step: the same Table 2
			// rows (pri_encryption/pri_decryption/mac) the offline
			// anatomy reports.
			s.ct.Event(e.Op.StepFn(), CatCrypto, s.cur, e.At, e.Dur)
		} else {
			s.ct.Event(e.Op.String(), CatRecord, 0, e.At, e.Dur)
		}
	}
}

// engineSink folds engine-span events into the tracer's engine ring.
type engineSink struct {
	t *Tracer
}

// EngineSink returns the probe sink that records engine spans (e.g.
// executed RSA batches) on t, or nil when t is nil.
func EngineSink(t *Tracer) probe.Sink {
	if t == nil {
		return nil
	}
	return engineSink{t: t}
}

// Emit implements probe.Sink.
func (s engineSink) Emit(e probe.Event) {
	if e.Kind != probe.KindEngineSpan {
		return
	}
	s.t.EngineSpan(e.Fn, fmt.Sprintf("size=%d", e.Value), e.At, e.Dur, e.Links)
}
