package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndConnTraceAreNoOps(t *testing.T) {
	var tr *Tracer
	if ct := tr.ConnBegin(1, "server"); ct != nil {
		t.Fatal("nil tracer sampled a connection")
	}
	tr.EngineSpan("x", "", time.Now(), time.Millisecond, nil)
	if got := tr.Traces(); got != nil {
		t.Fatalf("nil tracer Traces() = %v", got)
	}
	if got := tr.Stats(); got != (Stats{}) {
		t.Fatalf("nil tracer Stats() = %+v", got)
	}
	if tr.Profiler() != nil {
		t.Fatal("nil tracer returned a profiler")
	}

	var ct *ConnTrace
	id := ct.Begin("x", CatStep, 0)
	ct.End(id, time.Millisecond)
	ct.Event("y", CatCrypto, 0, time.Now(), time.Millisecond)
	ct.SetDetail(1, "d")
	ct.SetConn(7)
	ct.Fold()
	ct.Finish("ok")
	if ct.TraceID() != 0 {
		t.Fatal("nil ConnTrace has a trace ID")
	}
	if ct.Ref() != (Ref{}) {
		t.Fatal("nil ConnTrace returned a non-zero Ref")
	}
}

func TestSamplingModulus(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 16; i++ {
		if ct := tr.ConnBegin(uint64(i), "server"); ct != nil {
			sampled++
			ct.Finish("ok")
		}
	}
	if sampled != 4 {
		t.Fatalf("SampleEvery=4 over 16 connections sampled %d, want 4", sampled)
	}
	st := tr.Stats()
	if st.Seen != 16 || st.Sampled != 4 || st.Finished != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRateLimit(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1, MaxPerSec: 2})
	sampled := 0
	for i := 0; i < 10; i++ {
		if ct := tr.ConnBegin(uint64(i), "server"); ct != nil {
			sampled++
		}
	}
	if sampled != 2 {
		t.Fatalf("MaxPerSec=2 sampled %d in one burst, want 2", sampled)
	}
	if st := tr.Stats(); st.RateLimited != 8 {
		t.Fatalf("RateLimited = %d, want 8", st.RateLimited)
	}
}

func TestSpanLifecycleAndPublish(t *testing.T) {
	tr := NewTracer(Config{})
	ct := tr.ConnBegin(42, "server")
	if ct == nil {
		t.Fatal("default config did not sample")
	}
	hs := ct.Begin("handshake", CatConn, 0)
	step := ct.Begin("get_client_kx", CatStep, hs)
	ct.Event("rsa_decrypt", CatCrypto, step, time.Now(), 3*time.Millisecond)
	ct.End(step, 5*time.Millisecond) // explicit elapsed override
	ct.End(hs, -1)                   // wall clock
	ct.SetDetail(hs, "RSA-RC4-SHA")
	ct.Finish("ok")
	ct.Finish("again") // idempotent: first outcome wins

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	td := traces[0]
	if td.Conn != 42 || td.Role != "server" || td.Outcome != "ok" {
		t.Fatalf("trace = %+v", td)
	}
	if len(td.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(td.Spans))
	}
	byName := map[string]*Span{}
	for i := range td.Spans {
		byName[td.Spans[i].Name] = &td.Spans[i]
	}
	if byName["get_client_kx"].Duration != 5*time.Millisecond {
		t.Fatalf("explicit elapsed not honored: %v", byName["get_client_kx"].Duration)
	}
	if byName["rsa_decrypt"].Parent != byName["get_client_kx"].ID {
		t.Fatal("crypto span not parented under its step")
	}
	if byName["handshake"].Detail != "RSA-RC4-SHA" {
		t.Fatalf("detail = %q", byName["handshake"].Detail)
	}
	if byName["handshake"].Duration <= 0 {
		t.Fatal("wall-clock duration not stamped")
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	tr := NewTracer(Config{})
	ct := tr.ConnBegin(1, "server")
	ct.Begin("handshake", CatConn, 0) // never ended
	ct.Finish("io_error")
	td := tr.Traces()[0]
	if td.Spans[0].Duration <= 0 {
		t.Fatal("Finish left an open span with zero duration")
	}
	if td.Outcome != "io_error" {
		t.Fatalf("outcome = %q", td.Outcome)
	}
}

func TestRefTracksCurrentStep(t *testing.T) {
	tr := NewTracer(Config{})
	ct := tr.ConnBegin(1, "server")
	if ref := ct.Ref(); ref.Trace != ct.TraceID() || ref.Span != 0 {
		t.Fatalf("pre-step Ref = %+v", ref)
	}
	step := ct.Begin("get_client_kx", CatStep, 0)
	if ref := ct.Ref(); ref.Span != step {
		t.Fatalf("in-step Ref = %+v, want span %d", ct.Ref(), step)
	}
}

func TestEngineSpansRetainedAndCounted(t *testing.T) {
	tr := NewTracer(Config{EngineRingSize: 4})
	for i := 0; i < 6; i++ {
		tr.EngineSpan("rsa_batch", fmt.Sprintf("size=%d", i), time.Now(),
			time.Millisecond, []Ref{{Trace: 1, Span: uint64(i)}})
	}
	spans := tr.EngineSpans()
	if len(spans) != 4 {
		t.Fatalf("ring of 4 retained %d spans", len(spans))
	}
	// Oldest-first: the ring was lapped, so the oldest survivor is #2.
	if spans[0].Detail != "size=2" || spans[3].Detail != "size=5" {
		t.Fatalf("snapshot order wrong: %q .. %q", spans[0].Detail, spans[3].Detail)
	}
	if st := tr.Stats(); st.EngineSpans != 6 {
		t.Fatalf("EngineSpans stat = %d, want 6", st.EngineSpans)
	}
}

func TestTraceRingWraps(t *testing.T) {
	tr := NewTracer(Config{RingSize: 2})
	for i := 0; i < 5; i++ {
		ct := tr.ConnBegin(uint64(100+i), "server")
		ct.Finish("ok")
	}
	traces := tr.Traces()
	if len(traces) != 2 {
		t.Fatalf("ring of 2 retained %d traces", len(traces))
	}
	if traces[0].Conn != 103 || traces[1].Conn != 104 {
		t.Fatalf("wrong survivors: conn %d, %d", traces[0].Conn, traces[1].Conn)
	}
}

func TestMaxSpansFinishesTrace(t *testing.T) {
	tr := NewTracer(Config{MaxSpans: 8})
	ct := tr.ConnBegin(1, "server")
	for i := 0; i < 20; i++ {
		ct.Event("write", CatIO, 0, time.Now(), time.Microsecond)
	}
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("full trace not auto-finished (%d published)", len(traces))
	}
	if got := traces[0].Outcome; got != "span_limit" {
		t.Fatalf("outcome = %q, want span_limit", got)
	}
	if n := len(traces[0].Spans); n != 8 {
		t.Fatalf("trace grew to %d spans past MaxSpans=8", n)
	}
}

func TestFoldThenFinishCountsOnce(t *testing.T) {
	tr := NewTracer(Config{})
	ct := tr.ConnBegin(1, "server")
	s := ct.Begin("init", CatStep, 0)
	ct.End(s, time.Millisecond)
	ct.Fold()
	ct.Fold() // second fold is a no-op
	ct.Finish("ok")
	snap := tr.Profiler().Snapshot()
	if snap.Traces != 1 || snap.Handshakes != 1 {
		t.Fatalf("folded %d traces / %d handshakes, want 1/1", snap.Traces, snap.Handshakes)
	}
	if len(snap.Steps) != 1 || snap.Steps[0].Count != 1 {
		t.Fatalf("steps = %+v", snap.Steps)
	}
}

func TestConcurrentTracing(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 2, RingSize: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ct := tr.ConnBegin(uint64(g*100+i), "server")
				if ct == nil {
					continue
				}
				s := ct.Begin("init", CatStep, 0)
				ct.Event("md5", CatCrypto, s, time.Now(), time.Microsecond)
				ct.End(s, time.Microsecond)
				tr.EngineSpan("rsa_batch", "size=2", time.Now(), time.Microsecond,
					[]Ref{ct.Ref()})
				ct.Finish("ok")
			}
		}(g)
	}
	wg.Wait()
	st := tr.Stats()
	if st.Seen != 400 {
		t.Fatalf("seen = %d, want 400", st.Seen)
	}
	if st.Sampled != 200 || st.Finished != 200 {
		t.Fatalf("sampled/finished = %d/%d, want 200/200", st.Sampled, st.Finished)
	}
	if got := tr.Profiler().Snapshot().Handshakes; got != 200 {
		t.Fatalf("profiler folded %d handshakes, want 200", got)
	}
}
