package trace

import (
	"encoding/json"
	"fmt"
	"time"
)

// chromeEvent is one Chrome trace-event (the "Trace Event Format"
// consumed by chrome://tracing and Perfetto). Timestamps and durations
// are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  uint64         `json:"pid"`
	TID  uint64         `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON Object Format wrapper.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Process IDs in the exported trace: each connection is a thread of
// the "ssl connections" process; engine spans (RSA batches) run in
// their own process so cross-connection work is visually distinct.
const (
	chromePIDConns  = 1
	chromePIDEngine = 2
)

// ChromeTrace renders completed connection traces and engine spans as
// Chrome trace-event JSON. Engine spans carry args.links naming the
// handshake spans they served, plus flow events ("s"/"f" pairs) so
// Perfetto draws arrows from each linked handshake span to the batch
// that resolved it.
func ChromeTrace(traces []*TraceData, engine []*Span) ([]byte, error) {
	var base time.Time
	for _, td := range traces {
		if base.IsZero() || (!td.Start.IsZero() && td.Start.Before(base)) {
			base = td.Start
		}
	}
	for _, sp := range engine {
		if base.IsZero() || (!sp.Start.IsZero() && sp.Start.Before(base)) {
			base = sp.Start
		}
	}
	us := func(t time.Time) float64 {
		return float64(t.Sub(base).Nanoseconds()) / 1e3
	}

	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", PID: chromePIDConns,
			Args: map[string]any{"name": "ssl connections"}},
		{Name: "process_name", Ph: "M", PID: chromePIDEngine,
			Args: map[string]any{"name": "crypto engines"}},
		{Name: "thread_name", Ph: "M", PID: chromePIDEngine, TID: 1,
			Args: map[string]any{"name": "rsabatch"}},
	}}

	// spanSite locates a span for flow-event sources.
	type spanSite struct {
		tid uint64
		end time.Time
	}
	sites := map[uint64]spanSite{}

	for _, td := range traces {
		tid := td.Conn
		if tid == 0 {
			tid = td.ID
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePIDConns, TID: tid,
			Args: map[string]any{
				"name": fmt.Sprintf("conn %d (trace %d, %s, %s)", td.Conn, td.ID, td.Role, td.Outcome),
			},
		})
		for i := range td.Spans {
			sp := &td.Spans[i]
			ev := chromeEvent{
				Name: sp.Name, Cat: sp.Category, Ph: "X",
				TS: us(sp.Start), Dur: float64(sp.Duration.Nanoseconds()) / 1e3,
				PID: chromePIDConns, TID: tid,
				Args: map[string]any{"trace": td.ID, "span": sp.ID},
			}
			if sp.Detail != "" {
				ev.Args["detail"] = sp.Detail
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
			sites[sp.ID] = spanSite{tid: tid, end: sp.Start.Add(sp.Duration)}
		}
	}

	for _, sp := range engine {
		links := make([]map[string]uint64, 0, len(sp.Links))
		for _, l := range sp.Links {
			links = append(links, map[string]uint64{"trace": l.Trace, "span": l.Span})
		}
		ev := chromeEvent{
			Name: sp.Name, Cat: sp.Category, Ph: "X",
			TS: us(sp.Start), Dur: float64(sp.Duration.Nanoseconds()) / 1e3,
			PID: chromePIDEngine, TID: 1,
			Args: map[string]any{"span": sp.ID},
		}
		if sp.Detail != "" {
			ev.Args["detail"] = sp.Detail
		}
		if len(links) > 0 {
			ev.Args["links"] = links
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)

		// Flow arrows: start at each linked handshake span (when it is
		// in the export window), finish at this engine span.
		for _, l := range sp.Links {
			site, ok := sites[l.Span]
			if !ok {
				continue
			}
			doc.TraceEvents = append(doc.TraceEvents,
				chromeEvent{Name: "rsa_batch", Cat: "flow", Ph: "s", ID: l.Span,
					TS: us(site.end), PID: chromePIDConns, TID: site.tid},
				chromeEvent{Name: "rsa_batch", Cat: "flow", Ph: "f", BP: "e", ID: l.Span,
					TS: us(sp.Start), PID: chromePIDEngine, TID: 1})
		}
	}
	return json.MarshalIndent(&doc, "", " ")
}

// Chrome renders the tracer's current retained traces and engine
// spans (nil tracer: an empty, still-loadable document).
func (t *Tracer) Chrome() ([]byte, error) {
	return ChromeTrace(t.Traces(), t.EngineSpans())
}
