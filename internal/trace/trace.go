// Package trace is the per-connection span tracing pipeline for the
// SSL stack: the live, always-on counterpart of the one-shot anatomy
// harness (internal/core's Table 2/3 experiments).
//
// Every sampled connection gets a trace ID; spans cover the TCP
// accept, each of the ten handshake steps (streamed through
// handshake.StepObserver), the individual crypto calls inside them,
// record-layer seal/open work, and application I/O. The batch RSA
// engine emits engine spans *linked* to the handshake spans they
// served, so cross-connection batching causality stays visible.
//
// Overhead is bounded by design: sampling is probabilistic (1-in-N)
// plus rate-limited, completed traces land in a lock-free ring of
// atomic pointers, and a nil *Tracer (or an unsampled connection's
// nil *ConnTrace) accepts every call as a no-op costing one pointer
// test — the same discipline as internal/telemetry's nil registry.
//
// Exports are Chrome trace-event JSON (chrome://tracing / Perfetto)
// and the continuous anatomy profiler, which folds sampled spans
// online into live equivalents of the paper's Tables 2 and 3.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"sslperf/internal/probe"
)

// Span categories used by the SSL stack. Category strings become the
// "cat" field of exported Chrome trace events.
const (
	CatConn   = "conn"   // connection lifecycle (accept, handshake, close)
	CatStep   = "step"   // one of the ten handshake steps
	CatCrypto = "crypto" // a crypto call attributed inside a step
	CatRecord = "record" // record-layer cipher/MAC work
	CatIO     = "io"     // application Read/Write
	CatEngine = "engine" // cross-connection engine work (e.g. RSA batches)
)

// A Ref names a span in some trace: the link target for cross-trace
// causality (a batch span pointing at the handshake spans it served).
// The zero Ref means "no link". It is the probe spine's SpanRef, so
// engines can carry links without importing this package.
type Ref = probe.SpanRef

// A Span is one timed region. IDs are globally unique across the
// tracer so Links are unambiguous.
type Span struct {
	ID       uint64        `json:"id"`
	Parent   uint64        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Category string        `json:"cat"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"dur_ns"`
	// Detail carries one free-form attribute (suite name, batch size).
	Detail string `json:"detail,omitempty"`
	// Links point at spans in other traces that this span served.
	Links []Ref `json:"links,omitempty"`
}

// A TraceData is one completed connection trace.
type TraceData struct {
	ID      uint64    `json:"id"`
	Conn    uint64    `json:"conn"` // telemetry connection ID when known
	Role    string    `json:"role"` // "server" or "client"
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Outcome string    `json:"outcome"` // "ok", "resumed", or a failure reason
	Spans   []Span    `json:"spans"`
}

// Config tunes a Tracer. The zero value samples every connection with
// the default ring sizes and no rate limit.
type Config struct {
	// SampleEvery samples one connection in N (1 or 0 = every
	// connection). Sampling is modular over the arrival counter so a
	// steady load sees an unbiased 1/N cross-section.
	SampleEvery int

	// MaxPerSec caps sampled traces per second on top of SampleEvery
	// (0 = unlimited). The cap bounds tracing cost under connection
	// floods regardless of the sampling ratio.
	MaxPerSec int

	// RingSize is how many completed connection traces are retained
	// for /debug/trace (default 256).
	RingSize int

	// EngineRingSize is how many completed engine spans (batch spans)
	// are retained (default 1024).
	EngineRingSize int

	// MaxSpans bounds one trace's span count; a trace that fills up is
	// finished early so a chatty bulk transfer cannot grow without
	// bound (default 512).
	MaxSpans int
}

func (c Config) withDefaults() Config {
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.EngineRingSize <= 0 {
		c.EngineRingSize = 1024
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 512
	}
	return c
}

// Stats counts tracer activity.
type Stats struct {
	Seen        uint64 `json:"seen"`         // connections offered to the sampler
	Sampled     uint64 `json:"sampled"`      // traces started
	RateLimited uint64 `json:"rate_limited"` // sampling hits dropped by MaxPerSec
	Finished    uint64 `json:"finished"`     // traces completed into the ring
	EngineSpans uint64 `json:"engine_spans"` // engine spans recorded
}

// A Tracer samples connections and retains their completed traces.
// All methods are safe for concurrent use and no-ops on nil.
type Tracer struct {
	cfg Config

	seen        atomic.Uint64 // arrival counter (sampling modulus)
	traceSeq    atomic.Uint64 // trace IDs
	spanSeq     atomic.Uint64 // span IDs, global across traces
	sampled     atomic.Uint64
	rateLimited atomic.Uint64
	finished    atomic.Uint64
	engineCount atomic.Uint64

	// Token bucket for MaxPerSec, refilled a second at a time.
	tokens     atomic.Int64
	lastRefill atomic.Int64 // unix nanos of the last refill

	// Lock-free rings of completed work: writers claim a slot with an
	// atomic counter and publish with an atomic pointer store, so the
	// hot path never takes a lock and readers always see whole values.
	ring     []atomic.Pointer[TraceData]
	ringNext atomic.Uint64

	engine     []atomic.Pointer[Span]
	engineNext atomic.Uint64

	prof *Profiler
}

// NewTracer returns a tracer with cfg's sampling and retention.
func NewTracer(cfg Config) *Tracer {
	c := cfg.withDefaults()
	t := &Tracer{
		cfg:    c,
		ring:   make([]atomic.Pointer[TraceData], c.RingSize),
		engine: make([]atomic.Pointer[Span], c.EngineRingSize),
		prof:   NewProfiler(),
	}
	t.lastRefill.Store(time.Now().UnixNano())
	t.tokens.Store(int64(c.MaxPerSec))
	return t
}

// Profiler returns the online anatomy profiler fed by every finished
// trace (nil on a nil tracer).
func (t *Tracer) Profiler() *Profiler {
	if t == nil {
		return nil
	}
	return t.prof
}

// Stats snapshots the tracer counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Seen:        t.seen.Load(),
		Sampled:     t.sampled.Load(),
		RateLimited: t.rateLimited.Load(),
		Finished:    t.finished.Load(),
		EngineSpans: t.engineCount.Load(),
	}
}

// allow consumes a rate-limit token, refilling the bucket once per
// second. Lock-free: a lost refill race just delays the refill to the
// next caller.
func (t *Tracer) allow() bool {
	if t.cfg.MaxPerSec <= 0 {
		return true
	}
	now := time.Now().UnixNano()
	last := t.lastRefill.Load()
	if now-last >= int64(time.Second) && t.lastRefill.CompareAndSwap(last, now) {
		t.tokens.Store(int64(t.cfg.MaxPerSec))
	}
	return t.tokens.Add(-1) >= 0
}

// ConnBegin offers one connection to the sampler. It returns a live
// *ConnTrace for sampled connections and nil otherwise — and a nil
// *ConnTrace is itself a valid no-op recorder, so callers thread the
// result through unconditionally.
func (t *Tracer) ConnBegin(conn uint64, role string) *ConnTrace {
	if t == nil {
		return nil
	}
	n := t.seen.Add(1)
	if t.cfg.SampleEvery > 1 && n%uint64(t.cfg.SampleEvery) != 0 {
		return nil
	}
	if !t.allow() {
		t.rateLimited.Add(1)
		return nil
	}
	t.sampled.Add(1)
	return &ConnTrace{
		t: t,
		data: TraceData{
			ID:    t.traceSeq.Add(1),
			Conn:  conn,
			Role:  role,
			Start: time.Now(),
		},
	}
}

// EngineSpan records one cross-connection engine span (e.g. an RSA
// batch) with links to the handshake spans it served.
func (t *Tracer) EngineSpan(name, detail string, start time.Time, d time.Duration, links []Ref) {
	if t == nil {
		return
	}
	sp := &Span{
		ID:       t.spanSeq.Add(1),
		Name:     name,
		Category: CatEngine,
		Start:    start,
		Duration: d,
		Detail:   detail,
		Links:    links,
	}
	t.engineCount.Add(1)
	i := t.engineNext.Add(1) - 1
	t.engine[i%uint64(len(t.engine))].Store(sp)
}

// publish retires a finished trace into the ring.
func (t *Tracer) publish(td *TraceData) {
	t.finished.Add(1)
	i := t.ringNext.Add(1) - 1
	t.ring[i%uint64(len(t.ring))].Store(td)
}

// Traces returns the retained completed traces, oldest-first.
func (t *Tracer) Traces() []*TraceData {
	if t == nil {
		return nil
	}
	return ringSnapshot(t.ring, t.ringNext.Load())
}

// EngineSpans returns the retained engine spans, oldest-first.
func (t *Tracer) EngineSpans() []*Span {
	if t == nil {
		return nil
	}
	return ringSnapshot(t.engine, t.engineNext.Load())
}

// ringSnapshot copies a pointer ring oldest-first. Writers may lap the
// read, but every loaded pointer is a complete published value.
func ringSnapshot[T any](ring []atomic.Pointer[T], next uint64) []*T {
	n := uint64(len(ring))
	out := make([]*T, 0, len(ring))
	start := uint64(0)
	if next > n {
		start = next - n
	}
	for i := start; i < next; i++ {
		if v := ring[i%n].Load(); v != nil {
			out = append(out, v)
		}
	}
	return out
}

// A ConnTrace records one sampled connection's spans. The handshake
// runs on a single goroutine but record and I/O spans can arrive from
// whichever goroutine drives the connection afterwards, so the span
// buffer is guarded by a mutex — paid only by sampled connections.
// All methods are no-ops on a nil receiver.
type ConnTrace struct {
	t *Tracer

	mu       sync.Mutex
	data     TraceData
	open     map[uint64]int // span ID -> index in data.Spans
	curTrace Ref            // current step span, for engine linking
	folded   bool           // already contributed to the profiler
	done     bool
}

// TraceID returns the trace's ID (0 on nil).
func (ct *ConnTrace) TraceID() uint64 {
	if ct == nil {
		return 0
	}
	return ct.data.ID
}

// SetConn stamps the telemetry connection ID once it is known.
func (ct *ConnTrace) SetConn(conn uint64) {
	if ct == nil {
		return
	}
	ct.mu.Lock()
	ct.data.Conn = conn
	ct.mu.Unlock()
}

// Begin opens a span and returns its ID for End. Parent 0 means
// top-level.
func (ct *ConnTrace) Begin(name, category string, parent uint64) uint64 {
	if ct == nil {
		return 0
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.done {
		return 0
	}
	id := ct.t.spanSeq.Add(1)
	ct.data.Spans = append(ct.data.Spans, Span{
		ID: id, Parent: parent, Name: name, Category: category, Start: time.Now(),
	})
	if ct.open == nil {
		ct.open = make(map[uint64]int, 16)
	}
	ct.open[id] = len(ct.data.Spans) - 1
	if category == CatStep {
		ct.curTrace = Ref{Trace: ct.data.ID, Span: id}
	}
	return id
}

// End closes an open span. A non-negative elapsed overrides the
// wall-clock duration (the step observer reports cumulative elapsed
// time that excludes I/O waits).
func (ct *ConnTrace) End(id uint64, elapsed time.Duration) {
	if ct == nil || id == 0 {
		return
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	i, ok := ct.open[id]
	if !ok {
		return
	}
	delete(ct.open, id)
	sp := &ct.data.Spans[i]
	if elapsed >= 0 {
		sp.Duration = elapsed
	} else {
		sp.Duration = time.Since(sp.Start)
	}
}

// SetDetail attaches the free-form attribute to an open or closed
// span.
func (ct *ConnTrace) SetDetail(id uint64, detail string) {
	if ct == nil || id == 0 {
		return
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	for i := range ct.data.Spans {
		if ct.data.Spans[i].ID == id {
			ct.data.Spans[i].Detail = detail
			return
		}
	}
}

// Event records a completed span with explicit timing — the shape the
// after-the-fact observer callbacks (crypto calls, record ops) emit.
// A full trace finishes itself so span growth stays bounded.
func (ct *ConnTrace) Event(name, category string, parent uint64, start time.Time, d time.Duration) {
	if ct == nil {
		return
	}
	ct.mu.Lock()
	if ct.done {
		ct.mu.Unlock()
		return
	}
	ct.data.Spans = append(ct.data.Spans, Span{
		ID: ct.t.spanSeq.Add(1), Parent: parent, Name: name,
		Category: category, Start: start, Duration: d,
	})
	full := len(ct.data.Spans) >= ct.t.cfg.MaxSpans
	ct.mu.Unlock()
	if full {
		ct.Finish("span_limit")
	}
}

// Ref returns a link target for engine spans: the current handshake
// step span when one is open, else the trace itself. Safe to call
// from the connection's goroutine while workers resolve the link
// concurrently.
func (ct *ConnTrace) Ref() Ref {
	if ct == nil {
		return Ref{}
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.curTrace != (Ref{}) {
		return ct.curTrace
	}
	return Ref{Trace: ct.data.ID}
}

// Fold contributes the spans recorded so far to the anatomy profiler
// without finishing the trace. The connection calls it the moment the
// handshake completes, so /debug/anatomy reflects a handshake as soon
// as it is done rather than when its connection finally closes; the
// later Finish will not fold again. Spans recorded after Fold still
// reach the trace ring but not the profiler — by construction those
// are I/O and record spans, which the profiler ignores anyway.
func (ct *ConnTrace) Fold() {
	if ct == nil {
		return
	}
	ct.mu.Lock()
	if ct.done || ct.folded {
		ct.mu.Unlock()
		return
	}
	ct.folded = true
	td := ct.data // the spans folded are immutable once recorded
	ct.mu.Unlock()
	ct.t.prof.fold(&td)
}

// Finish completes the trace: closes any spans left open, stamps the
// outcome, publishes into the tracer's ring, and (unless Fold already
// ran) folds the trace into the anatomy profiler. Finish is
// idempotent; the first outcome wins.
func (ct *ConnTrace) Finish(outcome string) {
	if ct == nil {
		return
	}
	ct.mu.Lock()
	if ct.done {
		ct.mu.Unlock()
		return
	}
	ct.done = true
	now := time.Now()
	for id, i := range ct.open {
		sp := &ct.data.Spans[i]
		sp.Duration = now.Sub(sp.Start)
		delete(ct.open, id)
	}
	ct.data.End = now
	ct.data.Outcome = outcome
	folded := ct.folded
	td := ct.data
	ct.mu.Unlock()
	if !folded {
		ct.t.prof.fold(&td)
	}
	ct.t.publish(&td)
}
