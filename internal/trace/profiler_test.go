package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestLatBucketFor(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2}, // bucket i holds (2^(i-1), 2^i] µs
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},      // 1000µs ∈ (512, 1024]
		{time.Second, 20},           // 1e6µs ∈ (2^19, 2^20]
		{time.Hour, latBuckets - 1}, // overflow clamps
	}
	for _, c := range cases {
		if got := latBucketFor(c.d); got != c.want {
			t.Errorf("latBucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestLatHistQuantiles(t *testing.T) {
	var h latHist
	if h.quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.observe(10 * time.Microsecond)
	// Single sample: every quantile is its bucket's upper bound (16µs).
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.quantile(q); got != 16*time.Microsecond {
			t.Fatalf("single-sample quantile(%v) = %v, want 16µs", q, got)
		}
	}
	// Overflow bucket reports the observed max, not a bound.
	var o latHist
	o.observe(2 * time.Hour)
	if got := o.quantile(0.5); got != 2*time.Hour {
		t.Fatalf("overflow quantile = %v, want the max", got)
	}
	// Spread: 90 fast + 10 slow → p50 fast, p99 slow.
	var s latHist
	for i := 0; i < 90; i++ {
		s.observe(5 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		s.observe(5 * time.Millisecond)
	}
	if got := s.quantile(0.50); got != 8*time.Microsecond {
		t.Fatalf("p50 = %v, want 8µs bucket bound", got)
	}
	if got := s.quantile(0.99); got < time.Millisecond {
		t.Fatalf("p99 = %v, want in the slow band", got)
	}
}

func foldTestTrace(p *Profiler, stepDur, rsaDur time.Duration) {
	p.fold(&TraceData{
		ID: 1, Role: "server", Outcome: "ok",
		Spans: []Span{
			{ID: 1, Name: "handshake", Category: CatConn, Duration: stepDur + time.Millisecond},
			{ID: 2, Name: "get_client_kx", Category: CatStep, Duration: stepDur},
			{ID: 3, Name: "rsa_private_decryption", Category: CatCrypto, Parent: 2, Duration: rsaDur},
			{ID: 4, Name: "write", Category: CatIO, Duration: time.Millisecond},
		},
	})
}

func TestProfilerSnapshot(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 4; i++ {
		foldTestTrace(p, 10*time.Millisecond, 8*time.Millisecond)
	}
	snap := p.Snapshot()
	if snap.Traces != 4 || snap.Handshakes != 4 {
		t.Fatalf("traces/handshakes = %d/%d", snap.Traces, snap.Handshakes)
	}
	if len(snap.Steps) != 1 {
		t.Fatalf("steps = %+v", snap.Steps)
	}
	st := snap.Steps[0]
	if st.Name != "get_client_kx" || st.Count != 4 {
		t.Fatalf("step row = %+v", st)
	}
	// One step is 100% of step time; conn and io spans don't count.
	if st.SharePct < 99.9 || st.SharePct > 100.1 {
		t.Fatalf("share = %v, want 100", st.SharePct)
	}
	if st.MeanKcyc <= 0 || st.P95 < st.P50 {
		t.Fatalf("step stats malformed: %+v", st)
	}
	if len(snap.Crypto) != 1 || snap.Crypto[0].Name != "rsa_private_decryption" {
		t.Fatalf("crypto rows = %+v", snap.Crypto)
	}
	// Categorized by handshake.CategoryOf, same as the offline Table 3.
	if snap.Crypto[0].Category != "public key encryption" {
		t.Fatalf("rsa_private_decryption category = %q", snap.Crypto[0].Category)
	}
	// 8ms of 10ms step time = 80% crypto share.
	if snap.CryptoSharePct < 79 || snap.CryptoSharePct > 81 {
		t.Fatalf("crypto share = %v, want ~80", snap.CryptoSharePct)
	}
	if len(snap.Categories) != 1 || snap.Categories[0].Name != "public key encryption" {
		t.Fatalf("categories = %+v", snap.Categories)
	}
}

func TestEmptySnapshotRenders(t *testing.T) {
	p := NewProfiler()
	snap := p.Snapshot()
	if snap.Traces != 0 || len(snap.Steps) != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
	if txt := snap.Text(); !strings.Contains(txt, "0 sampled traces") {
		t.Fatalf("empty text rendering:\n%s", txt)
	}
	b, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back AnatomySnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotTextTables(t *testing.T) {
	p := NewProfiler()
	foldTestTrace(p, 10*time.Millisecond, 8*time.Millisecond)
	txt := p.Snapshot().Text()
	for _, want := range []string{
		"continuous Table 2", "get_client_kx",
		"continuous Table 3", "rsa_private_decryption", "public key encryption",
		"total crypto operations",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("text missing %q:\n%s", want, txt)
		}
	}
}
