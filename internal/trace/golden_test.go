package trace_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"sslperf/internal/baseline"
	"sslperf/internal/handshake"
	"sslperf/internal/perf"
	"sslperf/internal/probe"
	"sslperf/internal/trace"
)

// goldenDur is the synthetic per-step latency of the recorded
// handshake; get_client_kx gets goldenKXDur so the paper's dominance
// shape holds, with goldenRSADur of it attributed to the RSA private
// decryption.
const (
	goldenDur    = 10 * time.Millisecond
	goldenKXDur  = 200 * time.Millisecond
	goldenRSADur = 190 * time.Millisecond
)

// goldenEvents builds the deterministic probe event stream of one
// synthetic server handshake covering every canonical Table 2 step.
func goldenEvents() []probe.Event {
	base := time.Unix(1000, 0)
	var evs []probe.Event
	at := base
	for _, st := range probe.Steps() {
		d := goldenDur
		if st == probe.StepGetClientKX {
			d = goldenKXDur
		}
		evs = append(evs, probe.Event{Kind: probe.KindStepEnter, Step: st, At: at})
		if st == probe.StepGetClientKX {
			evs = append(evs, probe.Event{Kind: probe.KindCrypto, Step: st,
				Fn: probe.FnRSAPrivateDecrypt, At: at, Dur: goldenRSADur})
		}
		evs = append(evs, probe.Event{Kind: probe.KindStepExit, Step: st, At: at.Add(d), Dur: d})
		at = at.Add(d)
	}
	return evs
}

// stepDur returns the synthetic duration assigned to a step name.
func stepDur(name string) time.Duration {
	if name == probe.StepGetClientKX.Name() {
		return goldenKXDur
	}
	return goldenDur
}

// TestGoldenStepNamesAcrossSurfaces replays one recorded handshake's
// probe events into every consumer of the canonical step enum and
// asserts the three observability surfaces — the /debug/anatomy JSON,
// the Chrome trace export, and the offline anatomy fold the baseline
// shape checks read — render byte-identical step names and per-step
// totals, all matching testdata/steps.golden.
func TestGoldenStepNamesAcrossSurfaces(t *testing.T) {
	raw, err := os.ReadFile("testdata/steps.golden")
	if err != nil {
		t.Fatal(err)
	}
	var goldenNames []string
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		f := strings.Split(line, "\t")
		if len(f) != 3 {
			t.Fatalf("malformed golden line %q", line)
		}
		goldenNames = append(goldenNames, f[1])
	}

	// The enum itself must match the golden table (index, name, desc).
	var rendered strings.Builder
	for _, st := range probe.Steps() {
		fmt.Fprintf(&rendered, "%d\t%s\t%s\n", st.Index(), st.Name(), st.Desc())
	}
	if rendered.String() != string(raw) {
		t.Fatalf("probe.Steps() table diverged from testdata/steps.golden:\n%s", rendered.String())
	}

	// Replay the same event stream into the offline anatomy fold and
	// into enough traced connections to clear the health checker's
	// MinHandshakes floor.
	events := goldenEvents()
	anatomy := handshake.NewAnatomy()
	for _, e := range events {
		anatomy.Emit(e)
	}
	tracer := trace.NewTracer(trace.Config{SampleEvery: 1})
	exp := baseline.PaperExpectation()
	for conn := uint64(1); conn <= exp.MinHandshakes; conn++ {
		ct := tracer.ConnBegin(conn, "server")
		sink := trace.ProbeSink(ct, ct.Begin("handshake", trace.CatConn, 0))
		for _, e := range events {
			sink.Emit(e)
		}
		ct.Finish("ok")
	}

	// Surface 1: the offline anatomy (what ssl.Conn.Anatomy returns).
	var anatomyNames []string
	for i, st := range anatomy.Steps {
		anatomyNames = append(anatomyNames, st.Name)
		if st.Elapsed != stepDur(st.Name) {
			t.Fatalf("anatomy step %d (%s) elapsed %v, want %v", i, st.Name, st.Elapsed, stepDur(st.Name))
		}
	}

	// Surface 2: the /debug/anatomy JSON (the live profiler fold).
	mux := http.NewServeMux()
	trace.Register(mux, tracer)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/anatomy")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var anat struct {
		Steps []struct {
			Name     string  `json:"name"`
			MeanKcyc float64 `json:"mean_kcycles"`
		} `json:"steps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&anat); err != nil {
		t.Fatal(err)
	}
	var debugNames []string
	for _, st := range anat.Steps {
		debugNames = append(debugNames, st.Name)
		want := perf.Cycles(stepDur(st.Name)) / 1000
		if st.MeanKcyc != want {
			t.Fatalf("/debug/anatomy %s mean %v kcycles, want %v", st.Name, st.MeanKcyc, want)
		}
	}

	// Surface 3: the Chrome trace export.
	resp, err = http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			TID  uint64  `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	var chromeNames []string
	for _, ev := range doc.TraceEvents {
		if ev.Cat != trace.CatStep || ev.TID != 1 {
			continue
		}
		chromeNames = append(chromeNames, ev.Name)
		if got := time.Duration(ev.Dur * 1e3); got != stepDur(ev.Name) {
			t.Fatalf("chrome span %s dur %v, want %v", ev.Name, got, stepDur(ev.Name))
		}
	}

	for surface, names := range map[string][]string{
		"anatomy":        anatomyNames,
		"/debug/anatomy": debugNames,
		"chrome trace":   chromeNames,
	} {
		if strings.Join(names, "\n") != strings.Join(goldenNames, "\n") {
			t.Fatalf("%s step names diverged from golden:\n got %v\nwant %v", surface, names, goldenNames)
		}
	}

	// The baseline shape checker reads the same names: the paper
	// expectation's dominant step must be a canonical name and the
	// replayed handshake must satisfy the Table 2/3 shape.
	if exp.DominantStep != probe.StepGetClientKX.Name() {
		t.Fatalf("baseline dominant step %q is not the canonical %q",
			exp.DominantStep, probe.StepGetClientKX.Name())
	}
	rep := baseline.CheckAnatomy(tracer.Profiler().Snapshot(), exp)
	if rep.Status != baseline.StatusOK {
		t.Fatalf("health check on golden handshake = %s: %+v", rep.Status, rep.Checks)
	}
}
