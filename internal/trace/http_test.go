package trace

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func tracerWithOneTrace(t *testing.T) *Tracer {
	t.Helper()
	tr := NewTracer(Config{})
	ct := tr.ConnBegin(1, "server")
	s := ct.Begin("init", CatStep, 0)
	ct.End(s, time.Millisecond)
	ct.Finish("ok")
	return tr
}

func get(t *testing.T, tr *Tracer, url string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	if rec.Code != 200 {
		t.Fatalf("GET %s: %d", url, rec.Code)
	}
	return rec, rec.Body.String()
}

func TestDebugTraceEndpoint(t *testing.T) {
	tr := tracerWithOneTrace(t)
	rec, body := get(t, tr, "/debug/trace")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
}

func TestDebugTraceRawFormat(t *testing.T) {
	tr := tracerWithOneTrace(t)
	_, body := get(t, tr, "/debug/trace?format=raw")
	var raw struct {
		Stats  Stats        `json:"stats"`
		Traces []*TraceData `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &raw); err != nil {
		t.Fatal(err)
	}
	if raw.Stats.Sampled != 1 || len(raw.Traces) != 1 {
		t.Fatalf("raw = sampled %d, %d traces", raw.Stats.Sampled, len(raw.Traces))
	}
	if raw.Traces[0].Spans[0].Name != "init" {
		t.Fatalf("span = %+v", raw.Traces[0].Spans[0])
	}
}

func TestDebugAnatomyReset(t *testing.T) {
	tr := tracerWithOneTrace(t)
	if s := tr.Profiler().Snapshot(); s.Handshakes != 1 {
		t.Fatalf("pre-reset snapshot = %+v", s)
	}

	// GET must not reset.
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/anatomy/reset", nil))
	if rec.Code != 405 {
		t.Fatalf("GET reset: %d, want 405", rec.Code)
	}
	if s := tr.Profiler().Snapshot(); s.Handshakes != 1 {
		t.Fatal("GET reset the profiler")
	}

	hookRan := false
	mux := http.NewServeMux()
	RegisterWithReset(mux, tr, func() { hookRan = true })
	h := httptest.NewRecorder()
	mux.ServeHTTP(h, httptest.NewRequest("POST", "/debug/anatomy/reset", nil))
	if h.Code != 200 {
		t.Fatalf("POST reset: %d", h.Code)
	}
	if !hookRan {
		t.Fatal("onReset hook did not run")
	}
	s := tr.Profiler().Snapshot()
	if s.Handshakes != 0 || s.Traces != 0 || len(s.Steps) != 0 {
		t.Fatalf("post-reset snapshot = %+v", s)
	}

	// The profiler keeps folding after the reset.
	ct := tr.ConnBegin(2, "server")
	sp := ct.Begin("init", CatStep, 0)
	ct.End(sp, time.Millisecond)
	ct.Finish("ok")
	if s := tr.Profiler().Snapshot(); s.Handshakes != 1 {
		t.Fatalf("post-reset fold lost: %+v", s)
	}
}

func TestDebugAnatomyEndpoint(t *testing.T) {
	tr := tracerWithOneTrace(t)
	rec, body := get(t, tr, "/debug/anatomy")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap AnatomySnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Handshakes != 1 || len(snap.Steps) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}

	rec, body = get(t, tr, "/debug/anatomy?format=text")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text Content-Type = %q", ct)
	}
	if !strings.Contains(body, "continuous Table 2") {
		t.Fatalf("text body:\n%s", body)
	}
}
