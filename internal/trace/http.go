package trace

import (
	"encoding/json"
	"net/http"
)

// Register mounts the tracing endpoints on mux:
//
//	/debug/trace          Chrome trace-event JSON of the retained
//	                      sampled traces plus engine spans — load it
//	                      in chrome://tracing or
//	                      https://ui.perfetto.dev
//	                      (?format=raw for the raw span structures)
//	/debug/anatomy        the continuous Tables 2/3 folded from
//	                      sampled traffic: per-step cycles, crypto
//	                      attribution, and p50/p95/p99 step latency
//	                      (JSON; ?format=text for aligned tables)
//	/debug/anatomy/reset  POST-only: zero the anatomy profiler so the
//	                      next snapshot covers only traffic from the
//	                      reset on — the hook load runs use to scope a
//	                      drift window to themselves
func Register(mux *http.ServeMux, t *Tracer) {
	RegisterWithReset(mux, t, nil)
}

// RegisterWithReset is Register with an extra hook run by
// /debug/anatomy/reset after the profiler is zeroed — the server
// passes its telemetry registry's Reset so one POST scopes both the
// live anatomy and the metric counters to the window that follows.
func RegisterWithReset(mux *http.ServeMux, t *Tracer, onReset func()) {
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "raw" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			enc.Encode(struct {
				Stats  Stats        `json:"stats"`
				Traces []*TraceData `json:"traces"`
				Engine []*Span      `json:"engine_spans"`
			}{t.Stats(), t.Traces(), t.EngineSpans()})
			return
		}
		b, err := t.Chrome()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("/debug/anatomy", func(w http.ResponseWriter, req *http.Request) {
		snap := t.Profiler().Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(snap.Text()))
			return
		}
		b, err := snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("/debug/anatomy/reset", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		t.Profiler().Reset()
		if onReset != nil {
			onReset()
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("reset\n"))
	})
}

// Handler returns a mux serving only the tracing endpoints.
func Handler(t *Tracer) http.Handler {
	mux := http.NewServeMux()
	Register(mux, t)
	return mux
}
