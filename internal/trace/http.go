package trace

import (
	"encoding/json"
	"net/http"

	"sslperf/internal/debughttp"
)

// Register mounts the tracing endpoints on mux:
//
//	/debug/trace          Chrome trace-event JSON of the retained
//	                      sampled traces plus engine spans — load it
//	                      in chrome://tracing or
//	                      https://ui.perfetto.dev
//	                      (?format=raw for the raw span structures)
//	/debug/anatomy        the continuous Tables 2/3 folded from
//	                      sampled traffic: per-step cycles, crypto
//	                      attribution, and p50/p95/p99 step latency
//	                      (JSON; ?format=text for aligned tables)
//	/debug/anatomy/reset  POST-only: zero the anatomy profiler so the
//	                      next snapshot covers only traffic from the
//	                      reset on — the hook load runs use to scope a
//	                      drift window to themselves
func Register(mux *http.ServeMux, t *Tracer) {
	RegisterWithReset(mux, t, nil)
}

// RegisterWithReset is Register with an extra hook run by
// /debug/anatomy/reset after the profiler is zeroed — the server
// passes its telemetry registry's Reset so one POST scopes both the
// live anatomy and the metric counters to the window that follows.
func RegisterWithReset(mux *http.ServeMux, t *Tracer, onReset func()) {
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		// Both renderings are JSON; ?format=raw selects the span
		// structures over the Chrome trace events.
		if req.URL.Query().Get("format") == "raw" {
			b, err := json.MarshalIndent(struct {
				Stats  Stats        `json:"stats"`
				Traces []*TraceData `json:"traces"`
				Engine []*Span      `json:"engine_spans"`
			}{t.Stats(), t.Traces(), t.EngineSpans()}, "", " ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			debughttp.WriteJSON(w, b)
			return
		}
		b, err := t.Chrome()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		debughttp.WriteJSON(w, b)
	})
	mux.HandleFunc("/debug/anatomy", func(w http.ResponseWriter, req *http.Request) {
		snap := t.Profiler().Snapshot()
		debughttp.Serve(w, req, snap.Text, snap.JSON)
	})
	mux.HandleFunc("/debug/anatomy/reset", func(w http.ResponseWriter, req *http.Request) {
		if !debughttp.PostOnly(w, req) {
			return
		}
		t.Profiler().Reset()
		if onReset != nil {
			onReset()
		}
		debughttp.WriteText(w, "reset\n")
	})
}

// Handler returns a mux serving only the tracing endpoints.
func Handler(t *Tracer) http.Handler {
	mux := http.NewServeMux()
	Register(mux, t)
	return mux
}
