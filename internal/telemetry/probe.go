package telemetry

import "sslperf/internal/probe"

// probeSink folds one connection's spine events into a registry: step
// boundaries and crypto calls become flight-recorder events, record
// I/O feeds the byte/record/alert counters.
type probeSink struct {
	reg  *Registry
	conn uint64
}

// ProbeSink returns the probe sink that emits conn's events into reg,
// or nil when reg is nil (so the bus's nil-sink filtering keeps the
// fast path on).
func ProbeSink(reg *Registry, conn uint64) probe.Sink {
	if reg == nil {
		return nil
	}
	return probeSink{reg: reg, conn: conn}
}

// Emit implements probe.Sink.
func (s probeSink) Emit(e probe.Event) {
	switch e.Kind {
	case probe.KindStepEnter:
		s.reg.Event(s.conn, EventStepStart, e.Step.Name(), e.Step.Desc(), 0)
	case probe.KindStepExit:
		s.reg.Event(s.conn, EventStepEnd, e.Step.Name(), "", e.Dur)
	case probe.KindCrypto:
		s.reg.Event(s.conn, EventCrypto, e.Fn, e.Step.Name(), e.Dur)
	case probe.KindRecordCrypto:
		// Record-layer work inside a handshake step lands in the
		// flight recorder under its Table 2 row name; bulk-phase work
		// is covered by the I/O counters alone (per-op events would
		// flood the ring).
		if e.Step != probe.StepNone {
			s.reg.Event(s.conn, EventCrypto, e.Op.StepFn(), e.Step.Name(), e.Dur)
		}
	case probe.KindRecordIO:
		s.reg.RecordIO(e.Written, e.Alert, e.Bytes)
		if e.Alert {
			kind := EventAlertReceived
			if e.Written {
				kind = EventAlertSent
			}
			s.reg.Event(s.conn, kind, "", "", 0)
		}
	}
}

// engineSink folds engine metric events into a registry.
type engineSink struct {
	reg *Registry
}

// EngineSink returns the probe sink that records engine value and
// timer metrics (queue depths, batch sizes, linger latencies) on reg,
// or nil when reg is nil.
func EngineSink(reg *Registry) probe.Sink {
	if reg == nil {
		return nil
	}
	return engineSink{reg: reg}
}

// Emit implements probe.Sink.
func (s engineSink) Emit(e probe.Event) {
	switch e.Kind {
	case probe.KindEngineValue:
		s.reg.ObserveValue(e.Fn, e.Value)
	case probe.KindEngineTimer:
		s.reg.ObserveTimer(e.Fn, e.Dur)
	}
}
