package telemetry

import (
	"math"
	"runtime"
	"runtime/metrics"
	"testing"
)

func TestReadRuntimeBasics(t *testing.T) {
	runtime.GC() // make sure at least one pause exists
	rs := ReadRuntime()
	if rs.Goroutines == 0 {
		t.Fatal("zero goroutines in a running test")
	}
	if rs.HeapInuseBytes == 0 {
		t.Fatal("zero heap bytes in a running test")
	}
	for _, d := range []struct {
		name string
		v    int64
	}{
		{"gc_p50", int64(rs.GCPauseP50)},
		{"gc_p99", int64(rs.GCPauseP99)},
		{"sched_p50", int64(rs.SchedLatP50)},
		{"sched_p99", int64(rs.SchedLatP99)},
		{"sched_max", int64(rs.SchedLatMax)},
	} {
		if d.v < 0 {
			t.Fatalf("%s negative: %d", d.name, d.v)
		}
	}
	if rs.GCPauseP99 < rs.GCPauseP50 {
		t.Fatalf("gc p99 %v < p50 %v", rs.GCPauseP99, rs.GCPauseP50)
	}
	if rs.SchedLatP99 < rs.SchedLatP50 {
		t.Fatalf("sched p99 %v < p50 %v", rs.SchedLatP99, rs.SchedLatP50)
	}
	if rs.SchedLatMax < rs.SchedLatP99 {
		t.Fatalf("sched max %v < p99 %v", rs.SchedLatMax, rs.SchedLatP99)
	}
}

// TestRuntimeSamplerSteadyStateAllocs pins the property the history
// sampler relies on: after the first Read warms the histogram buffers,
// repeated reads through the same sampler do not allocate.
func TestRuntimeSamplerSteadyStateAllocs(t *testing.T) {
	s := NewRuntimeSampler()
	s.Read() // warm-up allocates the Float64Histogram buffers
	allocs := testing.AllocsPerRun(50, func() {
		s.Read()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Read allocates %.1f/op, want 0", allocs)
	}
}

func TestRuntimeSamplerReuseAgrees(t *testing.T) {
	s := NewRuntimeSampler()
	first := s.Read()
	second := s.Read()
	// Monotone-ish sanity: a reused buffer must keep reporting live
	// values, not stale or zeroed ones.
	if second.Goroutines == 0 || second.HeapInuseBytes == 0 {
		t.Fatalf("reused sampler read zeros: %+v", second)
	}
	// GC pause quantiles never decrease (cumulative histogram).
	if second.GCPauseP99 < first.GCPauseP99 {
		t.Fatalf("gc p99 went backwards: %v -> %v", first.GCPauseP99, second.GCPauseP99)
	}
}

func TestHistQuantileEdgeCases(t *testing.T) {
	empty := &metrics.Float64Histogram{
		Counts:  []uint64{0, 0},
		Buckets: []float64{0, 1, 2},
	}
	if q := histQuantile(empty, 0.99); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	if m := histMax(empty); m != 0 {
		t.Fatalf("empty max = %v", m)
	}

	// All mass in the +Inf-edged tail bucket: quantile must walk
	// inward to a finite edge.
	tail := &metrics.Float64Histogram{
		Counts:  []uint64{0, 5},
		Buckets: []float64{0, 1, math.Inf(1)},
	}
	if q := histQuantile(tail, 0.99); q != 1 {
		t.Fatalf("tail quantile = %v, want 1", q)
	}
	if m := histMax(tail); m != 1 {
		t.Fatalf("tail max = %v, want 1", m)
	}

	one := &metrics.Float64Histogram{
		Counts:  []uint64{3, 0},
		Buckets: []float64{0, 0.5, 1},
	}
	if q := histQuantile(one, 0.5); q != 0.5 {
		t.Fatalf("quantile = %v, want 0.5", q)
	}
}

func TestSecondsToDuration(t *testing.T) {
	if d := secondsToDuration(math.Inf(1)); d != 0 {
		t.Fatalf("inf -> %v", d)
	}
	if d := secondsToDuration(math.NaN()); d != 0 {
		t.Fatalf("nan -> %v", d)
	}
	if d := secondsToDuration(-1); d != 0 {
		t.Fatalf("neg -> %v", d)
	}
	if d := secondsToDuration(0.001); d.Milliseconds() != 1 {
		t.Fatalf("1ms -> %v", d)
	}
}
