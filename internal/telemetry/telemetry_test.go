package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	if id := r.ConnOpen(); id != 0 {
		t.Fatalf("nil ConnOpen = %d, want 0", id)
	}
	r.HandshakeDone("X", 0x0300, false, time.Millisecond)
	r.HandshakeFailed("whatever")
	r.ObserveStep("init", time.Microsecond)
	r.RecordIO(true, false, 100)
	r.Event(1, EventStepStart, "init", "", 0)
	if rec := r.Recorder(); rec != nil {
		t.Fatalf("nil Recorder = %v, want nil", rec)
	}
	var fr *FlightRecorder
	fr.Record(Event{})
	if fr.Len() != 0 || fr.Total() != 0 || fr.Events() != nil {
		t.Fatal("nil FlightRecorder should be empty")
	}
	if s := r.Snapshot(); s.Connections != 0 {
		t.Fatal("nil Snapshot should be zero")
	}
}

func TestRegistryCounts(t *testing.T) {
	r := NewRegistry()
	id := r.ConnOpen()
	if id != 1 {
		t.Fatalf("first conn id = %d, want 1", id)
	}
	r.HandshakeDone("DES-CBC3-SHA", 0x0300, false, 2*time.Millisecond)
	r.HandshakeDone("DES-CBC3-SHA", 0x0301, true, 100*time.Microsecond)
	r.HandshakeFailed("handshake_failure")
	r.HandshakeFailed("")
	r.ObserveStep("init", 5*time.Microsecond)
	r.ObserveStep("get_client_hello", 40*time.Microsecond)
	r.RecordIO(false, false, 1000)
	r.RecordIO(true, false, 2000)
	r.RecordIO(true, true, 2)

	s := r.Snapshot()
	if s.Handshakes.Full != 1 || s.Handshakes.Resumed != 1 || s.Handshakes.Failed != 2 {
		t.Fatalf("handshake counts = %+v", s.Handshakes)
	}
	if s.Handshakes.BySuite["DES-CBC3-SHA"] != 2 {
		t.Fatalf("by suite = %v", s.Handshakes.BySuite)
	}
	if s.Handshakes.ByVersion["SSLv3"] != 1 || s.Handshakes.ByVersion["TLSv1.0"] != 1 {
		t.Fatalf("by version = %v", s.Handshakes.ByVersion)
	}
	if s.Handshakes.FailReasons["handshake_failure"] != 1 || s.Handshakes.FailReasons["unknown"] != 1 {
		t.Fatalf("fail reasons = %v", s.Handshakes.FailReasons)
	}
	if s.IO.BytesIn != 1000 || s.IO.BytesOut != 2002 || s.IO.RecordsOut != 2 || s.IO.AlertsSent != 1 {
		t.Fatalf("io = %+v", s.IO)
	}
	if len(s.Steps) != 2 || s.Steps[0].Name != "init" || s.Steps[1].Name != "get_client_hello" {
		t.Fatalf("steps = %+v", s.Steps)
	}
	if s.FullLatency.Count != 1 || s.ResumedLatency.Count != 1 {
		t.Fatalf("latency counts = %d/%d", s.FullLatency.Count, s.ResumedLatency.Count)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 100 samples of 1ms, 10 of 10ms, 1 of 100ms.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 111 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
	// p50 falls in the 1ms bucket: upper bound exactly 1024µs.
	if s.P50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms bucket bound", s.P50)
	}
	// p99 must reach the 10ms population.
	if s.P99 < 8*time.Millisecond || s.P99 > 32*time.Millisecond {
		t.Fatalf("p99 = %v, want ~16ms bucket bound", s.P99)
	}
	if s.Mean < time.Millisecond || s.Mean > 5*time.Millisecond {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Empty histogram stays zero.
	var empty Histogram
	es := empty.Snapshot()
	if es.Count != 0 || es.P50 != 0 || es.Max != 0 || len(es.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v", es)
	}
}

func TestBucketForBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{time.Hour, numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Record(Event{Conn: uint64(i % 2), Kind: EventStepStart, Name: "s"})
	}
	if fr.Total() != 10 || fr.Len() != 4 {
		t.Fatalf("total=%d len=%d", fr.Total(), fr.Len())
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(6+i) {
			t.Fatalf("event %d seq = %d, want %d (oldest-first)", i, ev.Seq, 6+i)
		}
	}
	conn0 := fr.ConnEvents(0)
	for _, ev := range conn0 {
		if ev.Conn != 0 {
			t.Fatalf("conn filter leaked conn %d", ev.Conn)
		}
	}
	if len(conn0) != 2 {
		t.Fatalf("conn0 events = %d, want 2", len(conn0))
	}
}

func TestConcurrentEmission(t *testing.T) {
	r := NewRegistrySize(128)
	const workers = 8
	const per = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				conn := r.ConnOpen()
				r.Event(conn, EventHandshakeStart, "", "server", 0)
				r.ObserveStep("init", time.Microsecond)
				r.ObserveStep("get_client_hello", 2*time.Microsecond)
				r.RecordIO(false, false, 64)
				r.RecordIO(true, i%10 == 0, 128)
				if i%5 == 0 {
					r.HandshakeFailed("bad_record_mac")
				} else {
					r.HandshakeDone("RC4-MD5", 0x0300, i%2 == 0, time.Duration(i)*time.Microsecond)
				}
				_ = r.Snapshot() // readers race with writers
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	total := workers * per
	if s.Connections != uint64(total) {
		t.Fatalf("connections = %d, want %d", s.Connections, total)
	}
	if got := s.Handshakes.Full + s.Handshakes.Resumed + s.Handshakes.Failed; got != uint64(total) {
		t.Fatalf("handshake outcomes = %d, want %d", got, total)
	}
	if s.IO.RecordsIn != uint64(total) || s.IO.RecordsOut != uint64(total) {
		t.Fatalf("records = %+v", s.IO)
	}
	if s.EventsRecorded != uint64(total) || s.EventsRetained != 128 {
		t.Fatalf("events recorded=%d retained=%d", s.EventsRecorded, s.EventsRetained)
	}
	if s.Steps[0].Latency.Count != uint64(total) {
		t.Fatalf("step count = %d", s.Steps[0].Latency.Count)
	}
}

func TestSnapshotRenderers(t *testing.T) {
	r := NewRegistry()
	r.HandshakeDone("DES-CBC3-SHA", 0x0300, false, time.Millisecond)
	r.ObserveStep("init", 10*time.Microsecond)
	r.ObserveStep("send_finished", 30*time.Microsecond)
	s := r.Snapshot()

	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if _, ok := back["handshakes"]; !ok {
		t.Fatalf("JSON missing handshakes: %s", b)
	}

	txt := s.Text()
	for _, want := range []string{"handshakes_full", "suite:DES-CBC3-SHA",
		"handshake steps", "send_finished", "per-step share"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text output missing %q:\n%s", want, txt)
		}
	}
}

func TestRuntimeSnapshot(t *testing.T) {
	rs := ReadRuntime()
	if rs.Goroutines == 0 {
		t.Error("goroutine count = 0, want >= 1 (this test is running)")
	}
	if rs.HeapInuseBytes == 0 {
		t.Error("heap in-use = 0 bytes")
	}
	// Pause/latency quantiles may legitimately be zero in a fresh
	// process (no GC yet), but must be ordered when present.
	if rs.GCPauseP50 > rs.GCPauseP99 {
		t.Errorf("gc pause p50 %v > p99 %v", rs.GCPauseP50, rs.GCPauseP99)
	}
	if rs.SchedLatP50 > rs.SchedLatP99 || rs.SchedLatP99 > rs.SchedLatMax {
		t.Errorf("sched latency not monotone: p50 %v p99 %v max %v",
			rs.SchedLatP50, rs.SchedLatP99, rs.SchedLatMax)
	}

	// The registry snapshot carries it, so /metrics serves it.
	r := NewRegistry()
	s := r.Snapshot()
	if s.Runtime.Goroutines == 0 {
		t.Error("registry snapshot missing runtime section")
	}
	text := s.Text()
	for _, want := range []string{"go runtime", "goroutines", "sched_latency_p99"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q", want)
		}
	}
}
