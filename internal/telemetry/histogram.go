package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers latencies from <1µs up to ~8.4s in power-of-two
// microsecond buckets, plus one overflow bucket.
const numBuckets = 25

// bucketBound returns the inclusive upper bound of bucket i:
// 1µs << i for the regular buckets; the last bucket is unbounded.
func bucketBound(i int) time.Duration {
	if i >= numBuckets-1 {
		return 0 // unbounded
	}
	return time.Microsecond << uint(i)
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	i := bits.Len64(uint64(us)) // 1µs..2µs -> 1, etc.
	if us&(us-1) == 0 {
		i-- // exact powers of two belong in their own bucket
	}
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return i
}

// A Histogram is a lock-free latency histogram with power-of-two
// microsecond buckets. Observe is wait-free (a few atomic adds), so it
// can sit on the connection hot path. The zero value is ready to use.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
}

// Reset zeroes the histogram. Concurrent Observe calls may land on
// either side of the cut; the histogram stays internally consistent
// but the reset is not a point-in-time snapshot boundary.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumNS.Store(0)
	h.maxNS.Store(0)
}

// Observe records one measurement.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	for {
		cur := h.maxNS.Load()
		if int64(d) <= cur || h.maxNS.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// rendering; quantiles are upper bounds of the containing bucket.
type HistogramSnapshot struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
	// Buckets lists non-empty buckets as {upper bound, count};
	// an UpperBound of 0 marks the unbounded overflow bucket.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	UpperBound time.Duration `json:"le_ns"`
	Count      uint64        `json:"count"`
}

// Snapshot copies the histogram's current state. Concurrent Observe
// calls may straddle the copy; totals remain self-consistent within
// one counter but the snapshot is not a point-in-time cut.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	var counts [numBuckets]uint64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		s.Count += counts[i]
	}
	s.Sum = time.Duration(h.sumNS.Load())
	s.Max = time.Duration(h.maxNS.Load())
	if s.Count > 0 {
		s.Mean = s.Sum / time.Duration(s.Count)
	}
	s.P50 = quantile(&counts, s.Count, 0.50, s.Max)
	s.P90 = quantile(&counts, s.Count, 0.90, s.Max)
	s.P99 = quantile(&counts, s.Count, 0.99, s.Max)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, Bucket{UpperBound: bucketBound(i), Count: c})
		}
	}
	return s
}

// quantile returns the q-th quantile as the upper bound of the bucket
// holding the rank-th sample; the overflow bucket reports max.
func quantile(counts *[numBuckets]uint64, total uint64, q float64, max time.Duration) time.Duration {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			if b := bucketBound(i); b != 0 {
				return b
			}
			return max
		}
	}
	return max
}
