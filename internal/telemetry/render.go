package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"sslperf/internal/perf"
)

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// histRow formats the common histogram columns.
func histRow(t *perf.Table, name string, h HistogramSnapshot) {
	t.AddRow(name,
		fmt.Sprint(h.Count),
		kcyc(h.Mean), kcyc(h.P50), kcyc(h.P90), kcyc(h.P99), kcyc(h.Max))
}

// kcyc formats a duration as thousands of model cycles, matching the
// unit of the paper's Table 2 and the perf.Breakdown renderer.
func kcyc(d time.Duration) string {
	return fmt.Sprintf("%.1f", perf.Cycles(d)/1000)
}

// sortedKeys returns m's keys sorted for stable text output.
func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Text renders the snapshot as aligned tables in the style of the
// perf package's paper tables: a counter summary, handshake latency
// distributions, and a per-step share table built on perf.Breakdown.
func (s Snapshot) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "telemetry snapshot (uptime %.1fs, %d connections)\n\n",
		s.UptimeSeconds, s.Connections)

	counters := perf.NewTable("counters", "metric", "value")
	counters.AddRow("handshakes_full", fmt.Sprint(s.Handshakes.Full))
	counters.AddRow("handshakes_resumed", fmt.Sprint(s.Handshakes.Resumed))
	counters.AddRow("handshakes_failed", fmt.Sprint(s.Handshakes.Failed))
	for _, k := range sortedKeys(s.Handshakes.BySuite) {
		counters.AddRow("suite:"+k, fmt.Sprint(s.Handshakes.BySuite[k]))
	}
	for _, k := range sortedKeys(s.Handshakes.ByVersion) {
		counters.AddRow("version:"+k, fmt.Sprint(s.Handshakes.ByVersion[k]))
	}
	for _, k := range sortedKeys(s.Handshakes.FailReasons) {
		counters.AddRow("fail:"+k, fmt.Sprint(s.Handshakes.FailReasons[k]))
	}
	counters.AddRow("records_in", fmt.Sprint(s.IO.RecordsIn))
	counters.AddRow("records_out", fmt.Sprint(s.IO.RecordsOut))
	counters.AddRow("bytes_in", fmt.Sprint(s.IO.BytesIn))
	counters.AddRow("bytes_out", fmt.Sprint(s.IO.BytesOut))
	counters.AddRow("alerts_received", fmt.Sprint(s.IO.AlertsReceived))
	counters.AddRow("alerts_sent", fmt.Sprint(s.IO.AlertsSent))
	counters.AddRow("events_recorded", fmt.Sprint(s.EventsRecorded))
	sb.WriteString(counters.String())
	sb.WriteByte('\n')

	rt := perf.NewTable("go runtime", "metric", "value")
	rt.AddRow("goroutines", fmt.Sprint(s.Runtime.Goroutines))
	rt.AddRow("heap_inuse_bytes", fmt.Sprint(s.Runtime.HeapInuseBytes))
	rt.AddRow("gc_pause_p50", s.Runtime.GCPauseP50.String())
	rt.AddRow("gc_pause_p99", s.Runtime.GCPauseP99.String())
	rt.AddRow("sched_latency_p50", s.Runtime.SchedLatP50.String())
	rt.AddRow("sched_latency_p99", s.Runtime.SchedLatP99.String())
	rt.AddRow("sched_latency_max", s.Runtime.SchedLatMax.String())
	sb.WriteString(rt.String())
	sb.WriteByte('\n')

	lat := perf.NewTable("handshake latency (kcycles)",
		"kind", "n", "mean", "p50", "p90", "p99", "max")
	histRow(lat, "full", s.FullLatency)
	histRow(lat, "resumed", s.ResumedLatency)
	sb.WriteString(lat.String())

	if len(s.Steps) > 0 {
		sb.WriteByte('\n')
		steps := perf.NewTable("handshake steps (kcycles)",
			"step", "n", "mean", "p50", "p90", "p99", "max")
		// share reuses perf.Breakdown's percentage rendering over the
		// accumulated per-step time — the live Table 2.
		share := perf.NewBreakdown()
		for _, st := range s.Steps {
			histRow(steps, st.Name, st.Latency)
			share.Add(st.Name, st.Latency.Sum)
		}
		sb.WriteString(steps.String())
		sb.WriteByte('\n')
		sb.WriteString("per-step share of total handshake time:\n")
		sb.WriteString(share.String())
	}

	if len(s.Timers) > 0 {
		sb.WriteByte('\n')
		timers := perf.NewTable("engine timers (kcycles)",
			"timer", "n", "mean", "p50", "p90", "p99", "max")
		for _, t := range s.Timers {
			histRow(timers, t.Name, t.Latency)
		}
		sb.WriteString(timers.String())
	}

	if len(s.Values) > 0 {
		sb.WriteByte('\n')
		values := perf.NewTable("engine values",
			"value", "n", "mean", "p50", "p99", "max")
		for _, v := range s.Values {
			values.AddRow(v.Name,
				fmt.Sprint(v.Values.Count),
				fmt.Sprintf("%.2f", v.Values.Mean),
				fmt.Sprint(v.Values.P50), fmt.Sprint(v.Values.P99),
				fmt.Sprint(v.Values.Max))
		}
		sb.WriteString(values.String())
	}
	return sb.String()
}
