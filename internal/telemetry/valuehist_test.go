package telemetry

import (
	"sync"
	"testing"
)

func TestValueHistogramEmpty(t *testing.T) {
	var h ValueHistogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Mean != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	if s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("empty quantiles = p50 %d, p99 %d", s.P50, s.P99)
	}
	if s.Buckets != nil {
		t.Fatalf("empty histogram has buckets: %+v", s.Buckets)
	}
}

func TestValueHistogramSingleSample(t *testing.T) {
	var h ValueHistogram
	h.Observe(5)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 5 || s.Max != 5 || s.Mean != 5 {
		t.Fatalf("snapshot = %+v", s)
	}
	// One sample defines every quantile; the bucket bound (8) is
	// clamped to the observed max.
	if s.P50 != 5 || s.P99 != 5 {
		t.Fatalf("quantiles = p50 %d, p99 %d, want 5/5", s.P50, s.P99)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].UpperBound != 8 || s.Buckets[0].Count != 1 {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
}

func TestValueHistogramOverflowBucket(t *testing.T) {
	var h ValueHistogram
	const huge = int64(1) << 40 // far past the last bounded bucket
	h.Observe(huge)
	s := h.Snapshot()
	// The overflow bucket has no bound, so quantiles report the max.
	if s.P50 != huge || s.P99 != huge || s.Max != huge {
		t.Fatalf("overflow snapshot = %+v", s)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].UpperBound != -1 {
		t.Fatalf("overflow bucket = %+v", s.Buckets)
	}
}

func TestValueHistogramEdges(t *testing.T) {
	cases := []struct {
		v    int64
		want int64 // bucket upper bound
	}{
		{-3, 0}, // negatives clamp into the zero bucket
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 4},
		{4, 4}, // powers of two sit on their bound
		{5, 8},
		{1 << 22, 1 << 22}, // last bounded bucket
	}
	for _, c := range cases {
		var h ValueHistogram
		h.Observe(c.v)
		if got := valueBucketBound(valueBucketFor(c.v)); got != c.want {
			t.Errorf("bucket bound for %d = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestValueHistogramSpreadQuantiles(t *testing.T) {
	var h ValueHistogram
	for i := 0; i < 98; i++ {
		h.Observe(1)
	}
	h.Observe(1000)
	h.Observe(2000)
	s := h.Snapshot()
	if s.P50 != 1 {
		t.Fatalf("p50 = %d, want 1", s.P50)
	}
	if s.P99 < 1000 {
		t.Fatalf("p99 = %d, want in the slow tail", s.P99)
	}
	if s.Max != 2000 {
		t.Fatalf("max = %d", s.Max)
	}
}

func TestValueHistogramConcurrent(t *testing.T) {
	var h ValueHistogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
	if s.Max != 7999 {
		t.Fatalf("max = %d, want 7999", s.Max)
	}
}

// TestValueHistogramClampMonotone pins the single-place quantile
// clamp: when a Reset races a scrape, the counts can be loaded from
// before the cut while max loads from after it (or vice versa),
// leaving raw bucket bounds above the published max. Snapshot must
// still report p50 <= p95 <= p99 <= max. We simulate the torn read by
// resetting only the max register, the worst interleaving a racing
// Reset can produce.
func TestValueHistogramClampMonotone(t *testing.T) {
	var h ValueHistogram
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	h.max.Store(3) // counts say ~1024, max says 3: a torn Reset read
	s := h.Snapshot()
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("quantiles not monotone: p50 %d p95 %d p99 %d max %d",
			s.P50, s.P95, s.P99, s.Max)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %d, want clamped to max 3", s.P50)
	}
}
