package telemetry

import (
	"sync"
	"testing"
)

// checkSlotInvariant asserts the ring's structural invariant: once
// full, the event in slot i always has Seq%cap == i, and Events()
// returns a contiguous ascending Seq run ending at next-1.
func checkSlotInvariant(t *testing.T, fr *FlightRecorder) {
	t.Helper()
	fr.mu.Lock()
	ring, next := fr.ring, fr.next
	size := cap(fr.ring)
	for i, ev := range ring {
		if len(ring) == size {
			if int(ev.Seq%uint64(size)) != i {
				t.Fatalf("slot %d holds seq %d (seq%%%d = %d)", i, ev.Seq, size, ev.Seq%uint64(size))
			}
		}
	}
	fr.mu.Unlock()

	events := fr.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("Events() not contiguous: seq %d follows %d", events[i].Seq, events[i-1].Seq)
		}
	}
	if n := len(events); n > 0 && events[n-1].Seq != next-1 {
		t.Fatalf("newest retained seq %d, want %d", events[n-1].Seq, next-1)
	}
}

// TestFlightRecorderConcurrentWraparound hammers a small ring from
// many goroutines so it wraps dozens of times, then checks the
// seq%cap slot invariant and the ordering contract survived.
func TestFlightRecorderConcurrentWraparound(t *testing.T) {
	const (
		size    = 64
		writers = 8
		each    = 500
	)
	fr := NewFlightRecorder(size)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				fr.Record(Event{Conn: uint64(w), Kind: EventStepStart})
			}
		}(w)
	}
	wg.Wait()

	if got := fr.Total(); got != writers*each {
		t.Fatalf("total %d, want %d", got, writers*each)
	}
	if got := fr.Len(); got != size {
		t.Fatalf("retained %d events, want a full ring of %d", got, size)
	}
	checkSlotInvariant(t, fr)
}

// TestFlightRecorderResetUnderLoad interleaves resets with concurrent
// writers: whatever the interleaving, the ring must end structurally
// sound (every retained slot matching seq%cap, Events ascending).
func TestFlightRecorderResetUnderLoad(t *testing.T) {
	const size = 32
	fr := NewFlightRecorder(size)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				fr.Record(Event{Conn: uint64(w), Kind: EventCrypto})
				if i%97 == 0 {
					fr.Reset()
				}
			}
		}(w)
	}
	wg.Wait()

	// Refill past one revolution so the full-ring branch is exercised
	// post-reset, then re-check the invariant.
	checkSlotInvariant(t, fr)
	for i := 0; i < 2*size; i++ {
		fr.Record(Event{Kind: EventStepEnd})
	}
	if fr.Len() != size {
		t.Fatalf("ring not full after refill: %d", fr.Len())
	}
	checkSlotInvariant(t, fr)
	if fr.Total() < uint64(2*size) {
		t.Fatalf("total %d lost events", fr.Total())
	}
}
