// Package telemetry is the live observability layer for the SSL
// stack: concurrency-safe counters and histograms that every active
// connection emits into, plus a fixed-size flight recorder of
// structured per-connection events.
//
// Where internal/perf is the paper's offline measurement substrate
// (single-owner breakdowns rendered after a run), telemetry is the
// always-on production instrument the multi-core follow-up work
// assumes: counters are atomic, histograms are wait-free, and the
// whole layer has a nil fast path — a nil *Registry accepts every
// emission as a no-op costing one pointer test, so the hot path stays
// allocation-free when telemetry is disabled.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// A Registry aggregates the SSL stack's live metrics. All methods are
// safe for concurrent use and all are no-ops on a nil receiver.
type Registry struct {
	start time.Time

	connSeq atomic.Uint64

	handshakesFull    atomic.Uint64
	handshakesResumed atomic.Uint64
	handshakesFailed  atomic.Uint64

	recordsIn  atomic.Uint64
	recordsOut atomic.Uint64
	bytesIn    atomic.Uint64
	bytesOut   atomic.Uint64
	alertsIn   atomic.Uint64
	alertsOut  atomic.Uint64

	fullLatency    Histogram
	resumedLatency Histogram

	// Low-rate keyed counters (one touch per handshake, not per
	// record) share a mutex; the maps are tiny and bounded by the
	// suite/version/reason vocabulary.
	mu          sync.Mutex
	bySuite     map[string]uint64
	byVersion   map[string]uint64
	failReasons map[string]uint64
	steps       map[string]*Histogram
	stepOrder   []string

	// Named engine histograms (ObserveTimer / ObserveValue): open
	// vocabulary for subsystems like the RSA batch engine, which
	// emits queue-depth, batch-size, and linger-latency
	// distributions here.
	timers     map[string]*Histogram
	timerOrder []string
	values     map[string]*ValueHistogram
	valueOrder []string

	recorder *FlightRecorder
}

// NewRegistry returns a registry with a DefaultFlightRecorderSize
// flight recorder.
func NewRegistry() *Registry { return NewRegistrySize(DefaultFlightRecorderSize) }

// NewRegistrySize returns a registry whose flight recorder keeps the
// last events entries.
func NewRegistrySize(events int) *Registry {
	return &Registry{
		start:       time.Now(),
		bySuite:     make(map[string]uint64),
		byVersion:   make(map[string]uint64),
		failReasons: make(map[string]uint64),
		steps:       make(map[string]*Histogram),
		timers:      make(map[string]*Histogram),
		values:      make(map[string]*ValueHistogram),
		recorder:    NewFlightRecorder(events),
	}
}

// Reset zeroes every metric and drops the retained flight-recorder
// events, so a drift window can be scoped to a load run instead of
// the process lifetime. The connection-ID sequence and the start time
// are preserved: IDs stay unique across the reset and uptime keeps
// meaning "since process start". Concurrent emissions may land on
// either side of the cut.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.handshakesFull.Store(0)
	r.handshakesResumed.Store(0)
	r.handshakesFailed.Store(0)
	r.recordsIn.Store(0)
	r.recordsOut.Store(0)
	r.bytesIn.Store(0)
	r.bytesOut.Store(0)
	r.alertsIn.Store(0)
	r.alertsOut.Store(0)
	r.fullLatency.Reset()
	r.resumedLatency.Reset()
	r.mu.Lock()
	r.bySuite = make(map[string]uint64)
	r.byVersion = make(map[string]uint64)
	r.failReasons = make(map[string]uint64)
	// Named histograms are reset in place, not dropped: an emitter
	// that grabbed one before the cut keeps feeding the same (now
	// zeroed) histogram, so no observation is lost to a stale pointer.
	for _, h := range r.steps {
		h.Reset()
	}
	for _, h := range r.timers {
		h.Reset()
	}
	for _, h := range r.values {
		h.Reset()
	}
	r.mu.Unlock()
	r.recorder.Reset()
}

// Recorder exposes the flight recorder (nil on a nil registry).
func (r *Registry) Recorder() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.recorder
}

// ConnOpen assigns and returns the next connection ID. IDs start at 1
// so 0 can mean "no telemetry" in callers; a nil registry returns 0.
func (r *Registry) ConnOpen() uint64 {
	if r == nil {
		return 0
	}
	return r.connSeq.Add(1)
}

// Event records a flight-recorder event for a connection.
func (r *Registry) Event(conn uint64, kind EventKind, name, detail string, elapsed time.Duration) {
	if r == nil {
		return
	}
	r.recorder.Record(Event{Conn: conn, Kind: kind, Name: name, Detail: detail, Elapsed: elapsed})
}

// versionName names a wire version for metric keys.
func versionName(v uint16) string {
	switch v {
	case 0x0300:
		return "SSLv3"
	case 0x0301:
		return "TLSv1.0"
	}
	return fmt.Sprintf("%#04x", v)
}

// HandshakeDone counts one successful handshake, keyed by cipher
// suite and version, and observes its latency (full and resumed
// handshakes get separate histograms, matching the paper's split).
func (r *Registry) HandshakeDone(suiteName string, version uint16, resumed bool, d time.Duration) {
	if r == nil {
		return
	}
	if resumed {
		r.handshakesResumed.Add(1)
		r.resumedLatency.Observe(d)
	} else {
		r.handshakesFull.Add(1)
		r.fullLatency.Observe(d)
	}
	r.mu.Lock()
	r.bySuite[suiteName]++
	r.byVersion[versionName(version)]++
	r.mu.Unlock()
}

// HandshakeFailed counts one failed handshake tagged with a reason
// (an alert name or a stable error category).
func (r *Registry) HandshakeFailed(reason string) {
	if r == nil {
		return
	}
	r.handshakesFailed.Add(1)
	if reason == "" {
		reason = "unknown"
	}
	r.mu.Lock()
	r.failReasons[reason]++
	r.mu.Unlock()
}

// ObserveStep records one handshake step's latency into that step's
// histogram — the live, cross-connection mirror of Table 2's rows.
func (r *Registry) ObserveStep(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.steps[name]
	if h == nil {
		h = &Histogram{}
		r.steps[name] = h
		r.stepOrder = append(r.stepOrder, name)
	}
	r.mu.Unlock()
	h.Observe(d)
}

// ObserveTimer records one latency into the named engine histogram,
// creating it on first use (e.g. the batch engine's linger window).
func (r *Registry) ObserveTimer(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.timers[name]
	if h == nil {
		h = &Histogram{}
		r.timers[name] = h
		r.timerOrder = append(r.timerOrder, name)
	}
	r.mu.Unlock()
	h.Observe(d)
}

// ObserveValue records one integer measurement into the named value
// histogram, creating it on first use (e.g. batch sizes and queue
// depths).
func (r *Registry) ObserveValue(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.values[name]
	if h == nil {
		h = &ValueHistogram{}
		r.values[name] = h
		r.valueOrder = append(r.valueOrder, name)
	}
	r.mu.Unlock()
	h.Observe(v)
}

// RecordIO counts one framed record moving through the record layer.
// This is the per-record hot path: four atomic adds at most.
func (r *Registry) RecordIO(written bool, isAlert bool, payloadBytes int) {
	if r == nil {
		return
	}
	if written {
		r.recordsOut.Add(1)
		r.bytesOut.Add(uint64(payloadBytes))
		if isAlert {
			r.alertsOut.Add(1)
		}
	} else {
		r.recordsIn.Add(1)
		r.bytesIn.Add(uint64(payloadBytes))
		if isAlert {
			r.alertsIn.Add(1)
		}
	}
}

// Counts is the registry's raw cumulative counters — the cheap,
// allocation-free read the history sampler takes every second, where
// Snapshot would build maps and slices per call. Each value is one
// atomic load.
type Counts struct {
	Connections       uint64
	HandshakesFull    uint64
	HandshakesResumed uint64
	HandshakesFailed  uint64
	RecordsIn         uint64
	RecordsOut        uint64
	BytesIn           uint64
	BytesOut          uint64
	AlertsIn          uint64
	AlertsOut         uint64
}

// Counts reads the cumulative counters without allocating. A nil
// registry reads all zeros.
func (r *Registry) Counts() Counts {
	if r == nil {
		return Counts{}
	}
	return Counts{
		Connections:       r.connSeq.Load(),
		HandshakesFull:    r.handshakesFull.Load(),
		HandshakesResumed: r.handshakesResumed.Load(),
		HandshakesFailed:  r.handshakesFailed.Load(),
		RecordsIn:         r.recordsIn.Load(),
		RecordsOut:        r.recordsOut.Load(),
		BytesIn:           r.bytesIn.Load(),
		BytesOut:          r.bytesOut.Load(),
		AlertsIn:          r.alertsIn.Load(),
		AlertsOut:         r.alertsOut.Load(),
	}
}

// HandshakeCounts is the handshake section of a snapshot.
type HandshakeCounts struct {
	Full        uint64            `json:"full"`
	Resumed     uint64            `json:"resumed"`
	Failed      uint64            `json:"failed"`
	BySuite     map[string]uint64 `json:"by_suite,omitempty"`
	ByVersion   map[string]uint64 `json:"by_version,omitempty"`
	FailReasons map[string]uint64 `json:"fail_reasons,omitempty"`
}

// IOCounts is the record-layer section of a snapshot.
type IOCounts struct {
	RecordsIn      uint64 `json:"records_in"`
	RecordsOut     uint64 `json:"records_out"`
	BytesIn        uint64 `json:"bytes_in"`
	BytesOut       uint64 `json:"bytes_out"`
	AlertsReceived uint64 `json:"alerts_received"`
	AlertsSent     uint64 `json:"alerts_sent"`
}

// StepSnapshot is one handshake step's latency distribution.
type StepSnapshot struct {
	Name    string            `json:"name"`
	Latency HistogramSnapshot `json:"latency"`
}

// ValueSnapshot is one named value histogram's distribution.
type ValueSnapshot struct {
	Name   string                 `json:"name"`
	Values ValueHistogramSnapshot `json:"values"`
}

// A Snapshot is a self-consistent-enough copy of every metric for
// rendering; counters may advance between individual loads but each
// value is a real point on its own timeline.
type Snapshot struct {
	At             time.Time         `json:"at"`
	UptimeSeconds  float64           `json:"uptime_seconds"`
	Connections    uint64            `json:"connections"`
	Handshakes     HandshakeCounts   `json:"handshakes"`
	IO             IOCounts          `json:"io"`
	FullLatency    HistogramSnapshot `json:"full_handshake_latency"`
	ResumedLatency HistogramSnapshot `json:"resumed_handshake_latency"`
	Steps          []StepSnapshot    `json:"steps,omitempty"`
	Timers         []StepSnapshot    `json:"timers,omitempty"`
	Values         []ValueSnapshot   `json:"values,omitempty"`
	EventsRecorded uint64            `json:"events_recorded"`
	EventsRetained int               `json:"events_retained"`
	Runtime        RuntimeSnapshot   `json:"runtime"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	now := time.Now()
	s := Snapshot{
		At:            now,
		UptimeSeconds: now.Sub(r.start).Seconds(),
		Connections:   r.connSeq.Load(),
		Handshakes: HandshakeCounts{
			Full:    r.handshakesFull.Load(),
			Resumed: r.handshakesResumed.Load(),
			Failed:  r.handshakesFailed.Load(),
		},
		IO: IOCounts{
			RecordsIn:      r.recordsIn.Load(),
			RecordsOut:     r.recordsOut.Load(),
			BytesIn:        r.bytesIn.Load(),
			BytesOut:       r.bytesOut.Load(),
			AlertsReceived: r.alertsIn.Load(),
			AlertsSent:     r.alertsOut.Load(),
		},
		FullLatency:    r.fullLatency.Snapshot(),
		ResumedLatency: r.resumedLatency.Snapshot(),
		EventsRecorded: r.recorder.Total(),
		EventsRetained: r.recorder.Len(),
		Runtime:        ReadRuntime(),
	}
	r.mu.Lock()
	s.Handshakes.BySuite = copyMap(r.bySuite)
	s.Handshakes.ByVersion = copyMap(r.byVersion)
	s.Handshakes.FailReasons = copyMap(r.failReasons)
	order := append([]string(nil), r.stepOrder...)
	hists := make([]*Histogram, len(order))
	for i, name := range order {
		hists[i] = r.steps[name]
	}
	tOrder := append([]string(nil), r.timerOrder...)
	tHists := make([]*Histogram, len(tOrder))
	for i, name := range tOrder {
		tHists[i] = r.timers[name]
	}
	vOrder := append([]string(nil), r.valueOrder...)
	vHists := make([]*ValueHistogram, len(vOrder))
	for i, name := range vOrder {
		vHists[i] = r.values[name]
	}
	r.mu.Unlock()
	// Steps keep first-observed order, which is Table 2 order when the
	// handshake FSM is the only emitter.
	for i, name := range order {
		s.Steps = append(s.Steps, StepSnapshot{Name: name, Latency: hists[i].Snapshot()})
	}
	for i, name := range tOrder {
		s.Timers = append(s.Timers, StepSnapshot{Name: name, Latency: tHists[i].Snapshot()})
	}
	for i, name := range vOrder {
		s.Values = append(s.Values, ValueSnapshot{Name: name, Values: vHists[i].Snapshot()})
	}
	return s
}

func copyMap(m map[string]uint64) map[string]uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
