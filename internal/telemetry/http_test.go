package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.HandshakeDone("RC4-MD5", 0x0300, false, time.Millisecond)
	h := Handler(r)

	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &s); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if s.Handshakes.Full != 1 {
		t.Fatalf("full = %d", s.Handshakes.Full)
	}

	req = httptest.NewRequest("GET", "/metrics?format=text", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if !strings.Contains(w.Body.String(), "handshakes_full") {
		t.Fatalf("text body = %q", w.Body.String())
	}
}

func TestFlightRecorderEndpoint(t *testing.T) {
	r := NewRegistry()
	c1, c2 := r.ConnOpen(), r.ConnOpen()
	r.Event(c1, EventHandshakeStart, "", "server", 0)
	r.Event(c1, EventStepStart, "init", "", 0)
	r.Event(c2, EventHandshakeStart, "", "server", 0)
	h := Handler(r)

	req := httptest.NewRequest("GET", "/debug/flightrecorder", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var all []Event
	if err := json.Unmarshal(w.Body.Bytes(), &all); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(all) != 3 {
		t.Fatalf("events = %d, want 3", len(all))
	}

	req = httptest.NewRequest("GET", "/debug/flightrecorder?conn=1", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var one []Event
	if err := json.Unmarshal(w.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if len(one) != 2 || one[1].Name != "init" {
		t.Fatalf("conn1 events = %+v", one)
	}

	req = httptest.NewRequest("GET", "/debug/flightrecorder?last=1", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var tail []Event
	if err := json.Unmarshal(w.Body.Bytes(), &tail); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0].Conn != c2 {
		t.Fatalf("tail = %+v", tail)
	}

	req = httptest.NewRequest("GET", "/debug/flightrecorder?conn=zzz", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 400 {
		t.Fatalf("bad conn id status = %d", w.Code)
	}
}
