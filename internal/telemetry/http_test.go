package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.HandshakeDone("RC4-MD5", 0x0300, false, time.Millisecond)
	h := Handler(r)

	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &s); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if s.Handshakes.Full != 1 {
		t.Fatalf("full = %d", s.Handshakes.Full)
	}

	req = httptest.NewRequest("GET", "/metrics?format=text", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if !strings.Contains(w.Body.String(), "handshakes_full") {
		t.Fatalf("text body = %q", w.Body.String())
	}
}

func TestFlightRecorderEndpoint(t *testing.T) {
	r := NewRegistry()
	c1, c2 := r.ConnOpen(), r.ConnOpen()
	r.Event(c1, EventHandshakeStart, "", "server", 0)
	r.Event(c1, EventStepStart, "init", "", 0)
	r.Event(c2, EventHandshakeStart, "", "server", 0)
	h := Handler(r)

	req := httptest.NewRequest("GET", "/debug/flightrecorder", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var all []Event
	if err := json.Unmarshal(w.Body.Bytes(), &all); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(all) != 3 {
		t.Fatalf("events = %d, want 3", len(all))
	}

	req = httptest.NewRequest("GET", "/debug/flightrecorder?conn=1", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var one []Event
	if err := json.Unmarshal(w.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if len(one) != 2 || one[1].Name != "init" {
		t.Fatalf("conn1 events = %+v", one)
	}

	req = httptest.NewRequest("GET", "/debug/flightrecorder?last=1", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var tail []Event
	if err := json.Unmarshal(w.Body.Bytes(), &tail); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0].Conn != c2 {
		t.Fatalf("tail = %+v", tail)
	}

	req = httptest.NewRequest("GET", "/debug/flightrecorder?conn=zzz", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 400 {
		t.Fatalf("bad conn id status = %d", w.Code)
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.HandshakeDone("RC4-MD5", 0x0300, false, time.Millisecond)
	h := Handler(r)

	// Default and explicit-garbage formats are both JSON.
	for _, url := range []string{"/metrics", "/metrics?format=", "/metrics?format=xml"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s content-type = %q, want application/json", url, ct)
		}
		if !json.Valid(w.Body.Bytes()) {
			t.Errorf("%s body is not JSON", url)
		}
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/metrics?format=text", nil))
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text content-type = %q", ct)
	}
	if json.Valid(w.Body.Bytes()) {
		t.Fatal("format=text returned JSON")
	}
}

func TestFlightRecorderEmptyAndLastEdges(t *testing.T) {
	r := NewRegistry()
	h := Handler(r)

	// Empty recorder: a JSON array, not null.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	if body := strings.TrimSpace(w.Body.String()); body != "[]" {
		t.Fatalf("empty recorder body = %q, want []", body)
	}

	c := r.ConnOpen()
	r.Event(c, EventHandshakeStart, "", "server", 0)

	// last larger than the event count returns everything.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/flightrecorder?last=999", nil))
	var all []Event
	if err := json.Unmarshal(w.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("last=999 returned %d events, want 1", len(all))
	}

	// last=0 truncates to nothing, still a JSON array.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/flightrecorder?last=0", nil))
	if body := strings.TrimSpace(w.Body.String()); body != "[]" {
		t.Fatalf("last=0 body = %q, want []", body)
	}

	// Malformed last values are rejected.
	for _, url := range []string{"/debug/flightrecorder?last=-1", "/debug/flightrecorder?last=zzz"} {
		w = httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		if w.Code != 400 {
			t.Errorf("%s status = %d, want 400", url, w.Code)
		}
	}
}
