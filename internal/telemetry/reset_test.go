package telemetry

import (
	"testing"
	"time"
)

func TestHistogramReset(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	h.Reset()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("reset histogram not empty: %+v", s)
	}
	h.Observe(3 * time.Millisecond)
	if s := h.Snapshot(); s.Count != 1 {
		t.Fatalf("post-reset observe lost: %+v", s)
	}
}

func TestValueHistogramResetAndP95(t *testing.T) {
	var h ValueHistogram
	// 100 observations of 1 and one large outlier: p50 stays at 1,
	// p95 must still be in the low bucket, p99 may catch the outlier
	// with few samples but here 1/101 < 1% so it stays low too.
	for i := 0; i < 100; i++ {
		h.Observe(1)
	}
	h.Observe(1 << 20)
	s := h.Snapshot()
	if s.P50 != 1 || s.P95 != 1 {
		t.Fatalf("p50=%d p95=%d, want both 1", s.P50, s.P95)
	}
	if s.Max != 1<<20 {
		t.Fatalf("max=%d, want %d", s.Max, 1<<20)
	}
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("reset value histogram not empty: %+v", s)
	}
}

func TestFlightRecorderResetKeepsSlotInvariant(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		fr.Record(Event{Name: "pre"})
	}
	fr.Reset()
	if fr.Len() != 0 {
		t.Fatalf("Len=%d after reset", fr.Len())
	}
	// Refill past capacity: ordering must survive the wrap, which
	// depends on seq%cap still addressing the append slots.
	for i := 0; i < 6; i++ {
		fr.Record(Event{Name: string(rune('a' + i))})
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("events out of order after reset+wrap: %+v", evs)
		}
	}
	if evs[len(evs)-1].Name != "f" {
		t.Fatalf("newest event %q, want f", evs[len(evs)-1].Name)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistrySize(16)
	id := r.ConnOpen()
	r.HandshakeDone("RC4-MD5", 0x0300, false, 2*time.Millisecond)
	r.HandshakeFailed("timeout")
	r.ObserveStep("get_client_kx", time.Millisecond)
	r.ObserveTimer("linger", time.Millisecond)
	r.ObserveValue("batch_size", 4)
	r.RecordIO(true, false, 100)
	r.Event(id, EventClose, "", "", 0)

	r.Reset()
	s := r.Snapshot()
	if s.Handshakes.Full != 0 || s.Handshakes.Failed != 0 ||
		len(s.Handshakes.BySuite) != 0 || len(s.Handshakes.FailReasons) != 0 {
		t.Fatalf("handshake counts survived reset: %+v", s.Handshakes)
	}
	if s.IO.RecordsOut != 0 || s.IO.BytesOut != 0 {
		t.Fatalf("io counts survived reset: %+v", s.IO)
	}
	if s.FullLatency.Count != 0 {
		t.Fatalf("latency survived reset: %+v", s.FullLatency)
	}
	if s.EventsRetained != 0 {
		t.Fatalf("flight recorder survived reset: %d retained", s.EventsRetained)
	}
	// Named histograms are kept (zeroed) so pre-reset emitters still land.
	for _, st := range s.Steps {
		if st.Latency.Count != 0 {
			t.Fatalf("step %s survived reset: %+v", st.Name, st.Latency)
		}
	}
	// Connection IDs stay unique across the reset.
	if next := r.ConnOpen(); next <= id {
		t.Fatalf("conn id went backwards: %d then %d", id, next)
	}
	r.ObserveValue("batch_size", 2)
	s = r.Snapshot()
	if len(s.Values) != 1 || s.Values[0].Values.Count != 1 {
		t.Fatalf("post-reset value observation lost: %+v", s.Values)
	}
}
