package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Register mounts the telemetry endpoints on mux:
//
//	/metrics               JSON snapshot (?format=text for tables)
//	/debug/flightrecorder  retained events, oldest-first
//	                       (?conn=ID for one connection, ?last=N to tail)
func Register(mux *http.ServeMux, r *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(snap.Text()))
			return
		}
		b, err := snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, req *http.Request) {
		fr := r.Recorder()
		var events []Event
		if connStr := req.URL.Query().Get("conn"); connStr != "" {
			conn, err := strconv.ParseUint(connStr, 10, 64)
			if err != nil {
				http.Error(w, "bad conn id", http.StatusBadRequest)
				return
			}
			events = fr.ConnEvents(conn)
		} else {
			events = fr.Events()
		}
		if lastStr := req.URL.Query().Get("last"); lastStr != "" {
			last, err := strconv.Atoi(lastStr)
			if err != nil || last < 0 {
				http.Error(w, "bad last count", http.StatusBadRequest)
				return
			}
			if last < len(events) {
				events = events[len(events)-last:]
			}
		}
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(events)
	})
}

// Handler returns a mux serving only the telemetry endpoints.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	Register(mux, r)
	return mux
}
