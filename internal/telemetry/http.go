package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"

	"sslperf/internal/debughttp"
)

// Register mounts the telemetry endpoints on mux:
//
//	/metrics               JSON snapshot (?format=text for tables)
//	/debug/flightrecorder  retained events, oldest-first
//	                       (?conn=ID for one connection, ?last=N to tail)
func Register(mux *http.ServeMux, r *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		debughttp.Serve(w, req, snap.Text, snap.JSON)
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, req *http.Request) {
		fr := r.Recorder()
		var events []Event
		if connStr := req.URL.Query().Get("conn"); connStr != "" {
			conn, err := strconv.ParseUint(connStr, 10, 64)
			if err != nil {
				http.Error(w, "bad conn id", http.StatusBadRequest)
				return
			}
			events = fr.ConnEvents(conn)
		} else {
			events = fr.Events()
		}
		if lastStr := req.URL.Query().Get("last"); lastStr != "" {
			last, err := strconv.Atoi(lastStr)
			if err != nil || last < 0 {
				http.Error(w, "bad last count", http.StatusBadRequest)
				return
			}
			if last < len(events) {
				events = events[len(events)-last:]
			}
		}
		if events == nil {
			events = []Event{}
		}
		b, err := json.MarshalIndent(events, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		debughttp.WriteJSON(w, b)
	})
}

// Handler returns a mux serving only the telemetry endpoints.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	Register(mux, r)
	return mux
}
