package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// valueBuckets covers non-negative integer values 0, 1, 2, ≤4, ≤8 …
// up to ≤2^22, plus one overflow bucket — plenty for the queue
// depths and batch sizes the engine layers emit.
const valueBuckets = 25

// valueBucketBound returns the inclusive upper bound of bucket i;
// the last bucket is unbounded (returned as −1).
func valueBucketBound(i int) int64 {
	if i >= valueBuckets-1 {
		return -1
	}
	if i == 0 {
		return 0
	}
	return int64(1) << uint(i-1)
}

// valueBucketFor maps v to its bucket index (negatives clamp to 0).
func valueBucketFor(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if v&(v-1) == 0 {
		// Exact powers of two sit on their bucket's upper bound.
		i--
	}
	i++ // shift past the dedicated zero bucket
	if i >= valueBuckets {
		i = valueBuckets - 1
	}
	return i
}

// A ValueHistogram is the integer-valued sibling of Histogram:
// wait-free power-of-two buckets for quantities that are counts, not
// latencies (queue depths, batch sizes). The zero value is ready to
// use.
type ValueHistogram struct {
	counts [valueBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// Reset zeroes the histogram. Concurrent Observe calls may land on
// either side of the cut; the histogram stays internally consistent
// but the reset is not a point-in-time snapshot boundary.
func (h *ValueHistogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Observe records one value.
func (h *ValueHistogram) Observe(v int64) {
	h.counts[valueBucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ValueBucket is one non-empty value-histogram bucket; an UpperBound
// of −1 marks the unbounded overflow bucket.
type ValueBucket struct {
	UpperBound int64  `json:"le"`
	Count      uint64 `json:"count"`
}

// ValueHistogramSnapshot is a rendering copy of a ValueHistogram;
// quantiles are upper bounds of the containing bucket.
type ValueHistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     int64         `json:"sum"`
	Mean    float64       `json:"mean"`
	P50     int64         `json:"p50"`
	P95     int64         `json:"p95"`
	P99     int64         `json:"p99"`
	Max     int64         `json:"max"`
	Buckets []ValueBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state (same consistency
// caveats as Histogram.Snapshot).
func (h *ValueHistogram) Snapshot() ValueHistogramSnapshot {
	var s ValueHistogramSnapshot
	var counts [valueBuckets]uint64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		s.Count += counts[i]
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	s.P50 = valueQuantile(&counts, s.Count, 0.50)
	s.P95 = valueQuantile(&counts, s.Count, 0.95)
	s.P99 = valueQuantile(&counts, s.Count, 0.99)
	s.clampQuantiles()
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, ValueBucket{UpperBound: valueBucketBound(i), Count: c})
		}
	}
	return s
}

// clampQuantiles bounds the published quantiles to [0, Max] — the
// single place quantile clamping happens. Bucket upper bounds can
// overshoot the true maximum (observations never exceed it), and a
// Reset racing a scrape can leave Max loaded from the other side of
// the cut; clamping every quantile here keeps p50 <= p95 <= p99 <=
// max monotone no matter how the race lands.
func (s *ValueHistogramSnapshot) clampQuantiles() {
	for _, q := range []*int64{&s.P50, &s.P95, &s.P99} {
		if *q < 0 || *q > s.Max {
			*q = s.Max
		}
	}
}

// valueQuantile returns the raw upper bound of the bucket holding the
// q-quantile (−1 for the overflow bucket). Callers clamp via
// clampQuantiles — no clamping happens here.
func valueQuantile(counts *[valueBuckets]uint64, total uint64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			return valueBucketBound(i)
		}
	}
	return valueBucketBound(valueBuckets - 1)
}
