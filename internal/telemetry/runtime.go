package telemetry

import (
	"math"
	"runtime/metrics"
	"time"
)

// Runtime metric names read from runtime/metrics. GC pauses carry a
// fallback name for toolchains predating the /sched/pauses tree.
const (
	metricGoroutines  = "/sched/goroutines:goroutines"
	metricHeapObjects = "/memory/classes/heap/objects:bytes"
	metricGCPauses    = "/sched/pauses/total/gc:seconds"
	metricGCPausesOld = "/gc/pauses:seconds"
	metricSchedLat    = "/sched/latencies:seconds"
)

// RuntimeSnapshot is the Go runtime's health as it bears on latency
// experiments: goroutine count, live heap, GC stop-the-world pause
// quantiles, and the scheduler-latency distribution (how long ready
// goroutines waited for a P). High sched latency or GC pauses mean
// load-generator readings include runtime noise, not just SSL cost.
type RuntimeSnapshot struct {
	Goroutines     uint64        `json:"goroutines"`
	HeapInuseBytes uint64        `json:"heap_inuse_bytes"`
	GCPauseP50     time.Duration `json:"gc_pause_p50_ns"`
	GCPauseP99     time.Duration `json:"gc_pause_p99_ns"`
	SchedLatP50    time.Duration `json:"sched_latency_p50_ns"`
	SchedLatP99    time.Duration `json:"sched_latency_p99_ns"`
	SchedLatMax    time.Duration `json:"sched_latency_max_ns"`
}

// ReadRuntime samples the runtime/metrics the snapshot reports.
// Metrics a toolchain does not export read as zero.
func ReadRuntime() RuntimeSnapshot {
	return NewRuntimeSampler().Read()
}

// A RuntimeSampler reads the runtime metrics through a reusable
// sample buffer: runtime/metrics reuses histogram memory across Read
// calls on the same samples, so a periodic sampler (the history
// layer's 1s tick) stays allocation-free after the first read. Not
// safe for concurrent use; give each sampling goroutine its own.
type RuntimeSampler struct {
	samples []metrics.Sample
}

// NewRuntimeSampler returns a sampler with its buffer prepared.
func NewRuntimeSampler() *RuntimeSampler {
	return &RuntimeSampler{samples: []metrics.Sample{
		{Name: metricGoroutines},
		{Name: metricHeapObjects},
		{Name: metricGCPauses},
		{Name: metricGCPausesOld},
		{Name: metricSchedLat},
	}}
}

// Read samples the runtime, reusing the buffer from prior reads.
func (s *RuntimeSampler) Read() RuntimeSnapshot {
	samples := s.samples
	metrics.Read(samples)

	var rs RuntimeSnapshot
	if samples[0].Value.Kind() == metrics.KindUint64 {
		rs.Goroutines = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		rs.HeapInuseBytes = samples[1].Value.Uint64()
	}
	gc := samples[2]
	if gc.Value.Kind() != metrics.KindFloat64Histogram {
		gc = samples[3]
	}
	if gc.Value.Kind() == metrics.KindFloat64Histogram {
		h := gc.Value.Float64Histogram()
		rs.GCPauseP50 = secondsToDuration(histQuantile(h, 0.50))
		rs.GCPauseP99 = secondsToDuration(histQuantile(h, 0.99))
	}
	if samples[4].Value.Kind() == metrics.KindFloat64Histogram {
		h := samples[4].Value.Float64Histogram()
		rs.SchedLatP50 = secondsToDuration(histQuantile(h, 0.50))
		rs.SchedLatP99 = secondsToDuration(histQuantile(h, 0.99))
		rs.SchedLatMax = secondsToDuration(histMax(h))
	}
	return rs
}

func secondsToDuration(s float64) time.Duration {
	if math.IsInf(s, 0) || math.IsNaN(s) || s <= 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// histQuantile returns the q-quantile of a runtime Float64Histogram:
// the upper edge of the bucket where the cumulative count crosses q.
// An empty histogram reads 0. Infinite bucket edges fall back to the
// nearest finite edge so a tail quantile stays renderable.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	want := uint64(math.Ceil(q * float64(total)))
	if want == 0 {
		want = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= want {
			return finiteEdge(h.Buckets, i+1)
		}
	}
	return finiteEdge(h.Buckets, len(h.Buckets)-1)
}

// histMax returns the upper edge of the highest non-empty bucket.
func histMax(h *metrics.Float64Histogram) float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			return finiteEdge(h.Buckets, i+1)
		}
	}
	return 0
}

// finiteEdge returns Buckets[i], walking inward past ±Inf edges.
func finiteEdge(buckets []float64, i int) float64 {
	if i >= len(buckets) {
		i = len(buckets) - 1
	}
	for i > 0 && math.IsInf(buckets[i], 0) {
		i--
	}
	if i < 0 || math.IsInf(buckets[i], 0) {
		return 0
	}
	return buckets[i]
}
