package telemetry

import (
	"sync"
	"time"
)

// EventKind classifies flight-recorder events.
type EventKind string

// Flight-recorder event kinds.
const (
	EventHandshakeStart EventKind = "handshake_start"
	EventHandshakeDone  EventKind = "handshake_done"
	EventHandshakeFail  EventKind = "handshake_fail"
	EventStepStart      EventKind = "step_start"
	EventStepEnd        EventKind = "step_end"
	EventCrypto         EventKind = "crypto"
	EventAlertSent      EventKind = "alert_sent"
	EventAlertReceived  EventKind = "alert_received"
	EventError          EventKind = "error"
	EventClose          EventKind = "close"
)

// An Event is one structured flight-recorder entry: something a live
// connection did, stamped with the connection's ID and a global
// sequence number so interleaved connections can be teased apart.
type Event struct {
	Seq     uint64        `json:"seq"`
	Conn    uint64        `json:"conn"`
	At      time.Time     `json:"at"`
	Kind    EventKind     `json:"kind"`
	Name    string        `json:"name,omitempty"`   // step/crypto-fn/alert name
	Detail  string        `json:"detail,omitempty"` // free-form context (error text, suite)
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
}

// A FlightRecorder keeps the last N events in a fixed-size ring so any
// recent connection can be reconstructed post-mortem without unbounded
// memory. It is safe for concurrent use; Record is O(1) under a short
// critical section (no allocation once the ring is full).
type FlightRecorder struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever recorded
}

// DefaultFlightRecorderSize bounds the ring when no size is given.
const DefaultFlightRecorderSize = 4096

// NewFlightRecorder returns a recorder keeping the last size events.
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightRecorderSize
	}
	return &FlightRecorder{ring: make([]Event, 0, size)}
}

// Record appends one event, stamping its sequence number and (when
// unset) its timestamp, evicting the oldest event when full.
func (fr *FlightRecorder) Record(ev Event) {
	if fr == nil {
		return
	}
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	fr.mu.Lock()
	ev.Seq = fr.next
	fr.next++
	if len(fr.ring) < cap(fr.ring) {
		fr.ring = append(fr.ring, ev)
	} else {
		fr.ring[ev.Seq%uint64(cap(fr.ring))] = ev
	}
	fr.mu.Unlock()
}

// Reset drops every retained event. The sequence counter keeps
// running (rounded up to a ring multiple, preserving the seq%cap slot
// invariant Record and Events rely on), so post-reset events are
// still globally ordered against anything captured before the reset.
func (fr *FlightRecorder) Reset() {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	fr.ring = fr.ring[:0]
	if c := uint64(cap(fr.ring)); c > 0 && fr.next%c != 0 {
		fr.next += c - fr.next%c
	}
	fr.mu.Unlock()
}

// Len reports how many events are currently retained.
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.ring)
}

// Total reports how many events were ever recorded (including evicted).
func (fr *FlightRecorder) Total() uint64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.next
}

// Events returns the retained events oldest-first.
func (fr *FlightRecorder) Events() []Event {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]Event, 0, len(fr.ring))
	if len(fr.ring) < cap(fr.ring) {
		return append(out, fr.ring...)
	}
	// Full ring: oldest is at next % cap.
	start := int(fr.next % uint64(cap(fr.ring)))
	out = append(out, fr.ring[start:]...)
	return append(out, fr.ring[:start]...)
}

// ConnEvents returns the retained events for one connection ID,
// oldest-first — the step-by-step trace of that connection.
func (fr *FlightRecorder) ConnEvents(conn uint64) []Event {
	var out []Event
	for _, ev := range fr.Events() {
		if ev.Conn == conn {
			out = append(out, ev)
		}
	}
	return out
}
