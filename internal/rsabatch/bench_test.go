package rsabatch

import (
	cryptorand "crypto/rand"
	"fmt"
	"sync"
	"testing"
)

// benchBits sizes the benchmark modulus; 1024 matches the paper's
// server-key size (Table 2 measures 1024-bit RSA).
const benchBits = 1024

var (
	benchKSOnce sync.Once
	benchKS     *KeySet
	benchKSErr  error
)

func benchKeySet(b *testing.B) *KeySet {
	b.Helper()
	benchKSOnce.Do(func() {
		benchKS, benchKSErr = GenerateKeySet(cryptorand.Reader, benchBits, MaxBatch)
	})
	if benchKSErr != nil {
		b.Fatal(benchKSErr)
	}
	return benchKS
}

// BenchmarkBatchDecrypt measures the amortization curve: decrypts/s
// for batch sizes 1, 2, 4, 8 over one shared 1024-bit modulus.
// batch=1 is the per-request CRT baseline (exactly what an unbatched
// server pays per handshake); larger sizes share one full-size
// exponentiation per batch. docs/BENCH_rsa_batch.json records the
// resulting speedups.
func BenchmarkBatchDecrypt(b *testing.B) {
	ks := benchKeySet(b)
	cts := make([][]byte, MaxBatch)
	for i := range cts {
		ct, err := ks.Keys[i].PublicKey.EncryptPKCS1(cryptorand.Reader, []byte(fmt.Sprintf("pre-master %d", i)))
		if err != nil {
			b.Fatal(err)
		}
		cts[i] = ct
	}
	for _, size := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			idxs := make([]int, size)
			for i := range idxs {
				idxs[i] = i
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if size == 1 {
					// The engine resolves singletons through the plain
					// CRT path; measure exactly that.
					if _, err := ks.Keys[0].DecryptPKCS1(cryptorand.Reader, cts[0]); err != nil {
						b.Fatal(err)
					}
					continue
				}
				_, errs, err := ks.DecryptBatch(cryptorand.Reader, idxs, cts[:size])
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range errs {
					if e != nil {
						b.Fatal(e)
					}
				}
			}
			b.StopTimer()
			perOp := float64(size)
			b.ReportMetric(perOp*float64(b.N)/b.Elapsed().Seconds(), "decrypts/s")
		})
	}
}
