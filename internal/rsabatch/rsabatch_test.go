package rsabatch

import (
	"bytes"
	cryptorand "crypto/rand"
	stdrsa "crypto/rsa"
	"fmt"
	"math/big"
	"sync"
	"testing"
	"time"

	"sslperf/internal/bn"
	"sslperf/internal/rsa"
)

// testBits keeps the shared test modulus small enough that the
// retry-heavy KeySet generation stays fast.
const testBits = 512

var (
	testKSOnce sync.Once
	testKS     *KeySet
	testKSErr  error
)

// keySet returns one full-width KeySet shared by every test.
func keySet(t *testing.T) *KeySet {
	t.Helper()
	testKSOnce.Do(func() {
		testKS, testKSErr = GenerateKeySet(cryptorand.Reader, testBits, MaxBatch)
	})
	if testKSErr != nil {
		t.Fatal(testKSErr)
	}
	return testKS
}

func TestGenerateKeySet(t *testing.T) {
	ks := keySet(t)
	if len(ks.Keys) != MaxBatch {
		t.Fatalf("got %d keys, want %d", len(ks.Keys), MaxBatch)
	}
	for i, key := range ks.Keys {
		if !key.N.Equal(ks.N) {
			t.Fatalf("key %d does not share the modulus", i)
		}
		if e, ok := key.E.Uint64(); !ok || e != BatchExponents[i] {
			t.Fatalf("key %d exponent %d, want %d", i, e, BatchExponents[i])
		}
		if err := key.Validate(); err != nil {
			t.Fatalf("key %d invalid: %v", i, err)
		}
	}
	if _, err := GenerateKeySet(cryptorand.Reader, testBits, 0); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := GenerateKeySet(cryptorand.Reader, testBits, MaxBatch+1); err == nil {
		t.Fatal("over-wide set accepted")
	}
}

// toStdKey converts one of our keys to a crypto/rsa key so the batch
// path can be cross-checked against the standard library.
func toStdKey(key *rsa.PrivateKey) *stdrsa.PrivateKey {
	toBig := func(x *bn.Int) *big.Int { return new(big.Int).SetBytes(x.Bytes()) }
	e, _ := key.E.Uint64()
	return &stdrsa.PrivateKey{
		PublicKey: stdrsa.PublicKey{
			N: toBig(key.N),
			E: int(e),
		},
		D:      toBig(key.D),
		Primes: []*big.Int{toBig(key.P), toBig(key.Q)},
	}
}

// TestBatchMatchesCRTAndStdlib is the bit-exactness cross-check the
// acceptance criteria require: for every batch size 1..MaxBatch, the
// batch result equals both our per-request CRT decryption and the
// standard library's, on ciphertexts produced by both encrypters.
func TestBatchMatchesCRTAndStdlib(t *testing.T) {
	ks := keySet(t)
	for b := 1; b <= MaxBatch; b++ {
		t.Run(fmt.Sprintf("batch=%d", b), func(t *testing.T) {
			idxs := make([]int, b)
			cts := make([][]byte, b)
			msgs := make([][]byte, b)
			for i := 0; i < b; i++ {
				idxs[i] = i
				msgs[i] = []byte(fmt.Sprintf("pre-master secret %d for batch %d", i, b))
				// Alternate encrypters so both wire formats are covered.
				if i%2 == 0 {
					ct, err := ks.Keys[i].PublicKey.EncryptPKCS1(cryptorand.Reader, msgs[i])
					if err != nil {
						t.Fatal(err)
					}
					cts[i] = ct
				} else {
					ct, err := stdrsa.EncryptPKCS1v15(cryptorand.Reader, &toStdKey(ks.Keys[i]).PublicKey, msgs[i])
					if err != nil {
						t.Fatal(err)
					}
					cts[i] = ct
				}
			}
			pts, errs, err := ks.DecryptBatch(cryptorand.Reader, idxs, cts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < b; i++ {
				if errs[i] != nil {
					t.Fatalf("item %d: %v", i, errs[i])
				}
				if !bytes.Equal(pts[i], msgs[i]) {
					t.Fatalf("item %d: plaintext mismatch", i)
				}
				crt, err := ks.Keys[i].DecryptPKCS1(cryptorand.Reader, cts[i])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(pts[i], crt) {
					t.Fatalf("item %d: batch result differs from CRT decryption", i)
				}
				std, err := stdrsa.DecryptPKCS1v15(nil, toStdKey(ks.Keys[i]), cts[i])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(pts[i], std) {
					t.Fatalf("item %d: batch result differs from crypto/rsa", i)
				}
			}
		})
	}
}

// TestBatchUnblinded checks the rnd == nil path gives the same bits.
func TestBatchUnblinded(t *testing.T) {
	ks := keySet(t)
	idxs := []int{1, 4, 6}
	cts := make([][]byte, len(idxs))
	msgs := make([][]byte, len(idxs))
	for i, idx := range idxs {
		msgs[i] = []byte{byte(i + 1), 0xAB, 0xCD}
		ct, err := ks.Keys[idx].PublicKey.EncryptPKCS1(cryptorand.Reader, msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
	}
	pts, errs, err := ks.DecryptBatch(nil, idxs, cts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range idxs {
		if errs[i] != nil || !bytes.Equal(pts[i], msgs[i]) {
			t.Fatalf("item %d: %v", i, errs[i])
		}
	}
}

func TestBatchRejectsDuplicateIndex(t *testing.T) {
	ks := keySet(t)
	ct, err := ks.Keys[0].PublicKey.EncryptPKCS1(cryptorand.Reader, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ks.DecryptBatch(nil, []int{0, 0}, [][]byte{ct, ct}); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, _, err := ks.DecryptBatch(nil, []int{0, 99}, [][]byte{ct, ct}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// TestBatchBadItem checks a malformed ciphertext is isolated to its
// own errs slot while the rest of the batch decrypts.
func TestBatchBadItem(t *testing.T) {
	ks := keySet(t)
	msg := []byte("good item")
	good, err := ks.Keys[0].PublicKey.EncryptPKCS1(cryptorand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	short := []byte{1, 2, 3} // wrong length: fails CiphertextToInt
	pts, errs, err := ks.DecryptBatch(cryptorand.Reader, []int{0, 3}, [][]byte{good, short})
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || !bytes.Equal(pts[0], msg) {
		t.Fatalf("good item failed: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("malformed item decrypted")
	}
}

// engineRoundTrip pushes one message through a Decrypter handle and
// checks the plaintext.
func engineRoundTrip(t *testing.T, dec rsa.Decrypter, pub *rsa.PublicKey, msg []byte) {
	t.Helper()
	ct, err := pub.EncryptPKCS1(cryptorand.Reader, msg)
	if err != nil {
		t.Error(err)
		return
	}
	pt, err := dec.DecryptPKCS1(cryptorand.Reader, ct)
	if err != nil {
		t.Error(err)
		return
	}
	if !bytes.Equal(pt, msg) {
		t.Error("plaintext mismatch through engine")
	}
}

// TestEngineBatchesFullWindow checks that a full window of concurrent
// requests is resolved as one batch.
func TestEngineBatchesFullWindow(t *testing.T) {
	ks := keySet(t)
	e := NewEngine(ks, Config{BatchSize: 4, Linger: time.Second, Rand: cryptorand.Reader})
	defer e.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			engineRoundTrip(t, e.Decrypter(i), &ks.Keys[i].PublicKey, []byte(fmt.Sprintf("req %d", i)))
		}(i)
	}
	wg.Wait()
	st := e.Stats()
	if st.Batched != 4 {
		t.Fatalf("Batched = %d, want 4 (stats: %+v)", st.Batched, st)
	}
	if st.FlushFull != 1 {
		t.Fatalf("FlushFull = %d, want 1 (stats: %+v)", st.FlushFull, st)
	}
}

// TestEngineLingerFlush checks a partial batch is flushed by the
// linger timer rather than waiting forever.
func TestEngineLingerFlush(t *testing.T) {
	ks := keySet(t)
	e := NewEngine(ks, Config{BatchSize: 8, Linger: 5 * time.Millisecond, Rand: cryptorand.Reader})
	defer e.Close()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			engineRoundTrip(t, e.Decrypter(i), &ks.Keys[i].PublicKey, []byte("linger"))
		}(i)
	}
	wg.Wait()
	st := e.Stats()
	if st.Batched+st.Direct != 3 {
		t.Fatalf("resolved %d requests, want 3 (stats: %+v)", st.Batched+st.Direct, st)
	}
	if st.FlushLinger == 0 {
		t.Fatalf("no linger flush recorded (stats: %+v)", st)
	}
}

// TestEngineExponentCollision checks that two requests under the same
// key force an early flush instead of an invalid batch.
func TestEngineExponentCollision(t *testing.T) {
	ks := keySet(t)
	e := NewEngine(ks, Config{BatchSize: 8, Linger: 20 * time.Millisecond, Rand: cryptorand.Reader})
	defer e.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Everyone uses key 2: each arrival after the first forces
			// a collision flush.
			engineRoundTrip(t, e.Decrypter(2), &ks.Keys[2].PublicKey, []byte(fmt.Sprintf("dup %d", i)))
		}(i)
	}
	wg.Wait()
	st := e.Stats()
	if st.Batched+st.Direct != 4 {
		t.Fatalf("resolved %d requests, want 4 (stats: %+v)", st.Batched+st.Direct, st)
	}
}

// TestEngineMixedConcurrent hammers the engine from many goroutines
// across all keys — the shape the -race acceptance run exercises.
func TestEngineMixedConcurrent(t *testing.T) {
	ks := keySet(t)
	e := NewEngine(ks, Config{BatchSize: 4, Linger: time.Millisecond, Rand: cryptorand.Reader})
	defer e.Close()
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 3; it++ {
				idx := (g + it) % len(ks.Keys)
				engineRoundTrip(t, e.Decrypter(idx), &ks.Keys[idx].PublicKey,
					[]byte(fmt.Sprintf("msg %d/%d", g, it)))
			}
		}(g)
	}
	wg.Wait()
	st := e.Stats()
	if st.Batched+st.Direct != goroutines*3 {
		t.Fatalf("resolved %d, want %d (stats: %+v)", st.Batched+st.Direct, goroutines*3, st)
	}
}

// TestEngineFallbackForeignKey checks DecrypterFor with a key outside
// the set (a conventional e=65537 key) is a pure passthrough.
func TestEngineFallbackForeignKey(t *testing.T) {
	ks := keySet(t)
	e := NewEngine(ks, Config{Rand: cryptorand.Reader})
	defer e.Close()
	foreign, err := rsa.GenerateKey(cryptorand.Reader, testBits)
	if err != nil {
		t.Fatal(err)
	}
	engineRoundTrip(t, e.DecrypterFor(foreign), &foreign.PublicKey, []byte("fallback"))
	if st := e.Stats(); st.Batched != 0 {
		t.Fatalf("foreign key went through the batch path (stats: %+v)", st)
	}
	// A set member resolved through DecrypterFor does go through the
	// engine.
	engineRoundTrip(t, e.DecrypterFor(ks.Keys[0]), &ks.Keys[0].PublicKey, []byte("member"))
	if st := e.Stats(); st.Batched+st.Direct == 0 {
		t.Fatalf("set member bypassed the engine (stats: %+v)", st)
	}
}

// TestEngineCloseUnderLoad checks Close never strands a submitter.
func TestEngineCloseUnderLoad(t *testing.T) {
	ks := keySet(t)
	e := NewEngine(ks, Config{BatchSize: 4, Linger: time.Millisecond, Rand: cryptorand.Reader})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Results may come from the batch, direct, or post-close
			// drain paths; all must return correct plaintext.
			engineRoundTrip(t, e.Decrypter(g%len(ks.Keys)), &ks.Keys[g%len(ks.Keys)].PublicKey,
				[]byte("closing"))
		}(g)
	}
	e.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("submitters stranded after Close")
	}
	// Decryption after Close still works (direct path).
	engineRoundTrip(t, e.Decrypter(0), &ks.Keys[0].PublicKey, []byte("after close"))
}
