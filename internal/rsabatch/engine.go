package rsabatch

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"sslperf/internal/probe"
	"sslperf/internal/rsa"
	"sslperf/internal/telemetry"
	"sslperf/internal/trace"
)

// Telemetry metric names the engine emits.
const (
	MetricBatchSize  = "rsabatch_batch_size"  // value histogram: requests per flushed batch
	MetricQueueDepth = "rsabatch_queue_depth" // value histogram: submission queue depth at submit
	MetricLinger     = "rsabatch_linger"      // duration histogram: first-enqueue → flush latency
)

// Config tunes an Engine. Zero values select the documented defaults.
type Config struct {
	// BatchSize is the flush threshold: a batch is dispatched as soon
	// as it holds this many requests (all under distinct exponents).
	// Defaults to 4; capped at the key-set width.
	BatchSize int

	// Linger is how long a partial batch waits for company before it
	// is flushed anyway — the latency bound a lone handshake pays.
	// Defaults to 500µs.
	Linger time.Duration

	// Workers is the number of goroutines executing flushed batches;
	// while one worker runs the tree another can collect the next
	// batch. Defaults to 2.
	Workers int

	// QueueDepth bounds the submission queue. When it is full,
	// Submit blocks up to SubmitTimeout and then decrypts directly —
	// backpressure degrades to the unbatched path instead of
	// queueing without bound. Defaults to 64.
	QueueDepth int

	// SubmitTimeout is the deadline for enqueueing a request before
	// the caller falls back to direct decryption. Defaults to 10ms.
	SubmitTimeout time.Duration

	// Rand, when non-nil, blinds each batch's root exponentiation
	// (serialized internally; see KeySet.DecryptBatch).
	Rand io.Reader

	// Probes subscribes sinks to the engine's probe events: value
	// samples for batch size and queue depth, a timer for linger
	// latency, and one engine span per executed batch (linked to the
	// handshake spans it served). Sinks are shared across the
	// engine's goroutines and must tolerate concurrent Emit calls.
	Probes []probe.Sink

	// Telemetry, when non-nil, receives the engine's batch-size,
	// queue-depth, and linger-latency histograms.
	//
	// Deprecated: a shim wrapping the registry in a
	// telemetry.EngineSink on the engine's bus; prefer Probes.
	Telemetry *telemetry.Registry

	// Tracer, when non-nil, receives one engine span per executed
	// batch, linked to the handshake spans the batch served (requests
	// submitted through DecrypterTraced carry the link), so the
	// cross-connection amortization is visible in /debug/trace.
	//
	// Deprecated: a shim wrapping the tracer in a trace.EngineSink on
	// the engine's bus; prefer Probes.
	Tracer *trace.Tracer
}

func (c *Config) withDefaults(width int) Config {
	out := *c
	if out.BatchSize <= 0 {
		out.BatchSize = 4
	}
	if out.BatchSize > width {
		out.BatchSize = width
	}
	if out.Linger <= 0 {
		out.Linger = 500 * time.Microsecond
	}
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 64
	}
	if out.SubmitTimeout <= 0 {
		out.SubmitTimeout = 10 * time.Millisecond
	}
	return out
}

// Stats counts engine activity (all fields read with atomic loads via
// the Stats method).
type Stats struct {
	Batched       uint64 // requests resolved through a batch tree
	Direct        uint64 // requests resolved by per-request CRT decryption
	FlushFull     uint64 // batches flushed because they reached BatchSize
	FlushLinger   uint64 // batches flushed by the linger timer
	FlushCollide  uint64 // batches flushed early by an exponent collision
	VerifyRetries uint64 // items re-decrypted after a self-check mismatch
}

type result struct {
	pt  []byte
	err error
}

type request struct {
	idx  int
	ct   []byte
	rnd  io.Reader // caller's randomness, used only on the direct path
	link trace.Ref // submitting handshake's span, for batch-span links
	done chan result
}

// An Engine collects concurrent RSA decrypt requests against a
// KeySet into Fiat batches and executes them on a bounded worker
// pool. Handshake goroutines submit through the per-key Decrypter
// handles and block only for their own result; the dispatcher
// amortizes the full-size exponentiation across whoever arrives
// within the batch window.
type Engine struct {
	ks  *KeySet
	cfg Config
	bus *probe.Bus

	subq chan *request
	quit chan struct{}
	wg   sync.WaitGroup

	// mu orders submissions against Close: enqueues hold the read
	// lock, Close flips closed under the write lock, so after Close's
	// final drain no request can be stranded on subq.
	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once

	batched       atomic.Uint64
	direct        atomic.Uint64
	flushFull     atomic.Uint64
	flushLinger   atomic.Uint64
	flushCollide  atomic.Uint64
	verifyRetries atomic.Uint64
}

// lockedReader serializes a shared randomness source: the blinding
// reads happen on whichever worker runs the batch, so the engine's
// Rand is touched from several goroutines.
type lockedReader struct {
	mu sync.Mutex
	r  io.Reader
}

func (l *lockedReader) Read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(p)
}

// NewEngine starts an engine over ks. Call Close to stop its
// goroutines.
func NewEngine(ks *KeySet, cfg Config) *Engine {
	c := cfg.withDefaults(len(ks.Keys))
	if c.Rand != nil {
		c.Rand = &lockedReader{r: c.Rand}
	}
	sinks := append(append([]probe.Sink(nil), c.Probes...),
		telemetry.EngineSink(c.Telemetry), trace.EngineSink(c.Tracer))
	e := &Engine{
		ks:   ks,
		cfg:  c,
		bus:  probe.NewBus(sinks...),
		subq: make(chan *request, c.QueueDepth),
		quit: make(chan struct{}),
	}
	workq := make(chan []*request)
	for i := 0; i < c.Workers; i++ {
		e.wg.Add(1)
		go e.worker(workq)
	}
	e.wg.Add(1)
	go e.collect(workq)
	return e
}

// KeySet returns the engine's key set.
func (e *Engine) KeySet() *KeySet { return e.ks }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Batched:       e.batched.Load(),
		Direct:        e.direct.Load(),
		FlushFull:     e.flushFull.Load(),
		FlushLinger:   e.flushLinger.Load(),
		FlushCollide:  e.flushCollide.Load(),
		VerifyRetries: e.verifyRetries.Load(),
	}
}

// Close stops the dispatcher and workers after flushing any pending
// batch. Submissions racing with Close fall back to direct
// decryption; Close may block up to SubmitTimeout for them.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.mu.Lock()
		e.closed = true
		e.mu.Unlock()
		close(e.quit)
	})
	e.wg.Wait()
	// With closed set and the goroutines gone, nothing else touches
	// subq: serve any requests that slipped in during the shutdown
	// race directly.
	for {
		select {
		case req := <-e.subq:
			e.direct.Add(1)
			pt, err := e.ks.Keys[req.idx].DecryptPKCS1(e.randFor(req), req.ct)
			req.done <- result{pt: pt, err: err}
		default:
			return
		}
	}
}

// collect is the dispatcher loop: it gathers requests into a batch
// and flushes on size, exponent collision, linger expiry, or
// shutdown.
func (e *Engine) collect(workq chan []*request) {
	defer e.wg.Done()
	defer close(workq)

	var (
		pending    []*request
		mask       uint32
		batchStart time.Time
		timer      = time.NewTimer(0)
		lingerC    <-chan time.Time
	)
	if !timer.Stop() {
		<-timer.C
	}

	flush := func() {
		if len(pending) == 0 {
			return
		}
		timer.Stop()
		lingerC = nil
		e.bus.EngineValue(MetricBatchSize, int64(len(pending)))
		e.bus.EngineTimer(MetricLinger, time.Since(batchStart))
		batch := pending
		pending = nil
		mask = 0
		select {
		case workq <- batch: // backpressure: waits for a free worker
		case <-e.quit:
			// Workers drain workq before exiting, but if we lose the
			// race the batch still must complete: run it inline.
			e.runBatch(batch)
		}
	}

	for {
		select {
		case req := <-e.subq:
			bit := uint32(1) << uint(req.idx)
			if mask&bit != 0 {
				// Second request under the same exponent: Fiat needs
				// pairwise-coprime exponents, so the current batch
				// ships now and this request opens the next one.
				e.flushCollide.Add(1)
				flush()
			}
			pending = append(pending, req)
			mask |= bit
			if len(pending) == 1 {
				batchStart = time.Now()
				timer.Reset(e.cfg.Linger)
				lingerC = timer.C
			}
			if len(pending) >= e.cfg.BatchSize {
				e.flushFull.Add(1)
				flush()
			}
		case <-lingerC:
			e.flushLinger.Add(1)
			flush()
		case <-e.quit:
			// Drain whatever is already queued, then flush and exit.
			for {
				select {
				case req := <-e.subq:
					pending = append(pending, req)
				default:
					flush()
					return
				}
			}
		}
	}
}

// worker executes flushed batches until the dispatcher closes workq.
func (e *Engine) worker(workq chan []*request) {
	defer e.wg.Done()
	for batch := range workq {
		e.runBatch(batch)
	}
}

// runBatch resolves one batch: the Fiat tree for two or more
// requests, the plain CRT path for a singleton, and a per-item CRT
// retry for any self-check miss.
func (e *Engine) runBatch(batch []*request) {
	if len(batch) == 1 {
		req := batch[0]
		e.direct.Add(1)
		pt, err := e.ks.Keys[req.idx].DecryptPKCS1(e.randFor(req), req.ct)
		req.done <- result{pt: pt, err: err}
		return
	}
	if e.bus.Active() {
		start := e.bus.Stamp()
		defer func() {
			var links []probe.SpanRef
			for _, req := range batch {
				if req.link != (probe.SpanRef{}) {
					links = append(links, req.link)
				}
			}
			e.bus.EngineSpan("rsa_batch", len(batch), start, links)
		}()
	}
	idxs := make([]int, len(batch))
	cts := make([][]byte, len(batch))
	for i, req := range batch {
		idxs[i] = req.idx
		cts[i] = req.ct
	}
	var pts [][]byte
	var errs []error
	var err error
	// Label the batched tree walk so CPU profiles attribute its
	// samples to sslengine=rsa_batch even though it runs off the
	// handshake goroutines (no-op unless profile labels are armed).
	probe.LabelEngine("rsa_batch", func() {
		pts, errs, err = e.ks.DecryptBatch(e.cfg.Rand, idxs, cts)
	})
	if err != nil {
		// Whole-batch failure (e.g. a degenerate ciphertext made a
		// tree value non-invertible): every request falls back to the
		// independent CRT path.
		for _, req := range batch {
			e.direct.Add(1)
			pt, derr := e.ks.Keys[req.idx].DecryptPKCS1(e.randFor(req), req.ct)
			req.done <- result{pt: pt, err: derr}
		}
		return
	}
	for i, req := range batch {
		if errs[i] == ErrVerify {
			e.verifyRetries.Add(1)
			e.direct.Add(1)
			pt, derr := e.ks.Keys[req.idx].DecryptPKCS1(e.randFor(req), req.ct)
			req.done <- result{pt: pt, err: derr}
			continue
		}
		e.batched.Add(1)
		req.done <- result{pt: pts[i], err: errs[i]}
	}
}

// randFor picks the randomness for a direct decryption: the caller's
// source when it supplied one, else the engine's.
func (e *Engine) randFor(req *request) io.Reader {
	if req.rnd != nil {
		return req.rnd
	}
	return e.cfg.Rand
}

// decrypt submits one request and waits for its result, falling back
// to direct decryption when the queue stays full past SubmitTimeout
// or the engine is shut down.
func (e *Engine) decrypt(idx int, rnd io.Reader, ct []byte, ref func() trace.Ref) ([]byte, error) {
	req := &request{idx: idx, ct: ct, rnd: rnd, done: make(chan result, 1)}
	if ref != nil {
		// Captured on the submitting (handshake) goroutine, so the ref
		// names the step span that is waiting on this decryption.
		req.link = ref()
	}
	e.bus.EngineValue(MetricQueueDepth, int64(len(e.subq)))
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		e.direct.Add(1)
		return e.ks.Keys[idx].DecryptPKCS1(e.orRand(rnd), ct)
	}
	deadline := time.NewTimer(e.cfg.SubmitTimeout)
	defer deadline.Stop()
	select {
	case e.subq <- req:
		e.mu.RUnlock()
	case <-deadline.C:
		e.mu.RUnlock()
		e.direct.Add(1)
		return e.ks.Keys[idx].DecryptPKCS1(e.orRand(rnd), ct)
	}
	r := <-req.done
	return r.pt, r.err
}

func (e *Engine) orRand(rnd io.Reader) io.Reader {
	if rnd != nil {
		return rnd
	}
	return e.cfg.Rand
}

// handle is the per-key rsa.Decrypter the handshake layer plugs in.
type handle struct {
	e   *Engine
	idx int // −1: key outside the set, pure passthrough
	key *rsa.PrivateKey
	ref func() trace.Ref // current submitter span, for batch-span links
}

// DecryptPKCS1 implements rsa.Decrypter. In-set keys go through the
// batch queue; everything else — e.g. a conventional e=65537 key —
// falls through to per-request CRT decryption.
func (h *handle) DecryptPKCS1(rnd io.Reader, ct []byte) ([]byte, error) {
	if h.idx < 0 {
		return h.key.DecryptPKCS1(rnd, ct)
	}
	return h.e.decrypt(h.idx, rnd, ct, h.ref)
}

// Decrypter returns the batching rsa.Decrypter for set key i.
func (e *Engine) Decrypter(i int) rsa.Decrypter {
	return &handle{e: e, idx: i, key: e.ks.Keys[i]}
}

// DecrypterTraced is Decrypter plus span linkage: ref is called on the
// submitting goroutine at enqueue time and its result is attached to
// the batch span that ends up serving the request. Use one handle per
// connection, with ref closing over that connection's trace.
func (e *Engine) DecrypterTraced(i int, ref func() trace.Ref) rsa.Decrypter {
	return &handle{e: e, idx: i, key: e.ks.Keys[i], ref: ref}
}

// DecrypterFor wraps key: a member of the engine's set decrypts
// through the batch queue, any other key (small-exponent or not)
// decrypts directly — the transparent fallback for e=65537
// deployments.
func (e *Engine) DecrypterFor(key *rsa.PrivateKey) rsa.Decrypter {
	return &handle{e: e, idx: e.ks.Contains(key), key: key}
}
