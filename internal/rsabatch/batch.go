package rsabatch

import (
	"errors"
	"fmt"
	"io"

	"sslperf/internal/bn"
)

// ErrVerify marks a batch item whose recovered plaintext failed the
// cheap re-encryption self-check m^e ≡ c. It should never fire for
// well-formed ciphertexts; the engine responds by retrying the item
// through the per-request CRT path.
var ErrVerify = errors.New("rsabatch: batch result failed re-encryption check")

// node is one vertex of the Fiat batch tree. Leaves carry one
// request; internal nodes carry the product of the exponents below
// them, the combined value of the percolate-up phase, and the
// precomputed split data for percolate-down.
type node struct {
	l, r *node
	item int     // leaf: index into the batch; internal: -1
	e    uint64  // ∏ e_i over the leaves below
	v    *bn.Int // percolate-up value: ∏ v_i^(e/e_i)
	m    *bn.Int // percolate-down result: v^(1/e)

	// Percolate-down exponents: α ≡ 1 mod eL, 0 mod eR and
	// β = eL·eR + 1 − α (so β ≡ 0 mod eL, 1 mod eR).
	alpha, beta uint64
	// Inverses of the percolate-down denominators
	// Tα = vL^((α−1)/eL)·vR^(α/eR) and Tβ = vL^(β/eL)·vR^((β−1)/eR).
	// Both depend only on percolate-up values, so every inverse in
	// the batch — these and the blinding factor — is produced by ONE
	// modular inversion via Montgomery's trick.
	tAlphaInv, tBetaInv *bn.Int
}

// DecryptBatch decrypts cts[i] under ks.Keys[idxs[i]] for all i with
// one full-size CRT exponentiation plus one modular inversion (Fiat's
// batch RSA with batched division), returning the unpadded
// plaintexts. The key indices must be distinct — Fiat's construction
// needs pairwise-coprime exponents. Per-item failures (malformed
// ciphertext, bad padding, self-check mismatch) land in errs[i]; a
// non-nil err means the whole batch was abandoned and no item was
// decrypted.
//
// When rnd is non-nil the root exponentiation is blinded: the
// combined value V is multiplied by r^E before the private op and the
// result by r⁻¹ after, so the one secret-exponent operation a timing
// attacker could probe (Brumley & Boneh, the paper's [3]) never sees
// attacker-chosen input. Per-item results are bit-exact with
// PrivateKey.DecryptPKCS1 either way.
func (ks *KeySet) DecryptBatch(rnd io.Reader, idxs []int, cts [][]byte) (pts [][]byte, errs []error, err error) {
	if len(idxs) != len(cts) {
		return nil, nil, errors.New("rsabatch: idxs/cts length mismatch")
	}
	if len(idxs) == 0 {
		return nil, nil, nil
	}
	var mask uint32
	for _, idx := range idxs {
		if idx < 0 || idx >= len(ks.Keys) {
			return nil, nil, fmt.Errorf("rsabatch: key index %d out of range", idx)
		}
		if mask&(1<<uint(idx)) != 0 {
			return nil, nil, fmt.Errorf("rsabatch: duplicate key index %d in batch", idx)
		}
		mask |= 1 << uint(idx)
	}

	pts = make([][]byte, len(idxs))
	errs = make([]error, len(idxs))

	// Leaves: parse ciphertexts (Table 7 phases 1–2). A bad item is
	// reported in errs and excluded from the tree.
	leaves := make([]*node, 0, len(idxs))
	vals := make([]*bn.Int, len(idxs))
	for i, idx := range idxs {
		c, cerr := ks.Keys[idx].CiphertextToInt(cts[i])
		if cerr != nil {
			errs[i] = cerr
			mask &^= 1 << uint(idx)
			continue
		}
		vals[i] = c
		leaves = append(leaves, &node{item: i, e: BatchExponents[idx]})
	}
	if len(leaves) == 0 {
		return pts, errs, nil
	}

	root := buildTree(leaves)

	// Percolate up: each internal node combines its children as
	// v = vL^(eR) · vR^(eL), so the root holds ∏ v_i^(E/e_i).
	ks.percolateUp(root, vals)

	// Precompute every percolate-down denominator, draw the blinding
	// factor, and resolve ALL needed inverses with one inversion.
	var toInvert []*bn.Int
	if err := ks.prepDown(root, &toInvert); err != nil {
		return nil, nil, err
	}
	var r *bn.Int
	if rnd != nil {
		var rerr error
		if r, rerr = bn.New().RandRange(rnd, ks.N); rerr != nil {
			return nil, nil, rerr
		}
		toInvert = append(toInvert, r)
	}
	invs := make([]*bn.Int, len(toInvert))
	if !bn.BatchModInverse(invs, toInvert, ks.N) {
		return nil, nil, errors.New("rsabatch: batch value not invertible (input shares a factor with N)")
	}
	ks.assignInverses(root, invs)

	// Root: one full-size CRT exponentiation with d = E⁻¹ mod φ(N),
	// optionally blinded with r^E / r⁻¹.
	re := ks.root(mask)
	v := root.v
	if r != nil {
		rE := ks.mont.ExpUint64(bn.New(), r, root.e)
		v = bn.New().Mul(v, rE)
		v.Mod(v, ks.N)
	}
	m := ks.crtExp(v, re)
	if r != nil {
		rinv := invs[len(invs)-1]
		m.Mul(m, rinv)
		m.Mod(m, ks.N)
	}
	root.m = m

	// Percolate down: split each node's m into its children's roots.
	ks.percolateDown(root)

	// Harvest: self-check and unpad each leaf (Table 7 phases 5–6).
	ks.harvest(root, vals, idxs, pts, errs)
	return pts, errs, nil
}

// buildTree assembles a balanced binary tree over the leaves.
func buildTree(leaves []*node) *node {
	if len(leaves) == 1 {
		return leaves[0]
	}
	mid := len(leaves) / 2
	l := buildTree(leaves[:mid])
	r := buildTree(leaves[mid:])
	return &node{l: l, r: r, item: -1, e: l.e * r.e}
}

// percolateUp fills in the combined values bottom-up.
func (ks *KeySet) percolateUp(n *node, vals []*bn.Int) {
	if n.item >= 0 {
		n.v = vals[n.item]
		return
	}
	ks.percolateUp(n.l, vals)
	ks.percolateUp(n.r, vals)
	// v = vL^(eR) · vR^(eL): one shared-chain double exponentiation
	// with exponents bounded by ∏ e_i ≤ 2^27.
	n.v = ks.mont.Exp2Uint64(bn.New(), n.l.v, n.r.e, n.r.v, n.l.e)
}

// prepDown computes each internal node's split exponents α, β and the
// denominators Tα, Tβ, appending the denominators to toInvert in the
// order assignInverses will consume them. Everything here depends
// only on percolate-up values, which is what lets the divisions batch.
func (ks *KeySet) prepDown(n *node, toInvert *[]*bn.Int) error {
	if n.item >= 0 {
		return nil
	}
	eL, eR := n.l.e, n.r.e
	t, ok := invMod64(eR, eL)
	if !ok {
		return fmt.Errorf("rsabatch: exponents %d and %d not coprime", eL, eR)
	}
	n.alpha = eR * t // α ≡ 1 (mod eL), α ≡ 0 (mod eR), α < eL·eR
	n.beta = eL*eR + 1 - n.alpha
	tAlpha := ks.mont.Exp2Uint64(bn.New(),
		n.l.v, (n.alpha-1)/eL,
		n.r.v, n.alpha/eR)
	tBeta := ks.mont.Exp2Uint64(bn.New(),
		n.l.v, n.beta/eL,
		n.r.v, (n.beta-1)/eR)
	*toInvert = append(*toInvert, tAlpha, tBeta)
	if err := ks.prepDown(n.l, toInvert); err != nil {
		return err
	}
	return ks.prepDown(n.r, toInvert)
}

// assignInverses distributes the batch-inverted denominators back to
// the internal nodes, mirroring prepDown's walk order.
func (ks *KeySet) assignInverses(root *node, invs []*bn.Int) {
	i := 0
	var walk func(*node)
	walk = func(n *node) {
		if n.item >= 0 {
			return
		}
		n.tAlphaInv, n.tBetaInv = invs[i], invs[i+1]
		i += 2
		walk(n.l)
		walk(n.r)
	}
	walk(root)
}

// percolateDown splits m = v^(1/(eL·eR)) at each internal node into
// mL = vL^(1/eL) and mR = vR^(1/eR) via the CRT-over-exponents
// identities
//
//	mL = m^α · Tα⁻¹    mR = m^β · Tβ⁻¹
//
// using only small exponentiations (α, β < ∏ e_i ≤ 2^27) and the
// pre-batched inverses — no divisions and no secret-size work.
func (ks *KeySet) percolateDown(n *node) {
	if n.item >= 0 {
		return
	}
	mL := ks.mont.ExpUint64(bn.New(), n.m, n.alpha)
	mL.Mul(mL, n.tAlphaInv)
	mL.Mod(mL, ks.N)
	mR := ks.mont.ExpUint64(bn.New(), n.m, n.beta)
	mR.Mul(mR, n.tBetaInv)
	mR.Mod(mR, ks.N)
	n.l.m, n.r.m = mL, mR
	ks.percolateDown(n.l)
	ks.percolateDown(n.r)
}

// harvest walks the leaves, re-encrypts each recovered root as a
// cheap self-check (e is tiny, so this is a handful of modular
// multiplies), and strips the PKCS#1 padding.
func (ks *KeySet) harvest(n *node, vals []*bn.Int, idxs []int, pts [][]byte, errs []error) {
	if n.item < 0 {
		ks.harvest(n.l, vals, idxs, pts, errs)
		ks.harvest(n.r, vals, idxs, pts, errs)
		return
	}
	i := n.item
	key := ks.Keys[idxs[i]]
	check := ks.mont.ExpUint64(bn.New(), n.m, BatchExponents[idxs[i]])
	if !check.Equal(vals[i]) {
		errs[i] = ErrVerify
		return
	}
	pts[i], errs[i] = key.FinishDecrypt(n.m)
}

// invMod64 returns x⁻¹ mod m for uint64 inputs via extended Euclid,
// and whether the inverse exists. m must be ≥ 2.
func invMod64(x, m uint64) (uint64, bool) {
	r0, r1 := int64(m), int64(x%m)
	s0, s1 := int64(0), int64(1)
	for r1 != 0 {
		q := r0 / r1
		r0, r1 = r1, r0-q*r1
		s0, s1 = s1, s0-q*s1
	}
	if r0 != 1 {
		return 0, false
	}
	res := s0 % int64(m)
	if res < 0 {
		res += int64(m)
	}
	return uint64(res), true
}
