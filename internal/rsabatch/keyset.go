// Package rsabatch implements Fiat's batch RSA for the SSL server's
// hot path: b concurrent private-key operations against keys that
// share one modulus but carry distinct small public exponents are
// resolved with a single full-size modular exponentiation plus a
// product/CRT tree of cheap small-exponent work — the amortization
// Pateriya et al. propose for exactly the workload shape of the
// paper's Table 2, where the server-side RSA private-key operation
// dominates full-handshake cycles.
//
// The package has two layers: KeySet holds the shared-modulus keys
// and the batch decryption math (DecryptBatch), and Engine is the
// bounded worker-pool dispatcher that collects concurrent handshake
// decrypt requests into batches, flushing on size, linger timeout, or
// an exponent collision, and falling back transparently to
// per-request CRT decryption for keys outside the set.
package rsabatch

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"sslperf/internal/bn"
	"sslperf/internal/rsa"
)

// BatchExponents lists the public exponents a KeySet draws from, in
// assignment order: the first odd primes, pairwise coprime as Fiat's
// construction requires. Its length caps the batch width.
var BatchExponents = []uint64{3, 5, 7, 11, 13, 17, 19, 23}

// MaxBatch is the largest supported batch width.
var MaxBatch = len(BatchExponents)

// A KeySet is a family of RSA private keys sharing one modulus
// N = p·q with distinct small public exponents e_i (BatchExponents),
// generated so every e_i is coprime to φ(N). A server deploys one
// certificate per key and assigns them to connections round-robin;
// concurrent decryptions under distinct exponents then batch into a
// single full-size exponentiation. All methods are safe for
// concurrent use.
type KeySet struct {
	N    *bn.Int
	Keys []*rsa.PrivateKey // Keys[i] has public exponent BatchExponents[i]

	p, q, qinv *bn.Int // CRT parameters for the root exponentiation
	pm1, qm1   *bn.Int // p−1, q−1
	phi        *bn.Int
	// Cached Montgomery contexts: every batch reuses them, so the
	// R²-mod setup division is paid once per key set, not per
	// exponentiation.
	mont         *bn.Mont // mod N
	montP, montQ *bn.Mont // mod p, mod q

	mu    sync.Mutex
	roots map[uint32]*rootExp // exponent-subset mask → cached root exponents
}

// rootExp caches the CRT split of d = E⁻¹ mod φ(N) for one subset of
// exponents (E = ∏ e_i over the subset).
type rootExp struct {
	dp, dq *bn.Int
}

// GenerateKeySet generates a KeySet of b keys with a bits-sized
// shared modulus. Primes are retried until every batch exponent is
// coprime to p−1 and q−1 (for the first 8 odd primes roughly one
// candidate in four survives, so expect a few extra prime
// generations over a plain GenerateKey).
func GenerateKeySet(rnd io.Reader, bits, b int) (*KeySet, error) {
	if b < 1 || b > MaxBatch {
		return nil, fmt.Errorf("rsabatch: batch width must be in [1, %d]", MaxBatch)
	}
	if bits < 128 || bits%2 != 0 {
		return nil, errors.New("rsabatch: key size must be an even number of bits >= 128")
	}
	es := BatchExponents[:b]
	one := bn.NewInt(1)
	for {
		p, err := batchPrime(rnd, bits/2, es)
		if err != nil {
			return nil, err
		}
		q, err := batchPrime(rnd, bits/2, es)
		if err != nil {
			return nil, err
		}
		if p.Equal(q) {
			continue
		}
		if p.Cmp(q) < 0 {
			p, q = q, p
		}
		n := bn.New().Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		qinv := bn.New().ModInverse(q, p)
		if qinv == nil {
			continue
		}
		pm1 := bn.New().Sub(p, one)
		qm1 := bn.New().Sub(q, one)
		phi := bn.New().Mul(pm1, qm1)
		mont, err := bn.NewMont(n)
		if err != nil {
			return nil, err
		}
		montP, err := bn.NewMont(p)
		if err != nil {
			return nil, err
		}
		montQ, err := bn.NewMont(q)
		if err != nil {
			return nil, err
		}
		ks := &KeySet{
			N: n, p: p, q: q, qinv: qinv, pm1: pm1, qm1: qm1, phi: phi,
			mont: mont, montP: montP, montQ: montQ,
			roots: make(map[uint32]*rootExp),
		}
		for _, e := range es {
			eInt := bn.NewInt(e)
			d := bn.New().ModInverse(eInt, phi)
			if d == nil {
				// batchPrime guarantees coprimality; unreachable.
				return nil, errors.New("rsabatch: exponent not invertible mod phi")
			}
			ks.Keys = append(ks.Keys, &rsa.PrivateKey{
				PublicKey: rsa.PublicKey{N: n, E: eInt},
				D:         d,
				P:         p,
				Q:         q,
				Dp:        bn.New().Mod(d, pm1),
				Dq:        bn.New().Mod(d, qm1),
				Qinv:      qinv,
			})
		}
		return ks, nil
	}
}

// batchPrime generates a prime p with gcd(e, p−1) = 1 for every
// batch exponent e.
func batchPrime(rnd io.Reader, bitLen int, es []uint64) (*bn.Int, error) {
	one := bn.NewInt(1)
	for {
		p, err := bn.GeneratePrime(rnd, bitLen)
		if err != nil {
			return nil, err
		}
		pm1 := bn.New().Sub(p, one)
		ok := true
		for _, e := range es {
			if bn.New().GCD(pm1, bn.NewInt(e)).IsOne() {
				continue
			}
			ok = false
			break
		}
		if ok {
			return p, nil
		}
	}
}

// Contains reports the index of key within the set, or -1. Matching
// is by pointer identity: the set's own keys, not copies.
func (ks *KeySet) Contains(key *rsa.PrivateKey) int {
	for i, k := range ks.Keys {
		if k == key {
			return i
		}
	}
	return -1
}

// root returns the cached CRT exponents of d = (∏ e_i)⁻¹ mod φ(N)
// for the exponent subset identified by mask (bit i set ⇒ Keys[i]
// participates).
func (ks *KeySet) root(mask uint32) *rootExp {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if r := ks.roots[mask]; r != nil {
		return r
	}
	e := bn.NewInt(1)
	for i := 0; i < len(ks.Keys); i++ {
		if mask&(1<<uint(i)) != 0 {
			e.Mul(e, bn.NewInt(BatchExponents[i]))
		}
	}
	d := bn.New().ModInverse(e, ks.phi)
	r := &rootExp{
		dp: bn.New().Mod(d, ks.pm1),
		dq: bn.New().Mod(d, ks.qm1),
	}
	ks.roots[mask] = r
	return r
}

// crtExp computes c^d mod N where d is given by its CRT split —
// the one full-size exponentiation each batch pays.
func (ks *KeySet) crtExp(c *bn.Int, r *rootExp) *bn.Int {
	m1 := ks.montP.Exp(bn.New(), bn.New().Mod(c, ks.p), r.dp)
	m2 := ks.montQ.Exp(bn.New(), bn.New().Mod(c, ks.q), r.dq)
	h := bn.New().Sub(m1, m2)
	h.Mod(h, ks.p)
	h.Mul(h, ks.qinv)
	h.Mod(h, ks.p)
	m := bn.New().Mul(h, ks.q)
	return m.Add(m, m2)
}
