package aes

import (
	"time"

	"sslperf/internal/cipherinfo"
	"sslperf/internal/perf"
)

// Part names for the Table 5 breakdown.
const (
	PartLoadAddKey = "map block to state, add initial round key"
	PartMainRounds = "main rounds"
	PartFinalRound = "last round, map state to bytes"
)

// ProfileBlockParts times the three parts of the AES block operation
// over n blocks and returns the per-part breakdown (the paper's
// Table 5). Parts are timed in batch — all part-1 work for n blocks,
// then all part-2, then all part-3 — so timer overhead amortizes to
// nothing while the work done is identical to n block encryptions.
func (c *Cipher) ProfileBlockParts(n int) *perf.Breakdown {
	b := perf.NewBreakdown()
	states := make([]state, n)
	src := make([]byte, BlockSize)
	dst := make([]byte, BlockSize)

	start := time.Now()
	for i := range states {
		c.encPart1(&states[i], src)
	}
	b.Add(PartLoadAddKey, time.Since(start))

	start = time.Now()
	for i := range states {
		c.encPart2(&states[i])
	}
	b.Add(PartMainRounds, time.Since(start))

	start = time.Now()
	for i := range states {
		c.encPart3(&states[i], dst)
	}
	b.Add(PartFinalRound, time.Since(start))
	return b
}

// Characteristics returns the Table 4 row for AES.
func Characteristics() cipherinfo.Characteristics {
	return cipherinfo.Characteristics{
		Name:        "AES",
		BlockBits:   128,
		KeyBits:     "128*", // also 192/256
		KeySchedule: "44,32b",
		Tables:      "4,256,32b",
		Rounds:      "10",
		Lookups:     16,
	}
}

// TraceEncryptBlock emits the abstract operation stream of one AES
// block encryption into tr, modeling the x86 code the paper traced:
// per basic operation (one round-output word) the byte extractions
// cost shifts and masks, the four table lookups are indexed loads,
// and the combination is four XORs with the round key loaded from the
// schedule; register pressure on x86 forces the state words through
// memory, which is what puts movl on top of the paper's Table 12.
func (c *Cipher) TraceEncryptBlock(tr *perf.Trace) {
	mainRounds := uint64(c.nr - 1)
	// Part 1: 4 loads (block) + 4 loads (rk) + 4 xor + 4 store (spill).
	tr.Emit(perf.OpLoad, 8)
	tr.Emit(perf.OpXor, 4)
	tr.Emit(perf.OpStore, 4)
	// Part 2: per round, per output word (4 words):
	//   3 shifts + 4 ands (byte extraction; top byte needs no and,
	//   bottom byte no shift — net 3+4 on x86 with movzx idioms),
	//   4 table lookups, 4 xors + 1 round-key load + 1 xor,
	//   1 state reload + 1 result spill (register pressure).
	perWord := func(n uint64) {
		tr.Emit(perf.OpShift, 3*n)
		tr.Emit(perf.OpAnd, 4*n)
		tr.Emit(perf.OpLookup, 4*n)
		tr.Emit(perf.OpXor, 5*n)
		tr.Emit(perf.OpLoad, 2*n)
		tr.Emit(perf.OpStore, 1*n)
	}
	perWord(4 * mainRounds)
	// Loop control per round.
	tr.Emit(perf.OpAdd, mainRounds)
	tr.Emit(perf.OpCmp, mainRounds)
	tr.Emit(perf.OpBranch, mainRounds)
	// Part 3: like one round but byte-wise S-box lookups and stores.
	perWord(4)
	tr.Emit(perf.OpStore, 4)
	tr.Bytes += BlockSize
}
