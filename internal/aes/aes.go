// Package aes implements the AES block cipher (FIPS 197) from
// scratch in the table-driven style of the OpenSSL code the paper
// profiles: four 256-entry 32-bit lookup tables (Te0–Te3) combine
// SubBytes, ShiftRows and MixColumns into four lookups and four XORs
// per output word per round.
//
// The block operation is factored into the three parts of the paper's
// Table 5: (1) load state + initial round-key addition, (2) the main
// rounds, (3) the final round + store. Each part is callable on its
// own so the anatomy harness can time them in batch.
package aes

import (
	"encoding/binary"
	"errors"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// sbox and its inverse, computed at init from GF(2^8) arithmetic
// (multiplicative inverse followed by the affine transform) rather
// than transcribed, since this library builds everything from scratch.
var sbox, invSbox [256]byte

// Te tables for encryption: Te0[x] packs S[x] pre-multiplied by the
// MixColumns coefficients (02,01,01,03); Te1–Te3 are byte rotations.
// Td tables are the decryption counterparts over the inverse S-box
// with coefficients (0e,09,0d,0b).
var te0, te1, te2, te3 [256]uint32
var td0, td1, td2, td3 [256]uint32

// xtime multiplies by x in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// gmul multiplies a and b in GF(2^8).
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

func init() {
	// Multiplicative inverses by brute force (256x256 is trivial at init).
	var inv [256]byte
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if gmul(byte(a), byte(b)) == 1 {
				inv[a] = byte(b)
				break
			}
		}
	}
	// Affine transform: s = b ^ rot(b,1) ^ rot(b,2) ^ rot(b,3) ^ rot(b,4) ^ 0x63.
	rotl8 := func(b byte, n uint) byte { return b<<n | b>>(8-n) }
	for i := 0; i < 256; i++ {
		b := inv[i]
		s := b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := xtime(s)
		s3 := s2 ^ s
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te0[i] = w
		te1[i] = w>>8 | w<<24
		te2[i] = w>>16 | w<<16
		te3[i] = w>>24 | w<<8
		is := invSbox[i]
		e := gmul(is, 0x0e)
		n9 := gmul(is, 0x09)
		d := gmul(is, 0x0d)
		bb := gmul(is, 0x0b)
		dw := uint32(e)<<24 | uint32(n9)<<16 | uint32(d)<<8 | uint32(bb)
		td0[i] = dw
		td1[i] = dw>>8 | dw<<24
		td2[i] = dw>>16 | dw<<16
		td3[i] = dw>>24 | dw<<8
	}
}

// A Cipher holds the expanded key schedules for one AES key.
type Cipher struct {
	enc []uint32 // 4*(rounds+1) words
	dec []uint32
	nr  int // number of rounds: 10/12/14
}

// New expands key (16, 24, or 32 bytes) into an AES cipher. Key
// expansion is the "key setup" phase of the paper's Figure 3. The
// decryption schedule (InvMixColumns over the round keys) is derived
// lazily on first Decrypt, so an encrypt-only user pays exactly the
// encryption key setup — the quantity Figure 3 plots.
func New(key []byte) (*Cipher, error) {
	var nr int
	switch len(key) {
	case 16:
		nr = 10
	case 24:
		nr = 12
	case 32:
		nr = 14
	default:
		return nil, errors.New("aes: key must be 16, 24, or 32 bytes")
	}
	c := &Cipher{nr: nr}
	c.enc = expandKey(key, nr)
	return c, nil
}

// expandKey implements the FIPS 197 key schedule.
func expandKey(key []byte, nr int) []uint32 {
	nk := len(key) / 4
	w := make([]uint32, 4*(nr+1))
	for i := 0; i < nk; i++ {
		w[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	rcon := uint32(1)
	for i := nk; i < len(w); i++ {
		t := w[i-1]
		if i%nk == 0 {
			// RotWord + SubWord + Rcon.
			t = t<<8 | t>>24
			t = subWord(t) ^ rcon<<24
			rcon = uint32(xtime(byte(rcon)))
		} else if nk > 6 && i%nk == 4 {
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	return w
}

func subWord(t uint32) uint32 {
	return uint32(sbox[t>>24])<<24 | uint32(sbox[t>>16&0xff])<<16 |
		uint32(sbox[t>>8&0xff])<<8 | uint32(sbox[t&0xff])
}

// invertKeySchedule produces the equivalent-inverse-cipher schedule:
// reversed round order with InvMixColumns applied to the middle keys.
func invertKeySchedule(enc []uint32, nr int) []uint32 {
	dec := make([]uint32, len(enc))
	for i := 0; i <= nr; i++ {
		copy(dec[4*i:4*i+4], enc[4*(nr-i):4*(nr-i)+4])
	}
	for i := 4; i < 4*nr; i++ {
		// InvMixColumns via the Td tables over the S-box domain.
		w := dec[i]
		dec[i] = td0[sbox[w>>24]] ^ td1[sbox[w>>16&0xff]] ^
			td2[sbox[w>>8&0xff]] ^ td3[sbox[w&0xff]]
	}
	return dec
}

// Rounds returns the number of rounds (10, 12, or 14).
func (c *Cipher) Rounds() int { return c.nr }

// BlockSize returns the AES block size (16).
func (c *Cipher) BlockSize() int { return BlockSize }

// state is the four-word cipher state.
type state [4]uint32

// encPart1 is Table 5 part 1: map the byte block to cipher state and
// add the initial round key.
func (c *Cipher) encPart1(s *state, src []byte) {
	s[0] = binary.BigEndian.Uint32(src[0:]) ^ c.enc[0]
	s[1] = binary.BigEndian.Uint32(src[4:]) ^ c.enc[1]
	s[2] = binary.BigEndian.Uint32(src[8:]) ^ c.enc[2]
	s[3] = binary.BigEndian.Uint32(src[12:]) ^ c.enc[3]
}

// encPart2 is Table 5 part 2: the nr-1 main rounds. Each output word
// is four table lookups XORed together with the round key — the
// dataflow of the paper's Figure 5 hardware unit.
func (c *Cipher) encPart2(s *state) {
	rk := 4
	s0, s1, s2, s3 := s[0], s[1], s[2], s[3]
	for r := 1; r < c.nr; r++ {
		t0 := te0[s0>>24] ^ te1[s1>>16&0xff] ^ te2[s2>>8&0xff] ^ te3[s3&0xff] ^ c.enc[rk]
		t1 := te0[s1>>24] ^ te1[s2>>16&0xff] ^ te2[s3>>8&0xff] ^ te3[s0&0xff] ^ c.enc[rk+1]
		t2 := te0[s2>>24] ^ te1[s3>>16&0xff] ^ te2[s0>>8&0xff] ^ te3[s1&0xff] ^ c.enc[rk+2]
		t3 := te0[s3>>24] ^ te1[s0>>16&0xff] ^ te2[s1>>8&0xff] ^ te3[s2&0xff] ^ c.enc[rk+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		rk += 4
	}
	s[0], s[1], s[2], s[3] = s0, s1, s2, s3
}

// encPart3 is Table 5 part 3: the final round (SubBytes + ShiftRows +
// AddRoundKey, no MixColumns) and mapping the state back to bytes.
func (c *Cipher) encPart3(s *state, dst []byte) {
	rk := 4 * c.nr
	s0, s1, s2, s3 := s[0], s[1], s[2], s[3]
	t0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 |
		uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff])
	t1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 |
		uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff])
	t2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 |
		uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff])
	t3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 |
		uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff])
	binary.BigEndian.PutUint32(dst[0:], t0^c.enc[rk])
	binary.BigEndian.PutUint32(dst[4:], t1^c.enc[rk+1])
	binary.BigEndian.PutUint32(dst[8:], t2^c.enc[rk+2])
	binary.BigEndian.PutUint32(dst[12:], t3^c.enc[rk+3])
}

// Encrypt encrypts one 16-byte block. dst and src may overlap.
func (c *Cipher) Encrypt(dst, src []byte) {
	var s state
	c.encPart1(&s, src)
	c.encPart2(&s)
	c.encPart3(&s, dst)
}

// Decrypt decrypts one 16-byte block using the equivalent inverse
// cipher. dst and src may overlap. The first Decrypt on a Cipher
// derives the inverse key schedule; concurrent first use from
// multiple goroutines is not supported (record-layer cipher states
// are unidirectional and single-goroutine).
func (c *Cipher) Decrypt(dst, src []byte) {
	if c.dec == nil {
		c.dec = invertKeySchedule(c.enc, c.nr)
	}
	s0 := binary.BigEndian.Uint32(src[0:]) ^ c.dec[0]
	s1 := binary.BigEndian.Uint32(src[4:]) ^ c.dec[1]
	s2 := binary.BigEndian.Uint32(src[8:]) ^ c.dec[2]
	s3 := binary.BigEndian.Uint32(src[12:]) ^ c.dec[3]
	rk := 4
	for r := 1; r < c.nr; r++ {
		t0 := td0[s0>>24] ^ td1[s3>>16&0xff] ^ td2[s2>>8&0xff] ^ td3[s1&0xff] ^ c.dec[rk]
		t1 := td0[s1>>24] ^ td1[s0>>16&0xff] ^ td2[s3>>8&0xff] ^ td3[s2&0xff] ^ c.dec[rk+1]
		t2 := td0[s2>>24] ^ td1[s1>>16&0xff] ^ td2[s0>>8&0xff] ^ td3[s3&0xff] ^ c.dec[rk+2]
		t3 := td0[s3>>24] ^ td1[s2>>16&0xff] ^ td2[s1>>8&0xff] ^ td3[s0&0xff] ^ c.dec[rk+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		rk += 4
	}
	t0 := uint32(invSbox[s0>>24])<<24 | uint32(invSbox[s3>>16&0xff])<<16 |
		uint32(invSbox[s2>>8&0xff])<<8 | uint32(invSbox[s1&0xff])
	t1 := uint32(invSbox[s1>>24])<<24 | uint32(invSbox[s0>>16&0xff])<<16 |
		uint32(invSbox[s3>>8&0xff])<<8 | uint32(invSbox[s2&0xff])
	t2 := uint32(invSbox[s2>>24])<<24 | uint32(invSbox[s1>>16&0xff])<<16 |
		uint32(invSbox[s0>>8&0xff])<<8 | uint32(invSbox[s3&0xff])
	t3 := uint32(invSbox[s3>>24])<<24 | uint32(invSbox[s2>>16&0xff])<<16 |
		uint32(invSbox[s1>>8&0xff])<<8 | uint32(invSbox[s0&0xff])
	binary.BigEndian.PutUint32(dst[0:], t0^c.dec[4*c.nr])
	binary.BigEndian.PutUint32(dst[4:], t1^c.dec[4*c.nr+1])
	binary.BigEndian.PutUint32(dst[8:], t2^c.dec[4*c.nr+2])
	binary.BigEndian.PutUint32(dst[12:], t3^c.dec[4*c.nr+3])
}
