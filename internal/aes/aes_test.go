package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"

	"sslperf/internal/perf"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FIPS 197 Appendix C known-answer vectors.
func TestFIPS197Vectors(t *testing.T) {
	pt := "00112233445566778899aabbccddeeff"
	cases := []struct{ key, ct string }{
		{"000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"},
		{"000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191"},
		{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f", "8ea2b7ca516745bfeafc49904b496089"},
	}
	for _, c := range cases {
		cipher, err := New(mustHex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		cipher.Encrypt(got, mustHex(t, pt))
		if hex.EncodeToString(got) != c.ct {
			t.Errorf("key %s: ct = %x, want %s", c.key, got, c.ct)
		}
		back := make([]byte, 16)
		cipher.Decrypt(back, got)
		if hex.EncodeToString(back) != pt {
			t.Errorf("key %s: decrypt = %x, want %s", c.key, back, pt)
		}
	}
}

func TestRoundCounts(t *testing.T) {
	for _, c := range []struct{ keyLen, rounds int }{{16, 10}, {24, 12}, {32, 14}} {
		ci, err := New(make([]byte, c.keyLen))
		if err != nil {
			t.Fatal(err)
		}
		if ci.Rounds() != c.rounds {
			t.Errorf("keyLen %d: rounds = %d, want %d", c.keyLen, ci.Rounds(), c.rounds)
		}
		if ci.BlockSize() != 16 {
			t.Errorf("BlockSize = %d", ci.BlockSize())
		}
	}
}

func TestRejectsBadKeySizes(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 31, 33} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("accepted %d-byte key", n)
		}
	}
}

// Property: agrees with the standard library for random keys/blocks.
func TestAgainstStdlibProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		keyLen := []int{16, 24, 32}[rr.Intn(3)]
		key := make([]byte, keyLen)
		rr.Read(key)
		block := make([]byte, 16)
		rr.Read(block)

		ours, err := New(key)
		if err != nil {
			return false
		}
		std, err := stdaes.NewCipher(key)
		if err != nil {
			return false
		}
		got := make([]byte, 16)
		want := make([]byte, 16)
		ours.Encrypt(got, block)
		std.Encrypt(want, block)
		if !bytes.Equal(got, want) {
			return false
		}
		gotD := make([]byte, 16)
		wantD := make([]byte, 16)
		ours.Decrypt(gotD, block)
		std.Decrypt(wantD, block)
		return bytes.Equal(gotD, wantD)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptDecryptInverseProperty(t *testing.T) {
	f := func(key [16]byte, block [16]byte) bool {
		c, err := New(key[:])
		if err != nil {
			return false
		}
		ct := make([]byte, 16)
		pt := make([]byte, 16)
		c.Encrypt(ct, block[:])
		c.Decrypt(pt, ct)
		return bytes.Equal(pt, block[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInPlaceEncrypt(t *testing.T) {
	c, _ := New(make([]byte, 16))
	buf := mustHex(t, "00112233445566778899aabbccddeeff")
	want := make([]byte, 16)
	c.Encrypt(want, buf)
	c.Encrypt(buf, buf)
	if !bytes.Equal(buf, want) {
		t.Fatal("in-place encryption differs")
	}
}

func TestSboxIsPermutationWithInverse(t *testing.T) {
	var seen [256]bool
	for i := 0; i < 256; i++ {
		s := sbox[i]
		if seen[s] {
			t.Fatalf("sbox not a permutation: duplicate %#x", s)
		}
		seen[s] = true
		if invSbox[s] != byte(i) {
			t.Fatalf("invSbox[sbox[%d]] = %d", i, invSbox[s])
		}
	}
	// Known anchor values from FIPS 197.
	if sbox[0x00] != 0x63 || sbox[0x53] != 0xed {
		t.Fatalf("sbox anchors wrong: %#x %#x", sbox[0x00], sbox[0x53])
	}
}

func TestProfileBlockPartsShape(t *testing.T) {
	c, _ := New(make([]byte, 16))
	b := c.ProfileBlockParts(200000)
	names := b.Names()
	want := []string{PartLoadAddKey, PartMainRounds, PartFinalRound}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("part %d = %q, want %q", i, names[i], want[i])
		}
	}
	// Table 5: main rounds take ~71% (128-bit); they must dominate.
	if pct := b.Percent(PartMainRounds); pct < 50 {
		t.Fatalf("main rounds = %.1f%%, want dominant\n%s", pct, b)
	}
}

func TestProfileBlockParts256KeyCostlier(t *testing.T) {
	c128, _ := New(make([]byte, 16))
	c256, _ := New(make([]byte, 32))
	const n = 100000
	b128 := c128.ProfileBlockParts(n)
	b256 := c256.ProfileBlockParts(n)
	// Larger key only grows the main rounds (paper: parts 1 and 3 fixed).
	if b256.Elapsed(PartMainRounds) <= b128.Elapsed(PartMainRounds) {
		t.Fatalf("256-bit main rounds (%v) not costlier than 128-bit (%v)",
			b256.Elapsed(PartMainRounds), b128.Elapsed(PartMainRounds))
	}
	if b256.Percent(PartMainRounds) <= b128.Percent(PartMainRounds) {
		t.Fatalf("256-bit main-rounds share should grow (Table 5: 71%%->78%%)")
	}
}

func TestCharacteristics(t *testing.T) {
	ch := Characteristics()
	if ch.Name != "AES" || ch.BlockBits != 128 || ch.Lookups != 16 {
		t.Fatalf("Characteristics = %+v", ch)
	}
}

func TestTraceEncryptBlock(t *testing.T) {
	c, _ := New(make([]byte, 16))
	var tr perf.Trace
	c.TraceEncryptBlock(&tr)
	if tr.Bytes != 16 {
		t.Fatalf("Bytes = %d, want 16", tr.Bytes)
	}
	// 16 lookups per round-equivalent; 10-round AES has 9 main rounds
	// + final = 10 groups of 16 lookups.
	if got := tr.Count(perf.OpLookup); got != 160 {
		t.Fatalf("lookups = %d, want 160", got)
	}
	// Path length should land in the paper's neighborhood
	// (Table 11: 50 instr/byte for AES).
	pl := tr.PathLength()
	if pl < 20 || pl > 120 {
		t.Fatalf("path length = %.1f ops/byte, want ~50", pl)
	}
	// Memory ops (the paper's movl+movb) and xor must be the top two
	// classes, as in Table 12.
	// On x86 a table lookup is an indexed movl, so the paper's mov
	// share corresponds to load+store+move+lookup here.
	memOps := tr.Count(perf.OpLoad) + tr.Count(perf.OpStore) +
		tr.Count(perf.OpMove) + tr.Count(perf.OpLookup)
	if memOps <= tr.Count(perf.OpXor) {
		t.Fatalf("memory ops should top the mix: %v", tr.Mix())
	}
}

func TestTrace256HasMoreOps(t *testing.T) {
	c128, _ := New(make([]byte, 16))
	c256, _ := New(make([]byte, 32))
	var t128, t256 perf.Trace
	c128.TraceEncryptBlock(&t128)
	c256.TraceEncryptBlock(&t256)
	if t256.Total() <= t128.Total() {
		t.Fatal("256-bit trace should have more ops (14 rounds vs 10)")
	}
}
