package pathlen

import (
	"bytes"
	"compress/gzip"
	"context"
	"runtime/pprof"
	"testing"

	"sslperf/internal/probe"
)

// --- minimal profile.proto writer for the tests ---

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendField(b []byte, field int, v uint64) []byte {
	b = appendVarint(b, uint64(field)<<3)
	return appendVarint(b, v)
}

func appendBytes(b []byte, field int, payload []byte) []byte {
	b = appendVarint(b, uint64(field)<<3|2)
	b = appendVarint(b, uint64(len(payload)))
	return append(b, payload...)
}

// testProfile builds a two-value (samples/count, cpu/nanoseconds)
// profile whose samples carry the given label values under key.
func testProfile(key string, samples []struct {
	label string
	nanos int64
}) []byte {
	// String table: index 0 must be "".
	strs := []string{"", "samples", "count", "cpu", "nanoseconds", key}
	idx := func(s string) uint64 {
		for i, v := range strs {
			if v == s {
				return uint64(i)
			}
		}
		strs = append(strs, s)
		return uint64(len(strs) - 1)
	}
	var sampleMsgs [][]byte
	for _, s := range samples {
		var sm []byte
		// packed values: [1 sample, nanos]
		var packed []byte
		packed = appendVarint(packed, 1)
		packed = appendVarint(packed, uint64(s.nanos))
		sm = appendBytes(sm, 2, packed)
		if s.label != "" {
			var lm []byte
			lm = appendField(lm, 1, idx(key))
			lm = appendField(lm, 2, idx(s.label))
			sm = appendBytes(sm, 3, lm)
		}
		sampleMsgs = append(sampleMsgs, sm)
	}
	var prof []byte
	var vt []byte
	vt = appendField(vt, 1, idx("samples"))
	vt = appendField(vt, 2, idx("count"))
	prof = appendBytes(prof, 1, vt)
	vt = nil
	vt = appendField(vt, 1, idx("cpu"))
	vt = appendField(vt, 2, idx("nanoseconds"))
	prof = appendBytes(prof, 1, vt)
	for _, sm := range sampleMsgs {
		prof = appendBytes(prof, 2, sm)
	}
	for _, s := range strs {
		prof = appendBytes(prof, 6, []byte(s))
	}
	return prof
}

func TestFoldProfileGroupsByLabel(t *testing.T) {
	data := testProfile("sslstep", []struct {
		label string
		nanos int64
	}{
		{"send_finished", 3_000_000},
		{"send_finished", 1_000_000},
		{"get_client_kx", 6_000_000},
		{"", 2_000_000},
	})
	rows, err := FoldProfile(data, "sslstep")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rows), rows)
	}
	if rows[0].Label != "get_client_kx" || rows[0].Nanos != 6_000_000 {
		t.Errorf("top row = %+v, want get_client_kx 6ms", rows[0])
	}
	if rows[1].Label != "send_finished" || rows[1].Nanos != 4_000_000 || rows[1].Samples != 2 {
		t.Errorf("row 1 = %+v, want send_finished 4ms over 2 samples", rows[1])
	}
	if rows[2].Label != FoldUnlabeled || rows[2].Nanos != 2_000_000 {
		t.Errorf("row 2 = %+v, want %s 2ms", rows[2], FoldUnlabeled)
	}
	var share float64
	for _, r := range rows {
		share += r.SharePct
	}
	if share < 99.9 || share > 100.1 {
		t.Errorf("shares sum to %v, want 100", share)
	}
}

func TestFoldProfileGzipped(t *testing.T) {
	raw := testProfile("sslstep", []struct {
		label string
		nanos int64
	}{{"bulk_transfer", 1000}})
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(raw)
	zw.Close()
	rows, err := FoldProfile(buf.Bytes(), "sslstep")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Label != "bulk_transfer" {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestFoldProfileTruncated(t *testing.T) {
	data := testProfile("k", []struct {
		label string
		nanos int64
	}{{"v", 1}})
	if _, err := FoldProfile(data[:len(data)-1], "k"); err == nil {
		t.Error("no error on truncated profile")
	}
}

// TestFoldRealProfile folds an actual runtime CPU profile captured
// while labeled work spins, end-to-end through the gzip + protobuf
// path. CPU sampling is statistical, so the test only requires that
// the profile parses and that any labeled samples carry the step name
// the bus set.
func TestFoldRealProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("cpu profile capture in -short")
	}
	probe.SetProfileLabels(true)
	defer probe.SetProfileLabels(false)

	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cpu profiling unavailable: %v", err)
	}
	func() {
		defer pprof.StopCPUProfile()
		ctx := pprof.WithLabels(context.Background(),
			pprof.Labels(probe.LabelKeyStep, probe.StepSendFinished.Name()))
		pprof.Do(ctx, pprof.Labels(), func(context.Context) {
			sink := 0
			for i := 0; i < 5_000_000; i++ {
				sink += i * i
			}
			_ = sink
		})
	}()

	rows, err := FoldProfile(buf.Bytes(), probe.LabelKeyStep)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Label != FoldUnlabeled && r.Label != probe.StepSendFinished.Name() {
			t.Errorf("unexpected label %q in folded profile", r.Label)
		}
	}
}
