package pathlen

import (
	"encoding/json"
	"fmt"
	"strings"

	"sslperf/internal/perf"
)

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the snapshot as the live Tables 11/12: per-primitive
// intensity with the model columns alongside, then per-step byte
// attribution, then the record-layer totals the fold must reconcile
// with.
func (s Snapshot) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "live path length (model %.2f GHz)\n\n", s.ModelGHz)

	prims := perf.NewTable("per-primitive path length (continuous Table 11)",
		"primitive", "ops", "bytes", "B/op", "MB/s",
		"cyc/B", "instr/B", "model CPI", "model instr/B")
	for _, r := range s.Prims {
		instr, cpi, model := "-", "-", "-"
		if r.ModelCPI > 0 {
			instr = fmt.Sprintf("%.1f", r.InstrPerByte)
			cpi = fmt.Sprintf("%.2f", r.ModelCPI)
			model = fmt.Sprintf("%.1f", r.ModelInstrPerByte)
		}
		prims.AddRow(r.Name, fmt.Sprint(r.Ops), fmt.Sprint(r.Bytes),
			fmt.Sprintf("%.1f", r.BytesPerOp),
			fmt.Sprintf("%.1f", r.MBps),
			fmt.Sprintf("%.1f", r.CyclesPerByte),
			instr, cpi, model)
	}
	sb.WriteString(prims.String())

	if len(s.Steps) > 0 {
		sb.WriteByte('\n')
		steps := perf.NewTable("per-step byte attribution (Table 2 × record crypto)",
			"step", "class", "n", "wall kcyc", "crypto kcyc", "crypto bytes", "cyc/B")
		for _, r := range s.Steps {
			cycB := "-"
			if r.CryptoBytes > 0 {
				cycB = fmt.Sprintf("%.1f", r.CyclesPerByte)
			}
			steps.AddRow(r.Name, r.Class, fmt.Sprint(r.Count),
				fmt.Sprintf("%.1f", perf.Cycles(nsDur(r.WallNanos))/1000),
				fmt.Sprintf("%.1f", perf.Cycles(nsDur(r.CryptoNanos))/1000),
				fmt.Sprint(r.CryptoBytes), cycB)
		}
		sb.WriteString(steps.String())
	}

	sb.WriteByte('\n')
	io := perf.NewTable("record layer totals", "metric", "value")
	io.AddRow("records_in", fmt.Sprint(s.RecordsIn))
	io.AddRow("records_out", fmt.Sprint(s.RecordsOut))
	io.AddRow("bytes_in", fmt.Sprint(s.BytesIn))
	io.AddRow("bytes_out", fmt.Sprint(s.BytesOut))
	sb.WriteString(io.String())
	return sb.String()
}
