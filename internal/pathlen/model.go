package pathlen

import (
	"sync"

	"sslperf/internal/aes"
	"sslperf/internal/bn"
	"sslperf/internal/des"
	"sslperf/internal/md5x"
	"sslperf/internal/perf"
	"sslperf/internal/rc4"
	"sslperf/internal/sha1x"
)

// Model is one primitive's abstract-instruction characterization: the
// CPI and instructions/byte the perf kernels predict over a 1KB unit
// (128 bytes for RSA), matching Table 11's columns.
type Model struct {
	Name         string  `json:"name"`
	CPI          float64 `json:"cpi"`
	InstrPerByte float64 `json:"instr_per_byte"`
	// CyclesPerByte is the model's prediction CPI × instr/byte, and
	// MBps the throughput that implies at the model clock — the
	// numbers the live measurement is compared against.
	CyclesPerByte float64 `json:"cycles_per_byte"`
	MBps          float64 `json:"mbps"`
}

var (
	modelOnce  sync.Once
	modelTable map[string]Model
	modelOrder []string
)

// buildModels runs the abstract-instruction kernels once, mirroring
// the offline Table 11 experiment (internal/core exp_arch): 1KB units
// for the symmetric primitives and hashes, one 1024-bit CRT decrypt
// for RSA.
func buildModels() {
	traces := map[string]*perf.Trace{}
	modelOrder = []string{"AES", "DES", "3DES", "RC4", "RSA", "MD5", "SHA-1"}

	aesC, _ := aes.New(make([]byte, 16))
	tr := &perf.Trace{}
	for i := 0; i < 64; i++ { // 64 blocks = 1KB
		aesC.TraceEncryptBlock(tr)
	}
	traces["AES"] = tr

	desC, _ := des.New(make([]byte, 8))
	tr = &perf.Trace{}
	for i := 0; i < 128; i++ {
		desC.TraceEncryptBlock(tr)
	}
	traces["DES"] = tr

	tdesC, _ := des.NewTriple(make([]byte, 24))
	tr = &perf.Trace{}
	for i := 0; i < 128; i++ {
		tdesC.TraceEncryptBlock(tr)
	}
	traces["3DES"] = tr

	tr = &perf.Trace{}
	rc4.TraceKeystream(tr, 1024)
	traces["RC4"] = tr

	tr = &perf.Trace{}
	bn.TraceRSADecrypt(tr, 1024)
	tr.Bytes = 128
	traces["RSA"] = tr

	tr = &perf.Trace{}
	md5x.TraceHash(tr, 1024)
	traces["MD5"] = tr

	tr = &perf.Trace{}
	sha1x.TraceHash(tr, 1024)
	traces["SHA-1"] = tr

	modelTable = make(map[string]Model, len(traces))
	for name, tr := range traces {
		m := Model{
			Name:         name,
			CPI:          tr.CPI(),
			InstrPerByte: tr.PathLength(),
		}
		m.CyclesPerByte = m.CPI * m.InstrPerByte
		if m.CyclesPerByte > 0 {
			// bytes/s = clock / (cycles/byte); scale to MB/s.
			m.MBps = perf.ModelGHz() * 1e9 / m.CyclesPerByte / 1e6
		}
		modelTable[name] = m
	}
}

// ModelFor returns the abstract-instruction model for a primitive
// name ("AES", "RC4", "MD5", …). ok is false for primitives the model
// does not cover (NULL, other).
func ModelFor(name string) (Model, bool) {
	modelOnce.Do(buildModels)
	m, ok := modelTable[name]
	return m, ok
}

// Models returns every modelled primitive in Table 11 order.
func Models() []Model {
	modelOnce.Do(buildModels)
	out := make([]Model, 0, len(modelOrder))
	for _, name := range modelOrder {
		out = append(out, modelTable[name])
	}
	return out
}
