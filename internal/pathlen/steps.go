package pathlen

import "sslperf/internal/probe"

// StepClass groups Table-2 steps by the kind of work the path-length
// fold expects from them. The classes drive nothing at runtime — they
// make the live table legible and give the lint (make pathlenlint, and
// TestStepClassesCoverProbeSteps) a single place that must name every
// probe.Step constant, so adding a step without deciding its
// path-length row is a build-gate event, not silent misattribution.
type StepClass int

// Step classes.
const (
	// ClassControl steps move the FSM without record crypto; crypto
	// bytes landing on one is an attribution bug.
	ClassControl StepClass = iota
	// ClassCompute steps are dominated by handshake crypto calls
	// (KindCrypto), which carry no byte counts.
	ClassCompute
	// ClassRecord steps push or open encrypted records, so they own
	// RecordCrypto bytes; cycles/byte is meaningful here.
	ClassRecord
)

// String names the class.
func (c StepClass) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassCompute:
		return "compute"
	case ClassRecord:
		return "record"
	}
	return "unknown"
}

// stepClasses maps every probe.Step constant onto its class. The
// pathlenlint make target greps this table against the probe package's
// Step constants; keep one "probe.StepX:" entry per line.
var stepClasses = map[probe.Step]StepClass{
	probe.StepNone:            ClassRecord, // bulk transfer
	probe.StepInit:            ClassCompute,
	probe.StepGetClientHello:  ClassControl,
	probe.StepSendServerHello: ClassCompute,
	probe.StepSendServerCert:  ClassControl,
	probe.StepSendServerKX:    ClassCompute,
	probe.StepSendServerDone:  ClassControl,
	probe.StepGetClientKX:     ClassCompute,
	probe.StepGenKeyBlock:     ClassCompute,
	probe.StepGetFinished:     ClassRecord,
	probe.StepSendCipherSpec:  ClassControl,
	probe.StepSendFinished:    ClassRecord,
	probe.StepServerFlush:     ClassControl,
}

// StepClassOf returns the step's path-length class.
func StepClassOf(st probe.Step) StepClass {
	c, ok := stepClasses[st]
	if !ok {
		return ClassControl
	}
	return c
}

// StepRowName names the step's snapshot row; StepNone renders as the
// bulk-transfer row instead of an empty string.
func StepRowName(st probe.Step) string {
	if st == probe.StepNone {
		return probe.LabelBulk
	}
	return st.Name()
}
