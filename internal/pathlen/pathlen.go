// Package pathlen is the path-length observatory: the live analogue
// of the paper's Tables 11 and 12. It folds the probe spine's
// RecordCrypto and step events — which already carry byte counts and
// durations — into per-primitive and per-step cycles/byte, bytes/op,
// and, through perf's abstract-instruction CPI model,
// instructions/byte. The fold is wait-free (fixed arrays of atomic
// counters, no locks, no allocation per event) so the collector can
// sit on every connection's bus under full load, the same discipline
// the anatomy profiler keeps.
//
// The paper's identity ties the three numbers together:
//
//	cycles/byte = CPI × instructions/byte
//
// The collector measures cycles/byte from wall time at the model
// clock (perf.Cycles); the abstract-instruction kernels supply each
// primitive's CPI; dividing out yields a live instructions/byte that
// can be compared directly against the model's own path length and
// the paper's Table 11 column.
package pathlen

import (
	"sync/atomic"
	"time"

	"sslperf/internal/perf"
	"sslperf/internal/probe"
)

// Primitive row indexes. The set is fixed so the fold can use a flat
// array: every primitive the suite registry can name, plus a catchall
// for anything new that has not been given a row yet (visible, not
// silently dropped).
const (
	primRC4 = iota
	primAES
	primDES
	prim3DES
	primNULL
	primMD5
	primSHA1
	primOther
	numPrims
)

var primNames = [numPrims]string{"RC4", "AES", "DES", "3DES", "NULL", "MD5", "SHA-1", "other"}

// primIndex interns a primitive name onto its row. A linear scan over
// ≤8 entries beats a map on the hot path and needs no hashing.
func primIndex(name string) int {
	for i, n := range primNames {
		if n == name {
			return i
		}
	}
	return primOther
}

// numOps covers probe's four RecordOps.
const numOps = 4

// numSteps covers every probe.Step including StepNone (row 0 = bulk
// transfer).
const numSteps = int(probe.StepServerFlush) + 1

// opCell is one (primitive, operation) accumulator.
type opCell struct {
	ops   atomic.Uint64
	bytes atomic.Uint64
	ns    atomic.Uint64
}

// stepCell accumulates one Table-2 step: wall time from StepExit,
// record-crypto time and bytes from in-step RecordCrypto events.
type stepCell struct {
	count       atomic.Uint64
	wallNs      atomic.Uint64
	cryptoNs    atomic.Uint64
	cryptoBytes atomic.Uint64
}

// A Collector is a probe.Sink folding the spine into live path-length
// attribution. Emit is wait-free and safe from any number of
// goroutines; attach one collector to every connection's bus.
type Collector struct {
	prims [numPrims][numOps]opCell
	steps [numSteps]stepCell

	recordsIn  atomic.Uint64
	recordsOut atomic.Uint64
	bytesIn    atomic.Uint64
	bytesOut   atomic.Uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit implements probe.Sink.
func (c *Collector) Emit(e probe.Event) {
	if c == nil {
		return
	}
	switch e.Kind {
	case probe.KindStepExit:
		if int(e.Step) < numSteps {
			st := &c.steps[e.Step]
			st.count.Add(1)
			st.wallNs.Add(uint64(e.Dur))
		}
	case probe.KindRecordCrypto:
		if int(e.Op) < numOps {
			cell := &c.prims[primIndex(e.Prim)][e.Op]
			cell.ops.Add(1)
			cell.bytes.Add(uint64(e.Bytes))
			cell.ns.Add(uint64(e.Dur))
		}
		if int(e.Step) < numSteps {
			st := &c.steps[e.Step]
			st.cryptoNs.Add(uint64(e.Dur))
			st.cryptoBytes.Add(uint64(e.Bytes))
		}
	case probe.KindRecordIO:
		if e.Written {
			c.recordsOut.Add(1)
			c.bytesOut.Add(uint64(e.Bytes))
		} else {
			c.recordsIn.Add(1)
			c.bytesIn.Add(uint64(e.Bytes))
		}
	}
}

// Reset zeroes every accumulator so a drift window (one load run) can
// be measured from a clean slate. Events folding concurrently land
// entirely before or after the cut per cell.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	for p := range c.prims {
		for o := range c.prims[p] {
			cell := &c.prims[p][o]
			cell.ops.Store(0)
			cell.bytes.Store(0)
			cell.ns.Store(0)
		}
	}
	for s := range c.steps {
		st := &c.steps[s]
		st.count.Store(0)
		st.wallNs.Store(0)
		st.cryptoNs.Store(0)
		st.cryptoBytes.Store(0)
	}
	c.recordsIn.Store(0)
	c.recordsOut.Store(0)
	c.bytesIn.Store(0)
	c.bytesOut.Store(0)
}

// OpStat is one (primitive, operation) cell of the snapshot.
type OpStat struct {
	Op    string `json:"op"`
	Ops   uint64 `json:"ops"`
	Bytes uint64 `json:"bytes"`
	Nanos uint64 `json:"nanos"`
}

// PrimRow is one live Table-11 row: a primitive's measured intensity
// with the model's CPI and path length alongside.
type PrimRow struct {
	Name  string `json:"name"`
	Ops   uint64 `json:"ops"`
	Bytes uint64 `json:"bytes"`
	Nanos uint64 `json:"nanos"`

	BytesPerOp    float64 `json:"bytes_per_op"`
	CyclesPerByte float64 `json:"cycles_per_byte"`
	MBps          float64 `json:"mbps"`

	// ModelCPI and ModelInstrPerByte come from the abstract-instruction
	// kernels; InstrPerByte is measured cycles/byte divided by the model
	// CPI — the live path length. Zero when no model covers the
	// primitive (NULL, other).
	ModelCPI          float64 `json:"model_cpi,omitempty"`
	ModelInstrPerByte float64 `json:"model_instr_per_byte,omitempty"`
	InstrPerByte      float64 `json:"instr_per_byte,omitempty"`

	Ops_ []OpStat `json:"by_op,omitempty"`
}

// StepRow is one live per-step attribution row: how many record-crypto
// bytes each Table-2 step (or the bulk phase) pushed and at what cost.
type StepRow struct {
	Name        string `json:"name"`
	Class       string `json:"class"`
	Count       uint64 `json:"count"`
	WallNanos   uint64 `json:"wall_nanos"`
	CryptoNanos uint64 `json:"crypto_nanos"`
	CryptoBytes uint64 `json:"crypto_bytes"`

	CyclesPerByte float64 `json:"cycles_per_byte,omitempty"`
}

// A Snapshot is the collector's current state: the continuous Tables
// 11/12, per-step byte attribution, and record-layer totals.
type Snapshot struct {
	At       time.Time `json:"at"`
	ModelGHz float64   `json:"model_ghz"`

	Prims []PrimRow `json:"primitives,omitempty"`
	Steps []StepRow `json:"steps,omitempty"`

	RecordsIn  uint64 `json:"records_in"`
	RecordsOut uint64 `json:"records_out"`
	BytesIn    uint64 `json:"bytes_in"`
	BytesOut   uint64 `json:"bytes_out"`
}

// Snapshot renders the collector's accumulated state. Rows with no
// traffic are omitted.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{At: time.Now(), ModelGHz: perf.ModelGHz()}
	if c == nil {
		return s
	}
	for p := 0; p < numPrims; p++ {
		row := PrimRow{Name: primNames[p]}
		for o := 0; o < numOps; o++ {
			cell := &c.prims[p][o]
			ops, bytes, ns := cell.ops.Load(), cell.bytes.Load(), cell.ns.Load()
			if ops == 0 {
				continue
			}
			row.Ops += ops
			row.Bytes += bytes
			row.Nanos += ns
			row.Ops_ = append(row.Ops_, OpStat{
				Op: probe.RecordOp(o).String(), Ops: ops, Bytes: bytes, Nanos: ns,
			})
		}
		if row.Ops == 0 {
			continue
		}
		row.BytesPerOp = float64(row.Bytes) / float64(row.Ops)
		if row.Bytes > 0 {
			row.CyclesPerByte = perf.Cycles(time.Duration(row.Nanos)) / float64(row.Bytes)
		}
		if row.Nanos > 0 {
			row.MBps = float64(row.Bytes) / 1e6 / (float64(row.Nanos) / 1e9)
		}
		if m, ok := ModelFor(row.Name); ok {
			row.ModelCPI = m.CPI
			row.ModelInstrPerByte = m.InstrPerByte
			if m.CPI > 0 {
				row.InstrPerByte = row.CyclesPerByte / m.CPI
			}
		}
		s.Prims = append(s.Prims, row)
	}
	for i := 0; i < numSteps; i++ {
		st := &c.steps[i]
		count, wall := st.count.Load(), st.wallNs.Load()
		cns, cbytes := st.cryptoNs.Load(), st.cryptoBytes.Load()
		if count == 0 && cns == 0 && cbytes == 0 {
			continue
		}
		row := StepRow{
			Name:        StepRowName(probe.Step(i)),
			Class:       StepClassOf(probe.Step(i)).String(),
			Count:       count,
			WallNanos:   wall,
			CryptoNanos: cns,
			CryptoBytes: cbytes,
		}
		if cbytes > 0 {
			row.CyclesPerByte = perf.Cycles(time.Duration(cns)) / float64(cbytes)
		}
		s.Steps = append(s.Steps, row)
	}
	s.RecordsIn = c.recordsIn.Load()
	s.RecordsOut = c.recordsOut.Load()
	s.BytesIn = c.bytesIn.Load()
	s.BytesOut = c.bytesOut.Load()
	return s
}

// totalsFor sums (bytes, nanos) across all ops of the given primitive
// rows — the wait-free accessor behind the windowed cycles/byte
// series.
func (c *Collector) totalsFor(lo, hi int) (bytes, ns uint64) {
	if c == nil {
		return 0, 0
	}
	for p := lo; p <= hi; p++ {
		for o := 0; o < numOps; o++ {
			cell := &c.prims[p][o]
			bytes += cell.bytes.Load()
			ns += cell.ns.Load()
		}
	}
	return bytes, ns
}

// CipherTotals returns cumulative (bytes, nanos) across the cipher
// primitives (RC4, AES, DES, 3DES, NULL) without allocating, so a
// periodic sampler can difference successive reads into a live
// windowed cipher cycles/byte.
func (c *Collector) CipherTotals() (bytes, ns uint64) {
	return c.totalsFor(primRC4, primNULL)
}

// MACTotals is CipherTotals for the MAC primitives (MD5, SHA-1).
func (c *Collector) MACTotals() (bytes, ns uint64) {
	return c.totalsFor(primMD5, primSHA1)
}

// IOTotals returns the record-layer cumulative counters without
// allocating.
func (c *Collector) IOTotals() (recordsIn, recordsOut, bytesIn, bytesOut uint64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	return c.recordsIn.Load(), c.recordsOut.Load(), c.bytesIn.Load(), c.bytesOut.Load()
}

// Prim returns the named primitive's row, if it saw traffic.
func (s Snapshot) Prim(name string) (PrimRow, bool) {
	for _, r := range s.Prims {
		if r.Name == name {
			return r, true
		}
	}
	return PrimRow{}, false
}

// Step returns the named step's row, if it saw traffic.
func (s Snapshot) Step(name string) (StepRow, bool) {
	for _, r := range s.Steps {
		if r.Name == name {
			return r, true
		}
	}
	return StepRow{}, false
}
