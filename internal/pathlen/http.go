package pathlen

import (
	"net/http"
	"time"
)

// nsDur converts accumulated nanoseconds to a duration for the cycle
// converters.
func nsDur(ns uint64) time.Duration { return time.Duration(ns) }

// Register mounts the observatory on mux:
//
//	/debug/pathlength        JSON snapshot (?format=text for tables)
//	/debug/pathlength/reset  POST: zero the accumulators (with any
//	                         extra reset hooks), so a drift window can
//	                         be measured from a clean slate
func Register(mux *http.ServeMux, c *Collector, onReset ...func()) {
	mux.HandleFunc("/debug/pathlength", func(w http.ResponseWriter, req *http.Request) {
		snap := c.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(snap.Text()))
			return
		}
		b, err := snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("/debug/pathlength/reset", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		c.Reset()
		for _, f := range onReset {
			f()
		}
		w.WriteHeader(http.StatusNoContent)
	})
}
