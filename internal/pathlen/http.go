package pathlen

import (
	"net/http"
	"time"

	"sslperf/internal/debughttp"
)

// nsDur converts accumulated nanoseconds to a duration for the cycle
// converters.
func nsDur(ns uint64) time.Duration { return time.Duration(ns) }

// Register mounts the observatory on mux:
//
//	/debug/pathlength        JSON snapshot (?format=text for tables)
//	/debug/pathlength/reset  POST: zero the accumulators (with any
//	                         extra reset hooks), so a drift window can
//	                         be measured from a clean slate
func Register(mux *http.ServeMux, c *Collector, onReset ...func()) {
	mux.HandleFunc("/debug/pathlength", func(w http.ResponseWriter, req *http.Request) {
		snap := c.Snapshot()
		debughttp.Serve(w, req, snap.Text, snap.JSON)
	})
	mux.HandleFunc("/debug/pathlength/reset", func(w http.ResponseWriter, req *http.Request) {
		if !debughttp.PostOnly(w, req) {
			return
		}
		c.Reset()
		for _, f := range onReset {
			f()
		}
		w.WriteHeader(http.StatusNoContent)
	})
}
