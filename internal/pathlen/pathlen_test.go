package pathlen

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sslperf/internal/perf"
	"sslperf/internal/probe"
)

// emitRecord pushes one synthetic RecordCrypto event through a bus so
// the step cursor attribution matches production emission.
func emitRecord(b *probe.Bus, op probe.RecordOp, prim string, bytes int) {
	b.RecordCrypto(op, prim, bytes, b.Stamp())
}

func TestCollectorFoldsPrimitives(t *testing.T) {
	c := NewCollector()
	b := probe.NewBus(c)

	emitRecord(b, probe.OpCipherEncrypt, "RC4", 1000)
	emitRecord(b, probe.OpCipherEncrypt, "RC4", 24)
	emitRecord(b, probe.OpMACCompute, "MD5", 1000)
	emitRecord(b, probe.OpCipherDecrypt, "AES", 512)
	b.RecordIO(true, false, 1000)
	b.RecordIO(false, false, 512)

	s := c.Snapshot()
	rc4, ok := s.Prim("RC4")
	if !ok {
		t.Fatal("no RC4 row")
	}
	if rc4.Ops != 2 || rc4.Bytes != 1024 {
		t.Errorf("RC4 row = %d ops / %d bytes, want 2/1024", rc4.Ops, rc4.Bytes)
	}
	if rc4.BytesPerOp != 512 {
		t.Errorf("RC4 bytes/op = %v, want 512", rc4.BytesPerOp)
	}
	if rc4.CyclesPerByte <= 0 {
		t.Errorf("RC4 cycles/byte = %v, want > 0", rc4.CyclesPerByte)
	}
	if rc4.ModelCPI <= 0 || rc4.ModelInstrPerByte <= 0 || rc4.InstrPerByte <= 0 {
		t.Errorf("RC4 model columns missing: %+v", rc4)
	}
	// The paper identity: measured instr/byte = cycles/byte ÷ model CPI.
	want := rc4.CyclesPerByte / rc4.ModelCPI
	if diff := rc4.InstrPerByte - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("instr/byte = %v, want %v", rc4.InstrPerByte, want)
	}
	if md5, ok := s.Prim("MD5"); !ok || md5.Bytes != 1000 {
		t.Errorf("MD5 row = %+v ok=%v, want 1000 bytes", md5, ok)
	}
	if aes, ok := s.Prim("AES"); !ok || aes.Ops != 1 || aes.Bytes != 512 {
		t.Errorf("AES row = %+v ok=%v, want 1 op / 512 bytes", aes, ok)
	}
	if s.BytesOut != 1000 || s.BytesIn != 512 || s.RecordsOut != 1 || s.RecordsIn != 1 {
		t.Errorf("IO totals = %+v", s)
	}
}

func TestCollectorStepAttribution(t *testing.T) {
	c := NewCollector()
	b := probe.NewBus(c)

	// Bulk-phase crypto lands on the bulk row.
	emitRecord(b, probe.OpCipherEncrypt, "RC4", 100)
	// In-step crypto lands on its step row.
	b.StepEnter(probe.StepSendFinished)
	emitRecord(b, probe.OpCipherEncrypt, "RC4", 64)
	b.StepExit()

	s := c.Snapshot()
	bulk, ok := s.Step(probe.LabelBulk)
	if !ok || bulk.CryptoBytes != 100 {
		t.Errorf("bulk row = %+v ok=%v, want 100 crypto bytes", bulk, ok)
	}
	if bulk.Class != "record" {
		t.Errorf("bulk class = %q, want record", bulk.Class)
	}
	sf, ok := s.Step(probe.StepSendFinished.Name())
	if !ok {
		t.Fatal("no send_finished row")
	}
	if sf.CryptoBytes != 64 || sf.Count != 1 {
		t.Errorf("send_finished = %+v, want 64 crypto bytes, count 1", sf)
	}
	if sf.WallNanos == 0 {
		t.Error("send_finished wall time not folded from StepExit")
	}
}

func TestCollectorUnknownPrimFoldsToOther(t *testing.T) {
	c := NewCollector()
	b := probe.NewBus(c)
	emitRecord(b, probe.OpCipherEncrypt, "CHACHA20", 10)
	if row, ok := c.Snapshot().Prim("other"); !ok || row.Bytes != 10 {
		t.Errorf("unknown primitive not folded to other: %+v ok=%v", row, ok)
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	b := probe.NewBus(c)
	emitRecord(b, probe.OpCipherEncrypt, "RC4", 100)
	b.RecordIO(true, false, 100)
	c.Reset()
	s := c.Snapshot()
	if len(s.Prims) != 0 || len(s.Steps) != 0 || s.BytesOut != 0 {
		t.Errorf("reset left state: %+v", s)
	}
}

// TestCollectorConcurrent hammers one collector from many goroutines —
// the shape the race gate (make check) exercises: a shared sink on
// every connection's bus.
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := probe.NewBus(c)
			for i := 0; i < per; i++ {
				b.StepEnter(probe.StepSendFinished)
				emitRecord(b, probe.OpMACCompute, "SHA-1", 64)
				b.StepExit()
				emitRecord(b, probe.OpCipherEncrypt, "AES", 1024)
				b.RecordIO(true, false, 1024)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	aes, _ := s.Prim("AES")
	sha, _ := s.Prim("SHA-1")
	if want := uint64(workers * per); aes.Ops != want || sha.Ops != want {
		t.Errorf("ops = %d/%d, want %d", aes.Ops, sha.Ops, workers*per)
	}
	if want := uint64(workers * per * 1024); s.BytesOut != want {
		t.Errorf("bytes out = %d, want %d", s.BytesOut, want)
	}
}

// TestStepClassesCoverProbeSteps is the in-language half of
// pathlenlint: every canonical step (and StepNone) must have a row
// mapping, so a new probe.Step cannot ship without a path-length
// decision.
func TestStepClassesCoverProbeSteps(t *testing.T) {
	if _, ok := stepClasses[probe.StepNone]; !ok {
		t.Error("stepClasses missing probe.StepNone")
	}
	for _, st := range probe.Steps() {
		if _, ok := stepClasses[st]; !ok {
			t.Errorf("stepClasses missing probe.Step %q", st.Name())
		}
	}
	if len(stepClasses) != numSteps {
		t.Errorf("stepClasses has %d entries, want %d (one per probe.Step)",
			len(stepClasses), numSteps)
	}
}

// TestModelShape pins the Table 11 orderings the paper reports: RC4 is
// the cheapest symmetric cipher per byte, MD5 beats SHA-1, 3DES costs
// roughly three DES.
func TestModelShape(t *testing.T) {
	get := func(name string) Model {
		m, ok := ModelFor(name)
		if !ok {
			t.Fatalf("no model for %s", name)
		}
		return m
	}
	rc4, aes, des, tdes := get("RC4"), get("AES"), get("DES"), get("3DES")
	md5, sha := get("MD5"), get("SHA-1")
	if !(rc4.CyclesPerByte < aes.CyclesPerByte) {
		t.Errorf("model RC4 (%v cyc/B) not cheaper than AES (%v)", rc4.CyclesPerByte, aes.CyclesPerByte)
	}
	if !(md5.CyclesPerByte < sha.CyclesPerByte) {
		t.Errorf("model MD5 (%v cyc/B) not cheaper than SHA-1 (%v)", md5.CyclesPerByte, sha.CyclesPerByte)
	}
	if ratio := tdes.CyclesPerByte / des.CyclesPerByte; ratio < 2 || ratio > 4 {
		t.Errorf("3DES/DES cost ratio = %v, want ~3", ratio)
	}
	if len(Models()) != 7 {
		t.Errorf("Models() = %d rows, want 7", len(Models()))
	}
}

func TestSnapshotRenderers(t *testing.T) {
	c := NewCollector()
	b := probe.NewBus(c)
	b.StepEnter(probe.StepGetFinished)
	emitRecord(b, probe.OpMACVerify, "SHA-1", 36)
	b.StepExit()
	emitRecord(b, probe.OpCipherEncrypt, "RC4", 4096)

	s := c.Snapshot()
	text := s.Text()
	for _, want := range []string{"RC4", "SHA-1", "continuous Table 11", probe.LabelBulk} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	if _, err := s.JSON(); err != nil {
		t.Fatalf("JSON(): %v", err)
	}
	if s.ModelGHz != perf.ModelGHz() {
		t.Errorf("snapshot GHz = %v, want %v", s.ModelGHz, perf.ModelGHz())
	}
}

func TestHTTPEndpoint(t *testing.T) {
	c := NewCollector()
	b := probe.NewBus(c)
	emitRecord(b, probe.OpCipherEncrypt, "RC4", 100)

	mux := http.NewServeMux()
	resetCalled := false
	Register(mux, c, func() { resetCalled = true })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/pathlength?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "RC4") {
		t.Errorf("text endpoint missing RC4 row: %s", body[:n])
	}

	resp, err = http.Get(srv.URL + "/debug/pathlength")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("JSON content type = %q", ct)
	}
	resp.Body.Close()

	resp, err = http.Post(srv.URL+"/debug/pathlength/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("reset status = %d", resp.StatusCode)
	}
	if !resetCalled {
		t.Error("reset hook not called")
	}
	if s := c.Snapshot(); len(s.Prims) != 0 {
		t.Errorf("collector not reset: %+v", s.Prims)
	}
}

// TestStepExitDurationFolds pins that wall time comes from the spine's
// StepExit duration, not the collector's own clock.
func TestStepExitDurationFolds(t *testing.T) {
	c := NewCollector()
	c.Emit(probe.Event{Kind: probe.KindStepExit, Step: probe.StepInit, Dur: 5 * time.Millisecond})
	row, ok := c.Snapshot().Step(probe.StepInit.Name())
	if !ok || row.WallNanos != uint64(5*time.Millisecond) {
		t.Errorf("step row = %+v ok=%v", row, ok)
	}
}
