package pathlen

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"sort"
)

// This file folds a pprof CPU profile by its sample labels — the
// offline cross-check of the live collector. The spine attributes
// time by instrumented regions; a sampled profile attributes it by
// where the PC actually was. When the bus threads sslstep/sslfn
// labels through (probe.SetProfileLabels), grouping profile samples
// by label must reproduce the spine's step shares; disagreement means
// uninstrumented work.
//
// The parser reads the gzipped profile.proto wire format directly —
// only the four fields folding needs (sample_type, sample, label,
// string_table) — so the repository stays stdlib-only.

// A FoldRow is one label value's share of the profile.
type FoldRow struct {
	Label    string  `json:"label"`
	Nanos    int64   `json:"nanos"`
	Samples  int64   `json:"samples"`
	SharePct float64 `json:"share_pct"`
}

// FoldUnlabeled is the row name for samples carrying no value for the
// requested label key (runtime, GC, uninstrumented code).
const FoldUnlabeled = "(unlabeled)"

// FoldProfile groups a pprof CPU profile's samples by the given label
// key (probe.LabelKeyStep, probe.LabelKeyFn, …), summing the cpu
// nanoseconds each label value accounts for. data may be gzipped (as
// pprof writes it) or raw protobuf.
func FoldProfile(data []byte, key string) ([]FoldRow, error) {
	prof, err := parseProfile(data)
	if err != nil {
		return nil, err
	}
	vi := prof.valueIndex()
	rows := map[string]*FoldRow{}
	var total int64
	for _, s := range prof.samples {
		if vi >= len(s.values) {
			continue
		}
		v := s.values[vi]
		name := FoldUnlabeled
		if lv, ok := s.labels[key]; ok {
			name = lv
		}
		r := rows[name]
		if r == nil {
			r = &FoldRow{Label: name}
			rows[name] = r
		}
		r.Nanos += v
		r.Samples++
		total += v
	}
	out := make([]FoldRow, 0, len(rows))
	for _, r := range rows {
		if total > 0 {
			r.SharePct = 100 * float64(r.Nanos) / float64(total)
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nanos != out[j].Nanos {
			return out[i].Nanos > out[j].Nanos
		}
		return out[i].Label < out[j].Label
	})
	return out, nil
}

// profile is the subset of profile.proto folding needs.
type profile struct {
	strings     []string
	sampleTypes []valueType
	samples     []sample
}

type valueType struct{ typ, unit string }

type sample struct {
	values []int64
	labels map[string]string
}

// valueIndex picks which sample value to sum: the "cpu" sample type
// when present (a CPU profile is samples/count, cpu/nanoseconds),
// otherwise the last value, pprof's own default.
func (p *profile) valueIndex() int {
	for i, st := range p.sampleTypes {
		if st.typ == "cpu" {
			return i
		}
	}
	if n := len(p.sampleTypes); n > 0 {
		return n - 1
	}
	return 0
}

func parseProfile(data []byte) (*profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("pathlen: bad gzip profile: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("pathlen: bad gzip profile: %w", err)
		}
		data = raw
	}
	p := &profile{}
	// First pass collects the string table and raw messages; labels
	// reference strings, so samples decode in a second pass.
	var sampleMsgs, typeMsgs [][]byte
	err := scanFields(data, func(field int, wire int, v uint64, b []byte) error {
		switch field {
		case 1: // sample_type: repeated ValueType
			typeMsgs = append(typeMsgs, b)
		case 2: // sample: repeated Sample
			sampleMsgs = append(sampleMsgs, b)
		case 6: // string_table: repeated string
			p.strings = append(p.strings, string(b))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	str := func(i uint64) string {
		if int(i) < len(p.strings) {
			return p.strings[i]
		}
		return ""
	}
	for _, m := range typeMsgs {
		var vt valueType
		err := scanFields(m, func(field, wire int, v uint64, b []byte) error {
			switch field {
			case 1:
				vt.typ = str(v)
			case 2:
				vt.unit = str(v)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		p.sampleTypes = append(p.sampleTypes, vt)
	}
	for _, m := range sampleMsgs {
		s := sample{labels: map[string]string{}}
		err := scanFields(m, func(field, wire int, v uint64, b []byte) error {
			switch field {
			case 2: // value: repeated int64 (packed or not)
				if wire == 2 {
					return scanPacked(b, func(v uint64) {
						s.values = append(s.values, int64(v))
					})
				}
				s.values = append(s.values, int64(v))
			case 3: // label: repeated Label
				var key, val string
				err := scanFields(b, func(field, wire int, v uint64, b []byte) error {
					switch field {
					case 1:
						key = str(v)
					case 2:
						val = str(v)
					}
					return nil
				})
				if err != nil {
					return err
				}
				if key != "" && val != "" {
					s.labels[key] = val
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		p.samples = append(p.samples, s)
	}
	return p, nil
}

var errTruncated = errors.New("pathlen: truncated profile")

// scanFields walks one protobuf message, calling fn per field with the
// varint value (wire type 0) or the payload bytes (wire type 2).
// Fixed32/fixed64 fields are skipped.
func scanFields(b []byte, fn func(field, wire int, v uint64, payload []byte) error) error {
	for len(b) > 0 {
		tag, n := uvarint(b)
		if n <= 0 {
			return errTruncated
		}
		b = b[n:]
		field, wire := int(tag>>3), int(tag&7)
		switch wire {
		case 0:
			v, n := uvarint(b)
			if n <= 0 {
				return errTruncated
			}
			b = b[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1:
			if len(b) < 8 {
				return errTruncated
			}
			b = b[8:]
		case 2:
			l, n := uvarint(b)
			if n <= 0 || uint64(len(b)-n) < l {
				return errTruncated
			}
			payload := b[n : n+int(l)]
			b = b[n+int(l):]
			if err := fn(field, wire, 0, payload); err != nil {
				return err
			}
		case 5:
			if len(b) < 4 {
				return errTruncated
			}
			b = b[4:]
		default:
			return fmt.Errorf("pathlen: unsupported wire type %d", wire)
		}
	}
	return nil
}

// scanPacked decodes a packed repeated varint payload.
func scanPacked(b []byte, fn func(uint64)) error {
	for len(b) > 0 {
		v, n := uvarint(b)
		if n <= 0 {
			return errTruncated
		}
		fn(v)
		b = b[n:]
	}
	return nil
}

// uvarint decodes one varint, returning the value and bytes consumed
// (0 when truncated).
func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i]&0x80 == 0 {
			return v, i + 1
		}
	}
	return 0, 0
}
