package rsa

import (
	"bytes"
	"errors"
)

// HashID identifies the digest algorithm wrapped inside a PKCS#1 v1.5
// signature's DigestInfo.
type HashID int

// Supported signature digests. MD5SHA1 is the SSLv3/TLS1.0 convention:
// the 36-byte MD5‖SHA-1 concatenation signed raw, with no DigestInfo.
const (
	HashMD5 HashID = iota
	HashSHA1
	HashMD5SHA1
)

// digestInfoPrefix returns the DER prefix for the DigestInfo of each
// hash (AlgorithmIdentifier + OCTET STRING header), per PKCS#1.
func digestInfoPrefix(h HashID) ([]byte, int, error) {
	switch h {
	case HashMD5:
		return []byte{
			0x30, 0x20, 0x30, 0x0c, 0x06, 0x08, 0x2a, 0x86, 0x48, 0x86,
			0xf7, 0x0d, 0x02, 0x05, 0x05, 0x00, 0x04, 0x10,
		}, 16, nil
	case HashSHA1:
		return []byte{
			0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02,
			0x1a, 0x05, 0x00, 0x04, 0x14,
		}, 20, nil
	case HashMD5SHA1:
		return nil, 36, nil // raw, no DigestInfo
	}
	return nil, 0, errors.New("rsa: unknown hash id")
}

// SignPKCS1 signs digest (which must already be the hash output) with
// PKCS#1 v1.5 block type 1 padding.
func (priv *PrivateKey) SignPKCS1(h HashID, digest []byte) ([]byte, error) {
	prefix, dlen, err := digestInfoPrefix(h)
	if err != nil {
		return nil, err
	}
	if len(digest) != dlen {
		return nil, errors.New("rsa: digest length mismatch for hash")
	}
	t := make([]byte, 0, len(prefix)+dlen)
	t = append(t, prefix...)
	t = append(t, digest...)
	k := priv.Size()
	if len(t) > k-11 {
		return nil, errors.New("rsa: key too small for digest")
	}
	// EB = 00 || 01 || FF..FF || 00 || T
	eb := make([]byte, k)
	eb[1] = 1
	for i := 2; i < k-len(t)-1; i++ {
		eb[i] = 0xff
	}
	copy(eb[k-len(t):], t)
	m := newIntFromBytes(eb)
	s := priv.privateCRT(m)
	return s.FillBytes(make([]byte, k)), nil
}

// VerifyPKCS1 checks a PKCS#1 v1.5 signature over digest.
func (pub *PublicKey) VerifyPKCS1(h HashID, digest, sig []byte) error {
	prefix, dlen, err := digestInfoPrefix(h)
	if err != nil {
		return err
	}
	if len(digest) != dlen {
		return errors.New("rsa: digest length mismatch for hash")
	}
	k := pub.Size()
	if len(sig) != k {
		return errors.New("rsa: signature length mismatch")
	}
	s := newIntFromBytes(sig)
	if s.Cmp(pub.N) >= 0 {
		return errors.New("rsa: signature out of range")
	}
	m := pub.public(s)
	eb := m.FillBytes(make([]byte, k))
	t := make([]byte, 0, len(prefix)+dlen)
	t = append(t, prefix...)
	t = append(t, digest...)
	if len(eb) < len(t)+11 || eb[0] != 0 || eb[1] != 1 {
		return errors.New("rsa: invalid signature padding")
	}
	// FF padding then 00 then T.
	i := 2
	for ; i < len(eb)-len(t)-1; i++ {
		if eb[i] != 0xff {
			return errors.New("rsa: invalid signature padding")
		}
	}
	if eb[i] != 0 {
		return errors.New("rsa: invalid signature padding")
	}
	if !bytes.Equal(eb[i+1:], t) {
		return errors.New("rsa: signature mismatch")
	}
	return nil
}
