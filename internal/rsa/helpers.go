package rsa

import "sslperf/internal/bn"

func newIntFromBytes(b []byte) *bn.Int { return bn.New().SetBytes(b) }
