// Package rsa implements RSA key generation, PKCS#1 v1.5 encryption
// and signatures, CRT private-key operations and blinding, from
// scratch on the bn package — the asymmetric primitive the paper's
// handshake measurements revolve around.
//
// Decryption is factored into the six phases of the paper's Table 7
// (init, string→bignum, blinding, modular computation, bignum→string,
// block parsing) so the experiment harness can attribute time to each.
package rsa

import (
	"errors"
	"io"
	"sync"

	"sslperf/internal/bn"
	"sslperf/internal/perf"
)

// Phase names for the Table 7 breakdown.
const (
	PhaseInit         = "init"
	PhaseDataToBN     = "data_to_bn"
	PhaseBlinding     = "blinding"
	PhaseComputation  = "computation"
	PhaseBNToData     = "bn_to_data"
	PhaseBlockParsing = "block_parsing"
)

// Phases lists the decryption phases in execution order.
var Phases = []string{
	PhaseInit, PhaseDataToBN, PhaseBlinding,
	PhaseComputation, PhaseBNToData, PhaseBlockParsing,
}

// A Decrypter performs the RSA private-key operation on a PKCS#1
// v1.5 ciphertext. *PrivateKey implements it directly (CRT with
// blinding); the rsabatch package provides implementations that
// amortize the modular exponentiation across concurrent requests.
// Implementations must be safe for concurrent use.
type Decrypter interface {
	DecryptPKCS1(rnd io.Reader, ct []byte) ([]byte, error)
}

// PublicKey is an RSA public key (N, e).
type PublicKey struct {
	N *bn.Int // modulus
	E *bn.Int // public exponent
}

// Size returns the modulus size in bytes.
func (pub *PublicKey) Size() int { return (pub.N.BitLen() + 7) / 8 }

// PrivateKey is an RSA private key with CRT parameters.
type PrivateKey struct {
	PublicKey
	D    *bn.Int // private exponent
	P, Q *bn.Int // prime factors, P > Q
	Dp   *bn.Int // D mod (P-1)
	Dq   *bn.Int // D mod (Q-1)
	Qinv *bn.Int // Q^-1 mod P

	// blind is the shared blinding pair; blindMu serializes its
	// refresh when one key serves concurrent connections (the same
	// reason OpenSSL locks its BN_BLINDING).
	blindMu sync.Mutex
	blind   *blinding
}

// GenerateKey generates an RSA key with the given modulus bit size and
// public exponent 65537. The paper evaluates 512- and 1024-bit keys.
func GenerateKey(rnd io.Reader, bits int) (*PrivateKey, error) {
	if bits < 128 || bits%2 != 0 {
		return nil, errors.New("rsa: key size must be an even number of bits >= 128")
	}
	e := bn.NewInt(65537)
	one := bn.NewInt(1)
	for {
		p, err := bn.GeneratePrime(rnd, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := bn.GeneratePrime(rnd, bits/2)
		if err != nil {
			return nil, err
		}
		if p.Equal(q) {
			continue
		}
		if p.Cmp(q) < 0 {
			p, q = q, p
		}
		n := bn.New().Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := bn.New().Sub(p, one)
		qm1 := bn.New().Sub(q, one)
		phi := bn.New().Mul(pm1, qm1)
		d := bn.New().ModInverse(e, phi)
		if d == nil {
			continue // e shares a factor with phi; rare
		}
		key := &PrivateKey{
			PublicKey: PublicKey{N: n, E: e},
			D:         d,
			P:         p,
			Q:         q,
			Dp:        bn.New().Mod(d, pm1),
			Dq:        bn.New().Mod(d, qm1),
			Qinv:      bn.New().ModInverse(q, p),
		}
		if key.Qinv == nil {
			continue
		}
		return key, nil
	}
}

// Validate performs basic sanity checks on the key.
func (priv *PrivateKey) Validate() error {
	n := bn.New().Mul(priv.P, priv.Q)
	if !n.Equal(priv.N) {
		return errors.New("rsa: N != P*Q")
	}
	one := bn.NewInt(1)
	pm1 := bn.New().Sub(priv.P, one)
	qm1 := bn.New().Sub(priv.Q, one)
	phi := bn.New().Mul(pm1, qm1)
	de := bn.New().Mod(bn.New().Mul(priv.D, priv.E), phi)
	if !de.IsOne() {
		return errors.New("rsa: D*E != 1 mod phi(N)")
	}
	return nil
}

// public applies the public operation m^e mod N.
func (pub *PublicKey) public(m *bn.Int) *bn.Int {
	return bn.New().ModExp(m, pub.E, pub.N)
}

// privateCRT applies the private operation c^d mod N using the
// Chinese Remainder Theorem, as OpenSSL does: two half-size
// exponentiations plus a recombination.
func (priv *PrivateKey) privateCRT(c *bn.Int) *bn.Int {
	m1 := bn.New().ModExp(c, priv.Dp, priv.P)
	m2 := bn.New().ModExp(c, priv.Dq, priv.Q)
	// h = Qinv * (m1 - m2) mod P
	h := bn.New().Sub(m1, m2)
	h.Mod(h, priv.P)
	h.Mul(h, priv.Qinv)
	h.Mod(h, priv.P)
	// m = m2 + h*Q
	m := bn.New().Mul(h, priv.Q)
	return m.Add(m, m2)
}

// CRT exposes the raw CRT private operation c^d mod N (no blinding,
// no padding) — the batch engine's fallback and cross-check entry
// point. c must be in [0, N).
func (priv *PrivateKey) CRT(c *bn.Int) *bn.Int { return priv.privateCRT(c) }

// CiphertextToInt performs the decryption front half shared with the
// batch path: the length check of the init phase and the
// octet-string→bignum conversion (Table 7 phases 1–2).
func (priv *PrivateKey) CiphertextToInt(ct []byte) (*bn.Int, error) {
	if len(ct) != priv.Size() {
		return nil, errors.New("rsa: ciphertext length does not match key size")
	}
	c := bn.New().SetBytes(ct)
	if c.Cmp(priv.N) >= 0 {
		return nil, errors.New("rsa: ciphertext out of range")
	}
	return c, nil
}

// FinishDecrypt performs the decryption back half shared with the
// batch path: bignum→octet-string conversion and PKCS#1 block
// parsing (Table 7 phases 5–6) on a recovered plaintext integer.
func (priv *PrivateKey) FinishDecrypt(m *bn.Int) ([]byte, error) {
	return parsePKCS1Type2(m.FillBytes(make([]byte, priv.Size())))
}

// privatePlain applies c^d mod N without CRT (for cross-checking).
func (priv *PrivateKey) privatePlain(c *bn.Int) *bn.Int {
	return bn.New().ModExp(c, priv.D, priv.N)
}

// blinding holds the multiplicative blinding pair used to defeat the
// timing attack the paper cites ([3], Brumley & Boneh): A = r^e mod N
// applied before the private op, Ainv = r^-1 mod N after. OpenSSL
// refreshes the pair by squaring, which is why the paper's Table 7
// shows blinding costing ~1% rather than a full exponentiation.
type blinding struct {
	A    *bn.Int
	Ainv *bn.Int
}

// setupBlinding initializes the blinding pair with fresh randomness.
func (priv *PrivateKey) setupBlinding(rnd io.Reader) error {
	for {
		r, err := bn.New().RandRange(rnd, priv.N)
		if err != nil {
			return err
		}
		rinv := bn.New().ModInverse(r, priv.N)
		if rinv == nil {
			continue
		}
		priv.blind = &blinding{A: priv.public(r), Ainv: rinv}
		return nil
	}
}

// updateBlinding refreshes the pair by squaring, OpenSSL-style.
func (priv *PrivateKey) updateBlinding() {
	b := priv.blind
	sq := bn.New().Sqr(b.A)
	b.A.Mod(sq, priv.N)
	sq.Sqr(b.Ainv)
	b.Ainv.Mod(sq, priv.N)
}

// EncryptPKCS1 encrypts msg with PKCS#1 v1.5 block type 2 padding.
// msg must be at most Size()-11 bytes.
func (pub *PublicKey) EncryptPKCS1(rnd io.Reader, msg []byte) ([]byte, error) {
	k := pub.Size()
	if len(msg) > k-11 {
		return nil, errors.New("rsa: message too long for key size")
	}
	// EB = 00 || 02 || PS (non-zero random) || 00 || msg
	eb := make([]byte, k)
	eb[1] = 2
	ps := eb[2 : k-len(msg)-1]
	if err := fillNonZero(rnd, ps); err != nil {
		return nil, err
	}
	copy(eb[k-len(msg):], msg)
	m := bn.New().SetBytes(eb)
	c := pub.public(m)
	return c.FillBytes(make([]byte, k)), nil
}

func fillNonZero(rnd io.Reader, p []byte) error {
	if _, err := io.ReadFull(rnd, p); err != nil {
		return err
	}
	for i := range p {
		for p[i] == 0 {
			var b [1]byte
			if _, err := io.ReadFull(rnd, b[:]); err != nil {
				return err
			}
			p[i] = b[0]
		}
	}
	return nil
}

// DecryptPKCS1 decrypts a PKCS#1 v1.5 block type 2 ciphertext with
// blinding and CRT, without phase attribution.
func (priv *PrivateKey) DecryptPKCS1(rnd io.Reader, ct []byte) ([]byte, error) {
	return priv.decrypt(rnd, ct, nil)
}

// DecryptPKCS1Profiled is DecryptPKCS1 with per-phase time
// attribution into b, regenerating the paper's Table 7 rows.
func (priv *PrivateKey) DecryptPKCS1Profiled(rnd io.Reader, ct []byte, b *perf.Breakdown) ([]byte, error) {
	return priv.decrypt(rnd, ct, b)
}

func (priv *PrivateKey) decrypt(rnd io.Reader, ct []byte, prof *perf.Breakdown) ([]byte, error) {
	var t perf.Timer
	phase := func(name string) {
		if prof != nil {
			t.Stop()
			prof.Add(name, t.Elapsed())
			t.Reset()
			t.Start()
		}
	}
	if prof != nil {
		t.Start()
	}

	// Phase 1: init — context and buffer setup.
	k := priv.Size()
	if len(ct) != k {
		return nil, errors.New("rsa: ciphertext length does not match key size")
	}
	work := make([]byte, 0, 2*k)
	_ = work
	phase(PhaseInit)

	// Phase 2: octet string -> multi-precision integer.
	c := bn.New().SetBytes(ct)
	if c.Cmp(priv.N) >= 0 {
		return nil, errors.New("rsa: ciphertext out of range")
	}
	phase(PhaseDataToBN)

	// Phase 3: blinding (setup on first use, then squaring refresh).
	// The pair is taken under the key's lock so concurrent
	// decryptions each use a consistent (A, A⁻¹).
	priv.blindMu.Lock()
	if priv.blind == nil {
		if err := priv.setupBlinding(rnd); err != nil {
			priv.blindMu.Unlock()
			return nil, err
		}
	} else {
		priv.updateBlinding()
	}
	blindA := priv.blind.A.Clone()
	blindAinv := priv.blind.Ainv.Clone()
	priv.blindMu.Unlock()
	blinded := bn.New().Mul(c, blindA)
	blinded.Mod(blinded, priv.N)
	phase(PhaseBlinding)

	// Phase 4: the RSA computation c^d mod N via CRT.
	m := priv.privateCRT(blinded)
	// Unblind: multiply by r^-1. (Charged to computation, as OpenSSL
	// performs it inside rsa_eay_private_decrypt's compute section.)
	m.Mul(m, blindAinv)
	m.Mod(m, priv.N)
	phase(PhaseComputation)

	// Phase 5: multi-precision integer -> octet string.
	eb := m.FillBytes(make([]byte, k))
	phase(PhaseBNToData)

	// Phase 6: PKCS#1 block parsing.
	msg, err := parsePKCS1Type2(eb)
	phase(PhaseBlockParsing)
	return msg, err
}

// parsePKCS1Type2 strips 00 || 02 || PS || 00 padding.
func parsePKCS1Type2(eb []byte) ([]byte, error) {
	if len(eb) < 11 || eb[0] != 0 || eb[1] != 2 {
		return nil, errors.New("rsa: invalid PKCS#1 type 2 padding")
	}
	// Find the 00 separator after at least 8 padding bytes.
	sep := -1
	for i := 2; i < len(eb); i++ {
		if eb[i] == 0 {
			sep = i
			break
		}
	}
	if sep < 10 {
		return nil, errors.New("rsa: invalid PKCS#1 type 2 padding")
	}
	out := make([]byte, len(eb)-sep-1)
	copy(out, eb[sep+1:])
	return out, nil
}
