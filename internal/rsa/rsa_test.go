package rsa

import (
	"bytes"
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"sslperf/internal/bn"
	"sslperf/internal/perf"
)

type randReader struct{ r *rand.Rand }

func newRandReader(seed int64) *randReader {
	return &randReader{r: rand.New(rand.NewSource(seed))}
}

func (rr *randReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(rr.r.Intn(256))
	}
	return len(p), nil
}

var (
	keyOnce sync.Once
	key512  *PrivateKey
	key1024 *PrivateKey
)

// testKeys generates deterministic 512- and 1024-bit keys once.
func testKeys(t *testing.T) (*PrivateKey, *PrivateKey) {
	t.Helper()
	keyOnce.Do(func() {
		var err error
		key512, err = GenerateKey(newRandReader(1001), 512)
		if err != nil {
			panic(err)
		}
		key1024, err = GenerateKey(newRandReader(1002), 1024)
		if err != nil {
			panic(err)
		}
	})
	return key512, key1024
}

func TestGenerateKeyProperties(t *testing.T) {
	k512, k1024 := testKeys(t)
	for _, k := range []*PrivateKey{k512, k1024} {
		if err := k.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	}
	if k512.N.BitLen() != 512 {
		t.Errorf("512-bit key has %d-bit modulus", k512.N.BitLen())
	}
	if k1024.N.BitLen() != 1024 {
		t.Errorf("1024-bit key has %d-bit modulus", k1024.N.BitLen())
	}
	if k512.Size() != 64 || k1024.Size() != 128 {
		t.Errorf("Size() wrong: %d, %d", k512.Size(), k1024.Size())
	}
	if v, _ := k512.E.Uint64(); v != 65537 {
		t.Errorf("E = %d, want 65537", v)
	}
}

func TestGenerateKeyRejectsBadSizes(t *testing.T) {
	if _, err := GenerateKey(newRandReader(1), 100); err == nil {
		t.Error("accepted 100-bit key")
	}
	if _, err := GenerateKey(newRandReader(1), 129); err == nil {
		t.Error("accepted odd bit size")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k512, k1024 := testKeys(t)
	rnd := newRandReader(2)
	for _, k := range []*PrivateKey{k512, k1024} {
		for _, msgLen := range []int{0, 1, 16, 48, k.Size() - 11} {
			msg := make([]byte, msgLen)
			rnd.Read(msg)
			ct, err := k.EncryptPKCS1(rnd, msg)
			if err != nil {
				t.Fatalf("encrypt %d bytes: %v", msgLen, err)
			}
			if len(ct) != k.Size() {
				t.Fatalf("ciphertext length %d != %d", len(ct), k.Size())
			}
			pt, err := k.DecryptPKCS1(rnd, ct)
			if err != nil {
				t.Fatalf("decrypt: %v", err)
			}
			if !bytes.Equal(pt, msg) {
				t.Fatalf("round trip failed for %d bytes", msgLen)
			}
		}
	}
}

func TestEncryptRejectsLongMessage(t *testing.T) {
	k512, _ := testKeys(t)
	msg := make([]byte, k512.Size()-10)
	if _, err := k512.EncryptPKCS1(newRandReader(3), msg); err == nil {
		t.Error("accepted over-long message")
	}
}

func TestDecryptRejectsBadInput(t *testing.T) {
	k512, _ := testKeys(t)
	rnd := newRandReader(4)
	if _, err := k512.DecryptPKCS1(rnd, make([]byte, 10)); err == nil {
		t.Error("accepted short ciphertext")
	}
	// All-0xFF is >= N for a key with top bit set.
	big := bytes.Repeat([]byte{0xff}, k512.Size())
	if _, err := k512.DecryptPKCS1(rnd, big); err == nil {
		t.Error("accepted out-of-range ciphertext")
	}
	// Random ciphertext should fail padding check (overwhelmingly).
	ct := make([]byte, k512.Size())
	rnd.Read(ct)
	ct[0] = 0
	if _, err := k512.DecryptPKCS1(rnd, ct); err == nil {
		t.Error("random ciphertext decrypted without padding error")
	}
}

func TestCRTMatchesPlain(t *testing.T) {
	k512, _ := testKeys(t)
	rnd := newRandReader(5)
	for i := 0; i < 10; i++ {
		c, _ := bn.New().RandRange(rnd, k512.N)
		crt := k512.privateCRT(c)
		plain := k512.privatePlain(c)
		if !crt.Equal(plain) {
			t.Fatalf("CRT %s != plain %s", crt, plain)
		}
	}
}

func TestPrivatePublicInverse(t *testing.T) {
	k512, _ := testKeys(t)
	rnd := newRandReader(6)
	for i := 0; i < 10; i++ {
		m, _ := bn.New().RandRange(rnd, k512.N)
		c := k512.public(m)
		back := k512.privateCRT(c)
		if !back.Equal(m) {
			t.Fatalf("decrypt(encrypt(m)) != m")
		}
	}
}

func TestAgainstMathBig(t *testing.T) {
	k512, _ := testKeys(t)
	// Cross-check the public op against math/big.
	m := bn.NewInt(0xdeadbeef)
	c := k512.public(m)
	nBig := new(big.Int).SetBytes(k512.N.Bytes())
	eBig := new(big.Int).SetBytes(k512.E.Bytes())
	want := new(big.Int).Exp(big.NewInt(0xdeadbeef), eBig, nBig)
	if got := new(big.Int).SetBytes(c.Bytes()); got.Cmp(want) != 0 {
		t.Fatalf("public op disagrees with math/big")
	}
}

func TestBlindingRefresh(t *testing.T) {
	k512, _ := testKeys(t)
	rnd := newRandReader(7)
	msg := []byte("blinded")
	ct, _ := k512.EncryptPKCS1(rnd, msg)
	// First decryption sets up blinding; subsequent ones refresh it.
	for i := 0; i < 5; i++ {
		pt, err := k512.DecryptPKCS1(rnd, ct)
		if err != nil || !bytes.Equal(pt, msg) {
			t.Fatalf("decryption %d failed: %v", i, err)
		}
	}
	// The blinding pair must stay consistent: A * Ainv^e ... simpler:
	// blinded*Ainv round-trips, which the loop above already proves.
	if k512.blind == nil {
		t.Fatal("blinding was never set up")
	}
}

// TestConcurrentDecryptions pins the blinding-state locking: one key
// serving many goroutines (a server under load) must stay correct.
// Run with -race to verify the synchronization.
func TestConcurrentDecryptions(t *testing.T) {
	k512, _ := testKeys(t)
	msg := []byte("shared-key decryption")
	ct, err := k512.EncryptPKCS1(newRandReader(40), msg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := newRandReader(int64(41 + g))
			for i := 0; i < 20; i++ {
				pt, err := k512.DecryptPKCS1(rnd, ct)
				if err != nil || !bytes.Equal(pt, msg) {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent decrypt failed: %v", err)
	}
}

func TestDecryptProfiledPhases(t *testing.T) {
	_, k1024 := testKeys(t)
	rnd := newRandReader(8)
	msg := make([]byte, 48) // the pre-master secret size
	rnd.Read(msg)
	ct, err := k1024.EncryptPKCS1(rnd, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up blinding so the profile reflects steady state.
	if _, err := k1024.DecryptPKCS1(rnd, ct); err != nil {
		t.Fatal(err)
	}
	b := perf.NewBreakdown()
	pt, err := k1024.DecryptPKCS1Profiled(rnd, ct, b)
	if err != nil || !bytes.Equal(pt, msg) {
		t.Fatalf("profiled decrypt failed: %v", err)
	}
	names := b.Names()
	if len(names) != len(Phases) {
		t.Fatalf("phases recorded: %v, want %v", names, Phases)
	}
	for i, want := range Phases {
		if names[i] != want {
			t.Fatalf("phase %d = %s, want %s", i, names[i], want)
		}
	}
	// Table 7: computation dominates (97-98.8% in the paper).
	if pct := b.Percent(PhaseComputation); pct < 80 {
		t.Fatalf("computation = %.1f%%, want dominant per Table 7\n%s", pct, b)
	}
}

func TestSignVerifyMD5SHA1(t *testing.T) {
	k512, _ := testKeys(t)
	digest := make([]byte, 36)
	newRandReader(9).Read(digest)
	sig, err := k512.SignPKCS1(HashMD5SHA1, digest)
	if err != nil {
		t.Fatal(err)
	}
	if err := k512.VerifyPKCS1(HashMD5SHA1, digest, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Tampered digest fails.
	digest[0] ^= 1
	if err := k512.VerifyPKCS1(HashMD5SHA1, digest, sig); err == nil {
		t.Fatal("verify accepted tampered digest")
	}
	digest[0] ^= 1
	// Tampered signature fails.
	sig[len(sig)-1] ^= 1
	if err := k512.VerifyPKCS1(HashMD5SHA1, digest, sig); err == nil {
		t.Fatal("verify accepted tampered signature")
	}
}

func TestSignVerifyDigestInfo(t *testing.T) {
	k512, _ := testKeys(t)
	cases := []struct {
		h    HashID
		dlen int
	}{{HashMD5, 16}, {HashSHA1, 20}}
	for _, c := range cases {
		digest := make([]byte, c.dlen)
		newRandReader(int64(10 + c.dlen)).Read(digest)
		sig, err := k512.SignPKCS1(c.h, digest)
		if err != nil {
			t.Fatalf("sign %v: %v", c.h, err)
		}
		if err := k512.VerifyPKCS1(c.h, digest, sig); err != nil {
			t.Fatalf("verify %v: %v", c.h, err)
		}
		// Wrong hash id must fail.
		other := HashMD5
		if c.h == HashMD5 {
			other = HashSHA1
		}
		otherDigest := make([]byte, map[HashID]int{HashMD5: 16, HashSHA1: 20}[other])
		if err := k512.VerifyPKCS1(other, otherDigest, sig); err == nil {
			t.Fatalf("verify with wrong hash accepted")
		}
	}
}

func TestSignRejectsWrongDigestLength(t *testing.T) {
	k512, _ := testKeys(t)
	if _, err := k512.SignPKCS1(HashSHA1, make([]byte, 16)); err == nil {
		t.Error("accepted 16-byte digest for SHA-1")
	}
	if err := k512.VerifyPKCS1(HashSHA1, make([]byte, 16), make([]byte, 64)); err == nil {
		t.Error("verify accepted wrong-length digest")
	}
}

func TestParsePKCS1Type2(t *testing.T) {
	good := append([]byte{0, 2}, bytes.Repeat([]byte{0xaa}, 8)...)
	good = append(good, 0)
	good = append(good, []byte("hello")...)
	msg, err := parsePKCS1Type2(good)
	if err != nil || string(msg) != "hello" {
		t.Fatalf("parse = %q, %v", msg, err)
	}
	bad := [][]byte{
		nil,
		{0, 2, 0xaa, 0},                   // too short
		append([]byte{1, 2}, good[2:]...), // wrong leading byte
		append([]byte{0, 1}, good[2:]...), // wrong block type
		append([]byte{0, 2}, bytes.Repeat([]byte{0xaa}, 20)...), // no separator
		{0, 2, 0xaa, 0xaa, 0, 1, 1, 1, 1, 1, 1, 1},              // PS too short
	}
	for i, b := range bad {
		if _, err := parsePKCS1Type2(b); err == nil {
			t.Errorf("bad case %d accepted", i)
		}
	}
}
