package hmacx

import (
	"bytes"
	"crypto/hmac"
	stdmd5 "crypto/md5"
	stdsha1 "crypto/sha1"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 2202 test vectors.
func TestRFC2202SHA1(t *testing.T) {
	cases := []struct{ key, data, want string }{
		{
			hex.EncodeToString(bytes.Repeat([]byte{0x0b}, 20)),
			hex.EncodeToString([]byte("Hi There")),
			"b617318655057264e28bc0b6fb378c8ef146be00",
		},
		{
			hex.EncodeToString([]byte("Jefe")),
			hex.EncodeToString([]byte("what do ya want for nothing?")),
			"effcdf6ae5eb2fa2d27416d5f184df9c259a7c79",
		},
		{
			hex.EncodeToString(bytes.Repeat([]byte{0xaa}, 80)),
			hex.EncodeToString([]byte("Test Using Larger Than Block-Size Key - Hash Key First")),
			"aa4ae5e15272d00e95705637ce8a3b55ed402112",
		},
	}
	for i, c := range cases {
		key, _ := hex.DecodeString(c.key)
		data, _ := hex.DecodeString(c.data)
		h := NewSHA1(key)
		h.Write(data)
		if got := hex.EncodeToString(h.Sum(nil)); got != c.want {
			t.Errorf("case %d: %s, want %s", i, got, c.want)
		}
	}
}

func TestRFC2202MD5(t *testing.T) {
	key := []byte("Jefe")
	data := []byte("what do ya want for nothing?")
	h := NewMD5(key)
	h.Write(data)
	want := "750c783e6ab0b503eaa86e310a5db738"
	if got := hex.EncodeToString(h.Sum(nil)); got != want {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestAgainstStdlibProperty(t *testing.T) {
	f := func(key, data []byte) bool {
		ours := NewSHA1(key)
		ours.Write(data)
		std := hmac.New(stdsha1.New, key)
		std.Write(data)
		if !bytes.Equal(ours.Sum(nil), std.Sum(nil)) {
			return false
		}
		om := NewMD5(key)
		om.Write(data)
		sm := hmac.New(stdmd5.New, key)
		sm.Write(data)
		return bytes.Equal(om.Sum(nil), sm.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResetAndStreaming(t *testing.T) {
	key := []byte("key")
	h := NewSHA1(key)
	h.Write([]byte("hello "))
	h.Write([]byte("world"))
	streamed := h.Sum(nil)
	h.Reset()
	h.Write([]byte("hello world"))
	whole := h.Sum(nil)
	if !bytes.Equal(streamed, whole) {
		t.Fatal("streaming differs from one-shot")
	}
}

func TestSumDoesNotFinalize(t *testing.T) {
	h := NewMD5([]byte("k"))
	h.Write([]byte("ab"))
	a := h.Sum(nil)
	if !bytes.Equal(a, h.Sum(nil)) {
		t.Fatal("Sum changed state")
	}
	h.Write([]byte("c"))
	h2 := NewMD5([]byte("k"))
	h2.Write([]byte("abc"))
	if !bytes.Equal(h.Sum(nil), h2.Sum(nil)) {
		t.Fatal("write-after-Sum broken")
	}
}

func TestSizes(t *testing.T) {
	if NewMD5(nil).Size() != 16 || NewSHA1(nil).Size() != 20 {
		t.Fatal("sizes wrong")
	}
	if NewSHA1(nil).BlockSize() != 64 {
		t.Fatal("block size wrong")
	}
}
