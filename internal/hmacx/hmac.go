// Package hmacx implements HMAC (RFC 2104) over this library's MD5
// and SHA-1, the keyed-hash construction TLS 1.0 adopted in place of
// SSLv3's ad-hoc pad1/pad2 MAC.
package hmacx

import (
	"sslperf/internal/md5x"
	"sslperf/internal/sha1x"
)

// digest is the hash contract HMAC wraps.
type digest interface {
	Write(p []byte) (int, error)
	Sum(in []byte) []byte
	Reset()
	Size() int
	BlockSize() int
}

// New returns an HMAC keyed with key over the hash produced by newHash.
func New(newHash func() digest, key []byte) *HMAC {
	h := &HMAC{inner: newHash(), outer: newHash()}
	bs := h.inner.BlockSize()
	if len(key) > bs {
		h.inner.Write(key)
		key = h.inner.Sum(nil)
		h.inner.Reset()
	}
	h.ipad = make([]byte, bs)
	h.opad = make([]byte, bs)
	copy(h.ipad, key)
	copy(h.opad, key)
	for i := 0; i < bs; i++ {
		h.ipad[i] ^= 0x36
		h.opad[i] ^= 0x5c
	}
	h.Reset()
	return h
}

// NewMD5 returns HMAC-MD5.
func NewMD5(key []byte) *HMAC {
	return New(func() digest { return md5x.New() }, key)
}

// NewSHA1 returns HMAC-SHA1.
func NewSHA1(key []byte) *HMAC {
	return New(func() digest { return sha1x.New() }, key)
}

// HMAC is a streaming HMAC computation.
type HMAC struct {
	inner, outer digest
	ipad, opad   []byte
}

// Size returns the MAC length.
func (h *HMAC) Size() int { return h.inner.Size() }

// BlockSize returns the underlying hash's block size.
func (h *HMAC) BlockSize() int { return h.inner.BlockSize() }

// Reset rewinds to the keyed initial state.
func (h *HMAC) Reset() {
	h.inner.Reset()
	h.inner.Write(h.ipad)
}

// Write absorbs message bytes. It never fails.
func (h *HMAC) Write(p []byte) (int, error) { return h.inner.Write(p) }

// Sum appends the MAC of everything written since Reset to in. The
// inner state is not disturbed, so writing may continue.
func (h *HMAC) Sum(in []byte) []byte {
	innerSum := h.inner.Sum(nil)
	h.outer.Reset()
	h.outer.Write(h.opad)
	h.outer.Write(innerSum)
	return h.outer.Sum(in)
}
