package lifecycle

import (
	"testing"
	"time"

	"sslperf/internal/probe"
	"sslperf/internal/slo"
)

// BenchmarkConnTable pins the conn-table hot path: registering,
// transitioning, and closing an entry must be allocation-free steady
// state (the sync.Pool recycles entries, the shard maps reuse freed
// slots), so attaching the observatory to a server costs bookkeeping,
// not garbage. The figures land in docs/BENCH_lifecycle.json via make
// bench, gated at zero allocs/op by the lifecycle-conn-table shape.
func BenchmarkConnTable(b *testing.B) {
	warm := func(t *Table) {
		for i := 0; i < 64; i++ {
			t.Register("warm").Close()
		}
	}

	b.Run("register-close", func(b *testing.B) {
		tab := NewTable(Options{})
		warm(tab)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tab.Register("bench").Close()
		}
	})

	b.Run("full-life", func(b *testing.B) {
		// The whole lifecycle a served connection pays: register,
		// handshake transitions with step and record events on the
		// spine, SLO fold, close.
		tab := NewTable(Options{SLO: slo.New(slo.Config{})})
		warm(tab)
		at := time.Now()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := tab.Register("bench")
			c.HandshakeStart()
			c.Emit(probe.Event{Kind: probe.KindStepEnter, Step: probe.StepGetClientHello, At: at})
			c.Emit(probe.Event{Kind: probe.KindStepExit, Step: probe.StepGetClientHello, At: at, Dur: time.Microsecond})
			c.Emit(probe.Event{Kind: probe.KindStepEnter, Step: probe.StepGetClientKX, At: at})
			c.Emit(probe.Event{Kind: probe.KindStepExit, Step: probe.StepGetClientKX, At: at, Dur: time.Microsecond})
			c.Emit(probe.Event{Kind: probe.KindRecordIO, Bytes: 512, Written: false})
			c.Emit(probe.Event{Kind: probe.KindRecordIO, Bytes: 512, Written: true})
			c.Established("RC4-MD5", 0x0300, false, time.Millisecond)
			c.Draining()
			c.Close()
		}
	})

	b.Run("emit", func(b *testing.B) {
		tab := NewTable(Options{})
		c := tab.Register("bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Emit(probe.Event{Kind: probe.KindRecordIO, Bytes: 1024, Written: i&1 == 0})
		}
		b.StopTimer()
		c.Close()
	})
}
