package lifecycle

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
	"time"

	"sslperf/internal/probe"
)

// closeRecord is the flattened terminal view of a connection, built
// under the entry lock at close time. It is a value type so a
// sampled-out success costs counters only, no allocation.
type closeRecord struct {
	ID      uint64
	Remote  string
	State   State
	Suite   string
	Version uint16
	Resumed bool

	Opened     time.Time
	Age        time.Duration
	HsDur      time.Duration
	QueueDelay time.Duration
	sawQueue   bool

	BytesIn, BytesOut     uint64
	RecordsIn, RecordsOut uint64

	FailClass  probe.FailClass
	FailTag    string
	FailDetail string

	timeline  [maxTimeline]StepTiming
	timelineN int
}

// closeRecordLocked snapshots the entry for the close-log. Callers
// hold c.mu.
func (c *Conn) closeRecordLocked() closeRecord {
	rec := closeRecord{
		ID:         c.ID,
		Remote:     c.Remote,
		State:      c.state,
		Suite:      c.suite,
		Version:    c.version,
		Resumed:    c.resumed,
		Opened:     c.Opened,
		Age:        time.Since(c.Opened),
		HsDur:      c.hsDur,
		QueueDelay: c.queueDelay,
		sawQueue:   c.sawStep,
		BytesIn:    c.bytesIn.Load(),
		BytesOut:   c.bytesOut.Load(),
		RecordsIn:  c.recordsIn.Load(),
		RecordsOut: c.recordsOut.Load(),
		FailClass:  c.failClass,
		FailTag:    c.failTag,
		FailDetail: c.failDetail,
		timeline:   c.timeline,
		timelineN:  c.timelineN,
	}
	return rec
}

// CloseLogCounts is the close-log's reconciliation ledger: every close
// is counted whether or not its line was emitted, so
// Successes+Failures always equals the table's total_closed and the
// telemetry handshake counters can be cross-checked exactly even with
// success sampling on.
type CloseLogCounts struct {
	Successes  uint64 `json:"successes"`
	Failures   uint64 `json:"failures"`
	Logged     uint64 `json:"logged"`
	Suppressed uint64 `json:"suppressed"` // successes sampled out
}

// A CloseLog writes one structured JSON line per connection close
// (log/slog, JSON handler): the full step timeline with durations,
// suite, resumed flag, byte counts, and on failures the canonical
// fail class, tag, and error text. Successes are sampled 1-in-N;
// failures are always logged. A nil *CloseLog no-ops.
type CloseLog struct {
	log         *slog.Logger
	sampleEvery uint64

	successes  atomic.Uint64
	failures   atomic.Uint64
	logged     atomic.Uint64
	suppressed atomic.Uint64
}

// NewCloseLog writes JSON lines to w, logging every sampleEvery'th
// successful close (<=1 logs all successes). Failures always log.
func NewCloseLog(w io.Writer, sampleEvery int) *CloseLog {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo})
	return &CloseLog{log: slog.New(h), sampleEvery: uint64(sampleEvery)}
}

// Counts returns the reconciliation ledger.
func (cl *CloseLog) Counts() CloseLogCounts {
	if cl == nil {
		return CloseLogCounts{}
	}
	return CloseLogCounts{
		Successes:  cl.successes.Load(),
		Failures:   cl.failures.Load(),
		Logged:     cl.logged.Load(),
		Suppressed: cl.suppressed.Load(),
	}
}

func (cl *CloseLog) resetCounts() {
	if cl == nil {
		return
	}
	cl.successes.Store(0)
	cl.failures.Store(0)
	cl.logged.Store(0)
	cl.suppressed.Store(0)
}

// observe counts one close and emits its line subject to sampling.
func (cl *CloseLog) observe(rec closeRecord) {
	if cl == nil {
		return
	}
	failed := rec.State == StateFailed
	if failed {
		cl.failures.Add(1)
	} else {
		n := cl.successes.Add(1)
		if cl.sampleEvery > 1 && n%cl.sampleEvery != 0 {
			cl.suppressed.Add(1)
			return
		}
	}
	cl.logged.Add(1)
	cl.emit(rec, failed)
}

// stepLine is one timeline entry in the close-log JSON.
type stepLine struct {
	Step string  `json:"step"`
	Us   float64 `json:"us"`
}

func (cl *CloseLog) emit(rec closeRecord, failed bool) {
	attrs := make([]slog.Attr, 0, 16)
	attrs = append(attrs,
		slog.Uint64("conn", rec.ID),
		slog.String("state", rec.State.Name()),
	)
	if rec.Remote != "" {
		attrs = append(attrs, slog.String("remote", rec.Remote))
	}
	if rec.Suite != "" {
		attrs = append(attrs,
			slog.String("suite", rec.Suite),
			slog.String("version", versionName(rec.Version)),
			slog.Bool("resumed", rec.Resumed),
		)
	}
	attrs = append(attrs, slog.Float64("age_ms", float64(rec.Age)/float64(time.Millisecond)))
	if rec.HsDur > 0 {
		attrs = append(attrs, slog.Float64("handshake_us", float64(rec.HsDur)/float64(time.Microsecond)))
	}
	if rec.sawQueue {
		attrs = append(attrs, slog.Float64("queue_delay_us", float64(rec.QueueDelay)/float64(time.Microsecond)))
	}
	attrs = append(attrs,
		slog.Uint64("bytes_in", rec.BytesIn),
		slog.Uint64("bytes_out", rec.BytesOut),
		slog.Uint64("records_in", rec.RecordsIn),
		slog.Uint64("records_out", rec.RecordsOut),
	)
	if rec.timelineN > 0 {
		steps := make([]stepLine, rec.timelineN)
		for i := 0; i < rec.timelineN; i++ {
			steps[i] = stepLine{
				Step: rec.timeline[i].Step.Name(),
				Us:   float64(rec.timeline[i].Dur) / float64(time.Microsecond),
			}
		}
		attrs = append(attrs, slog.Any("steps", steps))
	}
	level := slog.LevelInfo
	if failed {
		level = slog.LevelWarn
		attrs = append(attrs,
			slog.String("fail_class", rec.FailClass.Name()),
			slog.String("fail_tag", rec.FailTag),
			slog.String("fail_detail", rec.FailDetail),
		)
	}
	cl.log.LogAttrs(context.Background(), level, "conn_close", attrs...)
}
