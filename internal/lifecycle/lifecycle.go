// Package lifecycle is the live connection observatory: a lock-striped
// table of every registered ssl.Conn, tracked from accept through the
// handshake's Table-2 steps to established/draining/closed, with the
// canonical probe.FailClass taxonomy on failures and a structured
// close-log (one JSON line per connection close) that makes per-conn
// anatomy greppable offline.
//
// Where internal/telemetry answers "how many, how fast" in aggregate,
// this package answers the triage questions aggregates cannot: which
// connections are stuck in step get_client_kx right now, why did the
// last 500 handshakes fail, what did connection 123's life look like.
// Entries ride the probe spine (each *Conn is a probe.Sink on its
// connection's bus), so the step cursor and byte counters here cannot
// disagree with the anatomy or telemetry surfaces.
//
// The table is sharded 64 ways by connection ID and entries are
// pooled, so registering, transitioning, and closing a connection is
// allocation-free steady-state and a million live entries do not
// contend on one lock (docs/BENCH_lifecycle.json holds the measured
// hot-path cost).
package lifecycle

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sslperf/internal/probe"
	"sslperf/internal/slo"
)

// State is a connection's position in its lifecycle.
type State uint8

// Lifecycle states, in the order a healthy connection passes through
// them. Failed replaces Established..Closed on a handshake error.
// Suspended is the event-loop variant of Handshaking: the non-blocking
// core hit WouldBlock mid-handshake and the connection is parked
// waiting for transport readiness, holding buffers but no goroutine.
const (
	StateAccepted State = iota
	StateHandshaking
	StateSuspended
	StateEstablished
	StateDraining
	StateClosed
	StateFailed

	stateCount
)

var stateNames = [stateCount]string{
	StateAccepted:    "accepted",
	StateHandshaking: "handshaking",
	StateSuspended:   "suspended",
	StateEstablished: "established",
	StateDraining:    "draining",
	StateClosed:      "closed",
	StateFailed:      "failed",
}

// Name returns the state's snake_case name.
func (s State) Name() string {
	if s >= stateCount {
		return fmt.Sprintf("state(%d)", uint8(s))
	}
	return stateNames[s]
}

// String implements fmt.Stringer.
func (s State) String() string { return s.Name() }

// StateByName resolves a state name (the /debug/conns?state= filter);
// ok is false for unknown names.
func StateByName(name string) (State, bool) {
	for s := State(0); s < stateCount; s++ {
		if stateNames[s] == name {
			return s, true
		}
	}
	return 0, false
}

// StepTiming is one completed handshake step on a connection's
// timeline.
type StepTiming struct {
	Step probe.Step
	Dur  time.Duration
}

// maxTimeline bounds the per-conn step timeline: the longest path (a
// full DHE handshake) completes 11 steps, so 16 leaves slack without
// ever reallocating.
const maxTimeline = 16

// A Conn is one live table entry. It implements probe.Sink: attached
// to its connection's bus it maintains the current-step cursor, the
// step timeline, and the byte/record counters from the same event
// stream every other surface reads.
type Conn struct {
	tab *Table

	// Immutable after Register.
	ID     uint64
	Remote string
	Opened time.Time

	// Single-writer counters (the connection's goroutine), read by
	// snapshots without the lock.
	lastActivity          atomic.Int64 // unix nanos
	bytesIn, bytesOut     atomic.Uint64
	recordsIn, recordsOut atomic.Uint64

	// mu guards the mutable fields below against snapshot readers.
	mu         sync.Mutex
	state      State
	step       probe.Step // open step while handshaking
	suite      string
	version    uint16
	resumed    bool
	hsDur      time.Duration
	queueDelay time.Duration // accept to first step enter
	sawStep    bool
	timeline   [maxTimeline]StepTiming
	timelineN  int
	failClass  probe.FailClass
	failTag    string
	failDetail string
}

// shardCount stripes the table; must be a power of two.
const shardCount = 64

type shard struct {
	mu    sync.Mutex
	conns map[uint64]*Conn
}

// Options configures a Table.
type Options struct {
	// SLO, when non-nil, receives handshake outcomes, in-flight
	// transitions, and queue delays from every registered connection.
	SLO *slo.Tracker
	// CloseLog, when non-nil, receives one structured record per
	// connection close.
	CloseLog *CloseLog
}

// A Table is the live connection table. All methods are safe for
// concurrent use; a nil *Table no-ops everywhere so callers can wire
// it unconditionally.
type Table struct {
	seq    atomic.Uint64
	shards [shardCount]shard
	pool   sync.Pool

	slo      *slo.Tracker
	closeLog *CloseLog

	opened atomic.Uint64
	closed atomic.Uint64
	failed atomic.Uint64

	// failClasses counts terminal failures by tag — the taxonomy
	// summary /debug/conns renders. One touch per failed connection.
	failMu      sync.Mutex
	failClasses map[string]uint64

	// failByClass mirrors failClasses at canonical-class granularity
	// in a fixed wait-free array (refined tags like peer_alert:<name>
	// collapse onto their class), so the history sampler can read
	// per-class counters without taking failMu or allocating.
	failByClass [numFailClasses]atomic.Uint64
}

// numFailClasses covers every probe.FailClass including FailNone.
const numFailClasses = int(probe.FailInternal) + 1

// NewTable returns an empty table.
func NewTable(opts Options) *Table {
	t := &Table{slo: opts.SLO, closeLog: opts.CloseLog, failClasses: make(map[string]uint64)}
	t.pool.New = func() any { return new(Conn) }
	for i := range t.shards {
		t.shards[i].conns = make(map[uint64]*Conn)
	}
	return t
}

// SLO returns the tracker the table feeds (nil when none).
func (t *Table) SLO() *slo.Tracker {
	if t == nil {
		return nil
	}
	return t.slo
}

// CloseLog returns the table's close-log sink (nil when none).
func (t *Table) CloseLog() *CloseLog {
	if t == nil {
		return nil
	}
	return t.closeLog
}

// Register adds a connection at accept time and returns its live
// entry (nil on a nil table — every *Conn method tolerates nil).
func (t *Table) Register(remote string) *Conn {
	if t == nil {
		return nil
	}
	c := t.pool.Get().(*Conn)
	*c = Conn{tab: t, ID: t.seq.Add(1), Remote: remote, Opened: time.Now()}
	c.lastActivity.Store(c.Opened.UnixNano())
	t.opened.Add(1)
	sh := &t.shards[c.ID%shardCount]
	sh.mu.Lock()
	sh.conns[c.ID] = c
	sh.mu.Unlock()
	return c
}

// Len reports the live entry count.
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.conns)
		sh.mu.Unlock()
	}
	return n
}

// Reset drops every live entry (without close-logging them) and
// zeroes the cumulative counters — the /debug/reset hook. The ID
// sequence keeps running so IDs stay unique across the cut, and any
// still-registered *Conn keeps working (its terminal Close finds the
// entry already gone and skips the table bookkeeping).
func (t *Table) Reset() {
	if t == nil {
		return
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		// Entries are dropped, not recycled: their owning connections
		// may still emit into them.
		sh.conns = make(map[uint64]*Conn)
		sh.mu.Unlock()
	}
	t.opened.Store(0)
	t.closed.Store(0)
	t.failed.Store(0)
	t.failMu.Lock()
	t.failClasses = make(map[string]uint64)
	t.failMu.Unlock()
	for i := range t.failByClass {
		t.failByClass[i].Store(0)
	}
	t.closeLog.resetCounts()
}

// Counts is the table's cheap gauge/counter readout: live entries by
// state, the cumulative open/close/fail counters, and failures by
// canonical class — everything the history sampler needs each second,
// with no maps, rows, or allocations built.
type Counts struct {
	Live        int
	Accepted    int
	Handshaking int
	Suspended   int
	Established int
	Draining    int

	Opened uint64
	Closed uint64
	Failed uint64

	// FailByClass is indexed by probe.FailClass.
	FailByClass [numFailClasses]uint64
}

// Counts reads the table without allocating. Live states are counted
// under the shard locks (O(live entries), no rows materialized). A nil
// table reads all zeros.
func (t *Table) Counts() Counts {
	var c Counts
	if t == nil {
		return c
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, conn := range sh.conns {
			conn.mu.Lock()
			st := conn.state
			conn.mu.Unlock()
			c.Live++
			switch st {
			case StateAccepted:
				c.Accepted++
			case StateHandshaking:
				c.Handshaking++
			case StateSuspended:
				c.Suspended++
			case StateEstablished:
				c.Established++
			case StateDraining:
				c.Draining++
			}
		}
		sh.mu.Unlock()
	}
	c.Opened = t.opened.Load()
	c.Closed = t.closed.Load()
	c.Failed = t.failed.Load()
	for i := range t.failByClass {
		c.FailByClass[i] = t.failByClass[i].Load()
	}
	return c
}

// HandshakeStart marks the connection handshaking.
func (c *Conn) HandshakeStart() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.state = StateHandshaking
	c.mu.Unlock()
	c.tab.slo.HandshakeBegin()
}

// Suspend marks a handshaking connection suspended: its non-blocking
// core returned WouldBlock and the connection is parked on an event
// loop until the transport is ready again. No-op outside the
// handshake so terminal states are never clobbered.
func (c *Conn) Suspend() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.state == StateHandshaking {
		c.state = StateSuspended
	}
	c.mu.Unlock()
}

// Resume moves a suspended connection back to handshaking when its
// event loop re-enters the core. Unlike HandshakeStart it does not
// touch the SLO in-flight gauge — the handshake never ended.
func (c *Conn) Resume() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.state == StateSuspended {
		c.state = StateHandshaking
	}
	c.mu.Unlock()
}

// Established records a successful handshake.
func (c *Conn) Established(suiteName string, version uint16, resumed bool, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.state = StateEstablished
	c.step = probe.StepNone
	c.suite = suiteName
	c.version = version
	c.resumed = resumed
	c.hsDur = d
	c.mu.Unlock()
	c.tab.slo.HandshakeEnd(d, false)
}

// Failed records a failed handshake with its canonical class and tag
// (ssl.Classify / ssl.FailureReason) plus the free-form error text.
func (c *Conn) Failed(class probe.FailClass, tag, detail string, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.state = StateFailed
	c.step = probe.StepNone
	c.hsDur = d
	c.failClass = class
	c.failTag = tag
	c.failDetail = detail
	c.mu.Unlock()
	c.tab.slo.HandshakeEnd(d, true)
}

// Draining marks the connection draining (close initiated, flush in
// progress). Terminal failure state is preserved.
func (c *Conn) Draining() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.state != StateFailed {
		c.state = StateDraining
	}
	c.mu.Unlock()
}

// Close finalizes the entry: emits the close-log record, removes the
// entry from the table, and recycles it. The entry must not be used
// afterwards.
func (c *Conn) Close() {
	if c == nil {
		return
	}
	t := c.tab
	c.mu.Lock()
	if c.state != StateFailed {
		c.state = StateClosed
	}
	rec := c.closeRecordLocked()
	failed := c.state == StateFailed
	class := c.failClass
	c.mu.Unlock()

	t.closeLog.observe(rec)
	t.closed.Add(1)
	if failed {
		t.failed.Add(1)
		t.failMu.Lock()
		t.failClasses[rec.FailTag]++
		t.failMu.Unlock()
		if int(class) < numFailClasses {
			t.failByClass[class].Add(1)
		}
	}

	sh := &t.shards[c.ID%shardCount]
	sh.mu.Lock()
	live := sh.conns[c.ID] == c
	if live {
		delete(sh.conns, c.ID)
	}
	sh.mu.Unlock()
	if live {
		// Only entries still owned by the table are recycled; a Reset
		// may have dropped this one while its connection lived on.
		t.pool.Put(c)
	}
}

// Emit implements probe.Sink: the table entry rides its connection's
// bus, folding step boundaries, record I/O, and activity out of the
// same event stream every other sink sees. Called on the connection's
// goroutine only.
func (c *Conn) Emit(e probe.Event) {
	switch e.Kind {
	case probe.KindStepEnter:
		c.mu.Lock()
		c.step = e.Step
		if !c.sawStep {
			c.sawStep = true
			c.queueDelay = e.At.Sub(c.Opened)
			c.tab.slo.ObserveQueueDelay(c.queueDelay)
		}
		c.mu.Unlock()
		c.lastActivity.Store(e.At.UnixNano())
	case probe.KindStepExit:
		c.mu.Lock()
		c.step = probe.StepNone
		if c.timelineN < maxTimeline {
			c.timeline[c.timelineN] = StepTiming{Step: e.Step, Dur: e.Dur}
			c.timelineN++
		}
		c.mu.Unlock()
		c.lastActivity.Store(e.At.UnixNano())
	case probe.KindRecordIO:
		if e.Written {
			c.recordsOut.Add(1)
			c.bytesOut.Add(uint64(e.Bytes))
		} else {
			c.recordsIn.Add(1)
			c.bytesIn.Add(uint64(e.Bytes))
		}
		c.lastActivity.Store(time.Now().UnixNano())
	}
}

// versionName names a wire version for rendering (matching the
// telemetry registry's keys).
func versionName(v uint16) string {
	switch v {
	case 0x0300:
		return "SSLv3"
	case 0x0301:
		return "TLSv1.0"
	case 0:
		return ""
	}
	return fmt.Sprintf("%#04x", v)
}

// ConnInfo is one entry's snapshot row.
type ConnInfo struct {
	ID      uint64 `json:"id"`
	Remote  string `json:"remote,omitempty"`
	State   string `json:"state"`
	Step    string `json:"step,omitempty"` // open Table-2 step while handshaking
	Suite   string `json:"suite,omitempty"`
	Version string `json:"version,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`

	AgeMs  float64 `json:"age_ms"`
	IdleMs float64 `json:"idle_ms"`

	HandshakeUs  float64 `json:"handshake_us,omitempty"`
	QueueDelayUs float64 `json:"queue_delay_us,omitempty"`

	BytesIn    uint64 `json:"bytes_in"`
	BytesOut   uint64 `json:"bytes_out"`
	RecordsIn  uint64 `json:"records_in"`
	RecordsOut uint64 `json:"records_out"`

	FailClass string `json:"fail_class,omitempty"`
	FailTag   string `json:"fail_tag,omitempty"`
}

// info snapshots the entry. Callers must not hold c.mu.
func (c *Conn) info(now time.Time) ConnInfo {
	c.mu.Lock()
	ci := ConnInfo{
		ID:      c.ID,
		Remote:  c.Remote,
		State:   c.state.Name(),
		Suite:   c.suite,
		Version: versionName(c.version),
		Resumed: c.resumed,
		AgeMs:   float64(now.Sub(c.Opened)) / float64(time.Millisecond),
	}
	if (c.state == StateHandshaking || c.state == StateSuspended) && c.step != probe.StepNone {
		ci.Step = c.step.Name()
	}
	if c.hsDur > 0 {
		ci.HandshakeUs = float64(c.hsDur) / float64(time.Microsecond)
	}
	if c.sawStep {
		ci.QueueDelayUs = float64(c.queueDelay) / float64(time.Microsecond)
	}
	if c.state == StateFailed {
		ci.FailClass = c.failClass.Name()
		ci.FailTag = c.failTag
	}
	c.mu.Unlock()
	ci.IdleMs = float64(now.UnixNano()-c.lastActivity.Load()) / float64(time.Millisecond)
	if ci.IdleMs < 0 {
		ci.IdleMs = 0
	}
	ci.BytesIn = c.bytesIn.Load()
	ci.BytesOut = c.bytesOut.Load()
	ci.RecordsIn = c.recordsIn.Load()
	ci.RecordsOut = c.recordsOut.Load()
	return ci
}

// SnapshotOptions filter a table snapshot.
type SnapshotOptions struct {
	// State restricts rows to one state name ("" = all).
	State string
	// Limit caps the rows returned (0 = no cap). Counts and the
	// by-state histogram still cover the whole table.
	Limit int
}

// A Snapshot is the /debug/conns body.
type Snapshot struct {
	At   time.Time `json:"at"`
	Live int       `json:"live"`

	Opened uint64 `json:"total_opened"`
	Closed uint64 `json:"total_closed"`
	Failed uint64 `json:"total_failed"`

	ByState     map[string]int    `json:"by_state,omitempty"`
	FailClasses map[string]uint64 `json:"fail_classes,omitempty"`

	CloseLog CloseLogCounts `json:"close_log"`

	Truncated int        `json:"truncated,omitempty"` // rows dropped by Limit
	Conns     []ConnInfo `json:"conns"`
}

// Snapshot copies the live table. Rows are ordered by connection ID.
func (t *Table) Snapshot(opts SnapshotOptions) Snapshot {
	now := time.Now()
	snap := Snapshot{At: now, ByState: make(map[string]int)}
	if t == nil {
		return snap
	}
	snap.Opened = t.opened.Load()
	snap.Closed = t.closed.Load()
	snap.Failed = t.failed.Load()
	snap.CloseLog = t.closeLog.Counts()
	var rows []ConnInfo
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, c := range sh.conns {
			ci := c.info(now)
			snap.Live++
			snap.ByState[ci.State]++
			if opts.State != "" && ci.State != opts.State {
				continue
			}
			rows = append(rows, ci)
		}
		sh.mu.Unlock()
	}
	t.failMu.Lock()
	if len(t.failClasses) > 0 {
		snap.FailClasses = make(map[string]uint64, len(t.failClasses))
		for k, v := range t.failClasses {
			snap.FailClasses[k] = v
		}
	}
	t.failMu.Unlock()
	sortConns(rows)
	if opts.Limit > 0 && len(rows) > opts.Limit {
		snap.Truncated = len(rows) - opts.Limit
		rows = rows[:opts.Limit]
	}
	snap.Conns = rows
	return snap
}

func sortConns(rows []ConnInfo) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
}
