package lifecycle

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"sslperf/internal/probe"
	"sslperf/internal/slo"
)

// drive walks one entry through a full successful life via the same
// calls ssl.Conn makes.
func drive(c *Conn) {
	c.HandshakeStart()
	now := time.Now()
	c.Emit(probe.Event{Kind: probe.KindStepEnter, Step: probe.StepGetClientHello, At: now})
	c.Emit(probe.Event{Kind: probe.KindStepExit, Step: probe.StepGetClientHello, At: now, Dur: 100 * time.Microsecond})
	c.Emit(probe.Event{Kind: probe.KindStepEnter, Step: probe.StepGetClientKX, At: now})
	c.Emit(probe.Event{Kind: probe.KindStepExit, Step: probe.StepGetClientKX, At: now, Dur: 900 * time.Microsecond})
	c.Emit(probe.Event{Kind: probe.KindRecordIO, Bytes: 120, Written: false})
	c.Emit(probe.Event{Kind: probe.KindRecordIO, Bytes: 800, Written: true})
	c.Established("RC4-MD5", 0x0300, false, 2*time.Millisecond)
}

func TestLifecycleStates(t *testing.T) {
	tr := slo.New(slo.Config{TargetP99: time.Second})
	tab := NewTable(Options{SLO: tr})
	c := tab.Register("10.0.0.1:5555")
	if c == nil {
		t.Fatal("Register returned nil")
	}

	wantState := func(want State) {
		t.Helper()
		snap := tab.Snapshot(SnapshotOptions{})
		if len(snap.Conns) != 1 {
			t.Fatalf("snapshot has %d conns, want 1", len(snap.Conns))
		}
		if got := snap.Conns[0].State; got != want.Name() {
			t.Fatalf("state %q, want %q", got, want.Name())
		}
	}

	wantState(StateAccepted)
	c.HandshakeStart()
	wantState(StateHandshaking)
	if got := tr.InFlight(); got != 1 {
		t.Fatalf("inflight %d during handshake, want 1", got)
	}

	now := time.Now()
	c.Emit(probe.Event{Kind: probe.KindStepEnter, Step: probe.StepGetClientKX, At: now})
	snap := tab.Snapshot(SnapshotOptions{})
	if got := snap.Conns[0].Step; got != probe.StepGetClientKX.Name() {
		t.Fatalf("open step %q, want %q", got, probe.StepGetClientKX.Name())
	}
	c.Emit(probe.Event{Kind: probe.KindStepExit, Step: probe.StepGetClientKX, At: now, Dur: time.Millisecond})

	c.Established("RC4-MD5", 0x0300, true, 3*time.Millisecond)
	wantState(StateEstablished)
	if got := tr.InFlight(); got != 0 {
		t.Fatalf("inflight %d after handshake, want 0", got)
	}
	snap = tab.Snapshot(SnapshotOptions{})
	ci := snap.Conns[0]
	if ci.Suite != "RC4-MD5" || !ci.Resumed || ci.Version != "SSLv3" {
		t.Fatalf("snapshot row %+v lost negotiation state", ci)
	}
	if ci.Step != "" {
		t.Fatalf("established row still shows step %q", ci.Step)
	}

	c.Draining()
	wantState(StateDraining)
	c.Close()
	snap = tab.Snapshot(SnapshotOptions{})
	if snap.Live != 0 || len(snap.Conns) != 0 {
		t.Fatalf("table not empty after close: live=%d rows=%d", snap.Live, len(snap.Conns))
	}
	if snap.Opened != 1 || snap.Closed != 1 || snap.Failed != 0 {
		t.Fatalf("counters opened=%d closed=%d failed=%d, want 1/1/0",
			snap.Opened, snap.Closed, snap.Failed)
	}
	// The handshake outcome and the first-step queue delay reached SLO.
	w := tr.Snapshot().Window("10s")
	if w.Handshakes != 1 || w.Failed != 0 {
		t.Fatalf("slo saw %d handshakes (%d failed), want 1/0", w.Handshakes, w.Failed)
	}
	if w.QueueDelays != 1 {
		t.Fatalf("slo saw %d queue delays, want 1", w.QueueDelays)
	}
}

func TestFailedConnTagged(t *testing.T) {
	tab := NewTable(Options{})
	c := tab.Register("")
	c.HandshakeStart()
	c.Failed(probe.FailBadMAC, "bad_mac", "record: bad MAC", time.Millisecond)

	snap := tab.Snapshot(SnapshotOptions{})
	ci := snap.Conns[0]
	if ci.State != "failed" || ci.FailClass != "bad_mac" || ci.FailTag != "bad_mac" {
		t.Fatalf("failed row %+v missing taxonomy", ci)
	}

	// Draining then Close must preserve the failure.
	c.Draining()
	if got := tab.Snapshot(SnapshotOptions{}).Conns[0].State; got != "failed" {
		t.Fatalf("draining clobbered failed state: %q", got)
	}
	c.Close()
	snap = tab.Snapshot(SnapshotOptions{})
	if snap.Failed != 1 {
		t.Fatalf("failed counter %d, want 1", snap.Failed)
	}
	if got := snap.FailClasses["bad_mac"]; got != 1 {
		t.Fatalf("fail class histogram %v, want bad_mac=1", snap.FailClasses)
	}
}

func TestSnapshotStateFilter(t *testing.T) {
	tab := NewTable(Options{})
	a := tab.Register("a")
	b := tab.Register("b")
	b.HandshakeStart()

	snap := tab.Snapshot(SnapshotOptions{State: "handshaking"})
	if len(snap.Conns) != 1 || snap.Conns[0].ID != b.ID {
		t.Fatalf("filter returned %+v, want just conn %d", snap.Conns, b.ID)
	}
	// Counts still cover the whole table.
	if snap.Live != 2 || snap.ByState["accepted"] != 1 || snap.ByState["handshaking"] != 1 {
		t.Fatalf("filtered snapshot miscounted: live=%d by_state=%v", snap.Live, snap.ByState)
	}

	snap = tab.Snapshot(SnapshotOptions{Limit: 1})
	if len(snap.Conns) != 1 || snap.Truncated != 1 {
		t.Fatalf("limit returned %d rows (truncated %d), want 1/1", len(snap.Conns), snap.Truncated)
	}
	// Rows are ID-ordered, so the survivor is the older conn.
	if snap.Conns[0].ID != a.ID {
		t.Fatalf("limited snapshot kept conn %d, want %d", snap.Conns[0].ID, a.ID)
	}

	if _, ok := StateByName("handshaking"); !ok {
		t.Fatal("StateByName rejected a valid state")
	}
	if _, ok := StateByName("nonsense"); ok {
		t.Fatal("StateByName accepted nonsense")
	}
}

// TestCloseLogLine drives one success and one failure through a
// close-log and checks the emitted JSON lines field by field.
func TestCloseLogLine(t *testing.T) {
	var buf bytes.Buffer
	cl := NewCloseLog(&buf, 1)
	tab := NewTable(Options{CloseLog: cl})

	c := tab.Register("10.9.8.7:1234")
	drive(c)
	c.Close()

	f := tab.Register("")
	f.HandshakeStart()
	f.Failed(probe.FailPeerAlert, "peer_alert:handshake_failure", "alert: fatal handshake_failure", time.Millisecond)
	f.Close()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("close-log emitted %d lines, want 2:\n%s", len(lines), buf.String())
	}

	var ok map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ok); err != nil {
		t.Fatalf("success line is not JSON: %v", err)
	}
	if ok["msg"] != "conn_close" || ok["state"] != "closed" || ok["suite"] != "RC4-MD5" {
		t.Fatalf("success line %v", ok)
	}
	if ok["remote"] != "10.9.8.7:1234" || ok["version"] != "SSLv3" {
		t.Fatalf("success line %v", ok)
	}
	if ok["bytes_in"].(float64) != 120 || ok["bytes_out"].(float64) != 800 {
		t.Fatalf("success line byte counts %v", ok)
	}
	steps, _ := ok["steps"].([]any)
	if len(steps) != 2 {
		t.Fatalf("success line has %d steps, want 2: %v", len(steps), ok["steps"])
	}
	first := steps[0].(map[string]any)
	if first["step"] != probe.StepGetClientHello.Name() || first["us"].(float64) != 100 {
		t.Fatalf("first step %v", first)
	}
	if _, has := ok["fail_class"]; has {
		t.Fatalf("success line carries fail_class: %v", ok)
	}

	var fail map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &fail); err != nil {
		t.Fatalf("failure line is not JSON: %v", err)
	}
	if fail["level"] != "WARN" || fail["state"] != "failed" {
		t.Fatalf("failure line %v", fail)
	}
	if fail["fail_class"] != "peer_alert" || fail["fail_tag"] != "peer_alert:handshake_failure" {
		t.Fatalf("failure line taxonomy %v", fail)
	}
	if fail["fail_detail"] != "alert: fatal handshake_failure" {
		t.Fatalf("failure line detail %v", fail)
	}
}

// TestCloseLogSampling checks 1-in-N success sampling with always-on
// failures, and that the ledger accounts for every close regardless.
func TestCloseLogSampling(t *testing.T) {
	var buf bytes.Buffer
	cl := NewCloseLog(&buf, 3)
	tab := NewTable(Options{CloseLog: cl})

	for i := 0; i < 9; i++ {
		c := tab.Register("")
		drive(c)
		c.Close()
	}
	for i := 0; i < 2; i++ {
		c := tab.Register("")
		c.HandshakeStart()
		c.Failed(probe.FailIOEOF, "io_eof", "EOF", time.Millisecond)
		c.Close()
	}

	counts := cl.Counts()
	if counts.Successes != 9 || counts.Failures != 2 {
		t.Fatalf("ledger %+v, want 9 successes / 2 failures", counts)
	}
	if counts.Logged != 3+2 || counts.Suppressed != 6 {
		t.Fatalf("ledger %+v, want 5 logged / 6 suppressed", counts)
	}
	if counts.Successes+counts.Failures != tab.Snapshot(SnapshotOptions{}).Closed {
		t.Fatalf("ledger does not reconcile with table closes: %+v", counts)
	}

	// Emitted lines match the ledger exactly.
	var logged int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		logged++
	}
	if uint64(logged) != counts.Logged {
		t.Fatalf("%d lines on the wire, ledger says %d", logged, counts.Logged)
	}
}

func TestTableReset(t *testing.T) {
	var buf bytes.Buffer
	cl := NewCloseLog(&buf, 1)
	tab := NewTable(Options{CloseLog: cl})
	c := tab.Register("survivor")
	done := tab.Register("")
	drive(done)
	done.Close()

	tab.Reset()
	snap := tab.Snapshot(SnapshotOptions{})
	if snap.Live != 0 || snap.Opened != 0 || snap.Closed != 0 {
		t.Fatalf("reset left live=%d opened=%d closed=%d", snap.Live, snap.Opened, snap.Closed)
	}
	if got := cl.Counts(); got != (CloseLogCounts{}) {
		t.Fatalf("reset left close-log ledger %+v", got)
	}
	// The connection registered before the reset still closes safely.
	drive(c)
	c.Close()

	// IDs stay unique across the cut.
	next := tab.Register("")
	if next.ID <= c.ID {
		t.Fatalf("ID sequence restarted: %d after %d", next.ID, c.ID)
	}
}

func TestNilTableAndConn(t *testing.T) {
	var tab *Table
	c := tab.Register("x")
	if c != nil {
		t.Fatal("nil table returned an entry")
	}
	c.HandshakeStart()
	c.Established("", 0, false, 0)
	c.Failed(probe.FailInternal, "internal", "", 0)
	c.Draining()
	c.Close()
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatal("nil table has length")
	}
	if snap := tab.Snapshot(SnapshotOptions{}); snap.Live != 0 {
		t.Fatal("nil table has live conns")
	}
}
