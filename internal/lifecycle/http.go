package lifecycle

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"sslperf/internal/debughttp"
)

// Text renders the snapshot as an aligned table.
func (s Snapshot) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "conns: %d live (opened %d, closed %d, failed %d)\n",
		s.Live, s.Opened, s.Closed, s.Failed)
	if len(s.ByState) > 0 {
		states := make([]string, 0, len(s.ByState))
		for st := range s.ByState {
			states = append(states, st)
		}
		sort.Strings(states)
		sb.WriteString("by state:")
		for _, st := range states {
			fmt.Fprintf(&sb, " %s=%d", st, s.ByState[st])
		}
		sb.WriteByte('\n')
	}
	if len(s.FailClasses) > 0 {
		tags := make([]string, 0, len(s.FailClasses))
		for tag := range s.FailClasses {
			tags = append(tags, tag)
		}
		sort.Strings(tags)
		sb.WriteString("failures by class:")
		for _, tag := range tags {
			fmt.Fprintf(&sb, " %s=%d", tag, s.FailClasses[tag])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "close-log: %d successes, %d failures, %d logged, %d suppressed\n",
		s.CloseLog.Successes, s.CloseLog.Failures, s.CloseLog.Logged, s.CloseLog.Suppressed)
	if len(s.Conns) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-6s %-12s %-18s %-22s %-26s %8s %8s %10s %10s %10s %s\n",
		"id", "state", "step", "remote", "suite", "age-ms", "idle-ms", "hs-us", "bytes-in", "bytes-out", "fail")
	for _, c := range s.Conns {
		suite := c.Suite
		if c.Resumed {
			suite += " (resumed)"
		}
		fail := c.FailTag
		if fail == "" {
			fail = c.FailClass
		}
		fmt.Fprintf(&sb, "%-6d %-12s %-18s %-22s %-26s %8.1f %8.1f %10.0f %10d %10d %s\n",
			c.ID, c.State, c.Step, c.Remote, suite, c.AgeMs, c.IdleMs, c.HandshakeUs,
			c.BytesIn, c.BytesOut, fail)
	}
	if s.Truncated > 0 {
		fmt.Fprintf(&sb, "... %d more rows (raise ?limit=)\n", s.Truncated)
	}
	return sb.String()
}

// JSON marshals the snapshot indented.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Register mounts the connection observatory on mux:
//
//	/debug/conns  the live connection table (?state=handshaking
//	              filters, ?limit=N caps rows, ?format=text for the
//	              aligned table)
func Register(mux *http.ServeMux, t *Table) {
	mux.HandleFunc("/debug/conns", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		var opts SnapshotOptions
		if st := q.Get("state"); st != "" {
			if _, ok := StateByName(st); !ok {
				http.Error(w, "unknown state "+strconv.Quote(st), http.StatusBadRequest)
				return
			}
			opts.State = st
		}
		if ls := q.Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			opts.Limit = n
		}
		snap := t.Snapshot(opts)
		debughttp.Serve(w, req, snap.Text, snap.JSON)
	})
}
