package bn

import (
	"errors"
	"io"
)

// Rand sets z to a uniformly random integer with exactly bits bits
// (the top bit set) drawn from rnd, and returns z. If topTwo is true
// the top two bits are set, the convention RSA keygen uses so the
// product of two such primes has exactly 2·bits bits.
func (z *Int) Rand(rnd io.Reader, bitLen int, topTwo bool) (*Int, error) {
	if bitLen <= 0 {
		return nil, errors.New("bn: Rand with non-positive bit length")
	}
	nBytes := (bitLen + 7) / 8
	buf := make([]byte, nBytes)
	if _, err := io.ReadFull(rnd, buf); err != nil {
		return nil, err
	}
	// Clear excess leading bits, then force the top bit(s).
	excess := uint(nBytes*8 - bitLen)
	buf[0] &= 0xff >> excess
	topBit := byte(1) << uint(7-excess)
	buf[0] |= topBit
	if topTwo {
		if bitLen >= 2 {
			if topBit > 1 {
				buf[0] |= topBit >> 1
			} else {
				buf[1] |= 0x80
			}
		}
	}
	return z.SetBytes(buf), nil
}

// RandRange sets z to a uniformly random integer in [1, max) and
// returns z. max must be > 1.
func (z *Int) RandRange(rnd io.Reader, max *Int) (*Int, error) {
	if max.Sign() <= 0 || max.IsOne() {
		return nil, errors.New("bn: RandRange needs max > 1")
	}
	bitLen := max.BitLen()
	for {
		if _, err := z.Rand(rnd, bitLen, false); err != nil {
			return nil, err
		}
		// Rand forces the top bit; clear it half the time by
		// re-deriving from raw bytes instead. Simpler: mask via Mod.
		z.Mod(z, max)
		if !z.IsZero() {
			return z, nil
		}
	}
}
