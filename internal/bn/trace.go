package bn

import "sslperf/internal/perf"

// TraceMulAddWords emits the abstract operation stream of one
// mulAddWords call into tr, reproducing the paper's Table 9: the
// per-limb inner loop body of bn_mul_add_words compiled for a
// register-starved 32-bit x86 is
//
//	movl 0x8(%ebx), %eax   ; load x[i]
//	mull %ebp              ; widening multiply by y
//	addl %esi, %eax        ; add carry (low)
//	movl 0x8(%edi), %esi   ; load z[i]
//	adcl $0x0, %edx        ; propagate carry (high)
//	addl %esi, %eax        ; add z[i]
//	adcl $0x0, %edx        ; propagate carry (high)
//	movl %eax, 0x8(%edi)   ; store z[i]
//	movl %edx, %esi        ; carry for next limb
//
// i.e. per limb: 2 loads, 1 store, 1 register move, 1 mul, 2 adds and
// 2 adds-with-carry, plus the loop-control add/compare/branch.
func TraceMulAddWords(tr *perf.Trace, limbs int) {
	n := uint64(limbs)
	tr.Emit(perf.OpLoad, 2*n)
	tr.Emit(perf.OpStore, n)
	tr.Emit(perf.OpMove, n)
	tr.Emit(perf.OpMul, n)
	tr.Emit(perf.OpAdd, 2*n)
	tr.Emit(perf.OpAddC, 2*n)
	// Loop control: counter update, compare, branch.
	tr.Emit(perf.OpAdd, n)
	tr.Emit(perf.OpCmp, n)
	tr.Emit(perf.OpBranch, n)
}

// InnerLoopListing returns the per-limb instruction sequence of the
// mul-add kernel as (mnemonic, role) pairs — the literal content of
// the paper's Table 9.
func InnerLoopListing() [][2]string {
	return [][2]string{
		{"movl 0x8(%ebx), %eax", "load x[i]"},
		{"mull %ebp", "widening multiply by y"},
		{"addl %esi, %eax", "add carry low"},
		{"movl 0x8(%edi), %esi", "load z[i]"},
		{"adcl $0x0, %edx", "carry into high half"},
		{"addl %esi, %eax", "add z[i]"},
		{"adcl $0x0, %edx", "carry into high half"},
		{"movl %eax, 0x8(%edi)", "store z[i]"},
		{"movl %edx, %esi", "carry to next limb"},
	}
}

// TraceRSADecrypt emits the abstract operation stream of one RSA
// private-key operation with an nbits modulus, performed with the
// Chinese Remainder Theorem as OpenSSL (and this library's rsa
// package) do: two exponentiations at half the modulus size with
// half-size exponents, plus the recombination multiply.
func TraceRSADecrypt(tr *perf.Trace, nbits int) {
	half := nbits / 2
	TraceModExp(tr, half, half)
	TraceModExp(tr, half, half)
	// Recombination: one half-size multiply + reduction, negligible
	// next to the exponentiations but modeled for completeness.
	limbs := (half + WordBits - 1) / WordBits
	TraceMulAddWords(tr, limbs*limbs)
}

// TraceModExp emits the approximate abstract operation stream of a
// full Montgomery modular exponentiation with nbits modulus and
// exponent bits ebits into tr. It models the dominant cost — the
// mul-add kernel invoked by every Montgomery multiply/square — plus
// the subtract kernel for the conditional final subtraction. Used for
// the RSA row of Tables 11 and 12.
func TraceModExp(tr *perf.Trace, nbits, ebits int) {
	limbs := (nbits + WordBits - 1) / WordBits
	// One Montgomery multiplication = n limb-level mulAdd passes for
	// the product + n passes for the reduction.
	mulsPerMont := 2 * limbs
	// Windowed exponentiation: ~ebits squarings + ebits/window
	// multiplies + table build.
	nMont := ebits + ebits/expWindow + (1 << expWindow)
	totalPasses := nMont * mulsPerMont
	TraceMulAddWords(tr, totalPasses*limbs)
	// Conditional subtraction happens on roughly half the reductions:
	// per limb, 2 loads, 1 store, 1 sub (add class), 1 borrow (adc class).
	subLimbs := uint64(nMont/2) * uint64(limbs)
	tr.Emit(perf.OpLoad, 2*subLimbs)
	tr.Emit(perf.OpStore, subLimbs)
	tr.Emit(perf.OpAdd, subLimbs)
	tr.Emit(perf.OpAddC, subLimbs)
	// Call/setup overhead per Montgomery op: pushes/pops modeled as
	// load/store pairs plus branches.
	ov := uint64(nMont)
	tr.Emit(perf.OpLoad, 4*ov)
	tr.Emit(perf.OpStore, 4*ov)
	tr.Emit(perf.OpBranch, 2*ov)
	tr.Emit(perf.OpCmp, ov)
}
