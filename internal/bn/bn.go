// Package bn implements arbitrary-precision unsigned/signed integer
// arithmetic from scratch, mirroring the structure of OpenSSL's BN
// library that the paper profiles: 32-bit limbs, schoolbook
// multiplication driven by a mul-add word kernel, Knuth division,
// Montgomery reduction, and windowed modular exponentiation.
//
// The limb size is deliberately 32 bits. The paper's Table 8/9 anatomy
// (bn_mul_add_words dominating RSA with a mul + add + add-with-carry
// inner loop) is a property of 32-bit limb code on the measured
// Pentium 4; reproducing it requires the same word size.
//
// The package supports an Oprofile-style exclusive-time profile of its
// internal functions (see Profile) used to regenerate the paper's
// Table 8, and an abstract operation trace of the inner mul-add loop
// for Table 9.
package bn

import (
	"errors"
	"fmt"
	"math/bits"
)

// Word is one limb. See the package comment for why it is 32 bits.
type Word = uint32

// WordBits is the number of bits per limb.
const WordBits = 32

// An Int is a signed arbitrary-precision integer. The zero value is
// ready to use and represents 0. Limbs are little-endian with no
// leading zero limbs.
type Int struct {
	d   []Word
	neg bool
}

// New returns a new Int set to 0.
func New() *Int { return &Int{} }

// NewInt returns a new Int set to v.
func NewInt(v uint64) *Int { return New().SetUint64(v) }

// norm strips leading zero limbs and canonicalizes -0 to 0.
func (z *Int) norm() *Int {
	for len(z.d) > 0 && z.d[len(z.d)-1] == 0 {
		z.d = z.d[:len(z.d)-1]
	}
	if len(z.d) == 0 {
		z.neg = false
	}
	return z
}

// Sign returns -1, 0, or +1.
func (z *Int) Sign() int {
	if len(z.d) == 0 {
		return 0
	}
	if z.neg {
		return -1
	}
	return 1
}

// IsZero reports whether z == 0.
func (z *Int) IsZero() bool { return len(z.d) == 0 }

// IsOne reports whether z == 1.
func (z *Int) IsOne() bool { return !z.neg && len(z.d) == 1 && z.d[0] == 1 }

// IsOdd reports whether z is odd.
func (z *Int) IsOdd() bool { return len(z.d) > 0 && z.d[0]&1 == 1 }

// Neg sets z = -x and returns z.
func (z *Int) Neg(x *Int) *Int {
	z.Set(x)
	if len(z.d) > 0 {
		z.neg = !z.neg
	}
	return z
}

// Set sets z = x and returns z. (The BN_copy of Table 8.)
func (z *Int) Set(x *Int) *Int {
	if z == x {
		return z
	}
	profEnter(fnCopy)
	if cap(z.d) < len(x.d) {
		z.d = make([]Word, len(x.d))
	} else {
		z.d = z.d[:len(x.d)]
	}
	copy(z.d, x.d)
	z.neg = x.neg
	profExit()
	return z
}

// Clone returns a fresh copy of z.
func (z *Int) Clone() *Int { return New().Set(z) }

// SetUint64 sets z = v and returns z.
func (z *Int) SetUint64(v uint64) *Int {
	z.d = z.d[:0]
	z.neg = false
	if v == 0 {
		return z
	}
	if lo := Word(v); true {
		z.d = append(z.d, lo)
	}
	if hi := Word(v >> 32); hi != 0 {
		z.d = append(z.d, hi)
	}
	return z
}

// Uint64 returns the low 64 bits of |z| and whether z fits in a uint64
// (i.e. is non-negative and < 2^64).
func (z *Int) Uint64() (uint64, bool) {
	var v uint64
	switch len(z.d) {
	case 0:
	case 1:
		v = uint64(z.d[0])
	case 2:
		v = uint64(z.d[0]) | uint64(z.d[1])<<32
	default:
		return 0, false
	}
	return v, !z.neg
}

// BitLen returns the length of |z| in bits; BitLen(0) == 0.
func (z *Int) BitLen() int {
	if len(z.d) == 0 {
		return 0
	}
	return (len(z.d)-1)*WordBits + bits.Len32(z.d[len(z.d)-1])
}

// Bit returns bit i of |z| (0 or 1).
func (z *Int) Bit(i int) uint {
	w, b := i/WordBits, uint(i%WordBits)
	if w >= len(z.d) {
		return 0
	}
	return uint(z.d[w]>>b) & 1
}

// Words returns the number of limbs in |z|.
func (z *Int) Words() int { return len(z.d) }

// SetBytes interprets buf as a big-endian unsigned integer, sets z to
// it, and returns z.
func (z *Int) SetBytes(buf []byte) *Int {
	n := (len(buf) + 3) / 4
	if cap(z.d) < n {
		z.d = make([]Word, n)
	} else {
		z.d = z.d[:n]
		for i := range z.d {
			z.d[i] = 0
		}
	}
	z.neg = false
	for i, b := range buf {
		// byte i (big-endian) lands at bit offset 8*(len-1-i)
		pos := len(buf) - 1 - i
		z.d[pos/4] |= Word(b) << (8 * uint(pos%4))
	}
	return z.norm()
}

// Bytes returns |z| as a minimal big-endian byte slice; Bytes(0) is
// empty.
func (z *Int) Bytes() []byte {
	if len(z.d) == 0 {
		return nil
	}
	n := (z.BitLen() + 7) / 8
	return z.FillBytes(make([]byte, n))
}

// FillBytes writes |z| big-endian into buf, zero-padding on the left,
// and returns buf. It panics if z does not fit.
func (z *Int) FillBytes(buf []byte) []byte {
	if z.BitLen() > len(buf)*8 {
		panic("bn: FillBytes: integer does not fit")
	}
	for i := range buf {
		buf[i] = 0
	}
	for i := range buf {
		pos := len(buf) - 1 - i
		w := pos / 4
		if w < len(z.d) {
			buf[i] = byte(z.d[w] >> (8 * uint(pos%4)))
		}
	}
	return buf
}

// SetHex sets z from a hexadecimal string (optional leading '-') and
// returns z, or an error for invalid input.
func (z *Int) SetHex(s string) (*Int, error) {
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg = true
		s = s[1:]
	}
	if len(s) == 0 {
		return nil, errors.New("bn: empty hex string")
	}
	buf := make([]byte, (len(s)+1)/2)
	// Parse from the right, two nibbles per byte.
	bi := len(buf) - 1
	for i := len(s); i > 0; i -= 2 {
		lo, ok := hexVal(s[i-1])
		if !ok {
			return nil, fmt.Errorf("bn: invalid hex digit %q", s[i-1])
		}
		var hi byte
		if i-2 >= 0 {
			h, ok := hexVal(s[i-2])
			if !ok {
				return nil, fmt.Errorf("bn: invalid hex digit %q", s[i-2])
			}
			hi = h
		}
		buf[bi] = hi<<4 | lo
		bi--
	}
	z.SetBytes(buf)
	if neg && !z.IsZero() {
		z.neg = true
	}
	return z, nil
}

// MustHex is SetHex on a fresh Int, panicking on error. For constants.
func MustHex(s string) *Int {
	z, err := New().SetHex(s)
	if err != nil {
		panic(err)
	}
	return z
}

func hexVal(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Hex returns z in lowercase hexadecimal with a leading '-' when
// negative. Hex(0) == "0".
func (z *Int) Hex() string {
	if len(z.d) == 0 {
		return "0"
	}
	const digits = "0123456789abcdef"
	out := make([]byte, 0, len(z.d)*8+1)
	if z.neg {
		out = append(out, '-')
	}
	top := z.d[len(z.d)-1]
	started := false
	for shift := 28; shift >= 0; shift -= 4 {
		nib := (top >> uint(shift)) & 0xf
		if !started && nib == 0 {
			continue
		}
		started = true
		out = append(out, digits[nib])
	}
	for i := len(z.d) - 2; i >= 0; i-- {
		w := z.d[i]
		for shift := 28; shift >= 0; shift -= 4 {
			out = append(out, digits[(w>>uint(shift))&0xf])
		}
	}
	return string(out)
}

// String returns the hexadecimal representation (same as Hex).
func (z *Int) String() string { return z.Hex() }

// Cmp compares z and x and returns -1, 0, or +1.
func (z *Int) Cmp(x *Int) int {
	switch {
	case z.neg && !x.neg:
		return -1
	case !z.neg && x.neg:
		return 1
	}
	c := z.CmpAbs(x)
	if z.neg {
		return -c
	}
	return c
}

// CmpAbs compares |z| and |x| and returns -1, 0, or +1.
func (z *Int) CmpAbs(x *Int) int {
	if len(z.d) != len(x.d) {
		if len(z.d) < len(x.d) {
			return -1
		}
		return 1
	}
	for i := len(z.d) - 1; i >= 0; i-- {
		if z.d[i] != x.d[i] {
			if z.d[i] < x.d[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Equal reports whether z == x.
func (z *Int) Equal(x *Int) bool { return z.Cmp(x) == 0 }

// Cleanse zeroes z's storage and sets z to 0. It is the analogue of
// OPENSSL_cleanse, used to scrub key material (paper handshake step 9).
func (z *Int) Cleanse() {
	profEnter(fnCleanse)
	d := z.d[:cap(z.d)]
	for i := range d {
		d[i] = 0
	}
	z.d = z.d[:0]
	z.neg = false
	profExit()
}
