package bn

import (
	"errors"
	"io"
)

// smallPrimes is used for trial division before Miller–Rabin.
var smallPrimes = sieve(2000)

func sieve(limit int) []Word {
	composite := make([]bool, limit)
	var primes []Word
	for i := 2; i < limit; i++ {
		if composite[i] {
			continue
		}
		primes = append(primes, Word(i))
		for j := i * i; j < limit; j += i {
			composite[j] = true
		}
	}
	return primes
}

// modWord returns |z| mod d for a single-limb d.
func (z *Int) modWord(d Word) Word {
	var rem uint64
	for i := len(z.d) - 1; i >= 0; i-- {
		rem = (rem<<32 | uint64(z.d[i])) % uint64(d)
	}
	return Word(rem)
}

// ProbablyPrime reports whether z is prime with error probability at
// most 4^-rounds, using trial division followed by Miller–Rabin with
// random bases from rnd.
func (z *Int) ProbablyPrime(rnd io.Reader, rounds int) (bool, error) {
	if z.Sign() <= 0 {
		return false, nil
	}
	if v, ok := z.Uint64(); ok && v < 4 {
		return v == 2 || v == 3, nil
	}
	if !z.IsOdd() {
		return false, nil
	}
	for _, p := range smallPrimes {
		if z.modWord(p) == 0 {
			// Divisible by a small prime; prime only if equal to it.
			v, ok := z.Uint64()
			return ok && v == uint64(p), nil
		}
	}
	// Write z-1 = d * 2^s with d odd.
	nm1 := New().SubWord(z, 1)
	s := 0
	d := nm1.Clone()
	for !d.IsOdd() {
		d.Rsh(d, 1)
		s++
	}
	m, err := NewMont(z)
	if err != nil {
		return false, err
	}
	var a, x Int
	for i := 0; i < rounds; i++ {
		// Random base in [2, z-2].
		if _, err := a.RandRange(rnd, nm1); err != nil {
			return false, err
		}
		if a.IsOne() {
			continue
		}
		m.Exp(&x, &a, d)
		if x.IsOne() || x.Equal(nm1) {
			continue
		}
		witness := true
		for r := 1; r < s; r++ {
			var sq Int
			sq.Sqr(&x)
			x.Mod(&sq, z)
			if x.Equal(nm1) {
				witness = false
				break
			}
			if x.IsOne() {
				return false, nil
			}
		}
		if witness {
			return false, nil
		}
	}
	return true, nil
}

// GeneratePrime returns a random prime with exactly bits bits and the
// top two bits set, suitable for RSA key generation.
func GeneratePrime(rnd io.Reader, bitLen int) (*Int, error) {
	if bitLen < 16 {
		return nil, errors.New("bn: prime bit length too small")
	}
	p := New()
	for attempts := 0; attempts < 100*bitLen; attempts++ {
		if _, err := p.Rand(rnd, bitLen, true); err != nil {
			return nil, err
		}
		p.d[0] |= 1 // force odd
		ok, err := p.ProbablyPrime(rnd, 20)
		if err != nil {
			return nil, err
		}
		if ok {
			return p, nil
		}
	}
	return nil, errors.New("bn: prime generation did not converge")
}
