package bn

import "errors"

// Mont holds the precomputed constants for Montgomery arithmetic
// modulo an odd modulus N: R = 2^(32·n) where n is the limb count of
// N, n0 = -N⁻¹ mod 2^32, and RR = R² mod N for conversion into the
// Montgomery domain. It is the analogue of OpenSSL's BN_MONT_CTX.
type Mont struct {
	N  *Int // modulus (odd, > 1)
	n  int  // limbs in N
	n0 Word // -N^-1 mod 2^32
	RR *Int // R^2 mod N
}

// NewMont prepares a Montgomery context for the odd modulus N > 1.
func NewMont(N *Int) (*Mont, error) {
	if N.Sign() <= 0 || !N.IsOdd() || N.IsOne() {
		return nil, errors.New("bn: Montgomery modulus must be odd and > 1")
	}
	m := &Mont{N: N.Clone(), n: len(N.d)}
	// n0 = -N^{-1} mod 2^32 by Newton–Hensel lifting:
	// x_{k+1} = x_k * (2 - N*x_k) doubles correct low bits.
	n0w := N.d[0]
	inv := n0w // correct mod 2^3 for odd n0w? start with n0w: x*n0w ≡ 1 mod 8 for odd numbers? use standard trick
	// Standard: inv = n0w works mod 2^3 only for some; use the
	// well-known seed inv = 3*n0w ^ 2 which is correct mod 2^5.
	inv = (3 * n0w) ^ 2
	for i := 0; i < 4; i++ { // 5 -> 10 -> 20 -> 40 (>32) correct bits
		inv *= 2 - n0w*inv
	}
	m.n0 = -inv
	// RR = 2^(2*32*n) mod N.
	rr := New().SetUint64(1)
	rr.Lsh(rr, uint(2*WordBits*m.n))
	m.RR = New().Mod(rr, m.N)
	return m, nil
}

// redc performs Montgomery reduction of t (2n+1 limbs, |t| < R·N)
// in place and writes the n-limb result into out: out = t·R⁻¹ mod N.
// This is the core of BN_from_montgomery (Table 8); its inner loop is
// mulAddWords, so in a function profile most of its time is attributed
// to bn_mul_add_words, matching the paper's exclusive-time profile.
func (m *Mont) redc(out, t []Word) {
	profEnter(fnFromMontgomery)
	n := m.n
	for i := 0; i < n; i++ {
		u := t[i] * m.n0 // mod 2^32
		carry := mulAddWords(t[i:i+n], m.N.d, u)
		// Propagate carry into the upper limbs.
		for k := i + n; carry != 0; k++ {
			s := uint64(t[k]) + uint64(carry)
			t[k] = Word(s)
			carry = Word(s >> WordBits)
		}
	}
	// Result is t[n : 2n] (+ possible top limb t[2n]); subtract N if needed.
	top := t[n : 2*n]
	if t[2*n] != 0 || cmpWords(top, m.N.d) >= 0 {
		subWords(out, top, m.N.d)
	} else {
		copy(out, top)
	}
	profExit()
}

// MulMont sets z = x·y·R⁻¹ mod N for x, y already in Montgomery form.
// x and y must be in [0, N). As in OpenSSL's
// BN_mod_mul_montgomery, the product uses the configured BN_mul path
// (Karatsuba or schoolbook) followed by the reduction.
func (m *Mont) MulMont(z, x, y *Int) *Int {
	n := m.n
	t := make([]Word, 2*n+1)
	if len(x.d) > 0 && len(y.d) > 0 {
		copy(t, mulSlices(x.d, y.d))
	}
	out := make([]Word, n)
	m.redc(out, t)
	z.d = out
	z.neg = false
	return z.norm()
}

// SqrMont sets z = x²·R⁻¹ mod N for x in Montgomery form. It runs
// through the multiply path so all squaring work flows through the
// mul-add word kernel, matching where OpenSSL's flat profile charges
// exponentiation time (Table 8).
func (m *Mont) SqrMont(z, x *Int) *Int {
	return m.MulMont(z, x, x)
}

// ToMont converts x (in [0, N)) into Montgomery form: z = x·R mod N.
func (m *Mont) ToMont(z, x *Int) *Int {
	return m.MulMont(z, x, m.RR)
}

// FromMont converts x out of Montgomery form: z = x·R⁻¹ mod N.
func (m *Mont) FromMont(z, x *Int) *Int {
	n := m.n
	t := make([]Word, 2*n+1)
	copy(t, x.d)
	out := make([]Word, n)
	m.redc(out, t)
	z.d = out
	z.neg = false
	return z.norm()
}

// One returns 1 in Montgomery form (R mod N).
func (m *Mont) One() *Int {
	one := NewInt(1)
	return m.ToMont(New(), one)
}
