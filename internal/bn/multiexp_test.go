package bn

import "testing"

// ref computes x1^e1·x2^e2 mod N the slow, obviously-correct way.
func refExp2(x1, e1, x2, e2, N *Int) *Int {
	a := New().ModExp(x1, e1, N)
	b := New().ModExp(x2, e2, N)
	z := New().Mul(a, b)
	return z.Mod(z, N)
}

func TestExp2MatchesTwoExps(t *testing.T) {
	rnd := newRandReader(42)
	for trial := 0; trial < 20; trial++ {
		N, err := New().Rand(rnd, 256, false)
		if err != nil {
			t.Fatal(err)
		}
		N.d[0] |= 1 // force odd for the Montgomery path
		if N.BitLen() < 2 {
			continue
		}
		x1, _ := New().RandRange(rnd, N)
		x2, _ := New().RandRange(rnd, N)
		e1, _ := New().Rand(rnd, 64, false)
		e2, _ := New().Rand(rnd, 48, false)
		got := New().ModExp2(x1, e1, x2, e2, N)
		want := refExp2(x1, e1, x2, e2, N)
		if !got.Equal(want) {
			t.Fatalf("trial %d: ModExp2 = %v, want %v", trial, got, want)
		}
	}
}

func TestExp2EdgeCases(t *testing.T) {
	N := NewInt(1000003) // odd
	x1 := NewInt(12345)
	x2 := NewInt(67890)
	cases := []struct{ e1, e2 uint64 }{
		{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0, 17}, {17, 0},
		{3, 65537}, {65537, 3}, {1, 1 << 40},
	}
	for _, c := range cases {
		got := New().ModExp2(x1, NewInt(c.e1), x2, NewInt(c.e2), N)
		want := refExp2(x1, NewInt(c.e1), x2, NewInt(c.e2), N)
		if !got.Equal(want) {
			t.Errorf("e1=%d e2=%d: got %v want %v", c.e1, c.e2, got, want)
		}
	}
	// Even modulus falls back to the two-exponentiation path.
	evenN := NewInt(1000000)
	got := New().ModExp2(x1, NewInt(7), x2, NewInt(11), evenN)
	want := refExp2(x1, NewInt(7), x2, NewInt(11), evenN)
	if !got.Equal(want) {
		t.Errorf("even N: got %v want %v", got, want)
	}
}

func TestExpUint64MatchesModExp(t *testing.T) {
	rnd := newRandReader(7)
	N, err := New().Rand(rnd, 256, false)
	if err != nil {
		t.Fatal(err)
	}
	N.d[0] |= 1
	m, err := NewMont(N)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := New().RandRange(rnd, N)
	for _, e := range []uint64{0, 1, 2, 3, 17, 23, 65537, 1155, 111546435, 1 << 40, ^uint64(0)} {
		got := m.ExpUint64(New(), x, e)
		want := New().ModExp(x, New().SetUint64(e), N)
		if !got.Equal(want) {
			t.Errorf("e=%d: ExpUint64 = %v, want %v", e, got, want)
		}
	}
}

func TestExp2Uint64MatchesTwoExps(t *testing.T) {
	rnd := newRandReader(9)
	N, err := New().Rand(rnd, 256, false)
	if err != nil {
		t.Fatal(err)
	}
	N.d[0] |= 1
	m, err := NewMont(N)
	if err != nil {
		t.Fatal(err)
	}
	x1, _ := New().RandRange(rnd, N)
	x2, _ := New().RandRange(rnd, N)
	cases := []struct{ e1, e2 uint64 }{
		{0, 0}, {0, 1}, {1, 0}, {3, 5}, {23, 19},
		{1155, 96577}, {111546434, 1}, {1 << 30, 1<<30 + 1},
	}
	for _, c := range cases {
		got := m.Exp2Uint64(New(), x1, c.e1, x2, c.e2)
		want := refExp2(x1, New().SetUint64(c.e1), x2, New().SetUint64(c.e2), N)
		if !got.Equal(want) {
			t.Errorf("e1=%d e2=%d: got %v want %v", c.e1, c.e2, got, want)
		}
	}
}

func TestProductTree(t *testing.T) {
	xs := []*Int{NewInt(2), NewInt(3), NewInt(5), NewInt(7), NewInt(11)}
	tree := ProductTree(xs)
	top := tree[len(tree)-1]
	if len(top) != 1 {
		t.Fatalf("top level has %d entries", len(top))
	}
	if want := NewInt(2 * 3 * 5 * 7 * 11); !top[0].Equal(want) {
		t.Fatalf("root = %v, want %v", top[0], want)
	}
	// Every level's total product is invariant.
	for lv, level := range tree {
		p := NewInt(1)
		for _, x := range level {
			p.Mul(p, x)
		}
		if !p.Equal(top[0]) {
			t.Errorf("level %d product = %v, want %v", lv, p, top[0])
		}
	}
	// Inputs must not be mutated or aliased.
	if !xs[0].Equal(NewInt(2)) {
		t.Error("ProductTree mutated its input")
	}
}

func TestBatchModInverse(t *testing.T) {
	N := NewInt(1000003) // prime, so everything nonzero is invertible
	xs := []*Int{NewInt(2), NewInt(999), NewInt(123456), NewInt(1), NewInt(1000002)}
	zs := make([]*Int, len(xs))
	if !BatchModInverse(zs, xs, N) {
		t.Fatal("BatchModInverse reported non-invertible input")
	}
	for i := range xs {
		want := New().ModInverse(xs[i], N)
		if !zs[i].Equal(want) {
			t.Errorf("zs[%d] = %v, want %v", i, zs[i], want)
		}
	}
	// Aliasing zs[i] = xs[i] must work.
	alias := []*Int{NewInt(7), NewInt(13)}
	if !BatchModInverse(alias, alias, N) {
		t.Fatal("aliased BatchModInverse failed")
	}
	if want := New().ModInverse(NewInt(7), N); !alias[0].Equal(want) {
		t.Errorf("aliased zs[0] = %v, want %v", alias[0], want)
	}
	// A non-invertible element fails the whole batch.
	bad := []*Int{NewInt(3), NewInt(0)}
	if BatchModInverse(make([]*Int, 2), bad, N) {
		t.Error("expected failure for zero input")
	}
	composite := NewInt(15)
	if BatchModInverse(make([]*Int, 1), []*Int{NewInt(5)}, composite) {
		t.Error("expected failure for gcd(5,15) != 1")
	}
}
