package bn

import "math/bits"

// DivMod sets q = x div y and r = x mod y with Euclidean semantics for
// non-negative operands (truncated toward zero for signed ones, like
// OpenSSL's BN_div: r has the sign of x). It returns q. y must be
// non-zero. q and r must be distinct from each other; either may be nil
// if the caller only needs the other.
func DivMod(q, r, x, y *Int) *Int {
	profEnter(fnDiv)
	defer profExit()
	if y.IsZero() {
		panic("bn: division by zero")
	}
	if q == r && q != nil {
		panic("bn: DivMod with q == r")
	}
	negQ := x.neg != y.neg
	negR := x.neg
	qd, rd := udiv(x.d, y.d)
	if q != nil {
		q.d = qd
		q.neg = negQ
		q.norm()
	}
	if r != nil {
		r.d = rd
		r.neg = negR
		r.norm()
	}
	return q
}

// Div sets z = x div y (truncated) and returns z.
func (z *Int) Div(x, y *Int) *Int { return DivMod(z, nil, x, y) }

// Mod sets z = x mod y with the result always in [0, |y|), i.e. the
// non-negative residue (the convention modular crypto code needs),
// and returns z.
func (z *Int) Mod(x, y *Int) *Int {
	DivMod(nil, z, x, y)
	if z.neg {
		// z is in (-|y|, 0); add |y|.
		var ay Int
		ay.Set(y)
		ay.neg = false
		z.Add(z, &ay)
	}
	return z
}

// udiv computes |x| / |y| returning quotient and remainder limb
// slices. Knuth Algorithm D with 32-bit limbs.
func udiv(x, y []Word) (q, r []Word) {
	n := len(y)
	m := len(x) - n
	if n == 0 {
		panic("bn: udiv by zero")
	}
	// Fast path: single-limb divisor.
	if n == 1 {
		return udivWord(x, y[0])
	}
	if m < 0 || (m == 0 && cmpWords(x, y) < 0) {
		r = make([]Word, len(x))
		copy(r, x)
		return nil, r
	}
	// Normalize: shift so the top bit of the top divisor limb is set.
	shift := uint(bits.LeadingZeros32(y[n-1]))
	vn := make([]Word, n)
	shlWords(vn, y, shift)
	un := make([]Word, len(x)+1)
	un[len(x)] = shlWordsExt(un[:len(x)], x, shift)

	q = make([]Word, m+1)
	const b = 1 << 32
	for j := m; j >= 0; j-- {
		// Estimate qhat from the top two limbs of un against the
		// top limb of vn.
		num := uint64(un[j+n])<<32 | uint64(un[j+n-1])
		qhat := num / uint64(vn[n-1])
		rhat := num % uint64(vn[n-1])
		for qhat >= b || qhat*uint64(vn[n-2]) > rhat<<32|uint64(un[j+n-2]) {
			qhat--
			rhat += uint64(vn[n-1])
			if rhat >= b {
				break
			}
		}
		// Multiply-subtract: un[j..j+n] -= qhat * vn.
		var borrow, mulCarry uint64
		for i := 0; i < n; i++ {
			p := qhat*uint64(vn[i]) + mulCarry
			mulCarry = p >> 32
			t := uint64(un[j+i]) - (p & 0xffffffff) - borrow
			un[j+i] = Word(t)
			borrow = (t >> 32) & 1
		}
		t := uint64(un[j+n]) - mulCarry - borrow
		un[j+n] = Word(t)
		if t>>32&1 != 0 {
			// qhat was one too large; add back.
			qhat--
			var carry uint64
			for i := 0; i < n; i++ {
				s := uint64(un[j+i]) + uint64(vn[i]) + carry
				un[j+i] = Word(s)
				carry = s >> 32
			}
			un[j+n] = Word(uint64(un[j+n]) + carry)
		}
		q[j] = Word(qhat)
	}
	// Denormalize remainder.
	r = make([]Word, n)
	shrWords(r, un[:n], shift)
	return q, r
}

// udivWord divides x by a single limb d.
func udivWord(x []Word, d Word) (q, r []Word) {
	q = make([]Word, len(x))
	var rem uint64
	for i := len(x) - 1; i >= 0; i-- {
		cur := rem<<32 | uint64(x[i])
		q[i] = Word(cur / uint64(d))
		rem = cur % uint64(d)
	}
	if rem != 0 {
		r = []Word{Word(rem)}
	}
	return q, r
}

func cmpWords(x, y []Word) int {
	nx, ny := len(x), len(y)
	for nx > 0 && x[nx-1] == 0 {
		nx--
	}
	for ny > 0 && y[ny-1] == 0 {
		ny--
	}
	if nx != ny {
		if nx < ny {
			return -1
		}
		return 1
	}
	for i := nx - 1; i >= 0; i-- {
		if x[i] != y[i] {
			if x[i] < y[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// shlWords shifts src left by s (< 32) bits into dst (same length);
// overflow bits are discarded.
func shlWords(dst, src []Word, s uint) {
	if s == 0 {
		copy(dst, src)
		return
	}
	var carry Word
	for i, w := range src {
		dst[i] = w<<s | carry
		carry = w >> (32 - s)
	}
}

// shlWordsExt is shlWords but returns the overflow limb.
func shlWordsExt(dst, src []Word, s uint) Word {
	if s == 0 {
		copy(dst, src)
		return 0
	}
	var carry Word
	for i, w := range src {
		dst[i] = w<<s | carry
		carry = w >> (32 - s)
	}
	return carry
}

// shrWords shifts src right by s (< 32) bits into dst (same length).
func shrWords(dst, src []Word, s uint) {
	if s == 0 {
		copy(dst, src)
		return
	}
	for i := 0; i < len(src); i++ {
		w := src[i] >> s
		if i+1 < len(src) {
			w |= src[i+1] << (32 - s)
		}
		dst[i] = w
	}
}
