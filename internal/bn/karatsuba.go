package bn

// Karatsuba multiplication, matching the algorithm OpenSSL 0.9.7 used
// (bn_mul_recursive): the subtractive variant whose difference terms
// are what put bn_sub_words at 22.6% of RSA decryption in the paper's
// Table 8. Schoolbook multiplication remains available (and is the
// base case); SetMulMode switches between them so the Table 8
// ablation can show how the choice moves time between the word
// kernels.

// MulMode selects the multiplication algorithm for large operands.
type MulMode int

// Multiplication modes.
const (
	// MulSchoolbook always uses the O(n²) mul-add loop.
	MulSchoolbook MulMode = iota
	// MulKaratsuba recurses with the subtractive Karatsuba identity
	// above the threshold, like the OpenSSL 0.9.7 build the paper
	// measured. The default; the Table 8 ablation contrasts the two
	// modes' function profiles.
	MulKaratsuba
)

// karatsubaThreshold is the limb count at or below which
// multiplication stays schoolbook. The default 16 is tuned for this
// library on 64-bit hosts; OpenSSL 0.9.7's 32-bit build effectively
// recursed down to its 8-word comba kernel, which is what the
// Table 8 ablation emulates by lowering the threshold to 8. Note
// RSA-1024 with CRT works on 16-limb halves, so at the default
// threshold its Montgomery products stay schoolbook — Karatsuba
// engages from RSA-2048, or at the lowered threshold.
var karatsubaThreshold = 16

// SetKaratsubaThreshold sets the recursion cutoff in limbs and
// returns the previous value. Not safe to call concurrently with
// arithmetic.
func SetKaratsubaThreshold(limbs int) int {
	prev := karatsubaThreshold
	if limbs >= 2 {
		karatsubaThreshold = limbs
	}
	return prev
}

var mulMode = MulKaratsuba

// SetMulMode selects the multiplication algorithm and returns the
// previous mode. Not safe to call concurrently with arithmetic.
func SetMulMode(m MulMode) MulMode {
	prev := mulMode
	mulMode = m
	return prev
}

// CurrentMulMode reports the active multiplication mode.
func CurrentMulMode() MulMode { return mulMode }

// mulSlices dispatches x*y on raw limb slices, returning a fresh
// product slice of len(x)+len(y) limbs (unnormalized).
func mulSlices(x, y []Word) []Word {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	if mulMode == MulKaratsuba &&
		len(x) > karatsubaThreshold && len(y) > karatsubaThreshold {
		// Pad to a common even length.
		n := len(x)
		if len(y) > n {
			n = len(y)
		}
		if n%2 == 1 {
			n++
		}
		xp := padTo(x, n)
		yp := padTo(y, n)
		prod := kmul(xp, yp)
		return prod[:len(x)+len(y)]
	}
	return schoolbookMul(x, y)
}

func padTo(x []Word, n int) []Word {
	if len(x) == n {
		return x
	}
	out := make([]Word, n)
	copy(out, x)
	return out
}

// schoolbookMul is the O(n²) base case driven by mulAddWords.
func schoolbookMul(x, y []Word) []Word {
	out := make([]Word, len(x)+len(y))
	for j := 0; j < len(y); j++ {
		yw := y[j]
		if yw == 0 {
			continue
		}
		out[j+len(x)] = mulAddWords(out[j:j+len(x)], x, yw)
	}
	return out
}

// kmul multiplies equal-length slices (len even or below threshold),
// returning 2n limbs. The subtractive Karatsuba identity:
//
//	x = x1·B^m + x0,  y = y1·B^m + y0,  m = n/2
//	z0 = x0·y0, z2 = x1·y1
//	middle = z0 + z2 + (x0−x1)(y1−y0)
//	x·y = z2·B^2m + middle·B^m + z0
func kmul(x, y []Word) []Word {
	n := len(x)
	if n <= karatsubaThreshold || n%2 == 1 {
		return schoolbookMul(x, y)
	}
	m := n / 2
	x0, x1 := x[:m], x[m:]
	y0, y1 := y[:m], y[m:]

	z0 := kmul(x0, y0)
	z2 := kmul(x1, y1)

	d1, neg1 := absDiff(x0, x1) // x0 - x1
	d2, neg2 := absDiff(y1, y0) // y1 - y0
	z1 := kmul(d1, d2)
	z1Negative := neg1 != neg2

	// middle (2m+1 limbs) = z0 + z2 ± z1.
	mid := make([]Word, 2*m+1)
	copy(mid, z0)
	addTo(mid, z2)
	if z1Negative {
		subFrom(mid, z1)
	} else {
		addTo(mid, z1)
	}

	// result = z2·B^2m + mid·B^m + z0.
	res := make([]Word, 2*n)
	copy(res[:2*m], z0)
	copy(res[2*m:], z2)
	addTo(res[m:], mid)
	return res
}

// addTo adds x into z in place (len(x) <= len(z)), propagating the
// carry through z. The final carry must be zero by construction of
// the callers.
func addTo(z, x []Word) {
	carry := addWords(z[:len(x)], z[:len(x)], x)
	for i := len(x); carry != 0 && i < len(z); i++ {
		s := uint64(z[i]) + uint64(carry)
		z[i] = Word(s)
		carry = Word(s >> WordBits)
	}
}

// subFrom subtracts x from z in place (len(x) <= len(z), z >= x).
func subFrom(z, x []Word) {
	borrow := subWords(z[:len(x)], z[:len(x)], x)
	for i := len(x); borrow != 0 && i < len(z); i++ {
		t := uint64(z[i]) - uint64(borrow)
		z[i] = Word(t)
		borrow = Word((t >> WordBits) & 1)
	}
}

// absDiff returns |a−b| (same length as a and b, which must be equal
// length) and whether a < b. The comparison plus subtraction is the
// bn_sub_words traffic Karatsuba is known for.
func absDiff(a, b []Word) ([]Word, bool) {
	out := make([]Word, len(a))
	if cmpWords(a, b) >= 0 {
		subWords(out, a, b)
		return out, false
	}
	subWords(out, b, a)
	return out, true
}
