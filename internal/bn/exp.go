package bn

// ModExp sets z = x^e mod N and returns z. For odd N it uses
// fixed-window Montgomery exponentiation (the BN_mod_exp_mont path the
// paper measures); for even N it falls back to square-and-multiply
// with division-based reduction. e must be non-negative.
func (z *Int) ModExp(x, e, N *Int) *Int {
	profEnter(fnModExp)
	defer profExit()
	if N.IsZero() {
		panic("bn: ModExp modulus is zero")
	}
	if e.Sign() < 0 {
		panic("bn: ModExp negative exponent")
	}
	if N.IsOne() {
		return z.SetUint64(0)
	}
	var base Int
	base.Mod(x, N)
	if e.IsZero() {
		return z.SetUint64(1)
	}
	if N.IsOdd() {
		m, err := NewMont(N)
		if err != nil {
			panic("bn: " + err.Error())
		}
		return m.Exp(z, &base, e)
	}
	// Even modulus: plain square-and-multiply.
	result := NewInt(1)
	var t Int
	for i := e.BitLen() - 1; i >= 0; i-- {
		t.Sqr(result)
		result.Mod(&t, N)
		if e.Bit(i) == 1 {
			t.Mul(result, &base)
			result.Mod(&t, N)
		}
	}
	return z.Set(result)
}

// expWindow is the window width for Montgomery exponentiation.
// OpenSSL used 5 for 1024-bit exponents; 4 keeps the precompute table
// small while staying within a few percent of optimal.
const expWindow = 4

// Exp sets z = x^e mod m.N using fixed-window Montgomery
// exponentiation, with x in ordinary (non-Montgomery) form in [0, N).
func (m *Mont) Exp(z, x, e *Int) *Int {
	if e.IsZero() {
		return z.SetUint64(1)
	}
	// Precompute table[i] = x^i in Montgomery form, i in [0, 2^w).
	table := make([]*Int, 1<<expWindow)
	table[0] = m.One()
	table[1] = m.ToMont(New(), x)
	for i := 2; i < len(table); i++ {
		table[i] = m.MulMont(New(), table[i-1], table[1])
	}
	bitLen := e.BitLen()
	// Process the exponent in w-bit windows from the top.
	top := bitLen % expWindow
	if top == 0 {
		top = expWindow
	}
	// First window.
	first := 0
	for i := bitLen - 1; i >= bitLen-top; i-- {
		first = first<<1 | int(e.Bit(i))
	}
	acc := New().Set(table[first])
	for i := bitLen - top - 1; i >= 0; i -= expWindow {
		w := 0
		for k := 0; k < expWindow; k++ {
			w = w<<1 | int(e.Bit(i-k))
		}
		for k := 0; k < expWindow; k++ {
			m.SqrMont(acc, acc)
		}
		if w != 0 {
			m.MulMont(acc, acc, table[w])
		}
	}
	return m.FromMont(z, acc)
}

// GCD sets z = gcd(|x|, |y|) and returns z.
func (z *Int) GCD(x, y *Int) *Int {
	a := x.Clone()
	b := y.Clone()
	a.neg, b.neg = false, false
	var r Int
	for !b.IsZero() {
		DivMod(nil, &r, a, b)
		a.Set(b)
		b.Set(&r)
	}
	return z.Set(a)
}

// ModInverse sets z = x⁻¹ mod N (the value v in [1, N) with
// x·v ≡ 1 mod N) and returns z, or nil if no inverse exists.
func (z *Int) ModInverse(x, N *Int) *Int {
	if N.Sign() <= 0 || N.IsOne() {
		return nil
	}
	// Extended Euclid on (a=N, b=x mod N), tracking only the
	// coefficient of x.
	a := N.Clone()
	b := New().Mod(x, N)
	if b.IsZero() {
		return nil
	}
	t0 := NewInt(0) // coefficient of x for a
	t1 := NewInt(1) // coefficient of x for b
	var q, r, tmp Int
	for !b.IsZero() {
		DivMod(&q, &r, a, b)
		a, b = b, New().Set(&r)
		// t0, t1 = t1, t0 - q*t1
		tmp.Mul(&q, t1)
		next := New().Sub(t0, &tmp)
		t0, t1 = t1, next
	}
	if !a.IsOne() {
		return nil
	}
	return z.Mod(t0, N)
}
