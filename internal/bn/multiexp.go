package bn

import "math/bits"

// Simultaneous multi-exponentiation and product-tree helpers: the
// substrate for Fiat-style batch RSA (internal/rsabatch), where the
// percolate-up and percolate-down tree phases are built from
// double exponentiations x1^e1·x2^e2 with small exponents, and the
// per-level divisions are batched through Montgomery's inversion
// trick.

// ExpUint64 sets z = x^e mod m.N for a machine-word exponent using
// plain left-to-right square-and-multiply. Unlike Exp it builds no
// window table, so for the small public exponents batch RSA works
// with (e ≤ 2^27 or so) the cost is just the squaring chain — the
// 16-entry table Exp precomputes would dwarf the exponentiation
// itself.
func (m *Mont) ExpUint64(z, x *Int, e uint64) *Int {
	if e == 0 {
		return z.SetUint64(1)
	}
	var b Int
	b.Mod(x, m.N)
	g := m.ToMont(New(), &b)
	acc := New().Set(g)
	for i := bits.Len64(e) - 2; i >= 0; i-- {
		m.SqrMont(acc, acc)
		if e>>uint(i)&1 == 1 {
			m.MulMont(acc, acc, g)
		}
	}
	return m.FromMont(z, acc)
}

// Exp2Uint64 is Exp2 for machine-word exponents: z = x1^e1 · x2^e2
// mod m.N over one shared squaring chain.
func (m *Mont) Exp2Uint64(z, x1 *Int, e1 uint64, x2 *Int, e2 uint64) *Int {
	if e1 == 0 && e2 == 0 {
		return z.SetUint64(1)
	}
	var b1, b2 Int
	b1.Mod(x1, m.N)
	b2.Mod(x2, m.N)
	g1 := m.ToMont(New(), &b1)
	g2 := m.ToMont(New(), &b2)
	g12 := m.MulMont(New(), g1, g2)
	table := [3]*Int{g1, g2, g12}
	n := bits.Len64(e1)
	if n2 := bits.Len64(e2); n2 > n {
		n = n2
	}
	var acc *Int
	for i := n - 1; i >= 0; i-- {
		if acc != nil {
			m.SqrMont(acc, acc)
		}
		w := e1>>uint(i)&1 | e2>>uint(i)&1<<1
		if w != 0 {
			if acc == nil {
				acc = New().Set(table[w-1])
			} else {
				m.MulMont(acc, acc, table[w-1])
			}
		}
	}
	return m.FromMont(z, acc)
}

// Exp2 sets z = x1^e1 · x2^e2 mod m.N using Shamir's simultaneous
// square-and-multiply trick: one shared squaring chain with a 2-bit
// window selecting x1, x2, or x1·x2, so the combined cost is one
// exponentiation of max(len(e1), len(e2)) bits plus one precomputed
// product — instead of two full chains and a multiply. x1 and x2 are
// in ordinary (non-Montgomery) form; e1 and e2 must be non-negative.
func (m *Mont) Exp2(z, x1, e1, x2, e2 *Int) *Int {
	if e1.Sign() < 0 || e2.Sign() < 0 {
		panic("bn: Exp2 negative exponent")
	}
	if e1.IsZero() && e2.IsZero() {
		return z.SetUint64(1)
	}
	var b1, b2 Int
	b1.Mod(x1, m.N)
	b2.Mod(x2, m.N)
	g1 := m.ToMont(New(), &b1)
	g2 := m.ToMont(New(), &b2)
	g12 := m.MulMont(New(), g1, g2)
	table := [3]*Int{g1, g2, g12}

	bits := e1.BitLen()
	if n2 := e2.BitLen(); n2 > bits {
		bits = n2
	}
	// acc stays nil through the leading zero window so the chain
	// starts at the first set bit instead of squaring 1.
	var acc *Int
	for i := bits - 1; i >= 0; i-- {
		if acc != nil {
			m.SqrMont(acc, acc)
		}
		w := e1.Bit(i) | e2.Bit(i)<<1
		if w != 0 {
			if acc == nil {
				acc = New().Set(table[w-1])
			} else {
				m.MulMont(acc, acc, table[w-1])
			}
		}
	}
	return m.FromMont(z, acc)
}

// ModExp2 sets z = x1^e1 · x2^e2 mod N and returns z. For odd N it
// uses the shared-chain Montgomery path (Exp2); for even N it falls
// back to two ModExps and a modular multiply.
func (z *Int) ModExp2(x1, e1, x2, e2, N *Int) *Int {
	if N.IsZero() {
		panic("bn: ModExp2 modulus is zero")
	}
	if N.IsOne() {
		return z.SetUint64(0)
	}
	if N.IsOdd() {
		m, err := NewMont(N)
		if err != nil {
			panic("bn: " + err.Error())
		}
		return m.Exp2(z, x1, e1, x2, e2)
	}
	a := New().ModExp(x1, e1, N)
	b := New().ModExp(x2, e2, N)
	z.Mul(a, b)
	return z.Mod(z, N)
}

// ProductTree returns the binary product tree of xs: level 0 is a
// copy of xs, each higher level holds the pairwise products of the
// one below (a trailing odd element is promoted unchanged), and the
// top level is the single product of all inputs. xs must be
// non-empty. The batch-RSA percolate phases and batched inversion
// both walk this shape.
func ProductTree(xs []*Int) [][]*Int {
	if len(xs) == 0 {
		panic("bn: ProductTree of empty slice")
	}
	level := make([]*Int, len(xs))
	for i, x := range xs {
		level[i] = x.Clone()
	}
	tree := [][]*Int{level}
	for len(level) > 1 {
		next := make([]*Int, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, New().Mul(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1].Clone())
		}
		tree = append(tree, next)
		level = next
	}
	return tree
}

// BatchModInverse sets zs[i] = xs[i]⁻¹ mod N for every i using
// Montgomery's trick: one modular inversion plus 3(n−1) modular
// multiplications, instead of n inversions. It reports whether all
// inputs were invertible; on false the contents of zs are
// unspecified. zs and xs must have equal length (zs[i] may alias
// xs[i]).
func BatchModInverse(zs, xs []*Int, N *Int) bool {
	if len(zs) != len(xs) {
		panic("bn: BatchModInverse length mismatch")
	}
	n := len(xs)
	if n == 0 {
		return true
	}
	// Prefix products p[i] = x0·…·xi mod N.
	prefix := make([]*Int, n)
	prefix[0] = New().Mod(xs[0], N)
	for i := 1; i < n; i++ {
		prefix[i] = New().Mul(prefix[i-1], xs[i])
		prefix[i].Mod(prefix[i], N)
	}
	inv := New().ModInverse(prefix[n-1], N)
	if inv == nil {
		return false
	}
	// Walk backwards: zs[i] = inv · p[i-1]; inv ← inv · xs[i].
	for i := n - 1; i > 0; i-- {
		x := xs[i].Clone() // survive zs[i] aliasing xs[i]
		zs[i] = New().Mul(inv, prefix[i-1])
		zs[i].Mod(zs[i], N)
		inv.Mul(inv, x)
		inv.Mod(inv, N)
	}
	zs[0] = inv
	return true
}
