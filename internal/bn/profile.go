package bn

import (
	"time"

	"sslperf/internal/perf"
)

// Function names used in profiles, matching the OpenSSL symbols the
// paper's Table 8 reports so the regenerated table is directly
// comparable.
const (
	fnMulAddWords    = "bn_mul_add_words"
	fnSubWords       = "bn_sub_words"
	fnAddWords       = "bn_add_words"
	fnMulWords       = "bn_mul_words"
	fnFromMontgomery = "BN_from_montgomery"
	fnUsub           = "BN_usub"
	fnCopy           = "BN_copy"
	fnSqr            = "BN_sqr"
	fnMul            = "BN_mul"
	fnDiv            = "BN_div"
	fnModExp         = "BN_mod_exp"
	fnCleanse        = "OPENSSL_cleanse"
)

// The profiler attributes *exclusive* (self) time to each bn function,
// the way a flat Oprofile report does: time spent in a callee is
// charged to the callee, not the caller. That is what makes the
// paper's Table 8 read the way it does — BN_from_montgomery's inner
// loop is bn_mul_add_words, so the loop's time shows up under
// bn_mul_add_words and only the remainder under BN_from_montgomery.
//
// Profiling is process-global and not safe for concurrent use; it is
// meant for single-goroutine experiment runs, like the paper's.
type profiler struct {
	enabled bool
	stack   []profFrame
	b       *perf.Breakdown
	// overhead is the calibrated cost of one enter/exit pair that is
	// NOT captured between the pair's two timestamps (and therefore
	// would otherwise be charged to the caller's self time).
	overhead time.Duration
}

type profFrame struct {
	name  string
	start time.Time
	child time.Duration
}

var prof profiler

// StartProfile begins collecting an exclusive-time function profile.
// It returns the breakdown that will accumulate results; read it after
// StopProfile. Starting while already started resets the profile.
func StartProfile() *perf.Breakdown {
	calibrateOnce()
	prof.b = perf.NewBreakdown()
	prof.stack = prof.stack[:0]
	prof.enabled = true
	return prof.b
}

var calibrated bool

// calibrateOnce measures the uncaptured per-call cost of the
// enter/exit pair so it can be credited back to callees instead of
// inflating callers, the standard instrumenting-profiler compensation.
func calibrateOnce() {
	if calibrated {
		return
	}
	calibrated = true
	prof.b = perf.NewBreakdown()
	prof.stack = prof.stack[:0]
	prof.enabled = true
	const n = 20000
	start := time.Now()
	for i := 0; i < n; i++ {
		profEnter("calibration")
		profExit()
	}
	wall := time.Since(start)
	captured := prof.b.Elapsed("calibration")
	prof.enabled = false
	if wall > captured {
		prof.overhead = (wall - captured) / n
	}
}

// StopProfile stops collecting. The breakdown returned by StartProfile
// holds the accumulated exclusive times.
func StopProfile() {
	prof.enabled = false
	prof.stack = prof.stack[:0]
}

// ProfileEnabled reports whether a profile is being collected.
func ProfileEnabled() bool { return prof.enabled }

func profEnter(name string) {
	if !prof.enabled {
		return
	}
	prof.stack = append(prof.stack, profFrame{name: name, start: time.Now()})
}

func profExit() {
	if !prof.enabled || len(prof.stack) == 0 {
		return
	}
	top := prof.stack[len(prof.stack)-1]
	prof.stack = prof.stack[:len(prof.stack)-1]
	total := time.Since(top.start)
	self := total - top.child
	if self < 0 {
		self = 0
	}
	prof.b.Add(top.name, self)
	if len(prof.stack) > 0 {
		prof.stack[len(prof.stack)-1].child += total + prof.overhead
	}
}
