package bn

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// withMode runs fn under the given multiplication mode.
func withMode(m MulMode, fn func()) {
	prev := SetMulMode(m)
	defer SetMulMode(prev)
	fn()
}

func TestKaratsubaAgainstBigLargeOperands(t *testing.T) {
	withMode(MulKaratsuba, func() {
		r := rand.New(rand.NewSource(21))
		for i := 0; i < 300; i++ {
			// Sizes spanning below and above the threshold,
			// including odd limb counts and unequal lengths.
			nx := 1 + r.Intn(90)
			ny := 1 + r.Intn(90)
			x := New().SetBytes(randBytes(r, nx))
			y := New().SetBytes(randBytes(r, ny))
			got := New().Mul(x, y)
			want := new(big.Int).Mul(toBig(x), toBig(y))
			if toBig(got).Cmp(want) != 0 {
				t.Fatalf("karatsuba %d x %d bytes wrong:\n x=%s\n y=%s\n got=%s\n want=%s",
					nx, ny, x, y, got, want.Text(16))
			}
		}
	})
}

func TestKaratsubaMatchesSchoolbookProperty(t *testing.T) {
	f := func(xb, yb []byte) bool {
		x := New().SetBytes(xb)
		y := New().SetBytes(yb)
		var k, s *Int
		withMode(MulKaratsuba, func() { k = New().Mul(x, y) })
		withMode(MulSchoolbook, func() { s = New().Mul(x, y) })
		return k.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKaratsubaExactSizes(t *testing.T) {
	// Power-of-two limb counts hit the clean recursion path; the
	// +1 sizes hit padding.
	r := rand.New(rand.NewSource(22))
	for _, limbs := range []int{8, 9, 16, 17, 32, 33, 64} {
		x := New().SetBytes(randBytes(r, limbs*4))
		y := New().SetBytes(randBytes(r, limbs*4))
		var got *Int
		withMode(MulKaratsuba, func() { got = New().Mul(x, y) })
		want := new(big.Int).Mul(toBig(x), toBig(y))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("limbs=%d mismatch", limbs)
		}
	}
}

func TestKaratsubaEdgeValues(t *testing.T) {
	all0 := New()
	allF := MustHex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff")
	one := NewInt(1)
	withMode(MulKaratsuba, func() {
		if !New().Mul(all0, allF).IsZero() {
			t.Fatal("0 * x != 0")
		}
		if !New().Mul(allF, one).Equal(allF) {
			t.Fatal("x * 1 != x")
		}
		sq := New().Mul(allF, allF)
		want := new(big.Int).Mul(toBig(allF), toBig(allF))
		if toBig(sq).Cmp(want) != 0 {
			t.Fatal("max-value square wrong")
		}
	})
}

func TestModExpSameUnderBothModes(t *testing.T) {
	rnd := newRandReader(23)
	x, _ := New().Rand(rnd, 1024, false)
	e, _ := New().Rand(rnd, 1024, false)
	n, _ := New().Rand(rnd, 1024, false)
	n.d[0] |= 1
	var a, b *Int
	withMode(MulKaratsuba, func() { a = New().ModExp(x, e, n) })
	withMode(MulSchoolbook, func() { b = New().ModExp(x, e, n) })
	if !a.Equal(b) {
		t.Fatal("ModExp differs between multiplication modes")
	}
}

func TestSetMulModeReturnsPrevious(t *testing.T) {
	prev := SetMulMode(MulSchoolbook)
	if CurrentMulMode() != MulSchoolbook {
		t.Fatal("mode not set")
	}
	if SetMulMode(prev) != MulSchoolbook {
		t.Fatal("previous mode not returned")
	}
}

// The paper's Table 8 signature: under Karatsuba, bn_sub_words does
// real work (the difference terms); under schoolbook it is nearly
// absent from multiplication.
func TestKaratsubaShiftsTimeToSubWords(t *testing.T) {
	rnd := newRandReader(24)
	x, _ := New().Rand(rnd, 2048, false)
	y, _ := New().Rand(rnd, 2048, false)

	measure := func(mode MulMode) (sub, mul float64) {
		var b *perfBreakdown
		withMode(mode, func() {
			bb := StartProfile()
			for i := 0; i < 200; i++ {
				New().Mul(x, y)
			}
			StopProfile()
			b = &perfBreakdown{bb.Percent(fnSubWords), bb.Percent(fnMulAddWords)}
		})
		return b.sub, b.mul
	}
	kSub, _ := measure(MulKaratsuba)
	sSub, sMul := measure(MulSchoolbook)
	if kSub <= sSub {
		t.Fatalf("karatsuba bn_sub_words share %.2f%% not above schoolbook's %.2f%%",
			kSub, sSub)
	}
	if sMul < 70 {
		t.Fatalf("schoolbook should be mostly bn_mul_add_words, got %.2f%%", sMul)
	}
}

type perfBreakdown struct{ sub, mul float64 }

func BenchmarkMul1024(b *testing.B) {
	rnd := newRandReader(25)
	x, _ := New().Rand(rnd, 1024, false)
	y, _ := New().Rand(rnd, 1024, false)
	z := New()
	b.Run("Karatsuba", func(b *testing.B) {
		withMode(MulKaratsuba, func() {
			for i := 0; i < b.N; i++ {
				z.Mul(x, y)
			}
		})
	})
	b.Run("Schoolbook", func(b *testing.B) {
		withMode(MulSchoolbook, func() {
			for i := 0; i < b.N; i++ {
				z.Mul(x, y)
			}
		})
	})
}
