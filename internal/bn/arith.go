package bn

// Word-level kernels. These are the Go analogues of OpenSSL's
// bn_asm.c primitives; the paper's Table 8 attributes 47% of RSA
// decryption to bn_mul_add_words and 23% to bn_sub_words, so these
// carry per-function profiling hooks (see profile.go).

// addWords sets z = x + y over n limbs (n = len(x) = len(y)) and
// returns the carry-out. z may alias x or y. (bn_add_words)
func addWords(z, x, y []Word) Word {
	profEnter(fnAddWords)
	var carry uint64
	for i := range x {
		s := uint64(x[i]) + uint64(y[i]) + carry
		z[i] = Word(s)
		carry = s >> WordBits
	}
	profExit()
	return Word(carry)
}

// subWords sets z = x - y over n limbs and returns the borrow-out
// (1 when x < y). z may alias x or y. (bn_sub_words)
func subWords(z, x, y []Word) Word {
	profEnter(fnSubWords)
	var borrow uint64
	for i := range x {
		d := uint64(x[i]) - uint64(y[i]) - borrow
		z[i] = Word(d)
		borrow = (d >> WordBits) & 1
	}
	profExit()
	return Word(borrow)
}

// mulAddWords computes z[i] += x[i]*y for all i with carry
// propagation, returning the final carry. This is the hot inner loop
// of both multiplication and Montgomery reduction — the paper's
// bn_mul_add_words, whose per-limb body (load, widening multiply, two
// adds, two adds-with-carry, store) is reproduced in Table 9.
func mulAddWords(z, x []Word, y Word) Word {
	profEnter(fnMulAddWords)
	var carry uint64
	yy := uint64(y)
	for i := range x {
		// t = z[i] + x[i]*y + carry; fits in 64 bits because
		// (B-1) + (B-1)^2 + (B-1) = B^2 - 1 for B = 2^32.
		t := uint64(z[i]) + uint64(x[i])*yy + carry
		z[i] = Word(t)
		carry = t >> WordBits
	}
	profExit()
	return Word(carry)
}

// mulWords computes z[i] = x[i]*y + carry, returning the final carry.
// (bn_mul_words)
func mulWords(z, x []Word, y Word) Word {
	profEnter(fnMulWords)
	var carry uint64
	yy := uint64(y)
	for i := range x {
		t := uint64(x[i])*yy + carry
		z[i] = Word(t)
		carry = t >> WordBits
	}
	profExit()
	return Word(carry)
}

// uadd sets z = |x| + |y| ignoring signs. z may alias x or y.
func (z *Int) uadd(x, y *Int) {
	if len(x.d) < len(y.d) {
		x, y = y, x
	}
	n, m := len(x.d), len(y.d)
	var d []Word
	if cap(z.d) >= n+1 {
		d = z.d[:n+1]
	} else {
		d = make([]Word, n+1)
	}
	carry := addWords(d[:m], x.d[:m], y.d[:m])
	for i := m; i < n; i++ {
		s := uint64(x.d[i]) + uint64(carry)
		d[i] = Word(s)
		carry = Word(s >> WordBits)
	}
	d[n] = carry
	z.d = d
	z.norm()
}

// usub sets z = |x| - |y|, requiring |x| >= |y|. z may alias x or y.
// (BN_usub)
func (z *Int) usub(x, y *Int) {
	profEnter(fnUsub)
	n, m := len(x.d), len(y.d)
	var d []Word
	if cap(z.d) >= n {
		d = z.d[:n]
	} else {
		d = make([]Word, n)
	}
	borrow := subWords(d[:m], x.d[:m], y.d[:m])
	for i := m; i < n; i++ {
		t := uint64(x.d[i]) - uint64(borrow)
		d[i] = Word(t)
		borrow = Word((t >> WordBits) & 1)
	}
	if borrow != 0 {
		profExit()
		panic("bn: usub underflow")
	}
	z.d = d
	z.norm()
	profExit()
}

// Add sets z = x + y and returns z.
func (z *Int) Add(x, y *Int) *Int {
	if x.neg == y.neg {
		neg := x.neg
		z.uadd(x, y)
		if !z.IsZero() {
			z.neg = neg
		}
		return z
	}
	// Opposite signs: subtract the smaller magnitude.
	if x.CmpAbs(y) >= 0 {
		neg := x.neg
		z.usub(x, y)
		if !z.IsZero() {
			z.neg = neg
		}
	} else {
		neg := y.neg
		z.usub(y, x)
		if !z.IsZero() {
			z.neg = neg
		}
	}
	return z
}

// Sub sets z = x - y and returns z.
func (z *Int) Sub(x, y *Int) *Int {
	if x.neg != y.neg {
		neg := x.neg
		z.uadd(x, y)
		if !z.IsZero() {
			z.neg = neg
		}
		return z
	}
	if x.CmpAbs(y) >= 0 {
		neg := x.neg
		z.usub(x, y)
		if !z.IsZero() {
			z.neg = neg
		}
	} else {
		neg := !x.neg
		z.usub(y, x)
		if !z.IsZero() {
			z.neg = neg
		}
	}
	return z
}

// AddWord sets z = x + w (w unsigned) and returns z.
func (z *Int) AddWord(x *Int, w Word) *Int {
	var t Int
	t.SetUint64(uint64(w))
	return z.Add(x, &t)
}

// SubWord sets z = x - w and returns z.
func (z *Int) SubWord(x *Int, w Word) *Int {
	var t Int
	t.SetUint64(uint64(w))
	return z.Sub(x, &t)
}

// Lsh sets z = x << n and returns z.
func (z *Int) Lsh(x *Int, n uint) *Int {
	if x.IsZero() {
		z.d = z.d[:0]
		z.neg = false
		return z
	}
	words := int(n / WordBits)
	shift := n % WordBits
	src := x.d
	out := make([]Word, len(src)+words+1)
	if shift == 0 {
		copy(out[words:], src)
	} else {
		var carry Word
		for i, w := range src {
			out[words+i] = w<<shift | carry
			carry = w >> (WordBits - shift)
		}
		out[words+len(src)] = carry
	}
	z.d = out
	z.neg = x.neg
	return z.norm()
}

// Rsh sets z = x >> n (arithmetic on magnitude; sign preserved unless
// the result is zero) and returns z.
func (z *Int) Rsh(x *Int, n uint) *Int {
	words := int(n / WordBits)
	shift := n % WordBits
	if words >= len(x.d) {
		z.d = z.d[:0]
		z.neg = false
		return z
	}
	src := x.d[words:]
	out := make([]Word, len(src))
	if shift == 0 {
		copy(out, src)
	} else {
		for i := 0; i < len(src); i++ {
			w := src[i] >> shift
			if i+1 < len(src) {
				w |= src[i+1] << (WordBits - shift)
			}
			out[i] = w
		}
	}
	z.d = out
	z.neg = x.neg
	return z.norm()
}
