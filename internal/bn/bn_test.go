package bn

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"sslperf/internal/perf"
)

// randReader is a deterministic io.Reader for reproducible tests.
type randReader struct{ r *rand.Rand }

func newRandReader(seed int64) *randReader {
	return &randReader{r: rand.New(rand.NewSource(seed))}
}

func (rr *randReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(rr.r.Intn(256))
	}
	return len(p), nil
}

// toBig converts our Int to math/big for oracle comparison.
func toBig(z *Int) *big.Int {
	b := new(big.Int).SetBytes(z.Bytes())
	if z.Sign() < 0 {
		b.Neg(b)
	}
	return b
}

// fromBig converts a math/big value to our Int.
func fromBig(b *big.Int) *Int {
	z := New().SetBytes(b.Bytes())
	if b.Sign() < 0 {
		z.neg = true
	}
	return z
}

// randBytes produces n random bytes from r.
func randBytes(r *rand.Rand, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(r.Intn(256))
	}
	return buf
}

func TestSetBytesRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{1},
		{0xff},
		{0x01, 0x00},
		{0xde, 0xad, 0xbe, 0xef},
		{0x00, 0x00, 0x12, 0x34, 0x56},
		bytes.Repeat([]byte{0xab}, 33),
	}
	for _, c := range cases {
		z := New().SetBytes(c)
		want := new(big.Int).SetBytes(c)
		if toBig(z).Cmp(want) != 0 {
			t.Errorf("SetBytes(%x) = %s, want %s", c, z.Hex(), want.Text(16))
		}
		// Bytes must be minimal big-endian.
		got := z.Bytes()
		trimmed := bytes.TrimLeft(c, "\x00")
		if !bytes.Equal(got, trimmed) && !(len(got) == 0 && len(trimmed) == 0) {
			t.Errorf("Bytes() = %x, want %x", got, trimmed)
		}
	}
}

func TestFillBytes(t *testing.T) {
	z := NewInt(0x1234)
	buf := z.FillBytes(make([]byte, 4))
	if !bytes.Equal(buf, []byte{0, 0, 0x12, 0x34}) {
		t.Fatalf("FillBytes = %x", buf)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FillBytes did not panic on overflow")
		}
	}()
	z.FillBytes(make([]byte, 1))
}

func TestHexRoundTrip(t *testing.T) {
	cases := []string{"0", "1", "f", "10", "deadbeef", "-deadbeef",
		"123456789abcdef0123456789abcdef", "80000000", "ffffffffffffffff"}
	for _, c := range cases {
		z, err := New().SetHex(c)
		if err != nil {
			t.Fatalf("SetHex(%q): %v", c, err)
		}
		if got := z.Hex(); got != c && !(c == "-0" && got == "0") {
			t.Errorf("Hex(SetHex(%q)) = %q", c, got)
		}
	}
	if _, err := New().SetHex("xyz"); err == nil {
		t.Error("SetHex accepted invalid input")
	}
	if _, err := New().SetHex(""); err == nil {
		t.Error("SetHex accepted empty input")
	}
	if _, err := New().SetHex("abc"); err != nil {
		t.Error("SetHex rejected odd-length input")
	}
}

func TestUint64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xffffffff, 0x100000000, 0xffffffffffffffff} {
		z := NewInt(v)
		got, ok := z.Uint64()
		if !ok || got != v {
			t.Errorf("Uint64(NewInt(%d)) = %d, %v", v, got, ok)
		}
	}
	big3 := MustHex("10000000000000000") // 2^64
	if _, ok := big3.Uint64(); ok {
		t.Error("Uint64 claimed 2^64 fits")
	}
}

func TestBitLenAndBit(t *testing.T) {
	if NewInt(0).BitLen() != 0 {
		t.Error("BitLen(0) != 0")
	}
	z := MustHex("80000000000000000") // 2^67
	if z.BitLen() != 68 {
		t.Errorf("BitLen = %d, want 68", z.BitLen())
	}
	if z.Bit(67) != 1 || z.Bit(66) != 0 || z.Bit(1000) != 0 {
		t.Error("Bit() wrong")
	}
}

func TestSignNegCmp(t *testing.T) {
	pos, negv, zero := NewInt(5), New().Neg(NewInt(5)), NewInt(0)
	if pos.Sign() != 1 || negv.Sign() != -1 || zero.Sign() != 0 {
		t.Fatal("Sign wrong")
	}
	if pos.Cmp(negv) != 1 || negv.Cmp(pos) != -1 || pos.Cmp(pos) != 0 {
		t.Fatal("Cmp wrong")
	}
	if New().Neg(zero).Sign() != 0 {
		t.Fatal("-0 should be 0")
	}
	if pos.CmpAbs(negv) != 0 {
		t.Fatal("CmpAbs ignoring sign failed")
	}
}

func TestAddSubAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := fromBig(randSignedBig(r, 40))
		b := fromBig(randSignedBig(r, 40))
		sum := New().Add(a, b)
		diff := New().Sub(a, b)
		wantSum := new(big.Int).Add(toBig(a), toBig(b))
		wantDiff := new(big.Int).Sub(toBig(a), toBig(b))
		if toBig(sum).Cmp(wantSum) != 0 {
			t.Fatalf("%s + %s = %s, want %s", a, b, sum, wantSum.Text(16))
		}
		if toBig(diff).Cmp(wantDiff) != 0 {
			t.Fatalf("%s - %s = %s, want %s", a, b, diff, wantDiff.Text(16))
		}
	}
}

func randSignedBig(r *rand.Rand, maxBytes int) *big.Int {
	n := r.Intn(maxBytes)
	b := new(big.Int).SetBytes(randBytes(r, n))
	if r.Intn(2) == 0 {
		b.Neg(b)
	}
	return b
}

func TestAddAliasing(t *testing.T) {
	a := MustHex("ffffffffffffffff")
	a.Add(a, a)
	if a.Hex() != "1fffffffffffffffe" {
		t.Fatalf("a.Add(a,a) = %s", a)
	}
	b := MustHex("123456789")
	b.Sub(b, b)
	if !b.IsZero() {
		t.Fatalf("b.Sub(b,b) = %s", b)
	}
}

func TestMulAgainstBigProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(ab, bb []byte, an, bnn bool) bool {
		a := New().SetBytes(ab)
		b := New().SetBytes(bb)
		if an && !a.IsZero() {
			a.neg = true
		}
		if bnn && !b.IsZero() {
			b.neg = true
		}
		got := New().Mul(a, b)
		want := new(big.Int).Mul(toBig(a), toBig(b))
		return toBig(got).Cmp(want) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSqrAgainstBigProperty(t *testing.T) {
	f := func(ab []byte) bool {
		a := New().SetBytes(ab)
		got := New().Sqr(a)
		want := new(big.Int).Mul(toBig(a), toBig(a))
		return toBig(got).Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMulWord(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a := New().SetBytes(randBytes(r, 1+r.Intn(30)))
		w := Word(r.Uint32())
		got := New().MulWord(a, w)
		want := new(big.Int).Mul(toBig(a), big.NewInt(int64(w)))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("MulWord(%s, %d) = %s, want %s", a, w, got, want.Text(16))
		}
	}
}

func TestDivModAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		x := New().SetBytes(randBytes(r, 1+r.Intn(40)))
		y := New().SetBytes(randBytes(r, 1+r.Intn(20)))
		if y.IsZero() {
			continue
		}
		var q, rem Int
		DivMod(&q, &rem, x, y)
		wantQ, wantR := new(big.Int).QuoRem(toBig(x), toBig(y), new(big.Int))
		if toBig(&q).Cmp(wantQ) != 0 || toBig(&rem).Cmp(wantR) != 0 {
			t.Fatalf("%s divmod %s = (%s, %s), want (%s, %s)",
				x, y, &q, &rem, wantQ.Text(16), wantR.Text(16))
		}
	}
}

func TestDivModEdgeCases(t *testing.T) {
	// x < y
	var q, r Int
	DivMod(&q, &r, NewInt(5), NewInt(100))
	if !q.IsZero() || r.Hex() != "5" {
		t.Fatalf("5/100 = (%s,%s)", &q, &r)
	}
	// x == y
	DivMod(&q, &r, NewInt(100), NewInt(100))
	if !q.IsOne() || !r.IsZero() {
		t.Fatalf("100/100 = (%s,%s)", &q, &r)
	}
	// Exact multi-limb division.
	a := MustHex("100000000000000000000000000000000")
	b := MustHex("10000000000000000")
	DivMod(&q, &r, a, b)
	if q.Hex() != "10000000000000000" || !r.IsZero() {
		t.Fatalf("exact division wrong: (%s,%s)", &q, &r)
	}
	// Division by zero panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("div by zero did not panic")
			}
		}()
		DivMod(&q, &r, a, NewInt(0))
	}()
}

func TestDivModLargeOperandsAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for i := 0; i < 40; i++ {
		x := New().SetBytes(randBytes(r, 200+r.Intn(200)))
		y := New().SetBytes(randBytes(r, 1+r.Intn(150)))
		if y.IsZero() {
			continue
		}
		var q, rem Int
		DivMod(&q, &rem, x, y)
		wantQ, wantR := new(big.Int).QuoRem(toBig(x), toBig(y), new(big.Int))
		if toBig(&q).Cmp(wantQ) != 0 || toBig(&rem).Cmp(wantR) != 0 {
			t.Fatalf("large divmod mismatch at %d bytes / %d bytes",
				len(x.Bytes()), len(y.Bytes()))
		}
	}
}

func TestDivModAliasing(t *testing.T) {
	// q or r may alias the operands.
	x := MustHex("123456789abcdef0123456789abcdef0")
	y := MustHex("fedcba98")
	wantQ, wantR := new(big.Int).QuoRem(toBig(x), toBig(y), new(big.Int))

	qx := x.Clone()
	DivMod(qx, New(), qx, y) // q aliases x
	if toBig(qx).Cmp(wantQ) != 0 {
		t.Fatal("q aliasing x broke division")
	}
	ry := y.Clone()
	DivMod(New(), ry, x, ry) // r aliases y
	if toBig(ry).Cmp(wantR) != 0 {
		t.Fatal("r aliasing y broke division")
	}
	// q == r must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("DivMod with q == r did not panic")
			}
		}()
		z := New()
		DivMod(z, z, x, y)
	}()
}

func TestModExpWindowBoundaries(t *testing.T) {
	// Exponent bit lengths around the 4-bit window edges.
	n := MustHex("f123456789abcdef123456789abcdef1") // odd modulus
	x := MustHex("abcdef")
	for _, bits := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17} {
		e := New().Lsh(NewInt(1), uint(bits-1))
		e.AddWord(e, 5) // non-trivial low bits
		got := New().ModExp(x, e, n)
		want := new(big.Int).Exp(toBig(x), toBig(e), toBig(n))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("window edge %d bits wrong", bits)
		}
	}
}

func TestModNonNegative(t *testing.T) {
	x := New().Neg(NewInt(7))
	n := NewInt(5)
	m := New().Mod(x, n)
	if m.Hex() != "3" {
		t.Fatalf("-7 mod 5 = %s, want 3", m)
	}
}

func TestShifts(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		x := New().SetBytes(randBytes(r, 1+r.Intn(20)))
		s := uint(r.Intn(100))
		l := New().Lsh(x, s)
		rr := New().Rsh(x, s)
		wantL := new(big.Int).Lsh(toBig(x), s)
		wantR := new(big.Int).Rsh(toBig(x), s)
		if toBig(l).Cmp(wantL) != 0 {
			t.Fatalf("%s << %d = %s, want %s", x, s, l, wantL.Text(16))
		}
		if toBig(rr).Cmp(wantR) != 0 {
			t.Fatalf("%s >> %d = %s, want %s", x, s, rr, wantR.Text(16))
		}
	}
}

func TestModExpAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		x := New().SetBytes(randBytes(r, 1+r.Intn(24)))
		e := New().SetBytes(randBytes(r, 1+r.Intn(8)))
		n := New().SetBytes(randBytes(r, 1+r.Intn(24)))
		if n.IsZero() {
			continue
		}
		if r.Intn(2) == 0 {
			n.d[0] |= 1 // exercise the Montgomery path
		}
		if n.IsOne() {
			continue
		}
		got := New().ModExp(x, e, n)
		want := new(big.Int).Exp(toBig(x), toBig(e), toBig(n))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("%s^%s mod %s = %s, want %s", x, e, n, got, want.Text(16))
		}
	}
}

func TestModExpEdgeCases(t *testing.T) {
	// e = 0 -> 1
	if got := New().ModExp(NewInt(5), NewInt(0), NewInt(7)); !got.IsOne() {
		t.Fatalf("5^0 mod 7 = %s", got)
	}
	// N = 1 -> 0
	if got := New().ModExp(NewInt(5), NewInt(3), NewInt(1)); !got.IsZero() {
		t.Fatalf("mod 1 = %s", got)
	}
	// x = 0
	if got := New().ModExp(NewInt(0), NewInt(3), NewInt(7)); !got.IsZero() {
		t.Fatalf("0^3 mod 7 = %s", got)
	}
	// Known value: 2^10 mod 1000 = 24
	if got := New().ModExp(NewInt(2), NewInt(10), NewInt(1000)); got.Hex() != "18" {
		t.Fatalf("2^10 mod 1000 = %s, want 18", got)
	}
}

func TestMontgomeryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		n := New().SetBytes(randBytes(r, 4+r.Intn(24)))
		n.d[0] |= 1
		if n.IsOne() {
			continue
		}
		m, err := NewMont(n)
		if err != nil {
			t.Fatal(err)
		}
		x := New().Mod(New().SetBytes(randBytes(r, 20)), n)
		mx := m.ToMont(New(), x)
		back := m.FromMont(New(), mx)
		if !back.Equal(x) {
			t.Fatalf("Montgomery round trip failed for %s mod %s: got %s", x, n, back)
		}
	}
}

func TestMontgomeryMul(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		n := New().SetBytes(randBytes(r, 4+r.Intn(24)))
		n.d[0] |= 1
		if n.IsOne() {
			continue
		}
		m, err := NewMont(n)
		if err != nil {
			t.Fatal(err)
		}
		x := New().Mod(New().SetBytes(randBytes(r, 20)), n)
		y := New().Mod(New().SetBytes(randBytes(r, 20)), n)
		mx := m.ToMont(New(), x)
		my := m.ToMont(New(), y)
		mz := m.MulMont(New(), mx, my)
		z := m.FromMont(New(), mz)
		want := new(big.Int).Mul(toBig(x), toBig(y))
		want.Mod(want, toBig(n))
		if toBig(z).Cmp(want) != 0 {
			t.Fatalf("MulMont wrong: %s*%s mod %s = %s, want %s",
				x, y, n, z, want.Text(16))
		}
		// SqrMont agrees with MulMont(x, x).
		sq := m.FromMont(New(), m.SqrMont(New(), mx))
		wantSq := new(big.Int).Mul(toBig(x), toBig(x))
		wantSq.Mod(wantSq, toBig(n))
		if toBig(sq).Cmp(wantSq) != 0 {
			t.Fatalf("SqrMont wrong for %s mod %s", x, n)
		}
	}
}

func TestNewMontRejectsBadModulus(t *testing.T) {
	for _, n := range []*Int{NewInt(0), NewInt(1), NewInt(4), New().Neg(NewInt(5))} {
		if _, err := NewMont(n); err == nil {
			t.Errorf("NewMont(%s) accepted invalid modulus", n)
		}
	}
}

func TestModInverse(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		n := New().SetBytes(randBytes(r, 2+r.Intn(16)))
		if n.Sign() <= 0 || n.IsOne() {
			continue
		}
		x := New().SetBytes(randBytes(r, 1+r.Intn(16)))
		inv := New().ModInverse(x, n)
		g := New().GCD(x, n)
		if !g.IsOne() {
			if inv != nil {
				t.Fatalf("ModInverse(%s, %s) should not exist (gcd %s)", x, n, g)
			}
			continue
		}
		if inv == nil {
			t.Fatalf("ModInverse(%s, %s) = nil but gcd is 1", x, n)
		}
		prod := New().Mod(New().Mul(x, inv), n)
		if !prod.IsOne() {
			t.Fatalf("x*inv mod n = %s, want 1", prod)
		}
	}
}

func TestGCDAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		a := New().SetBytes(randBytes(r, 1+r.Intn(16)))
		b := New().SetBytes(randBytes(r, 1+r.Intn(16)))
		if a.IsZero() && b.IsZero() {
			continue
		}
		got := New().GCD(a, b)
		want := new(big.Int).GCD(nil, nil, toBig(a), toBig(b))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("gcd(%s,%s) = %s, want %s", a, b, got, want.Text(16))
		}
	}
}

func TestProbablyPrime(t *testing.T) {
	rnd := newRandReader(42)
	primes := []uint64{2, 3, 5, 7, 65537, 2147483647}
	for _, p := range primes {
		ok, err := NewInt(p).ProbablyPrime(rnd, 10)
		if err != nil || !ok {
			t.Errorf("ProbablyPrime(%d) = %v, %v; want prime", p, ok, err)
		}
	}
	composites := []uint64{0, 1, 4, 9, 561, 2047, 65535, 2147483647 * 2}
	for _, c := range composites {
		ok, err := NewInt(c).ProbablyPrime(rnd, 10)
		if err != nil || ok {
			t.Errorf("ProbablyPrime(%d) = %v, %v; want composite", c, ok, err)
		}
	}
	// A known large prime: 2^127 - 1 (Mersenne).
	m127 := New().SubWord(New().Lsh(NewInt(1), 127), 1)
	ok, err := m127.ProbablyPrime(rnd, 10)
	if err != nil || !ok {
		t.Errorf("2^127-1 should be prime: %v, %v", ok, err)
	}
	// 2^128 - 1 is composite.
	m128 := New().SubWord(New().Lsh(NewInt(1), 128), 1)
	ok, err = m128.ProbablyPrime(rnd, 10)
	if err != nil || ok {
		t.Errorf("2^128-1 should be composite: %v, %v", ok, err)
	}
}

func TestGeneratePrime(t *testing.T) {
	rnd := newRandReader(7)
	p, err := GeneratePrime(rnd, 128)
	if err != nil {
		t.Fatal(err)
	}
	if p.BitLen() != 128 {
		t.Fatalf("prime has %d bits, want 128", p.BitLen())
	}
	if p.Bit(126) != 1 {
		t.Fatal("second-top bit not set")
	}
	if !toBig(p).ProbablyPrime(32) {
		t.Fatalf("generated value %s is not prime per math/big", p)
	}
}

func TestRandRange(t *testing.T) {
	rnd := newRandReader(11)
	max := NewInt(1000)
	for i := 0; i < 200; i++ {
		z, err := New().RandRange(rnd, max)
		if err != nil {
			t.Fatal(err)
		}
		if z.Sign() <= 0 || z.Cmp(max) >= 0 {
			t.Fatalf("RandRange out of range: %s", z)
		}
	}
}

func TestCleanse(t *testing.T) {
	z := MustHex("deadbeefcafebabe")
	d := z.d
	z.Cleanse()
	if !z.IsZero() {
		t.Fatal("Cleanse did not zero the value")
	}
	for _, w := range d[:cap(d)] {
		if w != 0 {
			t.Fatal("Cleanse left key material in storage")
		}
	}
}

func TestProfileAttributesMulAddWords(t *testing.T) {
	rnd := newRandReader(13)
	x, _ := New().Rand(rnd, 1024, false)
	e, _ := New().Rand(rnd, 1024, false)
	n, _ := New().Rand(rnd, 1024, false)
	n.d[0] |= 1
	b := StartProfile()
	New().ModExp(x, e, n)
	StopProfile()
	if b.Total() == 0 {
		t.Fatal("profile collected nothing")
	}
	if b.Elapsed(fnMulAddWords) == 0 {
		t.Fatal("no time attributed to bn_mul_add_words")
	}
	// The mul-add kernel must be the single largest consumer, as in
	// the paper's Table 8 (47% of a 1024-bit RSA decryption).
	top := b.SortedByElapsed()[0]
	if top.Name != fnMulAddWords {
		t.Fatalf("top function = %s, want %s\n%s", top.Name, fnMulAddWords, b)
	}
}

func TestProfileExclusiveTime(t *testing.T) {
	b := StartProfile()
	// BN_mul calls mulAddWords; exclusive accounting must charge most
	// of the time to the kernel, not the caller.
	a := New()
	a.Rand(newRandReader(99), 4096, false)
	for i := 0; i < 50; i++ {
		New().Mul(a, a)
	}
	StopProfile()
	if b.Elapsed(fnMulAddWords) == 0 || b.Elapsed(fnMul) == 0 {
		t.Fatalf("missing attributions: %v", b.Samples())
	}
	if b.Elapsed(fnMul) >= b.Elapsed(fnMulAddWords) {
		t.Fatalf("caller self time %v >= kernel time %v",
			b.Elapsed(fnMul), b.Elapsed(fnMulAddWords))
	}
}

func TestTraceMulAddWordsShape(t *testing.T) {
	var tr perf.Trace
	TraceMulAddWords(&tr, 100)
	if tr.Total() == 0 {
		t.Fatal("empty trace")
	}
	// Per Table 9: exactly one widening multiply per limb.
	if got := tr.Count(perf.OpMul); got != 100 {
		t.Fatalf("mul count = %d, want 100", got)
	}
	// Loads must outnumber multiplies (register-starved x86 shape).
	if tr.Count(perf.OpLoad) <= tr.Count(perf.OpMul) {
		t.Fatal("loads should dominate multiplies")
	}
}

func TestInnerLoopListing(t *testing.T) {
	l := InnerLoopListing()
	if len(l) != 9 {
		t.Fatalf("listing has %d rows, want 9 (Table 9)", len(l))
	}
	if l[1][0] != "mull %ebp" {
		t.Fatalf("row 2 = %q", l[1][0])
	}
}

func TestTraceModExpPathLength(t *testing.T) {
	var tr perf.Trace
	TraceModExp(&tr, 1024, 1024)
	tr.Bytes = 128 // one 1024-bit operation "processes" 128 bytes
	pl := tr.PathLength()
	// Paper Table 11: RSA path length 61457 instr/byte. The model
	// should land in the same order of magnitude.
	if pl < 10000 || pl > 300000 {
		t.Fatalf("RSA modeled path length = %.0f ops/byte, want O(10^4..10^5)", pl)
	}
	cpi := tr.CPI()
	if cpi < 0.5 || cpi > 1.2 {
		t.Fatalf("RSA modeled CPI = %.2f, want highest-of-set per Table 11", cpi)
	}
}
