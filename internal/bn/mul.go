package bn

// Mul sets z = x * y and returns z (BN_mul). Large operands use the
// algorithm selected by SetMulMode — Karatsuba by default, like the
// OpenSSL build the paper measured — with the schoolbook mul-add loop
// as the base case.
func (z *Int) Mul(x, y *Int) *Int {
	profEnter(fnMul)
	if x.IsZero() || y.IsZero() {
		z.d = z.d[:0]
		z.neg = false
		profExit()
		return z
	}
	out := mulSlices(x.d, y.d)
	neg := x.neg != y.neg
	z.d = out
	z.neg = neg
	z.norm()
	profExit()
	return z
}

// Sqr sets z = x * x and returns z. (BN_sqr.) It exploits the symmetry
// of squaring: cross products are computed once and doubled.
func (z *Int) Sqr(x *Int) *Int {
	profEnter(fnSqr)
	n := len(x.d)
	if n == 0 {
		z.d = z.d[:0]
		z.neg = false
		profExit()
		return z
	}
	out := make([]Word, 2*n)
	// Cross products x[i]*x[j], i < j.
	for i := 0; i < n-1; i++ {
		carry := mulAddWords(out[2*i+1:i+n], x.d[i+1:], x.d[i])
		out[i+n] = carry
	}
	// Double the cross products.
	var carry uint64
	for i := range out {
		v := uint64(out[i])<<1 | carry
		out[i] = Word(v)
		carry = v >> WordBits
	}
	// Add the squares x[i]^2 on the diagonal.
	var c uint64
	for i := 0; i < n; i++ {
		sq := uint64(x.d[i]) * uint64(x.d[i])
		lo := uint64(out[2*i]) + (sq & 0xffffffff) + c
		out[2*i] = Word(lo)
		hi := uint64(out[2*i+1]) + (sq >> WordBits) + (lo >> WordBits)
		out[2*i+1] = Word(hi)
		c = hi >> WordBits
	}
	z.d = out
	z.neg = false
	z.norm()
	profExit()
	return z
}

// MulWord sets z = x * w and returns z.
func (z *Int) MulWord(x *Int, w Word) *Int {
	if x.IsZero() || w == 0 {
		z.d = z.d[:0]
		z.neg = false
		return z
	}
	out := make([]Word, len(x.d)+1)
	out[len(x.d)] = mulWords(out[:len(x.d)], x.d, w)
	neg := x.neg
	z.d = out
	z.neg = neg
	return z.norm()
}
