// Flight sealing: the zero-copy vectored bulk write path.
//
// A flight is one application write's worth of records sealed together
// and flushed as a single vectored transport write. The pipeline
// mirrors the paper's Figure 6 crypto-engine sketch (hashing unit ∥
// cipher unit) in software:
//
//  1. The caller's buffer is fragmented without copying — each
//     fragment is a sub-slice.
//  2. Fragment MACs are computed in parallel: sequence numbers are
//     assigned up front, so each MAC is independent, and macpipe
//     helpers plus the calling goroutine claim fragments from a shared
//     cursor. The caller always participates, so progress never
//     depends on a helper being free.
//  3. Cipher passes run on the caller's goroutine in sequence-number
//     order — RC4 consumes keystream and CBC chains IVs, so encryption
//     is inherently serial (see suite.RecordCipher's ordering
//     contract). EncryptTo fuses the plaintext copy into the cipher
//     pass: application bytes move into the wire buffer exactly once.
//  4. The sealed records — each a contiguous header‖body in a pooled
//     buffer, i.e. one iovec each — are flushed with one WriteBuffers
//     call (writev on a TCP transport).
//
// The ciphertext is byte-identical to what the sequential
// writeFragment path produces for the same plaintext and starting
// state; flight_test.go proves it for every suite.
package record

import (
	"encoding/binary"
	"sync"
	"time"

	"sslperf/internal/macpipe"
	"sslperf/internal/sslcrypto"
	"sslperf/internal/suite"
)

// A BuffersWriter flushes a list of buffers in one transport
// operation (one writev syscall on a TCP connection). The record
// layer's flight flush uses it when the underlying stream offers it;
// otherwise it falls back to one Write per record.
//
// Implementations may mutate bufs and its elements (net.Buffers.WriteTo
// consumes the slice it is given).
type BuffersWriter interface {
	WriteBuffers(bufs [][]byte) (int64, error)
}

// maxFlightRecords bounds the records sealed per flight: 64 records ×
// 16 KiB = 1 MiB windows, enough to amortize the flush syscall ~64×
// while capping the pooled-buffer working set a single connection can
// pin.
const maxFlightRecords = 64

// flight is the reusable per-layer sealing state: lane MACs, helper
// jobs, the fragment plan, and the iovec list. One flight struct
// serves one Layer and is rebuilt only when the write state or the
// pipeline width changes.
type flight struct {
	layer *Layer

	// macs[0] is the layer's own write MAC (the caller's lane);
	// macs[1:] are clones for helper lanes. MACs carry per-record
	// scratch, so lanes never share one.
	macs []*sslcrypto.MAC
	jobs []flightJob

	// Per-record plan for the in-progress window. src[i] aliases the
	// caller's buffer; bps[i] is the pooled seal buffer the record is
	// assembled into.
	src [][]byte
	bps []*[]byte
	iov [][]byte

	typ  byte
	seq0 uint64
	n    int

	// Worker-measured MAC timings, emitted on the caller's goroutine
	// (RecordCryptoAt) so per-connection probe sinks keep their
	// single-goroutine contract.
	macStart []time.Time
	macDur   []time.Duration

	mu     sync.Mutex
	cond   sync.Cond
	next   int    // next unclaimed fragment index
	done   []bool // done[i]: fragment i's MAC is in place
	exited int    // helpers that have left this window
}

// flightJob is one helper lane's macpipe task.
type flightJob struct {
	fl   *flight
	lane int
}

// Run executes on a macpipe worker: claim and MAC fragments until the
// window is exhausted, then sign out so join can release the flight
// state.
func (j *flightJob) Run() {
	fl := j.fl
	fl.macLoop(j.lane)
	fl.mu.Lock()
	fl.exited++
	fl.cond.Broadcast()
	fl.mu.Unlock()
}

// flightState returns the layer's flight, building it on first use or
// after SetWriteState/SetSealPipeline invalidated it. Lane count is
// min(width, maxFlightRecords); width 0 means the macpipe pool width.
func (l *Layer) flightState() *flight {
	if l.fl != nil {
		return l.fl
	}
	width := l.sealWidth
	if width == 0 {
		width = macpipe.Width()
	}
	if width < 1 {
		width = 1
	}
	if width > maxFlightRecords {
		width = maxFlightRecords
	}
	fl := &flight{layer: l}
	fl.cond.L = &fl.mu
	fl.macs = make([]*sslcrypto.MAC, 1, width)
	fl.macs[0] = l.out.mac
	if l.out.mac != nil {
		for i := 1; i < width; i++ {
			fl.macs = append(fl.macs, l.out.mac.Clone())
		}
	}
	fl.jobs = make([]flightJob, len(fl.macs)-1)
	for i := range fl.jobs {
		fl.jobs[i] = flightJob{fl: fl, lane: i + 1}
	}
	fl.src = make([][]byte, maxFlightRecords)
	fl.bps = make([]*[]byte, maxFlightRecords)
	fl.iov = make([][]byte, 0, maxFlightRecords)
	fl.done = make([]bool, maxFlightRecords)
	fl.macStart = make([]time.Time, maxFlightRecords)
	fl.macDur = make([]time.Duration, maxFlightRecords)
	l.fl = fl
	return fl
}

// WriteFlight writes data of the given type through the flight
// pipeline, fragmenting without copying and flushing each window of up
// to maxFlightRecords records as one vectored write. It produces
// exactly the wire bytes WriteRecord would, with fewer transport
// writes; single-fragment payloads take the plain sealed-write path.
func (l *Layer) WriteFlight(typ ContentType, data []byte) error {
	if len(data) <= MaxFragment {
		return l.WriteRecord(typ, data)
	}
	const window = maxFlightRecords * MaxFragment
	for len(data) > 0 {
		win := len(data)
		if win > window {
			win = window
		}
		if err := l.writeFlight(typ, data[:win]); err != nil {
			return err
		}
		data = data[win:]
	}
	return nil
}

// writeFlight seals and flushes one window (≤ maxFlightRecords
// fragments).
func (l *Layer) writeFlight(typ ContentType, data []byte) error {
	n := (len(data) + MaxFragment - 1) / MaxFragment
	if n == 1 {
		return l.writeFragment(typ, data)
	}
	fl := l.flightState()
	fl.begin(typ, data, n, l.out.seq)

	// Dispatch helper lanes. Submit is non-blocking: a saturated pool
	// (or a single-core host) just means the seal loop MACs each
	// fragment itself, just in time — helpers accelerate the pipeline,
	// they are never needed for progress. Helpers beyond n-1 would
	// find nothing to claim.
	submitted := 0
	if fl.macs[0] != nil {
		for i := range fl.jobs {
			if submitted+1 >= n {
				break
			}
			if macpipe.Submit(&fl.jobs[i]) {
				submitted++
			}
		}
	}

	l.sealFlight(fl)

	// Join: every submitted job must sign out before the flight state
	// (buffers, cursors) can be reused or released.
	fl.mu.Lock()
	for fl.exited < submitted {
		fl.cond.Wait()
	}
	fl.mu.Unlock()

	err := l.flushFlight(fl)

	for i := 0; i < n; i++ {
		putSealBuf(fl.bps[i])
		fl.bps[i] = nil
		fl.src[i] = nil
	}
	fl.iov = fl.iov[:0]

	if err != nil {
		return err
	}
	l.Stats.Flights++
	l.Stats.FlightRecords += n
	l.Stats.RecordsWritten += n
	l.Stats.BytesWritten += len(data)
	if l.Probe != nil {
		for i := 0; i < n; i++ {
			size := MaxFragment
			if i == n-1 {
				size = len(data) - (n-1)*MaxFragment
			}
			l.Probe.RecordIO(true, false, size)
		}
	}
	return nil
}

// begin lays out one window: fragment sub-slices, sequence numbers,
// and a pooled seal buffer per record. When no MAC is armed the MAC
// phase is skipped entirely (every fragment starts done).
func (fl *flight) begin(typ ContentType, data []byte, n int, seq0 uint64) {
	fl.typ = byte(typ)
	fl.seq0 = seq0
	fl.n = n
	fl.next = 0
	fl.exited = 0
	for i := 0; i < n; i++ {
		lo := i * MaxFragment
		hi := lo + MaxFragment
		if hi > len(data) {
			hi = len(data)
		}
		fl.src[i] = data[lo:hi]
		fl.done[i] = false
		bp := sealPool.Get().(*[]byte)
		if cap(*bp) < sealBufCap {
			b := make([]byte, 0, sealBufCap)
			bp = &b
		}
		fl.bps[i] = bp
	}
	if fl.macs[0] == nil {
		for i := 0; i < n; i++ {
			fl.done[i] = true
		}
		fl.next = n
	}
}

// macLoop claims fragments from the shared cursor until the window is
// exhausted, running on a macpipe worker. Lane 0 (the caller's own
// MAC) is used by the seal loop's just-in-time claims instead.
func (fl *flight) macLoop(lane int) {
	for {
		fl.mu.Lock()
		i := fl.next
		if i >= fl.n {
			fl.mu.Unlock()
			return
		}
		fl.next++
		fl.mu.Unlock()
		fl.macOne(lane, i)
	}
}

// macOne computes fragment i's MAC on the given lane, writing it
// directly into the seal buffer at the post-payload offset. Timing
// stamps come from the probe bus (the spine owns every clock read) and
// are handed to the sealer for emission on the caller's goroutine.
func (fl *flight) macOne(lane, i int) {
	m := fl.macs[lane]
	bus := fl.layer.Probe
	src := fl.src[i]
	buf := (*fl.bps[i])[:cap(*fl.bps[i])]
	off := headerLen + len(src)
	start := bus.Stamp()
	m.AppendCompute(buf[off:off], fl.seq0+uint64(i), fl.typ, src)
	end := bus.Stamp()

	fl.mu.Lock()
	fl.macStart[i] = start
	fl.macDur[i] = end.Sub(start)
	fl.done[i] = true
	fl.cond.Broadcast()
	fl.mu.Unlock()
}

// sealFlight runs the cipher unit: for each fragment in sequence
// order, wait for its MAC, then encrypt payload‖MAC‖padding into the
// seal buffer. Whole payload blocks are encrypted straight out of the
// caller's buffer (EncryptTo), so plaintext bytes are copied at most
// once — and for stream ciphers, zero times outside the XOR itself.
func (l *Layer) sealFlight(fl *flight) {
	maclen := 0
	if l.out.mac != nil {
		maclen = l.out.mac.Size()
	}
	ec, _ := l.out.cipher.(suite.EncryptToCipher)
	for i := 0; i < fl.n; i++ {
		// Just-in-time claim: if no helper has taken fragment i yet,
		// MAC it here — the fragment is then hashed and encrypted
		// back-to-back while its bytes are cache-hot, exactly like the
		// sequential path. Only a fragment a running helper already
		// claimed is worth waiting for.
		fl.mu.Lock()
		if fl.next == i {
			fl.next = i + 1
			fl.mu.Unlock()
			fl.macOne(0, i)
		} else {
			for !fl.done[i] {
				fl.cond.Wait()
			}
			fl.mu.Unlock()
		}

		src := fl.src[i]
		plen := len(src)
		buf := (*fl.bps[i])[:cap(*fl.bps[i])]
		if maclen > 0 {
			l.Probe.RecordCryptoAt(OpMACCompute, l.macPrim, plen, fl.macStart[i], fl.macDur[i])
		}
		bodyLen := plen + maclen
		total := bodyLen
		body := buf[headerLen:]
		if l.out.active() {
			start := l.Probe.Stamp()
			if bs := l.out.cipher.BlockSize(); bs > 1 {
				padLen := bs - (bodyLen+1)%bs
				if padLen == bs {
					padLen = 0
				}
				total = bodyLen + padLen + 1
				for j := bodyLen; j < total; j++ {
					body[j] = byte(padLen)
				}
				if ec != nil {
					// Whole payload blocks straight from the caller's
					// buffer; the tail (payload remainder ‖ MAC ‖ pad)
					// is assembled in place and encrypted as the chain's
					// next blocks.
					nb := plen - plen%bs
					ec.EncryptTo(body[:nb], src[:nb])
					copy(body[nb:plen], src[nb:])
					l.out.cipher.Encrypt(body[nb:total])
				} else {
					copy(body[:plen], src)
					l.out.cipher.Encrypt(body[:total])
				}
			} else if ec != nil {
				// Stream/null: payload via the fused pass, then the MAC
				// region in place — keystream order is preserved.
				ec.EncryptTo(body[:plen], src)
				l.out.cipher.Encrypt(body[plen:bodyLen])
			} else {
				copy(body[:plen], src)
				l.out.cipher.Encrypt(body[:bodyLen])
			}
			l.Probe.RecordCrypto(OpCipherEncrypt, l.cipherPrim, total, start)
		} else {
			copy(body[:plen], src)
		}
		rec := buf[:headerLen+total]
		rec[0] = fl.typ
		binary.BigEndian.PutUint16(rec[1:], l.writeVersion())
		binary.BigEndian.PutUint16(rec[3:], uint16(total))
		fl.iov = append(fl.iov, rec)
	}
	l.out.seq = fl.seq0 + uint64(fl.n)
}

// flushFlight pushes the window's sealed records to the transport:
// one vectored write when the stream supports it, else one write per
// record (still half the legacy path's two).
func (l *Layer) flushFlight(fl *flight) error {
	if bw, ok := l.rw.(BuffersWriter); ok {
		_, err := bw.WriteBuffers(fl.iov)
		l.Stats.WriteCalls++
		return err
	}
	for _, rec := range fl.iov {
		l.Stats.WriteCalls++
		if _, err := l.rw.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
