// Package record implements the SSL 3.0 record layer: framing,
// fragmentation, MAC computation/verification, CBC padding, and
// encryption state management. Every byte of the paper's bulk data
// transfer phase flows through this layer — one MAC and one cipher
// pass per record, exactly the work the paper's crypto-engine sketch
// (Figure 6) wants to overlap.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"sslperf/internal/probe"
	"sslperf/internal/sslcrypto"
	"sslperf/internal/suite"
)

// ContentType is the record content type.
type ContentType byte

// SSLv3 record content types.
const (
	TypeChangeCipherSpec ContentType = 20
	TypeAlert            ContentType = 21
	TypeHandshake        ContentType = 22
	TypeApplicationData  ContentType = 23
)

// String names the content type.
func (t ContentType) String() string {
	switch t {
	case TypeChangeCipherSpec:
		return "change_cipher_spec"
	case TypeAlert:
		return "alert"
	case TypeHandshake:
		return "handshake"
	case TypeApplicationData:
		return "application_data"
	}
	return fmt.Sprintf("content_type(%d)", byte(t))
}

// Protocol wire versions.
const (
	// VersionSSL30 is SSL 3.0, the paper's protocol.
	VersionSSL30 uint16 = 0x0300
	// VersionTLS10 is TLS 1.0 (RFC 2246), the successor the paper's
	// background mentions; supported as an extension.
	VersionTLS10 uint16 = 0x0301
)

// Version is the SSL 3.0 wire version (kept as the package default).
const Version = VersionSSL30

// MaxFragment is the maximum plaintext fragment length (2^14).
const MaxFragment = 16384

// headerLen is the record header size: type(1) version(2) length(2).
const headerLen = 5

// Alert levels and descriptions (the subset SSLv3 defines that this
// library emits or interprets).
const (
	AlertLevelWarning = 1
	AlertLevelFatal   = 2

	AlertCloseNotify        = 0
	AlertUnexpectedMessage  = 10
	AlertBadRecordMAC       = 20
	AlertHandshakeFailure   = 40
	AlertNoCertificate      = 41
	AlertBadCertificate     = 42
	AlertCertificateExpired = 45
	AlertIllegalParameter   = 47
)

// AlertError is an alert surfaced as an error: either one the peer
// sent on the wire (Peer=true) or one this end synthesized on a local
// integrity failure (Peer=false — the bad-MAC/bad-padding cases,
// which the caller turns into an outbound bad_record_mac alert). The
// flag is what lets the failure taxonomy tell "the peer told us why"
// apart from "we caught corruption ourselves".
type AlertError struct {
	Level       byte
	Description byte
	Peer        bool
}

// AlertName returns the protocol name of an alert description code,
// or "alert(N)" for codes this library does not define. Telemetry
// uses it as a stable counter tag.
func AlertName(desc byte) string {
	name := map[byte]string{
		AlertCloseNotify:        "close_notify",
		AlertUnexpectedMessage:  "unexpected_message",
		AlertBadRecordMAC:       "bad_record_mac",
		AlertHandshakeFailure:   "handshake_failure",
		AlertNoCertificate:      "no_certificate",
		AlertBadCertificate:     "bad_certificate",
		AlertCertificateExpired: "certificate_expired",
		AlertIllegalParameter:   "illegal_parameter",
	}[desc]
	if name == "" {
		name = fmt.Sprintf("alert(%d)", desc)
	}
	return name
}

// Error renders the alert.
func (a *AlertError) Error() string {
	lvl := "warning"
	if a.Level == AlertLevelFatal {
		lvl = "fatal"
	}
	return fmt.Sprintf("ssl: %s alert: %s", lvl, AlertName(a.Description))
}

// ErrClosed is returned after a close_notify alert has been received.
var ErrClosed = errors.New("record: connection closed by close_notify")

// halfState is one direction's cryptographic state.
type halfState struct {
	cipher suite.RecordCipher
	mac    *sslcrypto.MAC
	seq    uint64
}

// active reports whether encryption is enabled in this direction.
func (h *halfState) active() bool { return h.cipher != nil }

// Stats counts record-layer activity for the experiments.
type Stats struct {
	RecordsRead    int
	RecordsWritten int
	BytesRead      int // plaintext payload bytes
	BytesWritten   int
	AlertsRead     int
	AlertsWritten  int

	// WriteCalls counts transport write operations issued (plain
	// Writes plus vectored flight flushes). WriteCalls/RecordsWritten
	// is the syscalls-per-record amortization: 2 on the legacy
	// header-then-body path, 1 after the contiguous-seal fix, and
	// 1/flight-width on the vectored flight path.
	WriteCalls int
	// Flights counts vectored flight flushes; FlightRecords the
	// records sealed through the flight pipeline.
	Flights       int
	FlightRecords int
}

// CryptoOp identifies a record-layer crypto operation for observers.
// It is the probe spine's RecordOp; the alias keeps the historical
// record-layer API intact.
type CryptoOp = probe.RecordOp

// Observable record-layer crypto operations.
const (
	OpCipherEncrypt = probe.OpCipherEncrypt
	OpCipherDecrypt = probe.OpCipherDecrypt
	OpMACCompute    = probe.OpMACCompute
	OpMACVerify     = probe.OpMACVerify
)

// A Layer frames records over an underlying stream. It is not safe
// for concurrent use; the ssl package serializes access.
type Layer struct {
	rw  io.ReadWriter
	in  halfState
	out halfState

	// Stats accumulates counts; read freely between operations.
	Stats Stats

	// Probe, when non-nil, is the instrumentation spine the layer
	// emits on: one timed KindRecordCrypto event per cipher/MAC pass
	// and one KindRecordIO event per record written (per fragment) or
	// successfully opened. Every stamp comes from the bus, so a nil
	// bus costs one pointer test per hook and zero clock reads.
	Probe *probe.Bus

	// cipherPrim/macPrim name the primitives behind the armed cipher
	// states ("RC4", "MD5", …); SetPrimitives installs them when the
	// handshake arms encryption. They live on the layer, not the bus,
	// so observer swaps (ssl.Conn.refreshBus) cannot lose them.
	cipherPrim string
	macPrim    string

	// version is the pinned protocol version; 0 means flexible
	// (accept SSL 3.0 or TLS 1.0, emit SSL 3.0) until the handshake
	// negotiates and pins one via SetProtocolVersion.
	version uint16

	readBuf [headerLen]byte

	// readScratch backs the record body handed to open; the payload
	// ReadRecord returns aliases it, which is what makes the read path
	// allocation-free per record (see ReadRecord's contract).
	readScratch []byte

	// sealWidth is the configured MAC-pipeline width for flight
	// sealing: 0 means auto (macpipe pool width), 1 forces sequential
	// sealing, >1 caps the helpers per flight. See SetSealPipeline.
	sealWidth int

	// fl holds the lazily-built per-layer flight state (fragment
	// table, MAC clones, iovec list); reused across WriteFlight calls
	// so steady-state flights allocate nothing.
	fl *flight
}

// sealBufCap is the capacity of a pooled seal buffer: the record
// header, a maximum-size fragment, and slack for the largest MAC plus
// block padding. Header and body live in one buffer so a sealed
// record is a single contiguous write — and a single iovec in a
// flight's vectored flush.
const sealBufCap = headerLen + MaxFragment + 64

// sealPool recycles outbound record buffers across connections: one
// seal needs header+payload+MAC+padding contiguous, and the buffer is
// dead as soon as the fragment hits the wire, so pooling removes the
// per-record allocation from the bulk-transfer write path. sync.Pool
// shards per P, so under parallel load this is effectively a per-CPU
// buffer pool.
var sealPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, sealBufCap)
		return &b
	},
}

// putSealBuf returns a seal buffer to the pool — unless appends grew
// it past the standard capacity, in which case it is dropped so a
// burst of oversized records cannot pin the growth fleet-wide (the
// pool would otherwise retain whatever the largest seal ever needed,
// forever, on every P).
func putSealBuf(bp *[]byte) {
	if cap(*bp) > sealBufCap {
		return
	}
	*bp = (*bp)[:0]
	sealPool.Put(bp)
}

// SetSealPipeline sets the MAC-pipeline width used by WriteFlight: 0
// selects the macpipe pool width (one lane per core), 1 disables
// parallel MAC computation (the flight path still coalesces writes),
// n > 1 caps the lanes a single flight uses. Changing the width
// between flights is safe; changing it mid-flight is not possible
// (the layer is not concurrent).
func (l *Layer) SetSealPipeline(width int) {
	if width < 0 {
		width = 0
	}
	l.sealWidth = width
	l.fl = nil // rebuild lanes on next flight
}

// SetProtocolVersion pins the record-layer protocol version after
// negotiation. Subsequent records are emitted with it and inbound
// records must match it.
func (l *Layer) SetProtocolVersion(v uint16) { l.version = v }

// ProtocolVersion reports the pinned version (0 when still flexible).
func (l *Layer) ProtocolVersion() uint16 { return l.version }

func (l *Layer) writeVersion() uint16 {
	if l.version == 0 {
		return VersionSSL30
	}
	return l.version
}

func (l *Layer) versionOK(v uint16) bool {
	if l.version != 0 {
		return v == l.version
	}
	return v == VersionSSL30 || v == VersionTLS10
}

// timeCrypto runs fn, reporting it on the probe bus when one is
// attached.
func (l *Layer) timeCrypto(op CryptoOp, prim string, n int, fn func()) {
	if l.Probe == nil {
		fn()
		return
	}
	start := l.Probe.Stamp()
	fn()
	l.Probe.RecordCrypto(op, prim, n, start)
}

// NewLayer wraps rw in a record layer with NULL security (the state
// before ChangeCipherSpec).
func NewLayer(rw io.ReadWriter) *Layer {
	return &Layer{rw: rw}
}

// SetPrimitives names the cipher and MAC primitives the armed states
// use ("RC4", "AES", …; "MD5", "SHA-1"), so RecordCrypto events carry
// per-primitive attribution. The handshake calls it alongside
// SetWriteState/SetReadState; both directions share one suite, so one
// pair covers the connection.
func (l *Layer) SetPrimitives(cipher, mac string) {
	l.cipherPrim, l.macPrim = cipher, mac
}

// SetWriteState installs the outbound cipher and MAC and resets the
// outbound sequence number; called when sending ChangeCipherSpec. Any
// flight state is invalidated — its lane MACs are clones of the old
// write MAC.
func (l *Layer) SetWriteState(c suite.RecordCipher, m *sslcrypto.MAC) {
	l.out = halfState{cipher: c, mac: m}
	l.fl = nil
}

// SetReadState installs the inbound cipher and MAC and resets the
// inbound sequence number; called when receiving ChangeCipherSpec.
func (l *Layer) SetReadState(c suite.RecordCipher, m *sslcrypto.MAC) {
	l.in = halfState{cipher: c, mac: m}
}

// WriteRecord sends data of the given type, fragmenting as needed.
func (l *Layer) WriteRecord(typ ContentType, data []byte) error {
	for first := true; first || len(data) > 0; first = false {
		n := len(data)
		if n > MaxFragment {
			n = MaxFragment
		}
		if err := l.writeFragment(typ, data[:n]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// writeFragment seals and sends one fragment as a single contiguous
// write: header ‖ payload ‖ MAC ‖ padding assembled in one pooled
// buffer — MAC appended in place, padding in place, cipher in place —
// so a steady-state seal performs zero heap allocations and one
// transport Write (the legacy path issued two: header then body,
// doubling the syscall count of every handshake record and small
// application write).
func (l *Layer) writeFragment(typ ContentType, payload []byte) (err error) {
	// Timing is inlined rather than routed through timeCrypto: the
	// closure a timeCrypto call would need captures the growing body
	// slice and forces a heap allocation per record. Stamp/RecordCrypto
	// are nil-receiver no-ops, so the probe-off path stays branch-only.
	bp := sealPool.Get().(*[]byte)
	buf := *bp
	// Worst case: header + payload + MAC + a full padding block. A
	// standard pooled buffer always suffices for payloads the record
	// layer fragments to; the guard keeps oversized callers safe.
	if need := headerLen + len(payload) + 64; cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	rec := buf[:headerLen]
	body := append(rec[headerLen:headerLen], payload...)
	if l.out.mac != nil {
		start := l.Probe.Stamp()
		body = l.out.mac.AppendCompute(body, l.out.seq, byte(typ), payload)
		l.Probe.RecordCrypto(OpMACCompute, l.macPrim, len(payload), start)
	}
	if l.out.active() {
		if bs := l.out.cipher.BlockSize(); bs > 1 {
			// Block padding: pad bytes then a count byte; total
			// length must be a block multiple. Every pad byte holds
			// the count, as TLS 1.0 requires (SSLv3 allows any
			// content, so this satisfies both).
			padLen := bs - (len(body)+1)%bs
			if padLen == bs {
				padLen = 0
			}
			for i := 0; i < padLen; i++ {
				body = append(body, byte(padLen))
			}
			body = append(body, byte(padLen))
		}
		start := l.Probe.Stamp()
		l.out.cipher.Encrypt(body)
		l.Probe.RecordCrypto(OpCipherEncrypt, l.cipherPrim, len(body), start)
	}
	rec = buf[:headerLen+len(body)]
	rec[0] = byte(typ)
	binary.BigEndian.PutUint16(rec[1:], l.writeVersion())
	binary.BigEndian.PutUint16(rec[3:], uint16(len(body)))
	_, err = l.rw.Write(rec)
	l.Stats.WriteCalls++
	*bp = buf[:0]
	putSealBuf(bp)
	if err != nil {
		return err
	}
	l.out.seq++
	l.Stats.RecordsWritten++
	l.Stats.BytesWritten += len(payload)
	if typ == TypeAlert {
		l.Stats.AlertsWritten++
	}
	l.Probe.RecordIO(true, typ == TypeAlert, len(payload))
	return nil
}

// ReadRecord reads and opens the next record, returning its type and
// plaintext payload. Alerts are surfaced as *AlertError (close_notify
// additionally returns ErrClosed on subsequent reads).
//
// The returned payload aliases the layer's internal scratch buffer and
// is valid only until the next ReadRecord call — callers that need it
// longer must copy. (The handshake message reader copies, and the ssl
// Conn drains its buffer before reading again, so within this stack
// the aliasing is free.)
func (l *Layer) ReadRecord() (ContentType, []byte, error) {
	if _, err := io.ReadFull(l.rw, l.readBuf[:]); err != nil {
		return 0, nil, err
	}
	typ := ContentType(l.readBuf[0])
	version := binary.BigEndian.Uint16(l.readBuf[1:])
	length := int(binary.BigEndian.Uint16(l.readBuf[3:]))
	if !l.versionOK(version) {
		return 0, nil, fmt.Errorf("record: unsupported version %#04x", version)
	}
	if length == 0 || length > MaxFragment+2048 {
		return 0, nil, fmt.Errorf("record: implausible record length %d", length)
	}
	if cap(l.readScratch) < length {
		l.readScratch = make([]byte, length)
	}
	body := l.readScratch[:length]
	if _, err := io.ReadFull(l.rw, body); err != nil {
		return 0, nil, err
	}
	payload, err := l.open(typ, body)
	if err != nil {
		return 0, nil, err
	}
	l.Stats.RecordsRead++
	l.Stats.BytesRead += len(payload)
	if typ == TypeAlert {
		l.Stats.AlertsRead++
	}
	l.Probe.RecordIO(false, typ == TypeAlert, len(payload))
	if typ == TypeAlert {
		if len(payload) != 2 {
			return 0, nil, errors.New("record: malformed alert")
		}
		return typ, payload, &AlertError{Level: payload[0], Description: payload[1], Peer: true}
	}
	return typ, payload, nil
}

// open decrypts, strips padding, and verifies the MAC of one record
// body in place.
func (l *Layer) open(typ ContentType, body []byte) ([]byte, error) {
	if !l.in.active() {
		if l.in.mac != nil {
			return l.checkMAC(typ, body)
		}
		l.in.seq++
		return body, nil
	}
	bs := l.in.cipher.BlockSize()
	if bs > 1 && len(body)%bs != 0 {
		return nil, errors.New("record: ciphertext not a block multiple")
	}
	l.timeCrypto(OpCipherDecrypt, l.cipherPrim, len(body), func() {
		l.in.cipher.Decrypt(body)
	})
	if bs > 1 {
		if len(body) == 0 {
			return nil, errors.New("record: empty block record")
		}
		padLen := int(body[len(body)-1])
		if padLen+1 > len(body) {
			return nil, &AlertError{Level: AlertLevelFatal, Description: AlertBadRecordMAC}
		}
		if l.version >= VersionTLS10 {
			// TLS 1.0: padding may span blocks and every pad byte
			// must equal the count.
			for _, b := range body[len(body)-padLen-1:] {
				if int(b) != padLen {
					return nil, &AlertError{Level: AlertLevelFatal, Description: AlertBadRecordMAC}
				}
			}
		} else if padLen >= bs {
			// SSLv3: padding must not exceed one block; content is
			// arbitrary.
			return nil, &AlertError{Level: AlertLevelFatal, Description: AlertBadRecordMAC}
		}
		body = body[:len(body)-padLen-1]
	}
	return l.checkMAC(typ, body)
}

func (l *Layer) checkMAC(typ ContentType, body []byte) ([]byte, error) {
	if l.in.mac == nil {
		l.in.seq++
		return body, nil
	}
	macLen := l.in.mac.Size()
	if len(body) < macLen {
		return nil, errors.New("record: record shorter than MAC")
	}
	payload, mac := body[:len(body)-macLen], body[len(body)-macLen:]
	var ok bool
	l.timeCrypto(OpMACVerify, l.macPrim, len(payload), func() {
		ok = l.in.mac.Verify(l.in.seq, byte(typ), payload, mac)
	})
	if !ok {
		return nil, &AlertError{Level: AlertLevelFatal, Description: AlertBadRecordMAC}
	}
	l.in.seq++
	return payload, nil
}

// SendAlert writes an alert record.
func (l *Layer) SendAlert(level, desc byte) error {
	return l.WriteRecord(TypeAlert, []byte{level, desc})
}

// SendClose sends a close_notify warning alert.
func (l *Layer) SendClose() error {
	return l.SendAlert(AlertLevelWarning, AlertCloseNotify)
}
