// Package record implements the SSL 3.0 record layer: framing,
// fragmentation, MAC computation/verification, CBC padding, and
// encryption state management. Every byte of the paper's bulk data
// transfer phase flows through this layer — one MAC and one cipher
// pass per record, exactly the work the paper's crypto-engine sketch
// (Figure 6) wants to overlap.
package record

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"sslperf/internal/probe"
	"sslperf/internal/sslcrypto"
	"sslperf/internal/suite"
)

// ContentType is the record content type.
type ContentType byte

// SSLv3 record content types.
const (
	TypeChangeCipherSpec ContentType = 20
	TypeAlert            ContentType = 21
	TypeHandshake        ContentType = 22
	TypeApplicationData  ContentType = 23
)

// String names the content type.
func (t ContentType) String() string {
	switch t {
	case TypeChangeCipherSpec:
		return "change_cipher_spec"
	case TypeAlert:
		return "alert"
	case TypeHandshake:
		return "handshake"
	case TypeApplicationData:
		return "application_data"
	}
	return fmt.Sprintf("content_type(%d)", byte(t))
}

// Protocol wire versions.
const (
	// VersionSSL30 is SSL 3.0, the paper's protocol.
	VersionSSL30 uint16 = 0x0300
	// VersionTLS10 is TLS 1.0 (RFC 2246), the successor the paper's
	// background mentions; supported as an extension.
	VersionTLS10 uint16 = 0x0301
)

// Version is the SSL 3.0 wire version (kept as the package default).
const Version = VersionSSL30

// MaxFragment is the maximum plaintext fragment length (2^14).
const MaxFragment = 16384

// headerLen is the record header size: type(1) version(2) length(2).
const headerLen = 5

// Alert levels and descriptions (the subset SSLv3 defines that this
// library emits or interprets).
const (
	AlertLevelWarning = 1
	AlertLevelFatal   = 2

	AlertCloseNotify        = 0
	AlertUnexpectedMessage  = 10
	AlertBadRecordMAC       = 20
	AlertHandshakeFailure   = 40
	AlertNoCertificate      = 41
	AlertBadCertificate     = 42
	AlertCertificateExpired = 45
	AlertIllegalParameter   = 47
)

// AlertError is an alert surfaced as an error: either one the peer
// sent on the wire (Peer=true) or one this end synthesized on a local
// integrity failure (Peer=false — the bad-MAC/bad-padding cases,
// which the caller turns into an outbound bad_record_mac alert). The
// flag is what lets the failure taxonomy tell "the peer told us why"
// apart from "we caught corruption ourselves".
type AlertError struct {
	Level       byte
	Description byte
	Peer        bool
}

// AlertName returns the protocol name of an alert description code,
// or "alert(N)" for codes this library does not define. Telemetry
// uses it as a stable counter tag.
func AlertName(desc byte) string {
	name := map[byte]string{
		AlertCloseNotify:        "close_notify",
		AlertUnexpectedMessage:  "unexpected_message",
		AlertBadRecordMAC:       "bad_record_mac",
		AlertHandshakeFailure:   "handshake_failure",
		AlertNoCertificate:      "no_certificate",
		AlertBadCertificate:     "bad_certificate",
		AlertCertificateExpired: "certificate_expired",
		AlertIllegalParameter:   "illegal_parameter",
	}[desc]
	if name == "" {
		name = fmt.Sprintf("alert(%d)", desc)
	}
	return name
}

// Error renders the alert.
func (a *AlertError) Error() string {
	lvl := "warning"
	if a.Level == AlertLevelFatal {
		lvl = "fatal"
	}
	return fmt.Sprintf("ssl: %s alert: %s", lvl, AlertName(a.Description))
}

// ErrClosed is returned after a close_notify alert has been received.
var ErrClosed = errors.New("record: connection closed by close_notify")

// halfState is one direction's cryptographic state.
type halfState struct {
	cipher suite.RecordCipher
	mac    *sslcrypto.MAC
	seq    uint64
}

// active reports whether encryption is enabled in this direction.
func (h *halfState) active() bool { return h.cipher != nil }

// Stats counts record-layer activity for the experiments.
type Stats struct {
	RecordsRead    int
	RecordsWritten int
	BytesRead      int // plaintext payload bytes
	BytesWritten   int
	AlertsRead     int
	AlertsWritten  int

	// WriteCalls counts transport write operations issued (plain
	// Writes plus vectored flight flushes). WriteCalls/RecordsWritten
	// is the syscalls-per-record amortization: 2 on the legacy
	// header-then-body path, 1 after the contiguous-seal fix, and
	// 1/flight-width on the vectored flight path.
	WriteCalls int
	// Flights counts vectored flight flushes; FlightRecords the
	// records sealed through the flight pipeline.
	Flights       int
	FlightRecords int
}

// CryptoOp identifies a record-layer crypto operation for observers.
// It is the probe spine's RecordOp; the alias keeps the historical
// record-layer API intact.
type CryptoOp = probe.RecordOp

// Observable record-layer crypto operations.
const (
	OpCipherEncrypt = probe.OpCipherEncrypt
	OpCipherDecrypt = probe.OpCipherDecrypt
	OpMACCompute    = probe.OpMACCompute
	OpMACVerify     = probe.OpMACVerify
)

// A Layer frames records over an underlying stream: the sans-IO Core
// (framing, MAC, padding, cipher state, sequence numbers) plus a thin
// blocking transport adapter. The embedded Core's fields — Stats,
// Probe — and state setters are promoted; Layer shadows ReadRecord
// and WriteRecord with transport-backed equivalents that share the
// Core's seal/open implementation, so the blocking and non-blocking
// paths emit identical wire bytes and probe events. Not safe for
// concurrent use; the ssl package serializes access.
type Layer struct {
	Core

	rw io.ReadWriter

	readBuf [headerLen]byte

	// readScratch backs the record body handed to open; the payload
	// ReadRecord returns aliases it, which is what makes the read path
	// allocation-free per record (see ReadRecord's contract).
	readScratch []byte

	// sealWidth is the configured MAC-pipeline width for flight
	// sealing: 0 means auto (macpipe pool width), 1 forces sequential
	// sealing, >1 caps the helpers per flight. See SetSealPipeline.
	sealWidth int

	// fl holds the lazily-built per-layer flight state (fragment
	// table, MAC clones, iovec list); reused across WriteFlight calls
	// so steady-state flights allocate nothing.
	fl *flight
}

// sealBufCap is the capacity of a pooled seal buffer: the record
// header, a maximum-size fragment, and slack for the largest MAC plus
// block padding. Header and body live in one buffer so a sealed
// record is a single contiguous write — and a single iovec in a
// flight's vectored flush.
const sealBufCap = headerLen + MaxFragment + 64

// sealPool recycles outbound record buffers across connections: one
// seal needs header+payload+MAC+padding contiguous, and the buffer is
// dead as soon as the fragment hits the wire, so pooling removes the
// per-record allocation from the bulk-transfer write path. sync.Pool
// shards per P, so under parallel load this is effectively a per-CPU
// buffer pool.
var sealPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, sealBufCap)
		return &b
	},
}

// putSealBuf returns a seal buffer to the pool — unless appends grew
// it past the standard capacity, in which case it is dropped so a
// burst of oversized records cannot pin the growth fleet-wide (the
// pool would otherwise retain whatever the largest seal ever needed,
// forever, on every P).
func putSealBuf(bp *[]byte) {
	if cap(*bp) > sealBufCap {
		return
	}
	*bp = (*bp)[:0]
	sealPool.Put(bp)
}

// SetSealPipeline sets the MAC-pipeline width used by WriteFlight: 0
// selects the macpipe pool width (one lane per core), 1 disables
// parallel MAC computation (the flight path still coalesces writes),
// n > 1 caps the lanes a single flight uses. Changing the width
// between flights is safe; changing it mid-flight is not possible
// (the layer is not concurrent).
func (l *Layer) SetSealPipeline(width int) {
	if width < 0 {
		width = 0
	}
	l.sealWidth = width
	l.fl = nil // rebuild lanes on next flight
}

// NewLayer wraps rw in a record layer with NULL security (the state
// before ChangeCipherSpec).
func NewLayer(rw io.ReadWriter) *Layer {
	return &Layer{rw: rw}
}

// SetWriteState installs the outbound cipher and MAC and resets the
// outbound sequence number; called when sending ChangeCipherSpec. Any
// flight state is invalidated — its lane MACs are clones of the old
// write MAC. (Shadows Core.SetWriteState, which has no flight.)
func (l *Layer) SetWriteState(c suite.RecordCipher, m *sslcrypto.MAC) {
	l.Core.SetWriteState(c, m)
	l.fl = nil
}

// WriteRecord sends data of the given type, fragmenting as needed.
// (Shadows Core.WriteRecord: each fragment goes straight to the
// transport instead of the outgoing buffer.)
func (l *Layer) WriteRecord(typ ContentType, data []byte) error {
	for first := true; first || len(data) > 0; first = false {
		n := len(data)
		if n > MaxFragment {
			n = MaxFragment
		}
		if err := l.writeFragment(typ, data[:n]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// writeFragment seals and sends one fragment as a single contiguous
// write: header ‖ payload ‖ MAC ‖ padding assembled in one pooled
// buffer by the Core's sealAppend — so a steady-state seal performs
// zero heap allocations and one transport Write (the legacy path
// issued two: header then body, doubling the syscall count of every
// handshake record and small application write). Sequence and stats
// commit only after the transport accepts the record.
func (l *Layer) writeFragment(typ ContentType, payload []byte) (err error) {
	bp := sealPool.Get().(*[]byte)
	// A standard pooled buffer always suffices for payloads the record
	// layer fragments to; sealAppend grows it for oversized callers
	// (and putSealBuf drops the growth rather than pin it pool-wide).
	rec := l.sealAppend((*bp)[:0], typ, payload)
	_, err = l.rw.Write(rec)
	l.Stats.WriteCalls++
	*bp = rec[:0]
	putSealBuf(bp)
	if err != nil {
		return err
	}
	l.commitWrite(typ, len(payload))
	return nil
}

// ReadRecord reads and opens the next record, returning its type and
// plaintext payload. Alerts are surfaced as *AlertError (close_notify
// additionally returns ErrClosed on subsequent reads). (Shadows
// Core.ReadRecord: blocks on the transport instead of returning
// ErrWouldBlock.)
//
// The returned payload aliases the layer's internal scratch buffer and
// is valid only until the next ReadRecord call — callers that need it
// longer must copy. (The handshake message reader copies, and the ssl
// Conn drains its buffer before reading again, so within this stack
// the aliasing is free.)
func (l *Layer) ReadRecord() (ContentType, []byte, error) {
	if _, err := io.ReadFull(l.rw, l.readBuf[:]); err != nil {
		return 0, nil, err
	}
	typ, length, err := l.parseHeader(l.readBuf[:])
	if err != nil {
		return 0, nil, err
	}
	if cap(l.readScratch) < length {
		l.readScratch = make([]byte, length)
	}
	body := l.readScratch[:length]
	if _, err := io.ReadFull(l.rw, body); err != nil {
		return 0, nil, err
	}
	payload, err := l.open(typ, body)
	if err != nil {
		return 0, nil, err
	}
	return l.finishRead(typ, payload)
}

// SendAlert writes an alert record. (Shadows Core.SendAlert so the
// alert reaches the transport, not the outgoing buffer.)
func (l *Layer) SendAlert(level, desc byte) error {
	return l.WriteRecord(TypeAlert, []byte{level, desc})
}

// SendClose sends a close_notify warning alert.
func (l *Layer) SendClose() error {
	return l.SendAlert(AlertLevelWarning, AlertCloseNotify)
}
