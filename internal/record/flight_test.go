package record

import (
	"bytes"
	"fmt"
	"io"
	"runtime/debug"
	"strings"
	"sync"
	"testing"

	"sslperf/internal/suite"
)

// vecBuffer is a bytes.Buffer that also accepts vectored writes,
// counting each kind so tests can assert flush behavior.
type vecBuffer struct {
	bytes.Buffer
	writes    int
	vecWrites int
}

func (v *vecBuffer) Write(p []byte) (int, error) {
	v.writes++
	return v.Buffer.Write(p)
}

func (v *vecBuffer) WriteBuffers(bufs [][]byte) (int64, error) {
	v.vecWrites++
	var n int64
	for _, b := range bufs {
		m, err := v.Buffer.Write(b)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// flightSender builds a sender layer armed for s writing into a
// vecBuffer, with the receiver to open what it writes.
func flightSender(t *testing.T, s *suite.Suite, width int) (*Layer, *Layer, *vecBuffer) {
	t.Helper()
	buf := &vecBuffer{}
	type rw struct {
		io.Reader
		io.Writer
	}
	sender := NewLayer(struct {
		io.Reader
		*vecBuffer
	}{Reader: strings.NewReader(""), vecBuffer: buf})
	receiver := NewLayer(rw{Reader: &buf.Buffer, Writer: io.Discard})
	arm(t, s, sender, receiver)
	sender.SetSealPipeline(width)
	return sender, receiver, buf
}

// payloadOf builds a deterministic test payload.
func payloadOf(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*7 + i>>9)
	}
	return p
}

// TestFlightWireEquivalence proves the tentpole's core invariant: for
// every suite and every pipeline width, WriteFlight puts byte-for-byte
// the same ciphertext on the wire as the sequential WriteRecord path
// from the same starting state — fragment boundaries, MACs, padding,
// keystream and IV chains all line up.
func TestFlightWireEquivalence(t *testing.T) {
	for _, s := range suite.All() {
		for _, width := range []int{1, 2, 4, 0} {
			sizes := []int{0, 1, MaxFragment, MaxFragment + 1, 3*MaxFragment + 77}
			if width == 0 {
				// The 1 MiB case (a full 64-record window) once per
				// suite, at the default width — the small sizes cover
				// the width axis without 3DES-ing a megabyte per combo.
				sizes = append(sizes, 1<<20)
			}
			t.Run(fmt.Sprintf("%s/width=%d", s.Name, width), func(t *testing.T) {
				seq, _, seqBuf := flightSender(t, s, width)
				vec, _, vecBuf := flightSender(t, s, width)
				for _, n := range sizes {
					data := payloadOf(n)
					if err := seq.WriteRecord(TypeApplicationData, data); err != nil {
						t.Fatal(err)
					}
					if err := vec.WriteFlight(TypeApplicationData, data); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(seqBuf.Bytes(), vecBuf.Bytes()) {
						t.Fatalf("size %d: flight wire bytes diverge from sequential path", n)
					}
				}
				if seq.Stats.RecordsWritten != vec.Stats.RecordsWritten {
					t.Fatalf("record counts diverge: %d vs %d",
						seq.Stats.RecordsWritten, vec.Stats.RecordsWritten)
				}
			})
		}
	}
}

// TestFlightRoundTrip sends flights through every suite and reads the
// records back, covering the window boundary (exactly one window, one
// byte over) and multi-window flights.
func TestFlightRoundTrip(t *testing.T) {
	window := maxFlightRecords * MaxFragment
	for _, s := range suite.All() {
		t.Run(s.Name, func(t *testing.T) {
			sizes := []int{MaxFragment + 1, window + 1}
			if s.Name == "RC4-MD5" || s.Name == "AES128-SHA" {
				// Exact-window and multi-window flights once per cipher
				// family; the boundary logic is suite-independent.
				sizes = append(sizes, window, 2*window+5)
			}
			sender, receiver, _ := flightSender(t, s, 0)
			for _, n := range sizes {
				data := payloadOf(n)
				if err := sender.WriteFlight(TypeApplicationData, data); err != nil {
					t.Fatal(err)
				}
				var got []byte
				for len(got) < n {
					typ, payload, err := receiver.ReadRecord()
					if err != nil {
						t.Fatalf("size %d: read: %v", n, err)
					}
					if typ != TypeApplicationData {
						t.Fatalf("size %d: unexpected type %v", n, typ)
					}
					got = append(got, payload...)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("size %d: payload corrupted in flight", n)
				}
			}
		})
	}
}

// TestFlightWriteCoalescing asserts the syscall story: a flight is one
// vectored write per window on a BuffersWriter transport, and the
// sequential path is one (not two) writes per record.
func TestFlightWriteCoalescing(t *testing.T) {
	s, _ := suite.ByName("RC4-MD5")
	sender, _, buf := flightSender(t, s, 0)
	window := maxFlightRecords * MaxFragment
	if err := sender.WriteFlight(TypeApplicationData, payloadOf(window+1)); err != nil {
		t.Fatal(err)
	}
	// One window of 64 records (vectored) plus the one-record tail
	// (plain write).
	if buf.vecWrites != 1 || buf.writes != 1 {
		t.Fatalf("got %d vectored + %d plain writes, want 1 + 1", buf.vecWrites, buf.writes)
	}
	if sender.Stats.WriteCalls != 2 {
		t.Fatalf("Stats.WriteCalls = %d, want 2", sender.Stats.WriteCalls)
	}
	if sender.Stats.RecordsWritten != maxFlightRecords+1 {
		t.Fatalf("RecordsWritten = %d, want %d", sender.Stats.RecordsWritten, maxFlightRecords+1)
	}
	if sender.Stats.Flights != 1 || sender.Stats.FlightRecords != maxFlightRecords {
		t.Fatalf("Flights = %d FlightRecords = %d, want 1 and %d",
			sender.Stats.Flights, sender.Stats.FlightRecords, maxFlightRecords)
	}

	// Non-vectored transport: the flight falls back to one write per
	// record — still half the legacy path's header+body pair.
	plain, _, _ := oneWay()
	arm(t, s, plain, NewLayer(struct {
		io.Reader
		io.Writer
	}{Reader: strings.NewReader(""), Writer: io.Discard}))
	if err := plain.WriteFlight(TypeApplicationData, payloadOf(3*MaxFragment)); err != nil {
		t.Fatal(err)
	}
	if plain.Stats.WriteCalls != 3 {
		t.Fatalf("fallback WriteCalls = %d, want 3 (one per record)", plain.Stats.WriteCalls)
	}
}

// TestFlightConcurrentLayers drives many layers' flights through the
// shared macpipe pool at once; under -race this is the proof that
// lane claiming, MAC clone isolation, and the join protocol are sound.
func TestFlightConcurrentLayers(t *testing.T) {
	s, _ := suite.ByName("AES128-SHA")
	const conns = 8
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		sender, receiver, _ := flightSender(t, s, 0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := payloadOf(5*MaxFragment + 123)
			for iter := 0; iter < 10; iter++ {
				if err := sender.WriteFlight(TypeApplicationData, data); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				var got int
				for got < len(data) {
					_, payload, err := receiver.ReadRecord()
					if err != nil {
						t.Errorf("read: %v", err)
						return
					}
					got += len(payload)
				}
			}
		}()
	}
	wg.Wait()
}

// TestFlightSteadyStateAllocs checks the flight path is allocation-
// free once warm (probes off): pooled seal buffers, reused flight
// state, pointer tasks into a prebuilt job table. GC is disabled so
// AllocsPerRun cannot observe sync.Pool eviction refills.
func TestFlightSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on sync paths")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	s, _ := suite.ByName("RC4-MD5")
	sender, _, _ := flightSender(t, s, 0)
	sink := &discardVec{}
	sender.rw = sink
	data := payloadOf(8 * MaxFragment)
	// Warm: build flight state, fill the seal pool.
	if err := sender.WriteFlight(TypeApplicationData, data); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := sender.WriteFlight(TypeApplicationData, data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("flight write allocates %.1f objects/op at steady state, want 0", allocs)
	}
}

// discardVec is /dev/null with a vectored entry point.
type discardVec struct{}

func (discardVec) Read(p []byte) (int, error)  { return 0, io.EOF }
func (discardVec) Write(p []byte) (int, error) { return len(p), nil }
func (discardVec) WriteBuffers(bufs [][]byte) (int64, error) {
	var n int64
	for _, b := range bufs {
		n += int64(len(b))
	}
	return n, nil
}

// FuzzFlightEquivalence fuzzes payload sizes (seeded with the
// fragment-boundary cases) and checks flight/sequential wire
// equivalence for a stream and a block suite.
func FuzzFlightEquivalence(f *testing.F) {
	for _, n := range []int{0, 1, MaxFragment, MaxFragment + 1, 1 << 20} {
		f.Add(n)
	}
	f.Fuzz(func(t *testing.T, n int) {
		if n < 0 || n > 1<<21 {
			t.Skip()
		}
		data := payloadOf(n)
		for _, name := range []string{"RC4-MD5", "AES128-SHA"} {
			s, _ := suite.ByName(name)
			seq, _, seqBuf := flightSender(t, s, 0)
			vec, _, vecBuf := flightSender(t, s, 0)
			if err := seq.WriteRecord(TypeApplicationData, data); err != nil {
				t.Fatal(err)
			}
			if err := vec.WriteFlight(TypeApplicationData, data); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(seqBuf.Bytes(), vecBuf.Bytes()) {
				t.Fatalf("%s: size %d: flight bytes diverge", name, n)
			}
		}
	})
}
