package record

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sslperf/internal/probe"
	"sslperf/internal/sslcrypto"
	"sslperf/internal/suite"
)

// ErrWouldBlock is the sans-IO sentinel: the core needs more wire
// bytes (Feed) before it can make progress. It is never wrapped — the
// handshake FSM and ssl.NonBlockingConn propagate it by identity, so
// callers test with ==/errors.Is and resume once more input arrives.
var ErrWouldBlock = errors.New("record: would block")

// Core is the pure framing/crypto half of the record layer: MAC,
// padding, encryption, sequence numbers, and record parsing over
// in-memory buffers, with no transport and no blocking. Wire bytes
// arrive via Feed and leave via Outgoing/ConsumeOutgoing; ReadRecord
// returns ErrWouldBlock — consuming nothing — when a full record has
// not yet been fed.
//
// Layer embeds Core and shadows ReadRecord/WriteRecord with blocking
// transport equivalents, so both share one implementation of the
// crypto state machine (same probe events, same stats, same errors).
// Core is not safe for concurrent use.
type Core struct {
	in  halfState
	out halfState

	// Stats accumulates counts; read freely between operations.
	Stats Stats

	// Probe, when non-nil, is the instrumentation spine the core
	// emits on: one timed KindRecordCrypto event per cipher/MAC pass
	// and one KindRecordIO event per record sealed or successfully
	// opened. Every stamp comes from the bus, so a nil bus costs one
	// pointer test per hook and zero clock reads.
	Probe *probe.Bus

	// cipherPrim/macPrim name the primitives behind the armed cipher
	// states ("RC4", "MD5", …); SetPrimitives installs them when the
	// handshake arms encryption. They live on the core, not the bus,
	// so observer swaps (ssl.Conn.refreshBus) cannot lose them.
	cipherPrim string
	macPrim    string

	// version is the pinned protocol version; 0 means flexible
	// (accept SSL 3.0 or TLS 1.0, emit SSL 3.0) until the handshake
	// negotiates and pins one via SetProtocolVersion.
	version uint16

	// incoming holds fed-but-unparsed wire bytes; inOff is the parse
	// cursor. Both reset when the buffer drains, so a conn that keeps
	// up reuses one allocation forever. Payloads returned by
	// ReadRecord alias incoming and stay valid only until the next
	// Feed (which compacts) — callers that need them longer copy.
	incoming []byte
	inOff    int

	// outgoing holds sealed-but-undelivered records; outOff is the
	// drain cursor (ConsumeOutgoing).
	outgoing []byte
	outOff   int
}

// NewCore returns a sans-IO record core with NULL security (the state
// before ChangeCipherSpec).
func NewCore() *Core { return &Core{} }

// ProbeBus returns the attached instrumentation bus (nil when off).
func (c *Core) ProbeBus() *probe.Bus { return c.Probe }

// SetProbe attaches the instrumentation bus.
func (c *Core) SetProbe(b *probe.Bus) { c.Probe = b }

// SetProtocolVersion pins the record-layer protocol version after
// negotiation. Subsequent records are emitted with it and inbound
// records must match it.
func (c *Core) SetProtocolVersion(v uint16) { c.version = v }

// ProtocolVersion reports the pinned version (0 when still flexible).
func (c *Core) ProtocolVersion() uint16 { return c.version }

func (c *Core) writeVersion() uint16 {
	if c.version == 0 {
		return VersionSSL30
	}
	return c.version
}

func (c *Core) versionOK(v uint16) bool {
	if c.version != 0 {
		return v == c.version
	}
	return v == VersionSSL30 || v == VersionTLS10
}

// SetPrimitives names the cipher and MAC primitives the armed states
// use ("RC4", "AES", …; "MD5", "SHA-1"), so RecordCrypto events carry
// per-primitive attribution. The handshake calls it alongside
// SetWriteState/SetReadState; both directions share one suite, so one
// pair covers the connection.
func (c *Core) SetPrimitives(cipher, mac string) {
	c.cipherPrim, c.macPrim = cipher, mac
}

// SetWriteState installs the outbound cipher and MAC and resets the
// outbound sequence number; called when sending ChangeCipherSpec.
func (c *Core) SetWriteState(ci suite.RecordCipher, m *sslcrypto.MAC) {
	c.out = halfState{cipher: ci, mac: m}
}

// SetReadState installs the inbound cipher and MAC and resets the
// inbound sequence number; called when receiving ChangeCipherSpec.
func (c *Core) SetReadState(ci suite.RecordCipher, m *sslcrypto.MAC) {
	c.in = halfState{cipher: ci, mac: m}
}

// timeCrypto runs fn, reporting it on the probe bus when one is
// attached.
func (c *Core) timeCrypto(op CryptoOp, prim string, n int, fn func()) {
	if c.Probe == nil {
		fn()
		return
	}
	start := c.Probe.Stamp()
	fn()
	c.Probe.RecordCrypto(op, prim, n, start)
}

// Feed appends wire bytes for the read side. Feeding compacts the
// incoming buffer, which invalidates any payload the previous
// ReadRecord returned — callers drain parsed records before feeding
// more (the ssl.NonBlockingConn contract).
func (c *Core) Feed(b []byte) {
	if c.inOff > 0 {
		n := copy(c.incoming, c.incoming[c.inOff:])
		c.incoming = c.incoming[:n]
		c.inOff = 0
	}
	c.incoming = append(c.incoming, b...)
}

// Buffered reports how many fed bytes await parsing.
func (c *Core) Buffered() int { return len(c.incoming) - c.inOff }

// Outgoing returns the sealed-but-undelivered wire bytes. The slice
// aliases the core's buffer: valid until the next WriteRecord or
// ConsumeOutgoing.
func (c *Core) Outgoing() []byte { return c.outgoing[c.outOff:] }

// ConsumeOutgoing marks n outgoing bytes as delivered. When the
// buffer drains completely it resets, so steady traffic reuses one
// allocation.
func (c *Core) ConsumeOutgoing(n int) {
	c.outOff += n
	if c.outOff >= len(c.outgoing) {
		c.outgoing = c.outgoing[:0]
		c.outOff = 0
	}
}

// parseHeader validates one record header (type ‖ version ‖ length),
// returning the content type and body length. Shared by the sans-IO
// and blocking read paths so both reject exactly the same inputs.
func (c *Core) parseHeader(hdr []byte) (ContentType, int, error) {
	typ := ContentType(hdr[0])
	version := binary.BigEndian.Uint16(hdr[1:])
	length := int(binary.BigEndian.Uint16(hdr[3:]))
	if !c.versionOK(version) {
		return 0, 0, fmt.Errorf("record: unsupported version %#04x", version)
	}
	if length == 0 || length > MaxFragment+2048 {
		return 0, 0, fmt.Errorf("record: implausible record length %d", length)
	}
	return typ, length, nil
}

// ReadRecord parses and opens the next record from the fed bytes,
// returning its type and plaintext payload. If a complete record has
// not been fed yet it returns ErrWouldBlock without consuming
// anything — feed more bytes and call again. Alerts are surfaced as
// *AlertError exactly as on the blocking path.
//
// The returned payload aliases the core's incoming buffer and is
// valid only until the next Feed — callers that need it longer copy.
func (c *Core) ReadRecord() (ContentType, []byte, error) {
	buf := c.incoming[c.inOff:]
	if len(buf) < headerLen {
		return 0, nil, ErrWouldBlock
	}
	typ, length, err := c.parseHeader(buf)
	if err != nil {
		return 0, nil, err
	}
	if len(buf) < headerLen+length {
		return 0, nil, ErrWouldBlock
	}
	payload, err := c.open(typ, buf[headerLen:headerLen+length])
	if err != nil {
		return 0, nil, err
	}
	c.inOff += headerLen + length
	if c.inOff == len(c.incoming) {
		c.incoming = c.incoming[:0]
		c.inOff = 0
	}
	return c.finishRead(typ, payload)
}

// finishRead is the shared post-open tail of both read paths: stats,
// the record-IO probe event, and alert surfacing.
func (c *Core) finishRead(typ ContentType, payload []byte) (ContentType, []byte, error) {
	c.Stats.RecordsRead++
	c.Stats.BytesRead += len(payload)
	if typ == TypeAlert {
		c.Stats.AlertsRead++
	}
	c.Probe.RecordIO(false, typ == TypeAlert, len(payload))
	if typ == TypeAlert {
		if len(payload) != 2 {
			return 0, nil, errors.New("record: malformed alert")
		}
		return typ, payload, &AlertError{Level: payload[0], Description: payload[1], Peer: true}
	}
	return typ, payload, nil
}

// sealAppend seals one fragment — header ‖ payload ‖ MAC ‖ padding,
// MAC appended in place, padding in place, cipher in place — onto the
// tail of buf and returns the grown slice. It emits the crypto probe
// events but does not commit sequence/stats; commitWrite does, once
// the record's delivery is assured (immediately on the sans-IO path,
// after the transport Write on the blocking path).
func (c *Core) sealAppend(buf []byte, typ ContentType, payload []byte) []byte {
	// Timing is inlined rather than routed through timeCrypto: the
	// closure a timeCrypto call would need captures the growing body
	// slice and forces a heap allocation per record. Stamp/RecordCrypto
	// are nil-receiver no-ops, so the probe-off path stays branch-only.
	//
	// Worst case: header + payload + MAC + a full padding block; the
	// up-front reservation keeps every later append in place.
	if need := len(buf) + headerLen + len(payload) + 64; cap(buf) < need {
		nb := make([]byte, len(buf), need)
		copy(nb, buf)
		buf = nb
	}
	base := len(buf)
	rec := buf[base : base+headerLen]
	body := append(buf[base+headerLen:base+headerLen], payload...)
	if c.out.mac != nil {
		start := c.Probe.Stamp()
		body = c.out.mac.AppendCompute(body, c.out.seq, byte(typ), payload)
		c.Probe.RecordCrypto(OpMACCompute, c.macPrim, len(payload), start)
	}
	if c.out.active() {
		if bs := c.out.cipher.BlockSize(); bs > 1 {
			// Block padding: pad bytes then a count byte; total
			// length must be a block multiple. Every pad byte holds
			// the count, as TLS 1.0 requires (SSLv3 allows any
			// content, so this satisfies both).
			padLen := bs - (len(body)+1)%bs
			if padLen == bs {
				padLen = 0
			}
			for i := 0; i < padLen; i++ {
				body = append(body, byte(padLen))
			}
			body = append(body, byte(padLen))
		}
		start := c.Probe.Stamp()
		c.out.cipher.Encrypt(body)
		c.Probe.RecordCrypto(OpCipherEncrypt, c.cipherPrim, len(body), start)
	}
	rec[0] = byte(typ)
	binary.BigEndian.PutUint16(rec[1:], c.writeVersion())
	binary.BigEndian.PutUint16(rec[3:], uint16(len(body)))
	return buf[:base+headerLen+len(body)]
}

// commitWrite advances the outbound sequence number and stats for one
// sealed fragment whose delivery is assured.
func (c *Core) commitWrite(typ ContentType, payloadLen int) {
	c.out.seq++
	c.Stats.RecordsWritten++
	c.Stats.BytesWritten += payloadLen
	if typ == TypeAlert {
		c.Stats.AlertsWritten++
	}
	c.Probe.RecordIO(true, typ == TypeAlert, payloadLen)
}

// WriteRecord seals data of the given type into the outgoing buffer,
// fragmenting as needed. It never blocks; the caller drains the bytes
// with Outgoing/ConsumeOutgoing. (Transport write accounting —
// Stats.WriteCalls — belongs to whoever flushes.)
func (c *Core) WriteRecord(typ ContentType, data []byte) error {
	for first := true; first || len(data) > 0; first = false {
		n := len(data)
		if n > MaxFragment {
			n = MaxFragment
		}
		c.outgoing = c.sealAppend(c.outgoing, typ, data[:n])
		c.commitWrite(typ, n)
		data = data[n:]
	}
	return nil
}

// open decrypts, strips padding, and verifies the MAC of one record
// body in place.
func (c *Core) open(typ ContentType, body []byte) ([]byte, error) {
	if !c.in.active() {
		if c.in.mac != nil {
			return c.checkMAC(typ, body)
		}
		c.in.seq++
		return body, nil
	}
	bs := c.in.cipher.BlockSize()
	if bs > 1 && len(body)%bs != 0 {
		return nil, errors.New("record: ciphertext not a block multiple")
	}
	c.timeCrypto(OpCipherDecrypt, c.cipherPrim, len(body), func() {
		c.in.cipher.Decrypt(body)
	})
	if bs > 1 {
		if len(body) == 0 {
			return nil, errors.New("record: empty block record")
		}
		padLen := int(body[len(body)-1])
		if padLen+1 > len(body) {
			return nil, &AlertError{Level: AlertLevelFatal, Description: AlertBadRecordMAC}
		}
		if c.version >= VersionTLS10 {
			// TLS 1.0: padding may span blocks and every pad byte
			// must equal the count.
			for _, b := range body[len(body)-padLen-1:] {
				if int(b) != padLen {
					return nil, &AlertError{Level: AlertLevelFatal, Description: AlertBadRecordMAC}
				}
			}
		} else if padLen >= bs {
			// SSLv3: padding must not exceed one block; content is
			// arbitrary.
			return nil, &AlertError{Level: AlertLevelFatal, Description: AlertBadRecordMAC}
		}
		body = body[:len(body)-padLen-1]
	}
	return c.checkMAC(typ, body)
}

func (c *Core) checkMAC(typ ContentType, body []byte) ([]byte, error) {
	if c.in.mac == nil {
		c.in.seq++
		return body, nil
	}
	macLen := c.in.mac.Size()
	if len(body) < macLen {
		return nil, errors.New("record: record shorter than MAC")
	}
	payload, mac := body[:len(body)-macLen], body[len(body)-macLen:]
	var ok bool
	c.timeCrypto(OpMACVerify, c.macPrim, len(payload), func() {
		ok = c.in.mac.Verify(c.in.seq, byte(typ), payload, mac)
	})
	if !ok {
		return nil, &AlertError{Level: AlertLevelFatal, Description: AlertBadRecordMAC}
	}
	c.in.seq++
	return payload, nil
}

// SendAlert seals an alert record into the outgoing buffer.
func (c *Core) SendAlert(level, desc byte) error {
	return c.WriteRecord(TypeAlert, []byte{level, desc})
}

// SendClose seals a close_notify warning alert.
func (c *Core) SendClose() error {
	return c.SendAlert(AlertLevelWarning, AlertCloseNotify)
}
