//go:build !race

package record

const raceEnabled = false
