package record

import (
	"bytes"
	"io"
	"testing"

	"sslperf/internal/suite"
)

// FuzzReadRecord feeds the record reader arbitrary wire bytes through
// both a NULL-security layer and a fully armed DES-CBC3-SHA layer; it
// must never panic and never return a payload longer than the record
// claimed.
func FuzzReadRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{22, 3, 0, 0, 1, 0})
	f.Add([]byte{23, 3, 1, 0, 4, 'd', 'a', 't', 'a'})
	f.Add([]byte{21, 3, 0, 0, 2, 2, 40})
	f.Add(bytes.Repeat([]byte{0x30}, 100))
	// A real sealed record as a mutation seed.
	seed := func() []byte {
		s, _ := suite.ByName("DES-CBC3-SHA")
		buf := &bytes.Buffer{}
		l := NewLayer(struct {
			io.Reader
			io.Writer
		}{Writer: buf})
		c, _ := s.NewCipher(make([]byte, 24), make([]byte, 8), true)
		m, _ := s.NewMAC(make([]byte, 20))
		l.SetWriteState(c, m)
		l.WriteRecord(TypeApplicationData, []byte("fuzz seed payload"))
		return buf.Bytes()
	}()
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, armed := range []bool{false, true} {
			l := NewLayer(struct {
				io.Reader
				io.Writer
			}{Reader: bytes.NewReader(data), Writer: io.Discard})
			if armed {
				s, _ := suite.ByName("DES-CBC3-SHA")
				c, _ := s.NewCipher(make([]byte, 24), make([]byte, 8), false)
				m, _ := s.NewMAC(make([]byte, 20))
				l.SetReadState(c, m)
			}
			for i := 0; i < 4; i++ { // read a few records if present
				_, payload, err := l.ReadRecord()
				if err != nil {
					break
				}
				if len(payload) > MaxFragment {
					t.Fatalf("payload of %d bytes exceeds max fragment", len(payload))
				}
			}
		}
	})
}
