package record

import (
	"bytes"
	"io"
	"testing"

	"sslperf/internal/suite"
)

// benchArm installs matching cipher/MAC state for one direction
// without a testing.T (the benchmark twin of arm).
func benchArm(b *testing.B, s *suite.Suite, sender, receiver *Layer) {
	b.Helper()
	key := make([]byte, s.KeyLen)
	iv := make([]byte, s.IVLen)
	macSecret := make([]byte, s.MACLen())
	for i := range key {
		key[i] = byte(i + 1)
	}
	for i := range iv {
		iv[i] = byte(i + 7)
	}
	for i := range macSecret {
		macSecret[i] = byte(i + 13)
	}
	wc, err := s.NewCipher(key, iv, true)
	if err != nil {
		b.Fatal(err)
	}
	rc, err := s.NewCipher(key, iv, false)
	if err != nil {
		b.Fatal(err)
	}
	wm, err := s.NewMAC(macSecret)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := s.NewMAC(macSecret)
	if err != nil {
		b.Fatal(err)
	}
	sender.SetWriteState(wc, wm)
	receiver.SetReadState(rc, rm)
}

// BenchmarkRecordSeal measures the outbound hot path — MAC, pad,
// encrypt, frame — for a full-size record. With the pooled seal
// buffer this is the allocation-free path the paper's bulk-transfer
// phase (Table 2 steps 6/8) runs per record; -benchmem shows the
// allocs/op drop from the pre-pool make-per-record seal.
func BenchmarkRecordSeal(b *testing.B) {
	for _, name := range []string{"RC4-MD5", "DES-CBC3-SHA"} {
		b.Run(name, func(b *testing.B) {
			s, err := suite.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			type rw struct {
				io.Reader
				io.Writer
			}
			sender := NewLayer(rw{Writer: io.Discard})
			receiver := NewLayer(rw{})
			benchArm(b, s, sender, receiver)
			payload := make([]byte, MaxFragment)
			for i := range payload {
				payload[i] = byte(i)
			}
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sender.WriteRecord(TypeApplicationData, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecordOpen measures the inbound path: read, decrypt,
// unpad, verify. The receiver reuses its scratch buffer, so the
// steady state is likewise allocation-free.
func BenchmarkRecordOpen(b *testing.B) {
	for _, name := range []string{"RC4-MD5", "DES-CBC3-SHA"} {
		b.Run(name, func(b *testing.B) {
			s, err := suite.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			buf := &bytes.Buffer{}
			type rw struct {
				io.Reader
				io.Writer
			}
			sender := NewLayer(rw{Writer: buf})
			receiver := NewLayer(rw{Reader: buf})
			benchArm(b, s, sender, receiver)
			payload := make([]byte, MaxFragment)
			for i := range payload {
				payload[i] = byte(i)
			}
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				buf.Reset()
				if err := sender.WriteRecord(TypeApplicationData, payload); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, _, err := receiver.ReadRecord(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
