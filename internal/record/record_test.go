package record

import (
	"bytes"
	"io"
	"sslperf/internal/probe"
	"strings"
	"testing"

	"sslperf/internal/sslcrypto"
	"sslperf/internal/suite"
)

// oneWay builds a sender and receiver layer sharing one buffer.
func oneWay() (*Layer, *Layer, *bytes.Buffer) {
	buf := &bytes.Buffer{}
	type rw struct {
		io.Reader
		io.Writer
	}
	sender := NewLayer(rw{Reader: strings.NewReader(""), Writer: buf})
	receiver := NewLayer(rw{Reader: buf, Writer: io.Discard})
	return sender, receiver, buf
}

// arm installs matching cipher/MAC state for one direction.
func arm(t *testing.T, s *suite.Suite, sender, receiver *Layer) {
	t.Helper()
	key := make([]byte, s.KeyLen)
	iv := make([]byte, s.IVLen)
	macSecret := make([]byte, s.MACLen())
	for i := range key {
		key[i] = byte(i + 1)
	}
	for i := range iv {
		iv[i] = byte(i + 7)
	}
	for i := range macSecret {
		macSecret[i] = byte(i + 13)
	}
	wc, err := s.NewCipher(key, iv, true)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := s.NewCipher(key, iv, false)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := s.NewMAC(macSecret)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := s.NewMAC(macSecret)
	if err != nil {
		t.Fatal(err)
	}
	sender.SetWriteState(wc, wm)
	receiver.SetReadState(rc, rm)
}

func TestPlaintextRoundTrip(t *testing.T) {
	sender, receiver, _ := oneWay()
	msg := []byte("hello, handshake")
	if err := sender.WriteRecord(TypeHandshake, msg); err != nil {
		t.Fatal(err)
	}
	typ, got, err := receiver.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeHandshake || !bytes.Equal(got, msg) {
		t.Fatalf("got %v %q", typ, got)
	}
}

func TestAllSuitesRoundTrip(t *testing.T) {
	for _, s := range suite.All() {
		t.Run(s.Name, func(t *testing.T) {
			sender, receiver, _ := oneWay()
			arm(t, s, sender, receiver)
			for i, msg := range [][]byte{
				[]byte("first record"),
				[]byte(""),
				bytes.Repeat([]byte{0xab}, 1000),
				[]byte("x"),
			} {
				if err := sender.WriteRecord(TypeApplicationData, msg); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
				typ, got, err := receiver.ReadRecord()
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if typ != TypeApplicationData || !bytes.Equal(got, msg) {
					t.Fatalf("record %d corrupted", i)
				}
			}
		})
	}
}

func TestCiphertextActuallyEncrypted(t *testing.T) {
	s, _ := suite.ByName("DES-CBC3-SHA")
	sender, _, buf := oneWay()
	recv := NewLayer(struct {
		io.Reader
		io.Writer
	}{Reader: buf, Writer: io.Discard})
	arm(t, s, sender, recv)
	secret := []byte("very secret plaintext payload!")
	if err := sender.WriteRecord(TypeApplicationData, secret); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), secret) {
		t.Fatal("plaintext visible on the wire")
	}
}

func TestFragmentation(t *testing.T) {
	sender, receiver, _ := oneWay()
	s, _ := suite.ByName("RC4-MD5")
	arm(t, s, sender, receiver)
	big := make([]byte, MaxFragment*2+100)
	for i := range big {
		big[i] = byte(i)
	}
	if err := sender.WriteRecord(TypeApplicationData, big); err != nil {
		t.Fatal(err)
	}
	var got []byte
	for len(got) < len(big) {
		typ, chunk, err := receiver.ReadRecord()
		if err != nil {
			t.Fatal(err)
		}
		if typ != TypeApplicationData {
			t.Fatalf("type %v", typ)
		}
		if len(chunk) > MaxFragment {
			t.Fatalf("fragment of %d bytes exceeds max", len(chunk))
		}
		got = append(got, chunk...)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("reassembly mismatch")
	}
	if receiver.Stats.RecordsRead != 3 {
		t.Fatalf("expected 3 records, read %d", receiver.Stats.RecordsRead)
	}
}

func TestTamperedRecordRejected(t *testing.T) {
	s, _ := suite.ByName("AES128-SHA")
	sender, _, buf := oneWay()
	recv := NewLayer(struct {
		io.Reader
		io.Writer
	}{Reader: buf, Writer: io.Discard})
	arm(t, s, sender, recv)
	if err := sender.WriteRecord(TypeApplicationData, []byte("do not touch")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0x80 // flip a ciphertext bit
	_, _, err := recv.ReadRecord()
	if err == nil {
		t.Fatal("tampered record accepted")
	}
	if ae, ok := err.(*AlertError); ok && ae.Description != AlertBadRecordMAC {
		t.Fatalf("unexpected alert: %v", err)
	}
}

func TestReplayRejected(t *testing.T) {
	// Delivering the same ciphertext twice must fail the second time:
	// the MAC binds the sequence number.
	s, _ := suite.ByName("RC4-SHA")
	buf := &bytes.Buffer{}
	sender := NewLayer(struct {
		io.Reader
		io.Writer
	}{Reader: strings.NewReader(""), Writer: buf})
	recv := NewLayer(struct {
		io.Reader
		io.Writer
	}{Reader: buf, Writer: io.Discard})
	arm(t, s, sender, recv)
	if err := sender.WriteRecord(TypeApplicationData, []byte("once")); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte{}, buf.Bytes()...)
	if _, _, err := recv.ReadRecord(); err != nil {
		t.Fatal(err)
	}
	buf.Write(wire) // replay
	if _, _, err := recv.ReadRecord(); err == nil {
		t.Fatal("replayed record accepted")
	}
}

func TestAlertSurfacing(t *testing.T) {
	sender, receiver, _ := oneWay()
	if err := sender.SendAlert(AlertLevelFatal, AlertHandshakeFailure); err != nil {
		t.Fatal(err)
	}
	typ, _, err := receiver.ReadRecord()
	if typ != TypeAlert {
		t.Fatalf("type %v", typ)
	}
	ae, ok := err.(*AlertError)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if ae.Level != AlertLevelFatal || ae.Description != AlertHandshakeFailure {
		t.Fatalf("alert = %+v", ae)
	}
	if !strings.Contains(ae.Error(), "handshake_failure") {
		t.Fatalf("alert text: %s", ae.Error())
	}
}

func TestCloseNotify(t *testing.T) {
	sender, receiver, _ := oneWay()
	if err := sender.SendClose(); err != nil {
		t.Fatal(err)
	}
	_, _, err := receiver.ReadRecord()
	ae, ok := err.(*AlertError)
	if !ok || ae.Description != AlertCloseNotify || ae.Level != AlertLevelWarning {
		t.Fatalf("err = %v", err)
	}
}

func TestVersionHandling(t *testing.T) {
	mk := func(wire []byte) *Layer {
		return NewLayer(struct {
			io.Reader
			io.Writer
		}{Reader: bytes.NewReader(wire), Writer: io.Discard})
	}
	tls10Rec := []byte{byte(TypeHandshake), 0x03, 0x01, 0x00, 0x01, 0x00}
	ssl30Rec := []byte{byte(TypeHandshake), 0x03, 0x00, 0x00, 0x01, 0x00}
	ssl2Rec := []byte{byte(TypeHandshake), 0x02, 0x00, 0x00, 0x01, 0x00}

	// A flexible (pre-negotiation) layer accepts both modern versions.
	if _, _, err := mk(tls10Rec).ReadRecord(); err != nil {
		t.Fatalf("flexible layer rejected TLS 1.0: %v", err)
	}
	if _, _, err := mk(ssl30Rec).ReadRecord(); err != nil {
		t.Fatalf("flexible layer rejected SSL 3.0: %v", err)
	}
	if _, _, err := mk(ssl2Rec).ReadRecord(); err == nil {
		t.Fatal("flexible layer accepted SSLv2")
	}
	// Once pinned, the other version is rejected.
	pinned := mk(tls10Rec)
	pinned.SetProtocolVersion(VersionSSL30)
	if _, _, err := pinned.ReadRecord(); err == nil {
		t.Fatal("pinned SSL3 layer accepted TLS record")
	}
	if pinned.ProtocolVersion() != VersionSSL30 {
		t.Fatal("ProtocolVersion not reported")
	}
	// And the pinned version is emitted on the wire.
	out := &bytes.Buffer{}
	send := NewLayer(struct {
		io.Reader
		io.Writer
	}{Reader: bytes.NewReader(nil), Writer: out})
	send.SetProtocolVersion(VersionTLS10)
	send.WriteRecord(TypeApplicationData, []byte("x"))
	if out.Bytes()[1] != 0x03 || out.Bytes()[2] != 0x01 {
		t.Fatalf("wire version = %x", out.Bytes()[1:3])
	}
}

func TestRejectsTruncatedRecord(t *testing.T) {
	buf := &bytes.Buffer{}
	buf.Write([]byte{byte(TypeHandshake), 0x03, 0x00, 0x00, 0x10, 0xaa}) // claims 16 bytes
	recv := NewLayer(struct {
		io.Reader
		io.Writer
	}{Reader: buf, Writer: io.Discard})
	if _, _, err := recv.ReadRecord(); err == nil {
		t.Fatal("accepted truncated record")
	}
}

func TestStatsCount(t *testing.T) {
	sender, receiver, _ := oneWay()
	payload := []byte("count me")
	sender.WriteRecord(TypeApplicationData, payload)
	receiver.ReadRecord()
	if sender.Stats.RecordsWritten != 1 || sender.Stats.BytesWritten != len(payload) {
		t.Fatalf("sender stats %+v", sender.Stats)
	}
	if receiver.Stats.RecordsRead != 1 || receiver.Stats.BytesRead != len(payload) {
		t.Fatalf("receiver stats %+v", receiver.Stats)
	}
}

func TestContentTypeString(t *testing.T) {
	if TypeApplicationData.String() != "application_data" {
		t.Fatal("String wrong")
	}
	if !strings.Contains(ContentType(99).String(), "99") {
		t.Fatal("unknown type string wrong")
	}
}

func TestMACKeyMismatchRejected(t *testing.T) {
	s, _ := suite.ByName("NULL-SHA")
	buf := &bytes.Buffer{}
	sender := NewLayer(struct {
		io.Reader
		io.Writer
	}{Reader: strings.NewReader(""), Writer: buf})
	recv := NewLayer(struct {
		io.Reader
		io.Writer
	}{Reader: buf, Writer: io.Discard})
	wm, _ := sslcrypto.NewMAC(sslcrypto.MACSHA1, bytes.Repeat([]byte{1}, 20))
	rm, _ := sslcrypto.NewMAC(sslcrypto.MACSHA1, bytes.Repeat([]byte{2}, 20))
	wc, _ := s.NewCipher(nil, nil, true)
	rc, _ := s.NewCipher(nil, nil, false)
	sender.SetWriteState(wc, wm)
	recv.SetReadState(rc, rm)
	sender.WriteRecord(TypeApplicationData, []byte("mismatch"))
	if _, _, err := recv.ReadRecord(); err == nil {
		t.Fatal("accepted record with wrong MAC key")
	}
}

// TestProbeRecordIOAndAlertCounters checks the probe spine sees every
// framed record with its payload size and that alert traffic is
// counted separately.
func TestProbeRecordIOAndAlertCounters(t *testing.T) {
	sender, receiver, _ := oneWay()
	type obs struct {
		written bool
		alert   bool
		n       int
	}
	collect := func(dst *[]obs) *probe.Bus {
		return probe.NewBus(probe.SinkFunc(func(e probe.Event) {
			if e.Kind == probe.KindRecordIO {
				*dst = append(*dst, obs{e.Written, e.Alert, e.Bytes})
			}
		}))
	}
	var sent, recv []obs
	sender.Probe = collect(&sent)
	receiver.Probe = collect(&recv)

	payload := bytes.Repeat([]byte{0xAB}, MaxFragment+10) // forces 2 fragments
	if err := sender.WriteRecord(TypeApplicationData, payload); err != nil {
		t.Fatal(err)
	}
	if err := sender.SendAlert(AlertLevelWarning, AlertCloseNotify); err != nil {
		t.Fatal(err)
	}
	if len(sent) != 3 || !sent[0].written || sent[0].n != MaxFragment ||
		sent[1].n != 10 || !sent[2].alert || sent[2].n != 2 {
		t.Fatalf("sent observations = %+v", sent)
	}
	if sender.Stats.AlertsWritten != 1 || sender.Stats.RecordsWritten != 3 {
		t.Fatalf("sender stats = %+v", sender.Stats)
	}

	for i := 0; i < 2; i++ {
		if _, _, err := receiver.ReadRecord(); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := receiver.ReadRecord() // the alert surfaces as an error
	if ae, ok := err.(*AlertError); !ok || ae.Description != AlertCloseNotify {
		t.Fatalf("expected close_notify alert, got %v", err)
	}
	if len(recv) != 3 || recv[0].written || recv[0].alert || !recv[2].alert {
		t.Fatalf("recv observations = %+v", recv)
	}
	if receiver.Stats.AlertsRead != 1 || receiver.Stats.RecordsRead != 3 {
		t.Fatalf("receiver stats = %+v", receiver.Stats)
	}
}

// TestAlertName covers known and unknown codes.
func TestAlertName(t *testing.T) {
	if got := AlertName(AlertBadRecordMAC); got != "bad_record_mac" {
		t.Fatalf("AlertName = %q", got)
	}
	if got := AlertName(99); got != "alert(99)" {
		t.Fatalf("AlertName(99) = %q", got)
	}
}
