//go:build race

package record

// raceEnabled reports that the race detector is instrumenting this
// build; its runtime allocates on synchronization paths, so
// allocation-count assertions only hold without it.
const raceEnabled = true
