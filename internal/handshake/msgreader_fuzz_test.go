package handshake

import (
	"bytes"
	"testing"

	"sslperf/internal/record"
)

// The incremental msgReader is the seam the sans-IO refactor opened:
// it must make identical progress no matter how the wire bytes are
// chunked into Core.Feed, suspend with ErrWouldBlock (never block,
// never consume twice) on short input, and reject malformed streams
// without panicking. The fuzz seeds pin the shapes called out in the
// refactor: feed splits at offsets 0, 1, and len-1, a truncated final
// record, and an alert record interleaved between handshake records.

// fuzzWire builds the canned stream: two handshake messages packed so
// that the first spans a record boundary and the second rides the
// tail of the second record — the two reassembly cases.
func fuzzWire() (wire []byte, want [][]byte) {
	msg := func(typ byte, body []byte) []byte {
		m := []byte{typ, byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))}
		return append(m, body...)
	}
	rec := func(payload []byte) []byte {
		h := []byte{byte(record.TypeHandshake), 3, 0,
			byte(len(payload) >> 8), byte(len(payload))}
		return append(h, payload...)
	}
	m1 := msg(1, bytes.Repeat([]byte{0xaa}, 50))
	m2 := msg(2, bytes.Repeat([]byte{0xbb}, 7))
	stream := append(append([]byte(nil), m1...), m2...)
	wire = append(rec(stream[:20]), rec(stream[20:])...)
	return wire, [][]byte{m1, m2}
}

func FuzzMsgReaderIncremental(f *testing.F) {
	wire, _ := fuzzWire()
	f.Add(0, 0, 0, false)           // everything in one feed
	f.Add(1, 0, 0, false)           // split after the first header byte
	f.Add(len(wire)-1, 0, 0, false) // all but the last byte, then the rest
	f.Add(5, 25, 0, false)          // splits at the record boundaries
	f.Add(0, 0, 3, false)           // truncated final record: 3 bytes cut
	f.Add(0, 0, 1, false)           // truncated by a single byte
	f.Add(25, 0, 0, true)           // alert interleaved between the records
	f.Add(1, 2, 0, true)            // alert plus tiny leading chunks
	f.Fuzz(func(t *testing.T, splitA, splitB, cut int, alert bool) {
		wire, want := fuzzWire()
		if alert {
			// Insert a warning alert between the two handshake records
			// (first record = 5 header + 20 payload bytes).
			al := []byte{byte(record.TypeAlert), 3, 0, 0, 2,
				record.AlertLevelWarning, 90}
			w := append([]byte(nil), wire[:25]...)
			w = append(w, al...)
			wire = append(w, wire[25:]...)
		}
		if cut < 0 {
			cut = -cut
		}
		cut %= len(wire)
		wire = wire[:len(wire)-cut]
		norm := func(v int) int {
			if v < 0 {
				v = -v
			}
			return v % (len(wire) + 1)
		}
		a, b := norm(splitA), norm(splitB)
		if a > b {
			a, b = b, a
		}
		chunks := [][]byte{wire[:a], wire[a:b], wire[b:]}

		core := record.NewCore()
		r := newMsgReader(core)
		var got [][]byte
		var terminal error
		fed := 0
		for terminal == nil && len(got) <= len(want) {
			typ, raw, err := r.next()
			switch {
			case err == nil:
				if len(raw) < 4 || raw[0] != typ {
					t.Fatalf("inconsistent message: type %d raw %x", typ, raw)
				}
				got = append(got, raw)
			case err == ErrWouldBlock:
				if fed == len(chunks) {
					// Starved: only legal when the stream was truncated
					// or we already have everything we expected.
					if cut == 0 && len(got) < len(want) {
						t.Fatalf("blocked with full stream fed, got %d/%d messages",
							len(got), len(want))
					}
					terminal = err
					break
				}
				core.Feed(chunks[fed])
				fed++
			default:
				terminal = err
			}
		}

		if !alert && cut == 0 {
			// Intact pure-handshake stream: chunking must not matter.
			if len(got) != len(want) {
				t.Fatalf("got %d messages, want %d (terminal: %v)", len(got), len(want), terminal)
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("message %d mismatch:\n got %x\nwant %x", i, got[i], want[i])
				}
			}
		}
		if alert && cut == 0 && len(got) > 1 {
			// The alert sits before the second record; fill() must have
			// surfaced it (as *record.AlertError) rather than silently
			// skipping to the second handshake message.
			t.Fatalf("interleaved alert swallowed; read %d messages", len(got))
		}
	})
}

// readCCS must be just as re-entrant: a ChangeCipherSpec record
// arriving byte-by-byte suspends without consuming until complete.
func TestMsgReaderCCSByteAtATime(t *testing.T) {
	core := record.NewCore()
	r := newMsgReader(core)
	ccs := []byte{byte(record.TypeChangeCipherSpec), 3, 0, 0, 1, 1}
	for _, b := range ccs {
		if err := r.readCCS(); err != ErrWouldBlock {
			t.Fatalf("partial CCS: want ErrWouldBlock, got %v", err)
		}
		core.Feed([]byte{b})
	}
	if err := r.readCCS(); err != nil {
		t.Fatalf("complete CCS: %v", err)
	}
}
