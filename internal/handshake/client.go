package handshake

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"sslperf/internal/dh"
	"sslperf/internal/record"
	"sslperf/internal/rsa"
	"sslperf/internal/sslcrypto"
	"sslperf/internal/suite"
	"sslperf/internal/x509lite"
)

// ClientConfig holds the client-side handshake parameters.
type ClientConfig struct {
	Rand   io.Reader
	Suites []suite.ID // offered suites in preference order; nil = all
	Time   func() time.Time

	// Version is the protocol version to offer: record.VersionSSL30
	// (the default, the paper's protocol) or record.VersionTLS10.
	Version uint16

	// Session, when non-nil, is offered for resumption.
	Session *Session

	// RootCert, when non-nil, must have signed the server's
	// certificate. When nil together with InsecureSkipVerify=false,
	// the server certificate must be self-signed and valid.
	RootCert *x509lite.Certificate

	// InsecureSkipVerify disables certificate validation (the
	// standalone-measurement configuration).
	InsecureSkipVerify bool

	// ServerName, when set, must match the certificate subject CN.
	ServerName string
}

func (c *ClientConfig) version() uint16 {
	if c.Version == 0 {
		return record.VersionSSL30
	}
	return c.Version
}

func (c *ClientConfig) now() time.Time {
	if c.Time != nil {
		return c.Time()
	}
	return time.Now() // lint:allow-clock — config default, not a hot-path stamp
}

func (c *ClientConfig) offered() []suite.ID {
	if c.Suites != nil {
		return c.Suites
	}
	all := suite.All()
	out := make([]suite.ID, len(all))
	for i, s := range all {
		out[i] = s.ID
	}
	return out
}

// Client runs the client side of the SSLv3 handshake over l, leaving
// l armed with the negotiated bulk cipher in both directions.
func Client(l *record.Layer, cfg *ClientConfig) (*Result, error) {
	if cfg.Rand == nil {
		return nil, errors.New("handshake: client needs a randomness source")
	}
	c := &clientState{layer: l, cfg: cfg, msgs: newMsgReader(l)}
	res, err := c.run()
	if err != nil {
		l.SendAlert(record.AlertLevelFatal, record.AlertHandshakeFailure)
		return nil, err
	}
	return res, nil
}

type clientState struct {
	layer *record.Layer
	cfg   *ClientConfig
	msgs  *msgReader

	fin          *sslcrypto.FinishedHash
	version      uint16
	clientRandom [RandomLen]byte
	serverHello  serverHelloMsg
	suite        *suite.Suite
	master       []byte
	keys         connKeys
	resumed      bool
}

func (c *clientState) run() (*Result, error) {
	c.fin = sslcrypto.NewFinishedHash()

	// ClientHello offers the configured version; the record layer
	// stays flexible until the ServerHello pins the negotiated one.
	offered := c.cfg.version()
	hello := clientHelloMsg{
		version:      offered,
		cipherSuites: c.cfg.offered(),
		compressions: []byte{0},
	}
	if err := fillRandom(c.cfg.Rand, c.clientRandom[:], c.cfg.now()); err != nil {
		return nil, err
	}
	hello.random = c.clientRandom
	if c.cfg.Session != nil {
		hello.sessionID = c.cfg.Session.ID
	}
	rawHello := hello.marshal()
	c.fin.Write(rawHello)
	if err := c.layer.WriteRecord(record.TypeHandshake, rawHello); err != nil {
		return nil, err
	}

	// ServerHello.
	msgType, raw, err := c.msgs.next()
	if err != nil {
		return nil, err
	}
	if msgType != typeServerHello {
		return nil, fmt.Errorf("handshake: expected ServerHello, got type %d", msgType)
	}
	if err := c.serverHello.unmarshal(raw[4:]); err != nil {
		return nil, err
	}
	c.fin.Write(raw)
	if c.serverHello.version < record.VersionSSL30 || c.serverHello.version > offered {
		return nil, fmt.Errorf("handshake: server version %#04x", c.serverHello.version)
	}
	c.version = c.serverHello.version
	c.layer.SetProtocolVersion(c.version)
	c.suite, err = suite.ByID(c.serverHello.cipherSuite)
	if err != nil {
		return nil, err
	}

	// Resumption: the server echoes our offered session id.
	if c.cfg.Session != nil && len(c.cfg.Session.ID) > 0 &&
		bytes.Equal(c.serverHello.sessionID, c.cfg.Session.ID) {
		c.resumed = true
		c.master = append([]byte(nil), c.cfg.Session.Master...)
		if c.suite.ID != c.cfg.Session.Suite {
			return nil, errors.New("handshake: resumed session changed cipher suite")
		}
		if c.cfg.Session.Version != 0 && c.cfg.Session.Version != c.version {
			return nil, errors.New("handshake: resumed session changed protocol version")
		}
		if err := c.finishResumed(); err != nil {
			return nil, err
		}
	} else {
		if err := c.finishFull(); err != nil {
			return nil, err
		}
	}

	return &Result{
		Suite:   c.suite,
		Resumed: c.resumed,
		Session: &Session{
			ID:      append([]byte(nil), c.serverHello.sessionID...),
			Suite:   c.suite.ID,
			Master:  append([]byte(nil), c.master...),
			Version: c.version,
		},
	}, nil
}

// finishFull handles certificate, key exchange, and the finished
// exchange of a full handshake.
func (c *clientState) finishFull() error {
	// Certificate.
	msgType, raw, err := c.msgs.next()
	if err != nil {
		return err
	}
	if msgType != typeCertificate {
		return fmt.Errorf("handshake: expected Certificate, got type %d", msgType)
	}
	var certMsg certificateMsg
	if err := certMsg.unmarshal(raw[4:]); err != nil {
		return err
	}
	c.fin.Write(raw)
	cert, err := x509lite.Parse(certMsg.certificates[0])
	if err != nil {
		return err
	}
	if err := c.verifyCert(cert, certMsg.certificates[1:]); err != nil {
		return err
	}

	// For DHE suites the server sends its signed ephemeral
	// parameters before ServerHelloDone.
	var ske *serverKeyExchangeMsg
	msgType, raw, err = c.msgs.next()
	if err != nil {
		return err
	}
	if c.suite.Kx == suite.KxDHERSA {
		if msgType != typeServerKeyExchange {
			return fmt.Errorf("handshake: expected ServerKeyExchange, got type %d", msgType)
		}
		ske = &serverKeyExchangeMsg{}
		if err := ske.unmarshal(raw[4:]); err != nil {
			return err
		}
		c.fin.Write(raw)
		digest := skeDigest(c.clientRandom[:], c.serverHello.random[:], ske.paramBytes())
		if err := cert.PublicKey.VerifyPKCS1(rsa.HashMD5SHA1, digest, ske.sig); err != nil {
			return fmt.Errorf("handshake: ServerKeyExchange signature: %w", err)
		}
		if msgType, raw, err = c.msgs.next(); err != nil {
			return err
		}
	}

	// ServerHelloDone (certificate request is not sent: clients are
	// not authenticated, as in the paper's setup).
	if msgType != typeServerHelloDone {
		return fmt.Errorf("handshake: expected ServerHelloDone, got type %d", msgType)
	}
	c.fin.Write(raw)

	// ClientKeyExchange.
	var preMaster []byte
	var rawCkx []byte
	if c.suite.Kx == suite.KxDHERSA {
		params := &dh.Params{P: newIntFromBytes(ske.p), G: newIntFromBytes(ske.g)}
		key, err := dh.GenerateKey(c.cfg.Rand, params)
		if err != nil {
			return err
		}
		preMaster, err = key.SharedSecret(newIntFromBytes(ske.y))
		if err != nil {
			return err
		}
		key.Cleanse()
		ckx := clientDHPublicMsg{y: key.Y.Bytes()}
		rawCkx = ckx.marshal()
	} else {
		// RSA: encrypt a fresh pre-master prefixed with the OFFERED
		// version (the rollback check of SSLv3 §5.6.7).
		preMaster = make([]byte, sslcrypto.PreMasterLen)
		preMaster[0] = byte(c.cfg.version() >> 8)
		preMaster[1] = byte(c.cfg.version())
		if _, err := io.ReadFull(c.cfg.Rand, preMaster[2:]); err != nil {
			return err
		}
		encrypted, err := cert.PublicKey.EncryptPKCS1(c.cfg.Rand, preMaster)
		if err != nil {
			return err
		}
		if c.version >= record.VersionTLS10 {
			// TLS wraps the ciphertext in a 2-byte length.
			rawCkx = marshalMsg(typeClientKeyExchange, appendOpaque16(nil, encrypted))
		} else {
			ckx := clientKeyExchangeMsg{encryptedPreMaster: encrypted}
			rawCkx = ckx.marshal()
		}
	}
	c.fin.Write(rawCkx)
	if err := c.layer.WriteRecord(record.TypeHandshake, rawCkx); err != nil {
		return err
	}

	c.master = deriveMaster(c.version, preMaster, c.clientRandom[:], c.serverHello.random[:])
	for i := range preMaster {
		preMaster[i] = 0
	}
	c.keys = sliceKeyBlock(c.version, c.suite, c.master, c.clientRandom[:], c.serverHello.random[:])

	// CCS + client Finished under the new keys.
	if err := c.sendCCSAndFinished(); err != nil {
		return err
	}
	// Server CCS + Finished.
	return c.readCCSAndFinished()
}

// finishResumed handles the short tail: server sends CCS+Finished
// first, then the client responds.
func (c *clientState) finishResumed() error {
	c.keys = sliceKeyBlock(c.version, c.suite, c.master, c.clientRandom[:], c.serverHello.random[:])
	if err := c.readCCSAndFinished(); err != nil {
		return err
	}
	return c.sendCCSAndFinished()
}

// verifyCert validates the leaf and, when intermediates are present,
// walks the chain: leaf signed by intermediates[0], each intermediate
// signed by the next, the last signed by the trusted root.
func (c *clientState) verifyCert(cert *x509lite.Certificate, intermediates [][]byte) error {
	if c.cfg.InsecureSkipVerify {
		return nil
	}
	now := c.cfg.now()
	if !cert.ValidAt(now) {
		return errors.New("handshake: server certificate expired or not yet valid")
	}
	if c.cfg.ServerName != "" && cert.SubjectCN != c.cfg.ServerName {
		return fmt.Errorf("handshake: certificate CN %q does not match %q",
			cert.SubjectCN, c.cfg.ServerName)
	}
	if c.cfg.RootCert == nil {
		return cert.CheckSignature(cert.PublicKey) // self-signed
	}
	current := cert
	for i, der := range intermediates {
		inter, err := x509lite.Parse(der)
		if err != nil {
			return fmt.Errorf("handshake: intermediate %d: %w", i, err)
		}
		if !inter.ValidAt(now) {
			return fmt.Errorf("handshake: intermediate %d expired", i)
		}
		if err := current.CheckSignatureFrom(inter); err != nil {
			return fmt.Errorf("handshake: chain link %d: %w", i, err)
		}
		current = inter
	}
	return current.CheckSignatureFrom(c.cfg.RootCert)
}

func (c *clientState) sendCCSAndFinished() error {
	if err := c.layer.WriteRecord(record.TypeChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	if err := armWrite(c.version, c.layer, c.suite, c.keys.clientKey, c.keys.clientIV, c.keys.clientMAC); err != nil {
		return err
	}
	verify := verifyDataFor(c.version, c.fin, true, c.master)
	msg := finishedMsg{verify: verify}
	raw := msg.marshal()
	c.fin.Write(raw)
	return c.layer.WriteRecord(record.TypeHandshake, raw)
}

func (c *clientState) readCCSAndFinished() error {
	if err := c.msgs.readCCS(); err != nil {
		return err
	}
	if err := armRead(c.version, c.layer, c.suite, c.keys.serverKey, c.keys.serverIV, c.keys.serverMAC); err != nil {
		return err
	}
	expected := verifyDataFor(c.version, c.fin, false, c.master)
	msgType, raw, err := c.msgs.next()
	if err != nil {
		return err
	}
	if msgType != typeFinished {
		return fmt.Errorf("handshake: expected Finished, got type %d", msgType)
	}
	var fin finishedMsg
	if err := fin.unmarshal(raw[4:], finishedLenFor(c.version)); err != nil {
		return err
	}
	if !bytes.Equal(fin.verify, expected) {
		return errors.New("handshake: server finished verification failed")
	}
	c.fin.Write(raw)
	return nil
}
