package handshake

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"sslperf/internal/dh"
	"sslperf/internal/record"
	"sslperf/internal/rsa"
	"sslperf/internal/sslcrypto"
	"sslperf/internal/suite"
	"sslperf/internal/x509lite"
)

// ClientConfig holds the client-side handshake parameters.
type ClientConfig struct {
	Rand   io.Reader
	Suites []suite.ID // offered suites in preference order; nil = all
	Time   func() time.Time

	// Version is the protocol version to offer: record.VersionSSL30
	// (the default, the paper's protocol) or record.VersionTLS10.
	Version uint16

	// Session, when non-nil, is offered for resumption.
	Session *Session

	// RootCert, when non-nil, must have signed the server's
	// certificate. When nil together with InsecureSkipVerify=false,
	// the server certificate must be self-signed and valid.
	RootCert *x509lite.Certificate

	// InsecureSkipVerify disables certificate validation (the
	// standalone-measurement configuration).
	InsecureSkipVerify bool

	// ServerName, when set, must match the certificate subject CN.
	ServerName string
}

func (c *ClientConfig) version() uint16 {
	if c.Version == 0 {
		return record.VersionSSL30
	}
	return c.Version
}

func (c *ClientConfig) now() time.Time {
	if c.Time != nil {
		return c.Time()
	}
	return time.Now() // lint:allow-clock — config default, not a hot-path stamp
}

func (c *ClientConfig) offered() []suite.ID {
	if c.Suites != nil {
		return c.Suites
	}
	all := suite.All()
	out := make([]suite.ID, len(all))
	for i, s := range all {
		out[i] = s.ID
	}
	return out
}

// cliPhase enumerates the client FSM's resumable states; the same
// one-suspension-point discipline as srvPhase applies (the only read
// is at a phase's head, so re-entry after WouldBlock repeats no
// work).
type cliPhase int

const (
	cliSendHello cliPhase = iota
	cliServerHello
	cliCertificate
	cliPostCert
	cliServerDone
	cliSendKX
	cliResumedKeys
	cliServerCCS
	cliServerFinished
	cliSendFinal
	cliDone
)

// Client runs the client side of the SSLv3 handshake over l, leaving
// l armed with the negotiated bulk cipher in both directions. It is
// the blocking wrapper over ClientFSM: the layer's reads park in the
// transport, so one Step call runs the machine to completion.
func Client(l *record.Layer, cfg *ClientConfig) (*Result, error) {
	fsm, err := NewClientFSM(l, cfg)
	if err != nil {
		return nil, err
	}
	if err := fsm.Step(); err != nil {
		return nil, err
	}
	return fsm.Result(), nil
}

// ClientFSM is the resumable client handshake; see ServerFSM for the
// Step contract (ErrWouldBlock / nil / sticky terminal error with a
// queued fatal alert).
type ClientFSM struct {
	c *clientState
}

// NewClientFSM validates the configuration, returning a machine
// parked before the ClientHello.
func NewClientFSM(conn RecordConn, cfg *ClientConfig) (*ClientFSM, error) {
	if cfg.Rand == nil {
		return nil, errors.New("handshake: client needs a randomness source")
	}
	c := &clientState{conn: conn, cfg: cfg, msgs: newMsgReader(conn)}
	return &ClientFSM{c: c}, nil
}

// Step advances the machine; see ServerFSM.Step.
func (f *ClientFSM) Step() error { return f.c.step() }

// Done reports whether the handshake completed successfully.
func (f *ClientFSM) Done() bool { return f.c.phase == cliDone && f.c.err == nil }

// Result returns the completed handshake's outcome, or nil before
// Done.
func (f *ClientFSM) Result() *Result { return f.c.res }

type clientState struct {
	conn RecordConn
	cfg  *ClientConfig
	msgs *msgReader

	phase cliPhase
	err   error // sticky terminal error
	res   *Result

	fin          *sslcrypto.FinishedHash
	version      uint16
	clientRandom [RandomLen]byte
	serverHello  serverHelloMsg
	suite        *suite.Suite
	master       []byte
	keys         connKeys
	resumed      bool

	// cert is the parsed server leaf; ske the DHE parameters — both
	// carried across phases (the key exchange needs them after the
	// reads that produced them).
	cert *x509lite.Certificate
	ske  *serverKeyExchangeMsg

	// expected is the precomputed server finished verify data (the
	// same resume-without-repeating-crypto split as the server's).
	expected []byte
}

// step is the FSM driver. The client has no probe bus (only the
// server side is the paper's measured party), so the driver is the
// bare phase loop.
func (c *clientState) step() error {
	if c.err != nil {
		return c.err
	}
	if c.phase == cliDone {
		return nil
	}
	for {
		err := c.runPhase()
		if err == ErrWouldBlock {
			return err
		}
		if err != nil {
			c.err = err
			// Best effort: tell the peer before failing.
			c.conn.SendAlert(record.AlertLevelFatal, record.AlertHandshakeFailure)
			return err
		}
		if c.phase == cliDone {
			return nil
		}
	}
}

// runPhase executes the current phase's slice of work, advancing
// c.phase on success.
func (c *clientState) runPhase() error {
	switch c.phase {
	case cliSendHello:
		if err := c.sendHello(); err != nil {
			return err
		}
		c.phase = cliServerHello

	case cliServerHello:
		if err := c.readServerHello(); err != nil {
			return err
		}
		if c.resumed {
			c.phase = cliResumedKeys
		} else {
			c.phase = cliCertificate
		}

	case cliCertificate:
		if err := c.readCertificate(); err != nil {
			return err
		}
		c.phase = cliPostCert

	case cliPostCert:
		// For DHE suites the server sends its signed ephemeral
		// parameters before ServerHelloDone; for RSA suites the next
		// message is ServerHelloDone itself.
		msgType, raw, err := c.msgs.next()
		if err != nil {
			return err
		}
		if c.suite.Kx == suite.KxDHERSA {
			if err := c.readServerKeyExchange(msgType, raw); err != nil {
				return err
			}
			c.phase = cliServerDone
		} else {
			if err := c.readServerDone(msgType, raw); err != nil {
				return err
			}
			c.phase = cliSendKX
		}

	case cliServerDone:
		msgType, raw, err := c.msgs.next()
		if err != nil {
			return err
		}
		if err := c.readServerDone(msgType, raw); err != nil {
			return err
		}
		c.phase = cliSendKX

	case cliSendKX:
		// ClientKeyExchange, then CCS + client Finished under the new
		// keys — all writes, no suspension point.
		if err := c.sendKeyExchange(); err != nil {
			return err
		}
		if err := c.sendCCSAndFinished(); err != nil {
			return err
		}
		c.phase = cliServerCCS

	case cliResumedKeys:
		c.keys = sliceKeyBlock(c.version, c.suite, c.master, c.clientRandom[:], c.serverHello.random[:])
		c.phase = cliServerCCS

	case cliServerCCS:
		// Server CCS: arm the read state and precompute the expected
		// server finished hashes.
		if err := c.msgs.readCCS(); err != nil {
			return err
		}
		if err := armRead(c.version, c.conn, c.suite, c.keys.serverKey, c.keys.serverIV, c.keys.serverMAC); err != nil {
			return err
		}
		c.expected = verifyDataFor(c.version, c.fin, false, c.master)
		c.phase = cliServerFinished

	case cliServerFinished:
		if err := c.verifyServerFinished(); err != nil {
			return err
		}
		if c.resumed {
			// Resumed sessions respond with the client's CCS+Finished
			// after the server's.
			c.phase = cliSendFinal
		} else {
			c.finish()
			c.phase = cliDone
		}

	case cliSendFinal:
		if err := c.sendCCSAndFinished(); err != nil {
			return err
		}
		c.finish()
		c.phase = cliDone
	}
	return nil
}

// finish records the completed handshake's outcome.
func (c *clientState) finish() {
	c.res = &Result{
		Suite:   c.suite,
		Resumed: c.resumed,
		Session: &Session{
			ID:      append([]byte(nil), c.serverHello.sessionID...),
			Suite:   c.suite.ID,
			Master:  append([]byte(nil), c.master...),
			Version: c.version,
		},
	}
}

// sendHello builds and sends the ClientHello. The record layer stays
// flexible until the ServerHello pins the negotiated version.
func (c *clientState) sendHello() error {
	c.fin = sslcrypto.NewFinishedHash()
	hello := clientHelloMsg{
		version:      c.cfg.version(),
		cipherSuites: c.cfg.offered(),
		compressions: []byte{0},
	}
	if err := fillRandom(c.cfg.Rand, c.clientRandom[:], c.cfg.now()); err != nil {
		return err
	}
	hello.random = c.clientRandom
	if c.cfg.Session != nil {
		hello.sessionID = c.cfg.Session.ID
	}
	rawHello := hello.marshal()
	c.fin.Write(rawHello)
	return c.conn.WriteRecord(record.TypeHandshake, rawHello)
}

func (c *clientState) readServerHello() error {
	msgType, raw, err := c.msgs.next()
	if err != nil {
		return err
	}
	if msgType != typeServerHello {
		return fmt.Errorf("handshake: expected ServerHello, got type %d", msgType)
	}
	if err := c.serverHello.unmarshal(raw[4:]); err != nil {
		return err
	}
	c.fin.Write(raw)
	offered := c.cfg.version()
	if c.serverHello.version < record.VersionSSL30 || c.serverHello.version > offered {
		return fmt.Errorf("handshake: server version %#04x", c.serverHello.version)
	}
	c.version = c.serverHello.version
	c.conn.SetProtocolVersion(c.version)
	if c.suite, err = suite.ByID(c.serverHello.cipherSuite); err != nil {
		return err
	}

	// Resumption: the server echoes our offered session id.
	if c.cfg.Session != nil && len(c.cfg.Session.ID) > 0 &&
		bytes.Equal(c.serverHello.sessionID, c.cfg.Session.ID) {
		c.resumed = true
		c.master = append([]byte(nil), c.cfg.Session.Master...)
		if c.suite.ID != c.cfg.Session.Suite {
			return errors.New("handshake: resumed session changed cipher suite")
		}
		if c.cfg.Session.Version != 0 && c.cfg.Session.Version != c.version {
			return errors.New("handshake: resumed session changed protocol version")
		}
	}
	return nil
}

func (c *clientState) readCertificate() error {
	msgType, raw, err := c.msgs.next()
	if err != nil {
		return err
	}
	if msgType != typeCertificate {
		return fmt.Errorf("handshake: expected Certificate, got type %d", msgType)
	}
	var certMsg certificateMsg
	if err := certMsg.unmarshal(raw[4:]); err != nil {
		return err
	}
	c.fin.Write(raw)
	cert, err := x509lite.Parse(certMsg.certificates[0])
	if err != nil {
		return err
	}
	if err := c.verifyCert(cert, certMsg.certificates[1:]); err != nil {
		return err
	}
	c.cert = cert
	return nil
}

func (c *clientState) readServerKeyExchange(msgType byte, raw []byte) error {
	if msgType != typeServerKeyExchange {
		return fmt.Errorf("handshake: expected ServerKeyExchange, got type %d", msgType)
	}
	ske := &serverKeyExchangeMsg{}
	if err := ske.unmarshal(raw[4:]); err != nil {
		return err
	}
	c.fin.Write(raw)
	digest := skeDigest(c.clientRandom[:], c.serverHello.random[:], ske.paramBytes())
	if err := c.cert.PublicKey.VerifyPKCS1(rsa.HashMD5SHA1, digest, ske.sig); err != nil {
		return fmt.Errorf("handshake: ServerKeyExchange signature: %w", err)
	}
	c.ske = ske
	return nil
}

func (c *clientState) readServerDone(msgType byte, raw []byte) error {
	// ServerHelloDone (certificate request is not sent: clients are
	// not authenticated, as in the paper's setup).
	if msgType != typeServerHelloDone {
		return fmt.Errorf("handshake: expected ServerHelloDone, got type %d", msgType)
	}
	c.fin.Write(raw)
	return nil
}

// sendKeyExchange builds and sends the ClientKeyExchange and derives
// the master secret and key block.
func (c *clientState) sendKeyExchange() error {
	var preMaster []byte
	var rawCkx []byte
	if c.suite.Kx == suite.KxDHERSA {
		params := &dh.Params{P: newIntFromBytes(c.ske.p), G: newIntFromBytes(c.ske.g)}
		key, err := dh.GenerateKey(c.cfg.Rand, params)
		if err != nil {
			return err
		}
		preMaster, err = key.SharedSecret(newIntFromBytes(c.ske.y))
		if err != nil {
			return err
		}
		key.Cleanse()
		ckx := clientDHPublicMsg{y: key.Y.Bytes()}
		rawCkx = ckx.marshal()
	} else {
		// RSA: encrypt a fresh pre-master prefixed with the OFFERED
		// version (the rollback check of SSLv3 §5.6.7).
		preMaster = make([]byte, sslcrypto.PreMasterLen)
		preMaster[0] = byte(c.cfg.version() >> 8)
		preMaster[1] = byte(c.cfg.version())
		if _, err := io.ReadFull(c.cfg.Rand, preMaster[2:]); err != nil { // lint:allow-read — randomness source, not the transport
			return err
		}
		encrypted, err := c.cert.PublicKey.EncryptPKCS1(c.cfg.Rand, preMaster)
		if err != nil {
			return err
		}
		if c.version >= record.VersionTLS10 {
			// TLS wraps the ciphertext in a 2-byte length.
			rawCkx = marshalMsg(typeClientKeyExchange, appendOpaque16(nil, encrypted))
		} else {
			ckx := clientKeyExchangeMsg{encryptedPreMaster: encrypted}
			rawCkx = ckx.marshal()
		}
	}
	c.fin.Write(rawCkx)
	if err := c.conn.WriteRecord(record.TypeHandshake, rawCkx); err != nil {
		return err
	}

	c.master = deriveMaster(c.version, preMaster, c.clientRandom[:], c.serverHello.random[:])
	for i := range preMaster {
		preMaster[i] = 0
	}
	c.keys = sliceKeyBlock(c.version, c.suite, c.master, c.clientRandom[:], c.serverHello.random[:])
	return nil
}

// verifyCert validates the leaf and, when intermediates are present,
// walks the chain: leaf signed by intermediates[0], each intermediate
// signed by the next, the last signed by the trusted root.
func (c *clientState) verifyCert(cert *x509lite.Certificate, intermediates [][]byte) error {
	if c.cfg.InsecureSkipVerify {
		return nil
	}
	now := c.cfg.now()
	if !cert.ValidAt(now) {
		return errors.New("handshake: server certificate expired or not yet valid")
	}
	if c.cfg.ServerName != "" && cert.SubjectCN != c.cfg.ServerName {
		return fmt.Errorf("handshake: certificate CN %q does not match %q",
			cert.SubjectCN, c.cfg.ServerName)
	}
	if c.cfg.RootCert == nil {
		return cert.CheckSignature(cert.PublicKey) // self-signed
	}
	current := cert
	for i, der := range intermediates {
		inter, err := x509lite.Parse(der)
		if err != nil {
			return fmt.Errorf("handshake: intermediate %d: %w", i, err)
		}
		if !inter.ValidAt(now) {
			return fmt.Errorf("handshake: intermediate %d expired", i)
		}
		if err := current.CheckSignatureFrom(inter); err != nil {
			return fmt.Errorf("handshake: chain link %d: %w", i, err)
		}
		current = inter
	}
	return current.CheckSignatureFrom(c.cfg.RootCert)
}

func (c *clientState) sendCCSAndFinished() error {
	if err := c.conn.WriteRecord(record.TypeChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	if err := armWrite(c.version, c.conn, c.suite, c.keys.clientKey, c.keys.clientIV, c.keys.clientMAC); err != nil {
		return err
	}
	verify := verifyDataFor(c.version, c.fin, true, c.master)
	msg := finishedMsg{verify: verify}
	raw := msg.marshal()
	c.fin.Write(raw)
	return c.conn.WriteRecord(record.TypeHandshake, raw)
}

// verifyServerFinished reads the server Finished and compares it to
// the hashes cliServerCCS precomputed.
func (c *clientState) verifyServerFinished() error {
	msgType, raw, err := c.msgs.next()
	if err != nil {
		return err
	}
	if msgType != typeFinished {
		return fmt.Errorf("handshake: expected Finished, got type %d", msgType)
	}
	var fin finishedMsg
	if err := fin.unmarshal(raw[4:], finishedLenFor(c.version)); err != nil {
		return err
	}
	if !bytes.Equal(fin.verify, c.expected) {
		return errors.New("handshake: server finished verification failed")
	}
	c.fin.Write(raw)
	return nil
}
