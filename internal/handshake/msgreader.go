package handshake

import (
	"errors"
	"fmt"

	"sslperf/internal/record"
)

// msgReader assembles handshake messages from handshake-type records,
// which may each carry several messages or a fraction of one. It
// reads through the RecordConn interface, so over a sans-IO core its
// calls surface ErrWouldBlock: every method is re-entrant — partial
// progress (buffered fragments of a message split across record
// boundaries) is kept in buf, nothing is consumed twice, and the same
// call simply resumes once more bytes are fed.
type msgReader struct {
	conn RecordConn
	buf  []byte
	// sawCCS is set when a ChangeCipherSpec record arrives while a
	// handshake message was expected; the FSMs consume it explicitly.
	sawCCS bool
}

func newMsgReader(c RecordConn) *msgReader { return &msgReader{conn: c} }

// fill reads records until at least n buffered handshake bytes are
// available. On ErrWouldBlock the bytes gathered so far stay
// buffered; call again after feeding the core.
func (r *msgReader) fill(n int) error {
	for len(r.buf) < n {
		typ, payload, err := r.conn.ReadRecord()
		if err != nil {
			return err
		}
		switch typ {
		case record.TypeHandshake:
			r.buf = append(r.buf, payload...)
		case record.TypeChangeCipherSpec:
			return errors.New("handshake: unexpected ChangeCipherSpec")
		default:
			return fmt.Errorf("handshake: unexpected %v record", typ)
		}
	}
	return nil
}

// next returns the next handshake message: its type and full wire
// bytes (header + body), which callers feed into the finished hash.
// The returned slice is a copy — safe past subsequent reads and
// feeds.
func (r *msgReader) next() (byte, []byte, error) {
	if err := r.fill(4); err != nil {
		return 0, nil, err
	}
	bodyLen := int(r.buf[1])<<16 | int(r.buf[2])<<8 | int(r.buf[3])
	if bodyLen > 1<<20 {
		return 0, nil, fmt.Errorf("handshake: message of %d bytes is implausible", bodyLen)
	}
	if err := r.fill(4 + bodyLen); err != nil {
		return 0, nil, err
	}
	raw := r.buf[:4+bodyLen]
	msgType := raw[0]
	out := append([]byte(nil), raw...)
	r.buf = r.buf[4+bodyLen:]
	return msgType, out, nil
}

// readCCS consumes a ChangeCipherSpec record. Any buffered handshake
// bytes at this point mean the peer interleaved messages illegally.
func (r *msgReader) readCCS() error {
	if len(r.buf) != 0 {
		return errors.New("handshake: data buffered across ChangeCipherSpec")
	}
	typ, payload, err := r.conn.ReadRecord()
	if err != nil {
		return err
	}
	if typ != record.TypeChangeCipherSpec || len(payload) != 1 || payload[0] != 1 {
		return fmt.Errorf("handshake: expected ChangeCipherSpec, got %v", typ)
	}
	return nil
}
