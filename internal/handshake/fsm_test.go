package handshake

import (
	"testing"

	"sslperf/internal/record"
	"sslperf/internal/suite"
)

// shuttle drives a sans-IO client/server FSM pair entirely in memory:
// each round steps both machines and ferries Outgoing bytes into the
// peer's Feed, chunked to at most chunk bytes per transfer (chunk<=0
// means everything at once). Returns the step counts.
func shuttle(t *testing.T, cliCore, srvCore *record.Core, cli *ClientFSM, srv *ServerFSM, chunk int) (int, int) {
	t.Helper()
	cliSteps, srvSteps := 0, 0
	move := func(from, to *record.Core) bool {
		out := from.Outgoing()
		if len(out) == 0 {
			return false
		}
		n := len(out)
		if chunk > 0 && n > chunk {
			n = chunk
		}
		to.Feed(out[:n])
		from.ConsumeOutgoing(n)
		return true
	}
	for i := 0; i < 100000; i++ {
		progress := false
		if !cli.Done() {
			cliSteps++
			if err := cli.Step(); err == nil {
				progress = true
			} else if err != ErrWouldBlock {
				t.Fatalf("client step: %v", err)
			}
		}
		if move(cliCore, srvCore) {
			progress = true
		}
		if !srv.Done() {
			srvSteps++
			if err := srv.Step(); err == nil {
				progress = true
			} else if err != ErrWouldBlock {
				t.Fatalf("server step: %v", err)
			}
		}
		if move(srvCore, cliCore) {
			progress = true
		}
		if cli.Done() && srv.Done() {
			return cliSteps, srvSteps
		}
		if !progress {
			t.Fatal("shuttle deadlocked: no progress and neither side done")
		}
	}
	t.Fatal("shuttle did not converge")
	return 0, 0
}

// nonBlockPair builds a sans-IO FSM pair for one suite.
func nonBlockPair(t *testing.T, id suite.ID, seed uint64, scache *SessionCache, sess *Session) (*record.Core, *record.Core, *ClientFSM, *ServerFSM) {
	t.Helper()
	key, _ := intIdentity(t)
	cliCore, srvCore := record.NewCore(), record.NewCore()
	srv, err := NewServerFSM(srvCore, &ServerConfig{
		Key: key, CertDER: intCert.Raw, Rand: rnd(seed), Cache: scache,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClientFSM(cliCore, &ClientConfig{
		Rand: rnd(seed + 1), Suites: []suite.ID{id},
		InsecureSkipVerify: true, Session: sess,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cliCore, srvCore, cli, srv
}

// Every suite must complete a sans-IO handshake with both ends
// suspending on WouldBlock, and the two results must agree.
func TestNonBlockingHandshakeAllSuites(t *testing.T) {
	for _, s := range suite.All() {
		t.Run(s.Name, func(t *testing.T) {
			cliCore, srvCore, cli, srv := nonBlockPair(t, s.ID, 77, nil, nil)
			cliSteps, srvSteps := shuttle(t, cliCore, srvCore, cli, srv, 0)
			if cliSteps < 2 || srvSteps < 2 {
				t.Fatalf("no suspension happened (client %d steps, server %d): the non-blocking path was not exercised", cliSteps, srvSteps)
			}
			cres, sres := cli.Result(), srv.Result()
			if cres == nil || sres == nil {
				t.Fatal("missing results")
			}
			if cres.Suite.ID != s.ID || sres.Suite.ID != s.ID {
				t.Fatalf("suite mismatch: client %v server %v", cres.Suite.ID, sres.Suite.ID)
			}
			if string(cres.Session.Master) != string(sres.Session.Master) {
				t.Fatal("master secrets differ")
			}
			if cres.Resumed || sres.Resumed {
				t.Fatal("fresh handshake reported resumed")
			}
		})
	}
}

// Resumption through the sans-IO path: first handshake populates the
// cache, second resumes through the short tail.
func TestNonBlockingResumption(t *testing.T) {
	cache := NewSessionCache(16)
	cliCore, srvCore, cli, srv := nonBlockPair(t, suite.RSAWithRC4128MD5, 101, cache, nil)
	shuttle(t, cliCore, srvCore, cli, srv, 0)
	sess := cli.Result().Session

	cliCore2, srvCore2, cli2, srv2 := nonBlockPair(t, suite.RSAWithRC4128MD5, 202, cache, sess)
	shuttle(t, cliCore2, srvCore2, cli2, srv2, 0)
	if !cli2.Result().Resumed || !srv2.Result().Resumed {
		t.Fatalf("resumption failed: client=%v server=%v",
			cli2.Result().Resumed, srv2.Result().Resumed)
	}
	if string(cli2.Result().Session.Master) != string(sess.Master) {
		t.Fatal("resumed master secret changed")
	}
}

// Byte-at-a-time delivery: the incremental msgreader must survive a
// record (and every message in it) arriving one byte per feed.
func TestNonBlockingByteAtATime(t *testing.T) {
	cliCore, srvCore, cli, srv := nonBlockPair(t, suite.RSAWithAES128CBCSHA, 55, nil, nil)
	cliSteps, srvSteps := shuttle(t, cliCore, srvCore, cli, srv, 1)
	// The full handshake is ~2KB of wire traffic; byte-at-a-time it
	// must suspend hundreds of times without double-running any state.
	if cliSteps < 100 || srvSteps < 100 {
		t.Fatalf("expected deep suspension, got client=%d server=%d steps", cliSteps, srvSteps)
	}
	if cli.Result().Suite.ID != suite.RSAWithAES128CBCSHA {
		t.Fatal("wrong suite")
	}
}

// A terminal failure must queue a fatal alert in the outgoing buffer
// and stick: further Steps return the same error.
func TestNonBlockingTerminalErrorQueuesAlert(t *testing.T) {
	key, _ := intIdentity(t)
	srvCore := record.NewCore()
	srv, err := NewServerFSM(srvCore, &ServerConfig{
		Key: key, CertDER: intCert.Raw, Rand: rnd(3),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Feed garbage that parses as a record but fails the handshake.
	srvCore.Feed([]byte{byte(record.TypeHandshake), 0x03, 0x00, 0x00, 0x04, 99, 0, 0, 0})
	first := srv.Step()
	if first == nil || first == ErrWouldBlock {
		t.Fatalf("expected terminal error, got %v", first)
	}
	if second := srv.Step(); second != first {
		t.Fatalf("terminal error not sticky: %v then %v", first, second)
	}
	out := srvCore.Outgoing()
	if len(out) == 0 {
		t.Fatal("no alert queued")
	}
	if record.ContentType(out[0]) != record.TypeAlert {
		t.Fatalf("queued record type %d, want alert", out[0])
	}
}
