package handshake

import (
	"fmt"
	"sync"
	"testing"

	"sslperf/internal/suite"
)

// sess builds a distinct dummy session for cache tests.
func sess(id string) *Session {
	return &Session{
		ID:      []byte(id),
		Suite:   suite.RSAWithRC4128MD5,
		Master:  make([]byte, 48),
		Version: 0x0300,
	}
}

// TestSessionCacheParallel hammers one cache from many goroutines
// with interleaved Put/Get/Len — the shape a batched server produces
// when ≥32 connections finish handshakes concurrently. Run under
// -race (make check does) this is the cache's concurrency contract.
func TestSessionCacheParallel(t *testing.T) {
	c := NewSessionCache(64)
	const goroutines = 32
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := fmt.Sprintf("sess-%d-%d", g, i%8)
				c.Put(sess(id))
				if got := c.Get([]byte(id)); got != nil && string(got.ID) != id {
					t.Errorf("Get(%q) returned session %q", id, got.ID)
				}
				// Cross-goroutine reads: may hit or miss, must not race.
				c.Get([]byte(fmt.Sprintf("sess-%d-%d", (g+1)%goroutines, i%8)))
				c.Len()
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 64 {
		t.Fatalf("cache grew past its bound: %d", n)
	}
}

// TestSessionCacheParallelResume mimics concurrent resumption: every
// goroutine resolves the same session while a writer keeps
// re-inserting it.
func TestSessionCacheParallelResume(t *testing.T) {
	c := NewSessionCache(8)
	shared := sess("shared")
	c.Put(shared)
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Put(sess("shared"))
			c.Put(sess(fmt.Sprintf("churn-%d", i%16)))
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got := c.Get([]byte("shared"))
				if got == nil {
					// The churn writer may momentarily evict it; what
					// matters is no torn read.
					continue
				}
				if string(got.ID) != "shared" || len(got.Master) != 48 {
					t.Error("torn session read")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-writerDone
}

// TestSessionCacheEvictionOrder pins the FIFO policy: entries leave
// in insertion order, and re-Putting an existing ID neither
// duplicates its order slot nor refreshes its position.
func TestSessionCacheEvictionOrder(t *testing.T) {
	c := NewSessionCache(3)
	c.Put(sess("a"))
	c.Put(sess("b"))
	c.Put(sess("c"))
	// Updating "a" must not move it to the back of the FIFO.
	c.Put(sess("a"))
	c.Put(sess("d")) // evicts "a" (oldest), not "b"
	if c.Get([]byte("a")) != nil {
		t.Fatal("a should have been evicted first (FIFO)")
	}
	for _, id := range []string{"b", "c", "d"} {
		if c.Get([]byte(id)) == nil {
			t.Fatalf("%s missing", id)
		}
	}
	c.Put(sess("e")) // evicts "b"
	if c.Get([]byte("b")) != nil {
		t.Fatal("b should have been evicted second")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}
