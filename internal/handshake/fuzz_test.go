package handshake

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The message unmarshalers face attacker-controlled bytes; none may
// panic, whatever the input.

func noPanic(t *testing.T, name string, fn func(body []byte) error) {
	t.Helper()
	check := func(body []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("%s panicked on %x: %v", name, body, r)
				ok = false
			}
		}()
		fn(body) // error or nil both fine; panic is the failure
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Also hammer with structured-ish adversarial inputs: correct
	// prefixes with corrupted length fields.
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		body := make([]byte, r.Intn(200))
		r.Read(body)
		if len(body) > 2 {
			body[r.Intn(len(body))] = 0xff // oversized length bytes
		}
		if !check(body) {
			return
		}
	}
}

func TestUnmarshalersNeverPanic(t *testing.T) {
	noPanic(t, "clientHello", func(b []byte) error {
		var m clientHelloMsg
		return m.unmarshal(b)
	})
	noPanic(t, "serverHello", func(b []byte) error {
		var m serverHelloMsg
		return m.unmarshal(b)
	})
	noPanic(t, "certificate", func(b []byte) error {
		var m certificateMsg
		return m.unmarshal(b)
	})
	noPanic(t, "serverKeyExchange", func(b []byte) error {
		var m serverKeyExchangeMsg
		return m.unmarshal(b)
	})
	noPanic(t, "clientKeyExchange", func(b []byte) error {
		var m clientKeyExchangeMsg
		return m.unmarshal(b)
	})
	noPanic(t, "clientDHPublic", func(b []byte) error {
		var m clientDHPublicMsg
		return m.unmarshal(b)
	})
	noPanic(t, "finished36", func(b []byte) error {
		var m finishedMsg
		return m.unmarshal(b, 36)
	})
	noPanic(t, "finished12", func(b []byte) error {
		var m finishedMsg
		return m.unmarshal(b, 12)
	})
}

// Round-trip property: marshal∘unmarshal is the identity for valid
// ClientHello messages with arbitrary field contents.
func TestClientHelloRoundTripProperty(t *testing.T) {
	f := func(random [32]byte, idLen uint8, nSuites uint8) bool {
		m := clientHelloMsg{
			version:      0x0301,
			sessionID:    make([]byte, int(idLen)%33),
			compressions: []byte{0},
		}
		m.random = random
		for i := 0; i < int(nSuites)%30+1; i++ {
			m.cipherSuites = append(m.cipherSuites, 0x0a)
		}
		var got clientHelloMsg
		if err := got.unmarshal(m.marshal()[4:]); err != nil {
			return false
		}
		return got.version == m.version &&
			len(got.sessionID) == len(m.sessionID) &&
			len(got.cipherSuites) == len(m.cipherSuites) &&
			got.random == m.random
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestServerKeyExchangeRoundTrip(t *testing.T) {
	m := serverKeyExchangeMsg{
		p:   make([]byte, 128),
		g:   []byte{2},
		y:   make([]byte, 128),
		sig: make([]byte, 64),
	}
	for i := range m.p {
		m.p[i] = byte(i + 1)
	}
	var got serverKeyExchangeMsg
	if err := got.unmarshal(m.marshal()[4:]); err != nil {
		t.Fatal(err)
	}
	if len(got.p) != 128 || len(got.g) != 1 || len(got.y) != 128 || len(got.sig) != 64 {
		t.Fatalf("fields: %d %d %d %d", len(got.p), len(got.g), len(got.y), len(got.sig))
	}
	// Trailing bytes rejected.
	raw := m.marshal()
	raw = append(raw, 0xcc)
	if err := got.unmarshal(raw[4:]); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}
