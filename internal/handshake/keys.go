package handshake

import (
	"sslperf/internal/bn"
	"sslperf/internal/md5x"
	"sslperf/internal/record"
	"sslperf/internal/sha1x"
	"sslperf/internal/sslcrypto"
	"sslperf/internal/suite"
)

// skeDigest computes the 36-byte MD5‖SHA-1 digest the SSLv3
// ServerKeyExchange signature covers: both hello randoms followed by
// the ServerDHParams bytes.
func skeDigest(clientRandom, serverRandom, params []byte) []byte {
	md := md5x.New()
	md.Write(clientRandom)
	md.Write(serverRandom)
	md.Write(params)
	sha := sha1x.New()
	sha.Write(clientRandom)
	sha.Write(serverRandom)
	sha.Write(params)
	return sha.Sum(md.Sum(nil))
}

// newIntFromBytes builds a big integer from wire bytes.
func newIntFromBytes(b []byte) *bn.Int { return bn.New().SetBytes(b) }

// connKeys is the sliced key block: per-direction MAC secrets, cipher
// keys and IVs, in the SSLv3 §6.2.2 / TLS §6.3 order (identical).
type connKeys struct {
	clientMAC, serverMAC []byte
	clientKey, serverKey []byte
	clientIV, serverIV   []byte
}

// deriveMaster computes the master secret with the negotiated
// version's KDF.
func deriveMaster(version uint16, preMaster, clientRandom, serverRandom []byte) []byte {
	if version >= record.VersionTLS10 {
		return sslcrypto.TLSMasterSecret(preMaster, clientRandom, serverRandom)
	}
	return sslcrypto.MasterSecret(preMaster, clientRandom, serverRandom)
}

// sliceKeyBlock derives and slices the key block for a suite under
// the negotiated version's KDF.
func sliceKeyBlock(version uint16, s *suite.Suite, master, clientRandom, serverRandom []byte) connKeys {
	var kb []byte
	if version >= record.VersionTLS10 {
		kb = sslcrypto.TLSKeyBlock(master, clientRandom, serverRandom, s.KeyMaterialLen())
	} else {
		kb = sslcrypto.KeyBlock(master, clientRandom, serverRandom, s.KeyMaterialLen())
	}
	var k connKeys
	take := func(n int) []byte {
		out := kb[:n]
		kb = kb[n:]
		return out
	}
	k.clientMAC = take(s.MACLen())
	k.serverMAC = take(s.MACLen())
	k.clientKey = take(s.KeyLen)
	k.serverKey = take(s.KeyLen)
	k.clientIV = take(s.IVLen)
	k.serverIV = take(s.IVLen)
	return k
}

// newVersionMAC builds the record MAC for the negotiated version:
// SSLv3's pad construction or TLS 1.0's HMAC.
func newVersionMAC(version uint16, s *suite.Suite, secret []byte) (*sslcrypto.MAC, error) {
	if version >= record.VersionTLS10 {
		return sslcrypto.NewTLSMAC(s.MAC, secret, version)
	}
	return s.NewMAC(secret)
}

// verifyDataFor computes the finished verify data for the version:
// 36 bytes of MD5‖SHA1 with sender padding (SSLv3) or the 12-byte
// PRF output (TLS 1.0).
func verifyDataFor(version uint16, f *sslcrypto.FinishedHash, isClient bool, master []byte) []byte {
	if version >= record.VersionTLS10 {
		return f.TLSVerifyData(isClient, master)
	}
	sender := sslcrypto.SenderServer
	if isClient {
		sender = sslcrypto.SenderClient
	}
	return f.Sum(sender, master)
}

// finishedLenFor returns the finished verify-data length per version.
func finishedLenFor(version uint16) int {
	if version >= record.VersionTLS10 {
		return sslcrypto.TLSFinishedLen
	}
	return FinishedLen
}

// armWrite installs the outbound cipher state for one side.
func armWrite(version uint16, l RecordConn, s *suite.Suite, key, iv, macSecret []byte) error {
	c, err := s.NewCipher(key, iv, true)
	if err != nil {
		return err
	}
	m, err := newVersionMAC(version, s, macSecret)
	if err != nil {
		return err
	}
	l.SetPrimitives(s.CipherAlgo, s.MAC.String())
	l.SetWriteState(c, m)
	return nil
}

// armRead installs the inbound cipher state for one side.
func armRead(version uint16, l RecordConn, s *suite.Suite, key, iv, macSecret []byte) error {
	c, err := s.NewCipher(key, iv, false)
	if err != nil {
		return err
	}
	m, err := newVersionMAC(version, s, macSecret)
	if err != nil {
		return err
	}
	l.SetPrimitives(s.CipherAlgo, s.MAC.String())
	l.SetReadState(c, m)
	return nil
}
