// Package handshake implements the SSL 3.0 handshake protocol: the
// message codecs, the client state machine, and a server state
// machine partitioned into the ten steps of the paper's Table 2 with
// per-step and per-crypto-call latency capture. Session-ID resumption
// — the paper's "session re-negotiation using the previously setup
// keys" that avoids the RSA operation — is supported on both sides.
package handshake

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sslperf/internal/suite"
)

// Handshake message types (SSLv3 §5.6).
const (
	typeHelloRequest       = 0
	typeClientHello        = 1
	typeServerHello        = 2
	typeCertificate        = 11
	typeServerKeyExchange  = 12
	typeCertificateRequest = 13
	typeServerHelloDone    = 14
	typeCertificateVerify  = 15
	typeClientKeyExchange  = 16
	typeFinished           = 20
)

// RandomLen is the hello random length (4-byte timestamp + 28 random).
const RandomLen = 32

// SessionIDLen is the session identifier length this library issues.
const SessionIDLen = 32

// FinishedLen is the SSLv3 finished verify-data length (MD5 ‖ SHA-1).
const FinishedLen = 36

// header builds the 4-byte handshake message header.
func header(msgType byte, bodyLen int) []byte {
	return []byte{msgType, byte(bodyLen >> 16), byte(bodyLen >> 8), byte(bodyLen)}
}

// marshalMsg wraps a body in its handshake header.
func marshalMsg(msgType byte, body []byte) []byte {
	out := make([]byte, 0, 4+len(body))
	out = append(out, header(msgType, len(body))...)
	return append(out, body...)
}

// clientHelloMsg is the ClientHello payload.
type clientHelloMsg struct {
	version      uint16
	random       [RandomLen]byte
	sessionID    []byte
	cipherSuites []suite.ID
	compressions []byte
}

func (m *clientHelloMsg) marshal() []byte {
	body := make([]byte, 0, 64)
	body = binary.BigEndian.AppendUint16(body, m.version)
	body = append(body, m.random[:]...)
	body = append(body, byte(len(m.sessionID)))
	body = append(body, m.sessionID...)
	body = binary.BigEndian.AppendUint16(body, uint16(2*len(m.cipherSuites)))
	for _, cs := range m.cipherSuites {
		body = binary.BigEndian.AppendUint16(body, uint16(cs))
	}
	body = append(body, byte(len(m.compressions)))
	body = append(body, m.compressions...)
	return marshalMsg(typeClientHello, body)
}

func (m *clientHelloMsg) unmarshal(body []byte) error {
	if len(body) < 2+RandomLen+1 {
		return errors.New("handshake: ClientHello too short")
	}
	m.version = binary.BigEndian.Uint16(body)
	copy(m.random[:], body[2:])
	rest := body[2+RandomLen:]
	idLen := int(rest[0])
	rest = rest[1:]
	if idLen > 32 || len(rest) < idLen+2 {
		return errors.New("handshake: bad session id")
	}
	m.sessionID = append([]byte(nil), rest[:idLen]...)
	rest = rest[idLen:]
	csLen := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if csLen%2 != 0 || len(rest) < csLen+1 {
		return errors.New("handshake: bad cipher suite list")
	}
	m.cipherSuites = m.cipherSuites[:0]
	for i := 0; i < csLen; i += 2 {
		m.cipherSuites = append(m.cipherSuites, suite.ID(binary.BigEndian.Uint16(rest[i:])))
	}
	rest = rest[csLen:]
	compLen := int(rest[0])
	rest = rest[1:]
	if len(rest) < compLen {
		return errors.New("handshake: bad compression list")
	}
	m.compressions = append([]byte(nil), rest[:compLen]...)
	return nil
}

// serverHelloMsg is the ServerHello payload.
type serverHelloMsg struct {
	version     uint16
	random      [RandomLen]byte
	sessionID   []byte
	cipherSuite suite.ID
	compression byte
}

func (m *serverHelloMsg) marshal() []byte {
	body := make([]byte, 0, 64)
	body = binary.BigEndian.AppendUint16(body, m.version)
	body = append(body, m.random[:]...)
	body = append(body, byte(len(m.sessionID)))
	body = append(body, m.sessionID...)
	body = binary.BigEndian.AppendUint16(body, uint16(m.cipherSuite))
	body = append(body, m.compression)
	return marshalMsg(typeServerHello, body)
}

func (m *serverHelloMsg) unmarshal(body []byte) error {
	if len(body) < 2+RandomLen+1 {
		return errors.New("handshake: ServerHello too short")
	}
	m.version = binary.BigEndian.Uint16(body)
	copy(m.random[:], body[2:])
	rest := body[2+RandomLen:]
	idLen := int(rest[0])
	rest = rest[1:]
	if idLen > 32 || len(rest) < idLen+3 {
		return errors.New("handshake: bad ServerHello tail")
	}
	m.sessionID = append([]byte(nil), rest[:idLen]...)
	rest = rest[idLen:]
	m.cipherSuite = suite.ID(binary.BigEndian.Uint16(rest))
	m.compression = rest[2]
	return nil
}

// certificateMsg carries the server certificate chain.
type certificateMsg struct {
	certificates [][]byte
}

func (m *certificateMsg) marshal() []byte {
	inner := 0
	for _, c := range m.certificates {
		inner += 3 + len(c)
	}
	body := make([]byte, 0, 3+inner)
	body = append(body, byte(inner>>16), byte(inner>>8), byte(inner))
	for _, c := range m.certificates {
		body = append(body, byte(len(c)>>16), byte(len(c)>>8), byte(len(c)))
		body = append(body, c...)
	}
	return marshalMsg(typeCertificate, body)
}

func (m *certificateMsg) unmarshal(body []byte) error {
	if len(body) < 3 {
		return errors.New("handshake: Certificate too short")
	}
	total := int(body[0])<<16 | int(body[1])<<8 | int(body[2])
	rest := body[3:]
	if total != len(rest) {
		return errors.New("handshake: Certificate length mismatch")
	}
	m.certificates = m.certificates[:0]
	for len(rest) > 0 {
		if len(rest) < 3 {
			return errors.New("handshake: truncated certificate entry")
		}
		n := int(rest[0])<<16 | int(rest[1])<<8 | int(rest[2])
		rest = rest[3:]
		if len(rest) < n {
			return errors.New("handshake: truncated certificate body")
		}
		m.certificates = append(m.certificates, append([]byte(nil), rest[:n]...))
		rest = rest[n:]
	}
	if len(m.certificates) == 0 {
		return errors.New("handshake: empty certificate chain")
	}
	return nil
}

// clientKeyExchangeMsg carries the RSA-encrypted pre-master secret.
// SSLv3 sends the ciphertext bare, with no inner length prefix.
type clientKeyExchangeMsg struct {
	encryptedPreMaster []byte
}

func (m *clientKeyExchangeMsg) marshal() []byte {
	return marshalMsg(typeClientKeyExchange, m.encryptedPreMaster)
}

func (m *clientKeyExchangeMsg) unmarshal(body []byte) error {
	if len(body) == 0 {
		return errors.New("handshake: empty ClientKeyExchange")
	}
	m.encryptedPreMaster = append([]byte(nil), body...)
	return nil
}

// serverKeyExchangeMsg carries signed ephemeral Diffie-Hellman
// parameters (ServerDHParams + Signature, SSLv3 §5.6.4): each of
// p, g, Ys is a 2-byte-length-prefixed opaque, followed by the
// 2-byte-length-prefixed RSA signature over
// MD5(randoms ‖ params) ‖ SHA1(randoms ‖ params).
type serverKeyExchangeMsg struct {
	p, g, y []byte
	sig     []byte
}

func appendOpaque16(out, v []byte) []byte {
	out = binary.BigEndian.AppendUint16(out, uint16(len(v)))
	return append(out, v...)
}

func readOpaque16(in []byte) (v, rest []byte, err error) {
	if len(in) < 2 {
		return nil, nil, errors.New("handshake: truncated vector")
	}
	n := int(binary.BigEndian.Uint16(in))
	if len(in) < 2+n {
		return nil, nil, errors.New("handshake: vector exceeds message")
	}
	return in[2 : 2+n], in[2+n:], nil
}

// paramBytes returns the ServerDHParams encoding, the bytes covered
// (together with the hello randoms) by the signature.
func (m *serverKeyExchangeMsg) paramBytes() []byte {
	out := make([]byte, 0, 6+len(m.p)+len(m.g)+len(m.y))
	out = appendOpaque16(out, m.p)
	out = appendOpaque16(out, m.g)
	return appendOpaque16(out, m.y)
}

func (m *serverKeyExchangeMsg) marshal() []byte {
	body := m.paramBytes()
	body = appendOpaque16(body, m.sig)
	return marshalMsg(typeServerKeyExchange, body)
}

func (m *serverKeyExchangeMsg) unmarshal(body []byte) error {
	var err error
	if m.p, body, err = readOpaque16(body); err != nil {
		return err
	}
	if m.g, body, err = readOpaque16(body); err != nil {
		return err
	}
	if m.y, body, err = readOpaque16(body); err != nil {
		return err
	}
	if m.sig, body, err = readOpaque16(body); err != nil {
		return err
	}
	if len(body) != 0 {
		return errors.New("handshake: trailing bytes in ServerKeyExchange")
	}
	if len(m.p) == 0 || len(m.g) == 0 || len(m.y) == 0 || len(m.sig) == 0 {
		return errors.New("handshake: empty ServerKeyExchange field")
	}
	return nil
}

// clientDHPublicMsg is the DHE form of ClientKeyExchange: the
// client's 2-byte-length-prefixed public value.
type clientDHPublicMsg struct {
	y []byte
}

func (m *clientDHPublicMsg) marshal() []byte {
	return marshalMsg(typeClientKeyExchange, appendOpaque16(nil, m.y))
}

func (m *clientDHPublicMsg) unmarshal(body []byte) error {
	var err error
	if m.y, body, err = readOpaque16(body); err != nil {
		return err
	}
	if len(body) != 0 || len(m.y) == 0 {
		return errors.New("handshake: malformed DH ClientKeyExchange")
	}
	return nil
}

// finishedMsg carries the 36-byte verify data.
type finishedMsg struct {
	verify []byte
}

func (m *finishedMsg) marshal() []byte {
	return marshalMsg(typeFinished, m.verify)
}

func (m *finishedMsg) unmarshal(body []byte, wantLen int) error {
	if len(body) != wantLen {
		return fmt.Errorf("handshake: Finished is %d bytes, want %d", len(body), wantLen)
	}
	m.verify = append([]byte(nil), body...)
	return nil
}

// serverHelloDone is the empty ServerHelloDone message.
func serverHelloDone() []byte { return marshalMsg(typeServerHelloDone, nil) }
