package handshake

import (
	"bytes"
	"sslperf/internal/probe"
	"testing"
	"time"

	"sslperf/internal/suite"
)

func TestClientHelloRoundTrip(t *testing.T) {
	m := clientHelloMsg{
		version:      0x0300,
		sessionID:    bytes.Repeat([]byte{7}, 32),
		cipherSuites: []suite.ID{suite.RSAWith3DESEDECBCSHA, suite.RSAWithRC4128MD5},
		compressions: []byte{0},
	}
	for i := range m.random {
		m.random[i] = byte(i)
	}
	raw := m.marshal()
	if raw[0] != typeClientHello {
		t.Fatalf("type byte = %d", raw[0])
	}
	var got clientHelloMsg
	if err := got.unmarshal(raw[4:]); err != nil {
		t.Fatal(err)
	}
	if got.version != m.version || !bytes.Equal(got.sessionID, m.sessionID) ||
		got.random != m.random || len(got.cipherSuites) != 2 ||
		got.cipherSuites[0] != suite.RSAWith3DESEDECBCSHA {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestClientHelloEmptySessionID(t *testing.T) {
	m := clientHelloMsg{version: 0x0300, cipherSuites: []suite.ID{1}, compressions: []byte{0}}
	var got clientHelloMsg
	if err := got.unmarshal(m.marshal()[4:]); err != nil {
		t.Fatal(err)
	}
	if len(got.sessionID) != 0 {
		t.Fatal("session id should be empty")
	}
}

func TestClientHelloRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		nil,
		make([]byte, 10),
		// session id length runs past the end
		append(append([]byte{3, 0}, make([]byte, 32)...), 33),
	}
	for i, b := range bad {
		var m clientHelloMsg
		if err := m.unmarshal(b); err == nil {
			t.Errorf("malformed ClientHello %d accepted", i)
		}
	}
}

func TestServerHelloRoundTrip(t *testing.T) {
	m := serverHelloMsg{
		version:     0x0300,
		sessionID:   bytes.Repeat([]byte{9}, 32),
		cipherSuite: suite.RSAWithAES128CBCSHA,
	}
	var got serverHelloMsg
	if err := got.unmarshal(m.marshal()[4:]); err != nil {
		t.Fatal(err)
	}
	if got.cipherSuite != m.cipherSuite || !bytes.Equal(got.sessionID, m.sessionID) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestCertificateMsgRoundTrip(t *testing.T) {
	m := certificateMsg{certificates: [][]byte{
		bytes.Repeat([]byte{1}, 300),
		bytes.Repeat([]byte{2}, 5),
	}}
	var got certificateMsg
	if err := got.unmarshal(m.marshal()[4:]); err != nil {
		t.Fatal(err)
	}
	if len(got.certificates) != 2 ||
		!bytes.Equal(got.certificates[0], m.certificates[0]) ||
		!bytes.Equal(got.certificates[1], m.certificates[1]) {
		t.Fatal("certificate chain mismatch")
	}
}

func TestCertificateMsgRejectsEmpty(t *testing.T) {
	m := certificateMsg{}
	var got certificateMsg
	if err := got.unmarshal(m.marshal()[4:]); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestFinishedMsgLength(t *testing.T) {
	m := finishedMsg{verify: make([]byte, FinishedLen)}
	var got finishedMsg
	if err := got.unmarshal(m.marshal()[4:], FinishedLen); err != nil {
		t.Fatal(err)
	}
	// A TLS-length finished must be rejected when SSLv3 is expected,
	// and vice versa.
	tls := finishedMsg{verify: make([]byte, 12)}
	if err := got.unmarshal(tls.marshal()[4:], FinishedLen); err == nil {
		t.Fatal("accepted 12-byte finished as SSLv3")
	}
	if err := got.unmarshal(m.marshal()[4:], 12); err == nil {
		t.Fatal("accepted 36-byte finished as TLS")
	}
	if err := got.unmarshal(tls.marshal()[4:], 12); err != nil {
		t.Fatal(err)
	}
}

func TestClientKeyExchangeBare(t *testing.T) {
	// SSLv3 carries the RSA ciphertext with no length prefix.
	ct := bytes.Repeat([]byte{0xcc}, 64)
	m := clientKeyExchangeMsg{encryptedPreMaster: ct}
	raw := m.marshal()
	bodyLen := int(raw[1])<<16 | int(raw[2])<<8 | int(raw[3])
	if bodyLen != len(ct) {
		t.Fatalf("body length %d, want %d (no inner prefix)", bodyLen, len(ct))
	}
	var got clientKeyExchangeMsg
	if err := got.unmarshal(raw[4:]); err != nil || !bytes.Equal(got.encryptedPreMaster, ct) {
		t.Fatal("round trip failed")
	}
}

func TestSessionCachePutGet(t *testing.T) {
	c := NewSessionCache(2)
	s1 := &Session{ID: []byte("id-1"), Master: []byte("m1")}
	s2 := &Session{ID: []byte("id-2"), Master: []byte("m2")}
	c.Put(s1)
	c.Put(s2)
	if got := c.Get([]byte("id-1")); got == nil || string(got.Master) != "m1" {
		t.Fatal("get failed")
	}
	if c.Get([]byte("missing")) != nil {
		t.Fatal("phantom session")
	}
}

func TestSessionCacheEviction(t *testing.T) {
	c := NewSessionCache(2)
	c.Put(&Session{ID: []byte("a")})
	c.Put(&Session{ID: []byte("b")})
	c.Put(&Session{ID: []byte("c")}) // evicts a
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Get([]byte("a")) != nil {
		t.Fatal("oldest not evicted")
	}
	if c.Get([]byte("c")) == nil {
		t.Fatal("newest missing")
	}
}

func TestSessionCacheUpdateDoesNotEvict(t *testing.T) {
	c := NewSessionCache(2)
	c.Put(&Session{ID: []byte("a"), Master: []byte("1")})
	c.Put(&Session{ID: []byte("b")})
	c.Put(&Session{ID: []byte("a"), Master: []byte("2")}) // update in place
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if got := c.Get([]byte("a")); string(got.Master) != "2" {
		t.Fatal("update lost")
	}
	if c.Get([]byte("b")) == nil {
		t.Fatal("b evicted by update")
	}
}

func TestSessionCacheIgnoresNil(t *testing.T) {
	c := NewSessionCache(2)
	c.Put(nil)
	c.Put(&Session{})
	if c.Len() != 0 {
		t.Fatal("cached a nil/empty session")
	}
}

func TestAnatomyNilSafe(t *testing.T) {
	// A typed-nil *Anatomy is a valid no-op sink: a bus holding one
	// must deliver every event kind without panicking.
	var a *Anatomy
	bus := probe.NewBus(a)
	bus.StepEnter(probe.StepInit)
	bus.Crypto("f", func() {})
	bus.StepExit()
	if err := bus.CryptoErr("g", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	bus.RecordCrypto(probe.OpMACCompute, "MD5", 1, bus.Stamp())
	bus.RecordIO(true, false, 1)
}

func TestAnatomyStepAccounting(t *testing.T) {
	a := NewAnatomy()
	bus := probe.NewBus(a)
	bus.StepEnter(probe.StepInit)
	bus.Crypto("op_a", func() { time.Sleep(2 * time.Millisecond) })
	bus.StepExit()
	bus.StepEnter(probe.StepGetClientHello)
	bus.Crypto("op_b", func() { time.Sleep(time.Millisecond) })
	bus.StepExit()
	if len(a.Steps) != 2 {
		t.Fatalf("steps = %d", len(a.Steps))
	}
	if a.Steps[0].Name != probe.StepInit.Name() || a.Steps[1].Index != 1 {
		t.Fatalf("step identity = %+v", a.Steps)
	}
	if a.Steps[0].Elapsed < 2*time.Millisecond {
		t.Fatal("step time too small")
	}
	if a.Steps[0].CryptoTotal() == 0 || a.Steps[1].CryptoTotal() == 0 {
		t.Fatal("crypto not attributed")
	}
	if a.Total() < 3*time.Millisecond {
		t.Fatalf("total = %v", a.Total())
	}
	if a.CryptoTotal() > a.Total() {
		t.Fatal("crypto exceeds total")
	}
}

func TestAnatomyCategoryMapping(t *testing.T) {
	cases := map[string]string{
		FnRSAPrivateDecrypt: CategoryPublic,
		FnPriDecryption:     CategoryPrivate,
		FnPriEncryption:     CategoryPrivate,
		FnFinishMac:         CategoryHash,
		FnGenMasterSecret:   CategoryHash,
		FnGenKeyBlock:       CategoryHash,
		FnRandPseudoBytes:   CategoryOther,
		FnX509:              CategoryOther,
	}
	for fn, want := range cases {
		if got := CategoryOf(fn); got != want {
			t.Errorf("CategoryOf(%s) = %s, want %s", fn, got, want)
		}
	}
}

func TestAnatomyBreakdownOrder(t *testing.T) {
	a := NewAnatomy()
	bus := probe.NewBus(a)
	bus.StepEnter(probe.StepGetClientKX)
	bus.Crypto(FnRSAPrivateDecrypt, func() { time.Sleep(time.Millisecond) })
	bus.StepExit()
	b := a.CryptoBreakdown()
	names := b.Names()
	want := []string{CategoryPublic, CategoryPrivate, CategoryHash, CategoryOther}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("breakdown order %v", names)
		}
	}
}
