package handshake

import (
	"sync"

	"sslperf/internal/suite"
)

// A Session holds the state needed to resume an SSL session without
// repeating the RSA key exchange — the optimization the paper credits
// with "greatly reducing the handshake overhead".
type Session struct {
	ID      []byte
	Suite   suite.ID
	Master  []byte // 48-byte master secret
	Version uint16 // protocol version the session was established under
}

// A SessionCache is a bounded server-side store of resumable
// sessions, keyed by session ID. It is safe for concurrent use.
type SessionCache struct {
	mu    sync.Mutex
	cap   int
	items map[string]*Session
	order []string // FIFO eviction order
}

// NewSessionCache returns a cache bounded to capacity sessions
// (default 1024 when capacity <= 0).
func NewSessionCache(capacity int) *SessionCache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &SessionCache{cap: capacity, items: make(map[string]*Session)}
}

// Put stores a session, evicting the oldest entry when full.
func (c *SessionCache) Put(s *Session) {
	if s == nil || len(s.ID) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := string(s.ID)
	if _, exists := c.items[key]; !exists {
		for len(c.items) >= c.cap && len(c.order) > 0 {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.items, oldest)
		}
		c.order = append(c.order, key)
	}
	c.items[key] = s
}

// Get looks a session up by ID; it returns nil when absent.
func (c *SessionCache) Get(id []byte) *Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.items[string(id)]
}

// Len reports the number of cached sessions.
func (c *SessionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
