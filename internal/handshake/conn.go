package handshake

import (
	"sslperf/internal/probe"
	"sslperf/internal/record"
	"sslperf/internal/sslcrypto"
	"sslperf/internal/suite"
)

// ErrWouldBlock is re-exported from the record package: the FSM needs
// more wire bytes before it can make progress. Callers feed the
// record core and call Step again; no handshake state is lost.
var ErrWouldBlock = record.ErrWouldBlock

// RecordConn is the record-layer surface the handshake drives. Both
// halves of the split record layer implement it: *record.Layer (the
// blocking transport adapter — ReadRecord parks in the transport) and
// *record.Core (the sans-IO core — ReadRecord returns ErrWouldBlock
// until enough bytes are fed). The FSMs are written against this
// interface only, so one implementation serves the blocking
// Client/Server entry points and ssl.NonBlockingConn alike, and the
// two paths are byte-identical on the wire by construction.
//
// The handshake FSM never touches a transport: every read lands here
// and every write goes out as sealed records, which is what blocklint
// (make check) enforces mechanically.
type RecordConn interface {
	// ReadRecord returns the next opened record, or ErrWouldBlock on
	// a sans-IO core that has not been fed a complete record.
	ReadRecord() (record.ContentType, []byte, error)
	// WriteRecord seals data, fragmenting as needed.
	WriteRecord(typ record.ContentType, data []byte) error
	// SendAlert seals an alert record.
	SendAlert(level, desc byte) error

	SetProtocolVersion(v uint16)
	SetPrimitives(cipher, mac string)
	SetWriteState(c suite.RecordCipher, m *sslcrypto.MAC)
	SetReadState(c suite.RecordCipher, m *sslcrypto.MAC)

	// ProbeBus/SetProbe expose the instrumentation spine so the FSM
	// can join the connection's bus (record crypto events and step
	// events must land on one spine for the anatomy to attribute the
	// encrypted finished messages).
	ProbeBus() *probe.Bus
	SetProbe(b *probe.Bus)
}

var (
	_ RecordConn = (*record.Layer)(nil)
	_ RecordConn = (*record.Core)(nil)
)
