package handshake

import (
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sslperf/internal/record"
	"sslperf/internal/rsa"
	"sslperf/internal/suite"
	"sslperf/internal/x509lite"
)

var (
	intOnce sync.Once
	intKey  *rsa.PrivateKey
	intCert *x509lite.Certificate
)

type prngReader struct{ r *rand.Rand }

func (p prngReader) Read(b []byte) (int, error) {
	for i := range b {
		b[i] = byte(p.r.Intn(256))
	}
	return len(b), nil
}

func rnd(seed uint64) io.Reader {
	return prngReader{rand.New(rand.NewSource(int64(seed)))}
}

// testPipe is a minimal buffered duplex transport for driving the
// FSMs directly (the ssl package's Pipe can't be imported here — it
// would create an import cycle in tests).
type pipeSide struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newPipeSide() *pipeSide {
	s := &pipeSide{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

type pipeConn struct{ in, out *pipeSide }

func (c *pipeConn) Write(p []byte) (int, error) {
	c.out.mu.Lock()
	defer c.out.mu.Unlock()
	if c.out.closed {
		return 0, io.ErrClosedPipe
	}
	c.out.buf = append(c.out.buf, p...)
	c.out.cond.Broadcast()
	return len(p), nil
}

func (c *pipeConn) Read(p []byte) (int, error) {
	c.in.mu.Lock()
	defer c.in.mu.Unlock()
	for len(c.in.buf) == 0 && !c.in.closed {
		c.in.cond.Wait()
	}
	if len(c.in.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, c.in.buf)
	c.in.buf = c.in.buf[n:]
	return n, nil
}

func (c *pipeConn) Close() error {
	for _, s := range []*pipeSide{c.in, c.out} {
		s.mu.Lock()
		s.closed = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	return nil
}

func testPipe() (io.ReadWriteCloser, io.ReadWriteCloser) {
	a2b := newPipeSide()
	b2a := newPipeSide()
	return &pipeConn{in: b2a, out: a2b}, &pipeConn{in: a2b, out: b2a}
}

func intIdentity(t *testing.T) (*rsa.PrivateKey, *x509lite.Certificate) {
	t.Helper()
	intOnce.Do(func() {
		var err error
		intKey, err = rsa.GenerateKey(rnd(9001), 512)
		if err != nil {
			panic(err)
		}
		now := time.Now()
		intCert, err = x509lite.Create(rnd(9002), "hs-test", &intKey.PublicKey,
			"hs-test", intKey, now.Add(-time.Hour), now.Add(time.Hour))
		if err != nil {
			panic(err)
		}
	})
	return intKey, intCert
}

// runPair drives Server and Client directly over raw record layers.
func runPair(t *testing.T, scfg *ServerConfig, ccfg *ClientConfig) (*Result, *Result, error) {
	t.Helper()
	ct, st := testPipe()
	clientLayer := record.NewLayer(ct)
	serverLayer := record.NewLayer(st)
	type out struct {
		res *Result
		err error
	}
	cc := make(chan out, 1)
	go func() {
		r, err := Client(clientLayer, ccfg)
		cc <- out{r, err}
	}()
	sres, serr := Server(serverLayer, scfg, nil)
	cres := <-cc
	if serr != nil {
		return nil, nil, serr
	}
	if cres.err != nil {
		return nil, nil, cres.err
	}
	return cres.res, sres, nil
}

func TestDirectHandshakeAgreement(t *testing.T) {
	key, cert := intIdentity(t)
	cres, sres, err := runPair(t,
		&ServerConfig{Key: key, CertDER: cert.Raw, Rand: rnd(1)},
		&ClientConfig{Rand: rnd(2), InsecureSkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Suite.ID != sres.Suite.ID {
		t.Fatal("suite disagreement")
	}
	if string(cres.Session.Master) != string(sres.Session.Master) {
		t.Fatal("master secrets differ")
	}
	if string(cres.Session.ID) != string(sres.Session.ID) {
		t.Fatal("session ids differ")
	}
}

func TestServerConfigValidation(t *testing.T) {
	key, cert := intIdentity(t)
	layer := record.NewLayer(struct {
		io.Reader
		io.Writer
	}{})
	if _, err := Server(layer, &ServerConfig{CertDER: cert.Raw, Rand: rnd(1)}, nil); err == nil {
		t.Fatal("server without key accepted")
	}
	if _, err := Server(layer, &ServerConfig{Key: key, Rand: rnd(1)}, nil); err == nil {
		t.Fatal("server without cert accepted")
	}
	if _, err := Server(layer, &ServerConfig{Key: key, CertDER: cert.Raw}, nil); err == nil {
		t.Fatal("server without randomness accepted")
	}
	if _, err := Client(layer, &ClientConfig{}); err == nil {
		t.Fatal("client without randomness accepted")
	}
}

func TestRootCertChainVerification(t *testing.T) {
	key, _ := intIdentity(t)
	// A CA signs the server's certificate; the client trusts the CA.
	caKey, err := rsa.GenerateKey(rnd(9010), 512)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	caCert, err := x509lite.Create(rnd(9011), "test-ca", &caKey.PublicKey,
		"test-ca", caKey, now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	srvCert, err := x509lite.Create(rnd(9012), "chained-server", &key.PublicKey,
		"test-ca", caKey, now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := runPair(t,
		&ServerConfig{Key: key, CertDER: srvCert.Raw, Rand: rnd(3)},
		&ClientConfig{Rand: rnd(4), RootCert: caCert, ServerName: "chained-server"},
	); err != nil {
		t.Fatalf("chain-verified handshake failed: %v", err)
	}
	// A different CA must be rejected.
	otherKey, _ := rsa.GenerateKey(rnd(9013), 512)
	otherCA, _ := x509lite.Create(rnd(9014), "other-ca", &otherKey.PublicKey,
		"other-ca", otherKey, now.Add(-time.Hour), now.Add(time.Hour))
	if _, _, err := runPair(t,
		&ServerConfig{Key: key, CertDER: srvCert.Raw, Rand: rnd(5)},
		&ClientConfig{Rand: rnd(6), RootCert: otherCA},
	); err == nil {
		t.Fatal("wrong root accepted")
	}
}

func TestServerSuitePreferenceOrder(t *testing.T) {
	key, cert := intIdentity(t)
	// Server prefers AES256 over RC4 regardless of client order.
	cres, _, err := runPair(t,
		&ServerConfig{
			Key: key, CertDER: cert.Raw, Rand: rnd(7),
			Suites: []suite.ID{suite.RSAWithAES256CBCSHA, suite.RSAWithRC4128MD5},
		},
		&ClientConfig{
			Rand:               rnd(8),
			InsecureSkipVerify: true,
			Suites:             []suite.ID{suite.RSAWithRC4128MD5, suite.RSAWithAES256CBCSHA},
		})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Suite.ID != suite.RSAWithAES256CBCSHA {
		t.Fatalf("negotiated %v; server preference not honored", cres.Suite.Name)
	}
}

func TestAnatomyResumedShape(t *testing.T) {
	key, cert := intIdentity(t)
	cache := NewSessionCache(4)
	scfg := &ServerConfig{Key: key, CertDER: cert.Raw, Rand: rnd(9), Cache: cache}
	cres, _, err := runPair(t, scfg, &ClientConfig{Rand: rnd(10), InsecureSkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}

	// Resumed handshake with anatomy: must not contain get_client_kx.
	ct, st := testPipe()
	a := NewAnatomy()
	go Client(record.NewLayer(ct), &ClientConfig{
		Rand: rnd(11), InsecureSkipVerify: true, Session: cres.Session,
	})
	sres, err := Server(record.NewLayer(st),
		&ServerConfig{Key: key, CertDER: cert.Raw, Rand: rnd(12), Cache: cache}, a)
	if err != nil {
		t.Fatal(err)
	}
	if !sres.Resumed {
		t.Fatal("not resumed")
	}
	for _, s := range a.Steps {
		if s.Name == "get_client_kx" || s.Name == "send_server_cert" {
			t.Fatalf("resumed handshake ran step %q", s.Name)
		}
	}
}

func TestTLSDirectHandshake(t *testing.T) {
	key, cert := intIdentity(t)
	cres, sres, err := runPair(t,
		&ServerConfig{Key: key, CertDER: cert.Raw, Rand: rnd(13)},
		&ClientConfig{Rand: rnd(14), InsecureSkipVerify: true,
			Version: record.VersionTLS10})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Session.Version != record.VersionTLS10 ||
		sres.Session.Version != record.VersionTLS10 {
		t.Fatalf("versions: %#04x / %#04x",
			cres.Session.Version, sres.Session.Version)
	}
	if string(cres.Session.Master) != string(sres.Session.Master) {
		t.Fatal("TLS master secrets differ")
	}
}
