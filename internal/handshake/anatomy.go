package handshake

import (
	"time"

	"sslperf/internal/perf"
)

// Crypto function names used in step attributions, matching the
// OpenSSL symbols of the paper's Table 2.
const (
	FnInitFinishedMac   = "init_finished_mac"
	FnRandPseudoBytes   = "rand_pseudo_bytes"
	FnFinishMac         = "finish_mac"
	FnX509              = "X509 functions"
	FnRSAPrivateDecrypt = "rsa_private_decryption"
	FnGenMasterSecret   = "gen_master_secret"
	FnGenKeyBlock       = "gen_key_block"
	FnFinalFinishMac    = "final_finish_mac"
	FnPriDecryption     = "pri_decryption"
	FnMac               = "mac"
	FnPriEncryption     = "pri_encryption"
	// DHE-suite functions (ServerKeyExchange path).
	FnDHGenerateKey = "dh_generate_key"
	FnRSASign       = "rsa_sign"
	FnDHComputeKey  = "dh_compute_key"
)

// A CryptoCall is one attributed crypto operation inside a step.
type CryptoCall struct {
	Name    string
	Elapsed time.Duration
}

// A Step is one of the ten server handshake steps with its total
// latency and the crypto calls it made — one row of Table 2.
type Step struct {
	Index   int
	Name    string
	Desc    string
	Elapsed time.Duration
	Crypto  []CryptoCall
}

// CryptoTotal sums the step's crypto-call time.
func (s *Step) CryptoTotal() time.Duration {
	var sum time.Duration
	for _, c := range s.Crypto {
		sum += c.Elapsed
	}
	return sum
}

// A StepObserver streams step boundaries and crypto calls as the
// handshake FSM crosses them — the live counterpart of the recorded
// Steps slice, used by the telemetry flight recorder. A step that is
// suspended and resumed around I/O waits reports StepEnd once per
// close with its cumulative elapsed time.
type StepObserver interface {
	StepStart(index int, name, desc string)
	StepEnd(index int, name string, elapsed time.Duration)
	CryptoCall(step, fn string, elapsed time.Duration)
}

// An Anatomy records the per-step, per-crypto-call timing of one
// server handshake. A nil *Anatomy is a valid no-op recorder, so the
// fast path costs one pointer test per hook.
type Anatomy struct {
	Steps []Step

	// Observer, when non-nil, receives each step boundary and crypto
	// call as it happens. Set it before the handshake starts.
	Observer StepObserver

	stepStart time.Time
	open      bool
}

// NewAnatomy returns an empty recorder.
func NewAnatomy() *Anatomy { return &Anatomy{} }

// startStep begins timing a step.
func (a *Anatomy) startStep(index int, name, desc string) {
	if a == nil {
		return
	}
	a.endStep()
	a.Steps = append(a.Steps, Step{Index: index, Name: name, Desc: desc})
	if a.Observer != nil {
		a.Observer.StepStart(index, name, desc)
	}
	a.stepStart = time.Now()
	a.open = true
}

// endStep closes the current step, accumulating its wall time.
func (a *Anatomy) endStep() {
	if a == nil || !a.open {
		return
	}
	cur := &a.Steps[len(a.Steps)-1]
	cur.Elapsed += time.Since(a.stepStart)
	a.open = false
	if a.Observer != nil {
		a.Observer.StepEnd(cur.Index, cur.Name, cur.Elapsed)
	}
}

// resumeStep continues timing the most recent step (used when a step
// is interleaved with I/O waits that should not be charged).
func (a *Anatomy) resumeStep() {
	if a == nil || a.open || len(a.Steps) == 0 {
		return
	}
	a.stepStart = time.Now()
	a.open = true
}

// crypto times fn and attributes it to the named crypto function
// within the current step.
func (a *Anatomy) crypto(name string, fn func()) {
	if a == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	d := time.Since(start)
	if len(a.Steps) > 0 {
		cur := &a.Steps[len(a.Steps)-1]
		cur.Crypto = append(cur.Crypto, CryptoCall{Name: name, Elapsed: d})
		if a.Observer != nil {
			a.Observer.CryptoCall(cur.Name, name, d)
		}
	}
}

// cryptoErr is crypto for functions that can fail.
func (a *Anatomy) cryptoErr(name string, fn func() error) error {
	var err error
	a.crypto(name, func() { err = fn() })
	return err
}

// Total returns the summed step latency.
func (a *Anatomy) Total() time.Duration {
	var sum time.Duration
	for _, s := range a.Steps {
		sum += s.Elapsed
	}
	return sum
}

// CryptoBreakdown aggregates crypto-call time by category — the
// paper's Table 3: public key encryption, private key encryption,
// hashing, and other crypto (randomness, X509, key derivation's
// hashing is counted as hashing).
func (a *Anatomy) CryptoBreakdown() *perf.Breakdown {
	b := perf.NewBreakdown()
	// Seed category order for stable output.
	b.Add(CategoryPublic, 0)
	b.Add(CategoryPrivate, 0)
	b.Add(CategoryHash, 0)
	b.Add(CategoryOther, 0)
	for _, s := range a.Steps {
		for _, c := range s.Crypto {
			b.Add(CategoryOf(c.Name), c.Elapsed)
		}
	}
	return b
}

// Crypto-operation categories for Table 3.
const (
	CategoryPublic  = "public key encryption"
	CategoryPrivate = "private key encryption"
	CategoryHash    = "hash functions"
	CategoryOther   = "other functions"
)

// CategoryOf maps a crypto function name (the Fn* constants) onto its
// Table 3 category. Live consumers — the telemetry renderers and the
// trace package's anatomy profiler — share this mapping so offline and
// continuous attributions agree.
func CategoryOf(fn string) string {
	switch fn {
	case FnRSAPrivateDecrypt, FnRSASign, FnDHGenerateKey, FnDHComputeKey:
		return CategoryPublic
	case FnPriDecryption, FnPriEncryption:
		return CategoryPrivate
	case FnFinishMac, FnFinalFinishMac, FnMac, FnGenMasterSecret,
		FnGenKeyBlock, FnInitFinishedMac:
		return CategoryHash
	default:
		return CategoryOther
	}
}

// CryptoTotal sums all crypto-call time across steps.
func (a *Anatomy) CryptoTotal() time.Duration {
	var sum time.Duration
	for _, s := range a.Steps {
		sum += s.CryptoTotal()
	}
	return sum
}
