package handshake

import (
	"time"

	"sslperf/internal/perf"
	"sslperf/internal/probe"
)

// Crypto function names used in step attributions, matching the
// OpenSSL symbols of the paper's Table 2. The canonical definitions
// live in internal/probe (the instrumentation spine); these aliases
// keep the handshake-level API stable.
const (
	FnInitFinishedMac   = probe.FnInitFinishedMac
	FnRandPseudoBytes   = probe.FnRandPseudoBytes
	FnFinishMac         = probe.FnFinishMac
	FnX509              = probe.FnX509
	FnRSAPrivateDecrypt = probe.FnRSAPrivateDecrypt
	FnGenMasterSecret   = probe.FnGenMasterSecret
	FnGenKeyBlock       = probe.FnGenKeyBlock
	FnFinalFinishMac    = probe.FnFinalFinishMac
	FnPriDecryption     = probe.FnPriDecryption
	FnMac               = probe.FnMac
	FnPriEncryption     = probe.FnPriEncryption
	// DHE-suite functions (ServerKeyExchange path).
	FnDHGenerateKey = probe.FnDHGenerateKey
	FnRSASign       = probe.FnRSASign
	FnDHComputeKey  = probe.FnDHComputeKey
)

// Crypto-operation categories for Table 3 (canonical in probe).
const (
	CategoryPublic  = probe.CategoryPublic
	CategoryPrivate = probe.CategoryPrivate
	CategoryHash    = probe.CategoryHash
	CategoryOther   = probe.CategoryOther
)

// CategoryOf maps a crypto function name (the Fn* constants) onto its
// Table 3 category.
func CategoryOf(fn string) string { return probe.CategoryOf(fn) }

// A CryptoCall is one attributed crypto operation inside a step.
type CryptoCall struct {
	Name    string
	Elapsed time.Duration
}

// A Step is one of the ten server handshake steps with its total
// latency and the crypto calls it made — one row of Table 2.
type Step struct {
	Index   int
	Name    string
	Desc    string
	Elapsed time.Duration
	Crypto  []CryptoCall
}

// CryptoTotal sums the step's crypto-call time.
func (s *Step) CryptoTotal() time.Duration {
	var sum time.Duration
	for _, c := range s.Crypto {
		sum += c.Elapsed
	}
	return sum
}

// A StepObserver streams step boundaries and crypto calls as the
// handshake FSM crosses them — the live counterpart of the recorded
// Steps slice.
//
// Deprecated: observers are a shim over the probe spine. New code
// should implement probe.Sink and subscribe via ssl.Config.Probes;
// an Anatomy with a non-nil Observer forwards each event it folds.
type StepObserver interface {
	StepStart(index int, name, desc string)
	StepEnd(index int, name string, elapsed time.Duration)
	CryptoCall(step, fn string, elapsed time.Duration)
}

// An Anatomy records the per-step, per-crypto-call timing of one
// server handshake — the probe sink that folds the event spine into
// Table 2 rows. Attach it with ssl.Conn.SetAnatomy (or pass it to
// Server); it receives step boundaries, attributed crypto calls, and
// the record-layer work of the encrypted finished messages. A nil
// *Anatomy is a valid no-op sink.
type Anatomy struct {
	Steps []Step

	// Observer, when non-nil, receives each folded event.
	//
	// Deprecated: kept for callers of the pre-spine API; prefer a
	// probe.Sink of your own next to the Anatomy.
	Observer StepObserver
}

// NewAnatomy returns an empty recorder.
func NewAnatomy() *Anatomy { return &Anatomy{} }

// Emit implements probe.Sink: step boundaries append and close Steps,
// crypto events append attributed calls, and record-layer crypto
// inside a step lands on the paper's pri_encryption/pri_decryption/
// mac rows. Record work outside any step (bulk transfer) is ignored —
// Table 2 covers the handshake only.
func (a *Anatomy) Emit(e probe.Event) {
	if a == nil {
		return
	}
	switch e.Kind {
	case probe.KindStepEnter:
		a.Steps = append(a.Steps, Step{
			Index: e.Step.Index(), Name: e.Step.Name(), Desc: e.Step.Desc(),
		})
		if a.Observer != nil {
			a.Observer.StepStart(e.Step.Index(), e.Step.Name(), e.Step.Desc())
		}
	case probe.KindStepExit:
		if len(a.Steps) == 0 {
			return
		}
		cur := &a.Steps[len(a.Steps)-1]
		cur.Elapsed += e.Dur
		if a.Observer != nil {
			a.Observer.StepEnd(cur.Index, cur.Name, cur.Elapsed)
		}
	case probe.KindCrypto:
		a.addCrypto(e.Fn, e.Dur)
	case probe.KindRecordCrypto:
		if e.Step == probe.StepNone {
			return
		}
		a.addCrypto(e.Op.StepFn(), e.Dur)
	}
}

// addCrypto attributes one timed crypto call to the current step.
func (a *Anatomy) addCrypto(fn string, d time.Duration) {
	if len(a.Steps) == 0 {
		return
	}
	cur := &a.Steps[len(a.Steps)-1]
	cur.Crypto = append(cur.Crypto, CryptoCall{Name: fn, Elapsed: d})
	if a.Observer != nil {
		a.Observer.CryptoCall(cur.Name, fn, d)
	}
}

// Total returns the summed step latency.
func (a *Anatomy) Total() time.Duration {
	var sum time.Duration
	for _, s := range a.Steps {
		sum += s.Elapsed
	}
	return sum
}

// CryptoBreakdown aggregates crypto-call time by category — the
// paper's Table 3: public key encryption, private key encryption,
// hashing, and other crypto (randomness, X509, key derivation's
// hashing is counted as hashing).
func (a *Anatomy) CryptoBreakdown() *perf.Breakdown {
	b := perf.NewBreakdown()
	// Seed category order for stable output.
	b.Add(CategoryPublic, 0)
	b.Add(CategoryPrivate, 0)
	b.Add(CategoryHash, 0)
	b.Add(CategoryOther, 0)
	for _, s := range a.Steps {
		for _, c := range s.Crypto {
			b.Add(CategoryOf(c.Name), c.Elapsed)
		}
	}
	return b
}

// CryptoTotal sums all crypto-call time across steps.
func (a *Anatomy) CryptoTotal() time.Duration {
	var sum time.Duration
	for _, s := range a.Steps {
		sum += s.CryptoTotal()
	}
	return sum
}
