package handshake

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"sslperf/internal/dh"
	"sslperf/internal/probe"
	"sslperf/internal/record"
	"sslperf/internal/rsa"
	"sslperf/internal/sslcrypto"
	"sslperf/internal/suite"
)

// ServerConfig holds the server-side handshake parameters.
type ServerConfig struct {
	Key *rsa.PrivateKey // server RSA key (decrypts the CKE, signs DHE params)
	// Decrypter, when non-nil, handles the ClientKeyExchange
	// decryption instead of Key — the hook the batch RSA engine plugs
	// into. Key is still required for DHE signing; for RSA key
	// exchange a Decrypter alone suffices.
	Decrypter rsa.Decrypter
	CertDER   []byte // DER leaf certificate presented to clients
	// Chain holds intermediate certificates (leaf's issuer first),
	// sent after the leaf in the Certificate message.
	Chain  [][]byte
	Rand   io.Reader     // randomness source
	Cache  *SessionCache // optional: enables session resumption
	Suites []suite.ID    // acceptable suites in preference order; nil = all
	Time   func() time.Time
	// DHParams is the group for DHE suites; defaults to the 1024-bit
	// Oakley group 2.
	DHParams *dh.Params
	// MaxVersion caps the negotiated protocol version; 0 means
	// TLS 1.0 (the server speaks both SSL 3.0 and TLS 1.0).
	MaxVersion uint16
	// Probe, when non-nil, is the instrumentation bus the handshake
	// emits step/crypto events on. The ssl package passes the
	// connection's bus (already carrying its sinks); direct callers
	// can pass their own or rely on the a parameter of Server.
	Probe *probe.Bus
}

func (c *ServerConfig) maxVersion() uint16 {
	if c.MaxVersion == 0 {
		return record.VersionTLS10
	}
	return c.MaxVersion
}

func (c *ServerConfig) dhParams() *dh.Params {
	if c.DHParams != nil {
		return c.DHParams
	}
	return dh.Group1024()
}

func (c *ServerConfig) now() time.Time {
	if c.Time != nil {
		return c.Time()
	}
	return time.Now() // lint:allow-clock — config default, not a hot-path stamp
}

// Result reports the outcome of a completed handshake.
type Result struct {
	Suite   *suite.Suite
	Session *Session
	Resumed bool
}

// Server runs the server side of the SSLv3 handshake over l, leaving
// l armed with the negotiated bulk cipher in both directions. When a
// is non-nil it records the Table 2 step/crypto anatomy (it joins
// cfg.Probe's sinks, if any). The layer's probe bus is pointed at the
// same bus when not already set, so the record-layer work of the
// encrypted finished messages lands on the same spine; it stays
// attached after the handshake (bulk-phase events carry StepNone and
// the anatomy ignores them).
func Server(l *record.Layer, cfg *ServerConfig, a *Anatomy) (*Result, error) {
	if (cfg.Key == nil && cfg.Decrypter == nil) || len(cfg.CertDER) == 0 {
		return nil, errors.New("handshake: server needs a key and certificate")
	}
	if cfg.Rand == nil {
		return nil, errors.New("handshake: server needs a randomness source")
	}
	bus := cfg.Probe
	if a != nil {
		bus = bus.With(a)
	}
	if l.Probe == nil || l.Probe == cfg.Probe {
		l.Probe = bus
	}
	s := &serverState{layer: l, cfg: cfg, bus: bus, msgs: newMsgReader(l)}
	res, err := s.run()
	if err != nil {
		// Best effort: tell the peer before failing.
		l.SendAlert(record.AlertLevelFatal, record.AlertHandshakeFailure)
		return nil, err
	}
	return res, nil
}

type serverState struct {
	layer *record.Layer
	cfg   *ServerConfig
	bus   *probe.Bus
	msgs  *msgReader

	fin          *sslcrypto.FinishedHash
	version      uint16
	clientHello  clientHelloMsg
	serverRandom [RandomLen]byte
	sessionID    []byte
	suite        *suite.Suite
	master       []byte
	keys         connKeys
	resumed      bool

	// Pending connection states, built during gen_key_block (as
	// OpenSSL's ssl3_change_cipher_state does) and installed when
	// the ChangeCipherSpec messages fly.
	inCipher, outCipher suite.RecordCipher
	inMAC, outMAC       *sslcrypto.MAC

	// dhKey is the server's ephemeral key for DHE suites.
	dhKey *dh.KeyPair
}

// buildCipherStates derives the key block and constructs both
// directions' cipher and MAC objects — the full gen_key_block work.
func (s *serverState) buildCipherStates() error {
	s.layer.SetPrimitives(s.suite.CipherAlgo, s.suite.MAC.String())
	s.keys = sliceKeyBlock(s.version, s.suite, s.master, s.clientHello.random[:], s.serverRandom[:])
	var err error
	if s.inCipher, err = s.suite.NewCipher(s.keys.clientKey, s.keys.clientIV, false); err != nil {
		return err
	}
	if s.inMAC, err = newVersionMAC(s.version, s.suite, s.keys.clientMAC); err != nil {
		return err
	}
	if s.outCipher, err = s.suite.NewCipher(s.keys.serverKey, s.keys.serverIV, true); err != nil {
		return err
	}
	s.outMAC, err = newVersionMAC(s.version, s.suite, s.keys.serverMAC)
	return err
}

func (s *serverState) run() (*Result, error) {
	// Step 0: init — internal data structures and the transcript
	// hashes (init_finished_mac).
	s.bus.StepEnter(probe.StepInit)
	s.bus.Crypto(FnInitFinishedMac, func() { s.fin = sslcrypto.NewFinishedHash() })
	s.bus.StepExit()

	// Step 1: get_client_hello — check version, get client random and
	// session-id, choose a cipher, generate a new session id.
	s.bus.StepEnter(probe.StepGetClientHello)
	if err := s.getClientHello(); err != nil {
		s.bus.StepExit()
		return nil, err
	}
	s.bus.StepExit()

	// Step 2: send_server_hello.
	s.bus.StepEnter(probe.StepSendServerHello)
	if err := s.sendServerHello(); err != nil {
		s.bus.StepExit()
		return nil, err
	}
	s.bus.StepExit()

	if s.resumed {
		if err := s.runResumed(); err != nil {
			return nil, err
		}
	} else {
		if err := s.runFull(); err != nil {
			return nil, err
		}
	}

	// Step 9: server_flush — scrub and cache.
	s.bus.StepEnter(probe.StepServerFlush)
	if s.cfg.Cache != nil && len(s.sessionID) > 0 {
		s.cfg.Cache.Put(&Session{
			ID:      append([]byte(nil), s.sessionID...),
			Suite:   s.suite.ID,
			Master:  append([]byte(nil), s.master...),
			Version: s.version,
		})
	}
	s.bus.StepExit()

	return &Result{
		Suite:   s.suite,
		Resumed: s.resumed,
		Session: &Session{
			ID: s.sessionID, Suite: s.suite.ID,
			Master: s.master, Version: s.version,
		},
	}, nil
}

// runFull performs steps 3–8 of a full (non-resumed) handshake.
func (s *serverState) runFull() error {
	// Step 3: send_server_cert. (For RSA suites the server key
	// exchange and certificate request messages are skipped, as in
	// the paper: the certificate's RSA key does the key exchange and
	// clients are not authenticated. DHE suites send the signed
	// ephemeral parameters right after the certificate.)
	s.bus.StepEnter(probe.StepSendServerCert)
	if err := s.sendCertificate(); err != nil {
		s.bus.StepExit()
		return err
	}
	s.bus.StepExit()

	if s.suite.Kx == suite.KxDHERSA {
		s.bus.StepEnter(probe.StepSendServerKX)
		if err := s.sendServerKeyExchange(); err != nil {
			s.bus.StepExit()
			return err
		}
		s.bus.StepExit()
	}

	// Step 4: send_server_done + buffer control.
	s.bus.StepEnter(probe.StepSendServerDone)
	done := serverHelloDone()
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(done) })
	if err := s.layer.WriteRecord(record.TypeHandshake, done); err != nil {
		s.bus.StepExit()
		return err
	}
	s.bus.StepExit()

	// Step 5: get_client_kx — RSA-decrypt the pre-master, derive the
	// master secret.
	s.bus.StepEnter(probe.StepGetClientKX)
	if err := s.getClientKeyExchange(); err != nil {
		s.bus.StepExit()
		return err
	}
	s.bus.StepExit()

	// Step 6: read client ChangeCipherSpec, generate the key block,
	// compute the expected client finished hashes, and verify the
	// (first encrypted) client finished message.
	s.bus.StepEnter(probe.StepGetFinished)
	if err := s.readClientCCSAndFinished(); err != nil {
		s.bus.StepExit()
		return err
	}
	s.bus.StepExit()

	// Step 7: send_cipher_spec.
	s.bus.StepEnter(probe.StepSendCipherSpec)
	if err := s.sendCCS(); err != nil {
		s.bus.StepExit()
		return err
	}
	s.bus.StepExit()

	// Step 8: send_finished — server finished hashes with 'SRVR'
	// padding, MACed and encrypted under the new keys.
	s.bus.StepEnter(probe.StepSendFinished)
	if err := s.sendFinished(); err != nil {
		s.bus.StepExit()
		return err
	}
	s.bus.StepExit()
	return nil
}

// runResumed performs the short resumed-session tail: the server
// sends CCS+Finished first, then verifies the client's.
func (s *serverState) runResumed() error {
	s.bus.StepEnter(probe.StepGenKeyBlock)
	if err := s.bus.CryptoErr(FnGenKeyBlock, s.buildCipherStates); err != nil {
		s.bus.StepExit()
		return err
	}
	s.bus.StepExit()

	s.bus.StepEnter(probe.StepSendCipherSpec)
	if err := s.sendCCS(); err != nil {
		s.bus.StepExit()
		return err
	}
	s.bus.StepExit()

	s.bus.StepEnter(probe.StepSendFinished)
	if err := s.sendFinished(); err != nil {
		s.bus.StepExit()
		return err
	}
	s.bus.StepExit()

	s.bus.StepEnter(probe.StepGetFinished)
	if err := s.msgs.readCCS(); err != nil {
		s.bus.StepExit()
		return err
	}
	s.layer.SetReadState(s.inCipher, s.inMAC)
	err := s.verifyClientFinished()
	s.bus.StepExit()
	return err
}

func (s *serverState) getClientHello() error {
	msgType, raw, err := s.msgs.next()
	if err != nil {
		return err
	}
	if msgType != typeClientHello {
		return fmt.Errorf("handshake: expected ClientHello, got type %d", msgType)
	}
	if err := s.clientHello.unmarshal(raw[4:]); err != nil {
		return err
	}
	if s.clientHello.version < record.VersionSSL30 {
		return fmt.Errorf("handshake: client version %#04x too old", s.clientHello.version)
	}
	s.version = s.clientHello.version
	if max := s.cfg.maxVersion(); s.version > max {
		s.version = max
	}
	s.layer.SetProtocolVersion(s.version)
	// Absorb into the transcript (finish_mac).
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })

	// Resumption probe.
	if s.cfg.Cache != nil && len(s.clientHello.sessionID) > 0 {
		if sess := s.cfg.Cache.Get(s.clientHello.sessionID); sess != nil && sess.Version == s.version {
			if sessSuite, err := suite.ByID(sess.Suite); err == nil && s.offered(sess.Suite) {
				s.resumed = true
				s.suite = sessSuite
				s.sessionID = append([]byte(nil), sess.ID...)
				s.master = append([]byte(nil), sess.Master...)
			}
		}
	}
	if s.resumed {
		return nil
	}

	// Choose a cipher from the offered list, honoring cfg.Suites.
	offered := s.clientHello.cipherSuites
	if s.cfg.Suites != nil {
		var filtered []suite.ID
		for _, want := range s.cfg.Suites {
			for _, got := range offered {
				if want == got {
					filtered = append(filtered, want)
				}
			}
		}
		offered = filtered
	}
	chosen, err := suite.Choose(offered)
	if err != nil {
		return err
	}
	s.suite = chosen

	// Generate a fresh session id (rand_pseudo_bytes).
	s.sessionID = make([]byte, SessionIDLen)
	return s.bus.CryptoErr(FnRandPseudoBytes, func() error {
		_, err := io.ReadFull(s.cfg.Rand, s.sessionID)
		return err
	})
}

// offered reports whether the client offered the given suite.
func (s *serverState) offered(id suite.ID) bool {
	for _, cs := range s.clientHello.cipherSuites {
		if cs == id {
			return true
		}
	}
	return false
}

func (s *serverState) sendServerHello() error {
	if err := s.bus.CryptoErr(FnRandPseudoBytes, func() error {
		return fillRandom(s.cfg.Rand, s.serverRandom[:], s.cfg.now())
	}); err != nil {
		return err
	}
	hello := serverHelloMsg{
		version:     s.version,
		sessionID:   s.sessionID,
		cipherSuite: s.suite.ID,
	}
	hello.random = s.serverRandom
	raw := hello.marshal()
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })
	return s.layer.WriteRecord(record.TypeHandshake, raw)
}

func (s *serverState) sendCertificate() error {
	var raw []byte
	// Building the certificate message is the "X509 functions" cost
	// of Table 2 step 3.
	s.bus.Crypto(FnX509, func() {
		certs := append([][]byte{s.cfg.CertDER}, s.cfg.Chain...)
		msg := certificateMsg{certificates: certs}
		raw = msg.marshal()
	})
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })
	return s.layer.WriteRecord(record.TypeHandshake, raw)
}

// sendServerKeyExchange generates the ephemeral DH key, signs the
// parameters with the server's RSA key, and sends the message.
func (s *serverState) sendServerKeyExchange() error {
	if s.cfg.Key == nil {
		return errors.New("handshake: DHE suites need the full RSA key for signing")
	}
	params := s.cfg.dhParams()
	if err := s.bus.CryptoErr(FnDHGenerateKey, func() error {
		var err error
		s.dhKey, err = dh.GenerateKey(s.cfg.Rand, params)
		return err
	}); err != nil {
		return err
	}
	ske := serverKeyExchangeMsg{
		p: params.P.Bytes(),
		g: params.G.Bytes(),
		y: s.dhKey.Y.Bytes(),
	}
	digest := skeDigest(s.clientHello.random[:], s.serverRandom[:], ske.paramBytes())
	if err := s.bus.CryptoErr(FnRSASign, func() error {
		var err error
		ske.sig, err = s.cfg.Key.SignPKCS1(rsa.HashMD5SHA1, digest)
		return err
	}); err != nil {
		return err
	}
	raw := ske.marshal()
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })
	return s.layer.WriteRecord(record.TypeHandshake, raw)
}

func (s *serverState) getClientKeyExchange() error {
	msgType, raw, err := s.msgs.next()
	if err != nil {
		return err
	}
	if msgType != typeClientKeyExchange {
		return fmt.Errorf("handshake: expected ClientKeyExchange, got type %d", msgType)
	}
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })

	var preMaster []byte
	if s.suite.Kx == suite.KxDHERSA {
		var ckx clientDHPublicMsg
		if err := ckx.unmarshal(raw[4:]); err != nil {
			return err
		}
		if err := s.bus.CryptoErr(FnDHComputeKey, func() error {
			peerY := newIntFromBytes(ckx.y)
			var err error
			preMaster, err = s.dhKey.SharedSecret(peerY)
			return err
		}); err != nil {
			return err
		}
		s.dhKey.Cleanse()
	} else {
		body := raw[4:]
		if s.version >= record.VersionTLS10 {
			inner, rest, err := readOpaque16(body)
			if err != nil || len(rest) != 0 {
				return errors.New("handshake: malformed TLS ClientKeyExchange")
			}
			body = inner
		}
		var ckx clientKeyExchangeMsg
		if err := ckx.unmarshal(body); err != nil {
			return err
		}
		dec := rsa.Decrypter(s.cfg.Key)
		if s.cfg.Decrypter != nil {
			dec = s.cfg.Decrypter
		}
		if err := s.bus.CryptoErr(FnRSAPrivateDecrypt, func() error {
			var err error
			preMaster, err = dec.DecryptPKCS1(s.cfg.Rand, ckx.encryptedPreMaster)
			return err
		}); err != nil {
			return err
		}
		if len(preMaster) != sslcrypto.PreMasterLen {
			return errors.New("handshake: pre-master has wrong length")
		}
		if uint16(preMaster[0])<<8|uint16(preMaster[1]) != s.clientHello.version {
			return errors.New("handshake: pre-master version mismatch")
		}
	}
	s.bus.Crypto(FnGenMasterSecret, func() {
		s.master = deriveMaster(s.version, preMaster,
			s.clientHello.random[:], s.serverRandom[:])
	})
	// Scrub the pre-master (the cleanup the paper notes in step 8/9).
	for i := range preMaster {
		preMaster[i] = 0
	}
	return nil
}

func (s *serverState) readClientCCSAndFinished() error {
	if err := s.msgs.readCCS(); err != nil {
		return err
	}
	// gen_key_block: derive the key block and build both directions'
	// pending cipher states.
	if err := s.bus.CryptoErr(FnGenKeyBlock, s.buildCipherStates); err != nil {
		return err
	}
	s.layer.SetReadState(s.inCipher, s.inMAC)
	return s.verifyClientFinished()
}

// verifyClientFinished computes the expected client finished hashes
// (final_finish_mac with 'CLNT'), reads the first encrypted message
// (pri_decryption + mac via the record layer), and compares.
func (s *serverState) verifyClientFinished() error {
	var expected []byte
	s.bus.Crypto(FnFinalFinishMac, func() {
		expected = verifyDataFor(s.version, s.fin, true, s.master)
	})

	// The record layer's decryption and MAC of the finished message
	// emit on the same bus with the current step attached, so Table 2
	// reports its pri_decryption and mac rows without any observer
	// swapping.
	msgType, raw, err := s.msgs.next()
	if err != nil {
		return err
	}
	if msgType != typeFinished {
		return fmt.Errorf("handshake: expected Finished, got type %d", msgType)
	}
	var fin finishedMsg
	if err := fin.unmarshal(raw[4:], finishedLenFor(s.version)); err != nil {
		return err
	}
	if !bytes.Equal(fin.verify, expected) {
		return errors.New("handshake: client finished verification failed")
	}
	// The client's finished message joins the transcript for the
	// server's own finished hash.
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })
	return nil
}

func (s *serverState) sendCCS() error {
	if err := s.layer.WriteRecord(record.TypeChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	s.layer.SetWriteState(s.outCipher, s.outMAC)
	return nil
}

func (s *serverState) sendFinished() error {
	var verify []byte
	s.bus.Crypto(FnFinalFinishMac, func() {
		verify = verifyDataFor(s.version, s.fin, false, s.master)
	})
	msg := finishedMsg{verify: verify}
	raw := msg.marshal()
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })
	return s.layer.WriteRecord(record.TypeHandshake, raw)
}

// fillRandom fills buf with a 4-byte timestamp followed by random
// bytes, the SSLv3 hello-random layout.
func fillRandom(rnd io.Reader, buf []byte, now time.Time) error {
	if len(buf) != RandomLen {
		return errors.New("handshake: random buffer must be 32 bytes")
	}
	t := uint32(now.Unix())
	buf[0] = byte(t >> 24)
	buf[1] = byte(t >> 16)
	buf[2] = byte(t >> 8)
	buf[3] = byte(t)
	_, err := io.ReadFull(rnd, buf[4:])
	return err
}
