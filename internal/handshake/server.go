package handshake

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"sslperf/internal/dh"
	"sslperf/internal/probe"
	"sslperf/internal/record"
	"sslperf/internal/rsa"
	"sslperf/internal/sslcrypto"
	"sslperf/internal/suite"
)

// ServerConfig holds the server-side handshake parameters.
type ServerConfig struct {
	Key *rsa.PrivateKey // server RSA key (decrypts the CKE, signs DHE params)
	// Decrypter, when non-nil, handles the ClientKeyExchange
	// decryption instead of Key — the hook the batch RSA engine plugs
	// into. Key is still required for DHE signing; for RSA key
	// exchange a Decrypter alone suffices.
	Decrypter rsa.Decrypter
	CertDER   []byte // DER leaf certificate presented to clients
	// Chain holds intermediate certificates (leaf's issuer first),
	// sent after the leaf in the Certificate message.
	Chain  [][]byte
	Rand   io.Reader     // randomness source
	Cache  *SessionCache // optional: enables session resumption
	Suites []suite.ID    // acceptable suites in preference order; nil = all
	Time   func() time.Time
	// DHParams is the group for DHE suites; defaults to the 1024-bit
	// Oakley group 2.
	DHParams *dh.Params
	// MaxVersion caps the negotiated protocol version; 0 means
	// TLS 1.0 (the server speaks both SSL 3.0 and TLS 1.0).
	MaxVersion uint16
	// Probe, when non-nil, is the instrumentation bus the handshake
	// emits step/crypto events on. The ssl package passes the
	// connection's bus (already carrying its sinks); direct callers
	// can pass their own or rely on the a parameter of Server.
	Probe *probe.Bus
}

func (c *ServerConfig) maxVersion() uint16 {
	if c.MaxVersion == 0 {
		return record.VersionTLS10
	}
	return c.MaxVersion
}

func (c *ServerConfig) dhParams() *dh.Params {
	if c.DHParams != nil {
		return c.DHParams
	}
	return dh.Group1024()
}

func (c *ServerConfig) now() time.Time {
	if c.Time != nil {
		return c.Time()
	}
	return time.Now() // lint:allow-clock — config default, not a hot-path stamp
}

// Result reports the outcome of a completed handshake.
type Result struct {
	Suite   *suite.Suite
	Session *Session
	Resumed bool
}

// srvPhase enumerates the server FSM's resumable states. Each phase
// is one uninterruptible slice of work whose only suspension point is
// its leading read: a phase either returns ErrWouldBlock having done
// nothing but buffer partial records (safe to re-enter), or runs to
// completion exactly once — so crypto probe events are never emitted
// twice however often a phase resumes.
type srvPhase int

const (
	srvInit srvPhase = iota
	srvClientHello
	srvServerHello
	srvCert
	srvServerKX
	srvServerDone
	srvClientKX
	srvClientCCS
	srvClientFinished
	srvSendCCS
	srvSendFinished
	srvResumedKeyBlock
	srvResumedCCS
	srvResumedFinished
	srvResumedClientCCS
	srvResumedClientFin
	srvFlush
	srvDone
)

// probeStep maps each phase onto its Table-2 step. Adjacent phases
// sharing a step (the CCS-read and finished-verify halves of
// get_finished) stay inside one StepEnter/StepExit pair, and the bus
// suspends rather than exits across WouldBlock, so sinks see exactly
// the event stream the straight-line FSM emitted.
func (p srvPhase) probeStep() probe.Step {
	switch p {
	case srvInit:
		return probe.StepInit
	case srvClientHello:
		return probe.StepGetClientHello
	case srvServerHello:
		return probe.StepSendServerHello
	case srvCert:
		return probe.StepSendServerCert
	case srvServerKX:
		return probe.StepSendServerKX
	case srvServerDone:
		return probe.StepSendServerDone
	case srvClientKX:
		return probe.StepGetClientKX
	case srvClientCCS, srvClientFinished:
		return probe.StepGetFinished
	case srvSendCCS:
		return probe.StepSendCipherSpec
	case srvSendFinished:
		return probe.StepSendFinished
	case srvResumedKeyBlock:
		return probe.StepGenKeyBlock
	case srvResumedCCS:
		return probe.StepSendCipherSpec
	case srvResumedFinished:
		return probe.StepSendFinished
	case srvResumedClientCCS, srvResumedClientFin:
		return probe.StepGetFinished
	case srvFlush:
		return probe.StepServerFlush
	}
	return probe.StepNone
}

// Server runs the server side of the SSLv3 handshake over l, leaving
// l armed with the negotiated bulk cipher in both directions. When a
// is non-nil it records the Table 2 step/crypto anatomy (it joins
// cfg.Probe's sinks, if any). The layer's probe bus is pointed at the
// same bus when not already set, so the record-layer work of the
// encrypted finished messages lands on the same spine; it stays
// attached after the handshake (bulk-phase events carry StepNone and
// the anatomy ignores them).
//
// Server is the blocking wrapper over ServerFSM: the layer's reads
// park in the transport, so a single Step call runs the machine to
// completion — blocking and non-blocking handshakes share every line
// of FSM code and are wire-identical by construction.
func Server(l *record.Layer, cfg *ServerConfig, a *Anatomy) (*Result, error) {
	fsm, err := NewServerFSM(l, cfg, a)
	if err != nil {
		return nil, err
	}
	if err := fsm.Step(); err != nil {
		return nil, err
	}
	return fsm.Result(), nil
}

// ServerFSM is the resumable server handshake: one Step call advances
// through as many phases as the fed bytes allow, returning
// ErrWouldBlock when the peer's next flight has not arrived (feed the
// record core and call Step again), nil when the handshake is
// complete, or a terminal error (after which a fatal alert has been
// queued on the record connection and further Steps return the same
// error).
type ServerFSM struct {
	s *serverState
}

// NewServerFSM validates the configuration and wires the probe spine,
// returning a machine parked before step 0.
func NewServerFSM(conn RecordConn, cfg *ServerConfig, a *Anatomy) (*ServerFSM, error) {
	if (cfg.Key == nil && cfg.Decrypter == nil) || len(cfg.CertDER) == 0 {
		return nil, errors.New("handshake: server needs a key and certificate")
	}
	if cfg.Rand == nil {
		return nil, errors.New("handshake: server needs a randomness source")
	}
	bus := cfg.Probe
	if a != nil {
		bus = bus.With(a)
	}
	if conn.ProbeBus() == nil || conn.ProbeBus() == cfg.Probe {
		conn.SetProbe(bus)
	}
	s := &serverState{conn: conn, cfg: cfg, bus: bus, msgs: newMsgReader(conn)}
	return &ServerFSM{s: s}, nil
}

// Step advances the machine; see ServerFSM.
func (f *ServerFSM) Step() error { return f.s.step() }

// Done reports whether the handshake completed successfully.
func (f *ServerFSM) Done() bool { return f.s.phase == srvDone && f.s.err == nil }

// Result returns the completed handshake's outcome, or nil before
// Done.
func (f *ServerFSM) Result() *Result { return f.s.res }

type serverState struct {
	conn RecordConn
	cfg  *ServerConfig
	bus  *probe.Bus
	msgs *msgReader

	phase    srvPhase
	openStep probe.Step // probe step currently entered (StepNone between steps)
	err      error      // sticky terminal error
	res      *Result

	fin          *sslcrypto.FinishedHash
	version      uint16
	clientHello  clientHelloMsg
	serverRandom [RandomLen]byte
	sessionID    []byte
	suite        *suite.Suite
	master       []byte
	keys         connKeys
	resumed      bool

	// expected is the precomputed client finished verify data: the
	// final_finish_mac runs in the CCS phase (exactly once), so the
	// finished-verify phase can resume across WouldBlock without
	// re-emitting the crypto event.
	expected []byte

	// Pending connection states, built during gen_key_block (as
	// OpenSSL's ssl3_change_cipher_state does) and installed when
	// the ChangeCipherSpec messages fly.
	inCipher, outCipher suite.RecordCipher
	inMAC, outMAC       *sslcrypto.MAC

	// dhKey is the server's ephemeral key for DHE suites.
	dhKey *dh.KeyPair
}

// buildCipherStates derives the key block and constructs both
// directions' cipher and MAC objects — the full gen_key_block work.
func (s *serverState) buildCipherStates() error {
	s.conn.SetPrimitives(s.suite.CipherAlgo, s.suite.MAC.String())
	s.keys = sliceKeyBlock(s.version, s.suite, s.master, s.clientHello.random[:], s.serverRandom[:])
	var err error
	if s.inCipher, err = s.suite.NewCipher(s.keys.clientKey, s.keys.clientIV, false); err != nil {
		return err
	}
	if s.inMAC, err = newVersionMAC(s.version, s.suite, s.keys.clientMAC); err != nil {
		return err
	}
	if s.outCipher, err = s.suite.NewCipher(s.keys.serverKey, s.keys.serverIV, true); err != nil {
		return err
	}
	s.outMAC, err = newVersionMAC(s.version, s.suite, s.keys.serverMAC)
	return err
}

// step is the FSM driver: it opens/closes probe steps at phase
// boundaries, suspends the step clock across WouldBlock, and turns a
// terminal error into a queued fatal alert.
func (s *serverState) step() error {
	if s.err != nil {
		return s.err
	}
	if s.phase == srvDone {
		return nil
	}
	// Re-entry after WouldBlock: restart the suspended step's clock
	// (a no-op on first entry or a nil bus).
	s.bus.StepResume()
	for {
		if st := s.phase.probeStep(); st != s.openStep {
			// StepEnter closes the previous step first, so sinks see
			// the same Exit-then-Enter stream the straight-line code
			// emitted.
			s.bus.StepEnter(st)
			s.openStep = st
		}
		err := s.runPhase()
		if err == ErrWouldBlock {
			s.bus.StepSuspend()
			return err
		}
		if err != nil {
			s.bus.StepExit()
			s.openStep = probe.StepNone
			s.err = err
			// Best effort: tell the peer before failing. Over a
			// sans-IO core this queues the alert for the caller's
			// flush.
			s.conn.SendAlert(record.AlertLevelFatal, record.AlertHandshakeFailure)
			return err
		}
		if s.phase == srvDone {
			s.bus.StepExit()
			s.openStep = probe.StepNone
			return nil
		}
	}
}

// runPhase executes the current phase's slice of work, advancing
// s.phase on success.
func (s *serverState) runPhase() error {
	switch s.phase {
	case srvInit:
		// Step 0: init — internal data structures and the transcript
		// hashes (init_finished_mac).
		s.bus.Crypto(FnInitFinishedMac, func() { s.fin = sslcrypto.NewFinishedHash() })
		s.phase = srvClientHello

	case srvClientHello:
		// Step 1: get_client_hello — check version, get client random
		// and session-id, choose a cipher, generate a new session id.
		if err := s.getClientHello(); err != nil {
			return err
		}
		s.phase = srvServerHello

	case srvServerHello:
		// Step 2: send_server_hello.
		if err := s.sendServerHello(); err != nil {
			return err
		}
		if s.resumed {
			s.phase = srvResumedKeyBlock
		} else {
			s.phase = srvCert
		}

	case srvCert:
		// Step 3: send_server_cert. (For RSA suites the server key
		// exchange and certificate request messages are skipped, as in
		// the paper: the certificate's RSA key does the key exchange
		// and clients are not authenticated. DHE suites send the
		// signed ephemeral parameters right after the certificate.)
		if err := s.sendCertificate(); err != nil {
			return err
		}
		if s.suite.Kx == suite.KxDHERSA {
			s.phase = srvServerKX
		} else {
			s.phase = srvServerDone
		}

	case srvServerKX:
		if err := s.sendServerKeyExchange(); err != nil {
			return err
		}
		s.phase = srvServerDone

	case srvServerDone:
		// Step 4: send_server_done + buffer control.
		done := serverHelloDone()
		s.bus.Crypto(FnFinishMac, func() { s.fin.Write(done) })
		if err := s.conn.WriteRecord(record.TypeHandshake, done); err != nil {
			return err
		}
		s.phase = srvClientKX

	case srvClientKX:
		// Step 5: get_client_kx — RSA-decrypt the pre-master, derive
		// the master secret.
		if err := s.getClientKeyExchange(); err != nil {
			return err
		}
		s.phase = srvClientCCS

	case srvClientCCS:
		// Step 6, first half: read the client ChangeCipherSpec,
		// generate the key block, arm the read state, and precompute
		// the expected client finished hashes.
		if err := s.msgs.readCCS(); err != nil {
			return err
		}
		if err := s.bus.CryptoErr(FnGenKeyBlock, s.buildCipherStates); err != nil {
			return err
		}
		s.conn.SetReadState(s.inCipher, s.inMAC)
		s.bus.Crypto(FnFinalFinishMac, func() {
			s.expected = verifyDataFor(s.version, s.fin, true, s.master)
		})
		s.phase = srvClientFinished

	case srvClientFinished:
		// Step 6, second half: verify the (first encrypted) client
		// finished message.
		if err := s.verifyClientFinished(); err != nil {
			return err
		}
		s.phase = srvSendCCS

	case srvSendCCS:
		// Step 7: send_cipher_spec.
		if err := s.sendCCS(); err != nil {
			return err
		}
		s.phase = srvSendFinished

	case srvSendFinished:
		// Step 8: send_finished — server finished hashes with 'SRVR'
		// padding, MACed and encrypted under the new keys.
		if err := s.sendFinished(); err != nil {
			return err
		}
		s.phase = srvFlush

	case srvResumedKeyBlock:
		if err := s.bus.CryptoErr(FnGenKeyBlock, s.buildCipherStates); err != nil {
			return err
		}
		s.phase = srvResumedCCS

	case srvResumedCCS:
		if err := s.sendCCS(); err != nil {
			return err
		}
		s.phase = srvResumedFinished

	case srvResumedFinished:
		if err := s.sendFinished(); err != nil {
			return err
		}
		s.phase = srvResumedClientCCS

	case srvResumedClientCCS:
		if err := s.msgs.readCCS(); err != nil {
			return err
		}
		s.conn.SetReadState(s.inCipher, s.inMAC)
		s.bus.Crypto(FnFinalFinishMac, func() {
			s.expected = verifyDataFor(s.version, s.fin, true, s.master)
		})
		s.phase = srvResumedClientFin

	case srvResumedClientFin:
		if err := s.verifyClientFinished(); err != nil {
			return err
		}
		s.phase = srvFlush

	case srvFlush:
		// Step 9: server_flush — scrub and cache.
		if s.cfg.Cache != nil && len(s.sessionID) > 0 {
			s.cfg.Cache.Put(&Session{
				ID:      append([]byte(nil), s.sessionID...),
				Suite:   s.suite.ID,
				Master:  append([]byte(nil), s.master...),
				Version: s.version,
			})
		}
		s.res = &Result{
			Suite:   s.suite,
			Resumed: s.resumed,
			Session: &Session{
				ID: s.sessionID, Suite: s.suite.ID,
				Master: s.master, Version: s.version,
			},
		}
		s.phase = srvDone
	}
	return nil
}

func (s *serverState) getClientHello() error {
	msgType, raw, err := s.msgs.next()
	if err != nil {
		return err
	}
	if msgType != typeClientHello {
		return fmt.Errorf("handshake: expected ClientHello, got type %d", msgType)
	}
	if err := s.clientHello.unmarshal(raw[4:]); err != nil {
		return err
	}
	if s.clientHello.version < record.VersionSSL30 {
		return fmt.Errorf("handshake: client version %#04x too old", s.clientHello.version)
	}
	s.version = s.clientHello.version
	if max := s.cfg.maxVersion(); s.version > max {
		s.version = max
	}
	s.conn.SetProtocolVersion(s.version)
	// Absorb into the transcript (finish_mac).
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })

	// Resumption probe.
	if s.cfg.Cache != nil && len(s.clientHello.sessionID) > 0 {
		if sess := s.cfg.Cache.Get(s.clientHello.sessionID); sess != nil && sess.Version == s.version {
			if sessSuite, err := suite.ByID(sess.Suite); err == nil && s.offered(sess.Suite) {
				s.resumed = true
				s.suite = sessSuite
				s.sessionID = append([]byte(nil), sess.ID...)
				s.master = append([]byte(nil), sess.Master...)
			}
		}
	}
	if s.resumed {
		return nil
	}

	// Choose a cipher from the offered list, honoring cfg.Suites.
	offered := s.clientHello.cipherSuites
	if s.cfg.Suites != nil {
		var filtered []suite.ID
		for _, want := range s.cfg.Suites {
			for _, got := range offered {
				if want == got {
					filtered = append(filtered, want)
				}
			}
		}
		offered = filtered
	}
	chosen, err := suite.Choose(offered)
	if err != nil {
		return err
	}
	s.suite = chosen

	// Generate a fresh session id (rand_pseudo_bytes).
	s.sessionID = make([]byte, SessionIDLen)
	return s.bus.CryptoErr(FnRandPseudoBytes, func() error {
		_, err := io.ReadFull(s.cfg.Rand, s.sessionID) // lint:allow-read — randomness source, not the transport
		return err
	})
}

// offered reports whether the client offered the given suite.
func (s *serverState) offered(id suite.ID) bool {
	for _, cs := range s.clientHello.cipherSuites {
		if cs == id {
			return true
		}
	}
	return false
}

func (s *serverState) sendServerHello() error {
	if err := s.bus.CryptoErr(FnRandPseudoBytes, func() error {
		return fillRandom(s.cfg.Rand, s.serverRandom[:], s.cfg.now())
	}); err != nil {
		return err
	}
	hello := serverHelloMsg{
		version:     s.version,
		sessionID:   s.sessionID,
		cipherSuite: s.suite.ID,
	}
	hello.random = s.serverRandom
	raw := hello.marshal()
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })
	return s.conn.WriteRecord(record.TypeHandshake, raw)
}

func (s *serverState) sendCertificate() error {
	var raw []byte
	// Building the certificate message is the "X509 functions" cost
	// of Table 2 step 3.
	s.bus.Crypto(FnX509, func() {
		certs := append([][]byte{s.cfg.CertDER}, s.cfg.Chain...)
		msg := certificateMsg{certificates: certs}
		raw = msg.marshal()
	})
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })
	return s.conn.WriteRecord(record.TypeHandshake, raw)
}

// sendServerKeyExchange generates the ephemeral DH key, signs the
// parameters with the server's RSA key, and sends the message.
func (s *serverState) sendServerKeyExchange() error {
	if s.cfg.Key == nil {
		return errors.New("handshake: DHE suites need the full RSA key for signing")
	}
	params := s.cfg.dhParams()
	if err := s.bus.CryptoErr(FnDHGenerateKey, func() error {
		var err error
		s.dhKey, err = dh.GenerateKey(s.cfg.Rand, params)
		return err
	}); err != nil {
		return err
	}
	ske := serverKeyExchangeMsg{
		p: params.P.Bytes(),
		g: params.G.Bytes(),
		y: s.dhKey.Y.Bytes(),
	}
	digest := skeDigest(s.clientHello.random[:], s.serverRandom[:], ske.paramBytes())
	if err := s.bus.CryptoErr(FnRSASign, func() error {
		var err error
		ske.sig, err = s.cfg.Key.SignPKCS1(rsa.HashMD5SHA1, digest)
		return err
	}); err != nil {
		return err
	}
	raw := ske.marshal()
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })
	return s.conn.WriteRecord(record.TypeHandshake, raw)
}

func (s *serverState) getClientKeyExchange() error {
	msgType, raw, err := s.msgs.next()
	if err != nil {
		return err
	}
	if msgType != typeClientKeyExchange {
		return fmt.Errorf("handshake: expected ClientKeyExchange, got type %d", msgType)
	}
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })

	var preMaster []byte
	if s.suite.Kx == suite.KxDHERSA {
		var ckx clientDHPublicMsg
		if err := ckx.unmarshal(raw[4:]); err != nil {
			return err
		}
		if err := s.bus.CryptoErr(FnDHComputeKey, func() error {
			peerY := newIntFromBytes(ckx.y)
			var err error
			preMaster, err = s.dhKey.SharedSecret(peerY)
			return err
		}); err != nil {
			return err
		}
		s.dhKey.Cleanse()
	} else {
		body := raw[4:]
		if s.version >= record.VersionTLS10 {
			inner, rest, err := readOpaque16(body)
			if err != nil || len(rest) != 0 {
				return errors.New("handshake: malformed TLS ClientKeyExchange")
			}
			body = inner
		}
		var ckx clientKeyExchangeMsg
		if err := ckx.unmarshal(body); err != nil {
			return err
		}
		dec := rsa.Decrypter(s.cfg.Key)
		if s.cfg.Decrypter != nil {
			dec = s.cfg.Decrypter
		}
		if err := s.bus.CryptoErr(FnRSAPrivateDecrypt, func() error {
			var err error
			preMaster, err = dec.DecryptPKCS1(s.cfg.Rand, ckx.encryptedPreMaster)
			return err
		}); err != nil {
			return err
		}
		if len(preMaster) != sslcrypto.PreMasterLen {
			return errors.New("handshake: pre-master has wrong length")
		}
		if uint16(preMaster[0])<<8|uint16(preMaster[1]) != s.clientHello.version {
			return errors.New("handshake: pre-master version mismatch")
		}
	}
	s.bus.Crypto(FnGenMasterSecret, func() {
		s.master = deriveMaster(s.version, preMaster,
			s.clientHello.random[:], s.serverRandom[:])
	})
	// Scrub the pre-master (the cleanup the paper notes in step 8/9).
	for i := range preMaster {
		preMaster[i] = 0
	}
	return nil
}

// verifyClientFinished reads the first encrypted message
// (pri_decryption + mac via the record layer) and compares it to the
// expected hashes the CCS phase precomputed.
func (s *serverState) verifyClientFinished() error {
	// The record layer's decryption and MAC of the finished message
	// emit on the same bus with the current step attached, so Table 2
	// reports its pri_decryption and mac rows without any observer
	// swapping.
	msgType, raw, err := s.msgs.next()
	if err != nil {
		return err
	}
	if msgType != typeFinished {
		return fmt.Errorf("handshake: expected Finished, got type %d", msgType)
	}
	var fin finishedMsg
	if err := fin.unmarshal(raw[4:], finishedLenFor(s.version)); err != nil {
		return err
	}
	if !bytes.Equal(fin.verify, s.expected) {
		return errors.New("handshake: client finished verification failed")
	}
	// The client's finished message joins the transcript for the
	// server's own finished hash.
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })
	return nil
}

func (s *serverState) sendCCS() error {
	if err := s.conn.WriteRecord(record.TypeChangeCipherSpec, []byte{1}); err != nil {
		return err
	}
	s.conn.SetWriteState(s.outCipher, s.outMAC)
	return nil
}

func (s *serverState) sendFinished() error {
	var verify []byte
	s.bus.Crypto(FnFinalFinishMac, func() {
		verify = verifyDataFor(s.version, s.fin, false, s.master)
	})
	msg := finishedMsg{verify: verify}
	raw := msg.marshal()
	s.bus.Crypto(FnFinishMac, func() { s.fin.Write(raw) })
	return s.conn.WriteRecord(record.TypeHandshake, raw)
}

// fillRandom fills buf with a 4-byte timestamp followed by random
// bytes, the SSLv3 hello-random layout.
func fillRandom(rnd io.Reader, buf []byte, now time.Time) error {
	if len(buf) != RandomLen {
		return errors.New("handshake: random buffer must be 32 bytes")
	}
	t := uint32(now.Unix())
	buf[0] = byte(t >> 24)
	buf[1] = byte(t >> 16)
	buf[2] = byte(t >> 8)
	buf[3] = byte(t)
	_, err := io.ReadFull(rnd, buf[4:]) // lint:allow-read — randomness source, not the transport
	return err
}
