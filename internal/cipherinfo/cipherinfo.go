// Package cipherinfo defines the static cipher characteristics the
// paper tabulates in Table 4: block and key sizes, key-schedule and
// lookup-table shapes, round counts, and table lookups per block
// operation.
package cipherinfo

// Characteristics describes one cipher's data structures, one row of
// the paper's Table 4.
type Characteristics struct {
	Name        string
	BlockBits   int    // block size in bits (8 for the RC4 byte unit)
	KeyBits     string // key size, e.g. "128*" (AES also 192/256)
	KeySchedule string // key schedule shape, e.g. "44,32b"
	Tables      string // lookup tables, e.g. "4,256,32b"
	Rounds      string // rounds per block op
	Lookups     int    // table lookups per block op (excluding key schedule)
}
