package probe

import (
	"testing"
	"time"
)

// collectSink appends every event it sees.
type collectSink struct{ events []Event }

func (c *collectSink) Emit(e Event) { c.events = append(c.events, e) }

// A suspended step must exclude parked wall time from its exit
// duration: only the active intervals between Enter/Resume and
// Suspend/Exit count. Sinks must see exactly one Enter and one Exit.
func TestStepSuspendExcludesParkedTime(t *testing.T) {
	sink := &collectSink{}
	b := NewBus(sink)

	b.StepEnter(StepGetClientHello)
	time.Sleep(2 * time.Millisecond) // active
	b.StepSuspend()
	time.Sleep(20 * time.Millisecond) // parked — must not count
	b.StepResume()
	time.Sleep(2 * time.Millisecond) // active
	b.StepExit()

	var enters, exits int
	var dur time.Duration
	for _, e := range sink.events {
		switch e.Kind {
		case KindStepEnter:
			enters++
		case KindStepExit:
			exits++
			dur = e.Dur
		}
	}
	if enters != 1 || exits != 1 {
		t.Fatalf("suspension leaked into the event stream: %d enters, %d exits", enters, exits)
	}
	if dur < 4*time.Millisecond {
		t.Fatalf("exit duration %v lost active time", dur)
	}
	if dur > 15*time.Millisecond {
		t.Fatalf("exit duration %v includes parked time (parked 20ms)", dur)
	}
}

// Exiting while still suspended (a handshake that fails mid-park)
// reports only the banked active time.
func TestStepExitWhileSuspended(t *testing.T) {
	sink := &collectSink{}
	b := NewBus(sink)

	b.StepEnter(StepGetClientKX)
	b.StepSuspend()
	time.Sleep(20 * time.Millisecond)
	b.StepExit()

	last := sink.events[len(sink.events)-1]
	if last.Kind != KindStepExit {
		t.Fatalf("last event %v, want StepExit", last.Kind)
	}
	if last.Dur > 10*time.Millisecond {
		t.Fatalf("exit duration %v includes parked time", last.Dur)
	}
}

// Suspend/Resume are no-ops with no open step, when already in the
// requested state, and on a nil bus.
func TestSuspendResumeNoOps(t *testing.T) {
	var nilBus *Bus
	nilBus.StepSuspend()
	nilBus.StepResume()

	sink := &collectSink{}
	b := NewBus(sink)
	b.StepSuspend() // no open step
	b.StepResume()
	if len(sink.events) != 0 {
		t.Fatalf("no-op suspend/resume emitted %d events", len(sink.events))
	}

	b.StepEnter(StepInit)
	b.StepSuspend()
	b.StepSuspend() // double suspend must not double-bank
	b.StepResume()
	b.StepResume() // double resume must not reset the clock twice
	b.StepExit()
	var exits int
	for _, e := range sink.events {
		if e.Kind == KindStepExit {
			exits++
		}
	}
	if exits != 1 {
		t.Fatalf("%d exits, want 1", exits)
	}
}

// A fresh StepEnter after a suspended step's exit must start from a
// clean clock (no banked time leaking across steps).
func TestSuspendStateResetsAcrossSteps(t *testing.T) {
	sink := &collectSink{}
	b := NewBus(sink)

	b.StepEnter(StepInit)
	time.Sleep(5 * time.Millisecond)
	b.StepSuspend()
	b.StepExit()

	b.StepEnter(StepGetClientHello)
	b.StepExit()

	last := sink.events[len(sink.events)-1]
	if last.Step != StepGetClientHello || last.Kind != KindStepExit {
		t.Fatalf("unexpected last event %+v", last)
	}
	if last.Dur > 3*time.Millisecond {
		t.Fatalf("second step inherited banked time: %v", last.Dur)
	}
}
