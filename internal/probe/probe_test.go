package probe

import (
	"testing"
	"time"
)

func TestStepTable(t *testing.T) {
	wantIndex := map[Step]int{
		StepInit: 0, StepGetClientHello: 1, StepSendServerHello: 2,
		StepSendServerCert: 3, StepSendServerKX: 3, StepSendServerDone: 4,
		StepGetClientKX: 5, StepGenKeyBlock: 6, StepGetFinished: 6,
		StepSendCipherSpec: 7, StepSendFinished: 8, StepServerFlush: 9,
	}
	seen := map[string]bool{}
	for _, st := range Steps() {
		if got := st.Index(); got != wantIndex[st] {
			t.Errorf("%s: index %d, want %d", st.Name(), got, wantIndex[st])
		}
		if st.Name() == "" {
			t.Errorf("step %d has no name", st)
		}
		if st.Desc() == "" {
			t.Errorf("%s has no description", st.Name())
		}
		if seen[st.Name()] {
			t.Errorf("duplicate step name %q", st.Name())
		}
		seen[st.Name()] = true
	}
	if StepNone.Index() != -1 || StepNone.Name() != "" {
		t.Errorf("StepNone = (%d, %q), want (-1, \"\")", StepNone.Index(), StepNone.Name())
	}
}

func TestCategoryOfCoversAllFns(t *testing.T) {
	fns := map[string]string{
		FnRSAPrivateDecrypt: CategoryPublic,
		FnRSASign:           CategoryPublic,
		FnDHGenerateKey:     CategoryPublic,
		FnDHComputeKey:      CategoryPublic,
		FnPriDecryption:     CategoryPrivate,
		FnPriEncryption:     CategoryPrivate,
		FnFinishMac:         CategoryHash,
		FnFinalFinishMac:    CategoryHash,
		FnMac:               CategoryHash,
		FnGenMasterSecret:   CategoryHash,
		FnGenKeyBlock:       CategoryHash,
		FnInitFinishedMac:   CategoryHash,
		FnRandPseudoBytes:   CategoryOther,
		FnX509:              CategoryOther,
	}
	for fn, want := range fns {
		if got := CategoryOf(fn); got != want {
			t.Errorf("CategoryOf(%q) = %q, want %q", fn, got, want)
		}
	}
}

func TestRecordOpStepFn(t *testing.T) {
	cases := map[RecordOp]string{
		OpCipherEncrypt: FnPriEncryption,
		OpCipherDecrypt: FnPriDecryption,
		OpMACCompute:    FnMac,
		OpMACVerify:     FnMac,
	}
	for op, want := range cases {
		if got := op.StepFn(); got != want {
			t.Errorf("%s.StepFn() = %q, want %q", op, got, want)
		}
	}
}

// recordingSink captures events tagged with its id, shared across
// sinks to verify fan-out ordering.
type recordingSink struct {
	id  int
	log *[]struct {
		sink int
		e    Event
	}
}

func (s recordingSink) Emit(e Event) {
	*s.log = append(*s.log, struct {
		sink int
		e    Event
	}{s.id, e})
}

func TestFanOutOrdering(t *testing.T) {
	var log []struct {
		sink int
		e    Event
	}
	b := NewBus(recordingSink{0, &log}, recordingSink{1, &log}, recordingSink{2, &log})
	b.StepEnter(StepInit)
	b.Crypto(FnInitFinishedMac, func() {})
	b.StepExit()

	// Three events, each delivered to all three sinks in attachment
	// order before the next event starts.
	if len(log) != 9 {
		t.Fatalf("got %d deliveries, want 9", len(log))
	}
	wantKinds := []Kind{KindStepEnter, KindCrypto, KindStepExit}
	for i, entry := range log {
		if entry.sink != i%3 {
			t.Errorf("delivery %d went to sink %d, want %d", i, entry.sink, i%3)
		}
		if entry.e.Kind != wantKinds[i/3] {
			t.Errorf("delivery %d has kind %d, want %d", i, entry.e.Kind, wantKinds[i/3])
		}
		if entry.e.Kind == KindCrypto && entry.e.Step != StepInit {
			t.Errorf("crypto event attributed to %q, want %q", entry.e.Step.Name(), StepInit.Name())
		}
	}
}

func TestNewBusFiltersNilSinks(t *testing.T) {
	if b := NewBus(); b != nil {
		t.Error("NewBus() with no sinks should be nil")
	}
	if b := NewBus(nil, nil); b != nil {
		t.Error("NewBus(nil, nil) should be nil")
	}
	var log []struct {
		sink int
		e    Event
	}
	b := NewBus(nil, recordingSink{7, &log})
	b.RecordIO(true, false, 5)
	if len(log) != 1 || log[0].sink != 7 {
		t.Fatalf("nil sinks not filtered: %+v", log)
	}
}

func TestWithComposes(t *testing.T) {
	var log []struct {
		sink int
		e    Event
	}
	var b *Bus
	b = b.With(recordingSink{0, &log})
	b = b.With(recordingSink{1, &log})
	b.EngineValue("depth", 3)
	if len(log) != 2 || log[0].sink != 0 || log[1].sink != 1 {
		t.Fatalf("With did not preserve order: %+v", log)
	}
	if got := b.With(); got != b {
		t.Error("With() with no sinks should return the same bus")
	}
}

func TestStepCursorAttribution(t *testing.T) {
	var log []struct {
		sink int
		e    Event
	}
	b := NewBus(recordingSink{0, &log})
	// Record crypto outside any step stays unattributed.
	b.RecordCrypto(OpMACCompute, "MD5", 10, b.Stamp())
	b.StepEnter(StepSendFinished)
	b.RecordCrypto(OpCipherEncrypt, "RC4", 20, b.Stamp())
	// Entering a new step auto-closes the previous one.
	b.StepEnter(StepServerFlush)
	b.StepExit()
	b.RecordCrypto(OpMACVerify, "MD5", 30, b.Stamp())

	var got []Step
	for _, entry := range log {
		if entry.e.Kind == KindRecordCrypto {
			got = append(got, entry.e.Step)
		}
	}
	want := []Step{StepNone, StepSendFinished, StepNone}
	if len(got) != len(want) {
		t.Fatalf("got %d record events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record event %d attributed to %q, want %q", i, got[i].Name(), want[i].Name())
		}
	}
	// The auto-close emitted exactly two StepExit events.
	var exits int
	for _, entry := range log {
		if entry.e.Kind == KindStepExit {
			exits++
		}
	}
	if exits != 2 {
		t.Errorf("got %d step exits, want 2", exits)
	}
}

func TestNilBusZeroAllocs(t *testing.T) {
	var b *Bus
	allocs := testing.AllocsPerRun(200, func() {
		b.StepEnter(StepInit)
		b.Crypto(FnFinishMac, func() {})
		_ = b.CryptoErr(FnGenKeyBlock, func() error { return nil })
		b.StepExit()
		b.RecordCrypto(OpMACCompute, "MD5", 64, b.Stamp())
		b.RecordIO(true, false, 64)
		b.EngineValue("depth", 1)
		b.EngineTimer("linger", time.Microsecond)
		b.Timed("mac", func() {})
		b.EngineSpan("rsa_batch", 4, b.Stamp(), nil)
	})
	if allocs != 0 {
		t.Fatalf("nil bus allocated %.1f times per run, want 0", allocs)
	}
}

func TestNilBusRunsFunctions(t *testing.T) {
	var b *Bus
	ran := 0
	b.Crypto("x", func() { ran++ })
	if err := b.CryptoErr("y", func() error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	b.Timed("z", func() { ran++ })
	if ran != 3 {
		t.Fatalf("nil bus ran %d of 3 functions", ran)
	}
	if b.Active() {
		t.Error("nil bus reports Active")
	}
}
