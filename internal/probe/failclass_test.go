package probe

import (
	"strings"
	"testing"
)

// TestFailClassesNamed pins the taxonomy's surface: every class has a
// distinct snake_case name (telemetry tags, close-log fields, and the
// failclasslint gate all key on these strings).
func TestFailClassesNamed(t *testing.T) {
	classes := FailClasses()
	if len(classes) != int(failClassCount) {
		t.Fatalf("FailClasses() returned %d classes, want %d", len(classes), failClassCount)
	}
	if classes[0] != FailNone {
		t.Fatalf("FailClasses()[0] = %v, want FailNone", classes[0])
	}
	seen := make(map[string]FailClass)
	for i, c := range classes {
		if FailClass(i) != c {
			t.Fatalf("FailClasses()[%d] = %d, want declaration order", i, c)
		}
		name := c.Name()
		if name == "" || strings.HasPrefix(name, "fail_class(") {
			t.Fatalf("class %d has no name", c)
		}
		if name != strings.ToLower(name) || strings.ContainsAny(name, " -") {
			t.Fatalf("class %d name %q is not snake_case", c, name)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("classes %d and %d share the name %q", prev, c, name)
		}
		seen[name] = c
		if c.String() != name {
			t.Fatalf("String() %q != Name() %q", c.String(), name)
		}
	}
}

func TestFailClassUnknownName(t *testing.T) {
	if got := FailClass(200).Name(); got != "fail_class(200)" {
		t.Fatalf("unknown class name = %q", got)
	}
}
