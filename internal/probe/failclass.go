package probe

import "fmt"

// FailClass is the canonical taxonomy of connection/handshake failure
// causes — the one vocabulary every surface speaks. The telemetry
// FailReasons counters, the flight recorder's handshake_fail events,
// the lifecycle close-log, and sslserver's failure lines all derive
// their tags from a FailClass, so "why did the last 500 handshakes
// fail" has the same answer whichever surface is asked.
//
// The classifier that maps real errors onto these classes lives in
// internal/ssl (it needs the record and net error types); the enum
// lives here on the spine so sinks can consume it without importing
// the protocol layers.
type FailClass uint8

// Failure classes. Every constant must have a row in failClassInfo
// (make failclasslint and TestFailClassesNamed enforce it) and a case
// in the internal/ssl mapping test.
const (
	// FailNone is the zero value: no failure (a clean close).
	FailNone FailClass = iota
	// FailIOTimeout is a transport deadline/timeout expiring mid-flow.
	FailIOTimeout
	// FailIOEOF is the peer (or network) vanishing: EOF or an
	// unexpected EOF mid-message.
	FailIOEOF
	// FailPeerAlert is a fatal alert the peer sent; the tag carries
	// the alert name (peer_alert:bad_record_mac, ...).
	FailPeerAlert
	// FailBadMAC is a locally detected record MAC or CBC padding
	// failure — corruption or tampering on the wire.
	FailBadMAC
	// FailCertVerify is a certificate chain/validity/name failure.
	FailCertVerify
	// FailVersionMismatch is a protocol version the peer and we could
	// not agree on (hello version too old, record version drift,
	// pre-master version rollback).
	FailVersionMismatch
	// FailFinishedVerify is a Finished verify-data mismatch: the
	// transcripts disagree.
	FailFinishedVerify
	// FailBadMessage is a malformed, unexpected, or unparseable
	// protocol message.
	FailBadMessage
	// FailRecordError is a record-layer framing error (implausible
	// length, non-block-multiple ciphertext, ...).
	FailRecordError
	// FailInternal is everything else: local resource or logic errors
	// that are our fault, not the peer's.
	FailInternal

	failClassCount
)

// failClassInfo names each class. Tags are snake_case so they can be
// counter keys, JSON field values, and grep targets unchanged.
var failClassInfo = [failClassCount]string{
	FailNone:            "none",
	FailIOTimeout:       "io_timeout",
	FailIOEOF:           "io_eof",
	FailPeerAlert:       "peer_alert",
	FailBadMAC:          "bad_mac",
	FailCertVerify:      "cert_verify",
	FailVersionMismatch: "version_mismatch",
	FailFinishedVerify:  "finished_verify",
	FailBadMessage:      "bad_message",
	FailRecordError:     "record_error",
	FailInternal:        "internal",
}

// Name returns the class's canonical snake_case tag.
func (c FailClass) Name() string {
	if c >= failClassCount {
		return fmt.Sprintf("fail_class(%d)", uint8(c))
	}
	return failClassInfo[c]
}

// String implements fmt.Stringer.
func (c FailClass) String() string { return c.Name() }

// FailClasses returns every class in declaration order, FailNone
// first — the iteration surface for lints and renderers.
func FailClasses() []FailClass {
	out := make([]FailClass, 0, failClassCount)
	for c := FailClass(0); c < failClassCount; c++ {
		out = append(out, c)
	}
	return out
}
