// Package probe is the single instrumentation spine of the SSL stack.
//
// The paper's contribution is attribution: the same handshake steps
// and crypto calls must produce the Table 2/3 shares whichever tool
// measures them. This package makes that a structural property. The
// hot path (handshake FSM, record layer, engines) emits typed events
// onto a Bus — one timestamp per event, one nil test on the fast
// path — and every consumer (the perf/anatomy fold, the telemetry
// flight recorder, the span tracer, user sinks) is a Sink fanned out
// from that one stream. The surfaces cannot disagree because they no
// longer measure independently.
//
// The canonical Table 2 step enum lives here too: baseline shape
// checks, /debug/anatomy, and the Chrome trace export all render step
// names through Step.Name, so a renamed step is a compile-time event,
// not a silent attribution drift.
package probe

import (
	"fmt"
	"time"
)

// Step is one of the paper's ten server handshake steps (Table 2).
// The zero value StepNone means "outside any step" — e.g. bulk-phase
// record work.
type Step uint8

// Canonical Table 2 steps in execution order of a full handshake.
// StepSendServerKX shares row 3 with StepSendServerCert (DHE suites
// send both); StepGenKeyBlock shares row 6 with StepGetFinished (the
// resumed path splits them).
const (
	StepNone Step = iota
	StepInit
	StepGetClientHello
	StepSendServerHello
	StepSendServerCert
	StepSendServerKX
	StepSendServerDone
	StepGetClientKX
	StepGenKeyBlock
	StepGetFinished
	StepSendCipherSpec
	StepSendFinished
	StepServerFlush
	stepCount
)

// stepInfo is the one table every rendering surface draws from.
var stepInfo = [stepCount]struct {
	index int
	name  string
	desc  string
}{
	StepNone:            {-1, "", ""},
	StepInit:            {0, "init", "initialize states and variables"},
	StepGetClientHello:  {1, "get_client_hello", "check version, get client random, choose cipher"},
	StepSendServerHello: {2, "send_server_hello", "generate server random, send server hello"},
	StepSendServerCert:  {3, "send_server_cert", "send server certificate"},
	StepSendServerKX:    {3, "send_server_kx", "generate ephemeral DH key, sign params, send"},
	StepSendServerDone:  {4, "send_server_done", "send server done, flush, check client hello"},
	StepGetClientKX:     {5, "get_client_kx", "rsa-decrypt pre-master, generate master key"},
	StepGenKeyBlock:     {6, "gen_key_block", "regenerate key block from cached master"},
	StepGetFinished:     {6, "get_cipher_spec/get_finished", "read client CCS, generate key block, verify client finished"},
	StepSendCipherSpec:  {7, "send_cipher_spec", "send server change cipher spec"},
	StepSendFinished:    {8, "send_finished", "calculate server finish hashes, mac, encrypt, send"},
	StepServerFlush:     {9, "server_flush", "check state; flush internal buffers; end"},
}

// Index returns the step's Table 2 row number (0–9), or −1 for
// StepNone.
func (s Step) Index() int {
	if s >= stepCount {
		return -1
	}
	return stepInfo[s].index
}

// Name returns the step's canonical OpenSSL-style name — the exact
// string Table 2 uses. StepNone renders as "".
func (s Step) Name() string {
	if s >= stepCount {
		return fmt.Sprintf("step(%d)", uint8(s))
	}
	return stepInfo[s].name
}

// Desc returns the step's one-line description.
func (s Step) Desc() string {
	if s >= stepCount {
		return ""
	}
	return stepInfo[s].desc
}

// Steps returns the canonical steps in full-handshake execution
// order (the order Table 2 lists them, DHE and resumed variants
// included).
func Steps() []Step {
	return []Step{
		StepInit, StepGetClientHello, StepSendServerHello,
		StepSendServerCert, StepSendServerKX, StepSendServerDone,
		StepGetClientKX, StepGenKeyBlock, StepGetFinished,
		StepSendCipherSpec, StepSendFinished, StepServerFlush,
	}
}

// Crypto function names used in step attributions, matching the
// OpenSSL symbols of the paper's Table 2.
const (
	FnInitFinishedMac   = "init_finished_mac"
	FnRandPseudoBytes   = "rand_pseudo_bytes"
	FnFinishMac         = "finish_mac"
	FnX509              = "X509 functions"
	FnRSAPrivateDecrypt = "rsa_private_decryption"
	FnGenMasterSecret   = "gen_master_secret"
	FnGenKeyBlock       = "gen_key_block"
	FnFinalFinishMac    = "final_finish_mac"
	FnPriDecryption     = "pri_decryption"
	FnMac               = "mac"
	FnPriEncryption     = "pri_encryption"
	// DHE-suite functions (ServerKeyExchange path).
	FnDHGenerateKey = "dh_generate_key"
	FnRSASign       = "rsa_sign"
	FnDHComputeKey  = "dh_compute_key"
)

// Crypto-operation categories for Table 3.
const (
	CategoryPublic  = "public key encryption"
	CategoryPrivate = "private key encryption"
	CategoryHash    = "hash functions"
	CategoryOther   = "other functions"
)

// CategoryOf maps a crypto function name (the Fn* constants) onto its
// Table 3 category. Every consumer — the anatomy fold, the telemetry
// renderers, the trace profiler — shares this mapping so offline and
// continuous attributions agree.
func CategoryOf(fn string) string {
	switch fn {
	case FnRSAPrivateDecrypt, FnRSASign, FnDHGenerateKey, FnDHComputeKey:
		return CategoryPublic
	case FnPriDecryption, FnPriEncryption:
		return CategoryPrivate
	case FnFinishMac, FnFinalFinishMac, FnMac, FnGenMasterSecret,
		FnGenKeyBlock, FnInitFinishedMac:
		return CategoryHash
	default:
		return CategoryOther
	}
}

// RecordOp identifies a record-layer crypto operation.
type RecordOp int

// Observable record-layer crypto operations.
const (
	OpCipherEncrypt RecordOp = iota
	OpCipherDecrypt
	OpMACCompute
	OpMACVerify
)

// String names the operation.
func (o RecordOp) String() string {
	switch o {
	case OpCipherEncrypt:
		return "cipher_encrypt"
	case OpCipherDecrypt:
		return "cipher_decrypt"
	case OpMACCompute:
		return "mac_compute"
	case OpMACVerify:
		return "mac_verify"
	}
	return fmt.Sprintf("crypto_op(%d)", int(o))
}

// StepFn maps the operation onto the Table 2 row name it is charged
// to when it happens inside a handshake step (the encrypted finished
// messages): cipher work is the pri_encryption/pri_decryption row,
// MAC work the mac row.
func (o RecordOp) StepFn() string {
	switch o {
	case OpCipherDecrypt:
		return FnPriDecryption
	case OpCipherEncrypt:
		return FnPriEncryption
	default:
		return FnMac
	}
}

// A SpanRef names a span in some trace — the link target for
// cross-trace causality (a batch span pointing at the handshake spans
// it served). The zero SpanRef means "no link".
type SpanRef struct {
	Trace uint64 `json:"trace"`
	Span  uint64 `json:"span"`
}

// Kind discriminates probe events.
type Kind uint8

// Event kinds.
const (
	// KindStepEnter marks a handshake step opening. At is the step's
	// start time; Dur is zero.
	KindStepEnter Kind = iota + 1
	// KindStepExit closes the current step; Dur is the in-step time.
	KindStepExit
	// KindCrypto is one attributed crypto call inside a step: Fn names
	// it, Step is the enclosing step, At/Dur time it.
	KindCrypto
	// KindRecordCrypto is one record-layer cipher or MAC pass: Op
	// identifies it, Prim names the primitive doing the work ("RC4",
	// "AES", "MD5", …), Bytes is the payload size, Step is the
	// enclosing handshake step or StepNone during bulk transfer.
	KindRecordCrypto
	// KindRecordIO is one framed record written (Written=true, per
	// fragment) or successfully opened, with its plaintext size in
	// Bytes and Alert set for alert records.
	KindRecordIO
	// KindEngineValue is a dimensionless engine sample (queue depth,
	// batch size): Fn names the metric, Value carries it.
	KindEngineValue
	// KindEngineTimer is a timed engine region: Fn names it, Dur times
	// it.
	KindEngineTimer
	// KindEngineSpan is one cross-connection engine operation (e.g. an
	// executed RSA batch): Fn names it, Value carries its size, Links
	// point at the spans it served.
	KindEngineSpan
)

// An Event is one occurrence on the spine. It is passed by value —
// emitting an event performs no allocation.
type Event struct {
	Kind    Kind
	Step    Step // enclosing step (step/crypto/record kinds)
	Fn      string
	Op      RecordOp
	Prim    string // crypto primitive (KindRecordCrypto), e.g. "RC4"
	Bytes   int
	Value   int64
	Written bool
	Alert   bool
	Links   []SpanRef
	At      time.Time
	Dur     time.Duration
}
