package probe

import (
	"context"
	"time"
)

// A Sink consumes probe events. Emit is called synchronously on the
// emitting goroutine, in sink attachment order; a slow sink slows the
// connection. Sinks attached to per-connection buses see one
// goroutine at a time (the ssl package serializes connections), but a
// sink shared across connections or attached to an engine bus must be
// safe for concurrent Emit calls.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// A Bus stamps events once and fans them out to its sinks. A nil
// *Bus is the off state: every method is a nil-receiver no-op, so an
// uninstrumented hot path pays one pointer test and performs zero
// allocations — NewBus returns nil when no sinks are attached
// precisely so that the fast path engages.
//
// The step cursor (StepEnter/StepExit) is single-owner state: only
// the handshake goroutine moves it. Stateless emissions (RecordIO,
// the Engine* helpers) may come from any goroutine as long as the
// sinks tolerate it.
type Bus struct {
	sinks []Sink

	cur       Step
	open      bool
	stepStart time.Time

	// suspended/stepAccum support non-blocking handshakes parked on
	// WouldBlock: StepSuspend banks the active time accrued so far and
	// stops the clock; StepResume restarts it. StepExit then reports
	// banked + current active time, so a step that waited minutes for
	// wire bytes still attributes only the cycles it actually spent —
	// the /debug/anatomy shares stay exact across suspension. Sinks
	// never see suspend/resume: the event stream remains exactly one
	// Enter and one Exit per step.
	suspended bool
	stepAccum time.Duration

	// labelCtx carries the open step's pprof labels when profile
	// labelling is enabled (see SetProfileLabels); nil otherwise. It is
	// single-owner state like the step cursor.
	labelCtx context.Context
}

// NewBus builds a bus over the non-nil sinks, returning nil (the
// no-op bus) when none remain.
func NewBus(sinks ...Sink) *Bus {
	var list []Sink
	for _, s := range sinks {
		if s != nil {
			list = append(list, s)
		}
	}
	if len(list) == 0 {
		return nil
	}
	return &Bus{sinks: list}
}

// With returns a bus carrying b's sinks plus the given ones. The
// result is a fresh bus (step cursor reset); compose sinks before the
// handshake starts.
func (b *Bus) With(sinks ...Sink) *Bus {
	if b == nil {
		return NewBus(sinks...)
	}
	if len(sinks) == 0 {
		return b
	}
	all := make([]Sink, 0, len(b.sinks)+len(sinks))
	all = append(all, b.sinks...)
	all = append(all, sinks...)
	return NewBus(all...)
}

// Active reports whether events will reach any sink.
func (b *Bus) Active() bool { return b != nil }

func (b *Bus) emit(e Event) {
	for _, s := range b.sinks {
		s.Emit(e)
	}
}

// openStep returns the step the cursor is inside, or StepNone.
func (b *Bus) openStep() Step {
	if b.open {
		return b.cur
	}
	return StepNone
}

// StepEnter opens step st, closing any step still open (steps never
// nest in the SSL FSM).
func (b *Bus) StepEnter(st Step) {
	if b == nil {
		return
	}
	b.StepExit()
	now := time.Now()
	b.cur, b.open, b.stepStart = st, true, now
	b.suspended, b.stepAccum = false, 0
	if ProfileLabels() {
		b.labelCtx = labelStep(st)
	}
	b.emit(Event{Kind: KindStepEnter, Step: st, At: now})
}

// StepExit closes the open step, emitting its in-step duration
// (active time only — intervals parked by StepSuspend are excluded);
// a no-op when no step is open.
func (b *Bus) StepExit() {
	if b == nil || !b.open {
		return
	}
	now := time.Now()
	dur := b.stepAccum
	if !b.suspended {
		dur += now.Sub(b.stepStart)
	}
	b.open = false
	b.emit(Event{Kind: KindStepExit, Step: b.cur, At: now, Dur: dur})
	b.cur = StepNone
	b.suspended, b.stepAccum = false, 0
	if b.labelCtx != nil {
		b.labelCtx = nil
		clearLabels()
	}
}

// StepSuspend parks the open step's clock: the active time accrued
// since entry (or the last resume) is banked and the goroutine's
// pprof step labels are cleared, so time spent waiting for wire bytes
// is attributed to neither the step nor its profile bucket. No event
// is emitted — sinks see suspension only as a gap inside one
// Enter/Exit pair. A no-op when no step is open or already suspended.
func (b *Bus) StepSuspend() {
	if b == nil || !b.open || b.suspended {
		return
	}
	b.stepAccum += time.Since(b.stepStart)
	b.suspended = true
	if b.labelCtx != nil {
		b.labelCtx = nil
		clearLabels()
	}
}

// StepResume restarts a suspended step's clock and re-applies its
// pprof labels. A no-op when no step is open or the step is not
// suspended.
func (b *Bus) StepResume() {
	if b == nil || !b.open || !b.suspended {
		return
	}
	b.stepStart = time.Now()
	b.suspended = false
	if ProfileLabels() {
		b.labelCtx = labelStep(b.cur)
	}
}

// Crypto runs fn, attributing its duration to the named crypto
// function within the open step. On a nil bus fn runs untimed.
func (b *Bus) Crypto(fn string, f func()) {
	if b == nil {
		f()
		return
	}
	start := time.Now()
	if b.labelCtx != nil {
		labelCrypto(b.labelCtx, fn, f)
	} else {
		f()
	}
	b.emit(Event{Kind: KindCrypto, Step: b.openStep(), Fn: fn, At: start, Dur: time.Since(start)})
}

// CryptoErr is Crypto for functions that can fail.
func (b *Bus) CryptoErr(fn string, f func() error) error {
	var err error
	b.Crypto(fn, func() { err = f() })
	return err
}

// Stamp returns the spine's notion of "now" for a region about to be
// measured, or the zero time on a nil bus (where the later emission
// is a no-op anyway). Hot paths use Stamp + the emission helpers so
// the spine owns every clock read.
func (b *Bus) Stamp() time.Time {
	if b == nil {
		return time.Time{}
	}
	return time.Now()
}

// RecordCrypto reports one record-layer cipher/MAC pass over bytes of
// payload that began at start (from Stamp). Prim names the primitive
// doing the work ("RC4", "AES", "MD5", …) so per-primitive path-length
// accounting needs no suite lookup. The event carries the open
// handshake step, if any, so sinks can attribute the encrypted
// finished messages to Table 2's pri_encryption/pri_decryption/mac
// rows and leave bulk-phase work unattributed.
func (b *Bus) RecordCrypto(op RecordOp, prim string, bytes int, start time.Time) {
	if b == nil {
		return
	}
	b.emit(Event{Kind: KindRecordCrypto, Step: b.openStep(), Op: op,
		Prim: prim, Bytes: bytes, At: start, Dur: time.Since(start)})
}

// RecordCryptoAt is RecordCrypto for work timed elsewhere: the event
// carries an explicit duration instead of time.Since(start). The
// record layer's sealing pipeline computes fragment MACs on worker
// goroutines but emits the events from the connection's goroutine —
// both stamps are taken on the worker (via Stamp, so the spine still
// owns every clock read) and handed over with the sealed fragment, so
// per-connection sinks keep their single-goroutine contract and the
// cycles/byte folds see the same per-pass durations the sequential
// path reports.
func (b *Bus) RecordCryptoAt(op RecordOp, prim string, bytes int, start time.Time, dur time.Duration) {
	if b == nil {
		return
	}
	b.emit(Event{Kind: KindRecordCrypto, Step: b.openStep(), Op: op,
		Prim: prim, Bytes: bytes, At: start, Dur: dur})
}

// RecordIO reports one framed record written or opened with its
// plaintext payload size.
func (b *Bus) RecordIO(written, alert bool, bytes int) {
	if b == nil {
		return
	}
	b.emit(Event{Kind: KindRecordIO, Step: b.openStep(), Written: written,
		Alert: alert, Bytes: bytes})
}

// EngineValue reports a dimensionless engine sample.
func (b *Bus) EngineValue(name string, v int64) {
	if b == nil {
		return
	}
	b.emit(Event{Kind: KindEngineValue, Fn: name, Value: v})
}

// EngineTimer reports a completed engine region.
func (b *Bus) EngineTimer(name string, d time.Duration) {
	if b == nil {
		return
	}
	b.emit(Event{Kind: KindEngineTimer, Fn: name, Dur: d})
}

// Timed runs fn, reporting its duration as an engine timer. On a nil
// bus fn runs untimed.
func (b *Bus) Timed(name string, f func()) {
	if b == nil {
		f()
		return
	}
	start := time.Now()
	f()
	b.emit(Event{Kind: KindEngineTimer, Fn: name, At: start, Dur: time.Since(start)})
}

// EngineSpan reports one cross-connection engine operation of the
// given size that began at start (from Stamp), linked to the spans it
// served.
func (b *Bus) EngineSpan(name string, size int, start time.Time, links []SpanRef) {
	if b == nil {
		return
	}
	b.emit(Event{Kind: KindEngineSpan, Fn: name, Value: int64(size),
		Links: links, At: start, Dur: time.Since(start)})
}
