package probe

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
)

// profileLabels gates pprof label propagation globally. Labelling a
// goroutine costs an allocation per step, so it is off by default and
// enabled only when someone intends to capture a CPU profile (the
// sslserver -pprof-labels flag, the pathlen experiments).
var profileLabels atomic.Bool

// SetProfileLabels enables or disables pprof label propagation on
// every bus in the process. When enabled, each handshake step sets the
// goroutine label sslstep=<Table 2 name> between StepEnter and
// StepExit, each Bus.Crypto call additionally carries sslfn=<function>
// and sslcat=<Table 3 category>, and LabelEngine tags engine work —
// so a CPU profile captured while traffic flows folds directly onto
// the paper's step and category rows.
func SetProfileLabels(on bool) { profileLabels.Store(on) }

// ProfileLabels reports whether pprof label propagation is enabled.
func ProfileLabels() bool { return profileLabels.Load() }

// LabelKeyStep is the pprof label key carrying the Table 2 step name.
const LabelKeyStep = "sslstep"

// LabelKeyFn is the pprof label key carrying the crypto function name.
const LabelKeyFn = "sslfn"

// LabelKeyCategory is the pprof label key carrying the Table 3
// category.
const LabelKeyCategory = "sslcat"

// LabelKeyEngine is the pprof label key naming engine work (e.g. the
// RSA batching engine's batch execution).
const LabelKeyEngine = "sslengine"

// LabelBulk is the step-label value used for bulk-phase work outside
// any handshake step (the record layer's application-data path).
const LabelBulk = "bulk_transfer"

// labelStep applies the step label to the calling goroutine and
// returns the label context StepExit/labelCrypto restore from.
func labelStep(st Step) context.Context {
	ctx := pprof.WithLabels(context.Background(),
		pprof.Labels(LabelKeyStep, st.Name()))
	pprof.SetGoroutineLabels(ctx)
	return ctx
}

// clearLabels drops the goroutine's labels at step exit.
func clearLabels() { pprof.SetGoroutineLabels(context.Background()) }

// labelCrypto runs f with the function and category labels layered on
// top of the step context, restoring the step labels afterwards.
func labelCrypto(ctx context.Context, fn string, f func()) {
	pprof.Do(ctx, pprof.Labels(LabelKeyFn, fn, LabelKeyCategory, CategoryOf(fn)),
		func(context.Context) { f() })
}

// LabelBulkPhase runs f with the bulk-transfer step label when
// profile labelling is enabled (and plainly otherwise). Connection
// serve loops wrap their post-handshake I/O in it so bulk-phase CPU
// samples group under their own row instead of "(unlabeled)".
func LabelBulkPhase(f func()) {
	if !ProfileLabels() {
		f()
		return
	}
	pprof.Do(context.Background(), pprof.Labels(LabelKeyStep, LabelBulk),
		func(context.Context) { f() })
}

// LabelEngine runs f under the engine label when profile labelling is
// enabled (and plainly otherwise). Engine goroutines (the RSA batch
// workers) wrap batch execution in it.
func LabelEngine(name string, f func()) {
	if !ProfileLabels() {
		f()
		return
	}
	pprof.Do(context.Background(), pprof.Labels(LabelKeyEngine, name),
		func(context.Context) { f() })
}
