//go:build race

package sha1x

// raceEnabled reports that the race detector is instrumenting this
// build, which distorts relative kernel timings.
const raceEnabled = true
