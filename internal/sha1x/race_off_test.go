//go:build !race

package sha1x

const raceEnabled = false
