package sha1x

import (
	"time"

	"sslperf/internal/perf"
)

// Phase names for the Table 10 breakdown.
const (
	PhaseInit   = "init"
	PhaseUpdate = "update"
	PhaseFinal  = "final"
)

// ProfilePhases hashes a dataLen-byte message n times, timing Init,
// Update and Final separately — the SHA-1 column of the paper's
// Table 10 (which uses dataLen = 1024).
func ProfilePhases(dataLen, n int) *perf.Breakdown {
	b := perf.NewBreakdown()
	data := make([]byte, dataLen)
	digests := make([]*Digest, n)

	start := time.Now()
	for i := range digests {
		digests[i] = New()
	}
	b.Add(PhaseInit, time.Since(start))

	start = time.Now()
	for i := range digests {
		digests[i].Write(data)
	}
	b.Add(PhaseUpdate, time.Since(start))

	start = time.Now()
	var sum []byte
	for i := range digests {
		sum = digests[i].Sum(sum[:0])
	}
	b.Add(PhaseFinal, time.Since(start))
	return b
}

// TraceBlock emits the abstract operation stream of one SHA-1
// compression into tr: the 64-word message expansion (3 XORs and a
// rotate each) plus 80 rounds of boolean function, five-term add
// chain, and two rotates — the xorl/roll-heavy mix of the paper's
// Table 12 SHA-1 column.
func TraceBlock(tr *perf.Trace) {
	// Message schedule: 16 loads + 64 expansions.
	tr.Emit(perf.OpLoad, 16)
	tr.Emit(perf.OpXor, 3*64)
	tr.Emit(perf.OpRotate, 64)
	tr.Emit(perf.OpLoad, 4*64) // w[i-3..i-16] reloads
	tr.Emit(perf.OpStore, 64)
	const rounds = 80
	// Boolean: Ch/Maj rounds use and/or/not, parity rounds use xor.
	tr.Emit(perf.OpAnd, 2*20+3*20)
	tr.Emit(perf.OpNot, 20)
	tr.Emit(perf.OpOr, 20+2*20)
	tr.Emit(perf.OpXor, 2*40)
	tr.Emit(perf.OpAdd, 4*rounds)
	tr.Emit(perf.OpRotate, 2*rounds)
	tr.Emit(perf.OpMove, rounds)
	tr.Emit(perf.OpLoad, rounds) // w[i]
	tr.Emit(perf.OpStore, 10)    // chaining update
	tr.Emit(perf.OpLoad, 10)
	tr.Emit(perf.OpAdd, 5)
	tr.Emit(perf.OpBranch, rounds/4)
	tr.Emit(perf.OpCmp, rounds/4)
	tr.Bytes += BlockSize
}

// TraceHash emits the operations of hashing n bytes (including
// padding) into tr.
func TraceHash(tr *perf.Trace, n uint64) {
	before := tr.Bytes
	blocks := (n + 8 + BlockSize) / BlockSize
	var one perf.Trace
	TraceBlock(&one)
	for i := uint64(0); i < blocks; i++ {
		tr.Add(&one)
	}
	tr.Bytes = before + n
}
