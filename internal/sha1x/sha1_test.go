package sha1x

import (
	"bytes"
	stdsha1 "crypto/sha1"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"

	"sslperf/internal/md5x"
	"sslperf/internal/perf"
)

// FIPS 180-2 and classic known answers.
func TestKnownAnswers(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
		{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
		{strings.Repeat("a", 1000000), "34aa973cd4c4daa4f61eeb2bdbad27316534016f"},
	}
	for _, c := range cases {
		got := Sum20([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("SHA1(%.20q...) = %x, want %s", c.in, got, c.want)
		}
	}
}

func TestAgainstStdlibProperty(t *testing.T) {
	f := func(data []byte) bool {
		got := Sum20(data)
		want := stdsha1.Sum(data)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedWrites(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 11)
	}
	whole := Sum20(data)
	d := New()
	for i := 0; i < len(data); i += 17 {
		end := min(i+17, len(data))
		d.Write(data[i:end])
	}
	if !bytes.Equal(d.Sum(nil), whole[:]) {
		t.Fatal("chunked writes differ from one-shot")
	}
}

func TestSumDoesNotFinalize(t *testing.T) {
	d := New()
	d.Write([]byte("ab"))
	first := d.Sum(nil)
	if !bytes.Equal(first, d.Sum(nil)) {
		t.Fatal("Sum changed state")
	}
	d.Write([]byte("c"))
	want := Sum20([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Fatal("writing after Sum broken")
	}
}

func TestResetAndSizes(t *testing.T) {
	d := New()
	d.Write([]byte("junk"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum20([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Fatal("Reset broken")
	}
	if d.Size() != 20 || d.BlockSize() != 64 {
		t.Fatalf("Size/BlockSize = %d/%d", d.Size(), d.BlockSize())
	}
}

func TestBoundarySizes(t *testing.T) {
	for _, n := range []int{54, 55, 56, 57, 63, 64, 65, 119, 120, 128} {
		data := bytes.Repeat([]byte{0xa5}, n)
		got := Sum20(data)
		want := stdsha1.Sum(data)
		if got != want {
			t.Errorf("length %d mismatch", n)
		}
	}
}

func TestProfilePhasesShape(t *testing.T) {
	b := ProfilePhases(1024, 20000)
	// Table 10: update is ~92% for 1024-byte input.
	if pct := b.Percent(PhaseUpdate); pct < 60 {
		t.Fatalf("update = %.1f%%, want dominant\n%s", pct, b)
	}
}

func TestSHA1SlowerThanMD5(t *testing.T) {
	// Paper Table 10/11: SHA-1's update is more compute-intensive
	// than MD5's (10723 vs 6679 cycles for 1KB; 135 vs 198 MB/s).
	if raceEnabled {
		t.Skip("race instrumentation distorts relative kernel timings")
	}
	const n = 30000
	sha := ProfilePhases(1024, n)
	md := md5x.ProfilePhases(1024, n)
	if sha.Elapsed(PhaseUpdate) <= md.Elapsed(md5x.PhaseUpdate) {
		t.Fatalf("SHA-1 update (%v) should exceed MD5 update (%v)",
			sha.Elapsed(PhaseUpdate), md.Elapsed(md5x.PhaseUpdate))
	}
}

func TestTraces(t *testing.T) {
	var blk perf.Trace
	TraceBlock(&blk)
	if blk.Bytes != BlockSize || blk.Total() == 0 {
		t.Fatal("block trace wrong")
	}
	var h perf.Trace
	TraceHash(&h, 1024)
	if h.Bytes != 1024 {
		t.Fatalf("hash bytes = %d", h.Bytes)
	}
	// Table 11: SHA-1 path length 24 instr/byte, about 2x MD5's 12.
	var hm perf.Trace
	md5x.TraceHash(&hm, 1024)
	if h.Total() <= hm.Total() {
		t.Fatal("SHA-1 trace should exceed MD5 trace")
	}
	if pl := h.PathLength(); pl < 10 || pl > 60 {
		t.Fatalf("SHA-1 path length = %.1f, want ~24", pl)
	}
	// Table 12 SHA-1: xor + rotate are prominent.
	if h.Count(perf.OpXor) == 0 || h.Count(perf.OpRotate) == 0 {
		t.Fatal("missing xor/rotate in SHA-1 mix")
	}
}
