// Package sha1x implements the SHA-1 secure hash (FIPS 180-2) from
// scratch, factored like md5x into the Init/Update/Final phases of
// the paper's Table 10. SHA-1's compression is more compute-intensive
// than MD5's — 80 rounds over an expanded 80-word message schedule —
// which is why the paper measures it ~60% slower.
package sha1x

import "encoding/binary"

// Size is the SHA-1 digest length in bytes (160 bits).
const Size = 20

// BlockSize is the SHA-1 compression block size in bytes.
const BlockSize = 64

// Round constants, one per 20-round stage.
const (
	k0 = 0x5a827999
	k1 = 0x6ed9eba1
	k2 = 0x8f1bbcdc
	k3 = 0xca62c1d6
)

// A Digest is a running SHA-1 computation. Use New.
type Digest struct {
	s   [5]uint32
	buf [BlockSize]byte
	n   int
	len uint64
}

// New returns an initialized SHA-1 digest.
func New() *Digest {
	d := &Digest{}
	d.Reset()
	return d
}

// Reset reinitializes the digest state. SHA-1 carries five chaining
// words to MD5's four — the "more states" of the paper's Table 10
// Init row.
func (d *Digest) Reset() {
	d.s = [5]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0}
	d.n = 0
	d.len = 0
}

// Size returns the digest length (20).
func (d *Digest) Size() int { return Size }

// BlockSize returns the compression block size (64).
func (d *Digest) BlockSize() int { return BlockSize }

// Write absorbs p into the digest. It never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.n > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == BlockSize {
			d.block(d.buf[:])
			d.n = 0
		}
	}
	for len(p) >= BlockSize {
		d.block(p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.n = copy(d.buf[:], p)
	}
	return n, nil
}

// Sum appends the digest of everything written so far to in, leaving
// the running state unchanged.
func (d *Digest) Sum(in []byte) []byte {
	dd := *d
	var pad [BlockSize]byte
	pad[0] = 0x80
	padLen := BlockSize - int((dd.len+8)%BlockSize)
	if padLen == 0 {
		padLen = BlockSize
	}
	var lenBlock [8]byte
	binary.BigEndian.PutUint64(lenBlock[:], dd.len*8)
	dd.Write(pad[:padLen])
	dd.Write(lenBlock[:])
	var out [Size]byte
	for i, v := range dd.s {
		binary.BigEndian.PutUint32(out[4*i:], v)
	}
	return append(in, out[:]...)
}

// block runs the SHA-1 compression function over one 64-byte block.
func (d *Digest) block(p []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(p[4*i:])
	}
	for i := 16; i < 80; i++ {
		t := w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]
		w[i] = t<<1 | t>>31
	}
	a, b, c, dd, e := d.s[0], d.s[1], d.s[2], d.s[3], d.s[4]
	// Four 20-round stages, one boolean function each, as real SHA-1
	// code is written. The paper's Figure 4 ops appear here: (a) is
	// Ch's (X∧Y)∨(¬X∧Z), (b) is Parity's three-input XOR.
	for i := 0; i < 20; i++ {
		f := (b & c) | (^b & dd) // Ch
		t := (a<<5 | a>>27) + f + e + k0 + w[i]
		a, b, c, dd, e = t, a, b<<30|b>>2, c, dd
	}
	for i := 20; i < 40; i++ {
		f := b ^ c ^ dd // Parity
		t := (a<<5 | a>>27) + f + e + k1 + w[i]
		a, b, c, dd, e = t, a, b<<30|b>>2, c, dd
	}
	for i := 40; i < 60; i++ {
		f := (b & c) | (b & dd) | (c & dd) // Maj
		t := (a<<5 | a>>27) + f + e + k2 + w[i]
		a, b, c, dd, e = t, a, b<<30|b>>2, c, dd
	}
	for i := 60; i < 80; i++ {
		f := b ^ c ^ dd
		t := (a<<5 | a>>27) + f + e + k3 + w[i]
		a, b, c, dd, e = t, a, b<<30|b>>2, c, dd
	}
	d.s[0] += a
	d.s[1] += b
	d.s[2] += c
	d.s[3] += dd
	d.s[4] += e
}

// Sum20 is a convenience one-shot SHA-1.
func Sum20(data []byte) [Size]byte {
	d := New()
	d.Write(data)
	var out [Size]byte
	copy(out[:], d.Sum(nil))
	return out
}
