package core

import (
	"io"
	"sync"

	"sslperf/internal/record"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
)

// wireEvent is one record observed on the wire for Figure 1.
type wireEvent struct {
	dir        string // "C -> S" or "S -> C"
	recordType string
	message    string
	bytes      int
}

var msgNames = map[byte]string{
	0: "HelloRequest", 1: "ClientHello", 2: "ServerHello",
	11: "Certificate", 12: "ServerKeyExchange", 13: "CertificateRequest",
	14: "ServerHelloDone", 15: "CertificateVerify", 16: "ClientKeyExchange",
	20: "Finished",
}

// eventLog collects wire events from both directions; client and
// server write concurrently, so appends are locked.
type eventLog struct {
	mu     sync.Mutex
	events []wireEvent
}

func (l *eventLog) add(ev wireEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// sniffer parses the record stream written through it and appends
// wire events. All writes come from our record layer, so records
// arrive as a clean header+body byte stream.
type sniffer struct {
	inner     io.ReadWriteCloser
	dir       string
	log       *eventLog
	buf       []byte
	encrypted bool
}

func (s *sniffer) Read(p []byte) (int, error) { return s.inner.Read(p) }
func (s *sniffer) Close() error               { return s.inner.Close() }

func (s *sniffer) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	for len(s.buf) >= 5 {
		length := int(s.buf[3])<<8 | int(s.buf[4])
		if len(s.buf) < 5+length {
			break
		}
		typ := record.ContentType(s.buf[0])
		body := s.buf[5 : 5+length]
		s.emit(typ, body)
		s.buf = s.buf[5+length:]
	}
	return s.inner.Write(p)
}

func (s *sniffer) emit(typ record.ContentType, body []byte) {
	ev := wireEvent{dir: s.dir, recordType: typ.String(), bytes: len(body)}
	switch typ {
	case record.TypeHandshake:
		if s.encrypted {
			ev.message = "Finished (encrypted)"
		} else if len(body) > 0 {
			if name, ok := msgNames[body[0]]; ok {
				ev.message = name
			}
		}
	case record.TypeChangeCipherSpec:
		s.encrypted = true
	case record.TypeApplicationData:
		ev.message = "(encrypted data)"
	}
	s.log.add(ev)
}

// traceHandshake runs one full handshake plus a small data exchange
// over sniffed pipes and returns the observed wire events in
// client-then-server interleaved capture order.
func traceHandshake(cfg *Config, id *ssl.Identity) ([]wireEvent, error) {
	log := &eventLog{}
	ct, st := ssl.Pipe()
	cs := &sniffer{inner: ct, dir: "C -> S", log: log}
	ss := &sniffer{inner: st, dir: "S -> C", log: log}

	client := ssl.ClientConn(cs, &ssl.Config{
		Rand:               ssl.NewPRNG(cfg.seed() + 100),
		Suites:             []suite.ID{paperSuite().ID},
		InsecureSkipVerify: true,
	})
	server := ssl.ServerConn(ss, &ssl.Config{
		Rand:    ssl.NewPRNG(cfg.seed() + 101),
		Key:     id.Key,
		CertDER: id.CertDER,
	})
	errc := make(chan error, 1)
	go func() {
		defer client.Close()
		if _, err := client.Write([]byte("GET / HTTP/1.0\r\n\r\n")); err != nil {
			errc <- err
			return
		}
		buf := make([]byte, 64)
		_, err := io.ReadFull(client, buf)
		errc <- err
	}()
	if err := server.Handshake(); err != nil {
		return nil, err
	}
	req := make([]byte, 18)
	if _, err := io.ReadFull(server, req); err != nil {
		return nil, err
	}
	if _, err := server.Write(make([]byte, 64)); err != nil {
		return nil, err
	}
	if err := <-errc; err != nil {
		return nil, err
	}
	server.Close()
	log.mu.Lock()
	defer log.mu.Unlock()
	return log.events, nil
}
