// Package core is the paper's primary contribution rebuilt as a
// library: the anatomy/characterization harness. It defines one
// experiment per table and figure in the paper's evaluation, runs it
// against this repository's from-scratch SSL stack, and renders the
// same rows the paper reports alongside the paper's own numbers where
// that aids comparison.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sslperf/internal/perf"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
	"sslperf/internal/webmodel"
)

// Config controls experiment scale.
type Config struct {
	// Seed makes runs reproducible.
	Seed uint64
	// KeyBits is the server RSA key size (default 1024, the paper's
	// web-server configuration).
	KeyBits int
	// Iterations averages repeated measurements (default 10).
	Iterations int
	// Quick reduces work for use inside the test suite.
	Quick bool
	// SuiteName selects the cipher suite for the protocol-level
	// experiments (default DES-CBC3-SHA, the paper's).
	SuiteName string
	// Version selects the protocol version (default SSL 3.0).
	Version uint16
}

// suite resolves the configured cipher suite.
func (c *Config) suite() (*suite.Suite, error) {
	name := c.SuiteName
	if name == "" {
		name = "DES-CBC3-SHA"
	}
	return suite.ByName(name)
}

func (c *Config) seed() uint64 {
	if c.Seed == 0 {
		return 20050320 // ISPASS 2005
	}
	return c.Seed
}

func (c *Config) keyBits() int {
	if c.KeyBits == 0 {
		return 1024
	}
	return c.KeyBits
}

func (c *Config) iters() int {
	if c.Quick {
		return 2
	}
	if c.Iterations <= 0 {
		return 10
	}
	return c.Iterations
}

// scale shrinks a work count in Quick mode.
func (c *Config) scale(n int) int {
	if c.Quick {
		n /= 20
		if n < 1 {
			n = 1
		}
	}
	return n
}

// A Report is one experiment's rendered result. It marshals to JSON
// (tables as {title, header, rows}) for the sslanatomy -json mode
// that feeds machine-readable bench trajectories.
type Report struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Tables holds the regenerated paper tables/series.
	Tables []*perf.Table `json:"tables"`
	// Notes carries paper-vs-measured commentary.
	Notes []string `json:"notes,omitempty"`
}

// String renders the full report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", strings.ToUpper(r.ID), r.Title)
	for _, t := range r.Tables {
		sb.WriteByte('\n')
		sb.WriteString(t.String())
	}
	if len(r.Notes) > 0 {
		sb.WriteByte('\n')
		for _, n := range r.Notes {
			fmt.Fprintf(&sb, "note: %s\n", n)
		}
	}
	return sb.String()
}

// An Experiment regenerates one paper table or figure.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string // what the paper reports, for the listing
	Run      func(cfg *Config) (*Report, error)
}

var (
	regMu    sync.Mutex
	registry []*Experiment
)

func register(e *Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, e)
}

// All returns every experiment in paper order.
func All() []*Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Experiment, len(registry))
	copy(out, registry)
	order := map[string]int{
		"fig1": 0, "table1": 1, "fig2": 2, "table2": 3, "table3": 4,
		"fig3": 5, "table4": 6, "table5": 7, "table6": 8, "table7": 9,
		"table8": 10, "table9": 11, "table10": 12, "table11": 13,
		"table12": 14, "fig4": 15, "fig5": 16, "fig6": 17,
		"ablation-mul": 18, "ablation-resume": 19, "ablation-kx": 20,
		"ablation-version": 21, "ablation-latency": 22,
	}
	sort.SliceStable(out, func(i, j int) bool {
		return order[out[i].ID] < order[out[j].ID]
	})
	return out
}

// ByID finds an experiment.
func ByID(id string) (*Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("core: unknown experiment %q (try: %s)", id, IDs())
}

// IDs lists all experiment identifiers.
func IDs() string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return strings.Join(ids, ", ")
}

// identityCache memoizes server identities per (seed, bits): RSA
// keygen is the slowest setup step and every experiment shares it.
var (
	idMu    sync.Mutex
	idCache = map[[2]uint64]*ssl.Identity{}
)

func identityFor(cfg *Config) (*ssl.Identity, error) {
	key := [2]uint64{cfg.seed(), uint64(cfg.keyBits())}
	idMu.Lock()
	defer idMu.Unlock()
	if id, ok := idCache[key]; ok {
		return id, nil
	}
	id, err := ssl.NewIdentity(ssl.NewPRNG(cfg.seed()), cfg.keyBits(),
		"sslperf.example", time.Unix(1100000000, 0)) // fixed epoch: Nov 2004
	if err != nil {
		return nil, err
	}
	idCache[key] = id
	return id, nil
}

// serverFor builds a measurement server per the config's identity,
// suite, and protocol version.
func serverFor(cfg *Config) (*webmodel.Server, error) {
	id, err := identityFor(cfg)
	if err != nil {
		return nil, err
	}
	st, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	srv := webmodel.NewServer(id, st)
	srv.Version = cfg.Version
	return srv, nil
}

func paperSuite() *suite.Suite {
	s, err := suite.ByName("DES-CBC3-SHA")
	if err != nil {
		panic(err)
	}
	return s
}

// suiteByName is a local alias so experiment files avoid importing
// the suite package for one lookup.
func suiteByName(name string) (*suite.Suite, error) { return suite.ByName(name) }

// kcyc formats a duration as thousands of model cycles, the unit of
// the paper's Table 2.
func kcyc(d time.Duration) string {
	return fmt.Sprintf("%.1f", perf.Cycles(d)/1000)
}
