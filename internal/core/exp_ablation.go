package core

import (
	"fmt"
	"time"

	"sslperf/internal/bn"
	"sslperf/internal/perf"
	"sslperf/internal/record"
	"sslperf/internal/ssl"
	"sslperf/internal/webmodel"
)

// Ablation experiments — beyond the paper's tables, these quantify
// the design choices DESIGN.md calls out.

func init() {
	register(&Experiment{
		ID:       "ablation-mul",
		Title:    "Ablation: multiplication algorithm vs RSA function profile",
		PaperRef: "explains Table 8's bn_sub_words 22.6% (OpenSSL's Karatsuba)",
		Run:      runAblationMul,
	})
	register(&Experiment{
		ID:       "ablation-resume",
		Title:    "Ablation: full handshake vs session resumption",
		PaperRef: "quantifies the paper's 'session re-negotiation avoids the public key encryption'",
		Run:      runAblationResume,
	})
	register(&Experiment{
		ID:       "ablation-kx",
		Title:    "Ablation: RSA vs ephemeral-DH key exchange",
		PaperRef: "the paper's other asymmetric algorithm (Diffie-Hellman) priced on the same stack",
		Run:      runAblationKx,
	})
	register(&Experiment{
		ID:       "ablation-version",
		Title:    "Ablation: SSL 3.0 vs TLS 1.0 protocol cost",
		PaperRef: "the successor protocol's HMAC + PRF priced against SSLv3's constructions",
		Run:      runAblationVersion,
	})
	register(&Experiment{
		ID:       "ablation-latency",
		Title:    "Ablation: handshake latency distribution",
		PaperRef: "the per-request view behind the paper's averages (Table 2 is a mean)",
		Run:      runAblationLatency,
	})
}

func runAblationLatency(cfg *Config) (*Report, error) {
	srv, err := serverFor(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.scale(60)
	if n < 5 {
		n = 5
	}
	var full, resumed perf.Series
	_, sess, err := srv.RunTransaction(1024, nil)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		rf, _, err := srv.RunTransaction(1024, nil)
		if err != nil {
			return nil, err
		}
		full.Add(rf.Anatomy.Total())
		rr, s2, err := srv.RunTransaction(1024, sess)
		if err != nil {
			return nil, err
		}
		if !rr.Resumed {
			return nil, fmt.Errorf("resumption failed at %d", i)
		}
		resumed.Add(rr.Anatomy.Total())
		sess = s2
	}
	t := perf.NewTable(
		fmt.Sprintf("Ablation: handshake latency distribution (n=%d, Kcycles)", n),
		"handshake", "mean", "p50", "p90", "p99", "max", "stddev")
	row := func(name string, s *perf.Series) {
		t.AddRow(name, kcyc(s.Mean()), kcyc(s.Percentile(50)),
			kcyc(s.Percentile(90)), kcyc(s.Percentile(99)),
			kcyc(s.Max()), kcyc(s.StdDev()))
	}
	row("full", &full)
	row("resumed", &resumed)
	return &Report{ID: "ablation-latency", Title: "Handshake latency distribution",
		Tables: []*perf.Table{t},
		Notes: []string{
			"full handshakes are tightly distributed around the RSA operation; resumed ones are both ~5x faster at the median and much flatter",
		}}, nil
}

func runAblationVersion(cfg *Config) (*Report, error) {
	id, err := identityFor(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.iters()
	t := perf.NewTable("Ablation: protocol version (DES-CBC3-SHA, 8KB transaction)",
		"version", "SSL Kcycles", "public-key Kcycles", "hash Kcycles", "private Kcycles")
	for _, v := range []struct {
		name string
		ver  uint16
	}{{"SSL 3.0", record.VersionSSL30}, {"TLS 1.0", record.VersionTLS10}} {
		srv := webmodel.NewServer(id, paperSuite())
		srv.Version = v.ver
		var split webmodel.CryptoSplit
		var total time.Duration
		for i := 0; i < n; i++ {
			res, _, err := srv.RunTransaction(8192, nil)
			if err != nil {
				return nil, err
			}
			split.Add(res.Crypto)
			total += res.SSLTotal
		}
		split.Scale(n)
		total /= time.Duration(n)
		t.AddRow(v.name, kcyc(total), kcyc(split.Public), kcyc(split.Hash), kcyc(split.Private))
	}
	return &Report{ID: "ablation-version", Title: "Protocol version ablation",
		Tables: []*perf.Table{t},
		Notes: []string{
			"TLS 1.0 swaps SSLv3's pad1/pad2 MAC for HMAC (two extra compression passes per record are avoided by HMAC's precomputed pads, but the PRF doubles the KDF hashing); both protocols' record costs are within a few percent — the paper's conclusions are version-insensitive",
		}}, nil
}

func runAblationKx(cfg *Config) (*Report, error) {
	id, err := identityFor(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.iters()
	t := perf.NewTable("Ablation: handshake cost by key exchange (3DES suites, 1KB transaction)",
		"key exchange", "SSL Kcycles", "public-key Kcycles", "hash Kcycles")
	for _, name := range []string{"DES-CBC3-SHA", "EDH-RSA-DES-CBC3-SHA"} {
		s, err := suiteByName(name)
		if err != nil {
			return nil, err
		}
		srv := webmodel.NewServer(id, s)
		var split webmodel.CryptoSplit
		var total time.Duration
		for i := 0; i < n; i++ {
			res, _, err := srv.RunTransaction(1024, nil)
			if err != nil {
				return nil, err
			}
			split.Add(res.Crypto)
			total += res.SSLTotal
		}
		split.Scale(n)
		total /= time.Duration(n)
		t.AddRow(name, kcyc(total), kcyc(split.Public), kcyc(split.Hash))
	}
	return &Report{ID: "ablation-kx", Title: "Key exchange ablation",
		Tables: []*perf.Table{t},
		Notes: []string{
			"DHE pays three extra public-key operations server-side (ephemeral keygen, RSA signature, shared-secret computation) plus forward secrecy; the paper's RSA-only measurement is the cheap end of the asymmetric spectrum",
		}}, nil
}

// rsaProfileUnder collects the exclusive-time bn function profile of
// n RSA-1024 decryptions under the given multiplication config.
func rsaProfileUnder(cfg *Config, mode bn.MulMode, threshold, n int) (*perf.Breakdown, time.Duration, error) {
	key, err := rsaKeyFor(cfg, 1024)
	if err != nil {
		return nil, 0, err
	}
	rnd := ssl.NewPRNG(cfg.seed() + 55)
	ct, err := key.EncryptPKCS1(rnd, make([]byte, 48))
	if err != nil {
		return nil, 0, err
	}
	if _, err := key.DecryptPKCS1(rnd, ct); err != nil {
		return nil, 0, err
	}
	prevMode := bn.SetMulMode(mode)
	prevThr := bn.SetKaratsubaThreshold(threshold)
	defer func() {
		bn.SetMulMode(prevMode)
		bn.SetKaratsubaThreshold(prevThr)
	}()
	start := time.Now()
	prof := bn.StartProfile()
	for i := 0; i < n; i++ {
		if _, err := key.DecryptPKCS1(rnd, ct); err != nil {
			bn.StopProfile()
			return nil, 0, err
		}
	}
	bn.StopProfile()
	return prof, time.Since(start) / time.Duration(n), nil
}

func runAblationMul(cfg *Config) (*Report, error) {
	n := cfg.scale(40)
	configs := []struct {
		name      string
		mode      bn.MulMode
		threshold int
	}{
		{"schoolbook", bn.MulSchoolbook, 16},
		{"karatsuba (thr 16)", bn.MulKaratsuba, 16},
		{"karatsuba (thr 8, OpenSSL-like)", bn.MulKaratsuba, 8},
	}
	t := perf.NewTable("Ablation: bn function profile of RSA-1024 decryption by mul algorithm",
		"configuration", "bn_mul_add_words %", "bn_sub_words %",
		"bn_add_words %", "BN_from_montgomery %", "Kcycles/op")
	for _, c := range configs {
		prof, per, err := rsaProfileUnder(cfg, c.mode, c.threshold, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name,
			fmt.Sprintf("%.1f", prof.Percent("bn_mul_add_words")),
			fmt.Sprintf("%.1f", prof.Percent("bn_sub_words")),
			fmt.Sprintf("%.1f", prof.Percent("bn_add_words")),
			fmt.Sprintf("%.1f", prof.Percent("BN_from_montgomery")),
			kcyc(per))
	}
	return &Report{ID: "ablation-mul",
		Title:  "Multiplication algorithm vs RSA profile",
		Tables: []*perf.Table{t},
		Notes: []string{
			"paper's Table 8 (OpenSSL Karatsuba, 32-bit): bn_mul_add_words 47.0%, bn_sub_words 22.6%, bn_add_words 4.9%",
			"lowering the recursion cutoff moves multiplication work out of the mul-add kernel and into the subtractive difference terms — the attribution shift, not the absolute speed, is the point",
		}}, nil
}

func runAblationResume(cfg *Config) (*Report, error) {
	srv, err := serverFor(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.iters()

	var full, resumed webmodel.CryptoSplit
	var fullTotal, resumedTotal time.Duration
	_, sess, err := srv.RunTransaction(1024, nil)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		rf, _, err := srv.RunTransaction(1024, nil)
		if err != nil {
			return nil, err
		}
		full.Add(rf.Crypto)
		fullTotal += rf.SSLTotal
		rr, s2, err := srv.RunTransaction(1024, sess)
		if err != nil {
			return nil, err
		}
		if !rr.Resumed {
			return nil, fmt.Errorf("resumption failed on iteration %d", i)
		}
		resumed.Add(rr.Crypto)
		resumedTotal += rr.SSLTotal
		sess = s2
	}
	full.Scale(n)
	resumed.Scale(n)
	fullTotal /= time.Duration(n)
	resumedTotal /= time.Duration(n)

	t := perf.NewTable("Ablation: full vs resumed session (1KB transaction, DES-CBC3-SHA)",
		"metric", "full handshake", "resumed", "saving")
	row := func(name string, a, b time.Duration) {
		saving := "-"
		if a > 0 {
			saving = fmt.Sprintf("%.1f%%", 100*(1-float64(b)/float64(a)))
		}
		t.AddRow(name, kcyc(a)+" Kcyc", kcyc(b)+" Kcyc", saving)
	}
	row("SSL processing", fullTotal, resumedTotal)
	row("public key crypto", full.Public, resumed.Public)
	row("hashing", full.Hash, resumed.Hash)
	row("private key crypto", full.Private, resumed.Private)
	return &Report{ID: "ablation-resume",
		Title:  "Resumption ablation",
		Tables: []*perf.Table{t},
		Notes: []string{
			"the paper: 'Session re-negotiation using the previously setup keys can avoid the public key encryption, therefore greatly reduces the handshake overhead' — the public-key row must show ~100% saving",
		}}, nil
}
