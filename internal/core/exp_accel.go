package core

import (
	"fmt"
	"time"

	"sslperf/internal/accel"
	"sslperf/internal/aes"
	"sslperf/internal/md5x"
	"sslperf/internal/perf"
	"sslperf/internal/sha1x"
	"sslperf/internal/sslcrypto"
	"sslperf/internal/workload"
)

func init() {
	register(&Experiment{
		ID:       "fig4",
		Title:    "ISA support: three-operand logical operations (model)",
		PaperRef: "MD5/SHA-1 three-input functions need >=2 two-operand instructions",
		Run:      runFig4,
	})
	register(&Experiment{
		ID:       "fig5",
		Title:    "Hardware support: AES round table-lookup unit (model)",
		PaperRef: "four independent basic ops per round, fully parallel in hardware",
		Run:      runFig5,
	})
	register(&Experiment{
		ID:       "fig6",
		Title:    "Crypto engine: pipelined AES + MAC (measured)",
		PaperRef: "MAC calculation overlapped with AES encryption of the fragment",
		Run:      runFig6,
	})
}

func runFig4(cfg *Config) (*Report, error) {
	t := perf.NewTable("Figure 4: modeled effect of 3-operand logical ISA on hashing",
		"hash", "ops before", "ops after", "cycles before", "cycles after", "speedup")
	for _, h := range []struct {
		name  string
		trace func(tr *perf.Trace)
	}{
		{"MD5", func(tr *perf.Trace) { md5x.TraceHash(tr, 1024) }},
		{"SHA-1", func(tr *perf.Trace) { sha1x.TraceHash(tr, 1024) }},
	} {
		var before perf.Trace
		h.trace(&before)
		after := accel.ThreeOperandISA(&before)
		t.AddRow(h.name,
			fmt.Sprint(before.Total()), fmt.Sprint(after.Total()),
			fmt.Sprintf("%.0f", before.EstimatedCycles()),
			fmt.Sprintf("%.0f", after.EstimatedCycles()),
			fmt.Sprintf("%.2fx", accel.Speedup(&before, after)))
	}
	return &Report{ID: "fig4", Title: "3-operand ISA model", Tables: []*perf.Table{t}}, nil
}

func runFig5(cfg *Config) (*Report, error) {
	t := perf.NewTable("Figure 5: modeled AES round hardware unit",
		"key size", "sw cycles/block", "hw cycles/block", "speedup")
	for _, keyLen := range []int{16, 32} {
		c, err := aes.New(make([]byte, keyLen))
		if err != nil {
			return nil, err
		}
		var tr perf.Trace
		c.TraceEncryptBlock(&tr)
		sw, hw := accel.AESRoundUnit(&tr, c.Rounds())
		t.AddRow(fmt.Sprintf("%d-bit", keyLen*8),
			fmt.Sprintf("%.0f", sw), fmt.Sprintf("%.0f", hw),
			fmt.Sprintf("%.1fx", sw/hw))
	}
	return &Report{ID: "fig5", Title: "AES round unit model", Tables: []*perf.Table{t}}, nil
}

func runFig6(cfg *Config) (*Report, error) {
	t := perf.NewTable("Figure 6: crypto engine — serial vs pipelined AES+MAC",
		"fragment", "serial MB/s", "pipelined MB/s", "measured speedup",
		"engine model speedup")
	iters := cfg.scale(2000)
	for _, size := range []int{1024, 4096, 16384} {
		data := workload.Payload(size)
		mkEngine := func() (*accel.Engine, error) {
			return accel.NewEngine(make([]byte, 16), make([]byte, 16),
				workload.Payload(20), sslcrypto.MACSHA1)
		}
		es, err := mkEngine()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := es.EncryptFragmentSerial(data); err != nil {
				return nil, err
			}
		}
		serial := time.Since(start)
		ep, err := mkEngine()
		if err != nil {
			return nil, err
		}
		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := ep.EncryptFragmentPipelined(data); err != nil {
				return nil, err
			}
		}
		piped := time.Since(start)
		mbps := func(d time.Duration) float64 {
			return float64(iters) * float64(size) / d.Seconds() / 1e6
		}
		em, err := mkEngine()
		if err != nil {
			return nil, err
		}
		macT, aesT := em.ComponentTimes(data, iters/4+1)
		t.AddRow(fmt.Sprintf("%dB", size),
			fmt.Sprintf("%.1f", mbps(serial)),
			fmt.Sprintf("%.1f", mbps(piped)),
			fmt.Sprintf("%.2fx", float64(serial)/float64(piped)),
			fmt.Sprintf("%.2fx", accel.ModelOverlapSpeedup(macT, aesT)))
	}
	// Cross-goroutine unit attribution: an instrumented pipelined pass
	// whose hashing-unit goroutine and cipher unit aggregate into one
	// perf.SharedBreakdown concurrently.
	ei, err := accel.NewEngine(make([]byte, 16), make([]byte, 16),
		workload.Payload(20), sslcrypto.MACSHA1)
	if err != nil {
		return nil, err
	}
	ei.Perf = perf.NewSharedBreakdown()
	attrData := workload.Payload(16384)
	for i := 0; i < cfg.scale(200); i++ {
		if _, err := ei.EncryptFragmentPipelined(attrData); err != nil {
			return nil, err
		}
	}
	shares := ei.Perf.Snapshot()
	unitNote := fmt.Sprintf(
		"engine unit attribution over 16KB fragments (SharedBreakdown): mac %.0f%%, aes %.0f%% of unit-busy time",
		shares.Percent("mac"), shares.Percent("aes"))

	// Discrete-event engine simulation: unit-count scaling for a bulk
	// stream of 16KB records (the paper: "several crypto units within
	// one engine can run in parallel in the bulk transfer phase").
	sim := perf.NewTable("Figure 6 (simulated engine): unit scaling on 1000 x 16KB records",
		"AES+hash units", "throughput (MB/s @1GHz)", "speedup vs serial",
		"AES util", "hash util")
	work := make([]int, 1000)
	for i := range work {
		work[i] = 16384
	}
	base := accel.DefaultEngineSim()
	serial, err := base.SerialBaseline(work)
	if err != nil {
		return nil, err
	}
	for _, cfgU := range [][2]int{{1, 1}, {2, 1}, {3, 1}, {4, 1}, {4, 2}, {8, 4}} {
		s := accel.DefaultEngineSim()
		s.AESUnits, s.HashUnits = cfgU[0], cfgU[1]
		res, err := s.Run(work)
		if err != nil {
			return nil, err
		}
		sim.AddRow(fmt.Sprintf("%d+%d", cfgU[0], cfgU[1]),
			fmt.Sprintf("%.0f", res.ThroughputMBps(1.0)),
			fmt.Sprintf("%.2fx", serial.TotalCycles/res.TotalCycles),
			fmt.Sprintf("%.0f%%", 100*res.AESUtilization),
			fmt.Sprintf("%.0f%%", 100*res.HashUtilization))
	}
	return &Report{ID: "fig6", Title: "Crypto engine pipelining",
		Tables: []*perf.Table{t, sim},
		Notes: []string{
			"measured column: goroutine pipeline, which needs >1 host CPU to overlap; model column: hardware-engine speedup implied by the separately measured MAC and AES unit times (serial = mac+aes vs overlapped = max)",
			unitNote,
			"the simulated engine uses Figure 5's round-unit service rate; scaling flattens once the slower pool saturates",
		}}, nil
}
