package core

import (
	"fmt"
	"time"

	"sslperf/internal/bn"
	"sslperf/internal/perf"
	"sslperf/internal/rsa"
	"sslperf/internal/ssl"
)

func init() {
	register(&Experiment{
		ID:       "table7",
		Title:    "Execution time breakdown for RSA decryption",
		PaperRef: "computation 97.0% (512-bit) / 98.8% (1024-bit)",
		Run:      runTable7,
	})
	register(&Experiment{
		ID:       "table8",
		Title:    "Top ten functions in RSA",
		PaperRef: "bn_mul_add_words 47.0%, bn_sub_words 22.6%, BN_from_montgomery 9.5%",
		Run:      runTable8,
	})
	register(&Experiment{
		ID:       "table9",
		Title:    "Instructions in bn_mul_add_words",
		PaperRef: "the 9-instruction mul/add/adc inner loop",
		Run:      runTable9,
	})
}

// rsaKeyFor generates (and caches via the experiment identity cache
// pattern) an RSA key of the given size.
var rsaKeys = map[int]*rsa.PrivateKey{}

func rsaKeyFor(cfg *Config, bits int) (*rsa.PrivateKey, error) {
	if k, ok := rsaKeys[bits]; ok {
		return k, nil
	}
	k, err := rsa.GenerateKey(ssl.NewPRNG(cfg.seed()+uint64(bits)), bits)
	if err != nil {
		return nil, err
	}
	rsaKeys[bits] = k
	return k, nil
}

// profileDecrypt averages the six-phase breakdown over n decryptions
// of a 48-byte message (the pre-master size).
func profileDecrypt(cfg *Config, bits, n int) (*perf.Breakdown, error) {
	key, err := rsaKeyFor(cfg, bits)
	if err != nil {
		return nil, err
	}
	rnd := ssl.NewPRNG(cfg.seed() + 7)
	msg := make([]byte, 48)
	rnd.Read(msg)
	ct, err := key.EncryptPKCS1(rnd, msg)
	if err != nil {
		return nil, err
	}
	// Warm blinding to steady state.
	if _, err := key.DecryptPKCS1(rnd, ct); err != nil {
		return nil, err
	}
	agg := perf.NewBreakdown()
	for i := 0; i < n; i++ {
		if _, err := key.DecryptPKCS1Profiled(rnd, ct, agg); err != nil {
			return nil, err
		}
	}
	agg.Scale(n)
	return agg, nil
}

var paperTable7 = map[string][2]string{
	rsa.PhaseInit:         {"0.07", "0.02"},
	rsa.PhaseDataToBN:     {"0.07", "0.02"},
	rsa.PhaseBlinding:     {"1.20", "0.66"},
	rsa.PhaseComputation:  {"97.01", "98.85"},
	rsa.PhaseBNToData:     {"0.05", "0.02"},
	rsa.PhaseBlockParsing: {"1.60", "0.43"},
}

func runTable7(cfg *Config) (*Report, error) {
	n := cfg.scale(50)
	b512, err := profileDecrypt(cfg, 512, n)
	if err != nil {
		return nil, err
	}
	b1024, err := profileDecrypt(cfg, 1024, n)
	if err != nil {
		return nil, err
	}
	t := perf.NewTable("Table 7: RSA decryption breakdown",
		"step", "512b cycles", "512b %", "1024b cycles", "1024b %",
		"paper 512 %", "paper 1024 %")
	for i, name := range rsa.Phases {
		t.AddRow(fmt.Sprintf("%d %s", i+1, name),
			fmt.Sprintf("%.0f", perf.Cycles(b512.Elapsed(name))),
			fmt.Sprintf("%.2f", b512.Percent(name)),
			fmt.Sprintf("%.0f", perf.Cycles(b1024.Elapsed(name))),
			fmt.Sprintf("%.2f", b1024.Percent(name)),
			paperTable7[name][0], paperTable7[name][1])
	}
	t.AddRow("total",
		fmt.Sprintf("%.0f", perf.Cycles(b512.Total())), "100",
		fmt.Sprintf("%.0f", perf.Cycles(b1024.Total())), "100", "100", "100")
	return &Report{ID: "table7", Title: "RSA breakdown", Tables: []*perf.Table{t}}, nil
}

var paperTable8 = map[string]string{
	"bn_mul_add_words":   "47.04",
	"bn_sub_words":       "22.61",
	"BN_from_montgomery": "9.47",
	"bn_add_words":       "4.92",
	"BN_usub":            "3.24",
	"BN_copy":            "1.50",
	"BN_sqr":             "1.04",
}

func runTable8(cfg *Config) (*Report, error) {
	key, err := rsaKeyFor(cfg, 1024)
	if err != nil {
		return nil, err
	}
	rnd := ssl.NewPRNG(cfg.seed() + 8)
	msg := make([]byte, 48)
	rnd.Read(msg)
	ct, err := key.EncryptPKCS1(rnd, msg)
	if err != nil {
		return nil, err
	}
	if _, err := key.DecryptPKCS1(rnd, ct); err != nil {
		return nil, err
	}
	n := cfg.scale(50)
	prof := bn.StartProfile()
	for i := 0; i < n; i++ {
		if _, err := key.DecryptPKCS1(rnd, ct); err != nil {
			bn.StopProfile()
			return nil, err
		}
	}
	bn.StopProfile()

	t := perf.NewTable("Table 8: top functions in RSA decryption (exclusive time)",
		"function", "%", "paper %")
	count := 0
	for _, s := range prof.SortedByElapsed() {
		if count >= 10 {
			break
		}
		count++
		t.AddRow(s.Name, fmt.Sprintf("%.2f", prof.Percent(s.Name)), paperTable8[s.Name])
	}
	return &Report{ID: "table8", Title: "Top RSA functions", Tables: []*perf.Table{t},
		Notes: []string{
			"exclusive (self) time per function, like the paper's flat Oprofile report",
			"the paper's high bn_sub_words share comes from OpenSSL's Karatsuba multiplication; this library uses schoolbook multiplication, so that time appears under bn_mul_add_words instead",
		}}, nil
}

func runTable9(cfg *Config) (*Report, error) {
	t := perf.NewTable("Table 9: inner loop of bn_mul_add_words",
		"instruction", "role")
	for _, row := range bn.InnerLoopListing() {
		t.AddRow(row[0], row[1])
	}
	// Also show the abstract per-limb trace the model uses.
	var tr perf.Trace
	bn.TraceMulAddWords(&tr, 1)
	mix := perf.NewTable("Abstract per-limb operation counts (model)",
		"op class", "count")
	for _, e := range tr.Mix() {
		mix.AddRow(e.Op.String(), fmt.Sprint(e.Count))
	}
	return &Report{ID: "table9", Title: "bn_mul_add_words inner loop",
		Tables: []*perf.Table{t, mix}}, nil
}

// measureRSAThroughput returns decrypted bytes/second for Table 11.
func measureRSAThroughput(cfg *Config) (float64, error) {
	key, err := rsaKeyFor(cfg, 1024)
	if err != nil {
		return 0, err
	}
	rnd := ssl.NewPRNG(cfg.seed() + 9)
	msg := make([]byte, 48)
	ct, err := key.EncryptPKCS1(rnd, msg)
	if err != nil {
		return 0, err
	}
	if _, err := key.DecryptPKCS1(rnd, ct); err != nil {
		return 0, err
	}
	n := cfg.scale(40)
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := key.DecryptPKCS1(rnd, ct); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	// One op "processes" a modulus worth of data (128 bytes).
	return float64(n*key.Size()) / elapsed.Seconds(), nil
}
