package core

import (
	"fmt"
	"time"

	"sslperf/internal/perf"
	"sslperf/internal/webmodel"
	"sslperf/internal/workload"
)

func init() {
	register(&Experiment{
		ID:       "fig1",
		Title:    "SSL protocol flow (message trace)",
		PaperRef: "handshake message sequence diagram",
		Run:      runFig1,
	})
	register(&Experiment{
		ID:       "table1",
		Title:    "Execution time breakdown in web server",
		PaperRef: "libcrypto 70.83%, libssl 0.82%, httpd 1.84%, vmlinux 17.51%, other 9.00%",
		Run:      runTable1,
	})
	register(&Experiment{
		ID:       "fig2",
		Title:    "Time breakdown in crypto library vs request file size",
		PaperRef: "public ~90% at 1KB, falling; private+hash growing with size",
		Run:      runFig2,
	})
}

func runFig1(cfg *Config) (*Report, error) {
	id, err := identityFor(cfg)
	if err != nil {
		return nil, err
	}
	trace, err := traceHandshake(cfg, id)
	if err != nil {
		return nil, err
	}
	t := perf.NewTable("Figure 1: SSL protocol flow (observed on the wire)",
		"direction", "record type", "handshake message", "bytes")
	for _, ev := range trace {
		t.AddRow(ev.dir, ev.recordType, ev.message, fmt.Sprint(ev.bytes))
	}
	return &Report{ID: "fig1", Title: "Protocol flow", Tables: []*perf.Table{t},
		Notes: []string{"server key exchange and certificate request are skipped: the certificate's RSA key performs the exchange (as in the paper's cipher suite)"}}, nil
}

func runTable1(cfg *Config) (*Report, error) {
	srv, err := serverFor(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.iters()
	var agg *webmodel.TransactionResult
	var sslTotal time.Duration
	for i := 0; i < n; i++ {
		res, _, err := srv.RunTransaction(1024, nil)
		if err != nil {
			return nil, err
		}
		if agg == nil {
			agg = res
		} else {
			agg.Crypto.Add(res.Crypto)
			agg.SSLTotal += res.SSLTotal
			agg.BytesSent += res.BytesSent
		}
		sslTotal += res.SSLTotal
	}
	// Average the accumulated measurements down to one transaction.
	agg.BytesSent /= n
	agg.Crypto.Scale(n)
	agg.SSLTotal /= time.Duration(n)
	env := webmodel.CalibrateEnvironment(sslTotal / time.Duration(n))
	b := env.Transaction(agg)
	paper := map[string]string{
		webmodel.ComponentLibcrypto: "70.83",
		webmodel.ComponentLibssl:    "0.82",
		webmodel.ComponentHTTPD:     "1.84",
		webmodel.ComponentVMLinux:   "17.51",
		webmodel.ComponentOther:     "9.00",
	}
	desc := map[string]string{
		webmodel.ComponentLibcrypto: "crypto library (measured)",
		webmodel.ComponentLibssl:    "SSL functions (measured)",
		webmodel.ComponentHTTPD:     "web server (modeled)",
		webmodel.ComponentVMLinux:   "kernel TCP stack (modeled)",
		webmodel.ComponentOther:     "libc, threads, ... (modeled)",
	}
	t := perf.NewTable("Table 1: HTTPS transaction breakdown (1KB page, DES-CBC3-SHA)",
		"component", "functionality", "%", "paper %")
	for _, name := range b.Names() {
		t.AddRow(name, desc[name], fmt.Sprintf("%.2f", b.Percent(name)), paper[name])
	}
	return &Report{ID: "table1", Title: "Web server breakdown",
		Tables: []*perf.Table{t},
		Notes: []string{
			"SSL components are measured on this stack; httpd/kernel/other use the calibrated environment model (see webmodel and DESIGN.md)",
		}}, nil
}

func runFig2(cfg *Config) (*Report, error) {
	srv, err := serverFor(cfg)
	if err != nil {
		return nil, err
	}
	t := perf.NewTable("Figure 2: crypto library time split vs request file size",
		"file size", "public %", "private %", "hash %", "other %")
	n := cfg.iters()
	for _, size := range workload.FileSweep() {
		var agg webmodel.CryptoSplit
		for i := 0; i < n; i++ {
			res, _, err := srv.RunTransaction(size, nil)
			if err != nil {
				return nil, err
			}
			agg.Add(res.Crypto)
		}
		total := float64(agg.Total())
		t.AddRow(fmt.Sprintf("%dKB", size/1024),
			fmt.Sprintf("%.1f", 100*float64(agg.Public)/total),
			fmt.Sprintf("%.1f", 100*float64(agg.Private)/total),
			fmt.Sprintf("%.1f", 100*float64(agg.Hash)/total),
			fmt.Sprintf("%.1f", 100*float64(agg.Other)/total))
	}
	return &Report{ID: "fig2", Title: "Crypto split vs file size",
		Tables: []*perf.Table{t},
		Notes: []string{
			"paper shape: public ≈90% at 1KB and falls with size; private-key encryption and hashing grow proportionally to the file",
		}}, nil
}
