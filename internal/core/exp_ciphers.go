package core

import (
	"fmt"
	"time"

	"sslperf/internal/aes"
	"sslperf/internal/cipherinfo"
	"sslperf/internal/des"
	"sslperf/internal/perf"
	"sslperf/internal/rc4"
	"sslperf/internal/workload"
)

func init() {
	register(&Experiment{
		ID:       "fig3",
		Title:    "Key setup share of encryption vs data size",
		PaperRef: "RC4 28.5% at 1KB; block ciphers 1.0-3.6%; all falling with size",
		Run:      runFig3,
	})
	register(&Experiment{
		ID:       "table4",
		Title:    "Important data structures and characteristics",
		PaperRef: "block/key sizes, key schedules, tables, rounds, lookups",
		Run:      runTable4,
	})
	register(&Experiment{
		ID:       "table5",
		Title:    "AES execution time breakdown",
		PaperRef: "main rounds 71% (128-bit) / 78% (256-bit)",
		Run:      runTable5,
	})
	register(&Experiment{
		ID:       "table6",
		Title:    "DES/3DES execution time breakdown",
		PaperRef: "substitution 74.7% (DES) / 89.1% (3DES)",
		Run:      runTable6,
	})
}

// keySetupShare measures one cipher's key-setup fraction when
// encrypting dataSize bytes: time(n setups) vs time(n setups + n
// encryptions of dataSize).
func keySetupShare(setup func(), encrypt func(data []byte), dataSize, n int) float64 {
	data := workload.Payload(dataSize)
	start := time.Now()
	for i := 0; i < n; i++ {
		setup()
	}
	setupTime := time.Since(start)
	start = time.Now()
	for i := 0; i < n; i++ {
		encrypt(data)
	}
	encTime := time.Since(start)
	return 100 * float64(setupTime) / float64(setupTime+encTime)
}

func runFig3(cfg *Config) (*Report, error) {
	n := cfg.scale(2000)
	aesKey := workload.Payload(16)
	desKey := workload.Payload(8)
	tdesKey := workload.Payload(24)
	rc4Key := workload.Payload(16)

	aesC, _ := aes.New(aesKey)
	desC, _ := des.New(desKey)
	tdesC, _ := des.NewTriple(tdesKey)

	type cipherCase struct {
		name    string
		setup   func()
		encrypt func(data []byte)
	}
	aesBuf := make([]byte, 16)
	desBuf := make([]byte, 8)
	cases := []cipherCase{
		{"AES", func() { aes.New(aesKey) }, func(d []byte) {
			for i := 0; i+16 <= len(d); i += 16 {
				aesC.Encrypt(aesBuf, d[i:i+16])
			}
		}},
		{"DES", func() { des.New(desKey) }, func(d []byte) {
			for i := 0; i+8 <= len(d); i += 8 {
				desC.Encrypt(desBuf, d[i:i+8])
			}
		}},
		{"3DES", func() { des.NewTriple(tdesKey) }, func(d []byte) {
			for i := 0; i+8 <= len(d); i += 8 {
				tdesC.Encrypt(desBuf, d[i:i+8])
			}
		}},
		{"RC4", func() { rc4.New(rc4Key) }, nil},
	}
	// RC4's kernel runs on a persistent stream so the setup cost is
	// only in the setup measurement.
	rc4Stream, _ := rc4.New(rc4Key)
	cases[3].encrypt = func(d []byte) { rc4Stream.XORKeyStream(d, d) }

	t := perf.NewTable("Figure 3: key setup percentage during encryption",
		"data size", "AES %", "DES %", "3DES %", "RC4 %")
	for _, size := range workload.FileSweep() {
		row := []string{fmt.Sprintf("%dKB", size/1024)}
		for _, c := range cases {
			row = append(row, fmt.Sprintf("%.1f", keySetupShare(c.setup, c.encrypt, size, n)))
		}
		t.AddRow(row...)
	}
	return &Report{ID: "fig3", Title: "Key setup share", Tables: []*perf.Table{t},
		Notes: []string{
			"paper shape: RC4's 256-entry state-table setup dwarfs its per-byte kernel (28.5% at 1KB); block-cipher setup is small and all shares fall with data size",
		}}, nil
}

func runTable4(cfg *Config) (*Report, error) {
	t := perf.NewTable("Table 4: data structures and characteristics",
		"", "AES", "DES", "3DES", "RC4")
	chars := []cipherinfo.Characteristics{
		aes.Characteristics(), des.Characteristics(),
		des.TripleCharacteristics(), rc4.Characteristics(),
	}
	row := func(label string, get func(cipherinfo.Characteristics) string) {
		cells := []string{label}
		for _, c := range chars {
			cells = append(cells, get(c))
		}
		t.AddRow(cells...)
	}
	row("block size", func(c cipherinfo.Characteristics) string { return fmt.Sprintf("%db", c.BlockBits) })
	row("key size", func(c cipherinfo.Characteristics) string { return c.KeyBits + "b" })
	row("key schedule", func(c cipherinfo.Characteristics) string { return c.KeySchedule })
	row("tables", func(c cipherinfo.Characteristics) string { return c.Tables })
	row("rounds", func(c cipherinfo.Characteristics) string { return c.Rounds })
	row("table lookups", func(c cipherinfo.Characteristics) string { return fmt.Sprint(c.Lookups) })
	return &Report{ID: "table4", Title: "Cipher characteristics",
		Tables: []*perf.Table{t}}, nil
}

func runTable5(cfg *Config) (*Report, error) {
	n := cfg.scale(300000)
	c128, _ := aes.New(make([]byte, 16))
	c256, _ := aes.New(make([]byte, 32))
	b128 := c128.ProfileBlockParts(n)
	b256 := c256.ProfileBlockParts(n)
	paper := map[string][2]string{
		aes.PartLoadAddKey: {"12", "9"},
		aes.PartMainRounds: {"71", "78"},
		aes.PartFinalRound: {"17", "13"},
	}
	t := perf.NewTable("Table 5: AES block operation breakdown",
		"step", "128-bit %", "256-bit %", "paper 128 %", "paper 256 %")
	for i, name := range b128.Names() {
		t.AddRow(fmt.Sprintf("%d: %s", i+1, name),
			fmt.Sprintf("%.1f", b128.Percent(name)),
			fmt.Sprintf("%.1f", b256.Percent(name)),
			paper[name][0], paper[name][1])
	}
	return &Report{ID: "table5", Title: "AES breakdown", Tables: []*perf.Table{t}}, nil
}

func runTable6(cfg *Config) (*Report, error) {
	n := cfg.scale(300000)
	single, _ := des.New(make([]byte, 8))
	triple, _ := des.NewTriple(make([]byte, 24))
	bd := single.ProfileBlockParts(n)
	bt := triple.ProfileBlockParts(n)
	paper := map[string][2]string{
		des.PartIP:           {"13.2", "5.3"},
		des.PartSubstitution: {"74.7", "89.1"},
		des.PartFP:           {"12.1", "5.6"},
	}
	t := perf.NewTable("Table 6: DES/3DES block operation breakdown",
		"step", "DES %", "3DES %", "paper DES %", "paper 3DES %")
	for _, name := range bd.Names() {
		t.AddRow(name,
			fmt.Sprintf("%.1f", bd.Percent(name)),
			fmt.Sprintf("%.1f", bt.Percent(name)),
			paper[name][0], paper[name][1])
	}
	return &Report{ID: "table6", Title: "DES/3DES breakdown", Tables: []*perf.Table{t}}, nil
}
