package core

import (
	"strings"
	"testing"
)

func quickCfg() *Config { return &Config{Quick: true, KeyBits: 512} }

func TestRegistryCompleteAndOrdered(t *testing.T) {
	all := All()
	want := []string{
		"fig1", "table1", "fig2", "table2", "table3", "fig3", "table4",
		"table5", "table6", "table7", "table8", "table9", "table10",
		"table11", "table12", "fig4", "fig5", "fig6",
		"ablation-mul", "ablation-resume", "ablation-kx",
		"ablation-version", "ablation-latency",
	}
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d: %s", len(all), len(want), IDs())
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("order[%d] = %s, want %s", i, e.ID, want[i])
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("table2")
	if err != nil || e.ID != "table2" {
		t.Fatalf("ByID: %v", err)
	}
	if _, err := ByID("table99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestAllExperimentsRun executes every experiment end-to-end in quick
// mode — the whole paper reproduction in miniature.
func TestAllExperimentsRun(t *testing.T) {
	cfg := quickCfg()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Fatalf("report id %s", rep.ID)
			}
			if len(rep.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			out := rep.String()
			if len(out) < 50 {
				t.Fatalf("suspiciously short report:\n%s", out)
			}
			for _, tbl := range rep.Tables {
				if tbl.NumRows() == 0 {
					t.Fatalf("empty table %q", tbl.Title)
				}
			}
		})
	}
}

func TestFig1TraceContainsProtocolFlow(t *testing.T) {
	e, _ := ByID("fig1")
	rep, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, msg := range []string{
		"ClientHello", "ServerHello", "Certificate", "ServerHelloDone",
		"ClientKeyExchange", "change_cipher_spec", "Finished",
		"application_data",
	} {
		if !strings.Contains(out, msg) {
			t.Errorf("trace missing %q:\n%s", msg, out)
		}
	}
	// The paper's suite skips ServerKeyExchange.
	if strings.Contains(out, "ServerKeyExchange") {
		t.Error("trace contains ServerKeyExchange; RSA suites must skip it")
	}
}

func TestTable2RSADominates(t *testing.T) {
	cfg := quickCfg()
	steps, total, err := runHandshakes(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	var kx *float64
	for _, s := range steps {
		if s.Name == "get_client_kx" {
			v := float64(s.Elapsed)
			kx = &v
		}
	}
	if kx == nil {
		t.Fatal("no get_client_kx step")
	}
	if *kx < 0.5*float64(total) {
		t.Fatalf("get_client_kx = %.0f of %d; paper: ~92%%", *kx, total)
	}
}

func TestTable4StaticContent(t *testing.T) {
	e, _ := ByID("table4")
	rep, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"128b", "3x16", "1,256,8b", "44,32b", "8,64,32b"} {
		if !strings.Contains(out, want) {
			t.Errorf("table4 missing %q:\n%s", want, out)
		}
	}
}

func TestTable9Listing(t *testing.T) {
	e, _ := ByID("table9")
	rep, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"mull %ebp", "adcl", "widening multiply"} {
		if !strings.Contains(out, want) {
			t.Errorf("table9 missing %q", want)
		}
	}
}

func TestIdentityCached(t *testing.T) {
	cfg := quickCfg()
	a, err := identityFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := identityFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identity not cached")
	}
}
