package core

import (
	"fmt"
	"time"

	"sslperf/internal/aes"
	"sslperf/internal/bn"
	"sslperf/internal/des"
	"sslperf/internal/md5x"
	"sslperf/internal/perf"
	"sslperf/internal/rc4"
	"sslperf/internal/sha1x"
	"sslperf/internal/workload"
)

func init() {
	register(&Experiment{
		ID:       "table11",
		Title:    "Architectural characteristics of crypto operations",
		PaperRef: "CPI 0.52-0.77; path lengths AES 50 / DES 69 / 3DES 194 / RC4 14 / RSA 61457 / MD5 12 / SHA-1 24",
		Run:      runTable11,
	})
	register(&Experiment{
		ID:       "table12",
		Title:    "Top operation classes per crypto operation",
		PaperRef: "mov tops everything but DES/3DES (xor); RSA add/adc/mul-heavy",
		Run:      runTable12,
	})
}

// primitiveTraces builds the 1KB abstract traces for each primitive.
func primitiveTraces() (map[string]*perf.Trace, []string) {
	names := []string{"AES", "DES", "3DES", "RC4", "RSA", "MD5", "SHA-1"}
	out := map[string]*perf.Trace{}

	aesC, _ := aes.New(make([]byte, 16))
	tr := &perf.Trace{}
	for i := 0; i < 64; i++ { // 64 blocks = 1KB
		aesC.TraceEncryptBlock(tr)
	}
	out["AES"] = tr

	desC, _ := des.New(make([]byte, 8))
	tr = &perf.Trace{}
	for i := 0; i < 128; i++ {
		desC.TraceEncryptBlock(tr)
	}
	out["DES"] = tr

	tdesC, _ := des.NewTriple(make([]byte, 24))
	tr = &perf.Trace{}
	for i := 0; i < 128; i++ {
		tdesC.TraceEncryptBlock(tr)
	}
	out["3DES"] = tr

	tr = &perf.Trace{}
	rc4.TraceKeystream(tr, 1024)
	out["RC4"] = tr

	tr = &perf.Trace{}
	bn.TraceRSADecrypt(tr, 1024)
	tr.Bytes = 128
	out["RSA"] = tr

	tr = &perf.Trace{}
	md5x.TraceHash(tr, 1024)
	out["MD5"] = tr

	tr = &perf.Trace{}
	sha1x.TraceHash(tr, 1024)
	out["SHA-1"] = tr
	return out, names
}

// measuredThroughput measures wall-clock MB/s for the symmetric
// primitives and hashes over 1KB units.
func measuredThroughput(cfg *Config) map[string]float64 {
	n := cfg.scale(20000)
	data := workload.Payload(1024)
	out := map[string]float64{}
	run := func(name string, fn func()) {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		elapsed := time.Since(start).Seconds()
		out[name] = float64(n) * 1024 / elapsed / 1e6
	}
	aesC, _ := aes.New(make([]byte, 16))
	buf := make([]byte, 16)
	run("AES", func() {
		for i := 0; i+16 <= len(data); i += 16 {
			aesC.Encrypt(buf, data[i:i+16])
		}
	})
	desC, _ := des.New(make([]byte, 8))
	dbuf := make([]byte, 8)
	run("DES", func() {
		for i := 0; i+8 <= len(data); i += 8 {
			desC.Encrypt(dbuf, data[i:i+8])
		}
	})
	tdesC, _ := des.NewTriple(make([]byte, 24))
	run("3DES", func() {
		for i := 0; i+8 <= len(data); i += 8 {
			tdesC.Encrypt(dbuf, data[i:i+8])
		}
	})
	rc4C, _ := rc4.New(make([]byte, 16))
	rbuf := make([]byte, 1024)
	run("RC4", func() { rc4C.XORKeyStream(rbuf, data) })
	run("MD5", func() { md5x.Sum16(data) })
	run("SHA-1", func() { sha1x.Sum20(data) })
	return out
}

var paperTable11 = map[string][3]string{
	"AES":   {"0.66", "50", "51.19"},
	"DES":   {"0.67", "69", "36.95"},
	"3DES":  {"0.66", "194", "13.32"},
	"RC4":   {"0.57", "14", "211.34"},
	"RSA":   {"0.77", "61457", "0.036"},
	"MD5":   {"0.72", "12", "197.86"},
	"SHA-1": {"0.52", "24", "135.30"},
}

func runTable11(cfg *Config) (*Report, error) {
	traces, names := primitiveTraces()
	measured := measuredThroughput(cfg)
	rsaTput, err := measureRSAThroughput(cfg)
	if err != nil {
		return nil, err
	}
	measured["RSA"] = rsaTput / 1e6

	t := perf.NewTable("Table 11: architectural characteristics (1KB units; RSA-1024)",
		"primitive", "CPI (model)", "path length (ops/B)", "throughput (MB/s, measured)",
		"paper CPI", "paper path len", "paper MB/s")
	for _, name := range names {
		tr := traces[name]
		p := paperTable11[name]
		t.AddRow(name,
			fmt.Sprintf("%.2f", tr.CPI()),
			fmt.Sprintf("%.0f", tr.PathLength()),
			fmt.Sprintf("%.2f", measured[name]),
			p[0], p[1], p[2])
	}
	return &Report{ID: "table11", Title: "Architectural characteristics",
		Tables: []*perf.Table{t},
		Notes: []string{
			"CPI and path length come from the abstract instruction model (SoftSDV substitute); throughput is wall-clock on this machine",
			"paper ordering to check: RSA slowest by orders of magnitude; RC4 fastest symmetric; 3DES ~3x DES; MD5 faster than SHA-1",
		}}, nil
}

func runTable12(cfg *Config) (*Report, error) {
	traces, names := primitiveTraces()
	var tables []*perf.Table
	for _, name := range names {
		top, covered := traces[name].TopMix(10)
		t := perf.NewTable(fmt.Sprintf("Table 12 (%s): top operation classes", name),
			"op class", "x86 analogue", "%")
		for _, e := range top {
			t.AddRow(e.Op.String(), x86Analogue(e.Op), fmt.Sprintf("%.2f", e.Percent))
		}
		t.AddRow("(coverage)", "", fmt.Sprintf("%.2f", covered))
		tables = append(tables, t)
	}
	return &Report{ID: "table12", Title: "Operation mixes", Tables: tables,
		Notes: []string{
			"load/store/lookup classes together correspond to the paper's movl/movb rows; the x86 column gives the closest mnemonic",
		}}, nil
}

func x86Analogue(op perf.Op) string {
	switch op {
	case perf.OpLoad, perf.OpStore, perf.OpMove:
		return "movl"
	case perf.OpLookup:
		return "movl (indexed)"
	case perf.OpXor:
		return "xorl"
	case perf.OpAnd:
		return "andl"
	case perf.OpOr:
		return "orl"
	case perf.OpNot:
		return "notl"
	case perf.OpAdd:
		return "addl/leal"
	case perf.OpAddC:
		return "adcl"
	case perf.OpMul:
		return "mull"
	case perf.OpShift:
		return "shrl/shll"
	case perf.OpRotate:
		return "roll/rorl"
	case perf.OpBranch:
		return "jnz"
	case perf.OpCmp:
		return "cmpl"
	}
	return "?"
}
