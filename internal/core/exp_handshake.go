package core

import (
	"fmt"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/perf"
)

// paperTable2 holds the paper's per-step latencies (thousands of
// cycles on the 2.26 GHz P4) for side-by-side comparison.
var paperTable2 = map[string]float64{
	"init":                         348,
	"get_client_hello":             198,
	"send_server_hello":            61,
	"send_server_cert":             239,
	"send_server_done":             12,
	"get_client_kx":                18941,
	"get_cipher_spec/get_finished": 287,
	"send_cipher_spec":             0.74,
	"send_finished":                114,
	"server_flush":                 2.5,
}

// runHandshakes performs n instrumented full handshakes and returns
// the per-step averages, merged crypto calls included.
func runHandshakes(cfg *Config, n int) ([]handshake.Step, time.Duration, error) {
	srv, err := serverFor(cfg)
	if err != nil {
		return nil, 0, err
	}
	// Steps keyed by name, preserving first-seen order.
	var order []string
	agg := map[string]*handshake.Step{}
	var total time.Duration
	for i := 0; i < n; i++ {
		res, _, err := srv.RunTransaction(64, nil)
		if err != nil {
			return nil, 0, err
		}
		for _, s := range res.Anatomy.Steps {
			key := s.Name
			dst, ok := agg[key]
			if !ok {
				cp := s
				cp.Crypto = nil
				agg[key] = &cp
				dst = agg[key]
				order = append(order, key)
			} else {
				dst.Elapsed += s.Elapsed
			}
			// Merge crypto calls by name.
			for _, c := range s.Crypto {
				found := false
				for j := range dst.Crypto {
					if dst.Crypto[j].Name == c.Name {
						dst.Crypto[j].Elapsed += c.Elapsed
						found = true
					}
				}
				if !found {
					dst.Crypto = append(dst.Crypto, c)
				}
			}
		}
		total += res.Anatomy.Total()
	}
	out := make([]handshake.Step, 0, len(order))
	for _, key := range order {
		s := *agg[key]
		s.Elapsed /= time.Duration(n)
		for j := range s.Crypto {
			s.Crypto[j].Elapsed /= time.Duration(n)
		}
		out = append(out, s)
	}
	return out, total / time.Duration(n), nil
}

func init() {
	register(&Experiment{
		ID:       "table2",
		Title:    "Execution time breakdown in SSL handshake",
		PaperRef: "10 server steps; get_client_kx (RSA) 18.9M cycles of 20.5M total",
		Run: func(cfg *Config) (*Report, error) {
			steps, total, err := runHandshakes(cfg, cfg.iters())
			if err != nil {
				return nil, err
			}
			t := perf.NewTable(
				"Table 2: SSL server handshake anatomy (DES-CBC3-SHA, RSA-"+
					fmt.Sprint(cfg.keyBits())+")",
				"step", "functionality", "latency (Kcycles)",
				"crypto functions called", "crypto latency (Kcycles)",
				"paper (Kcycles)")
			for _, s := range steps {
				paper := ""
				if v, ok := paperTable2[s.Name]; ok {
					paper = fmt.Sprintf("%.1f", v)
				}
				if len(s.Crypto) == 0 {
					t.AddRow(fmt.Sprint(s.Index), s.Name, kcyc(s.Elapsed), "", "", paper)
					continue
				}
				for i, c := range s.Crypto {
					if i == 0 {
						t.AddRow(fmt.Sprint(s.Index), s.Name, kcyc(s.Elapsed),
							c.Name, kcyc(c.Elapsed), paper)
					} else {
						t.AddRow("", "", "", c.Name, kcyc(c.Elapsed), "")
					}
				}
			}
			t.AddRow("", "total", kcyc(total), "", "", "20540")
			rep := &Report{ID: "table2", Title: "SSL handshake anatomy", Tables: []*perf.Table{t}}
			rep.Notes = append(rep.Notes,
				"paper column: 2.26 GHz Pentium 4 + OpenSSL 0.9.7d; ours: this Go stack at the model frequency",
				"shape check: get_client_kx (the RSA private decryption) must dominate everything else")
			return rep, nil
		},
	})

	register(&Experiment{
		ID:       "table3",
		Title:    "Crypto operations during SSL handshake",
		PaperRef: "public 90.4%, private 0.1%, hash 2.8%, other 1.7%, crypto total 95.0%",
		Run: func(cfg *Config) (*Report, error) {
			srv, err := serverFor(cfg)
			if err != nil {
				return nil, err
			}
			agg := perf.NewBreakdown()
			var sslTotal, cryptoTotal time.Duration
			n := cfg.iters()
			for i := 0; i < n; i++ {
				res, _, err := srv.RunTransaction(64, nil)
				if err != nil {
					return nil, err
				}
				agg.Merge(res.Anatomy.CryptoBreakdown())
				sslTotal += res.Anatomy.Total()
				cryptoTotal += res.Anatomy.CryptoTotal()
			}
			paper := map[string]string{
				handshake.CategoryPublic:  "90.4",
				handshake.CategoryPrivate: "0.1",
				handshake.CategoryHash:    "2.8",
				handshake.CategoryOther:   "1.7",
			}
			t := perf.NewTable("Table 3: crypto operations during SSL handshake",
				"functionality", "latency (Kcycles)", "% of handshake", "paper %")
			for _, name := range agg.Names() {
				share := 100 * float64(agg.Elapsed(name)) / float64(sslTotal)
				t.AddRow(name, kcyc(agg.Elapsed(name)/time.Duration(n)),
					fmt.Sprintf("%.1f", share), paper[name])
			}
			t.AddRow("total crypto operations",
				kcyc(cryptoTotal/time.Duration(n)),
				fmt.Sprintf("%.1f", 100*float64(cryptoTotal)/float64(sslTotal)), "95.0")
			t.AddRow("total SSL processing", kcyc(sslTotal/time.Duration(n)), "100", "100")
			return &Report{ID: "table3", Title: "Crypto during handshake",
				Tables: []*perf.Table{t}}, nil
		},
	})
}
