package core

import (
	"fmt"

	"sslperf/internal/md5x"
	"sslperf/internal/perf"
	"sslperf/internal/sha1x"
)

func init() {
	register(&Experiment{
		ID:       "table10",
		Title:    "Execution time breakdown for MD5 and SHA-1",
		PaperRef: "update 90.9% (MD5) / 92.1% (SHA-1) on 1024-byte input",
		Run:      runTable10,
	})
}

var paperTable10 = map[string][2]string{
	"init":   {"0.88", "0.62"},
	"update": {"90.88", "92.05"},
	"final":  {"8.24", "7.33"},
}

func runTable10(cfg *Config) (*Report, error) {
	n := cfg.scale(100000)
	md := md5x.ProfilePhases(1024, n)
	sha := sha1x.ProfilePhases(1024, n)
	t := perf.NewTable("Table 10: MD5 / SHA-1 phase breakdown (1024-byte input)",
		"step", "MD5 cycles", "MD5 %", "SHA-1 cycles", "SHA-1 %",
		"paper MD5 %", "paper SHA-1 %")
	for _, name := range md.Names() {
		t.AddRow(name,
			fmt.Sprintf("%.0f", perf.Cycles(md.Elapsed(name))/float64(n)),
			fmt.Sprintf("%.2f", md.Percent(name)),
			fmt.Sprintf("%.0f", perf.Cycles(sha.Elapsed(name))/float64(n)),
			fmt.Sprintf("%.2f", sha.Percent(name)),
			paperTable10[name][0], paperTable10[name][1])
	}
	t.AddRow("total",
		fmt.Sprintf("%.0f", perf.Cycles(md.Total())/float64(n)), "100",
		fmt.Sprintf("%.0f", perf.Cycles(sha.Total())/float64(n)), "100",
		"100", "100")
	return &Report{ID: "table10", Title: "Hash phase breakdown",
		Tables: []*perf.Table{t},
		Notes: []string{
			"paper totals: MD5 6679 cycles, SHA-1 10723 cycles for 1KB — SHA-1 ~1.6x MD5, a ratio this stack should roughly preserve",
		}}, nil
}
