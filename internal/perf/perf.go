// Package perf is the measurement substrate for the SSL anatomy study.
//
// It plays the role of the measurement tools in the original paper:
// Oprofile/VTune (wall-clock attribution to code regions) and SoftSDV
// (dynamic instruction accounting). Wall time is captured with the
// monotonic clock and converted to "model cycles" at a configurable
// frequency so reports are comparable with the paper's 2.26 GHz
// Pentium 4 numbers. Instruction accounting is done by counting
// abstract operation classes emitted by instrumented kernels.
package perf

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// modelGHz is the clock frequency used to convert measured
// nanoseconds into "cycles" for report comparability with the paper's
// machine (2.26 GHz Pentium 4). It scales every cycle figure uniformly
// and has no effect on percentages or ratios. Stored as float64 bits
// behind an atomic: live render paths (telemetry, the anatomy
// profiler) read it while command-line flags and tests set it.
var modelGHz atomic.Uint64

func init() { SetModelGHz(2.26) }

// ModelGHz returns the model clock frequency.
func ModelGHz() float64 { return math.Float64frombits(modelGHz.Load()) }

// SetModelGHz sets the model clock frequency. Non-positive values are
// ignored so a zero-valued flag cannot zero every cycle figure.
func SetModelGHz(ghz float64) {
	if ghz > 0 {
		modelGHz.Store(math.Float64bits(ghz))
	}
}

// Cycles converts a duration to model cycles at ModelGHz.
func Cycles(d time.Duration) float64 {
	return float64(d.Nanoseconds()) * ModelGHz()
}

// Duration converts model cycles back into wall time at ModelGHz.
func Duration(cycles float64) time.Duration {
	return time.Duration(cycles / ModelGHz())
}

// A Timer measures one region of code with the monotonic clock.
// The zero Timer is ready to use.
type Timer struct {
	start   time.Time
	elapsed time.Duration
	running bool
}

// Start begins (or resumes) timing.
func (t *Timer) Start() {
	if !t.running {
		t.start = time.Now()
		t.running = true
	}
}

// Stop ends the current timing interval and accumulates it.
func (t *Timer) Stop() {
	if t.running {
		t.elapsed += time.Since(t.start)
		t.running = false
	}
}

// Reset clears accumulated time; a running timer keeps running from now.
func (t *Timer) Reset() {
	t.elapsed = 0
	if t.running {
		t.start = time.Now()
	}
}

// Elapsed reports the accumulated duration, including the current
// interval if the timer is running.
func (t *Timer) Elapsed() time.Duration {
	if t.running {
		return t.elapsed + time.Since(t.start)
	}
	return t.elapsed
}

// Cycles reports the accumulated time in model cycles.
func (t *Timer) Cycles() float64 { return Cycles(t.Elapsed()) }

// A Sample is one attributed measurement: a named region and the time
// spent in it.
type Sample struct {
	Name    string
	Elapsed time.Duration
}

// A Breakdown accumulates time by region name, preserving first-seen
// order, and renders percentage tables like the ones in the paper.
// It is single-owner by design — not safe for concurrent use; each
// measured activity owns one and pays no synchronization for it. Use
// SharedBreakdown when goroutines must aggregate into one breakdown.
type Breakdown struct {
	order   []string
	elapsed map[string]time.Duration
	count   map[string]int
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{
		elapsed: make(map[string]time.Duration),
		count:   make(map[string]int),
	}
}

// Add attributes d to region name.
func (b *Breakdown) Add(name string, d time.Duration) {
	if _, ok := b.elapsed[name]; !ok {
		b.order = append(b.order, name)
	}
	b.elapsed[name] += d
	b.count[name]++
}

// Time executes fn, attributing its duration to region name, and
// returns that duration.
func (b *Breakdown) Time(name string, fn func()) time.Duration {
	start := time.Now()
	fn()
	d := time.Since(start)
	b.Add(name, d)
	return d
}

// Elapsed returns the accumulated time for region name.
func (b *Breakdown) Elapsed(name string) time.Duration { return b.elapsed[name] }

// Count returns how many times region name was attributed.
func (b *Breakdown) Count(name string) int { return b.count[name] }

// Names returns the region names in first-seen order.
func (b *Breakdown) Names() []string {
	out := make([]string, len(b.order))
	copy(out, b.order)
	return out
}

// Total returns the sum over all regions.
func (b *Breakdown) Total() time.Duration {
	var sum time.Duration
	for _, d := range b.elapsed {
		sum += d
	}
	return sum
}

// Percent returns region name's share of the total, in percent.
// It returns 0 when the breakdown is empty.
func (b *Breakdown) Percent(name string) float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	return 100 * float64(b.elapsed[name]) / float64(total)
}

// Scale divides every accumulated duration by n, turning an
// n-iteration aggregate into per-iteration figures. n must be > 0.
func (b *Breakdown) Scale(n int) {
	if n <= 0 {
		panic("perf: Breakdown.Scale with n <= 0")
	}
	for k, d := range b.elapsed {
		b.elapsed[k] = d / time.Duration(n)
	}
}

// Merge adds all of other's regions into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for _, name := range other.order {
		b.Add(name, other.elapsed[name])
		// Add counted once; fix up to reflect other's count.
		b.count[name] += other.count[name] - 1
	}
}

// Samples returns the breakdown as a slice in first-seen order.
func (b *Breakdown) Samples() []Sample {
	out := make([]Sample, 0, len(b.order))
	for _, name := range b.order {
		out = append(out, Sample{Name: name, Elapsed: b.elapsed[name]})
	}
	return out
}

// SortedByElapsed returns samples sorted by descending elapsed time.
func (b *Breakdown) SortedByElapsed() []Sample {
	s := b.Samples()
	sort.SliceStable(s, func(i, j int) bool { return s[i].Elapsed > s[j].Elapsed })
	return s
}

// String renders the breakdown as an aligned table of
// name / kilocycles / percent, in first-seen order.
func (b *Breakdown) String() string {
	var sb strings.Builder
	total := b.Total()
	width := 4
	for _, name := range b.order {
		if len(name) > width {
			width = len(name)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %14s  %7s\n", width, "step", "cycles (x1000)", "%")
	for _, name := range b.order {
		d := b.elapsed[name]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(d) / float64(total)
		}
		fmt.Fprintf(&sb, "%-*s  %14.1f  %6.2f%%\n", width, name, Cycles(d)/1000, pct)
	}
	fmt.Fprintf(&sb, "%-*s  %14.1f  %6.2f%%\n", width, "total", Cycles(total)/1000, 100.0)
	return sb.String()
}
