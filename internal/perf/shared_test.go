package perf

import (
	"sync"
	"testing"
	"time"
)

func TestSharedBreakdownConcurrentAdds(t *testing.T) {
	s := NewSharedBreakdown()
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Add("mac", time.Microsecond)
				s.Time("aes", func() {})
			}
		}()
	}
	wg.Wait()
	b := s.Snapshot()
	if b.Count("mac") != workers*per || b.Count("aes") != workers*per {
		t.Fatalf("counts = %d/%d, want %d", b.Count("mac"), b.Count("aes"), workers*per)
	}
	if b.Elapsed("mac") != workers*per*time.Microsecond {
		t.Fatalf("mac elapsed = %v", b.Elapsed("mac"))
	}
}

func TestSharedBreakdownNilIsSafe(t *testing.T) {
	var s *SharedBreakdown
	s.Add("x", time.Second)
	ran := false
	s.Time("x", func() { ran = true })
	if !ran {
		t.Fatal("nil Time must still run fn")
	}
	s.Merge(NewBreakdown())
	if b := s.Snapshot(); b.Total() != 0 {
		t.Fatalf("nil snapshot total = %v", b.Total())
	}
}

func TestSharedBreakdownSnapshotIsIndependent(t *testing.T) {
	s := NewSharedBreakdown()
	s.Add("a", time.Millisecond)
	snap := s.Snapshot()
	s.Add("a", time.Millisecond)
	if snap.Elapsed("a") != time.Millisecond {
		t.Fatalf("snapshot mutated: %v", snap.Elapsed("a"))
	}
	other := NewBreakdown()
	other.Add("b", 2*time.Millisecond)
	other.Add("b", time.Millisecond)
	s.Merge(other)
	b := s.Snapshot()
	if b.Count("b") != 2 || b.Elapsed("b") != 3*time.Millisecond {
		t.Fatalf("merge: count=%d elapsed=%v", b.Count("b"), b.Elapsed("b"))
	}
}
